"""Table II — test-system configurations.

Regenerates the (buses, generators, branches, #λ, #µ(Z)) table for every
test system.  The multiplier counts are derived from the OPF model exactly as
MIPS sees them (2·nb power-balance rows plus the fixed reference angle for λ;
branch-flow plus variable-bound rows for µ/Z).
"""

import numpy as np

from repro.grid import get_case
from repro.opf import OPFModel

SYSTEMS = ["case9", "case14", "case30s", "case57s", "case118s", "case300s"]

#: Paper values for the five Table II systems (buses, gens, branches, #λ, #µ).
PAPER_TABLE2 = {
    "case14": (14, 5, 20, 29, 48),
    "case30s": (30, 6, 41, 61, 166),
    "case57s": (57, 7, 80, 115, 142),
    "case118s": (118, 54, 185, 237, 452),
    "case300s": (300, 69, 411, 601, 876),
}


def _multiplier_counts(model: OPFModel) -> tuple[int, int]:
    xmin, xmax = model.bounds()
    fixed = np.isfinite(xmin) & np.isfinite(xmax) & (np.abs(xmax - xmin) <= 1e-10)
    n_lambda = model.n_eq_nonlin + int(fixed.sum())
    n_mu = (
        model.n_ineq_nonlin
        + int(np.sum(np.isfinite(xmax) & ~fixed))
        + int(np.sum(np.isfinite(xmin) & ~fixed))
    )
    return n_lambda, n_mu


def test_bench_table2_model_construction(benchmark):
    """Benchmark OPF-model construction (admittances + bounds) on the largest system."""
    case = get_case("case300s")
    model = benchmark(lambda: OPFModel(case))
    assert model.idx.nx == 2 * 300 + 2 * 69


def test_bench_table2_counts(benchmark):
    """Print the Table II rows and check them against the paper's bookkeeping."""

    def build_table():
        rows = {}
        for name in SYSTEMS:
            case = get_case(name)
            model = OPFModel(case)
            n_lambda, n_mu = _multiplier_counts(model)
            rows[name] = (case.n_bus, case.n_gen, case.n_branch, n_lambda, n_mu)
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    print("\nTable II — test-system configurations")
    print(f"{'system':>10} {'buses':>6} {'gens':>5} {'branches':>9} {'#lambda':>8} {'#mu(Z)':>7}")
    for name, row in rows.items():
        print(f"{name:>10} {row[0]:>6} {row[1]:>5} {row[2]:>9} {row[3]:>8} {row[4]:>7}")

    # #λ is structural (2·nb + 1) and must match the paper exactly for every system.
    for name, (nb, ng, nl, n_lambda, n_mu) in rows.items():
        assert n_lambda == 2 * nb + 1
    # The 14-bus system uses exact IEEE data, so its µ count matches the paper too.
    assert rows["case14"][4] == PAPER_TABLE2["case14"][4]
    # Synthetic systems match the paper's bus/generator/branch counts by construction.
    for name in ("case30s", "case57s", "case118s", "case300s"):
        assert rows[name][:3] == PAPER_TABLE2[name][:3]
