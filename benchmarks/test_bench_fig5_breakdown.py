"""Figure 5 — runtime breakdown of MIPS vs Smart-PGSim."""

import pytest

from repro.core import breakdown_from_evaluation


def test_bench_fig5_breakdown(benchmark, frameworks):
    def evaluate_and_break_down():
        out = {}
        for name, fw in frameworks.items():
            out[name] = breakdown_from_evaluation(fw.online_evaluate())
        return out

    breakdowns = benchmark.pedantic(evaluate_and_break_down, rounds=1, iterations=1)

    print("\nFigure 5 — normalised runtime breakdown (fractions of the MIPS-only total)")
    print(f"{'system':>8} {'preproc':>8} {'newton':>8} {'MTL inf':>8} {'restart':>8} {'total':>8}")
    for name, bd in breakdowns.items():
        norm = bd.normalized()
        print(
            f"{name:>8} {norm['preprocess']:>8.3f} {norm['newton_update']:>8.3f} "
            f"{norm['inference']:>8.3f} {norm['restart']:>8.3f} {norm['smart_pgsim_total']:>8.3f}"
        )

    for name, bd in breakdowns.items():
        norm = bd.normalized()
        # Smart-PGSim's total is well below the MIPS-only bar (the Fig. 5 story)...
        assert norm["smart_pgsim_total"] < 0.9
        # ...and the Newton update dominates its remaining runtime, with the MTL
        # inference being a small extra overhead.
        assert norm["newton_update"] > norm["inference"]
