"""Figure 5 — runtime breakdown of MIPS vs Smart-PGSim."""

import os

from repro.core import breakdown_from_evaluation

STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"


def test_bench_fig5_breakdown(benchmark, frameworks, perf_recorder):
    def evaluate_and_break_down():
        out = {}
        for name, fw in frameworks.items():
            out[name] = breakdown_from_evaluation(fw.online_evaluate())
        return out

    breakdowns = benchmark.pedantic(evaluate_and_break_down, rounds=1, iterations=1)

    for name, bd in breakdowns.items():
        perf_recorder(
            "fig5_breakdown",
            **{
                f"{name}_normalized": bd.normalized(),
                f"{name}_newton_phase_fractions": bd.newton_phase_fractions(),
            },
        )

    print("\nFigure 5 — normalised runtime breakdown (fractions of the MIPS-only total)")
    print(f"{'system':>8} {'preproc':>8} {'newton':>8} {'MTL inf':>8} {'restart':>8} {'total':>8}")
    for name, bd in breakdowns.items():
        norm = bd.normalized()
        print(
            f"{name:>8} {norm['preprocess']:>8.3f} {norm['newton_update']:>8.3f} "
            f"{norm['inference']:>8.3f} {norm['restart']:>8.3f} {norm['smart_pgsim_total']:>8.3f}"
        )

    # The measured MIPS component times behind the Newton-update bar, from the
    # per-iteration instrumentation (callback evaluation, KKT assembly,
    # factorisation, back-substitution).
    print("\nNewton-update components (fractions of the warm-solve time)")
    print(f"{'system':>8} {'eval':>8} {'assembly':>9} {'factor':>8} {'backsolve':>10}")
    for name, bd in breakdowns.items():
        frac = bd.newton_phase_fractions()
        print(
            f"{name:>8} {frac.get('eval', 0.0):>8.3f} {frac.get('assembly', 0.0):>9.3f} "
            f"{frac.get('factorization', 0.0):>8.3f} {frac.get('backsolve', 0.0):>10.3f}"
        )

    for name, bd in breakdowns.items():
        norm = bd.normalized()
        # The bars are wall-clock shares of small (ms-scale) sections, so the
        # Fig. 5 shape asserts are strict-gated: scheduler noise on shared
        # runners can briefly invert them.  Structural asserts below always run.
        if STRICT:
            # Smart-PGSim's total is well below the MIPS-only bar (the Fig. 5
            # story)...
            assert norm["smart_pgsim_total"] < 0.9
            # ...and the Newton update dominates its remaining runtime, with
            # the MTL inference being a small extra overhead.
            assert norm["newton_update"] > norm["inference"]
        # The instrumented component times must be present and account for a
        # meaningful share of the warm solve (they exclude only Python-level
        # stepping overhead between phases).
        frac = bd.newton_phase_fractions()
        assert set(frac) >= {"eval", "assembly", "factorization", "backsolve"}
        assert 0.0 < sum(frac.values()) <= 1.0
