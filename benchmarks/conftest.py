"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  The
expensive artefacts (ground-truth datasets, trained models) are produced once
per session here and shared across modules.  Sample counts are deliberately
small so the whole harness runs in minutes on a laptop; scale them up via the
``REPRO_BENCH_SAMPLES`` environment variable for a higher-fidelity run.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest

from repro.core import SmartPGSim, SmartPGSimConfig
from repro.grid import get_case
from repro.mtl import fast_config

#: Number of ground-truth samples per system (override with REPRO_BENCH_SAMPLES).
N_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "24"))
#: Training epochs for benchmark models (override with REPRO_BENCH_EPOCHS).
N_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "20"))

#: Where the machine-readable perf summary of a benchmark session is written.
PERF_JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_pr10.json"

#: Scalar perf findings recorded by the benchmark modules during the session
#: (wall times, speedups, solver phase breakdowns), keyed by benchmark name.
_PERF_RECORDS: dict = {}


def record_perf(name: str, **metrics) -> None:
    """Record scalar perf metrics under ``name`` for the session's perf JSON."""
    _PERF_RECORDS.setdefault(name, {}).update(
        {k: (float(v) if isinstance(v, (int, float)) else v) for k, v in metrics.items()}
    )


@pytest.fixture
def perf_recorder():
    """The :func:`record_perf` hook, as a fixture for benchmark modules."""
    return record_perf


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_pr10.json`` so perf is tracked across PRs.

    Only written when at least one benchmark recorded metrics (running the
    unit-test suite alone leaves the file untouched).
    """
    if not _PERF_RECORDS:
        return
    payload = {
        "schema": "repro-perf-v1",
        "written_at_unix": time.time(),
        "config": {"bench_samples": N_SAMPLES, "bench_epochs": N_EPOCHS},
        "benchmarks": _PERF_RECORDS,
    }
    PERF_JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

#: The systems every per-system benchmark sweeps over.  ``case9``/``case14``
#: are exact IEEE data; the larger Table-II systems are synthetic equivalents
#: and are exercised by the Table II benchmark.
BENCH_SYSTEMS = ("case9", "case14")


def _make_framework(case_name: str, model_type: str = "mtl", use_physics: bool = True, seed: int = 0):
    case = get_case(case_name)
    config = SmartPGSimConfig(
        n_samples=N_SAMPLES,
        model_type=model_type,
        use_physics=use_physics,
        mtl=fast_config(epochs=N_EPOCHS),
        seed=seed,
    )
    framework = SmartPGSim(case, config)
    framework.offline()
    return framework


@pytest.fixture(scope="session")
def framework9():
    """Smart-PGSim (MTL + physics) trained on case9."""
    return _make_framework("case9")


@pytest.fixture(scope="session")
def framework14():
    """Smart-PGSim (MTL + physics) trained on case14."""
    return _make_framework("case14")


@pytest.fixture(scope="session")
def frameworks(framework9, framework14):
    """Mapping of benchmark systems to their trained frameworks."""
    return {"case9": framework9, "case14": framework14}


@pytest.fixture(scope="session")
def ablation_variants(framework9):
    """The three Fig. 7 / Fig. 8 variants on case9: separate NNs, plain MTL, Smart-PGSim."""
    dataset = framework9.artifacts.dataset
    separate = SmartPGSim(
        framework9.case,
        SmartPGSimConfig(
            n_samples=dataset.n_samples,
            model_type="separate",
            use_physics=False,
            mtl=fast_config(epochs=N_EPOCHS),
            seed=1,
        ),
    )
    separate.offline(dataset=dataset)
    mtl_plain = SmartPGSim(
        framework9.case,
        SmartPGSimConfig(
            n_samples=dataset.n_samples,
            model_type="mtl",
            use_physics=False,
            mtl=fast_config(epochs=N_EPOCHS),
            seed=1,
        ),
    )
    mtl_plain.offline(dataset=dataset)
    return {"Sep models": separate, "MTL": mtl_plain, "Smart-PGSim": framework9}
