"""Table I — sensitivity of success rate / speedup to the warm-start signals.

Runs the precise/imprecise ablation of Section V on the 9-bus system (all 16
combinations on a small scenario batch) and prints the table.  The key shape
properties of the paper's Table I are asserted: the all-default baseline and
the precise-X rows keep a 100 % success rate, the all-precise row is by far
the fastest, and a precise Z without a precise µ degrades convergence.
"""

import os

import numpy as np
import pytest

from repro.core import run_sensitivity_study
from repro.grid import get_case
from repro.opf import OPFModel, solve_opf


def test_bench_table1_sensitivity(benchmark):
    case = get_case("case9")

    report = benchmark.pedantic(
        lambda: run_sensitivity_study(case, n_scenarios=4, seed=1),
        rounds=1,
        iterations=1,
    )

    print("\nTable I — warm-start signal ablation (case9, 4 scenarios)")
    print(f"{'X':>2} {'lam':>4} {'mu':>3} {'Z':>2} {'SR %':>6} {'SU':>6} {'iters':>6}")
    for row in report.as_table():
        su = "-" if row["speedup"] is None else f"{row['speedup']:.2f}"
        print(
            f"{row['X']:>2} {row['lambda']:>4} {row['mu']:>3} {row['Z']:>2} "
            f"{row['success_rate_pct']:>6.1f} {su:>6} {row['mean_iterations']:>6.1f}"
        )

    baseline = report.row("0000")
    precise_x = report.row("1000")
    all_precise = report.row("1111")
    z_only = report.row("0001")

    # Observation 1: precise X keeps the success rate at 100 %.
    assert baseline.success_rate == pytest.approx(1.0)
    assert precise_x.success_rate == pytest.approx(1.0)
    # Case XVI: all four signals together give the largest iteration reduction.
    assert all_precise.success_rate == pytest.approx(1.0)
    assert all_precise.mean_iterations < 0.5 * baseline.mean_iterations
    # Iteration counts are deterministic; assert the strong claim on them.
    # Even the tolerant wall-clock speedup check is strict-gated: ms-scale
    # solves under shared-runner scheduler noise can invert any ratio.
    assert all_precise.mean_iterations == min(r.mean_iterations for r in report.rows)
    if os.environ.get("REPRO_BENCH_STRICT", "") == "1":
        best_speedup = max(r.speedup for r in report.rows if np.isfinite(r.speedup))
        assert all_precise.speedup >= 0.75 * best_speedup
    # Observation 2: precise Z without precise µ does not help (and often hurts).
    assert z_only.mean_iterations >= all_precise.mean_iterations


def test_bench_table1_warm_vs_cold_solve(benchmark):
    """Benchmark the all-precise warm-started solve (the case XVI row)."""
    case = get_case("case9")
    model = OPFModel(case)
    cold = solve_opf(case, model=model)
    warm = cold.warm_start()

    result = benchmark(lambda: solve_opf(case, warm_start=warm, model=model))
    assert result.success
    assert result.iterations < cold.iterations
