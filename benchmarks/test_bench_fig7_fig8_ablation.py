"""Figures 7 and 8 — separate NNs vs plain MTL vs Smart-PGSim (physics).

Trains the three model variants on the same case9 dataset and compares
end-to-end speedup, success rate (Fig. 7) and the distribution of prediction
errors (Fig. 8 box statistics).
"""

import os

import numpy as np
import pytest

from repro.core.metrics import relative_error_summary

STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"


@pytest.fixture(scope="module")
def variant_evaluations(ablation_variants):
    return {name: fw.online_evaluate() for name, fw in ablation_variants.items()}


def test_bench_fig7_speedup_and_success(benchmark, ablation_variants, variant_evaluations):
    # Benchmark the Smart-PGSim online evaluation (the rightmost bars of Fig. 7).
    smart = ablation_variants["Smart-PGSim"]
    benchmark.pedantic(lambda: smart.online_evaluate(max_problems=2), rounds=1, iterations=1)

    print("\nFigure 7 — model-variant comparison (case9)")
    print(f"{'variant':>14} {'SU':>6} {'SR %':>6} {'iter ratio':>10}")
    for name, ev in variant_evaluations.items():
        print(
            f"{name:>14} {ev.speedup:>6.2f} {100 * ev.success_rate:>6.1f} "
            f"{ev.iteration_ratio:>10.2f}"
        )

    smart_ev = variant_evaluations["Smart-PGSim"]
    sep_ev = variant_evaluations["Sep models"]
    # The full Smart-PGSim pipeline is at least as successful as the
    # separate-networks baseline (deterministic: iteration counts, not wall).
    assert smart_ev.success_rate >= sep_ev.success_rate - 1e-9
    # The speedup axes are wall-clock ratios of ms-scale solves, so the Fig. 7
    # shape asserts are strict-gated against shared-runner scheduler noise.
    if STRICT:
        assert smart_ev.speedup > 1.0
        assert smart_ev.speedup >= 0.8 * sep_ev.speedup


def test_bench_fig8_relative_error_boxes(benchmark, ablation_variants):
    def compute_boxes():
        boxes = {}
        for name, fw in ablation_variants.items():
            dataset = fw.artifacts.validation_set
            pred = fw.artifacts.trainer.predict_physical(dataset.inputs)
            pooled_pred = np.concatenate([pred[t].ravel() for t in ("Va", "Vm", "Pg", "Qg")])
            pooled_truth = np.concatenate(
                [dataset.targets[t].ravel() for t in ("Va", "Vm", "Pg", "Qg")]
            )
            boxes[name] = relative_error_summary(pooled_pred, pooled_truth)
        return boxes

    boxes = benchmark.pedantic(compute_boxes, rounds=1, iterations=1)

    print("\nFigure 8 — relative prediction error of the primal tasks (box statistics)")
    print(f"{'variant':>14} {'q25':>9} {'median':>9} {'q75':>9} {'mean':>9}")
    for name, stats in boxes.items():
        print(
            f"{name:>14} {stats.q25:>9.2e} {stats.median:>9.2e} {stats.q75:>9.2e} {stats.mean:>9.2e}"
        )

    # Box statistics are well formed and the errors stay small in absolute
    # terms; the paper's ordering (Smart-PGSim tightest) emerges with the full
    # 10,000-sample training runs (see EXPERIMENTS.md).
    for stats in boxes.values():
        assert stats.q25 <= stats.median <= stats.q75
        assert stats.median < 0.25
    assert np.isfinite(boxes["Smart-PGSim"].mean)
