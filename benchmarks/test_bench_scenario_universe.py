"""Scenario-universe workloads: N-k screening, trajectory serving, stochastic streams.

Three workload families opened by the scenario-universe expansion, each with a
recorded perf summary:

* **N-2 contingency screening** — screened pairs solved as lockstep topology
  groups on the elastic fleet; records throughput and the per-scenario
  iteration profile of a grouped N-2 sweep.
* **24-step multi-period trajectory** — the headline measurement: a day-long
  warm-chained trajectory (step ``t``'s solution warm-starts step ``t+1``)
  against the same trajectory served per-step cold.  Warm chaining must cut
  total solver iterations sharply; the iteration ratio is deterministic, the
  wall ratio is recorded (and only gated under ``REPRO_BENCH_STRICT=1``).
* **correlated stochastic streams** — bounded-batch streamed ground-truth
  generation with the diffusion-kernel sampler; records the stream rate and
  pins bit-equality between chopped and unchopped streams.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.data.dataset import generate_dataset
from repro.grid import CorrelatedLoadSampler, get_case, sample_load_trajectory
from repro.parallel import (
    MultiPeriodSweep,
    SolverFleet,
    generate_contingency_set,
    topology_key,
    trajectory_steps,
)

STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"

#: Trajectory length: one day at hourly resolution (the acceptance workload).
TRAJECTORY_STEPS = 24


def test_bench_n2_contingency_screening(perf_recorder):
    """Grouped N-2 screening sweep: throughput and lockstep group profile."""
    case = get_case("case14")
    sweep_set = generate_contingency_set(case, 12, k=2, max_outage_sets=4, seed=31)
    n_topologies = len({topology_key(s) for s in sweep_set})

    with SolverFleet(
        case, execution="batch", schedule="steal", collect_solutions=True
    ) as fleet:
        t0 = time.perf_counter()
        sweep = fleet.solve(sweep_set)
        wall = time.perf_counter() - t0

    assert sweep.success_rate == 1.0
    assert n_topologies == 4
    perf_recorder(
        "n2_contingency_screening",
        n_scenarios=len(sweep_set),
        n_topologies=n_topologies,
        wall_seconds=wall,
        scenarios_per_second=len(sweep_set) / wall,
        total_iterations=sum(o.iterations for o in sweep.outcomes),
    )


def test_bench_trajectory_warm_chaining_speedup(perf_recorder):
    """24-step warm-chained trajectory vs per-step cold serving (acceptance)."""
    case = get_case("case9")
    samples = sample_load_trajectory(case, n_steps=TRAJECTORY_STEPS, seed=17)
    steps = trajectory_steps(case, samples)

    with SolverFleet(case, execution="batch", collect_solutions=True) as fleet:
        driver_warm = MultiPeriodSweep(fleet, warm_chain=True)
        driver_cold = MultiPeriodSweep(fleet, warm_chain=False)
        # Warm-up solve so neither measured pass pays one-time model setup.
        driver_cold.run(steps[:1])

        t0 = time.perf_counter()
        chained = driver_warm.run(steps)
        chained_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        cold = driver_cold.run(steps)
        cold_wall = time.perf_counter() - t0

    assert chained.success_rate == 1.0 and cold.success_rate == 1.0
    chained_iters = chained.total_iterations
    cold_iters = cold.total_iterations
    iteration_speedup = cold_iters / chained_iters
    wall_speedup = cold_wall / chained_wall

    # Deterministic gate: chaining must cut the post-cold tail hard.  Step 0
    # is cold either way, so compare the tails too.
    tail_chained = sum(chained.iterations_by_step()[1:])
    tail_cold = sum(cold.iterations_by_step()[1:])
    assert tail_chained < 0.5 * tail_cold
    assert iteration_speedup > 1.5
    if STRICT:
        assert wall_speedup > 1.2

    perf_recorder(
        "trajectory_warm_chaining",
        n_steps=TRAJECTORY_STEPS,
        chained_iterations=chained_iters,
        cold_iterations=cold_iters,
        iteration_speedup=iteration_speedup,
        chained_wall_seconds=chained_wall,
        cold_wall_seconds=cold_wall,
        wall_speedup=wall_speedup,
        chained_iterations_by_step=chained.iterations_by_step(),
        cold_iterations_by_step=cold.iterations_by_step(),
    )


def test_bench_stochastic_stream_rate(perf_recorder):
    """Bounded-batch correlated-stream dataset generation: rate + bit parity."""
    case = get_case("case9")
    sampler = CorrelatedLoadSampler(case, variation=0.1, beta=1.0)
    n = 12

    t0 = time.perf_counter()
    streamed = generate_dataset(case, n, sampler=sampler, stream_batch=4, seed=23)
    stream_wall = time.perf_counter() - t0

    whole = generate_dataset(case, n, sampler=sampler, seed=23)
    assert np.array_equal(streamed.inputs, whole.inputs)
    assert np.array_equal(streamed.objectives, whole.objectives)

    assert streamed.n_samples == n
    perf_recorder(
        "stochastic_stream",
        n_samples=n,
        stream_batch=4,
        wall_seconds=stream_wall,
        samples_per_second=n / stream_wall,
    )
