"""Serving-engine throughput — batched engine vs the sequential seed online loop.

The seed's ``online_evaluate`` served scenarios one at a time: a fresh
single-row ``predict`` per scenario followed by an in-process warm-started
solve.  The :class:`~repro.engine.engine.WarmStartEngine` replaces that with
one batched forward pass plus dispatch over a persistent solver fleet.  This
benchmark times both paths on the largest bundled system (the 118-bus
Table-II equivalent) and records the achieved speedup; it also checks that
the engine's evaluation is *numerically faithful* to the sequential path.

Like the KKT fast-path benchmark, the ≥2x throughput target is only enforced
under ``REPRO_BENCH_STRICT=1``: it needs a multi-core machine (the 2x comes
from saturating solver workers; on a single core only the batched-inference
amortisation remains).  The measured speedup is always recorded in
``extra_info`` so perf trajectories track it across PRs.
"""

import os
import time

import pytest

from repro.core import SmartPGSim, SmartPGSimConfig
from repro.grid import get_case
from repro.mtl import fast_config
from repro.opf import solve_opf
from repro.parallel import generate_scenarios

STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"
#: Workers used for the engine path (bounded so laptops are not oversubscribed).
N_WORKERS = max(1, min(4, os.cpu_count() or 1))


@pytest.fixture(scope="module")
def framework118():
    """A small Smart-PGSim pipeline on the 118-bus synthetic system."""
    config = SmartPGSimConfig(
        n_samples=10,
        load_variation=0.05,
        mtl=fast_config(epochs=10),
        seed=0,
    )
    framework = SmartPGSim(get_case("case118s"), config)
    framework.offline()
    return framework


def _sequential_seed_path(framework, scenarios):
    """Replica of the seed online loop: per-row predict + in-process solve."""
    trainer = framework.artifacts.trainer
    case = framework.case
    outcomes = []
    for scenario in scenarios:
        warm = trainer.warm_start_for(scenario.feature_vector(case.base_mva))
        result = solve_opf(
            case,
            warm_start=warm,
            Pd_mw=scenario.Pd,
            Qd_mvar=scenario.Qd,
            options=framework.config.opf,
            model=framework.opf_model,
        )
        if not result.success:  # the seed's cold-restart fallback
            result = solve_opf(
                case,
                Pd_mw=scenario.Pd,
                Qd_mvar=scenario.Qd,
                options=framework.config.opf,
                model=framework.opf_model,
            )
        outcomes.append(result)
    return outcomes


def test_bench_engine_throughput_vs_sequential(benchmark, framework118):
    case = framework118.case
    engine = framework118.engine
    scenarios = generate_scenarios(case, 10, variation=0.05, seed=11)

    # Sequential seed path (timed manually; one pass is ~1 s of solves).
    t0 = time.perf_counter()
    sequential = _sequential_seed_path(framework118, scenarios)
    sequential_wall = time.perf_counter() - t0

    # Warm the fleet outside the timed section — a serving engine pays process
    # start-up once, not per request.
    engine.serve(generate_scenarios(case, 1, variation=0.05, seed=1), n_workers=N_WORKERS)
    sweep = benchmark.pedantic(
        lambda: engine.serve(scenarios, n_workers=N_WORKERS), rounds=1, iterations=1
    )
    engine.close()

    speedup = sequential_wall / sweep.wall_seconds
    benchmark.extra_info["sequential_wall_seconds"] = sequential_wall
    benchmark.extra_info["engine_wall_seconds"] = sweep.wall_seconds
    benchmark.extra_info["engine_throughput_scen_per_s"] = sweep.throughput
    benchmark.extra_info["speedup_vs_sequential"] = speedup
    benchmark.extra_info["n_workers"] = N_WORKERS

    print(
        f"\nEngine throughput (case118s, {N_WORKERS} worker(s)): "
        f"sequential {len(scenarios) / sequential_wall:.1f} scen/s, "
        f"engine {sweep.throughput:.1f} scen/s, speedup {speedup:.2f}x"
    )

    # Numerical faithfulness holds on any machine.
    assert sweep.n_scenarios == len(scenarios)
    for outcome, result in zip(sweep.outcomes, sequential):
        assert outcome.converged == result.success
    assert sweep.throughput > 0
    if STRICT:
        assert speedup >= 2.0, f"engine speedup {speedup:.2f}x below the 2x target"


def test_bench_engine_evaluation_matches_sequential(framework9):
    """Per-record parity: engine evaluation == sequential seed loop (fixed seed)."""
    dataset = framework9.artifacts.validation_set
    trainer = framework9.artifacts.trainer
    case = framework9.case
    evaluation = framework9.engine.evaluate(dataset)
    assert evaluation.n_problems == dataset.n_samples
    for i, record in enumerate(evaluation.records):
        warm = trainer.warm_start_for(dataset.inputs[i])
        result = solve_opf(
            case,
            warm_start=warm,
            Pd_mw=dataset.Pd_mw[i],
            Qd_mvar=dataset.Qd_mw[i],
            options=framework9.config.opf,
            model=framework9.opf_model,
        )
        assert record.success == result.success
        if result.success:
            assert record.iterations_warm == result.iterations
        else:
            cold = solve_opf(
                case,
                Pd_mw=dataset.Pd_mw[i],
                Qd_mvar=dataset.Qd_mw[i],
                options=framework9.config.opf,
                model=framework9.opf_model,
            )
            assert record.used_fallback
            assert record.iterations_fallback == cold.iterations
