"""Serving-engine throughput — batched engine vs the sequential seed online loop.

The seed's ``online_evaluate`` served scenarios one at a time: a fresh
single-row ``predict`` per scenario followed by an in-process warm-started
solve.  The :class:`~repro.engine.engine.WarmStartEngine` replaces that with
one batched forward pass plus dispatch over a persistent solver fleet.  This
benchmark times both paths on the largest bundled system (the 118-bus
Table-II equivalent) and records the achieved speedup; it also checks that
the engine's evaluation is *numerically faithful* to the sequential path.

Like the KKT fast-path benchmark, the ≥2x throughput target is only enforced
under ``REPRO_BENCH_STRICT=1``: it needs a multi-core machine (the 2x comes
from saturating solver workers; on a single core only the batched-inference
amortisation remains).  The measured speedup is always recorded in
``extra_info`` so perf trajectories track it across PRs.
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import SmartPGSim, SmartPGSimConfig
from repro.grid import get_case
from repro.grid.perturb import sample_loads
from repro.mtl import fast_config
from repro.opf import solve_opf
from repro.parallel import Scenario, ScenarioSet, SolverFleet, generate_scenarios

STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"
#: Workers used for the engine path (bounded so laptops are not oversubscribed).
N_WORKERS = max(1, min(4, os.cpu_count() or 1))
#: Fallback when no recorded bench JSON is available: the batched-backend
#: scenario throughput recorded by the PR 3 benchmark session
#: (BENCH_pr3.json, ``batched_backend_vs_scenario_loop``).
BASELINE_FALLBACK_SCEN_PER_S = 70.0


def recorded_blockdiag_baseline() -> float:
    """Blockdiag scen/s recorded by the previous benchmark session.

    The re-baselined gate measures the new refactorisation backends against
    the number the *previous* PR actually recorded on this repo
    (``BENCH_pr5.json``'s ``blockdiag_kkt_backend`` entry, 59.648 scen/s at
    the time of writing) rather than a hard-coded constant, so the target
    tracks the repo's own perf trajectory.  Falls back to the PR 3 constant
    when the recorded file is absent or unreadable.
    """
    path = Path(__file__).resolve().parents[1] / "BENCH_pr5.json"
    try:
        payload = json.loads(path.read_text())
        return float(
            payload["benchmarks"]["blockdiag_kkt_backend"]["blockdiag_scen_per_s"]
        )
    except (OSError, KeyError, TypeError, ValueError):
        return BASELINE_FALLBACK_SCEN_PER_S


@pytest.fixture(scope="module")
def framework118():
    """A small Smart-PGSim pipeline on the 118-bus synthetic system."""
    config = SmartPGSimConfig(
        n_samples=10,
        load_variation=0.05,
        mtl=fast_config(epochs=10),
        seed=0,
    )
    framework = SmartPGSim(get_case("case118s"), config)
    framework.offline()
    return framework


def _sequential_seed_path(framework, scenarios):
    """Replica of the seed online loop: per-row predict + in-process solve."""
    trainer = framework.artifacts.trainer
    case = framework.case
    outcomes = []
    for scenario in scenarios:
        warm = trainer.warm_start_for(scenario.feature_vector(case.base_mva))
        result = solve_opf(
            case,
            warm_start=warm,
            Pd_mw=scenario.Pd,
            Qd_mvar=scenario.Qd,
            options=framework.config.opf,
            model=framework.opf_model,
        )
        if not result.success:  # the seed's cold-restart fallback
            result = solve_opf(
                case,
                Pd_mw=scenario.Pd,
                Qd_mvar=scenario.Qd,
                options=framework.config.opf,
                model=framework.opf_model,
            )
        outcomes.append(result)
    return outcomes


def test_bench_engine_throughput_vs_sequential(benchmark, framework118, perf_recorder):
    case = framework118.case
    engine = framework118.engine
    scenarios = generate_scenarios(case, 10, variation=0.05, seed=11)

    # Sequential seed path (timed manually; one pass is ~1 s of solves).
    t0 = time.perf_counter()
    sequential = _sequential_seed_path(framework118, scenarios)
    sequential_wall = time.perf_counter() - t0

    # Warm the fleet outside the timed section — a serving engine pays process
    # start-up once, not per request.
    engine.serve(generate_scenarios(case, 1, variation=0.05, seed=1), n_workers=N_WORKERS)
    sweep = benchmark.pedantic(
        lambda: engine.serve(scenarios, n_workers=N_WORKERS), rounds=1, iterations=1
    )
    engine.close()

    speedup = sequential_wall / sweep.wall_seconds
    benchmark.extra_info["sequential_wall_seconds"] = sequential_wall
    benchmark.extra_info["engine_wall_seconds"] = sweep.wall_seconds
    benchmark.extra_info["engine_throughput_scen_per_s"] = sweep.throughput
    benchmark.extra_info["speedup_vs_sequential"] = speedup
    benchmark.extra_info["n_workers"] = N_WORKERS
    perf_recorder(
        "engine_throughput_vs_sequential",
        case="case118s",
        n_scenarios=len(scenarios),
        n_workers=N_WORKERS,
        sequential_wall_seconds=sequential_wall,
        engine_wall_seconds=sweep.wall_seconds,
        speedup_vs_sequential=speedup,
    )

    print(
        f"\nEngine throughput (case118s, {N_WORKERS} worker(s)): "
        f"sequential {len(scenarios) / sequential_wall:.1f} scen/s, "
        f"engine {sweep.throughput:.1f} scen/s, speedup {speedup:.2f}x"
    )

    # Numerical faithfulness holds on any machine.
    assert sweep.n_scenarios == len(scenarios)
    for outcome, result in zip(sweep.outcomes, sequential):
        assert outcome.converged == result.success
    assert sweep.throughput > 0
    if STRICT:
        assert speedup >= 2.0, f"engine speedup {speedup:.2f}x below the 2x target"


def test_bench_batched_backend_vs_scenario_loop(benchmark, framework118, perf_recorder):
    """Lockstep batched backend vs the per-scenario solve loop, one process.

    This isolates the tentpole claim from multi-core effects: identical warm
    starts, identical single-worker fleet machinery, only the execution mode
    differs.  The ≥2x gate is enforced under ``REPRO_BENCH_STRICT=1`` (wall
    -clock ratios flake on loaded shared runners); the measured speedup and
    the batch solver's phase breakdown are always recorded.
    """
    from repro.parallel import SolverFleet

    case = framework118.case
    engine = framework118.engine
    scenarios = generate_scenarios(case, 16, variation=0.05, seed=21)
    warm_starts = engine.warm_starts_for(scenarios.feature_matrix(case.base_mva))

    with SolverFleet(case, options=framework118.config.opf, execution="scenario") as fleet:
        t0 = time.perf_counter()
        sweep_scenario = fleet.solve(scenarios, warm_starts)
        scenario_wall = time.perf_counter() - t0

    with SolverFleet(case, options=framework118.config.opf, execution="batch") as fleet:
        # Prime the batched evaluation model (pattern plans are built once per
        # case; a serving engine amortises this over its lifetime).
        fleet.solve(generate_scenarios(case, 2, variation=0.05, seed=1))
        sweep_batch = benchmark.pedantic(
            lambda: fleet.solve(scenarios, warm_starts), rounds=1, iterations=1
        )
        batch_wall = sweep_batch.wall_seconds

    speedup = scenario_wall / batch_wall
    phases = {}
    for outcome in sweep_batch.outcomes:
        for key, value in outcome.phase_seconds.items():
            phases[key] = phases.get(key, 0.0) + value
    benchmark.extra_info["scenario_wall_seconds"] = scenario_wall
    benchmark.extra_info["batch_wall_seconds"] = batch_wall
    benchmark.extra_info["batched_speedup"] = speedup
    benchmark.extra_info["batch_phase_seconds"] = phases
    perf_recorder(
        "batched_backend_vs_scenario_loop",
        case="case118s",
        n_scenarios=len(scenarios),
        scenario_wall_seconds=scenario_wall,
        batch_wall_seconds=batch_wall,
        batched_speedup=speedup,
        batch_phase_seconds=phases,
    )
    print(
        f"\nBatched backend (case118s, 1 process): per-scenario loop "
        f"{len(scenarios) / scenario_wall:.1f} scen/s, lockstep batch "
        f"{len(scenarios) / batch_wall:.1f} scen/s, speedup {speedup:.2f}x"
    )

    # Per-scenario parity against the sequential path holds on any machine.
    # Objectives agree to the solver's own convergence scale: two converged
    # trajectories may stop at slightly different points inside the 1e-6
    # tolerance band once float associativity differs.
    assert sweep_batch.n_scenarios == sweep_scenario.n_scenarios == len(scenarios)
    for got, ref in zip(sweep_batch.outcomes, sweep_scenario.outcomes):
        assert got.scenario_id == ref.scenario_id
        assert got.converged == ref.converged
        if ref.success:
            assert got.iterations == ref.iterations
            assert abs(got.objective - ref.objective) <= 1e-6 * (1.0 + abs(ref.objective))
    assert speedup > 0
    if STRICT:
        assert speedup >= 2.0, f"batched speedup {speedup:.2f}x below the 2x target"


def test_bench_blockdiag_kkt_backend(benchmark, framework118, perf_recorder):
    """KKT refactorisation backends vs the per-slot batched loop.

    All runs use the lockstep batched solver on the same warm-started
    case118s workload; only the KKT backend routing differs —

    * ``factorized``: one assemble/factor/backsolve per active scenario per
      iteration (the per-slot loop),
    * ``blockdiag``: one batched plan-based assembly, one block-diagonal
      SuperLU factorisation and one stacked backsolve per iteration,
    * ``blockdiag`` + ``kkt_factor_threads=2``: the same numbers produced by
      per-block factorisations fanned out on a thread pool (bit-identical by
      construction; the win needs >1 physical core),
    * ``ldl``: the same-pattern LDLᵀ refactorisation backend — symbolic
      analysis cached once, level-scheduled vectorised numeric phase over the
      whole batch plane, guarded iterative refinement.

    The ≥1.5x target for the new backends is measured against the blockdiag
    throughput the *previous* bench session recorded (``BENCH_pr5.json``;
    hard-coded 70 scen/s fallback) and is only enforced under
    ``REPRO_BENCH_STRICT=1``.  The measured throughputs and the per-backend
    KKT telemetry counters (symbolic reuses / numeric refactorisations /
    block factorisations — the Fig. 5 factorisation-attribution inputs) are
    always recorded into ``BENCH_pr9.json`` so the trajectory is tracked
    either way.  The workload is the exact one the PR 3/PR 5 sessions
    measured (16 scenarios, ±5 %, seed 21) so ratios are apples-to-apples.
    """
    from dataclasses import replace

    from repro.parallel import SolverFleet

    case = framework118.case
    engine = framework118.engine
    scenarios = generate_scenarios(case, 16, variation=0.05, seed=21)
    warm_starts = engine.warm_starts_for(scenarios.feature_matrix(case.base_mva))
    baseline = recorded_blockdiag_baseline()

    def options_for(backend, threads=1):
        opts = framework118.config.opf
        return replace(
            opts,
            mips=replace(opts.mips, kkt_solver=backend, kkt_factor_threads=threads),
        )

    def run(backend, threads=1, bench=False, repeats=8):
        """Best-of-``repeats`` sweep: wall-clock ratios on shared runners are
        dominated by scheduler noise, and the *minimum* wall is the cleanest
        estimate of what the backend actually costs.  On a contended 1-vCPU
        VM the per-sweep wall spreads ~±15 % around its floor; eight samples
        bring the min within a couple percent of it (three do not)."""
        with SolverFleet(
            case, options=options_for(backend, threads), execution="batch"
        ) as fleet:
            fleet.solve(generate_scenarios(case, 2, variation=0.05, seed=1))
            if bench:
                sweep = benchmark.pedantic(
                    lambda: fleet.solve(scenarios, warm_starts), rounds=1, iterations=1
                )
            else:
                sweep = fleet.solve(scenarios, warm_starts)
            best_wall = sweep.wall_seconds
            for _ in range(repeats - 1):
                again = fleet.solve(scenarios, warm_starts)
                best_wall = min(best_wall, again.wall_seconds)
        return sweep, best_wall

    sweep_slot, slot_wall = run("factorized")
    sweep_block, block_wall = run("blockdiag")
    sweep_threaded, threaded_wall = run("blockdiag", threads=2, repeats=1)
    sweep_ldl, ldl_wall = run("ldl", bench=True)

    walls = {
        "per_slot": slot_wall,
        "blockdiag": block_wall,
        "blockdiag_threads2": threaded_wall,
        "ldl": ldl_wall,
    }
    throughputs = {k: len(scenarios) / w for k, w in walls.items()}
    best_new = max(throughputs["ldl"], throughputs["blockdiag_threads2"])
    speedup_vs_baseline = best_new / baseline
    benchmark.extra_info.update(
        {f"{k}_scen_per_s": v for k, v in throughputs.items()}
    )
    benchmark.extra_info["pr5_baseline_scen_per_s"] = baseline
    benchmark.extra_info["best_new_backend_speedup_vs_pr5"] = speedup_vs_baseline

    def telemetry_of(sweep):
        for outcome in sweep.outcomes:
            if outcome.kkt_telemetry:
                return dict(outcome.kkt_telemetry)
        return {}

    # Factorisation share of the solver phase wall, per backend: the Fig. 5
    # attribution the LDLᵀ backend is meant to shrink.
    def factor_share(sweep):
        phases = {}
        for outcome in sweep.outcomes:
            for phase, value in outcome.phase_seconds.items():
                phases[phase] = phases.get(phase, 0.0) + value
        total = sum(phases.values())
        return (phases.get("factorization", 0.0) / total) if total > 0 else 0.0

    perf_recorder(
        "blockdiag_kkt_backend",
        case="case118s",
        n_scenarios=len(scenarios),
        per_slot_wall_seconds=walls["per_slot"],
        blockdiag_wall_seconds=walls["blockdiag"],
        blockdiag_threads2_wall_seconds=walls["blockdiag_threads2"],
        ldl_wall_seconds=walls["ldl"],
        per_slot_scen_per_s=throughputs["per_slot"],
        blockdiag_scen_per_s=throughputs["blockdiag"],
        blockdiag_threads2_scen_per_s=throughputs["blockdiag_threads2"],
        ldl_scen_per_s=throughputs["ldl"],
        pr5_baseline_scen_per_s=baseline,
        best_new_backend_speedup_vs_pr5=speedup_vs_baseline,
        blockdiag_factorization_share=factor_share(sweep_block),
        ldl_factorization_share=factor_share(sweep_ldl),
        blockdiag_kkt_telemetry=telemetry_of(sweep_block),
        blockdiag_threads2_kkt_telemetry=telemetry_of(sweep_threaded),
        ldl_kkt_telemetry=telemetry_of(sweep_ldl),
    )
    print(
        f"\nKKT backends (case118s, B=16, 1 process): per-slot "
        f"{throughputs['per_slot']:.1f}, blockdiag {throughputs['blockdiag']:.1f}, "
        f"blockdiag+2threads {throughputs['blockdiag_threads2']:.1f}, "
        f"ldl {throughputs['ldl']:.1f} scen/s; best new backend vs BENCH_pr5 "
        f"baseline {baseline:.1f} scen/s: {speedup_vs_baseline:.2f}x"
    )

    # Drop-in parity on any machine: blockdiag and its threaded variant are
    # bit-identical to the per-slot loop; ldl agrees in convergence and
    # objective at solver precision (its refined Newton steps can legitimately
    # differ in the last bits).
    for sweep in (sweep_block, sweep_threaded, sweep_ldl):
        assert sweep.n_scenarios == sweep_slot.n_scenarios == len(scenarios)
    for got, ref in zip(sweep_block.outcomes, sweep_slot.outcomes):
        assert got.scenario_id == ref.scenario_id
        assert got.converged == ref.converged
        if ref.success:
            assert got.iterations == ref.iterations
            assert got.objective == ref.objective
    for got, ref in zip(sweep_threaded.outcomes, sweep_block.outcomes):
        assert got.scenario_id == ref.scenario_id
        assert got.converged == ref.converged
        if ref.success:
            assert got.iterations == ref.iterations
            assert got.objective == ref.objective
    for got, ref in zip(sweep_ldl.outcomes, sweep_slot.outcomes):
        assert got.scenario_id == ref.scenario_id
        assert got.converged == ref.converged
        if ref.success:
            assert abs(got.objective - ref.objective) <= 1e-6 * (1.0 + abs(ref.objective))
    if STRICT:
        assert speedup_vs_baseline >= 1.5, (
            f"best new backend {best_new:.1f} scen/s is "
            f"{speedup_vs_baseline:.2f}x the BENCH_pr5 baseline "
            f"({baseline:.1f} scen/s), below the 1.5x target"
        )


def test_bench_elastic_scheduler_skewed_batch(benchmark, framework118, perf_recorder):
    """Work stealing vs static chunking on a skewed warm batch.

    One scenario is *unpredictably* slow: its loads are stressed well beyond
    the training distribution, so its model warm start is poor and the solve
    takes several times the iterations of its neighbours — while the cost
    heuristic (which only sees warm-vs-cold and outage flags) still predicts
    it cheap.  Cost-balanced static chunking therefore packs a full chunk
    behind it and that worker serialises the sweep; the steal schedule
    confines the surprise to one micro-batch and lets idle workers pull the
    rest of the queue.

    The ≥1.3x throughput gate over static chunking needs real parallelism,
    so it is enforced only under ``REPRO_BENCH_STRICT=1`` *and* more than one
    worker; measured walls, the skew factor and the speedup are always
    recorded into the session perf JSON.
    """
    case = framework118.case
    engine = framework118.engine
    base = generate_scenarios(case, 24, variation=0.05, seed=31)
    slow = Scenario(0, base[0].Pd * 1.3, base[0].Qd * 1.3)
    scenarios = ScenarioSet(case.name, [slow] + list(base.scenarios)[1:])
    warm_starts = engine.warm_starts_for(scenarios.feature_matrix(case.base_mva))
    warmup = generate_scenarios(case, 2, variation=0.05, seed=1)

    def make_fleet(schedule, microbatch=None):
        fleet = SolverFleet(
            case,
            options=framework118.config.opf,
            n_workers=N_WORKERS,
            execution="batch",
            schedule=schedule,
            microbatch=microbatch,
        )
        fleet.solve(warmup)  # spawn workers and build models outside the timing
        return fleet

    with make_fleet("static") as fleet:
        sweep_static = fleet.solve(scenarios, warm_starts)
    with make_fleet("steal", microbatch=2) as fleet:
        sweep_steal = benchmark.pedantic(
            lambda: fleet.solve(scenarios, warm_starts), rounds=1, iterations=1
        )

    its = sorted(o.final_iterations for o in sweep_steal.outcomes)
    skew = its[-1] / max(its[len(its) // 2], 1)
    speedup = sweep_static.wall_seconds / sweep_steal.wall_seconds
    benchmark.extra_info["static_wall_seconds"] = sweep_static.wall_seconds
    benchmark.extra_info["steal_wall_seconds"] = sweep_steal.wall_seconds
    benchmark.extra_info["steal_speedup"] = speedup
    benchmark.extra_info["iteration_skew"] = skew
    benchmark.extra_info["n_workers"] = N_WORKERS
    perf_recorder(
        "elastic_scheduler_skewed_batch",
        case="case118s",
        n_scenarios=len(scenarios),
        n_workers=N_WORKERS,
        static_wall_seconds=sweep_static.wall_seconds,
        steal_wall_seconds=sweep_steal.wall_seconds,
        steal_speedup=speedup,
        iteration_skew=skew,
    )
    print(
        f"\nElastic scheduler (case118s, {N_WORKERS} worker(s), skew {skew:.1f}x): "
        f"static {len(scenarios) / sweep_static.wall_seconds:.1f} scen/s, "
        f"steal {len(scenarios) / sweep_steal.wall_seconds:.1f} scen/s, "
        f"speedup {speedup:.2f}x"
    )

    # Result invariants hold on any machine: same scenarios, same convergence.
    assert sweep_steal.n_scenarios == sweep_static.n_scenarios == len(scenarios)
    for a, b in zip(sweep_static.outcomes, sweep_steal.outcomes):
        assert a.scenario_id == b.scenario_id
        assert a.converged == b.converged
    if STRICT and N_WORKERS > 1:
        assert speedup >= 1.3, (
            f"steal speedup {speedup:.2f}x below the 1.3x skewed-workload target"
        )


def test_bench_grouped_contingency_screening(benchmark, framework118, perf_recorder):
    """Cross-sweep contingency batching vs fragmented per-sweep screening.

    Four N-1 screening sweeps share an outage-branch set but hold only one
    scenario per branch each, so the per-sweep static batch path degenerates
    to singleton scalar solves per branch — the fragmentation the ROADMAP
    flags.  ``solve_many`` merges the sweeps: each branch collects its four
    scenarios into one lockstep group (served by the worker's memoized
    per-branch batched model) and the load-only scenarios march together,
    recovering the batch win.  Measurable on a single core because batched
    evaluation dominates scalar evaluation on case118s; the grouped results
    stay bitwise-comparable to the elastic per-sweep path (pinned by
    ``tests/test_contingency_grouping.py``).
    """
    case = framework118.case
    f, t = case.branch_bus_indices()
    live = case.branch.status > 0
    degree = np.bincount(f[live], minlength=case.n_bus) + np.bincount(
        t[live], minlength=case.n_bus
    )
    branches = [int(b) for b in np.flatnonzero(live & (degree[f] > 1) & (degree[t] > 1))[:4]]
    n_sweeps, per_sweep = 4, 6
    samples = sample_loads(case, n_sweeps * per_sweep, variation=0.05, seed=41)
    sweeps = []
    k = 0
    for _ in range(n_sweeps):
        members = []
        for i in range(per_sweep):
            outage = branches[i] if i < len(branches) else None
            members.append(Scenario(i, samples[k].Pd, samples[k].Qd, outage_branch=outage))
            k += 1
        sweeps.append(ScenarioSet(case.name, members))

    options = framework118.config.opf
    with SolverFleet(case, options=options, execution="batch", schedule="static") as fleet:
        fleet.solve(sweeps[0])  # prime models/patterns outside the timing
        t0 = time.perf_counter()
        for sweep in sweeps:
            fleet.solve(sweep)
        fragmented_wall = time.perf_counter() - t0

    with SolverFleet(case, options=options, execution="batch", schedule="steal") as fleet:
        fleet.solve(sweeps[0])
        grouped = benchmark.pedantic(
            lambda: fleet.solve_many(sweeps), rounds=1, iterations=1
        )
        grouped_wall = grouped[0].wall_seconds

    n_total = n_sweeps * per_sweep
    speedup = fragmented_wall / grouped_wall
    benchmark.extra_info["fragmented_wall_seconds"] = fragmented_wall
    benchmark.extra_info["grouped_wall_seconds"] = grouped_wall
    benchmark.extra_info["grouped_speedup"] = speedup
    perf_recorder(
        "grouped_contingency_screening",
        case="case118s",
        n_sweeps=n_sweeps,
        n_scenarios=n_total,
        fragmented_wall_seconds=fragmented_wall,
        grouped_wall_seconds=grouped_wall,
        grouped_speedup=speedup,
    )
    print(
        f"\nGrouped contingency screening (case118s, {n_sweeps}x{per_sweep} scenarios, "
        f"1 process): per-sweep {n_total / fragmented_wall:.1f} scen/s, grouped "
        f"{n_total / grouped_wall:.1f} scen/s, speedup {speedup:.2f}x"
    )

    assert sum(s.n_scenarios for s in grouped) == n_total
    assert all(s.success_rate == 1.0 for s in grouped)
    if STRICT:
        assert speedup >= 1.2, (
            f"grouped-contingency speedup {speedup:.2f}x below the 1.2x target"
        )


def test_bench_engine_evaluation_matches_sequential(framework9):
    """Per-record parity: engine evaluation == sequential seed loop (fixed seed)."""
    dataset = framework9.artifacts.validation_set
    trainer = framework9.artifacts.trainer
    case = framework9.case
    evaluation = framework9.engine.evaluate(dataset)
    assert evaluation.n_problems == dataset.n_samples
    for i, record in enumerate(evaluation.records):
        warm = trainer.warm_start_for(dataset.inputs[i])
        result = solve_opf(
            case,
            warm_start=warm,
            Pd_mw=dataset.Pd_mw[i],
            Qd_mvar=dataset.Qd_mw[i],
            options=framework9.config.opf,
            model=framework9.opf_model,
        )
        assert record.success == result.success
        if result.success:
            assert record.iterations_warm == result.iterations
        else:
            cold = solve_opf(
                case,
                Pd_mw=dataset.Pd_mw[i],
                Qd_mvar=dataset.Qd_mw[i],
                options=framework9.config.opf,
                model=framework9.opf_model,
            )
            assert record.used_fallback
            assert record.iterations_fallback == cold.iterations
