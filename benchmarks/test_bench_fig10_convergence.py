"""Figure 10 — convergence traces for good and bad initial points."""


from repro.core import capture_convergence_traces
from repro.grid import get_case


def test_bench_fig10_convergence_traces(benchmark):
    case = get_case("case9")
    traces = benchmark.pedantic(
        lambda: capture_convergence_traces(case, seed=7), rounds=1, iterations=1
    )

    print("\nFigure 10 — per-iteration convergence behaviour (case9)")
    for label, trace in traces.items():
        series = trace.series()
        print(
            f"{label:>8}: converged={trace.converged} iterations={trace.iterations} "
            f"final feas={series['feasibility'][-1]:.2e} final grad={series['gradient'][-1]:.2e} "
            f"max step={series['step_size'].max():.2e}"
        )

    good, bad, default = traces["good"], traces["bad"], traces["default"]
    # A good initial point converges, and in far fewer iterations than the default.
    assert good.converged
    assert default.converged
    assert good.iterations < default.iterations
    # Its feasibility/gradient/complementarity conditions all collapse below tolerance.
    for key in ("feasibility", "gradient", "complementarity"):
        assert good.series()[key][-1] < 1e-6
    # The bad initial point either fails outright or needs (much) more work, and
    # its step sizes are larger than the good trace's — the Fig. 10a observation.
    assert (not bad.converged) or bad.iterations > good.iterations
    assert bad.series()["step_size"].max() > good.series()["step_size"].max()


def test_bench_fig10_good_start_solve(benchmark):
    """Benchmark the warm-started (good initial point) solve itself."""
    from repro.opf import OPFModel, solve_opf

    case = get_case("case9")
    model = OPFModel(case)
    warm = solve_opf(case, model=model).warm_start()
    result = benchmark(lambda: solve_opf(case, warm_start=warm, model=model))
    assert result.success
