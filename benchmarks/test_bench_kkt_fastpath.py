"""KKT fast-path micro-benchmark: per-iteration assembly + solve.

Times one MIPS Newton-system iteration on the largest bundled case
(``case300s``), comparing the seed path against the structure-cached fast
path.  Both paths start from the same freshly evaluated kernel blocks (the
callback *evaluation* is excluded — it is identical in both) and perform the
per-iteration work the seed re-did from scratch every time:

* stitching the Lagrangian-Hessian kernel blocks into the full matrix
  (``sp.bmat`` + CSR re-conversion vs. one structure-cached scatter),
* stacking the constant bound rows under the constraint Jacobians
  (``sp.vstack`` vs. cached scatter),
* forming the reduced Newton system ``M``/``N`` and the KKT block matrix,
* the sparse linear solve (``spsolve`` with fresh symbolic analysis vs.
  ``FactorizedSolver`` with the cached fill-reducing permutation).

The numeric data changes every repetition (as across real MIPS iterations)
while the sparsity pattern stays fixed — the regime the fast path exploits.
The speedup is recorded in the benchmark trajectory via ``extra_info``.
"""

import os
import time

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.grid import get_case
from repro.mips.linsolve import FactorizedSolver
from repro.mips.solver import _BoundHandler, _KKTAssembler
from repro.opf import OPFModel
from repro.opf.constraints import constraint_function
from repro.opf.costs import objective
from repro.opf.hessian import hessian_blocks
from repro.utils.sparse import CachedBmat

#: Repetitions per path; the data is rescaled every rep so nothing can be
#: cached beyond the sparsity structure.
N_REPS = 30


@pytest.fixture(scope="module")
def newton_inputs():
    """Freshly evaluated Newton-system ingredients for case300s."""
    case = get_case("case300s")
    model = OPFModel(case)
    xmin, xmax = model.bounds()
    x = model.default_start()

    bounds = _BoundHandler(x.size, xmin, xmax, 1e-10)
    x = bounds.interior_start(x)
    gh_fcn = constraint_function(model)
    g_nl, h_nl, Jg_nl, Jh_nl = gh_fcn(x)
    g, h, Jg, Jh = bounds.assemble(x, g_nl, h_nl, Jg_nl, Jh_nl)
    neq, niq = g.size, h.size

    lam = 0.1 * np.ones(neq)
    mu = np.ones(niq)
    z = np.maximum(-h, 1.0)

    Haa, Hav, Hva, Hvv, Dgg = hessian_blocks(
        model, x, lam[: g_nl.size], mu[: h_nl.size], 1.0
    )
    _, df, _ = objective(model, x)
    Lx = df + Jg.T @ lam + Jh.T @ mu

    nx = x.size
    ng = case.n_gen
    return {
        "x": x, "bounds": bounds, "nx": nx, "ng": ng,
        "g_nl": g_nl, "h_nl": h_nl, "Jg_nl": sp.csr_matrix(Jg_nl),
        "Jh_nl": sp.csr_matrix(Jh_nl),
        "blocks": (Haa, Hav, Hva, Hvv, Dgg),
        "Lx": Lx, "z": z, "mu": mu, "gamma": 1.0,
    }


def _vary(inp, rep):
    """Fresh numeric values for one repetition (same sparsity pattern)."""
    scale = 1.0 + 0.01 * rep
    Haa, Hav, Hva, Hvv, Dgg = inp["blocks"]
    Haa = Haa.copy()
    Haa.data = Haa.data * scale
    return (Haa, Hav, Hva, Hvv, Dgg), inp["z"] * scale, inp["mu"] / scale


def _legacy_iteration(inp, blocks, z, mu):
    """The seed per-iteration path: full symbolic assembly + spsolve."""
    Haa, Hav, Hva, Hvv, Dgg = blocks
    x, bounds = inp["x"], inp["bounds"]
    nx, ng = inp["nx"], inp["ng"]

    # Seed Hessian assembly: nested bmat + dense-diag add + CSR re-conversion.
    voltage_block = sp.bmat([[Haa, Hav], [Hva, Hvv]], format="csr")
    H_constraints = sp.bmat(
        [[voltage_block, None], [None, sp.csr_matrix((2 * ng, 2 * ng))]],
        format="csr",
    )
    pad = sp.csr_matrix((nx - 2 * ng, nx - 2 * ng))
    d2f = sp.bmat([[pad, None], [None, Dgg]], format="csr")
    Lxx = sp.csr_matrix(d2f + H_constraints)

    # Seed bound-row stacking: re-vstack the constant rows every evaluation.
    Jg = sp.vstack([sp.csr_matrix(inp["Jg_nl"]), bounds._E_eq], format="csr")
    Jh = sp.vstack(
        [sp.csr_matrix(inp["Jh_nl"]), bounds._E_ub, bounds._E_lb], format="csr"
    )
    g = np.concatenate([inp["g_nl"], x[bounds.eq_idx] - bounds.xmin[bounds.eq_idx]])
    h = np.concatenate(
        [
            inp["h_nl"],
            x[bounds.ub_idx] - bounds.xmax[bounds.ub_idx],
            bounds.xmin[bounds.lb_idx] - x[bounds.lb_idx],
        ]
    )

    # Seed Newton system: rebuilt block matrix, spsolve with fresh analysis.
    e = np.ones(h.size)
    zinv = 1.0 / z
    dh_zinv = Jh.T @ sp.diags(zinv)
    M = Lxx + dh_zinv @ sp.diags(mu) @ Jh
    N = inp["Lx"] + dh_zinv @ (mu * h + inp["gamma"] * e)
    kkt = sp.bmat([[M, Jg.T], [Jg, None]], format="csc")
    rhs = np.concatenate([-N, -g])
    return spla.spsolve(kkt, rhs)


def test_bench_kkt_fastpath(benchmark, newton_inputs, perf_recorder):
    inp = newton_inputs
    bounds = inp["bounds"]
    x = inp["x"]
    assembler = _KKTAssembler()
    solver = FactorizedSolver()
    hess_cache = CachedBmat("csr")

    def fast_iteration(rep):
        blocks, z, mu = _vary(inp, rep)
        Haa, Hav, Hva, Hvv, Dgg = blocks
        Lxx = hess_cache.assemble(
            [[Haa, Hav, None], [Hva, Hvv, None], [None, None, Dgg]]
        )
        g, h, Jg, Jh = bounds.assemble(
            x, inp["g_nl"], inp["h_nl"], inp["Jg_nl"], inp["Jh_nl"]
        )
        kkt, rhs = assembler.build(
            Lxx, Jg, Jh, inp["Lx"], g, h, z, mu, inp["gamma"]
        )
        return solver.solve(kkt, rhs)

    # Warm both paths once (builds the structure caches / permutation) and
    # check they produce the same Newton step.
    sol_fast = fast_iteration(0)
    sol_legacy = _legacy_iteration(inp, *_vary(inp, 0))
    assert np.allclose(sol_fast, sol_legacy, atol=1e-6)

    t0 = time.perf_counter()
    for rep in range(1, N_REPS + 1):
        _legacy_iteration(inp, *_vary(inp, rep))
    legacy_seconds = (time.perf_counter() - t0) / N_REPS

    state = {"rep": 0}

    def one_fast_iteration():
        state["rep"] += 1
        return fast_iteration(state["rep"])

    benchmark.pedantic(one_fast_iteration, rounds=N_REPS, iterations=1)
    fast_seconds = benchmark.stats.stats.mean
    speedup = legacy_seconds / fast_seconds

    benchmark.extra_info["legacy_ms_per_iter"] = legacy_seconds * 1e3
    benchmark.extra_info["fast_ms_per_iter"] = fast_seconds * 1e3
    benchmark.extra_info["speedup"] = speedup
    perf_recorder(
        "kkt_fastpath",
        case="case300s",
        legacy_ms_per_iter=legacy_seconds * 1e3,
        fast_ms_per_iter=fast_seconds * 1e3,
        speedup=speedup,
    )

    print(
        f"\nKKT assembly+solve per iteration (case300s): "
        f"legacy {legacy_seconds * 1e3:.2f} ms, fast {fast_seconds * 1e3:.2f} ms, "
        f"speedup {speedup:.2f}x (symbolic reuses: {solver.symbolic_reuses})"
    )

    # The fast path must actually have reused the cached structure...
    assert solver.symbolic_reuses >= N_REPS
    # ...and never lose to the seed path outright.  The full speedup target
    # (>= 1.5x, typically ~1.7x on an idle machine) is wall-clock-sensitive,
    # so it is asserted only in strict mode to keep shared CI runners from
    # flaking on noisy-neighbour contention; the measured value is always
    # recorded in the benchmark trajectory via extra_info above.
    assert speedup > 0.9
    if os.environ.get("REPRO_BENCH_STRICT"):
        assert speedup >= 1.5
