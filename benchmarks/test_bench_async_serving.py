"""Async serving front-end — coalesced dynamic batching vs per-request serves.

A request stream of small (1–3 scenario) requests is served two ways on the
same warm engine:

* **sequential** — one blocking ``engine.serve`` per request, back to back:
  the service a caller gets without the async tier (every request pays its
  own dispatch and a tiny lockstep window);
* **async batched** — all requests submitted concurrently to the
  :class:`~repro.serving.server.AsyncServer`, whose deadline-aware batcher
  coalesces them into a few wide flushes (one batched inference + one
  lockstep window each).

Per-request latency (p50/p99) and scenario throughput are recorded for both
paths.  Bitwise parity between the async-batched results and the direct
per-request serves is asserted on every machine — it is the core invariant
the batcher's canonical-width inference and row-independent lockstep provide.
The throughput floor (async ≥ sequential) needs a quiet machine, so it is
only enforced under ``REPRO_BENCH_STRICT=1``; the measured numbers are always
recorded in the session perf JSON.
"""

import asyncio
import os
import time

import numpy as np
import pytest

from repro.engine import WarmStartEngine
from repro.parallel import ScenarioSet, generate_scenarios
from repro.serving import AsyncServer

STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"
#: Sizes of the request stream (cycled): small interactive-style requests.
REQUEST_SIZES = (1, 2, 3) * 4
#: Best-of-N repeats for both paths (wall-clock ratios flake on shared runners).
REPEATS = 3


@pytest.fixture(scope="module")
def serving_engine9(framework9):
    """Batched steal-schedule engine over the session's trained case9 model."""
    engine = WarmStartEngine.from_trainer(
        framework9.artifacts.trainer, execution="batch", schedule="steal"
    )
    yield engine
    engine.close()


@pytest.fixture(scope="module")
def request_stream9(framework9):
    """The request stream: per-request ScenarioSets cut from one seeded sweep."""
    case = framework9.case
    scenarios = generate_scenarios(case, sum(REQUEST_SIZES), variation=0.05, seed=51)
    requests = []
    cursor = 0
    for size in REQUEST_SIZES:
        rows = list(scenarios.scenarios)[cursor : cursor + size]
        requests.append(ScenarioSet(case.name, rows))
        cursor += size
    return requests


def _assert_bitwise_equal(sweep_a, sweep_b):
    assert sweep_a.n_scenarios == sweep_b.n_scenarios
    for a, b in zip(sweep_a.outcomes, sweep_b.outcomes):
        assert a.scenario_id == b.scenario_id
        assert a.success == b.success
        assert a.iterations == b.iterations
        assert a.objective == b.objective  # bitwise, not approx
        assert a.used_fallback == b.used_fallback
        assert a.timed_out == b.timed_out


def _serve_sequential(engine, requests):
    """Per-request blocking serves; returns (sweeps, per-request latencies, wall)."""
    sweeps, latencies = [], []
    t0 = time.perf_counter()
    for request in requests:
        t_req = time.perf_counter()
        sweeps.append(engine.serve(request, deadline_seconds=60.0))
        latencies.append(time.perf_counter() - t_req)
    return sweeps, latencies, time.perf_counter() - t0


def _serve_async(engine, requests, max_batch=16, max_wait_seconds=0.005):
    """Concurrent submits through the dynamic batcher; latencies per request."""

    async def run():
        server = AsyncServer(
            engine, max_batch=max_batch, max_wait_seconds=max_wait_seconds
        )
        await server.start()
        try:
            t0 = time.perf_counter()

            async def one(request):
                t_req = time.perf_counter()
                sweep = await server.submit(request, deadline_seconds=60.0)
                return sweep, time.perf_counter() - t_req

            pairs = await asyncio.gather(*(one(r) for r in requests))
            wall = time.perf_counter() - t0
        finally:
            await server.stop()
        sweeps = [sweep for sweep, _ in pairs]
        latencies = [latency for _, latency in pairs]
        return sweeps, latencies, wall, server.stats

    return asyncio.run(run())


def test_bench_async_dynamic_batcher(benchmark, serving_engine9, request_stream9, perf_recorder):
    engine = serving_engine9
    requests = request_stream9
    n_scenarios = sum(len(r) for r in requests)

    # Spawn the fleet and build the batched models outside every timing.
    engine.serve(requests[0])

    seq_sweeps, seq_latencies, seq_wall = _serve_sequential(engine, requests)
    for _ in range(REPEATS - 1):
        again_sweeps, again_latencies, again_wall = _serve_sequential(engine, requests)
        if again_wall < seq_wall:
            seq_sweeps, seq_latencies, seq_wall = again_sweeps, again_latencies, again_wall

    async_sweeps, async_latencies, async_wall, stats = benchmark.pedantic(
        lambda: _serve_async(engine, requests), rounds=1, iterations=1
    )
    for _ in range(REPEATS - 1):
        again = _serve_async(engine, requests)
        if again[2] < async_wall:
            async_sweeps, async_latencies, async_wall, stats = again

    # Bitwise parity on any machine: riding a coalesced flush must not change
    # a request's results relative to serving it alone.
    for async_sweep, seq_sweep in zip(async_sweeps, seq_sweeps):
        _assert_bitwise_equal(async_sweep, seq_sweep)
    assert stats.admitted_requests == len(requests)
    assert stats.served_scenarios == n_scenarios
    assert stats.flushes < len(requests), "batcher never coalesced anything"

    def quantiles(latencies):
        return (
            float(np.percentile(latencies, 50)) * 1e3,
            float(np.percentile(latencies, 99)) * 1e3,
        )

    seq_p50_ms, seq_p99_ms = quantiles(seq_latencies)
    async_p50_ms, async_p99_ms = quantiles(async_latencies)
    seq_scen_per_s = n_scenarios / seq_wall
    async_scen_per_s = n_scenarios / async_wall
    speedup = async_scen_per_s / seq_scen_per_s

    benchmark.extra_info.update(
        {
            "sequential_wall_seconds": seq_wall,
            "async_wall_seconds": async_wall,
            "sequential_scen_per_s": seq_scen_per_s,
            "async_scen_per_s": async_scen_per_s,
            "async_speedup": speedup,
            "async_p50_ms": async_p50_ms,
            "async_p99_ms": async_p99_ms,
            "flushes": stats.flushes,
            "widest_flush": stats.widest_flush,
        }
    )
    perf_recorder(
        "async_serving",
        case="case9",
        n_requests=len(requests),
        n_scenarios=n_scenarios,
        sequential_wall_seconds=seq_wall,
        async_wall_seconds=async_wall,
        sequential_scen_per_s=seq_scen_per_s,
        async_scen_per_s=async_scen_per_s,
        async_speedup=speedup,
        sequential_p50_ms=seq_p50_ms,
        sequential_p99_ms=seq_p99_ms,
        async_p50_ms=async_p50_ms,
        async_p99_ms=async_p99_ms,
        flushes=stats.flushes,
        widest_flush=stats.widest_flush,
    )
    print(
        f"\nAsync serving (case9, {len(requests)} requests / {n_scenarios} scenarios): "
        f"sequential {seq_scen_per_s:.1f} scen/s (p50 {seq_p50_ms:.1f} ms, "
        f"p99 {seq_p99_ms:.1f} ms), async {async_scen_per_s:.1f} scen/s "
        f"(p50 {async_p50_ms:.1f} ms, p99 {async_p99_ms:.1f} ms), "
        f"{stats.flushes} flush(es), widest {stats.widest_flush}, "
        f"speedup {speedup:.2f}x"
    )

    assert async_scen_per_s > 0 and seq_scen_per_s > 0
    if STRICT:
        assert speedup >= 1.0, (
            f"async batched throughput {async_scen_per_s:.1f} scen/s fell below "
            f"the sequential per-request floor {seq_scen_per_s:.1f} scen/s"
        )


def test_bench_async_overload_shedding(serving_engine9, request_stream9, perf_recorder):
    """Backpressure under a burst beyond the admission queue: typed rejects,
    admitted requests still bitwise-faithful, shedding is deterministic."""
    from repro.serving import OverloadedError

    engine = serving_engine9
    requests = request_stream9
    max_queue = sum(len(r) for r in requests) // 2

    async def run():
        server = AsyncServer(engine, max_batch=16, max_wait_seconds=0.005, max_queue=max_queue)
        await server.start()
        try:
            results = await asyncio.gather(
                *(server.submit(request) for request in requests),
                return_exceptions=True,
            )
        finally:
            await server.stop()
        return results, server.stats

    results, stats = asyncio.run(run())
    for result in results:
        assert not isinstance(result, Exception) or isinstance(result, OverloadedError)
    served = [r for r in results if not isinstance(r, Exception)]
    # The burst lands before the batcher's first flush, so admission is pure
    # FIFO against the queue bound: the counters must reconcile, at least one
    # request is shed, and the admitted ones are served in full.
    assert stats.rejected_requests > 0
    assert stats.admitted_requests == len(served)
    assert stats.admitted_requests + stats.rejected_requests == len(requests)
    for sweep, request in zip(
        served, [r for r, out in zip(requests, results) if not isinstance(out, Exception)]
    ):
        assert sweep.n_scenarios == len(request)
    perf_recorder(
        "async_serving",
        overload_admitted=stats.admitted_requests,
        overload_rejected=stats.rejected_requests,
        overload_queue_bound=max_queue,
    )
