"""Table III — direct-prediction comparison (speedup factor SF and cost loss).

Evaluates the Zamzam-style usage of the network (prediction *is* the answer,
no solver) with the paper's SF and L_cost metrics, and contrasts it with the
warm-start pipeline: the direct mode is far faster but pays a non-zero
optimality/feasibility gap, which is exactly the argument for Smart-PGSim's
design.
"""

import os

from repro.core import DirectPredictionBaseline

STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"


def test_bench_table3_direct_prediction(benchmark, frameworks):
    def evaluate_all():
        reports = {}
        for name, fw in frameworks.items():
            baseline = DirectPredictionBaseline(fw.artifacts.trainer, fw.opf_model)
            reports[name] = baseline.evaluate(fw.artifacts.validation_set)
        return reports

    reports = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    print("\nTable III — direct prediction (no solver refinement)")
    print(f"{'system':>8} {'SF':>10} {'Lcost %':>9} {'max |g| p.u.':>13}")
    for name, report in reports.items():
        print(
            f"{name:>8} {report.speedup_factor:>10.1f} {report.cost_loss_pct:>9.4f} "
            f"{report.feasibility_violation:>13.4f}"
        )

    for name, report in reports.items():
        # SF is far above the end-to-end SU (Table III vs Fig. 4a).  The MIPS
        # reference times are the dataset's cold solve costs, which since the
        # batch-mode default are additive lockstep shares — a several-times
        # stronger (cheaper) cold baseline than the per-scenario loop, so the
        # floor sits lower than the paper's scalar-reference SF.  The SF
        # denominator is a live inference timing, so the hard floor is
        # strict-gated (shared-runner scheduler noise dips a ~10x measurement
        # below it); the quality-gap asserts below are deterministic.
        assert report.speedup_factor > 0
        if STRICT:
            assert report.speedup_factor > 8
        # The direct answer is close to, but not exactly, the optimum.
        assert report.cost_loss_pct < 20.0
        # And it is not exactly feasible — the reason the paper refines it with MIPS.
        assert report.feasibility_violation > 1e-6


def test_bench_table3_inference_latency(benchmark, framework14):
    """Benchmark single-problem inference, the denominator of the SF metric."""
    trainer = framework14.artifacts.trainer
    dataset = framework14.artifacts.validation_set
    benchmark(lambda: trainer.predict_physical(dataset.inputs[:1]))
