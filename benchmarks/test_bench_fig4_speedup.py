"""Figure 4 — end-to-end speedup (a), iteration counts (b) and success rate (c).

For each benchmark system the trained Smart-PGSim model warm-starts every
validation problem; the bench prints the three series of Fig. 4 and checks the
qualitative claims: SU > 1 with no optimality loss, a large iteration-count
reduction, and a high warm-start success rate.
"""

import pytest

from repro.opf import solve_opf


@pytest.fixture(scope="module")
def evaluations(frameworks):
    return {name: fw.online_evaluate() for name, fw in frameworks.items()}


def test_bench_fig4_series(benchmark, frameworks, evaluations):
    """Print the Fig. 4 series; benchmark one full online problem (inference + warm solve)."""
    fw = frameworks["case14"]
    dataset = fw.artifacts.validation_set

    def one_online_problem():
        warm = fw.artifacts.trainer.warm_start_for(dataset.inputs[0])
        return solve_opf(
            fw.case,
            warm_start=warm,
            Pd_mw=dataset.Pd_mw[0],
            Qd_mvar=dataset.Qd_mw[0],
            model=fw.opf_model,
        )

    result = benchmark(one_online_problem)
    assert result.success

    print("\nFigure 4 — MIPS vs Smart-PGSim")
    print(
        f"{'system':>8} {'SU':>6} {'SR %':>6} {'iters cold':>11} {'iters warm':>11} "
        f"{'iter ratio':>10} {'cost dev':>10}"
    )
    for name, ev in evaluations.items():
        print(
            f"{name:>8} {ev.speedup:>6.2f} {100 * ev.success_rate:>6.1f} "
            f"{ev.mean_iterations_cold:>11.1f} {ev.mean_iterations_warm:>11.1f} "
            f"{ev.iteration_ratio:>10.2f} {ev.mean_cost_deviation:>10.2e}"
        )

    for name, ev in evaluations.items():
        # Fig. 4a: the warm-started pipeline is faster end to end.
        assert ev.speedup > 1.0
        # Fig. 4b: iterations drop sharply (paper reports 16-30 % of the cold count).
        assert ev.iteration_ratio < 0.6
        # Fig. 4c: high warm-start success rate.
        assert ev.success_rate >= 0.75
        # "Without losing solution optimality".
        assert ev.mean_cost_deviation < 1e-5


def test_bench_fig4_cold_solver_reference(benchmark, frameworks):
    """Benchmark the cold-start MIPS solve, the Fig. 4a reference bar."""
    fw = frameworks["case14"]
    dataset = fw.artifacts.validation_set
    result = benchmark(
        lambda: solve_opf(
            fw.case, Pd_mw=dataset.Pd_mw[0], Qd_mvar=dataset.Qd_mw[0], model=fw.opf_model
        )
    )
    assert result.success
