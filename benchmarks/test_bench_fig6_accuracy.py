"""Figure 6 — per-feature prediction accuracy of the warm-start point."""

import numpy as np

from repro.data import TASK_NAMES


def test_bench_fig6_prediction_accuracy(benchmark, framework14):
    dataset = framework14.artifacts.validation_set
    trainer = framework14.artifacts.trainer

    # Benchmark batched warm-start inference (what the online phase pays per problem).
    benchmark(lambda: trainer.predict_physical(dataset.inputs))

    accuracy = framework14.prediction_accuracy()
    print("\nFigure 6 — normalised prediction vs ground truth (validation split)")
    print(f"{'task':>6} {'mean |err|':>11} {'p90 |err|':>10} {'corr':>6}")
    stats = {}
    for task in TASK_NAMES:
        pred = accuracy[task]["prediction"].ravel()
        truth = accuracy[task]["ground_truth"].ravel()
        err = np.abs(pred - truth)
        corr = np.corrcoef(pred, truth)[0, 1] if truth.std() > 1e-12 else 1.0
        stats[task] = (err.mean(), np.percentile(err, 90), corr)
        print(f"{task:>6} {err.mean():>11.4f} {np.percentile(err, 90):>10.4f} {corr:>6.3f}")

    # Main tasks hug the y = x diagonal (paper: "negligible accuracy lost" for
    # Va, Vm, Pg, Qg, µ and Z; λ shows the largest spread).  The thresholds are
    # loose because the benchmark model is trained on a small demo dataset —
    # scale REPRO_BENCH_SAMPLES/EPOCHS up for paper-fidelity accuracy.
    for task in ("Vm", "Pg"):
        assert stats[task][0] < 0.35
        assert np.isfinite(stats[task][2])
