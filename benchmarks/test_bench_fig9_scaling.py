"""Figure 9 — strong and weak scaling of the scenario sweep across workers.

Single-worker inference throughput is measured on this machine and fed into
the calibrated cluster model (the V100 cluster of the paper is not available);
the process-pool runner additionally exercises the real scatter/compute/gather
path on a small scenario batch.
"""

import pytest

from repro.parallel import (
    PAPER_WORKER_COUNTS,
    calibrate_from_inference,
    generate_scenarios,
    run_scenario_sweep,
)


def test_bench_fig9_strong_and_weak_scaling(benchmark, framework14):
    trainer = framework14.artifacts.trainer
    dataset = framework14.artifacts.dataset
    inputs = dataset.inputs

    model = benchmark.pedantic(
        lambda: calibrate_from_inference(trainer.predict_physical, inputs, repeats=2),
        rounds=1,
        iterations=1,
    )

    # The paper's per-scenario model is two orders of magnitude larger than the
    # benchmark configuration, so 10k scenarios of its work correspond to a much
    # larger count of our tiny inferences.  Scale the strong-scaling problem so
    # one worker carries a few minutes of work, matching the paper's regime.
    n_strong = max(10_000, int(model.throughput * 240))
    per_worker = max(10_000, int(model.throughput * 20))
    strong = model.strong_scaling(n_strong, PAPER_WORKER_COUNTS)
    weak = model.weak_scaling(per_worker, PAPER_WORKER_COUNTS)
    efficiency = model.efficiency(n_strong, PAPER_WORKER_COUNTS)

    print("\nFigure 9 — scaling of warm-start generation (calibrated model)")
    print(f"{'workers':>8} {'strong speedup':>15} {'efficiency':>11} {'weak rate (scen/s)':>19}")
    for w in PAPER_WORKER_COUNTS:
        print(f"{w:>8} {strong[w]:>15.1f} {efficiency[w]:>11.2f} {weak[w]:>19.1f}")

    # Strong scaling: monotone speedup, sub-linear at 128 workers (as in Fig. 9a).
    assert strong[1] == pytest.approx(1.0)
    assert strong[128] > strong[16] > strong[1]
    assert strong[128] < 128
    # Weak scaling: sustained rate keeps growing with the worker count (Fig. 9b)
    # and scales better than strong scaling (the paper's observation).
    assert weak[128] > weak[16] > weak[1]
    assert weak[128] / weak[1] > strong[128] / strong[1] * 0.9


def test_bench_fig9_process_pool_sweep(benchmark, framework9):
    """Benchmark a real (in-process) scenario sweep of warm-started solves."""
    case = framework9.case
    trainer = framework9.artifacts.trainer
    scenarios = generate_scenarios(case, 4, seed=3)
    warm = [
        trainer.warm_start_for(s.feature_vector(case.base_mva)) for s in scenarios
    ]

    result = benchmark.pedantic(
        lambda: run_scenario_sweep(case, scenarios, warm_starts=warm, n_workers=1),
        rounds=1,
        iterations=1,
    )
    assert result.n_scenarios == 4
    assert result.success_rate >= 0.75
