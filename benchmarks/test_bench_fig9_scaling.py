"""Figure 9 — strong and weak scaling of the scenario sweep across workers.

The analytic cluster model is calibrated from the *measured* single-worker
rate of the batched serving engine on this machine (the V100 cluster of the
paper is not available): one :meth:`WarmStartEngine.serve` run covers batched
MTL inference plus the warm-started solves, and its end-to-end
scenarios/second seeds :meth:`ClusterModel.calibrate`.  The process-pool
runner additionally exercises the real scatter/compute/gather path on a small
scenario batch.
"""

import pytest

from repro.parallel import (
    PAPER_WORKER_COUNTS,
    ClusterModel,
    generate_scenarios,
    run_scenario_sweep,
)


def test_bench_fig9_strong_and_weak_scaling(benchmark, framework14):
    engine = framework14.engine
    scenarios = generate_scenarios(framework14.case, 8, seed=3)

    sweep = benchmark.pedantic(
        lambda: engine.serve(scenarios, n_workers=1), rounds=1, iterations=1
    )
    assert sweep.success_rate > 0.5
    model = ClusterModel.calibrate(sweep.throughput)
    benchmark.extra_info["engine_throughput_scen_per_s"] = sweep.throughput

    # The paper's strong-scaling run keeps one worker busy for minutes; scale
    # the problem count so the calibrated model sits in the same regime.
    n_strong = max(10_000, int(model.throughput * 240))
    per_worker = max(10_000, int(model.throughput * 20))
    strong = model.strong_scaling(n_strong, PAPER_WORKER_COUNTS)
    weak = model.weak_scaling(per_worker, PAPER_WORKER_COUNTS)
    efficiency = model.efficiency(n_strong, PAPER_WORKER_COUNTS)

    print("\nFigure 9 — scaling of the serving engine (calibrated model)")
    print(f"measured single-worker rate: {model.throughput:.1f} scenarios/s")
    print(f"{'workers':>8} {'strong speedup':>15} {'efficiency':>11} {'weak rate (scen/s)':>19}")
    for w in PAPER_WORKER_COUNTS:
        print(f"{w:>8} {strong[w]:>15.1f} {efficiency[w]:>11.2f} {weak[w]:>19.1f}")

    # Strong scaling: monotone speedup, sub-linear at 128 workers (as in Fig. 9a).
    assert strong[1] == pytest.approx(1.0)
    assert strong[128] > strong[16] > strong[1]
    assert strong[128] < 128
    # Weak scaling: sustained rate keeps growing with the worker count (Fig. 9b)
    # and scales better than strong scaling (the paper's observation).
    assert weak[128] > weak[16] > weak[1]
    assert weak[128] / weak[1] > strong[128] / strong[1] * 0.9


def test_bench_fig9_process_pool_sweep(benchmark, framework9):
    """Benchmark a real (in-process) scenario sweep of warm-started solves."""
    case = framework9.case
    trainer = framework9.artifacts.trainer
    scenarios = generate_scenarios(case, 4, seed=3)
    warm = trainer.warm_starts_for(scenarios.feature_matrix(case.base_mva))

    result = benchmark.pedantic(
        lambda: run_scenario_sweep(case, scenarios, warm_starts=warm, n_workers=1),
        rounds=1,
        iterations=1,
    )
    assert result.n_scenarios == 4
    assert result.success_rate >= 0.75
