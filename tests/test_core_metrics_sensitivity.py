"""Tests of the evaluation metrics and the Table-I sensitivity tool."""

import numpy as np
import pytest

from repro.core import (
    BoxStats,
    COMBINATIONS,
    cost_loss,
    iteration_reduction,
    normalized_series,
    relative_error_summary,
    relative_errors,
    run_sensitivity_study,
    speedup_factor_sf,
    speedup_su,
    success_rate,
)


# ------------------------------------------------------------------------ metrics
def test_success_rate_basic():
    assert success_rate([True, True, False, True]) == pytest.approx(0.75)
    with pytest.raises(ValueError):
        success_rate([])


def test_speedup_su_formula():
    # Perfect success: SU = T / (t_mtl + t_warm).
    assert speedup_su(10.0, 1.0, 4.0, 1.0) == pytest.approx(2.0)
    # Failures add the restart cost T*(1-SR).
    assert speedup_su(10.0, 1.0, 4.0, 0.5) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        speedup_su(10.0, 1.0, 4.0, 1.5)
    with pytest.raises(ValueError):
        speedup_su(0.0, 0.0, 0.0, 1.0)


def test_speedup_factor_sf():
    assert speedup_factor_sf([10, 20], [1, 2]) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        speedup_factor_sf([1, 2], [1])
    with pytest.raises(ValueError):
        speedup_factor_sf([1.0], [0.0])


def test_cost_loss_percentage():
    assert cost_loss([100.0, 200.0], [101.0, 202.0]) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        cost_loss([], [])


def test_relative_errors_and_summary():
    err = relative_errors(np.array([1.1, 2.0]), np.array([1.0, 2.0]))
    assert err[0] == pytest.approx(0.1)
    stats = relative_error_summary(np.array([1.1, 2.0, 3.3]), np.array([1.0, 2.0, 3.0]))
    assert isinstance(stats, BoxStats)
    assert stats.minimum <= stats.q25 <= stats.median <= stats.q75 <= stats.maximum
    with pytest.raises(ValueError):
        BoxStats.from_values(np.array([]))


def test_iteration_reduction():
    assert iteration_reduction([20, 30], [5, 5]) == pytest.approx(0.2)
    with pytest.raises(ValueError):
        iteration_reduction([], [1])


def test_normalized_series():
    out = normalized_series(np.array([2.0, 4.0, 6.0]))
    assert out.min() == 0 and out.max() == 1
    assert np.allclose(normalized_series(np.full(3, 5.0)), 0.5)


# --------------------------------------------------------------- sensitivity study
def test_combinations_enumerate_all_16():
    assert len(COMBINATIONS) == 16
    assert (0, 0, 0, 0) in COMBINATIONS and (1, 1, 1, 1) in COMBINATIONS


@pytest.fixture(scope="module")
def sensitivity_report(case9_fixture):
    # A reduced study: 3 scenarios, 4 informative combinations.
    combos = ((0, 0, 0, 0), (1, 0, 0, 0), (0, 0, 0, 1), (1, 1, 1, 1))
    return run_sensitivity_study(case9_fixture, n_scenarios=3, seed=11, combinations=combos)


def test_sensitivity_baseline_always_succeeds(sensitivity_report):
    baseline = sensitivity_report.row("0000")
    assert baseline.success_rate == pytest.approx(1.0)
    assert baseline.speedup == pytest.approx(1.0, rel=0.5)


def test_sensitivity_precise_x_succeeds(sensitivity_report):
    """Observation 1: a precise X alone keeps the success rate at 100 %."""
    assert sensitivity_report.row("1000").success_rate == pytest.approx(1.0)


def test_sensitivity_all_precise_is_fastest(sensitivity_report):
    """Observation 1/case XVI: all four signals together give the largest speedup."""
    full = sensitivity_report.row("1111")
    assert full.success_rate == pytest.approx(1.0)
    assert full.mean_iterations < sensitivity_report.row("0000").mean_iterations
    assert full.speedup > sensitivity_report.row("1000").speedup


def test_sensitivity_z_without_mu_hurts(sensitivity_report):
    """Observation 2: a precise Z without a precise µ harms convergence."""
    z_only = sensitivity_report.row("0001")
    full = sensitivity_report.row("1111")
    assert z_only.success_rate <= full.success_rate
    assert z_only.mean_iterations >= full.mean_iterations


def test_sensitivity_report_table_format(sensitivity_report):
    table = sensitivity_report.as_table()
    assert len(table) == 4
    assert {"X", "lambda", "mu", "Z", "success_rate_pct", "speedup"} <= set(table[0])
    with pytest.raises(KeyError):
        sensitivity_report.row("0101")
