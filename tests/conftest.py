"""Shared pytest fixtures.

Expensive artefacts (solved OPF cases, generated datasets, trained models) are
session-scoped so the full suite stays fast while still exercising the real
pipeline end to end.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running the suite from a source checkout without installation.
SRC = Path(__file__).resolve().parents[1] / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np
import pytest

from repro.data import generate_dataset
from repro.grid import case9, case14, get_case
from repro.mtl import MTLTrainer, SmartPGSimMTL, TaskDimensions, fast_config
from repro.opf import OPFModel, solve_opf


@pytest.fixture(scope="session")
def case9_fixture():
    """The WSCC 9-bus case."""
    return case9()


@pytest.fixture(scope="session")
def case14_fixture():
    """The IEEE 14-bus case."""
    return case14()


@pytest.fixture(scope="session")
def case30s_fixture():
    """The synthetic 30-bus Table-II equivalent."""
    return get_case("case30s")


@pytest.fixture(scope="session")
def opf_model9(case9_fixture):
    """OPF model (admittances, indexing) for case9."""
    return OPFModel(case9_fixture)


@pytest.fixture(scope="session")
def opf_solution9(case9_fixture, opf_model9):
    """Converged cold-start OPF solution of case9."""
    result = solve_opf(case9_fixture, model=opf_model9)
    assert result.success
    return result


@pytest.fixture(scope="session")
def opf_solution14(case14_fixture):
    """Converged cold-start OPF solution of case14."""
    result = solve_opf(case14_fixture)
    assert result.success
    return result


@pytest.fixture(scope="session")
def dataset9(case9_fixture, opf_model9):
    """Small ground-truth dataset for case9 (24 scenarios)."""
    return generate_dataset(case9_fixture, 24, seed=123, model=opf_model9)


@pytest.fixture(scope="session")
def trained_trainer9(case9_fixture, opf_model9, dataset9):
    """An MTL model trained briefly on the case9 dataset."""
    train, _val = dataset9.split(0.8, seed=0)
    dims = TaskDimensions(
        n_bus=case9_fixture.n_bus,
        n_gen=case9_fixture.n_gen,
        n_eq=dataset9.task_dim("lam"),
        n_ineq=dataset9.task_dim("mu"),
    )
    config = fast_config(epochs=20)
    network = SmartPGSimMTL(dims, config, seed=0)
    trainer = MTLTrainer(network, train, opf_model9, config=config)
    trainer.train()
    return trainer


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
