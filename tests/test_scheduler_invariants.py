"""Scheduler-invariant harness: the elastic dispatch must never change results.

The elastic scenario scheduler (PR 5) decides *where and with whom* a scenario
is solved — cost-balanced static chunks, stolen micro-batches, retire-and-
refill lockstep windows, cross-sweep contingency groups — while the
per-scenario result semantics must survive every one of those choices
bit for bit.  This suite pins that contract:

* pure scheduling functions partition the sweep exactly once, keep
  micro-batches topology-pure and balance predicted cost (property-based);
* ``mips_batch``'s retire-and-refill feed is bitwise-invariant in the lockstep
  window size, including singular-KKT scenarios enrolled mid-flight whose
  ``kkt_regularizations`` must land on the right scenario (property-based);
* fleet sweeps are exactly-once, invariant under scenario permutation and
  micro-batch size, and keep additive ``solve_seconds`` wall shares bounded
  by the sweep wall under stealing.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.mips.batch import BatchFeedPayload, mips_batch
from repro.mips.options import MIPSOptions
from repro.parallel import (
    SCHEDULES,
    Scenario,
    ScenarioSet,
    SolverFleet,
    auto_microbatch_size,
    balanced_assignment,
    generate_scenarios,
    make_microbatches,
    predicted_cost,
    run_scenario_sweep,
    topology_key,
)
from repro.parallel.scheduler import COLD_COST_FACTOR, MicroBatch


# --------------------------------------------------------------- pure policies
def _fake_scenarios(outages):
    nb = 3
    return [
        Scenario(i, np.full(nb, 10.0 + i), np.full(nb, 3.0), outage_branch=o)
        for i, o in enumerate(outages)
    ]


outage_lists = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=3)), min_size=1, max_size=24
)
warm_masks = st.lists(st.booleans(), min_size=1, max_size=24)


@settings(max_examples=60, deadline=None)
@given(outages=outage_lists, data=st.data())
def test_balanced_assignment_partitions_exactly_once(outages, data):
    scenarios = _fake_scenarios(outages)
    warm_flags = data.draw(
        st.lists(st.booleans(), min_size=len(outages), max_size=len(outages))
    )
    warms = [object() if w else None for w in warm_flags]
    n_chunks = data.draw(st.integers(min_value=1, max_value=6))
    chunks = balanced_assignment(scenarios, warms, n_chunks)
    assert len(chunks) == n_chunks
    everything = sorted(pos for chunk in chunks for pos in chunk)
    assert everything == list(range(len(outages)))
    # Within-chunk positions keep input order.
    for chunk in chunks:
        assert chunk == sorted(chunk)
    # Determinism: same inputs, same assignment.
    assert chunks == balanced_assignment(scenarios, warms, n_chunks)


@settings(max_examples=60, deadline=None)
@given(outages=outage_lists, data=st.data())
def test_balanced_assignment_bounds_chunk_cost(outages, data):
    """LPT greedy: no chunk exceeds the ideal share by more than one scenario."""
    scenarios = _fake_scenarios(outages)
    warm_flags = data.draw(
        st.lists(st.booleans(), min_size=len(outages), max_size=len(outages))
    )
    warms = [object() if w else None for w in warm_flags]
    n_chunks = data.draw(st.integers(min_value=1, max_value=6))
    costs = [predicted_cost(s, w) for s, w in zip(scenarios, warms)]
    chunks = balanced_assignment(scenarios, warms, n_chunks)
    loads = [sum(costs[i] for i in chunk) for chunk in chunks]
    assert max(loads) <= sum(costs) / n_chunks + max(costs) + 1e-12


@settings(max_examples=60, deadline=None)
@given(outages=outage_lists, data=st.data())
def test_microbatches_topology_pure_and_exactly_once(outages, data):
    scenarios = _fake_scenarios(outages)
    microbatch = data.draw(st.integers(min_value=1, max_value=8))
    batches = make_microbatches(scenarios, microbatch=microbatch)
    everything = sorted(pos for mb in batches for pos in mb.positions)
    assert everything == list(range(len(outages)))
    for mb in batches:
        assert isinstance(mb, MicroBatch)
        assert 1 <= len(mb) <= microbatch
        assert {topology_key(scenarios[pos]) for pos in mb.positions} == {mb.key}
        assert mb.key == (() if outages[mb.positions[0]] is None else (outages[mb.positions[0]],))


def test_auto_microbatch_size_oversubscribes():
    assert auto_microbatch_size(0, 4) == 1
    assert auto_microbatch_size(64, 4) == 4  # 64 / (4 workers * 4x) = 4
    assert auto_microbatch_size(3, 8) == 1
    assert auto_microbatch_size(10, 1) == 3


def test_balanced_assignment_slow_scenario_regression():
    """One deliberately slow (cold) scenario must not serialise its chunk.

    The seed chunking split 8 scenarios into two chunks of 4 regardless of
    cost; with one cold scenario (predicted 3x a warm one) that chunk held
    4 + the slow solve while the other finished early.  The cost-balanced
    assignment pairs the cold scenario with fewer warm ones.
    """
    scenarios = _fake_scenarios([None] * 8)
    warms = [object()] * 8
    warms[3] = None  # the deliberately slow one: a cold start
    chunks = balanced_assignment(scenarios, warms, 2)
    slow_chunk = next(chunk for chunk in chunks if 3 in chunk)
    fast_chunk = next(chunk for chunk in chunks if 3 not in chunk)
    assert len(slow_chunk) < len(fast_chunk)
    costs = [predicted_cost(s, w) for s, w in zip(scenarios, warms)]
    loads = sorted(sum(costs[i] for i in chunk) for chunk in (slow_chunk, fast_chunk))
    assert loads[1] - loads[0] <= COLD_COST_FACTOR  # balanced to within one slow solve


# --------------------------------------------------- retire-and-refill (QP level)
def _qp_problem(batch, nx, neq, niq, seed):
    rng = np.random.default_rng(seed)
    M = rng.uniform(0.5, 1.5, size=(batch, nx, nx))
    H = M @ M.transpose(0, 2, 1) + nx * np.eye(nx)
    c = rng.uniform(-1.0, 1.0, size=(batch, nx))
    Aeq = rng.uniform(0.5, 1.5, size=(batch, neq, nx))
    beq = rng.uniform(-0.5, 0.5, size=(batch, neq))
    Ain = rng.uniform(0.5, 1.5, size=(batch, niq, nx))
    bin_ = rng.uniform(1.0, 2.0, size=(batch, niq))
    return H, c, Aeq, beq, Ain, bin_


def _solve_qp_batch(H, c, Aeq, beq, Ain, bin_, window=None, kkt_solver="factorized"):
    """Solve a same-structure QP batch through mips_batch, optionally windowed."""
    batch, nx = c.shape
    neq, niq = beq.shape[1], bin_.shape[1]

    # Row-wise loops (not batched einsum): the invariance contract only holds
    # for callbacks whose row results are independent of batch composition,
    # which the real batched OPF kernels guarantee and einsum does not.
    def f_fcn(X, idx):
        F = np.array([0.5 * x @ H[j] @ x + c[j] @ x for x, j in zip(X, idx)])
        dF = np.stack([H[j] @ x + c[j] for x, j in zip(X, idx)])
        return F, dF

    def gh_fcn(X, idx):
        G = np.stack([Aeq[j] @ x - beq[j] for x, j in zip(X, idx)])
        Hc = np.stack([Ain[j] @ x - bin_[j] for x, j in zip(X, idx)])
        return G, Hc, Aeq[idx].reshape(idx.size, -1), Ain[idx].reshape(idx.size, -1)

    def hess_fcn(X, lam_nl, mu_nl, cost_mult, idx):
        return (H[idx] * cost_mult).reshape(idx.size, -1)

    kwargs = dict(
        gh_fcn=gh_fcn,
        hess_fcn=hess_fcn,
        jg_template=sp.csr_matrix(np.ones((neq, nx))),
        jh_template=sp.csr_matrix(np.ones((niq, nx))),
        hess_template=sp.csr_matrix(np.ones((nx, nx))),
        xmin=np.full(nx, -5.0),
        xmax=np.full(nx, 5.0),
        options=MIPSOptions(kkt_solver=kkt_solver),
    )
    X0 = np.zeros((batch, nx))
    if window is None or window >= batch:
        return mips_batch(f_fcn, X0, **kwargs)

    cursor = window

    def feed(free):
        nonlocal cursor
        if cursor >= batch:
            return None
        stop = min(cursor + free, batch)
        payload = BatchFeedPayload(x0=X0[cursor:stop])
        cursor = stop
        return payload

    return mips_batch(f_fcn, X0[:window], feed=feed, feed_capacity=batch, **kwargs)


@settings(max_examples=20, deadline=None)
@given(
    batch=st.integers(min_value=2, max_value=6),
    nx=st.integers(min_value=2, max_value=5),
    neq=st.integers(min_value=1, max_value=2),
    niq=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=10_000),
    window=st.integers(min_value=1, max_value=6),
    backend=st.sampled_from(["factorized", "blockdiag"]),
)
def test_feed_window_bitwise_invariant(batch, nx, neq, niq, seed, window, backend):
    """Every lockstep window size yields bitwise the full-batch results."""
    problem = _qp_problem(batch, nx, max(neq, 1), niq, seed)
    full = _solve_qp_batch(*problem, kkt_solver=backend)
    windowed = _solve_qp_batch(*problem, window=min(window, batch), kkt_solver=backend)
    assert len(full) == len(windowed) == batch  # exactly once, in order
    for a, b in zip(full, windowed):
        assert a.converged == b.converged
        assert a.iterations == b.iterations
        assert a.f == b.f
        assert np.array_equal(a.x, b.x)
        assert np.array_equal(a.lam, b.lam)
        assert np.array_equal(a.mu, b.mu)
        assert np.array_equal(a.z, b.z)
        assert a.kkt_regularizations == b.kkt_regularizations
        assert len(a.history) == len(b.history)


@settings(max_examples=15, deadline=None)
@given(
    batch=st.integers(min_value=2, max_value=5),
    window=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_feed_wall_shares_additive(batch, window, seed):
    """Wall shares of a windowed solve stay additive: they sum to ≤ the wall."""
    import time

    problem = _qp_problem(batch, 4, 2, 2, seed)
    t0 = time.perf_counter()
    results = _solve_qp_batch(*problem, window=min(window, batch))
    wall = time.perf_counter() - t0
    shares = sum(r.wall_share_seconds for r in results)
    assert all(r.wall_share_seconds >= 0.0 for r in results)
    assert shares <= wall + 1e-6


def _singular_requeue_problem(batch=4, nx=5, neq=2, niq=2, seed=4):
    """QP batch whose *third* slot has consistent rank-deficient equalities.

    With ``window=1`` the singular slot enrolls mid-flight (after slot 0
    retires), exercising regularisation attribution across a requeue.
    """
    H, c, Aeq, beq, Ain, bin_ = _qp_problem(batch, nx, neq, niq, seed)
    sick = 2
    Aeq = Aeq.copy()
    beq = beq.copy()
    Aeq[sick, 1] = Aeq[sick, 0]  # duplicated row: rank-deficient but consistent
    beq[sick, 1] = beq[sick, 0]
    return (H, c, Aeq, beq, Ain, bin_), sick


@pytest.mark.parametrize("backend", ["factorized", "blockdiag"])
def test_regularizations_attributed_after_requeue(backend):
    problem, sick = _singular_requeue_problem()
    full = _solve_qp_batch(*problem, kkt_solver=backend)
    assert full[sick].kkt_regularizations > 0
    for window in (1, 2, 3):
        windowed = _solve_qp_batch(*problem, window=window, kkt_solver=backend)
        for b, (a, w) in enumerate(zip(full, windowed)):
            # Recoveries land on the singular scenario only, wherever the
            # window happened to place it; neighbours stay bit-unaffected.
            assert w.kkt_regularizations == a.kkt_regularizations
            assert (w.kkt_regularizations > 0) == (b == sick)
            assert np.array_equal(a.x, w.x)
            assert a.iterations == w.iterations


# ------------------------------------------------------------ fleet invariants
@pytest.fixture(scope="module")
def sweep_case9():
    from repro.grid import get_case

    case = get_case("case9")
    scenarios = generate_scenarios(
        case, 8, variation=0.08, contingency_fraction=0.4, seed=5
    )
    assert any(s.outage_branch is not None for s in scenarios)
    return case, scenarios


def _by_id(sweep):
    return {o.scenario_id: o for o in sweep.outcomes}


def _assert_bitwise_equal_outcomes(a, b):
    assert a.scenario_id == b.scenario_id
    assert a.success == b.success
    assert a.converged == b.converged
    assert a.iterations == b.iterations
    if a.success:
        assert a.objective == b.objective


def test_fleet_exactly_once_and_sorted(sweep_case9):
    case, scenarios = sweep_case9
    for schedule in SCHEDULES:
        sweep = run_scenario_sweep(
            case, scenarios, execution="batch", schedule=schedule, microbatch=2
        )
        ids = [o.scenario_id for o in sweep.outcomes]
        assert ids == sorted(ids)
        assert ids == [s.scenario_id for s in scenarios]
        assert sweep.schedule == schedule


def test_fleet_steal_results_invariant_under_microbatch_size(sweep_case9):
    case, scenarios = sweep_case9
    reference = run_scenario_sweep(
        case, scenarios, execution="batch", schedule="steal", microbatch=len(scenarios)
    )
    for microbatch in (1, 2, 3, None):
        sweep = run_scenario_sweep(
            case, scenarios, execution="batch", schedule="steal", microbatch=microbatch
        )
        for a, b in zip(reference.outcomes, sweep.outcomes):
            _assert_bitwise_equal_outcomes(a, b)


def test_fleet_steal_results_invariant_under_permutation(sweep_case9):
    """Submitting the sweep in any scenario order yields identical results."""
    case, scenarios = sweep_case9
    reference = _by_id(
        run_scenario_sweep(case, scenarios, execution="batch", schedule="steal", microbatch=2)
    )
    rng = np.random.default_rng(0)
    for _ in range(3):
        order = rng.permutation(len(scenarios))
        shuffled = ScenarioSet(case.name, [scenarios[int(i)] for i in order])
        sweep = run_scenario_sweep(
            case, shuffled, execution="batch", schedule="steal", microbatch=2
        )
        assert sorted(o.scenario_id for o in sweep.outcomes) == sorted(reference)
        for outcome in sweep.outcomes:
            _assert_bitwise_equal_outcomes(reference[outcome.scenario_id], outcome)


def test_fleet_scenario_mode_schedule_invariant(sweep_case9):
    """In scenario execution, scheduling cannot change results at all."""
    case, scenarios = sweep_case9
    static = run_scenario_sweep(case, scenarios, execution="scenario", schedule="static")
    steal = run_scenario_sweep(
        case, scenarios, execution="scenario", schedule="steal", microbatch=1
    )
    for a, b in zip(static.outcomes, steal.outcomes):
        _assert_bitwise_equal_outcomes(a, b)
        assert a.objective == b.objective or (
            np.isnan(a.objective) and np.isnan(b.objective)
        )


def test_fleet_steal_wall_shares_bounded_by_sweep_wall(sweep_case9):
    """Additive solve_seconds shares stay bounded by the sweep wall (in-process)."""
    case, scenarios = sweep_case9
    sweep = run_scenario_sweep(
        case, scenarios, execution="batch", schedule="steal", microbatch=2
    )
    assert all(o.solve_seconds >= 0.0 for o in sweep.outcomes)
    assert sweep.total_solver_seconds() <= sweep.wall_seconds + 1e-6


def test_fleet_solve_many_matches_separate_sweeps(sweep_case9):
    case, scenarios = sweep_case9
    other = generate_scenarios(case, 5, variation=0.06, contingency_fraction=0.4, seed=11)
    with SolverFleet(case, execution="batch", schedule="steal", microbatch=2) as fleet:
        separate = [fleet.solve(scenarios), fleet.solve(other)]
        grouped = fleet.solve_many([scenarios, other])
    assert len(grouped) == 2
    for sep, grp in zip(separate, grouped):
        assert grp.schedule == "steal"
        assert grp.n_scenarios == sep.n_scenarios
        for a, b in zip(sep.outcomes, grp.outcomes):
            _assert_bitwise_equal_outcomes(a, b)


def test_fleet_validates_schedule_and_microbatch(sweep_case9):
    case, _ = sweep_case9
    with pytest.raises(ValueError, match="schedule"):
        SolverFleet(case, schedule="magic")
    with pytest.raises(ValueError, match="microbatch"):
        SolverFleet(case, schedule="steal", microbatch=0)
    from repro.data import generate_dataset

    with pytest.raises(ValueError, match="schedule"):
        generate_dataset(case, 2, schedule="magic")
