"""Tests for the built-in case registry and the synthetic case generator."""

import numpy as np
import pytest

from repro.grid import (
    SyntheticGridConfig,
    available_cases,
    case9,
    generate_case,
    get_case,
    register_case,
    validate_case,
)
from repro.grid.synthetic import case30s, case57s, scaled_family


def test_available_cases_contains_expected_systems():
    names = available_cases()
    for expected in ("case9", "case14", "case30s", "case57s", "case118s", "case300s"):
        assert expected in names


def test_get_case_unknown_name_raises():
    with pytest.raises(KeyError):
        get_case("case9999")


def test_register_case_roundtrip():
    register_case("tiny_copy", case9)
    assert "tiny_copy" in available_cases()
    assert get_case("tiny_copy").n_bus == 9


def test_register_case_requires_callable():
    with pytest.raises(TypeError):
        register_case("bad", 42)


@pytest.mark.parametrize(
    "name, nb, ng, nl",
    [
        ("case30s", 30, 6, 41),
        ("case57s", 57, 7, 80),
        ("case118s", 118, 54, 185),
        ("case300s", 300, 69, 411),
    ],
)
def test_synthetic_cases_match_table2_counts(name, nb, ng, nl):
    case = get_case(name)
    assert case.n_bus == nb
    assert case.n_gen == ng
    assert case.n_branch == nl


def test_synthetic_cases_are_valid():
    for name in ("case30s", "case57s"):
        assert validate_case(get_case(name), raise_on_error=False) == []


def test_synthetic_generation_is_deterministic():
    a = case30s(seed=30)
    b = case30s(seed=30)
    assert np.allclose(a.branch.x, b.branch.x)
    assert np.allclose(a.bus.Pd, b.bus.Pd)
    assert np.allclose(a.gen.Pmax, b.gen.Pmax)


def test_synthetic_generation_varies_with_seed():
    a = case30s(seed=1)
    b = case30s(seed=2)
    assert not np.allclose(a.branch.x, b.branch.x)


def test_synthetic_capacity_exceeds_load():
    case = case57s()
    assert case.total_gen_capacity() > case.bus.Pd.sum() * 1.3


def test_synthetic_config_validation():
    with pytest.raises(ValueError):
        SyntheticGridConfig(n_bus=2, n_gen=1, n_branch=1)
    with pytest.raises(ValueError):
        SyntheticGridConfig(n_bus=10, n_gen=11, n_branch=12)
    with pytest.raises(ValueError):
        SyntheticGridConfig(n_bus=10, n_gen=2, n_branch=5)  # fewer than nb-1 branches
    with pytest.raises(ValueError):
        SyntheticGridConfig(n_bus=10, n_gen=2, n_branch=12, load_factor=1.5)


def test_generate_case_custom_size():
    cfg = SyntheticGridConfig(n_bus=15, n_gen=4, n_branch=21, seed=7, name="custom15")
    case = generate_case(cfg)
    assert case.name == "custom15"
    assert case.n_bus == 15
    assert validate_case(case, raise_on_error=False) == []
    # Ratings were calibrated: every branch has a positive rating.
    assert np.all(case.branch.rate_a > 0)


def test_scaled_family_produces_increasing_sizes():
    base = SyntheticGridConfig(n_bus=20, n_gen=5, n_branch=28, seed=3, name="fam")
    family = scaled_family(base, [20, 40])
    assert [c.n_bus for c in family] == [20, 40]
    assert family[1].n_branch > family[0].n_branch
