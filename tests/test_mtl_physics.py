"""Tests of the physics-informed loss terms."""

import numpy as np
import pytest

from repro.data import TASK_NAMES
from repro.mtl import PhysicsContext, f_ac, f_cost, f_ieq, f_lag, physics_losses
from repro.mtl.physics import equality_values, inequality_values, predicted_cost
from repro.nn import Tensor
from repro.opf.costs import total_cost


@pytest.fixture(scope="module")
def ctx9(opf_model9):
    return PhysicsContext.from_model(opf_model9)


def _prediction_from_solution(opf_model9, dataset, index):
    """Exact solver values packaged as a 'prediction' batch of size 1."""
    return {task: Tensor(dataset.targets[task][index : index + 1]) for task in TASK_NAMES}


def _loads(dataset, index, nb):
    return dataset.inputs[index : index + 1, :nb], dataset.inputs[index : index + 1, nb:]


def test_context_dimensions(ctx9, case9_fixture):
    assert ctx9.n_bus == 9 and ctx9.n_gen == 3
    assert ctx9.Gbus.shape == (9, 9)
    assert ctx9.n_limited == 9
    assert ctx9.eq_bound_idx.size == 1  # reference angle
    # 48 inequality rows total: 18 branch-end rows + 30 bound rows.
    assert 2 * ctx9.n_limited + ctx9.ub_idx.size + ctx9.lb_idx.size == 48


def test_f_ac_is_small_at_exact_solution(ctx9, opf_model9, dataset9):
    pred = _prediction_from_solution(opf_model9, dataset9, 0)
    Pd, Qd = _loads(dataset9, 0, 9)
    value = f_ac(ctx9, pred, Pd, Qd).item()
    assert value < 1e-4


def test_f_ac_grows_with_perturbation(ctx9, opf_model9, dataset9):
    pred = _prediction_from_solution(opf_model9, dataset9, 0)
    Pd, Qd = _loads(dataset9, 0, 9)
    base = f_ac(ctx9, pred, Pd, Qd).item()
    pred_bad = dict(pred)
    pred_bad["Pg"] = pred["Pg"] * 1.3
    assert f_ac(ctx9, pred_bad, Pd, Qd).item() > base + 0.05


def test_f_ieq_penalises_bound_violations(ctx9, opf_model9, dataset9):
    pred = _prediction_from_solution(opf_model9, dataset9, 1)
    feasible = f_ieq(ctx9, pred).item()
    pred_bad = dict(pred)
    pred_bad["Vm"] = pred["Vm"] * 2.0  # far above Vmax = 1.1, overloads branches too
    violated = f_ieq(ctx9, pred_bad).item()
    assert violated > 2.0 * feasible
    # Mild perturbations inside the feasible region barely move the penalty.
    pred_ok = dict(pred)
    pred_ok["Vm"] = pred["Vm"] * 0.99
    assert abs(f_ieq(ctx9, pred_ok).item() - feasible) < violated - feasible


def test_f_cost_zero_for_exact_cost(ctx9, opf_model9, dataset9, case9_fixture):
    pred = _prediction_from_solution(opf_model9, dataset9, 2)
    value = f_cost(ctx9, pred, dataset9.objectives[2:3]).item()
    assert value < 1e-6
    # Consistency of the tensor cost with the reference implementation.
    cost = predicted_cost(ctx9, pred).data[0]
    Pg_mw = dataset9.targets["Pg"][2] * case9_fixture.base_mva
    assert cost == pytest.approx(total_cost(case9_fixture, Pg_mw), rel=1e-9)


def test_f_lag_small_at_solution_large_for_perturbed(ctx9, opf_model9, dataset9, rng):
    pred = _prediction_from_solution(opf_model9, dataset9, 3)
    Pd, Qd = _loads(dataset9, 3, 9)
    good = f_lag(ctx9, pred, Pd, Qd).item()
    assert good < 1e-6
    # Breaking the power balance (higher dispatch) makes λᵀg(X) large because
    # the balance multipliers are the (non-zero) locational marginal prices.
    pred_bad = dict(pred)
    pred_bad["Pg"] = pred["Pg"] * 1.2
    bad = f_lag(ctx9, pred_bad, Pd, Qd).item()
    assert bad > good + 1e-3


def test_constraint_value_orderings_match_solver(ctx9, opf_model9, dataset9):
    """g(X*) ≈ 0 and h(X*) + Z* ≈ 0 at the exact solution (complementarity layout check)."""
    pred = _prediction_from_solution(opf_model9, dataset9, 4)
    Pd, Qd = _loads(dataset9, 4, 9)
    g = equality_values(ctx9, pred, Pd, Qd).data
    h = inequality_values(ctx9, pred).data
    z = dataset9.targets["z"][4]
    assert g.shape == (1, 19)
    assert h.shape == (1, 48)
    assert np.abs(g).max() < 1e-4
    assert np.abs(h + z).max() < 1e-4


def test_physics_losses_aggregate_and_weights(ctx9, opf_model9, dataset9):
    pred = _prediction_from_solution(opf_model9, dataset9, 5)
    Pd, Qd = _loads(dataset9, 5, 9)
    f0 = dataset9.objectives[5:6]
    terms = physics_losses(ctx9, pred, Pd, Qd, f0, weights={"f_ac": 2.0, "f_ieq": 0.0, "f_cost": 1.0, "f_lag": 1.0})
    assert set(terms) == {"f_ac", "f_ieq", "f_cost", "f_lag", "total"}
    assert terms["f_ieq"].item() == 0.0
    recomputed = terms["f_ac"].item() + terms["f_ieq"].item() + terms["f_cost"].item() + terms["f_lag"].item()
    assert terms["total"].item() == pytest.approx(recomputed, rel=1e-9)


def test_physics_losses_are_differentiable(ctx9, opf_model9, dataset9):
    """Gradients must flow back to every predicted quantity."""
    index = 6
    pred = {
        task: Tensor(dataset9.targets[task][index : index + 1], requires_grad=True)
        for task in TASK_NAMES
    }
    Pd, Qd = _loads(dataset9, index, 9)
    terms = physics_losses(
        ctx9, pred, Pd, Qd, dataset9.objectives[index : index + 1],
        weights={"f_ac": 1.0, "f_ieq": 1.0, "f_cost": 1.0, "f_lag": 1.0},
    )
    terms["total"].backward()
    for task in ("Va", "Vm", "Pg", "Qg", "lam", "mu", "z"):
        assert pred[task].grad is not None
        assert np.all(np.isfinite(pred[task].grad))


def test_f_ac_gradient_matches_finite_differences(ctx9, opf_model9, dataset9):
    """Spot-check the autograd gradient of the power-balance loss against FD.

    The check is performed away from the exact solution: at the optimum the
    mismatch is zero and the absolute value inside ``f_AC`` sits on its kink,
    where finite differences are meaningless.
    """
    index = 0
    Pd, Qd = _loads(dataset9, index, 9)
    # Perturb the operating point *non-uniformly* so that every nodal mismatch
    # (including the zero-injection buses) is clearly non-zero: the |·| terms
    # are then locally smooth and finite differences are meaningful.
    bus_jitter = 0.03 * np.cos(np.arange(9))
    base = dataset9.targets["Va"][index : index + 1] + bus_jitter
    vm_scaled = dataset9.targets["Vm"][index : index + 1] * (1.0 + 0.02 * np.sin(np.arange(9) + 1.0))
    pg_scaled = dataset9.targets["Pg"][index : index + 1] * 1.15

    def perturbed_prediction(va_array):
        pred = _prediction_from_solution(opf_model9, dataset9, index)
        pred["Va"] = Tensor(va_array) if not isinstance(va_array, Tensor) else va_array
        pred["Vm"] = Tensor(vm_scaled)
        pred["Pg"] = Tensor(pg_scaled)
        return pred

    va_tensor = Tensor(base.copy(), requires_grad=True)
    f_ac(ctx9, perturbed_prediction(va_tensor), Pd, Qd).backward()
    grad = va_tensor.grad.copy()

    eps = 1e-6
    for j in (0, 3, 7):
        vp, vm = base.copy(), base.copy()
        vp[0, j] += eps
        vm[0, j] -= eps
        fd = (
            f_ac(ctx9, perturbed_prediction(vp), Pd, Qd).item()
            - f_ac(ctx9, perturbed_prediction(vm), Pd, Qd).item()
        ) / (2 * eps)
        assert grad[0, j] == pytest.approx(fd, rel=1e-4, abs=1e-7)
