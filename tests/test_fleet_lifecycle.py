"""Fleet lifecycle under failure: shutdown, respawn hygiene and empty sweeps.

A serving fleet must be safe to tear down at any time — including while a
sweep is in flight from another thread — must never leave orphaned spawn
processes behind, and must keep its worker count constant across injected
crashes.  Degenerate (empty) requests are valid and return empty results
instead of raising.
"""

import threading
import time

import pytest

from repro.parallel import PoolClosedError, SolverFleet, SweepResult, generate_scenarios
from repro.parallel.scenarios import ScenarioSet
from repro.testing.faults import FaultPlan, kill_worker, stall_solve


@pytest.fixture(scope="module")
def scenarios9(case9_fixture):
    return generate_scenarios(case9_fixture, 6, seed=1, contingency_fraction=0.5)


# ------------------------------------------------------------------- shutdown
def test_close_is_idempotent_and_final(case9_fixture, scenarios9):
    fleet = SolverFleet(case9_fixture, n_workers=2)
    procs = list(fleet._pool.processes)
    assert len(procs) == 2 and all(p.is_alive() for p in procs)
    fleet.close()
    fleet.close()  # second close is a no-op
    for proc in procs:
        proc.join(timeout=10)
        assert not proc.is_alive()
    with pytest.raises(RuntimeError, match="closed"):
        fleet.solve(scenarios9)


def test_context_manager_leaves_no_orphan_processes(case9_fixture, scenarios9):
    with SolverFleet(case9_fixture, n_workers=2, execution="batch", schedule="steal") as fleet:
        sweep = fleet.solve(scenarios9)
        assert sweep.n_scenarios == len(scenarios9)
        procs = list(fleet._pool.processes)
    for proc in procs:
        proc.join(timeout=10)
        assert not proc.is_alive()


def test_close_with_sweep_in_flight_aborts_cleanly(case9_fixture, scenarios9):
    """Closing from another thread aborts the dispatch instead of hanging."""
    plan = FaultPlan.of(*(stall_solve(sid, seconds=30.0) for sid in range(len(scenarios9))))
    fleet = SolverFleet(
        case9_fixture, n_workers=2, execution="batch", schedule="steal", faults=plan
    )
    procs = list(fleet._pool.processes)
    raised = []

    def sweep_thread():
        try:
            fleet.solve(scenarios9)
        except PoolClosedError as exc:
            raised.append(exc)

    thread = threading.Thread(target=sweep_thread)
    thread.start()
    time.sleep(0.5)  # let the dispatch enter the stalled tasks
    fleet.close()
    thread.join(timeout=15)
    assert not thread.is_alive()
    assert len(raised) == 1
    for proc in procs:
        proc.join(timeout=10)
        assert not proc.is_alive()


def test_crash_respawn_keeps_worker_count_and_fleet_reusable(case9_fixture, scenarios9):
    """A crashed worker is respawned into its slot; the fleet keeps serving."""
    plan = FaultPlan.of(kill_worker(2, last_attempt=0))
    with SolverFleet(
        case9_fixture, n_workers=2, execution="batch", schedule="steal", faults=plan
    ) as fleet:
        first = fleet.solve(scenarios9)
        assert fleet._pool.respawns >= 1
        assert len(fleet._pool.processes) == 2
        assert all(p.is_alive() for p in fleet._pool.processes)
        # The plan is stateless (keyed on scenario + attempt), so the second
        # sweep trips — and absorbs — the same transient kill via one retry.
        second = fleet.solve(scenarios9)
    assert first.success_rate == second.success_rate
    assert second.quarantined == 0 and second.retries >= 1
    for a, b in zip(first.outcomes, second.outcomes):
        assert a.objective == b.objective


# ---------------------------------------------------------------- empty sweeps
def test_empty_sweep_result_rates_are_defined():
    empty = SweepResult(case_name="case9", n_workers=1)
    assert empty.n_scenarios == 0
    assert empty.success_rate == 0.0
    assert empty.warm_success_rate == 0.0
    assert empty.fallback_rate == 0.0
    assert empty.total_solver_seconds() == 0.0
    import math

    assert math.isnan(empty.throughput)  # zero wall, zero work


@pytest.mark.parametrize("schedule", ["static", "steal"])
def test_in_process_fleet_solves_empty_set(case9_fixture, schedule):
    empty = ScenarioSet(case9_fixture.name, [])
    with SolverFleet(case9_fixture, n_workers=1, schedule=schedule) as fleet:
        sweep = fleet.solve(empty)
    assert sweep.n_scenarios == 0 and sweep.outcomes == []
    assert sweep.errors == 0 and sweep.retries == 0 and sweep.quarantined == 0
    assert sweep.success_rate == 0.0


def test_pooled_fleet_solves_empty_set(case9_fixture):
    empty = ScenarioSet(case9_fixture.name, [])
    with SolverFleet(case9_fixture, n_workers=2, schedule="steal") as fleet:
        sweep = fleet.solve(empty)
        many = fleet.solve_many([empty, empty])
    assert sweep.n_scenarios == 0
    assert [s.n_scenarios for s in many] == [0, 0]
