"""Tests of the MTL model topology, the separate-networks baseline and normalisation."""

import numpy as np
import pytest

from repro.mtl import (
    DatasetNormalizer,
    MinMaxScaler,
    MTLConfig,
    SeparateTaskNetworks,
    SmartPGSimMTL,
    TaskDimensions,
    fast_config,
)
from repro.nn import Tensor

DIMS = TaskDimensions(n_bus=9, n_gen=3, n_eq=19, n_ineq=48)


# -------------------------------------------------------------------- normalisation
def test_minmax_scaler_roundtrip(rng):
    data = rng.uniform(-5, 10, size=(40, 6))
    scaler = MinMaxScaler.fit(data)
    normed = scaler.transform(data)
    assert normed.min() >= -1e-12 and normed.max() <= 1 + 1e-12
    assert np.allclose(scaler.inverse(normed), data)


def test_minmax_scaler_handles_constant_dimension():
    data = np.column_stack([np.full(10, 3.0), np.arange(10.0)])
    scaler = MinMaxScaler.fit(data)
    normed = scaler.transform(data)
    assert np.allclose(normed[:, 0], 0.5)
    assert np.allclose(scaler.inverse(normed), data)


def test_minmax_scaler_works_on_tensors(rng):
    data = rng.uniform(0, 1, size=(10, 3))
    scaler = MinMaxScaler.fit(data)
    t = Tensor(data, requires_grad=True)
    out = scaler.transform(t)
    assert isinstance(out, Tensor)
    back = scaler.inverse(out)
    assert np.allclose(back.data, data)


def test_minmax_scaler_rejects_1d():
    with pytest.raises(ValueError):
        MinMaxScaler.fit(np.arange(5.0))


def test_dataset_normalizer_roundtrip(dataset9):
    norm = DatasetNormalizer.fit(dataset9.inputs, dataset9.targets)
    normed = norm.normalize_targets(dataset9.targets)
    for task, values in normed.items():
        assert values.min() >= -1e-9 and values.max() <= 1 + 1e-9
        restored = norm.denormalize_task(task, values)
        assert np.allclose(restored, dataset9.targets[task], atol=1e-9)


# ------------------------------------------------------------------------ config
def test_config_validation():
    MTLConfig().validate()
    with pytest.raises(ValueError):
        MTLConfig(shared_layer_scales=()).validate()
    with pytest.raises(ValueError):
        MTLConfig(epochs=0).validate()
    with pytest.raises(ValueError):
        MTLConfig(task_weights={"Va": 1.0}).validate()
    with pytest.raises(ValueError):
        MTLConfig(width_cap=2).validate()


def test_fast_config_is_small_and_valid():
    cfg = fast_config()
    cfg.validate()
    assert cfg.width_cap <= 64
    assert cfg.epochs <= 30


# -------------------------------------------------------------------------- model
def test_task_dimensions_mapping():
    d = DIMS.as_dict()
    assert d["Va"] == 9 and d["Pg"] == 3 and d["lam"] == 19 and d["mu"] == 48
    assert DIMS.n_inputs == 18


def test_mtl_forward_shapes():
    model = SmartPGSimMTL(DIMS, fast_config(), seed=0)
    out = model(Tensor(np.random.default_rng(0).uniform(0, 1, (5, 18))))
    assert set(out) == {"Va", "Vm", "Pg", "Qg", "lam", "z", "mu"}
    assert out["Va"].shape == (5, 9)
    assert out["mu"].shape == (5, 48)


def test_mtl_positive_heads_are_bounded():
    model = SmartPGSimMTL(DIMS, fast_config(), seed=1)
    out = model.predict(np.random.default_rng(1).uniform(0, 1, (7, 18)))
    for task in ("Vm", "Pg", "Qg", "z", "mu"):
        assert out[task].min() >= 0.0
        assert out[task].max() <= 1.0


def test_mtl_detach_blocks_trunk_gradients():
    model = SmartPGSimMTL(DIMS, fast_config(), seed=2)
    x = Tensor(np.random.default_rng(2).uniform(0, 1, (4, 18)))

    # Auxiliary-only loss with detach: trunk receives no gradient.
    out = model(x, detach_auxiliary=True)
    (out["lam"].sum() + out["z"].sum() + out["mu"].sum()).backward()
    trunk_grads = [p.grad for p in model.trunk.parameters()]
    assert all(g is None for g in trunk_grads)

    # Same loss without detach: trunk does receive gradients.
    model.zero_grad()
    out = model(x, detach_auxiliary=False)
    (out["lam"].sum() + out["z"].sum() + out["mu"].sum()).backward()
    trunk_grads = [p.grad for p in model.trunk.parameters()]
    assert any(g is not None and np.abs(g).sum() > 0 for g in trunk_grads)


def test_mtl_hierarchy_z_depends_on_x_head():
    """Perturbing only the Vm head weights must change the Z prediction (hierarchy)."""
    model = SmartPGSimMTL(DIMS, fast_config(), seed=3)
    x = np.random.default_rng(3).uniform(0, 1, (2, 18))
    z_before = model.predict(x)["z"]
    last_linear = [m for m in model.head_Vm.modules() if hasattr(m, "weight")][-1]
    last_linear.weight.data = last_linear.weight.data + 0.5
    z_after = model.predict(x)["z"]
    assert not np.allclose(z_before, z_after)


def test_mtl_parameter_budget_scales_with_width_cap():
    # The case9 input is 18-wide, so a cap of 16 actually binds while 64 does not.
    small = SmartPGSimMTL(DIMS, fast_config(width_cap=16), seed=0)
    large = SmartPGSimMTL(DIMS, fast_config(width_cap=64), seed=0)
    assert large.n_parameters() > small.n_parameters()
    desc = small.describe()
    assert desc["total"] == desc["trunk"] + desc["heads"]


def test_mtl_deterministic_given_seed():
    a = SmartPGSimMTL(DIMS, fast_config(), seed=7)
    b = SmartPGSimMTL(DIMS, fast_config(), seed=7)
    x = np.random.default_rng(0).uniform(0, 1, (3, 18))
    assert np.allclose(a.predict(x)["Va"], b.predict(x)["Va"])


# --------------------------------------------------------------- separate baseline
def test_separate_networks_shapes_and_independence():
    model = SeparateTaskNetworks(DIMS, fast_config(), seed=0)
    out = model.predict(np.random.default_rng(0).uniform(0, 1, (3, 18)))
    assert out["Qg"].shape == (3, 3)
    # Perturbing the Va network must not change the Vm prediction.
    vm_before = out["Vm"]
    trunk_va = getattr(model, "trunk_Va")
    for p in trunk_va.parameters():
        p.data = p.data + 1.0
    vm_after = model.predict(np.random.default_rng(0).uniform(0, 1, (3, 18)))["Vm"]
    assert np.allclose(vm_before, vm_after)


def test_separate_networks_have_one_private_trunk_per_task():
    sep = SeparateTaskNetworks(DIMS, fast_config(), seed=0)
    names = [name for name, _ in sep.named_parameters()]
    for task in ("Va", "Vm", "Pg", "Qg", "lam", "z", "mu"):
        assert any(name.startswith(f"trunk_{task}.") for name in names)
        assert any(name.startswith(f"head_{task}.") for name in names)
