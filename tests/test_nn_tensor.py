"""Tests of the autograd tensor: forward values and gradient correctness."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concatenate, stack_scalars


def numeric_gradient(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of a NumPy array."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = fn(x)
        flat[i] = orig - eps
        fm = fn(x)
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


def check_gradient(build, x0, tol=1e-6):
    """Compare autograd against finite differences for a scalar-valued graph."""
    t = Tensor(x0.copy(), requires_grad=True)
    loss = build(t)
    loss.backward()
    fd = numeric_gradient(lambda arr: build(Tensor(arr)).item(), x0.copy())
    assert np.abs(t.grad - fd).max() < tol


# ------------------------------------------------------------------ forward values
def test_basic_arithmetic_values():
    a = Tensor([1.0, 2.0, 3.0])
    b = Tensor([4.0, 5.0, 6.0])
    assert np.allclose((a + b).data, [5, 7, 9])
    assert np.allclose((a - b).data, [-3, -3, -3])
    assert np.allclose((a * b).data, [4, 10, 18])
    assert np.allclose((b / a).data, [4, 2.5, 2])
    assert np.allclose((a ** 2).data, [1, 4, 9])
    assert np.allclose((-a).data, [-1, -2, -3])


def test_reflected_operators_with_numpy_arrays():
    a = Tensor([1.0, 2.0], requires_grad=True)
    out = np.array([3.0, 4.0]) - a
    assert isinstance(out, Tensor)
    assert np.allclose(out.data, [2.0, 2.0])
    out2 = 2.0 * a + np.ones(2)
    assert np.allclose(out2.data, [3.0, 5.0])


def test_matmul_shapes():
    A = Tensor(np.arange(6, dtype=float).reshape(2, 3))
    B = Tensor(np.arange(12, dtype=float).reshape(3, 4))
    assert (A @ B).shape == (2, 4)
    v = Tensor(np.ones(3))
    assert (A @ v).shape == (2,)


def test_reductions_and_item():
    x = Tensor(np.arange(6, dtype=float).reshape(2, 3))
    assert x.sum().item() == 15
    assert x.mean().item() == pytest.approx(2.5)
    assert np.allclose(x.sum(axis=0).data, [3, 5, 7])
    assert np.allclose(x.mean(axis=1).data, [1, 4])


def test_elementwise_functions_values():
    x = Tensor([-1.0, 0.0, 2.0])
    assert np.allclose(x.relu().data, [0, 0, 2])
    assert np.allclose(x.abs().data, [1, 0, 2])
    assert np.allclose(x.tanh().data, np.tanh(x.data))
    assert np.allclose(x.sigmoid().data, 1 / (1 + np.exp(-x.data)))
    assert np.allclose(x.clamp_min(0.5).data, [0.5, 0.5, 2.0])
    y = Tensor([1.0, 4.0])
    assert np.allclose(y.sqrt().data, [1, 2])
    assert np.allclose(y.log().data, np.log(y.data))


def test_sigmoid_is_stable_for_large_inputs():
    x = Tensor([-1000.0, 1000.0])
    out = x.sigmoid().data
    assert np.all(np.isfinite(out))
    assert out[0] == pytest.approx(0.0, abs=1e-12)
    assert out[1] == pytest.approx(1.0, abs=1e-12)


def test_getitem_and_reshape_and_transpose():
    x = Tensor(np.arange(12, dtype=float).reshape(3, 4))
    assert np.allclose(x[1].data, [4, 5, 6, 7])
    assert np.allclose(x[:, [0, 2]].data, [[0, 2], [4, 6], [8, 10]])
    assert x.reshape(4, 3).shape == (4, 3)
    assert x.T.shape == (4, 3)


def test_detach_cuts_graph():
    x = Tensor([2.0], requires_grad=True)
    y = (x * 3).detach() * x
    y.sum().backward()
    # Gradient only flows through the second factor: d/dx (6 * x) = 6.
    assert x.grad[0] == pytest.approx(6.0)


def test_backward_requires_scalar():
    x = Tensor(np.ones(3), requires_grad=True)
    with pytest.raises(ValueError):
        (x * 2).backward()


# ----------------------------------------------------------------- gradient checks
def test_gradient_arithmetic_chain():
    check_gradient(lambda t: ((t * 3 - 1) ** 2).sum(), np.array([0.5, -1.2, 2.0]))


def test_gradient_division_and_sqrt():
    check_gradient(lambda t: ((t / 2.0).sqrt() * 5).sum(), np.array([1.0, 4.0, 9.0]))


def test_gradient_matmul():
    W = np.array([[1.0, -2.0], [0.5, 3.0], [2.0, 0.1]])
    check_gradient(lambda t: ((t @ W) ** 2).sum(), np.random.default_rng(0).standard_normal((4, 3)))


def test_gradient_trig_and_exp():
    check_gradient(lambda t: (t.sin() * t.cos() + t.exp()).sum(), np.array([0.3, -0.7, 1.1]))


def test_gradient_sigmoid_tanh_relu_softplus():
    x0 = np.array([-0.8, 0.2, 1.5, -2.0])
    check_gradient(lambda t: (t.sigmoid() * 2 + t.tanh() + t.softplus()).sum(), x0)
    check_gradient(lambda t: (t.relu() ** 2).sum(), x0 + 0.05)  # avoid the kink


def test_gradient_broadcasting():
    b = np.array([0.5, -1.0, 2.0])
    check_gradient(lambda t: ((t + b) * 2).sum(), np.random.default_rng(1).standard_normal((5, 3)))
    # Broadcast in the other direction: parameter is the small tensor.
    X = np.random.default_rng(2).standard_normal((5, 3))
    check_gradient(lambda t: ((Tensor(X) * t) ** 2).sum(), np.array([[1.0, -0.5, 0.3]]))


def test_gradient_mean_axis():
    check_gradient(lambda t: (t.mean(axis=0) ** 2).sum(), np.random.default_rng(3).standard_normal((4, 3)))


def test_gradient_getitem_advanced_indexing():
    idx = np.array([0, 2])
    check_gradient(lambda t: (t[:, idx] ** 2).sum(), np.random.default_rng(4).standard_normal((3, 4)))


def test_gradient_concatenate():
    def build(t):
        a = t * 2
        b = t.sin()
        return (concatenate([a, b], axis=1) ** 2).sum()

    check_gradient(build, np.random.default_rng(5).standard_normal((2, 3)))


def test_gradient_accumulates_over_reuse():
    x = Tensor([1.5], requires_grad=True)
    y = x * x + x * 3  # dy/dx = 2x + 3 = 6
    y.sum().backward()
    assert x.grad[0] == pytest.approx(6.0)


def test_zero_grad_clears_gradient():
    x = Tensor([1.0], requires_grad=True)
    (x * 2).sum().backward()
    assert x.grad is not None
    x.zero_grad()
    assert x.grad is None


def test_stack_scalars_and_as_tensor():
    parts = [Tensor([1.0]).sum(), Tensor([2.0]).sum()]
    stacked = stack_scalars(parts)
    assert np.allclose(stacked.data, [1.0, 2.0])
    assert as_tensor(stacked) is stacked
    assert isinstance(as_tensor(np.ones(2)), Tensor)


def test_pickle_drops_graph():
    import pickle

    x = Tensor([1.0, 2.0], requires_grad=True)
    y = (x * 2).sum()
    blob = pickle.dumps(y)
    restored = pickle.loads(blob)
    assert restored.data == pytest.approx(6.0)
    assert restored._parents == ()
