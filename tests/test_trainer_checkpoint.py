"""Checkpointed training: kill a run, resume it, get bitwise-identical results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mtl import MTLTrainer, SmartPGSimMTL, TaskDimensions, fast_config
from repro.nn.modules import Linear
from repro.nn.optim import SGD, Adam
from repro.nn.schedulers import StepLR
from repro.nn.serialization import load_bundle, save_bundle


def _dims(case, dataset):
    return TaskDimensions(
        n_bus=case.n_bus,
        n_gen=case.n_gen,
        n_eq=dataset.task_dim("lam"),
        n_ineq=dataset.task_dim("mu"),
    )


def _make_trainer(case, dataset, opf_model, epochs):
    config = fast_config(epochs=epochs)
    network = SmartPGSimMTL(_dims(case, dataset), config, seed=0)
    return MTLTrainer(network, dataset, opf_model, config=config)


# ---------------------------------------------------------- optimizer state dicts
def _step_linear(optimizer, module, rng):
    for p in module.parameters():
        p.grad = rng.standard_normal(p.data.shape)
    optimizer.step()


def test_adam_state_dict_resumes_bitwise(rng):
    a_mod, b_mod = Linear(4, 3, rng=7), Linear(4, 3, rng=7)
    a_opt, b_opt = Adam(a_mod.parameters(), lr=1e-2), Adam(b_mod.parameters(), lr=1e-2)
    grads = np.random.default_rng(0)
    for _ in range(5):
        g = np.random.default_rng(grads.integers(2**31))
        _step_linear(a_opt, a_mod, g)
    state = a_opt.state_dict()
    b_mod.load_state_dict(a_mod.state_dict())
    b_opt.load_state_dict(state)
    assert b_opt._t == a_opt._t
    follow = np.random.default_rng(99)
    for _ in range(3):
        seed = follow.integers(2**31)
        _step_linear(a_opt, a_mod, np.random.default_rng(seed))
        _step_linear(b_opt, b_mod, np.random.default_rng(seed))
    for pa, pb in zip(a_mod.parameters(), b_mod.parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)


def test_adam_state_dict_is_a_copy():
    module = Linear(3, 2, rng=1)
    opt = Adam(module.parameters(), lr=1e-3)
    _step_linear(opt, module, np.random.default_rng(0))
    state = opt.state_dict()
    state["m"][0][:] = 1e9
    assert not np.any(opt._m[0] == 1e9)


def test_sgd_state_dict_roundtrip_and_validation():
    a_mod, b_mod = Linear(3, 2, rng=2), Linear(3, 2, rng=2)
    a_opt = SGD(a_mod.parameters(), lr=1e-2, momentum=0.9)
    for _ in range(4):
        _step_linear(a_opt, a_mod, np.random.default_rng(5))
    b_opt = SGD(b_mod.parameters(), lr=1e-2, momentum=0.9)
    b_opt.load_state_dict(a_opt.state_dict())
    for va, vb in zip(a_opt._velocity, b_opt._velocity):
        np.testing.assert_array_equal(va, vb)
    wrong = a_opt.state_dict()
    wrong["velocity"] = wrong["velocity"][:-1]
    with pytest.raises(ValueError, match="entries"):
        b_opt.load_state_dict(wrong)
    bad_shape = a_opt.state_dict()
    bad_shape["velocity"][0] = np.zeros((1, 1))
    with pytest.raises(ValueError, match="shape"):
        b_opt.load_state_dict(bad_shape)


def test_scheduler_state_dict_roundtrip():
    module = Linear(2, 2, rng=3)
    opt = Adam(module.parameters(), lr=1e-2)
    sched = StepLR(opt, step_size=2, gamma=0.5)
    for _ in range(3):
        sched.step()
    state = sched.state_dict()
    opt2 = Adam(Linear(2, 2, rng=3).parameters(), lr=1e-2)
    sched2 = StepLR(opt2, step_size=2, gamma=0.5)
    sched2.load_state_dict(state)
    assert sched2.epoch == 3 and sched2.base_lr == sched.base_lr
    assert sched2.step() == sched.step()


# ------------------------------------------------------------ trainer checkpoints
@pytest.fixture(scope="module")
def train_split9(dataset9):
    train, _val = dataset9.split(0.8, seed=0)
    return train


def test_checkpoint_resume_is_bitwise_identical(
    case9_fixture, opf_model9, train_split9, tmp_path
):
    """Kill at epoch 3 of 6, resume from the checkpoint → identical run."""
    ckpt = tmp_path / "trainer.ckpt.npz"

    straight = _make_trainer(case9_fixture, train_split9, opf_model9, epochs=6)
    full_history = straight.train()

    killed = _make_trainer(case9_fixture, train_split9, opf_model9, epochs=6)
    partial = killed.train(checkpoint_path=ckpt, checkpoint_every=3, until_epoch=3)
    assert len(partial.epochs) == 3
    assert ckpt.exists()

    resumed_trainer = _make_trainer(case9_fixture, train_split9, opf_model9, epochs=6)
    resumed = resumed_trainer.train(resume_from=ckpt)
    assert [e.epoch for e in resumed.epochs] == [1, 2, 3, 4, 5, 6]

    # Loss trajectory (incl. the pre-kill tail restored from the checkpoint)
    # is bitwise identical to the uninterrupted run; wall-clock seconds differ.
    for a, b in zip(full_history.epochs, resumed.epochs):
        assert a.epoch == b.epoch and a.detached == b.detached
        assert a.total_loss == b.total_loss
        assert a.supervised_loss == b.supervised_loss
        assert a.physics_loss == b.physics_loss
        assert a.physics_terms == b.physics_terms
    # Final weights and optimizer state match bitwise too.
    for name, value in straight.network.state_dict().items():
        np.testing.assert_array_equal(value, resumed_trainer.network.state_dict()[name])
    assert straight.optimizer._t == resumed_trainer.optimizer._t
    for ma, mb in zip(straight.optimizer._m, resumed_trainer.optimizer._m):
        np.testing.assert_array_equal(ma, mb)


def test_checkpoint_restores_scheduler_position(
    case9_fixture, opf_model9, train_split9, tmp_path
):
    ckpt = tmp_path / "sched.ckpt.npz"
    straight = _make_trainer(case9_fixture, train_split9, opf_model9, epochs=4)
    straight.scheduler = StepLR(straight.optimizer, step_size=1, gamma=0.5)
    full = straight.train()

    killed = _make_trainer(case9_fixture, train_split9, opf_model9, epochs=4)
    killed.scheduler = StepLR(killed.optimizer, step_size=1, gamma=0.5)
    killed.train(checkpoint_path=ckpt, checkpoint_every=2, until_epoch=2)

    resumed_trainer = _make_trainer(case9_fixture, train_split9, opf_model9, epochs=4)
    resumed_trainer.scheduler = StepLR(resumed_trainer.optimizer, step_size=1, gamma=0.5)
    resumed = resumed_trainer.train(resume_from=ckpt)
    assert resumed_trainer.scheduler.epoch == straight.scheduler.epoch
    assert resumed_trainer.optimizer.lr == straight.optimizer.lr
    for a, b in zip(full.epochs, resumed.epochs):
        assert a.total_loss == b.total_loss


def test_checkpoint_rejects_wrong_version(
    case9_fixture, opf_model9, train_split9, tmp_path
):
    ckpt = tmp_path / "versioned.ckpt.npz"
    trainer = _make_trainer(case9_fixture, train_split9, opf_model9, epochs=2)
    trainer.train(checkpoint_path=ckpt, checkpoint_every=1, until_epoch=1)
    arrays, meta = load_bundle(ckpt)
    meta["checkpoint_version"] = 999
    save_bundle(ckpt, arrays, meta)
    fresh = _make_trainer(case9_fixture, train_split9, opf_model9, epochs=2)
    with pytest.raises(ValueError, match="version"):
        fresh.train(resume_from=ckpt)


def test_checkpoint_written_only_on_schedule(
    case9_fixture, opf_model9, train_split9, tmp_path
):
    ckpt = tmp_path / "never.ckpt.npz"
    trainer = _make_trainer(case9_fixture, train_split9, opf_model9, epochs=2)
    trainer.train(checkpoint_path=ckpt, checkpoint_every=0)  # disabled
    assert not ckpt.exists()
