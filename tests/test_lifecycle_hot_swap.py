"""Zero-downtime hot-swap, shadow-gated promotion and circuit-breaker resets.

The acceptance bar for the swap is *bitwise purity*: with a swap racing live
serving, every request's outcome must equal what a pure-old or pure-new engine
would have produced — never a hybrid — and no request may be dropped.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.engine import (
    ArtifactCorruptError,
    CircuitBreaker,
    DriftMonitor,
    ModelLifecycle,
    ShadowGate,
    ShadowMetrics,
    WarmStartEngine,
)
from repro.mtl import MTLTrainer, SmartPGSimMTL, TaskDimensions, fast_config
from repro.parallel import generate_scenarios
from repro.testing.faults import (
    LifecycleFaultPlan,
    SwapFaultSpec,
    corrupt_artifact_bytes,
    swap_fault,
)


@pytest.fixture(scope="module")
def weak_trainer9(case9_fixture, opf_model9, dataset9):
    """A barely-trained incumbent (the model drift would leave us with)."""
    train, _val = dataset9.split(0.8, seed=0)
    dims = TaskDimensions(
        n_bus=case9_fixture.n_bus,
        n_gen=case9_fixture.n_gen,
        n_eq=dataset9.task_dim("lam"),
        n_ineq=dataset9.task_dim("mu"),
    )
    config = fast_config(epochs=2)
    network = SmartPGSimMTL(dims, config, seed=1)
    trainer = MTLTrainer(network, train, opf_model9, config=config)
    trainer.train()
    return trainer


def _pure_outcomes(trainer, scenarios):
    """Reference outcomes of a standalone engine around one model."""
    engine = WarmStartEngine.from_trainer(trainer)
    try:
        sweep = engine.serve(scenarios)
    finally:
        engine.close()
    return {
        o.scenario_id: (o.iterations, o.objective, o.used_fallback)
        for o in sweep.outcomes
    }


def _sweep_signature(sweep):
    return {
        o.scenario_id: (o.iterations, o.objective, o.used_fallback)
        for o in sweep.outcomes
    }


# ------------------------------------------------------------------- hot swap
def test_hot_swap_publishes_new_generation(weak_trainer9, trained_trainer9, dataset9):
    engine = WarmStartEngine.from_trainer(weak_trainer9)
    try:
        assert engine.generation == 0
        before = engine.predict_physical(dataset9.inputs[:2])
        gen = engine.hot_swap(
            trained_trainer9.network, trained_trainer9.normalizer, trained_trainer9.config
        )
        assert gen == 1 and engine.generation == 1
        after = engine.predict_physical(dataset9.inputs[:2])
        reference = trained_trainer9.predict_physical(dataset9.inputs[:2])
        for task in reference:
            np.testing.assert_array_equal(after[task], reference[task])
        assert any(
            not np.array_equal(before[task], after[task]) for task in reference
        ), "swap must actually change the served model"
    finally:
        engine.close()


def test_hot_swap_resets_health_machinery(weak_trainer9, trained_trainer9):
    breaker = CircuitBreaker(window=4, threshold=0.5, min_observations=2, cooldown=8)
    monitor = DriftMonitor()
    engine = WarmStartEngine.from_trainer(
        weak_trainer9, breaker=breaker, drift_monitor=monitor
    )
    try:
        for _ in range(4):
            breaker.record(True)
        monitor.observe({"iterations": 50.0, "used_fallback": 1.0, "timed_out": 0.0})
        assert breaker.state == CircuitBreaker.OPEN and breaker.trips == 1
        engine.hot_swap(
            trained_trainer9.network, trained_trainer9.normalizer, trained_trainer9.config
        )
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.trips == 1  # cumulative telemetry survives
        assert monitor.n_observations == 0
        assert engine.drift_report().status == "stationary"
    finally:
        engine.close()


def test_serve_stamps_generation_and_swap_is_pure(
    weak_trainer9, trained_trainer9, case9_fixture
):
    """Sequential swap: sweeps before/after match the pure reference engines."""
    scenarios = generate_scenarios(case9_fixture, 4, variation=0.05, seed=21)
    pure_old = _pure_outcomes(weak_trainer9, scenarios)
    pure_new = _pure_outcomes(trained_trainer9, scenarios)
    engine = WarmStartEngine.from_trainer(weak_trainer9)
    try:
        old_sweep = engine.serve(scenarios)
        assert old_sweep.model_generation == 0
        assert _sweep_signature(old_sweep) == pure_old
        engine.hot_swap(
            trained_trainer9.network, trained_trainer9.normalizer, trained_trainer9.config
        )
        new_sweep = engine.serve(scenarios)
        assert new_sweep.model_generation == 1
        assert _sweep_signature(new_sweep) == pure_new
    finally:
        engine.close()


def test_concurrent_swap_yields_pure_generations_and_drops_nothing(
    weak_trainer9, trained_trainer9, case9_fixture
):
    """Chaos: hot-swap races a serving loop; every request is pure, none lost."""
    scenarios = generate_scenarios(case9_fixture, 3, variation=0.05, seed=22)
    pure = {
        0: _pure_outcomes(weak_trainer9, scenarios),
        1: _pure_outcomes(trained_trainer9, scenarios),
    }
    engine = WarmStartEngine.from_trainer(weak_trainer9)
    sweeps, errors = [], []
    n_requests = 12
    swap_gate = threading.Event()

    def hammer():
        try:
            for i in range(n_requests):
                sweeps.append(engine.serve(scenarios))
                if i == 2:
                    swap_gate.set()  # let the swap race the remaining requests
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    try:
        server = threading.Thread(target=hammer)
        server.start()
        assert swap_gate.wait(timeout=60)
        engine.hot_swap(
            trained_trainer9.network, trained_trainer9.normalizer, trained_trainer9.config
        )
        server.join(timeout=120)
        assert not server.is_alive() and not errors
        assert len(sweeps) == n_requests, "no request may be dropped across the swap"
        generations = [s.model_generation for s in sweeps]
        assert set(generations) <= {0, 1}
        assert generations == sorted(generations), "generation is monotonic per request"
        assert generations[-1] == 1, "requests after the swap serve the new model"
        for sweep in sweeps:
            assert len(sweep.outcomes) == len(scenarios)
            assert _sweep_signature(sweep) == pure[sweep.model_generation], (
                "request outcomes must be bitwise pure-old or pure-new, never hybrid"
            )
    finally:
        engine.close()


# ------------------------------------------------------------- adopt_artifact
def test_adopt_artifact_swaps_to_persisted_model(
    weak_trainer9, trained_trainer9, tmp_path
):
    candidate = WarmStartEngine.from_trainer(trained_trainer9)
    path = candidate.save_artifact(tmp_path / "candidate.npz")
    candidate.close()
    engine = WarmStartEngine.from_trainer(weak_trainer9)
    try:
        assert engine.adopt_artifact(path) == 1
        reference = trained_trainer9.predict_physical(weak_trainer9.dataset.inputs[:2])
        served = engine.predict_physical(weak_trainer9.dataset.inputs[:2])
        for task in reference:
            np.testing.assert_array_equal(served[task], reference[task])
    finally:
        engine.close()


def test_adopt_corrupt_artifact_leaves_incumbent_untouched(
    weak_trainer9, trained_trainer9, tmp_path
):
    candidate = WarmStartEngine.from_trainer(trained_trainer9)
    path = candidate.save_artifact(tmp_path / "candidate.npz")
    candidate.close()
    corrupt_artifact_bytes(path)
    engine = WarmStartEngine.from_trainer(weak_trainer9)
    try:
        before = engine.predict_physical(weak_trainer9.dataset.inputs[:2])
        with pytest.raises(ArtifactCorruptError):
            engine.adopt_artifact(path)
        assert engine.generation == 0
        after = engine.predict_physical(weak_trainer9.dataset.inputs[:2])
        for task in before:
            np.testing.assert_array_equal(before[task], after[task])
    finally:
        engine.close()


# ------------------------------------------------------------------ shadow gate
def test_shadow_gate_decides_on_every_axis():
    gate = ShadowGate(min_problems=4)
    incumbent = ShadowMetrics(
        n_problems=8, convergence_rate=1.0, fallback_rate=0.25, mean_iterations=12.0
    )
    better = ShadowMetrics(
        n_problems=8, convergence_rate=1.0, fallback_rate=0.0, mean_iterations=9.0
    )
    assert gate.decide(better, incumbent).passed

    worse_fallback = ShadowMetrics(
        n_problems=8, convergence_rate=1.0, fallback_rate=0.5, mean_iterations=9.0
    )
    verdict = gate.decide(worse_fallback, incumbent)
    assert not verdict.passed and any("fallback rate" in r for r in verdict.reasons)

    worse_iters = ShadowMetrics(
        n_problems=8, convergence_rate=1.0, fallback_rate=0.0, mean_iterations=20.0
    )
    verdict = gate.decide(worse_iters, incumbent)
    assert not verdict.passed and any("iterations" in r for r in verdict.reasons)

    non_converging = ShadowMetrics(
        n_problems=8, convergence_rate=0.5, fallback_rate=0.0, mean_iterations=9.0
    )
    verdict = gate.decide(non_converging, incumbent)
    assert not verdict.passed and any("convergence" in r for r in verdict.reasons)

    tiny_slice = ShadowMetrics(
        n_problems=2, convergence_rate=1.0, fallback_rate=0.0, mean_iterations=9.0
    )
    verdict = gate.decide(tiny_slice, incumbent)
    assert not verdict.passed and any("slice" in r for r in verdict.reasons)

    # Slack loosens the gate.
    assert ShadowGate(
        min_problems=4, fallback_rate_slack=0.5, iteration_slack=1.0
    ).decide(worse_fallback, incumbent).passed

    with pytest.raises(ValueError):
        ShadowGate(min_problems=0)
    with pytest.raises(ValueError):
        ShadowGate(iteration_slack=-0.1)


# -------------------------------------------------------------- full lifecycle
@pytest.fixture()
def lifecycle9(weak_trainer9, trained_trainer9):
    """A lifecycle around a weak incumbent with the strong model as trainer."""
    engine = WarmStartEngine.from_trainer(weak_trainer9, drift_monitor=DriftMonitor())
    lifecycle = ModelLifecycle(
        engine,
        trainer=trained_trainer9,
        gate=ShadowGate(min_problems=2, fallback_rate_slack=1.0, iteration_slack=10.0),
    )
    yield lifecycle
    engine.close()


def test_lifecycle_promotes_candidate_end_to_end(lifecycle9, dataset9, tmp_path):
    path = lifecycle9.build_candidate(tmp_path / "candidate.npz")
    shadow = lifecycle9.shadow_evaluate(path, dataset9, max_problems=4)
    assert shadow.passed and shadow.candidate.n_problems == 4
    assert lifecycle9.engine.generation == 0  # shadow eval alone never swaps

    result = lifecycle9.promote(path, dataset9, max_problems=4)
    assert result.promoted and result.stage == "publish"
    assert result.generation == 1 == lifecycle9.engine.generation
    assert result.shadow is not None and result.shadow.passed
    assert lifecycle9.promotions and not lifecycle9.rejections
    # The promoted engine serves the trainer's model bitwise.
    reference = lifecycle9.trainer.predict_physical(dataset9.inputs[:2])
    served = lifecycle9.engine.predict_physical(dataset9.inputs[:2])
    for task in reference:
        np.testing.assert_array_equal(served[task], reference[task])
    assert json_roundtrips(result.to_dict())


def json_roundtrips(payload):
    import json

    return json.loads(json.dumps(payload)) == payload


def test_lifecycle_rejects_candidate_failing_the_gate(
    lifecycle9, dataset9, tmp_path
):
    lifecycle9.gate = ShadowGate(min_problems=50)  # stricter than the slice
    path = lifecycle9.build_candidate(tmp_path / "candidate.npz")
    result = lifecycle9.promote(path, dataset9, max_problems=4)
    assert not result.promoted and result.stage == "shadow"
    assert "shadow gate" in result.reason
    assert lifecycle9.engine.generation == 0
    assert lifecycle9.rejections == [result]
    # Loosen the gate and replay the same candidate from disk.
    lifecycle9.gate = ShadowGate(min_problems=2, fallback_rate_slack=1.0, iteration_slack=10.0)
    replay = lifecycle9.replay_rejected(dataset9, max_problems=4)
    assert replay.promoted and replay.artifact_path == result.artifact_path
    assert lifecycle9.engine.generation == 1


def test_lifecycle_rejects_corrupt_candidate(lifecycle9, dataset9, tmp_path):
    path = lifecycle9.build_candidate(tmp_path / "candidate.npz")
    corrupt_artifact_bytes(path)
    result = lifecycle9.promote(path, dataset9, max_problems=4)
    assert not result.promoted and result.stage == "load"
    assert "ArtifactCorruptError" in result.reason
    assert lifecycle9.engine.generation == 0


def test_lifecycle_publish_fault_is_transient_and_replayable(
    weak_trainer9, trained_trainer9, dataset9, case9_fixture, tmp_path
):
    """A kill at the publish boundary rejects cleanly; the replay promotes."""
    engine = WarmStartEngine.from_trainer(weak_trainer9)
    lifecycle = ModelLifecycle(
        engine,
        trainer=trained_trainer9,
        gate=ShadowGate(min_problems=2, fallback_rate_slack=1.0, iteration_slack=10.0),
        faults=LifecycleFaultPlan.of(swap_fault("publish", last_attempt=0)),
    )
    scenarios = generate_scenarios(case9_fixture, 3, variation=0.05, seed=23)
    pure_old = _pure_outcomes(weak_trainer9, scenarios)
    try:
        path = lifecycle.build_candidate(tmp_path / "candidate.npz")
        result = lifecycle.promote(path, dataset9, max_problems=4)
        assert not result.promoted and result.stage == "publish"
        assert "injected swap fault" in result.reason
        assert engine.generation == 0
        # The incumbent keeps serving, bitwise unchanged, after the failed swap.
        sweep = engine.serve(scenarios)
        assert sweep.model_generation == 0
        assert _sweep_signature(sweep) == pure_old
        # The fault was transient (attempt 0 only): replay promotes.
        replay = lifecycle.replay_rejected(dataset9, max_problems=4)
        assert replay.promoted and engine.generation == 1
    finally:
        engine.close()


def test_lifecycle_mid_swap_fault_with_live_traffic(
    weak_trainer9, trained_trainer9, dataset9, case9_fixture, tmp_path
):
    """Chaos: promotion dies at the publish boundary while traffic is flowing."""
    engine = WarmStartEngine.from_trainer(weak_trainer9)
    lifecycle = ModelLifecycle(
        engine,
        trainer=trained_trainer9,
        gate=ShadowGate(min_problems=2, fallback_rate_slack=1.0, iteration_slack=10.0),
        faults=LifecycleFaultPlan.of(swap_fault("publish")),
    )
    scenarios = generate_scenarios(case9_fixture, 3, variation=0.05, seed=24)
    pure_old = _pure_outcomes(weak_trainer9, scenarios)
    sweeps, errors = [], []
    n_requests = 8

    def hammer():
        try:
            for _ in range(n_requests):
                sweeps.append(engine.serve(scenarios))
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    try:
        path = lifecycle.build_candidate(tmp_path / "candidate.npz")
        server = threading.Thread(target=hammer)
        server.start()
        result = lifecycle.promote(path, dataset9, max_problems=4)
        server.join(timeout=120)
        assert not server.is_alive() and not errors
        assert not result.promoted and result.stage == "publish"
        assert len(sweeps) == n_requests
        for sweep in sweeps:
            assert sweep.model_generation == 0
            assert _sweep_signature(sweep) == pure_old
    finally:
        engine.close()


def test_lifecycle_fault_plan_validation():
    with pytest.raises(ValueError, match="stage"):
        SwapFaultSpec(stage="reticulate")
    with pytest.raises(ValueError, match="first_attempt"):
        SwapFaultSpec(stage="publish", first_attempt=-1)
    with pytest.raises(ValueError, match="last_attempt"):
        SwapFaultSpec(stage="publish", first_attempt=2, last_attempt=1)
    plan = LifecycleFaultPlan.of(swap_fault("shadow", first_attempt=1))
    plan.check("shadow", 0)  # before first_attempt: no fault
    plan.check("publish", 1)  # other stage: no fault
    with pytest.raises(Exception, match="injected swap fault"):
        plan.check("shadow", 1)
    assert not LifecycleFaultPlan.none()


def test_lifecycle_without_trainer_rejects_training_calls(weak_trainer9, dataset9):
    engine = WarmStartEngine.from_trainer(weak_trainer9)
    lifecycle = ModelLifecycle(engine)
    try:
        with pytest.raises(ValueError, match="trainer"):
            lifecycle.retrain()
        with pytest.raises(ValueError, match="trainer"):
            lifecycle.build_candidate("unused.npz")
        with pytest.raises(ValueError, match="replay"):
            lifecycle.replay_rejected(dataset9)
    finally:
        engine.close()


def test_retrain_recommended_follows_drift_monitor(weak_trainer9):
    monitor = DriftMonitor()
    engine = WarmStartEngine.from_trainer(weak_trainer9, drift_monitor=monitor)
    lifecycle = ModelLifecycle(engine)
    try:
        assert not lifecycle.retrain_recommended()
        for i in range(100):
            monitor.observe(
                {"iterations": 8.0 + 2.0 * i, "used_fallback": 0.0, "timed_out": 0.0}
            )
        assert lifecycle.retrain_recommended()
    finally:
        engine.close()


# ------------------------------------------------------- breaker state machine
def test_breaker_half_open_probe_closes_on_success():
    breaker = CircuitBreaker(window=8, threshold=0.5, min_observations=2, cooldown=3)
    breaker.record(True)
    breaker.record(True)
    assert breaker.state == CircuitBreaker.OPEN and breaker.trips == 1
    for _ in range(3):  # cooldown counts degraded requests
        assert not breaker.allow_warm()
        breaker.record(False)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow_warm()
    breaker.record(False)  # clean probe
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.health.n_observations == 0
    assert breaker.trips == 1


def test_breaker_half_open_probe_retrips_on_fallback():
    breaker = CircuitBreaker(window=8, threshold=0.5, min_observations=2, cooldown=2)
    breaker.record(True)
    breaker.record(True)
    breaker.record(False)
    breaker.record(False)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record(True)  # probe needed the fallback
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.trips == 2


def test_breaker_reset_closes_but_keeps_trip_telemetry():
    breaker = CircuitBreaker(window=8, threshold=0.5, min_observations=2, cooldown=4)
    breaker.record(True)
    breaker.record(True)
    assert breaker.state == CircuitBreaker.OPEN and breaker.trips == 1
    breaker.reset()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.allow_warm()
    assert breaker.health.n_observations == 0
    assert breaker.trips == 1
    # A reset breaker trips again from a clean slate (no stale cooldown).
    breaker.record(True)
    breaker.record(True)
    assert breaker.state == CircuitBreaker.OPEN and breaker.trips == 2
