"""Multi-period trajectory sweeps: chaining semantics, invariance, engine serving.

The trajectory driver must (a) genuinely exploit temporal locality — warm
chaining makes the post-cold steps dramatically cheaper than serving every
step cold; (b) mask ``µ``/``Z`` across topology changes while always carrying
the primal point and equality multipliers; (c) stay a pure scheduling layer —
per-step results bitwise invariant under the fleet's lockstep window; and
(d) integrate with :class:`WarmStartEngine` serving (generation stamping,
per-step records, the cold per-step baseline).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import case9, case14, sample_load_trajectory
from repro.parallel import (
    MultiPeriodSweep,
    Scenario,
    SolverFleet,
    chained_warm_start,
    screened_outage_sets,
    trajectory_steps,
)
from repro.parallel.pool import ScenarioSolution


# ---------------------------------------------------------------- step builder
def test_trajectory_steps_alignment_and_ids():
    case = case14()
    samples = sample_load_trajectory(case, n_steps=4, seed=0)
    pair = screened_outage_sets(case, k=2, max_sets=1, seed=0)[0]
    steps = trajectory_steps(case, samples, outage_branches=((), (0,), pair))
    assert len(steps) == 4
    for t, step in enumerate(steps):
        assert len(step) == 3
        assert [s.scenario_id for s in step] == [0, 1, 2]
        assert step[0].outage_branches == ()
        assert step[1].outage_branches == (0,)
        assert step[2].outage_branches == pair
        assert np.array_equal(step[0].Pd, samples[t].Pd)
    with pytest.raises(ValueError, match="at least one"):
        trajectory_steps(case, samples, outage_branches=())


def test_trajectory_samples_drift_smoothly():
    case = case9()
    samples = sample_load_trajectory(case, n_steps=24, seed=1)
    assert len(samples) == 24
    loaded = case.bus.Pd > 0
    for prev, cur in zip(samples, samples[1:]):
        step_change = np.abs(cur.Pd[loaded] / prev.Pd[loaded] - 1.0)
        # Consecutive steps differ by a few percent — the warm-start regime —
        # never by the independent-resample jump of ~2*variation+amplitude.
        assert np.max(step_change) < 0.12


# ---------------------------------------------------------- chaining semantics
def test_chained_warm_start_masks_duals_on_topology_change():
    solution = ScenarioSolution(
        x=np.arange(4.0), lam=np.arange(3.0), mu=np.arange(1.0, 3.0), z=np.arange(1.0, 3.0)
    )
    Pd, Qd = np.zeros(3), np.zeros(3)
    same_a = Scenario(0, Pd, Qd, outage_branch=1)
    same_b = Scenario(1, Pd, Qd, outage_branch=1)
    changed = Scenario(2, Pd, Qd, outage_branches=(1, 2))

    kept = chained_warm_start(solution, same_a, same_b)
    assert np.array_equal(kept.x, solution.x)
    assert np.array_equal(kept.lam, solution.lam)
    assert kept.mu is not None and kept.z is not None

    masked = chained_warm_start(solution, same_a, changed)
    assert np.array_equal(masked.x, solution.x)
    assert np.array_equal(masked.lam, solution.lam)
    assert masked.mu is None and masked.z is None

    assert chained_warm_start(None, same_a, same_b) is None


def test_warm_chaining_beats_per_step_cold():
    """The Fig. 4 gap, time-unrolled: cold step 0, cheap warm tail."""
    case = case9()
    steps = trajectory_steps(case, sample_load_trajectory(case, n_steps=6, seed=2))
    with SolverFleet(case, execution="batch", collect_solutions=True) as fleet:
        chained = MultiPeriodSweep(fleet, warm_chain=True).run(steps)
        cold = MultiPeriodSweep(fleet, warm_chain=False).run(steps)
    assert chained.success_rate == 1.0 and cold.success_rate == 1.0
    chained_iters = chained.iterations_by_step()
    cold_iters = cold.iterations_by_step()
    # Step 0 is cold either way (no model seeding here) — identical work.
    assert chained_iters[0] == cold_iters[0]
    # Every later step is strictly cheaper warm-chained, by a lot in sum.
    assert all(w < c for w, c in zip(chained_iters[1:], cold_iters[1:]))
    assert sum(chained_iters[1:]) < 0.5 * sum(cold_iters[1:])
    # Records are threaded per step.
    assert [s.period for s in chained.steps] == list(range(6))
    assert chained.n_steps == 6 and chained.n_solves == 6


def test_trajectory_chains_through_topology_changes():
    """A mid-trajectory outage flip solves and keeps chaining afterwards."""
    case = case14()
    samples = sample_load_trajectory(case, n_steps=5, seed=3)
    safe = screened_outage_sets(case, k=1, max_sets=1, seed=0)[0]
    steps = trajectory_steps(case, samples)
    # Flip step 2's topology: same loads, one branch out.
    steps[2].scenarios[0] = Scenario(
        0, samples[2].Pd, samples[2].Qd, outage_branches=safe
    )
    with SolverFleet(case, execution="batch", collect_solutions=True) as fleet:
        result = MultiPeriodSweep(fleet).run(steps)
    assert result.success_rate == 1.0
    iters = result.iterations_by_step()
    # The topology-change step pays more than its warm neighbours (µ/Z were
    # masked) but far less than the cold start.
    assert iters[2] <= iters[0]
    assert iters[3] < iters[2]


def test_trajectory_bitwise_invariant_under_lockstep_window():
    """Window size is pure scheduling inside every step of a trajectory."""
    case = case14()
    pairs = screened_outage_sets(case, k=2, max_sets=2, seed=1)
    samples = sample_load_trajectory(case, n_steps=3, seed=4)
    steps = trajectory_steps(case, samples, outage_branches=((), *pairs))
    results = []
    for microbatch in (None, 1):
        with SolverFleet(
            case, execution="batch", schedule="steal", microbatch=microbatch,
            collect_solutions=True,
        ) as fleet:
            results.append(MultiPeriodSweep(fleet).run(steps))
    a, b = results
    assert a.success_rate == 1.0
    for sa, sb in zip(a.steps, b.steps):
        for oa, ob in zip(sa.outcomes, sb.outcomes):
            assert oa.iterations == ob.iterations
            assert oa.objective == ob.objective
            assert np.array_equal(oa.solution.x, ob.solution.x)
            assert np.array_equal(oa.solution.lam, ob.solution.lam)
            assert np.array_equal(oa.solution.mu, ob.solution.mu)
            assert np.array_equal(oa.solution.z, ob.solution.z)


def test_multi_period_sweep_rejects_bad_inputs():
    case = case9()
    with SolverFleet(case) as no_solutions_fleet:
        with pytest.raises(ValueError, match="collect_solutions"):
            MultiPeriodSweep(no_solutions_fleet)
    steps = trajectory_steps(case, sample_load_trajectory(case, n_steps=2, seed=0))
    ragged = [steps[0], trajectory_steps(case, sample_load_trajectory(case, 1, seed=0), outage_branches=((), (0,)))[0]]
    with SolverFleet(case, collect_solutions=True) as fleet:
        driver = MultiPeriodSweep(fleet)
        with pytest.raises(ValueError, match="at least one step"):
            driver.run([])
        with pytest.raises(ValueError, match="same sub-cases"):
            driver.run(ragged)


# ------------------------------------------------------------- engine serving
def test_engine_serve_trajectory(trained_trainer9):
    from repro.engine import WarmStartEngine

    with WarmStartEngine.from_trainer(trained_trainer9, execution="batch") as engine:
        case = engine.case
        steps = trajectory_steps(case, sample_load_trajectory(case, n_steps=4, seed=5))
        result = engine.serve_trajectory(steps)
        assert result.n_steps == 4
        assert [s.period for s in result.steps] == [0, 1, 2, 3]
        assert all(s.model_generation == engine.generation for s in result.steps)
        assert result.success_rate == 1.0
        # Step 0 got model warm starts; later steps chain — total work must
        # not exceed the per-step (model-each-step) baseline.
        baseline = engine.serve_trajectory(steps, warm_chain=False)
        assert result.total_iterations <= baseline.total_iterations
        # Empty trajectory short-circuits.
        empty = engine.serve_trajectory([])
        assert empty.n_steps == 0 and empty.wall_seconds == 0.0
