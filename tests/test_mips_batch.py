"""Parity suite: the lockstep batched solver against the scalar MIPS path.

``mips_batch`` must reproduce the scalar solver scenario-by-scenario — same
iteration counts, objectives and multipliers for converged scenarios, same
failure classification for diverging ones — on random same-structure QPs and
on warm-/cold-started AC-OPF sweeps, including mixed batches where individual
scenarios retire early or fall through to the recovery policy.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.engine.fallback import get_fallback_policy
from repro.grid import get_case
from repro.grid.perturb import sample_loads
from repro.mips import MIPSOptions, mips_batch, qps_mips
from repro.opf import (
    BatchedOPFModel,
    OPFModel,
    OPFOptions,
    WarmStart,
    solve_opf,
    solve_opf_batch,
)
from repro.opf.constraints import constraint_function
from repro.opf.hessian import lagrangian_hessian
from repro.parallel import generate_scenarios, run_scenario_sweep
from repro.utils.sparse import csr_from_template


def _dense(template, data_row):
    return np.asarray(csr_from_template(template, data_row).todense())


# ------------------------------------------------------------------ random QPs
def _random_qp_batch(batch=5, nx=6, neq=2, niq=3, seed=0):
    """Same-structure convex QPs with fully dense (but per-scenario) data."""
    rng = np.random.default_rng(seed)
    M = rng.uniform(0.5, 1.5, size=(batch, nx, nx))
    H = M @ M.transpose(0, 2, 1) + nx * np.eye(nx)
    c = rng.uniform(-1.0, 1.0, size=(batch, nx))
    Aeq = rng.uniform(0.5, 1.5, size=(batch, neq, nx))
    beq = rng.uniform(-0.5, 0.5, size=(batch, neq))
    Ain = rng.uniform(0.5, 1.5, size=(batch, niq, nx))
    bin_ = rng.uniform(1.0, 2.0, size=(batch, niq))
    xmin = np.full(nx, -5.0)
    xmax = np.full(nx, 5.0)
    return H, c, Aeq, beq, Ain, bin_, xmin, xmax


def test_qp_batch_matches_scalar():
    batch = 5
    H, c, Aeq, beq, Ain, bin_, xmin, xmax = _random_qp_batch(batch=batch)
    nx, neq, niq = c.shape[1], beq.shape[1], bin_.shape[1]

    def f_fcn(X, idx):
        Ha = H[idx]
        F = 0.5 * np.einsum("bi,bij,bj->b", X, Ha, X) + np.einsum("bi,bi->b", c[idx], X)
        dF = np.einsum("bij,bj->bi", Ha, X) + c[idx]
        return F, dF

    def gh_fcn(X, idx):
        G = np.einsum("bij,bj->bi", Aeq[idx], X) - beq[idx]
        Hc = np.einsum("bij,bj->bi", Ain[idx], X) - bin_[idx]
        return G, Hc, Aeq[idx].reshape(idx.size, -1), Ain[idx].reshape(idx.size, -1)

    def hess_fcn(X, lam_nl, mu_nl, cost_mult, idx):
        return (H[idx] * cost_mult).reshape(idx.size, -1)

    results = mips_batch(
        f_fcn,
        np.zeros((batch, nx)),
        gh_fcn=gh_fcn,
        hess_fcn=hess_fcn,
        jg_template=sp.csr_matrix(np.ones((neq, nx))),
        jh_template=sp.csr_matrix(np.ones((niq, nx))),
        hess_template=sp.csr_matrix(np.ones((nx, nx))),
        xmin=xmin,
        xmax=xmax,
    )
    assert len(results) == batch
    for b, result in enumerate(results):
        ref = qps_mips(
            H[b], c[b], A_eq=Aeq[b], b_eq=beq[b], A_in=Ain[b], b_in=bin_[b],
            xmin=xmin, xmax=xmax,
        )
        assert ref.converged and result.converged
        assert result.iterations == ref.iterations
        assert result.f == pytest.approx(ref.f, abs=1e-8, rel=1e-8)
        np.testing.assert_allclose(result.x, ref.x, atol=1e-8)
        np.testing.assert_allclose(result.lam, ref.lam, atol=1e-6)
        np.testing.assert_allclose(result.mu, ref.mu, atol=1e-6)
        np.testing.assert_allclose(result.z, ref.z, atol=1e-6)
        assert result.phase_seconds["factorization"] >= 0.0
        assert len(result.history) == result.iterations + 1


def test_mips_batch_validates_inputs():
    with pytest.raises(ValueError, match="hess_fcn"):
        mips_batch(lambda X, idx: (np.zeros(2), np.zeros((2, 3))), np.zeros((2, 3)))
    with pytest.raises(ValueError, match="(B, nx)"):
        mips_batch(
            lambda X, idx: (np.zeros(1), np.zeros((1, 3))),
            np.zeros(3),
            hess_fcn=lambda *a: np.zeros((1, 0)),
            hess_template=sp.csr_matrix((3, 3)),
        )


# -------------------------------------------------------- batched OPF kernels
def test_batched_opf_model_matches_scalar_evaluation():
    """Jacobian/Hessian data planes reproduce the scalar matrices exactly."""
    case = get_case("case14")
    model = OPFModel(case)
    batched = BatchedOPFModel(model)
    rng = np.random.default_rng(2)
    batch = 4
    x0 = model.default_start()
    X = x0 + 0.05 * rng.standard_normal((batch, x0.size))
    samples = sample_loads(case, batch, variation=0.1, seed=9)
    Pd = np.stack([s.Pd for s in samples])
    Qd = np.stack([s.Qd for s in samples])

    F, dF = batched.objective(X)
    G, H, Jg_data, Jh_data = batched.constraints(X, Pd / case.base_mva, Qd / case.base_mva)
    lam = rng.standard_normal((batch, 2 * case.n_bus))
    mu = np.abs(rng.standard_normal((batch, model.n_ineq_nonlin)))
    Hdata = batched.hessian(X, lam, mu, cost_mult=1.0)

    scalar_model = OPFModel(case)
    from repro.opf.costs import objective as scalar_objective

    for b in range(batch):
        f_ref, df_ref, _ = scalar_objective(scalar_model, X[b])
        assert F[b] == pytest.approx(f_ref, rel=1e-12)
        np.testing.assert_allclose(dF[b], df_ref, atol=1e-12)
        gh = constraint_function(scalar_model, Pd[b], Qd[b])
        g_ref, h_ref, Jg_ref, Jh_ref = gh(X[b])
        np.testing.assert_allclose(G[b], g_ref, atol=1e-12)
        np.testing.assert_allclose(H[b], h_ref, atol=1e-12)
        np.testing.assert_allclose(
            _dense(batched.jg_template, Jg_data[b]), np.asarray(Jg_ref.todense()), atol=1e-12
        )
        np.testing.assert_allclose(
            _dense(batched.jh_template, Jh_data[b]), np.asarray(Jh_ref.todense()), atol=1e-12
        )
        H_ref = lagrangian_hessian(scalar_model, X[b], lam[b], mu[b])
        np.testing.assert_allclose(
            _dense(batched.hess_template, Hdata[b]), np.asarray(H_ref.todense()), atol=1e-10
        )


# ------------------------------------------------------------- OPF sweep parity
def _assert_opf_parity(batch_results, scalar_results):
    for got, ref in zip(batch_results, scalar_results):
        assert got.success == ref.success
        if ref.success:
            assert got.iterations == ref.iterations
            assert got.objective == pytest.approx(ref.objective, rel=1e-8)
            np.testing.assert_allclose(got.x, ref.x, atol=1e-8)
            np.testing.assert_allclose(got.lam, ref.lam, atol=1e-6)
            np.testing.assert_allclose(got.mu, ref.mu, atol=1e-6)
            np.testing.assert_allclose(got.z, ref.z, atol=1e-6)


@pytest.mark.parametrize("case_name", ["case9", "case14"])
def test_cold_sweep_parity(case_name):
    case = get_case(case_name)
    samples = sample_loads(case, 4, variation=0.08, seed=3)
    Pd = np.stack([s.Pd for s in samples])
    Qd = np.stack([s.Qd for s in samples])
    model = OPFModel(case)
    batch = solve_opf_batch(case, Pd, Qd, model=model)
    scalar_model = OPFModel(case)
    scalar = [
        solve_opf(case, Pd_mw=Pd[i], Qd_mvar=Qd[i], model=scalar_model)
        for i in range(Pd.shape[0])
    ]
    assert all(r.success for r in scalar)
    _assert_opf_parity(batch, scalar)


@pytest.mark.parametrize("case_name", ["case9", "case14"])
def test_warm_sweep_parity(case_name):
    case = get_case(case_name)
    samples = sample_loads(case, 4, variation=0.06, seed=5)
    Pd = np.stack([s.Pd for s in samples])
    Qd = np.stack([s.Qd for s in samples])
    model = OPFModel(case)
    base = [
        solve_opf(case, Pd_mw=Pd[i], Qd_mvar=Qd[i], model=model) for i in range(Pd.shape[0])
    ]
    warms = [r.warm_start() for r in base]
    # Nudge the loads so the warm starts are near-optimal but not exact.
    Pd2 = Pd * (1.0 + 0.01 * np.linspace(-1.0, 1.0, Pd.shape[0]))[:, None]
    batch = solve_opf_batch(case, Pd2, Qd, warm_starts=warms, model=model)
    scalar_model = OPFModel(case)
    scalar = [
        solve_opf(case, warm_start=warms[i], Pd_mw=Pd2[i], Qd_mvar=Qd[i], model=scalar_model)
        for i in range(Pd.shape[0])
    ]
    _assert_opf_parity(batch, scalar)
    # Warm starts must actually help (the whole point of the engine).
    assert max(r.iterations for r in batch) <= max(r.iterations for r in base)


def test_mixed_batch_with_cold_warm_and_divergent():
    """Scenarios retire individually; a diverging member cannot poison the rest."""
    case = get_case("case9")
    model = OPFModel(case)
    nominal = solve_opf(case, model=model)
    warm = nominal.warm_start()
    Pd = np.stack([case.bus.Pd * 1.02, case.bus.Pd, case.bus.Pd * 15.0])
    Qd = np.stack([case.bus.Qd * 1.02, case.bus.Qd, case.bus.Qd * 15.0])
    options = OPFOptions(mips=MIPSOptions(max_it=40))
    batch = solve_opf_batch(
        case, Pd, Qd, warm_starts=[None, warm, None], options=options, model=model
    )
    scalar_model = OPFModel(case)
    scalar = [
        solve_opf(
            case,
            warm_start=[None, warm, None][i],
            Pd_mw=Pd[i],
            Qd_mvar=Qd[i],
            options=options,
            model=scalar_model,
        )
        for i in range(3)
    ]
    # Converged members match the scalar path exactly.
    assert batch[0].success and batch[1].success
    _assert_opf_parity(batch[:2], scalar[:2])
    # The absurd-load member fails on both paths (iteration counts may differ
    # once a trajectory diverges — float noise amplifies chaotically).
    assert not batch[2].success and not scalar[2].success
    assert batch[2].message != "converged"
    # Retirement: the warm member finished in fewer iterations than the cold.
    assert batch[1].iterations < batch[0].iterations


# ----------------------------------------------------------- fleet integration
def test_fleet_batch_execution_matches_scenario_mode():
    case = get_case("case14")
    scenarios = generate_scenarios(
        case, 8, variation=0.08, contingency_fraction=0.4, seed=5
    )
    assert any(s.outage_branch is not None for s in scenarios)
    sweep_scenario = run_scenario_sweep(case, scenarios, execution="scenario")
    sweep_batch = run_scenario_sweep(case, scenarios, execution="batch")
    assert sweep_batch.n_scenarios == sweep_scenario.n_scenarios
    for a, b in zip(sweep_scenario.outcomes, sweep_batch.outcomes):
        assert a.scenario_id == b.scenario_id
        assert a.success == b.success
        if a.success:
            assert a.iterations == b.iterations
            assert a.objective == pytest.approx(b.objective, rel=1e-8)


def test_fleet_batch_mode_fallback_recovers_failures():
    """A poisoned warm start fails in the lockstep batch and is recovered."""
    case = get_case("case9")
    scenarios = generate_scenarios(case, 3, variation=0.05, seed=7)
    model = OPFModel(case)
    good = solve_opf(case, model=model).warm_start()
    # A wildly infeasible primal point makes the warm solve explode quickly.
    poisoned = WarmStart(x=good.x * 200.0, lam=good.lam, mu=good.mu, z=good.z)
    warms = [good, poisoned, good]
    sweep = run_scenario_sweep(
        case,
        scenarios,
        warm_starts=warms,
        execution="batch",
        fallback=get_fallback_policy("cold_restart"),
    )
    poisoned_outcome = sweep.outcomes[1]
    assert not poisoned_outcome.success
    assert poisoned_outcome.used_fallback and poisoned_outcome.fallback_success
    assert poisoned_outcome.converged
    assert poisoned_outcome.iterations_fallback > 0
    # The healthy members were solved warm, no fallback.
    assert sweep.outcomes[0].success and not sweep.outcomes[0].used_fallback
    assert sweep.success_rate == 1.0


def test_fleet_batch_execution_validation():
    from repro.data import generate_dataset
    from repro.parallel import SolverFleet

    case = get_case("case9")
    with pytest.raises(ValueError, match="execution"):
        SolverFleet(case, execution="warp")
    with pytest.raises(ValueError, match="execution"):
        generate_dataset(case, 2, execution="warp")


# ------------------------------------------------ batch-mode singular KKT paths
def _singular_slot_qp(batch=3, nx=5, neq=2, niq=2, seed=4, consistent=True):
    """Same-structure QP batch whose middle slot has rank-deficient equalities.

    Duplicating slot 1's equality rows makes its KKT system exactly singular
    at every iteration; with identical right-hand sides the system stays
    *consistent* (the regularised solve is accepted by the residual check),
    with different right-hand sides it becomes contradictory and the solve
    must fail cleanly.
    """
    rng = np.random.default_rng(seed)
    M = rng.uniform(0.5, 1.5, size=(batch, nx, nx))
    H = M @ M.transpose(0, 2, 1) + nx * np.eye(nx)
    c = rng.uniform(-1.0, 1.0, size=(batch, nx))
    Aeq = rng.uniform(0.5, 1.5, size=(batch, neq, nx))
    beq = rng.uniform(-0.5, 0.5, size=(batch, neq))
    Aeq[1, 1] = Aeq[1, 0]
    beq[1, 1] = beq[1, 0] if consistent else beq[1, 0] + 1.0
    Ain = rng.uniform(0.5, 1.5, size=(batch, niq, nx))
    bin_ = rng.uniform(1.0, 2.0, size=(batch, niq))

    def f_fcn(X, idx):
        Ha = H[idx]
        F = 0.5 * np.einsum("bi,bij,bj->b", X, Ha, X) + np.einsum("bi,bi->b", c[idx], X)
        dF = np.einsum("bij,bj->bi", Ha, X) + c[idx]
        return F, dF

    def gh_fcn(X, idx):
        G = np.einsum("bij,bj->bi", Aeq[idx], X) - beq[idx]
        Hc = np.einsum("bij,bj->bi", Ain[idx], X) - bin_[idx]
        return G, Hc, Aeq[idx].reshape(idx.size, -1), Ain[idx].reshape(idx.size, -1)

    def hess_fcn(X, lam_nl, mu_nl, cost_mult, idx):
        return (H[idx] * cost_mult).reshape(idx.size, -1)

    kwargs = dict(
        gh_fcn=gh_fcn,
        hess_fcn=hess_fcn,
        jg_template=sp.csr_matrix(np.ones((neq, nx))),
        jh_template=sp.csr_matrix(np.ones((niq, nx))),
        hess_template=sp.csr_matrix(np.ones((nx, nx))),
    )
    return f_fcn, np.zeros((batch, nx)), kwargs


@pytest.mark.parametrize("backend", ["factorized", "blockdiag"])
def test_batch_singular_slot_recovered_by_regularization(backend):
    """A rank-deficient (but consistent) slot converges via the diagonal
    regularisation retry in both solver modes, and the recovery count is
    surfaced on exactly that scenario's result."""
    f_fcn, x0, kwargs = _singular_slot_qp()
    results = mips_batch(f_fcn, x0, options=MIPSOptions(kkt_solver=backend), **kwargs)
    assert all(r.converged for r in results)
    assert results[1].kkt_regularizations > 0
    assert results[0].kkt_regularizations == 0
    assert results[2].kkt_regularizations == 0


def test_batch_singular_slot_neighbours_bit_unaffected():
    """Regularising one slot must not leak into its neighbours.

    The per-slot mode isolates scenarios by construction (one solver per
    slot), so comparing the block-diagonal mode against it bit for bit proves
    the shared block factorisation's fallback kept the healthy neighbours'
    trajectories untouched while slot 1 was being regularised.
    """
    f_fcn, x0, kwargs = _singular_slot_qp()
    per_slot = mips_batch(f_fcn, x0, options=MIPSOptions(kkt_solver="factorized"), **kwargs)
    blocked = mips_batch(f_fcn, x0, options=MIPSOptions(kkt_solver="blockdiag"), **kwargs)
    for a, b in zip(per_slot, blocked):
        assert a.iterations == b.iterations
        assert a.kkt_regularizations == b.kkt_regularizations
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.lam, b.lam)
        np.testing.assert_array_equal(a.mu, b.mu)
        np.testing.assert_array_equal(a.z, b.z)


@pytest.mark.parametrize("backend", ["factorized", "blockdiag"])
def test_batch_inconsistent_singular_slot_fails_cleanly(backend):
    """An *inconsistent* singular slot is rejected by the residual check and
    classified as a singular-KKT failure; its neighbours still converge."""
    f_fcn, x0, kwargs = _singular_slot_qp(consistent=False)
    results = mips_batch(f_fcn, x0, options=MIPSOptions(kkt_solver=backend), **kwargs)
    assert not results[1].converged
    assert "singular KKT" in results[1].message
    # Failed recoveries are not counted (the counter reports accepted ones).
    assert results[1].kkt_regularizations == 0
    assert results[0].converged and results[2].converged


def test_batch_all_slots_singular_still_recovers():
    """Even when every slot is singular from the first iteration (so the
    block solver can never harvest a clean column permutation), the per-block
    degradation path recovers the whole batch."""
    import numpy as _np

    rng = _np.random.default_rng(4)
    batch, nx, neq, niq = 3, 5, 2, 2
    M = rng.uniform(0.5, 1.5, size=(batch, nx, nx))
    H = M @ M.transpose(0, 2, 1) + nx * _np.eye(nx)
    c = rng.uniform(-1.0, 1.0, size=(batch, nx))
    Aeq = rng.uniform(0.5, 1.5, size=(batch, neq, nx))
    Aeq[:, 1] = Aeq[:, 0]
    beq = rng.uniform(-0.5, 0.5, size=(batch, neq))
    beq[:, 1] = beq[:, 0]
    Ain = rng.uniform(0.5, 1.5, size=(batch, niq, nx))
    bin_ = rng.uniform(1.0, 2.0, size=(batch, niq))

    def f_fcn(X, idx):
        Ha = H[idx]
        F = 0.5 * _np.einsum("bi,bij,bj->b", X, Ha, X) + _np.einsum("bi,bi->b", c[idx], X)
        return F, _np.einsum("bij,bj->bi", Ha, X) + c[idx]

    def gh_fcn(X, idx):
        return (
            _np.einsum("bij,bj->bi", Aeq[idx], X) - beq[idx],
            _np.einsum("bij,bj->bi", Ain[idx], X) - bin_[idx],
            Aeq[idx].reshape(idx.size, -1),
            Ain[idx].reshape(idx.size, -1),
        )

    def hess_fcn(X, lam_nl, mu_nl, cost_mult, idx):
        return (H[idx] * cost_mult).reshape(idx.size, -1)

    results = mips_batch(
        f_fcn,
        _np.zeros((batch, nx)),
        gh_fcn=gh_fcn,
        hess_fcn=hess_fcn,
        jg_template=sp.csr_matrix(_np.ones((neq, nx))),
        jh_template=sp.csr_matrix(_np.ones((niq, nx))),
        hess_template=sp.csr_matrix(_np.ones((nx, nx))),
        options=MIPSOptions(kkt_solver="blockdiag"),
    )
    assert all(r.converged for r in results)
    assert all(r.kkt_regularizations > 0 for r in results)
