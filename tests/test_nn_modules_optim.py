"""Tests of layers, losses, optimisers, schedulers and serialization."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CharbonnierLoss,
    CosineAnnealingLR,
    ExponentialLR,
    L1Loss,
    Linear,
    MSELoss,
    ReLU,
    SGD,
    Sequential,
    Sigmoid,
    StepLR,
    Tensor,
    charbonnier,
    clip_grad_norm,
    load_state_dict,
    mlp,
    save_state_dict,
)
from repro.nn.modules import Parameter


# ----------------------------------------------------------------------- modules
def test_linear_forward_shape_and_bias():
    layer = Linear(3, 2, rng=0)
    out = layer(Tensor(np.ones((5, 3))))
    assert out.shape == (5, 2)
    no_bias = Linear(3, 2, bias=False, rng=0)
    assert no_bias.bias is None
    assert len(no_bias.parameters()) == 1


def test_linear_rejects_bad_sizes():
    with pytest.raises(ValueError):
        Linear(0, 3)


def test_sequential_composition_and_parameters():
    net = Sequential(Linear(4, 8, rng=1), ReLU(), Linear(8, 2, rng=2))
    assert len(net) == 3
    assert len(net.parameters()) == 4
    out = net(Tensor(np.zeros((1, 4))))
    assert out.shape == (1, 2)


def test_mlp_builder_structure():
    net = mlp([4, 16, 16, 3], output_activation=Sigmoid, rng=0)
    out = net(Tensor(np.zeros((2, 4))))
    assert out.shape == (2, 3)
    assert np.all((out.data >= 0) & (out.data <= 1))
    with pytest.raises(ValueError):
        mlp([4])


def test_named_parameters_and_counts():
    net = mlp([3, 5, 2], rng=0)
    names = dict(net.named_parameters())
    assert any("weight" in n for n in names)
    assert net.n_parameters() == 3 * 5 + 5 + 5 * 2 + 2


def test_train_eval_mode_propagates():
    net = Sequential(Linear(2, 2), ReLU())
    net.eval()
    assert all(not m.training for m in net.modules())
    net.train()
    assert all(m.training for m in net.modules())


def test_state_dict_roundtrip(tmp_path):
    net = mlp([3, 8, 2], rng=0)
    other = mlp([3, 8, 2], rng=99)
    x = Tensor(np.random.default_rng(0).standard_normal((4, 3)))
    assert not np.allclose(net(x).data, other(x).data)
    path = tmp_path / "weights.npz"
    save_state_dict(net.state_dict(), path)
    other.load_state_dict(load_state_dict(path))
    assert np.allclose(net(x).data, other(x).data)


def test_load_state_dict_rejects_mismatch():
    net = mlp([3, 8, 2], rng=0)
    state = net.state_dict()
    state.pop(next(iter(state)))
    with pytest.raises(KeyError):
        net.load_state_dict(state)


def test_module_zero_grad():
    net = Linear(2, 2, rng=0)
    out = net(Tensor(np.ones((1, 2)))).sum()
    out.backward()
    assert net.weight.grad is not None
    net.zero_grad()
    assert net.weight.grad is None


# ------------------------------------------------------------------------ losses
def test_charbonnier_approximates_l1_for_large_errors():
    pred = Tensor(np.array([10.0]))
    target = Tensor(np.array([0.0]))
    assert charbonnier(pred, target).item() == pytest.approx(10.0, rel=1e-6)


def test_charbonnier_smooth_at_zero():
    loss = CharbonnierLoss(epsilon=1e-9)
    value = loss(Tensor(np.zeros(4)), Tensor(np.zeros(4))).item()
    assert value == pytest.approx(1e-9, rel=1e-3)


def test_loss_modules_values():
    pred = Tensor(np.array([1.0, 2.0]))
    target = Tensor(np.array([0.0, 0.0]))
    assert MSELoss()(pred, target).item() == pytest.approx(2.5)
    assert L1Loss()(pred, target).item() == pytest.approx(1.5)


def test_charbonnier_weight_scales_loss():
    pred, target = Tensor(np.array([2.0])), Tensor(np.array([0.0]))
    unweighted = charbonnier(pred, target).item()
    weighted = charbonnier(pred, target, weight=3.0).item()
    assert weighted == pytest.approx(3 * unweighted)


# -------------------------------------------------------------------- optimisers
def _fit(optimizer_factory, epochs=200):
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, (128, 2))
    y = (2 * X[:, :1] - 0.5 * X[:, 1:]) + 0.1
    net = mlp([2, 16, 1], rng=1)
    opt = optimizer_factory(net.parameters())
    loss_value = None
    for _ in range(epochs):
        opt.zero_grad()
        loss = ((net(Tensor(X)) - Tensor(y)) ** 2).mean()
        loss.backward()
        opt.step()
        loss_value = loss.item()
    return loss_value


def test_sgd_reduces_loss():
    assert _fit(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-2


def test_adam_reduces_loss():
    assert _fit(lambda p: Adam(p, lr=1e-2)) < 5e-3


def test_optimizer_validation():
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        Adam([Parameter(np.zeros(2))], lr=-1)
    with pytest.raises(ValueError):
        SGD([Parameter(np.zeros(2))], lr=0.1, momentum=1.5)


def test_clip_grad_norm():
    p = Parameter(np.zeros(3))
    p.grad = np.array([3.0, 4.0, 0.0])
    norm = clip_grad_norm([p], max_norm=1.0)
    assert norm == pytest.approx(5.0)
    assert np.linalg.norm(p.grad) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        clip_grad_norm([p], max_norm=0.0)


def test_adam_weight_decay_shrinks_weights():
    p = Parameter(np.ones(2) * 10)
    opt = Adam([p], lr=0.1, weight_decay=0.1)
    p.grad = np.zeros(2)
    opt.step()
    assert np.all(np.abs(p.data) < 10)


# -------------------------------------------------------------------- schedulers
def test_step_lr_schedule():
    opt = SGD([Parameter(np.zeros(1))], lr=1.0)
    sched = StepLR(opt, step_size=2, gamma=0.5)
    lrs = [sched.step() for _ in range(4)]
    assert lrs == [1.0, 0.5, 0.5, 0.25]


def test_exponential_lr_schedule():
    opt = SGD([Parameter(np.zeros(1))], lr=1.0)
    sched = ExponentialLR(opt, gamma=0.9)
    sched.step()
    assert opt.lr == pytest.approx(0.9)


def test_cosine_lr_endpoints():
    opt = SGD([Parameter(np.zeros(1))], lr=1.0)
    sched = CosineAnnealingLR(opt, t_max=10, min_lr=0.1)
    values = [sched.step() for _ in range(10)]
    assert values[0] < 1.0
    assert values[-1] == pytest.approx(0.1, abs=1e-9)
    assert all(values[i] >= values[i + 1] for i in range(len(values) - 1))


def test_scheduler_validation():
    opt = SGD([Parameter(np.zeros(1))], lr=1.0)
    with pytest.raises(ValueError):
        StepLR(opt, step_size=0)
    with pytest.raises(ValueError):
        CosineAnnealingLR(opt, t_max=0)
