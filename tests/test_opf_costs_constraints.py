"""Tests of the OPF objective, constraints and their Jacobians."""

import numpy as np
import pytest

from repro.opf import (
    OPFModel,
    branch_flow_limits,
    objective,
    polynomial_cost,
    polynomial_cost_derivatives,
    power_balance,
    total_cost,
)


# ------------------------------------------------------------------------- costs
def test_polynomial_cost_quadratic_evaluation(case9_fixture):
    Pg = np.array([100.0, 100.0, 100.0])
    costs = polynomial_cost(case9_fixture, Pg)
    # c2*P^2 + c1*P + c0 with case9 coefficients.
    assert costs[0] == pytest.approx(0.11 * 100**2 + 5 * 100 + 150)
    assert costs[1] == pytest.approx(0.085 * 100**2 + 1.2 * 100 + 600)


def test_polynomial_cost_derivatives_match_fd(case14_fixture, rng):
    Pg = rng.uniform(10, 90, size=case14_fixture.n_gen)
    d1, d2 = polynomial_cost_derivatives(case14_fixture, Pg)
    eps = 1e-5
    for g in range(case14_fixture.n_gen):
        pp, pm = Pg.copy(), Pg.copy()
        pp[g] += eps
        pm[g] -= eps
        fd = (polynomial_cost(case14_fixture, pp)[g] - polynomial_cost(case14_fixture, pm)[g]) / (2 * eps)
        assert d1[g] == pytest.approx(fd, rel=1e-6)
    assert np.all(d2 >= 0)  # convex quadratic costs


def test_total_cost_ignores_offline_units(case9_fixture):
    Pg = np.array([100.0, 100.0, 100.0])
    full = total_cost(case9_fixture, Pg)
    modified = case9_fixture.copy()
    modified.gen.status[2] = 0
    reduced = total_cost(modified, Pg)
    assert reduced < full


def test_objective_gradient_matches_fd(opf_model9, rng):
    x = opf_model9.default_start() + 0.01 * rng.standard_normal(opf_model9.idx.nx)
    f, df, d2f = objective(opf_model9, x)
    eps = 1e-6
    for i in rng.choice(opf_model9.idx.nx, size=8, replace=False):
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        fd = (objective(opf_model9, xp)[0] - objective(opf_model9, xm)[0]) / (2 * eps)
        assert df[i] == pytest.approx(fd, rel=1e-5, abs=1e-7)
    # Hessian only in the Pg block.
    dense = d2f.toarray()
    assert np.allclose(dense[: 2 * 9, :], 0)
    assert np.all(np.diag(dense)[opf_model9.idx.pg] > 0)


# -------------------------------------------------------------------- constraints
def test_power_balance_dimensions_and_jacobian_shape(opf_model9):
    x = opf_model9.default_start()
    g, Jg = power_balance(opf_model9, x)
    assert g.shape == (2 * 9,)
    assert Jg.shape == (2 * 9, opf_model9.idx.nx)


def test_power_balance_zero_when_generation_matches_load(case9_fixture, opf_model9, opf_solution9):
    g, _ = power_balance(opf_model9, opf_solution9.x)
    assert np.abs(g).max() < 1e-6


def test_power_balance_respects_load_override(opf_model9, case9_fixture):
    x = opf_model9.default_start()
    g_nominal, _ = power_balance(opf_model9, x)
    g_scaled, _ = power_balance(
        opf_model9, x, case9_fixture.bus.Pd * 1.1, case9_fixture.bus.Qd
    )
    # Higher load -> larger (more positive) active-power mismatch.
    assert g_scaled[: case9_fixture.n_bus].sum() > g_nominal[: case9_fixture.n_bus].sum()


def test_power_balance_jacobian_matches_fd(opf_model9, rng):
    x = opf_model9.default_start() + 0.01 * rng.standard_normal(opf_model9.idx.nx)
    g, Jg = power_balance(opf_model9, x)
    eps = 1e-6
    cols = rng.choice(opf_model9.idx.nx, size=10, replace=False)
    for i in cols:
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        fd = (power_balance(opf_model9, xp)[0] - power_balance(opf_model9, xm)[0]) / (2 * eps)
        assert np.abs(Jg.toarray()[:, i] - fd).max() < 1e-6


def test_branch_flow_limits_active_only_for_rated_branches(case9_fixture, case14_fixture):
    model9 = OPFModel(case9_fixture)
    model14 = OPFModel(case14_fixture)
    h9, Jh9 = branch_flow_limits(model9, model9.default_start())
    h14, Jh14 = branch_flow_limits(model14, model14.default_start())
    assert h9.shape == (2 * 9,)  # all 9 branches of case9 are rated
    assert h14.shape == (0,)  # case14 ships without branch ratings
    assert Jh14.shape == (0, model14.idx.nx)


def test_branch_flow_limits_satisfied_at_solution(opf_model9, opf_solution9):
    h, _ = branch_flow_limits(opf_model9, opf_solution9.x)
    assert np.all(h <= 1e-6)


def test_branch_flow_jacobian_matches_fd(opf_model9, rng):
    x = opf_model9.default_start() + 0.01 * rng.standard_normal(opf_model9.idx.nx)
    h, Jh = branch_flow_limits(opf_model9, x)
    eps = 1e-6
    for i in rng.choice(2 * 9, size=6, replace=False):  # voltage coordinates only
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        fd = (branch_flow_limits(opf_model9, xp)[0] - branch_flow_limits(opf_model9, xm)[0]) / (2 * eps)
        assert np.abs(Jh.toarray()[:, i] - fd).max() < 1e-5


def test_flow_limits_none_disables_inequalities(case9_fixture):
    model = OPFModel(case9_fixture, flow_limits="none")
    h, _ = branch_flow_limits(model, model.default_start())
    assert h.size == 0


def test_flow_limits_invalid_mode(case9_fixture):
    with pytest.raises(ValueError):
        OPFModel(case9_fixture, flow_limits="I")
