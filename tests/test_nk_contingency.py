"""N-k contingency screening: connectivity, validation, grouping and bitwise parity.

Covers the scenario-universe expansion end to end:

* the islanding regression — the old endpoint-degree "bridge" filter admits
  branches whose removal splits the network (any branch on a cycle-free chain
  segment), which the union-find connectivity check must reject;
* typed validation of outage indices (negative at construction, out-of-range
  on apply);
* the ``outage_branch`` ↔ ``outage_branches`` compatibility contract;
* topology grouping unified on ``topology_key`` across scheduler and pool;
* the headline acceptance property: grouped N-2 lockstep solves are
  bitwise-identical — multipliers included — to per-scenario solves, across
  both batched KKT backends.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.grid import case9, case14, case_from_matpower
from repro.mips.options import MIPSOptions
from repro.opf.solver import OPFOptions
from repro.parallel import (
    Scenario,
    ScenarioSet,
    SolverFleet,
    generate_contingency_set,
    generate_scenarios,
    make_microbatches,
    outage_keeps_connected,
    screened_outage_sets,
    topology_key,
)
from repro.parallel.pool import _topology_groups
from repro.parallel.scheduler import predicted_cost


def chain_case():
    """Triangle 1-2-3 plus chain 3-4-5.

    Branch (3,4) has both endpoint degrees > 1 (bus 3 has degree 3, bus 4 has
    degree 2), so the old filter admits it — yet removing it islands buses
    4 and 5.
    """
    bus = [
        [1, 3, 0, 0, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [2, 1, 50, 15, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [3, 1, 0, 0, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [4, 1, 0, 0, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
        [5, 1, 40, 10, 0, 0, 1, 1.0, 0, 345, 1, 1.1, 0.9],
    ]
    gen = [[1, 90, 0, 300, -300, 1.0, 100, 1, 250, 10]]
    line = [0.01, 0.085, 0.176, 250, 250, 250, 0, 0, 1, -360, 360]
    branch = [
        [1, 2, *line],
        [2, 3, *line],
        [1, 3, *line],
        [3, 4, *line],
        [4, 5, *line],
    ]
    gencost = [[2, 1500, 0, 3, 0.11, 5.0, 150]]
    return case_from_matpower("chain5", 100.0, bus, gen, branch, gencost)


# ------------------------------------------------------------- connectivity
def test_degree_filter_admits_splitting_branch_connectivity_check_rejects():
    case = chain_case()
    f, t = case.branch_bus_indices()
    live = case.branch.status > 0
    degree = np.bincount(f[live], minlength=case.n_bus) + np.bincount(
        t[live], minlength=case.n_bus
    )
    splitting = 3  # branch (3,4): a chain segment, not a leaf branch
    # The old heuristic admits it...
    assert degree[f[splitting]] > 1 and degree[t[splitting]] > 1
    # ...but its removal splits off buses {4, 5}.
    assert not outage_keeps_connected(case, (splitting,))
    # Triangle branches are genuinely safe singles.
    assert outage_keeps_connected(case, (0,))
    assert outage_keeps_connected(case, (1,))
    assert outage_keeps_connected(case, (2,))
    # Joint removals compose: in this tiny case every N-2 set splits (two
    # triangle edges isolate a triangle vertex; chain edges split outright) —
    # and no per-branch degree condition can screen joint removals at all.
    assert not outage_keeps_connected(case, (0, 1))
    assert not outage_keeps_connected(case, (0, 3))
    assert screened_outage_sets(case, k=2) == []


def test_generate_scenarios_never_outages_a_splitting_branch():
    case = chain_case()
    scenario_set = generate_scenarios(case, 64, contingency_fraction=1.0, seed=0)
    drawn = {s.outage_branch for s in scenario_set if s.outage_branch is not None}
    assert drawn  # the triangle branches are available...
    assert drawn <= {0, 1, 2}  # ...and no chain branch is ever drawn
    for branch in drawn:
        assert outage_keeps_connected(case, (branch,))


def test_screened_outage_sets_enumeration_and_sampling():
    case = case14()
    singles = screened_outage_sets(case, k=1)
    assert singles and all(len(s) == 1 for s in singles)
    pairs = screened_outage_sets(case, k=2)
    assert pairs and all(len(p) == 2 and p[0] < p[1] for p in pairs)
    for pair in pairs:
        assert outage_keeps_connected(case, pair)
    # Deterministic subsampling: a subset, order-preserving, reproducible.
    sampled = screened_outage_sets(case, k=2, max_sets=5, seed=11)
    assert len(sampled) == 5
    assert sampled == screened_outage_sets(case, k=2, max_sets=5, seed=11)
    assert set(sampled) <= set(pairs)
    assert sampled == sorted(sampled)
    # case9 is a ring with three spurs: every N-2 pair splits the network.
    assert screened_outage_sets(case9(), k=2) == []


def test_generate_contingency_set_round_robins_screened_pairs():
    case = case14()
    cs = generate_contingency_set(case, 9, k=2, max_outage_sets=3, seed=2)
    assert len(cs) == 9
    keys = [topology_key(s) for s in cs]
    assert all(len(k) == 2 for k in keys)
    assert len(set(keys)) == 3
    # Round-robin: scenario i reuses set i % 3, so lockstep groups recur.
    assert keys[0] == keys[3] == keys[6]
    # N-2 scenarios have no single-branch compatibility view.
    assert all(s.outage_branch is None for s in cs)
    with pytest.raises(ValueError, match="no connectivity-preserving"):
        generate_contingency_set(case9(), 4, k=2)


# --------------------------------------------------------------- validation
def test_negative_outage_index_rejected_at_construction():
    Pd, Qd = np.zeros(3), np.zeros(3)
    with pytest.raises(ValueError, match="non-negative"):
        Scenario(0, Pd, Qd, outage_branch=-1)
    with pytest.raises(ValueError, match="non-negative"):
        Scenario(0, Pd, Qd, outage_branches=(0, -2))
    with pytest.raises(ValueError, match="integer"):
        Scenario(0, Pd, Qd, outage_branch=1.5)


def test_out_of_range_outage_index_raises_typed_error_on_apply():
    case = case9()
    scenario = Scenario(0, case.bus.Pd, case.bus.Qd, outage_branch=case.n_branch)
    with pytest.raises(ValueError, match="out of range"):
        scenario.apply(case)
    pair = Scenario(0, case.bus.Pd, case.bus.Qd, outage_branches=(0, 99))
    with pytest.raises(ValueError, match="out of range"):
        pair.apply(case)


def test_outage_branch_compatibility_view():
    Pd, Qd = np.zeros(3), np.zeros(3)
    single = Scenario(0, Pd, Qd, outage_branch=4)
    assert single.outage_branches == (4,)
    assert single.outage_branch == 4
    pair = Scenario(0, Pd, Qd, outage_branches=(7, 2))
    assert pair.outage_branches == (2, 7)  # sorted canonical form
    assert pair.outage_branch is None
    # Consistent double specification round-trips (dataclasses.replace re-runs
    # __post_init__ with both fields set — the serving path relies on this).
    clone = dataclasses.replace(single, scenario_id=5)
    assert clone.outage_branches == (4,) and clone.outage_branch == 4
    with pytest.raises(ValueError, match="disagree"):
        Scenario(0, Pd, Qd, outage_branch=1, outage_branches=(2, 3))
    # Duplicates collapse.
    assert Scenario(0, Pd, Qd, outage_branches=(3, 3)).outage_branch == 3


def test_predicted_cost_scales_with_outage_order():
    Pd, Qd = np.zeros(3), np.zeros(3)
    base = predicted_cost(Scenario(0, Pd, Qd), None)
    n1 = predicted_cost(Scenario(0, Pd, Qd, outage_branch=1), None)
    n2 = predicted_cost(Scenario(0, Pd, Qd, outage_branches=(1, 2)), None)
    assert base < n1 < n2
    assert n2 / n1 == pytest.approx(n1 / base)


# ----------------------------------------------------------------- grouping
def test_pool_and_scheduler_grouping_agree():
    """`topology_key` is the single source of truth for group membership."""
    case = case14()
    cs = generate_contingency_set(case, 12, k=2, max_outage_sets=4, seed=3)
    mixed = list(cs) + list(generate_scenarios(case, 6, contingency_fraction=0.5, seed=4))

    pool_groups = _topology_groups(mixed)
    sched_groups: dict = {}
    for mb in make_microbatches(mixed, microbatch=len(mixed)):
        sched_groups.setdefault(mb.key, []).extend(mb.positions)
    assert pool_groups == sched_groups
    for key, positions in pool_groups.items():
        assert all(topology_key(mixed[p]) == key for p in positions)


# ------------------------------------------------------------ bitwise parity
@pytest.mark.parametrize("kkt_solver", ["factorized", "blockdiag"])
def test_grouped_n2_solves_match_per_scenario_bitwise(kkt_solver):
    """Acceptance: grouped N-2 lockstep == per-scenario solves, multipliers included.

    The elastic keyed path locksteps every topology group — singletons
    included — so solving each scenario alone walks the same numeric path as
    the grouped sweep; lockstep rows are bit-independent, hence the results
    must agree to the last bit across both batched KKT backends.
    """
    case = case14()
    options = OPFOptions(mips=MIPSOptions(kkt_solver=kkt_solver))
    cs = generate_contingency_set(case, 8, k=2, max_outage_sets=2, seed=5)
    assert len({topology_key(s) for s in cs}) == 2  # pairs genuinely recur

    with SolverFleet(
        case, options=options, execution="batch", schedule="steal",
        collect_solutions=True,
    ) as fleet:
        grouped = fleet.solve(cs)
        singles = [
            fleet.solve(ScenarioSet(case.name, [s], n_bus=case.n_bus)).outcomes[0]
            for s in cs
        ]

    assert grouped.success_rate == 1.0
    for a, b in zip(grouped.outcomes, singles):
        assert a.scenario_id == b.scenario_id
        assert a.success == b.success
        assert a.iterations == b.iterations
        assert a.objective == b.objective
        assert a.solution is not None and b.solution is not None
        assert np.array_equal(a.solution.x, b.solution.x)
        assert np.array_equal(a.solution.lam, b.solution.lam)
        assert np.array_equal(a.solution.mu, b.solution.mu)
        assert np.array_equal(a.solution.z, b.solution.z)


def test_n2_sweep_invariant_under_scheduling_knobs():
    """Chunking, steal order, worker count: pure scheduling for N-2 too."""
    case = case14()
    cs = generate_contingency_set(case, 6, k=2, max_outage_sets=3, seed=6)
    results = []
    for microbatch in (None, 1, 2):
        with SolverFleet(
            case, execution="batch", schedule="steal", microbatch=microbatch,
            collect_solutions=True,
        ) as fleet:
            results.append(fleet.solve(cs))
    ref = results[0]
    for other in results[1:]:
        for a, b in zip(ref.outcomes, other.outcomes):
            assert a.iterations == b.iterations
            assert a.objective == b.objective
            assert np.array_equal(a.solution.x, b.solution.x)
            assert np.array_equal(a.solution.mu, b.solution.mu)
