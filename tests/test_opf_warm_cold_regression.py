"""Warm-started and cold-started MIPS must reach the same OPF solution.

This is the guard-rail for the structure-cached KKT fast path (and any future
solver change): a warm start may only change *how fast* the solver gets to the
optimum, never *where* it lands.  Exercised on the bundled IEEE cases with
both linear-solver backends.
"""

import numpy as np
import pytest

from repro.grid import case9, case14
from repro.mips.options import MIPSOptions
from repro.opf import OPFModel, solve_opf
from repro.opf.solver import OPFOptions


@pytest.fixture(scope="module", params=["case9", "case14"])
def cold_and_model(request):
    case = case9() if request.param == "case9" else case14()
    model = OPFModel(case)
    cold = solve_opf(case, model=model)
    assert cold.success
    return case, model, cold


def test_warm_start_reaches_cold_start_solution(cold_and_model):
    case, model, cold = cold_and_model
    warm = solve_opf(case, warm_start=cold.warm_start(), model=model)
    assert warm.success
    assert abs(warm.objective - cold.objective) < 1e-6 * (1.0 + abs(cold.objective))
    assert np.abs(warm.x - cold.x).max() < 1e-6
    # The paper's whole premise: a precise warm start needs (far) fewer iterations.
    assert warm.iterations <= cold.iterations


def test_backends_agree_cold_started(cold_and_model):
    case, model, cold = cold_and_model
    ref = solve_opf(
        case,
        model=model,
        options=OPFOptions(mips=MIPSOptions(kkt_solver="spsolve")),
    )
    assert ref.success
    assert ref.iterations == cold.iterations
    assert abs(ref.objective - cold.objective) < 1e-8 * (1.0 + abs(cold.objective))
    assert np.abs(ref.x - cold.x).max() < 1e-6


def test_backends_agree_warm_started(cold_and_model):
    case, model, cold = cold_and_model
    results = {}
    for backend in ("factorized", "spsolve"):
        results[backend] = solve_opf(
            case,
            warm_start=cold.warm_start(),
            model=model,
            options=OPFOptions(mips=MIPSOptions(kkt_solver=backend)),
        )
    fact, sps = results["factorized"], results["spsolve"]
    assert fact.success and sps.success
    assert fact.iterations == sps.iterations
    assert abs(fact.objective - sps.objective) < 1e-8 * (1.0 + abs(sps.objective))


def test_model_reuse_across_scenarios_matches_fresh_models(cold_and_model):
    """The structure caches on a shared model must not leak state between
    scenarios with different loads."""
    case, model, _ = cold_and_model
    rng = np.random.default_rng(7)
    for _ in range(3):
        scale = 1.0 + 0.05 * rng.standard_normal()
        Pd = case.bus.Pd * scale
        Qd = case.bus.Qd * scale
        shared = solve_opf(case, Pd_mw=Pd, Qd_mvar=Qd, model=model)
        fresh = solve_opf(case, Pd_mw=Pd, Qd_mvar=Qd, model=OPFModel(case))
        assert shared.success == fresh.success
        if shared.success:
            assert shared.iterations == fresh.iterations
            assert abs(shared.objective - fresh.objective) < 1e-8 * (
                1.0 + abs(fresh.objective)
            )
            assert np.abs(shared.x - fresh.x).max() < 1e-8
