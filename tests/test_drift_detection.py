"""Deterministic drift-detection corpus tests.

Two canonical streams drive the acceptance criteria: a *stationary* corpus
must never alarm, and a *degradation ramp* must alarm within a bounded number
of observations — on every machine, because the detectors are pure arithmetic
over the observed values.  The suite also writes the drift-telemetry JSON the
CI job uploads as an artifact (``DRIFT_TELEMETRY_PATH``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.engine import WarmStartEngine
from repro.engine.drift import (
    DRIFT_STATUSES,
    DriftDetector,
    DriftMonitor,
    PageHinkley,
    RollingTrend,
    default_detectors,
)


# ------------------------------------------------------------- corpus builders
def stationary_corpus(n: int = 200):
    """Healthy serving traffic: flat iteration counts, no fallbacks."""
    iterations = [8.0 + (i % 3 == 0) for i in range(n)]  # 8,8,9,8,8,9,…
    return [
        {
            "iterations": iterations[i],
            "used_fallback": 0.0,
            "timed_out": 0.0,
            "warm_solve_seconds": 0.01,
        }
        for i in range(n)
    ]


def degradation_ramp(n_healthy: int = 60, n_ramp: int = 80):
    """Healthy prefix, then warm starts degrade: iterations climb, fallbacks appear."""
    values = stationary_corpus(n_healthy)
    for i in range(n_ramp):
        values.append(
            {
                "iterations": 8.0 + 0.5 * i,
                "used_fallback": 1.0 if i % 3 == 0 else 0.0,
                "timed_out": 0.0,
                "warm_solve_seconds": 0.01 + 0.002 * i,
            }
        )
    return values


# ---------------------------------------------------------------- page-hinkley
def test_page_hinkley_stationary_never_alarms():
    ph = PageHinkley(delta=0.25, threshold=10.0)
    for x in [8.0, 9.0] * 200:
        ph.update(x)
    assert not ph.alarmed
    assert ph.onset_index is None
    assert ph.statistic <= ph.threshold


def test_page_hinkley_detects_mean_shift_with_bounded_latency():
    ph = PageHinkley(delta=0.25, threshold=10.0)
    for _ in range(100):
        ph.update(8.0)
    assert not ph.alarmed
    shift_at = ph.n
    for _ in range(50):
        ph.update(12.0)  # +4 per step over the mean, minus delta → ~3.75/step
    assert ph.alarmed
    # Latency bound: the cumulative excess reaches the threshold within
    # ceil(threshold / (shift - delta)) observations, plus slack for the
    # running mean catching up.
    assert ph.onset_index is not None
    assert ph.onset_index - shift_at < 10


def test_page_hinkley_alarm_is_latched():
    ph = PageHinkley(delta=0.0, threshold=1.0, min_observations=1)
    ph.update(0.0)
    for _ in range(10):
        ph.update(5.0)
    assert ph.alarmed
    onset = ph.onset_index
    for _ in range(100):
        ph.update(0.0)  # recovery does not un-latch the alarm
    assert ph.alarmed and ph.onset_index == onset


def test_page_hinkley_validation():
    with pytest.raises(ValueError):
        PageHinkley(delta=-0.1, threshold=1.0)
    with pytest.raises(ValueError):
        PageHinkley(delta=0.1, threshold=0.0)
    with pytest.raises(ValueError):
        PageHinkley(delta=0.1, threshold=1.0, min_observations=0)


# -------------------------------------------------------------- rolling trend
def test_rolling_trend_recovers_linear_slope():
    trend = RollingTrend(window=16, slope_threshold=0.1)
    for i in range(40):
        trend.update(2.0 + 0.5 * i)
    assert trend.slope == pytest.approx(0.5, abs=1e-12)
    assert trend.trending


def test_rolling_trend_requires_full_window():
    trend = RollingTrend(window=8, slope_threshold=0.01)
    for i in range(7):
        trend.update(float(i))
    assert trend.slope == 0.0 and not trend.trending
    trend.update(7.0)
    assert trend.trending


def test_rolling_trend_flat_stream_is_not_trending():
    trend = RollingTrend(window=8, slope_threshold=0.01)
    for _ in range(50):
        trend.update(3.0)
    assert trend.slope == pytest.approx(0.0, abs=1e-15)
    assert not trend.trending


# ----------------------------------------------------------- composite detector
def test_detector_trending_precedes_drifted_on_ramp():
    """On a gradual ramp the early warning fires before the CUSUM alarm."""
    detector = DriftDetector("iterations", delta=0.25, threshold=10.0, window=16)
    statuses = []
    for i in range(120):
        x = 8.0 if i < 60 else 8.0 + 0.25 * (i - 60)
        detector.observe(x)
        statuses.append(detector.status)
    assert statuses[59] == "stationary"
    assert "trending" in statuses
    assert statuses[-1] == "drifted"
    assert statuses.index("trending") < statuses.index("drifted")


def test_detector_reset_clears_latched_alarm():
    detector = DriftDetector("iterations", delta=0.0, threshold=1.0, min_observations=1)
    for _ in range(20):
        detector.observe(10.0 if detector.n_observations else 0.0)
    assert detector.status == "drifted"
    detector.reset()
    assert detector.status == "stationary"
    assert detector.n_observations == 0


# ---------------------------------------------------------------- drift monitor
def test_monitor_stationary_corpus_never_alarms():
    monitor = DriftMonitor()
    for values in stationary_corpus():
        monitor.observe(values)
        assert monitor.status == "stationary"
    report = monitor.report()
    assert report.status == "stationary"
    assert report.onset_index is None
    assert not report.drifted


def test_monitor_degradation_ramp_alarms_within_bound():
    monitor = DriftMonitor()
    corpus = degradation_ramp(n_healthy=60, n_ramp=80)
    alarmed_at = None
    for i, values in enumerate(corpus):
        monitor.observe(values)
        if alarmed_at is None and monitor.status == "drifted":
            alarmed_at = i
    assert alarmed_at is not None, "ramp corpus must trip the drift alarm"
    # Bounded detection latency: well inside the ramp, not at its very end.
    assert alarmed_at < 60 + 40
    report = monitor.report()
    assert report.drifted and report.onset_index is not None
    assert report.onset_index >= 60 - 1


def test_monitor_is_deterministic_across_instances():
    corpus = degradation_ramp()
    a, b = DriftMonitor(), DriftMonitor()
    for values in corpus:
        a.observe(values)
        b.observe(values)
    assert a.report() == b.report()


def test_advisory_signal_never_decides_status():
    """A wall-clock signal exploding on its own leaves the verdict stationary."""
    monitor = DriftMonitor()
    for i in range(100):
        monitor.observe(
            {
                "iterations": 8.0,
                "used_fallback": 0.0,
                "timed_out": 0.0,
                "warm_solve_seconds": float(i),  # machine got slow, model fine
            }
        )
    report = monitor.report()
    assert report.signal("warm_solve_seconds").status == "drifted"
    assert report.signal("warm_solve_seconds").advisory
    assert report.status == "stationary"
    assert report.onset_index is None


def test_monitor_reset_and_validation():
    monitor = DriftMonitor()
    for values in degradation_ramp():
        monitor.observe(values)
    assert monitor.status == "drifted"
    monitor.reset()
    assert monitor.status == "stationary" and monitor.n_observations == 0
    with pytest.raises(ValueError):
        DriftMonitor(detectors=())
    dup = default_detectors()[0]
    with pytest.raises(ValueError):
        DriftMonitor(detectors=[dup, dup])


def test_report_round_trips_to_json(tmp_path):
    """The telemetry payload is plain JSON (the CI artifact format)."""
    monitor = DriftMonitor()
    for values in degradation_ramp():
        monitor.observe(values)
    payload = monitor.report().to_dict()
    text = json.dumps(payload, indent=2)
    assert json.loads(text) == payload
    assert payload["status"] in DRIFT_STATUSES
    target = Path(os.environ.get("DRIFT_TELEMETRY_PATH", tmp_path / "DRIFT_telemetry.json"))
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    assert json.loads(target.read_text())["status"] == "drifted"


# ------------------------------------------------------------ engine integration
def test_engine_surfaces_drift_telemetry(trained_trainer9, dataset9):
    engine = WarmStartEngine.from_trainer(trained_trainer9, drift_monitor=DriftMonitor())
    try:
        assert engine.drift_report().n_observations == 0
        evaluation = engine.evaluate(dataset9, max_problems=6)
        report = engine.drift_report()
        assert report.n_observations == 6
        assert report.status in DRIFT_STATUSES
        for record in evaluation.records:
            assert record.drift_status in DRIFT_STATUSES
            assert record.model_generation == 0
    finally:
        engine.close()


def test_engine_without_monitor_reports_none(trained_trainer9):
    engine = WarmStartEngine.from_trainer(trained_trainer9)
    try:
        assert engine.drift_report() is None
    finally:
        engine.close()
