"""Property tests for the same-pattern LDLᵀ refactorisation backend.

The ``ldl`` backend promises drop-in agreement with the SuperLU-family
backends over the symmetric quasi-definite KKT systems the interior-point
loop actually produces, plus three structural guarantees of its own:

* **same-pattern reuse** — one symbolic analysis serves every numeric
  refactorisation with an identical sparsity pattern (the telemetry counters
  expose the reuse so Fig. 5 attribution can see it),
* **enrollment invariance** — a row's batched solution is bit-identical to
  its solo solution, the property the lockstep batch scheduler relies on,
* **loud failure** — singular systems that the signed-shift recovery cannot
  heal reject with :class:`KKTSolveError` instead of returning garbage
  (residual acceptance against the *unperturbed* matrix).

The optional-dependency accelerator path is exercised with a fake ``qdldl``
module injected into ``sys.modules`` — both the happy path (accelerated
factorisations are counted and refined to the same residual target) and the
degraded path (a broken accelerator silently falls back to the pure kernels).
"""

import sys
import types

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings, strategies as st

from repro.mips import KKTSolveError, FactorizedSolver, solver_telemetry
from repro.mips.ldl import LDLSolver, load_ldl_accelerator


def _random_kkt(seed, n=12, m=4):
    """A symmetric quasi-definite KKT: SPD Hessian block over a zero block.

    The (2,2) constraint block is *structurally* empty, so a fill-reducing
    ordering can (and does) meet exact zero pivots — the dynamic pivot-clamp
    path is part of the contract under test, not an edge case.
    """
    rng = np.random.RandomState(seed)
    H = sp.random(n, n, density=0.3, random_state=rng)
    H = sp.csc_matrix(H + H.T + sp.diags(rng.uniform(2.0, 4.0, n)))
    A = sp.random(m, n, density=0.5, random_state=rng, format="lil")
    for i in range(m):  # full row rank: every constraint touches a variable
        A[i, (i * 3) % n] = 1.0 + rng.uniform(0.0, 1.0)
    kkt = sp.bmat([[H, A.T], [sp.csc_matrix(A), None]], format="csc")
    kkt.sort_indices()
    return kkt, rng.standard_normal(n + m)


# ------------------------------------------------------------------ agreement
@settings(max_examples=12, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_matches_factorized_on_quasi_definite_kkts(seed):
    kkt, rhs = _random_kkt(seed)
    x_ldl = LDLSolver(accelerator="pure").solve(kkt, rhs)
    x_ref = FactorizedSolver().solve(kkt, rhs)
    np.testing.assert_allclose(x_ldl, x_ref, atol=1e-10, rtol=1e-10)
    # The solution satisfies the system to the refinement target, not merely
    # to the acceptance threshold.
    resid = np.abs(kkt @ x_ldl - rhs).max() / (1.0 + np.abs(rhs).max())
    assert resid < 1e-9


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_ordering_choices_agree(seed):
    kkt, rhs = _random_kkt(seed, n=10, m=3)
    sols = [
        LDLSolver(ordering=ordering, accelerator="pure").solve(kkt, rhs)
        for ordering in ("auto", "mmd", "rcm", "natural")
    ]
    for got in sols[1:]:
        np.testing.assert_allclose(got, sols[0], atol=1e-9, rtol=1e-9)


# -------------------------------------------------------------- symbolic reuse
def test_symbolic_analysis_reused_across_same_pattern_solves():
    kkt, rhs = _random_kkt(3)
    solver = LDLSolver(accelerator="pure")
    solver.solve(kkt, rhs)
    assert solver.symbolic_reuses == 0
    assert solver.numeric_refactorizations >= 1
    # Same pattern, new values: the symbolic phase must not rerun.
    kkt2 = kkt.copy()
    kkt2.data = kkt2.data * 1.1
    solver.solve(kkt2, rhs)
    assert solver.symbolic_reuses == 1
    # Pattern change: back to a fresh analysis, then reuse resumes.
    bigger, rhs_b = _random_kkt(4, n=14, m=5)
    solver.solve(bigger, rhs_b)
    assert solver.symbolic_reuses == 1
    solver.solve(bigger, rhs_b * 2.0)
    assert solver.symbolic_reuses == 2


def test_telemetry_harvest_exposes_ldl_counters():
    kkt, rhs = _random_kkt(5)
    solver = LDLSolver(accelerator="pure")
    solver.solve(kkt, rhs)
    telemetry = solver_telemetry(solver)
    assert telemetry["numeric_refactorizations"] >= 1
    assert telemetry["symbolic_reuses"] == 0
    assert "accelerated_factorizations" in telemetry


# -------------------------------------------------------- enrollment invariance
@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_batched_rows_bitwise_match_solo_solves(seed):
    kkt, _ = _random_kkt(seed)
    rng = np.random.RandomState(seed + 1)
    B = 5
    scale = 1.0 + rng.uniform(0.0, 0.2, size=B)
    data_plane = np.ascontiguousarray(scale[:, None] * kkt.data[None, :])
    rhs_plane = rng.standard_normal((B, kkt.shape[0]))

    batch = LDLSolver(accelerator="pure")
    report = batch.solve_blocks(kkt, data_plane, rhs_plane)
    assert not report.failed
    assert batch.block_factorizations == 1
    for b in range(B):
        solo = LDLSolver(accelerator="pure")
        solo_report = solo.solve_blocks(kkt, data_plane[b : b + 1], rhs_plane[b : b + 1])
        np.testing.assert_array_equal(report.solutions[b], solo_report.solutions[0])


# ----------------------------------------------------------- recovery/rejection
def test_degenerate_but_solvable_system_recovers():
    """An exactly-zero pivot under the natural ordering is clamped and
    refined away — the solve succeeds without any regularisation event."""
    kkt = sp.csc_matrix(
        np.array(
            [
                [4.0, 0.0, 1.0],
                [0.0, 3.0, 1.0],
                [1.0, 1.0, 0.0],
            ]
        )
    )
    kkt.sort_indices()
    rhs = np.array([1.0, -2.0, 0.5])
    solver = LDLSolver(ordering="natural", accelerator="pure")
    x = solver.solve(kkt, rhs)
    np.testing.assert_allclose(kkt @ x, rhs, atol=1e-10)


def test_singular_system_raises_instead_of_returning_garbage():
    kkt = sp.csc_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
    kkt.sort_indices()
    solver = LDLSolver(accelerator="pure")
    with pytest.raises(KKTSolveError):
        solver.solve(kkt, np.array([1.0, 2.0]))


def test_singular_block_row_fails_alone_not_the_batch():
    kkt, _ = _random_kkt(7)
    n = kkt.shape[0]
    data_plane = np.vstack([kkt.data, np.zeros_like(kkt.data)])
    rhs_plane = np.ones((2, n))
    solver = LDLSolver(accelerator="pure")
    report = solver.solve_blocks(kkt, data_plane, rhs_plane)
    assert report.failed == [1]
    assert np.isfinite(report.solutions[0]).all()
    np.testing.assert_allclose(kkt @ report.solutions[0], rhs_plane[0], atol=1e-8)


# ------------------------------------------------------- multi-RHS and resolve
def test_solve_many_and_resolve_share_one_factorisation():
    kkt, rhs = _random_kkt(9)
    rng = np.random.RandomState(2)
    rhs_block = rng.standard_normal((kkt.shape[0], 3))
    solver = LDLSolver(accelerator="pure")
    block = solver.solve_many(kkt, rhs_block)
    factored = solver.numeric_refactorizations
    for j in range(3):
        np.testing.assert_allclose(
            block[:, j], LDLSolver(accelerator="pure").solve(kkt, rhs_block[:, j]),
            atol=1e-10,
        )
    # resolve refines against the retained factorisation — no new numeric work.
    extra = solver.resolve(rhs)
    assert solver.numeric_refactorizations == factored
    np.testing.assert_allclose(kkt @ extra, rhs, atol=1e-8)


# ------------------------------------------------------------ accelerator path
class _FakeQdldlSolver:
    """Stands in for ``qdldl.Solver``: correct answers via dense LU."""

    instances = 0
    updates = 0

    def __init__(self, matrix):
        type(self).instances += 1
        self._lu = spla.splu(sp.csc_matrix(matrix))

    def update(self, matrix):
        type(self).updates += 1
        self._lu = spla.splu(sp.csc_matrix(matrix))

    def solve(self, rhs):
        return self._lu.solve(np.asarray(rhs, dtype=float))


class _BrokenQdldlSolver:
    def __init__(self, matrix):
        self._n = matrix.shape[0]

    def update(self, matrix):
        pass

    def solve(self, rhs):
        return np.full(self._n, np.nan)


def _install_fake_qdldl(monkeypatch, solver_cls):
    fake = types.ModuleType("qdldl")
    fake.Solver = solver_cls
    monkeypatch.setitem(sys.modules, "qdldl", fake)
    return fake


def test_accelerator_probe_prefers_qdldl(monkeypatch):
    _install_fake_qdldl(monkeypatch, _FakeQdldlSolver)
    accel = load_ldl_accelerator()
    assert accel is not None and accel.name == "qdldl"


def test_accelerated_scalar_solves_count_and_match_pure(monkeypatch):
    _install_fake_qdldl(monkeypatch, _FakeQdldlSolver)
    _FakeQdldlSolver.instances = 0
    _FakeQdldlSolver.updates = 0
    kkt, rhs = _random_kkt(11)
    solver = LDLSolver()  # accelerator="auto" probes and finds the fake
    x = solver.solve(kkt, rhs)
    assert solver.accelerated_factorizations == 1
    assert _FakeQdldlSolver.instances == 1
    # Same pattern again: the accelerator's same-pattern update path runs.
    kkt2 = kkt.copy()
    kkt2.data = kkt2.data * 1.05
    solver.solve(kkt2, rhs)
    assert solver.accelerated_factorizations == 2
    assert _FakeQdldlSolver.updates == 1
    np.testing.assert_allclose(
        x, LDLSolver(accelerator="pure").solve(kkt, rhs), atol=1e-9
    )


def test_broken_accelerator_degrades_to_pure_kernels(monkeypatch):
    _install_fake_qdldl(monkeypatch, _BrokenQdldlSolver)
    kkt, rhs = _random_kkt(13)
    solver = LDLSolver()
    x = solver.solve(kkt, rhs)
    assert solver.accelerated_factorizations == 0
    np.testing.assert_allclose(kkt @ x, rhs, atol=1e-9)


# ------------------------------------------------------------------ validation
@pytest.mark.parametrize(
    "kwargs",
    [
        {"regularization": 0.0},
        {"reg_growth": 1.0},
        {"max_retries": -1},
        {"residual_tol": 0.0},
        {"ordering": "amd"},
        {"accelerator": "gpu"},
    ],
)
def test_constructor_rejects_bad_parameters(kwargs):
    with pytest.raises(ValueError):
        LDLSolver(**kwargs)
