"""The lockstep-batch dataset default and its ``solve_seconds`` semantics.

``generate_dataset`` now defaults to ``execution="batch"`` (the lockstep
solver), closing the ROADMAP open item.  The decided timing semantics:
``solve_seconds`` records each scenario's **additive wall share** — every
lockstep iteration's wall time split evenly over the scenarios active in it —
so values sum to the batch wall and stay directly comparable with scalar
per-solve walls.  The Fig. 4 speedup ratio (``OnlineEvaluation.speedup``)
consumes these as the cold-MIPS reference, which makes reported speedups
conservative: warm starts are compared against the *batched* cold baseline.
These tests pin all of that behaviour.
"""

import inspect

import numpy as np
import pytest

from repro.core import SmartPGSimConfig
from repro.core.metrics import speedup_su
from repro.data import generate_dataset
from repro.engine.records import OnlineEvaluation, OnlineRecord


def test_generate_dataset_defaults_to_batch_execution():
    signature = inspect.signature(generate_dataset)
    assert signature.parameters["execution"].default == "batch"


def test_smartpgsim_config_defaults_to_batch_and_validates():
    assert SmartPGSimConfig().execution == "batch"
    with pytest.raises(ValueError, match="execution"):
        SmartPGSimConfig(execution="warp")


def test_default_dataset_equals_explicit_batch_and_scenario_trajectories(
    case9_fixture, opf_model9
):
    """The default is bit-identical to explicit batch mode, and reproduces the
    per-scenario mode's trajectories (identical iteration counts, objectives
    to 1e-12) — flipping the default changed timing semantics, not data."""
    default = generate_dataset(case9_fixture, 6, seed=31, model=opf_model9)
    batch = generate_dataset(case9_fixture, 6, seed=31, model=opf_model9, execution="batch")
    scenario = generate_dataset(
        case9_fixture, 6, seed=31, model=opf_model9, execution="scenario"
    )
    np.testing.assert_array_equal(default.iterations, batch.iterations)
    np.testing.assert_array_equal(default.objectives, batch.objectives)
    for task in default.targets:
        np.testing.assert_array_equal(default.targets[task], batch.targets[task])

    np.testing.assert_array_equal(default.iterations, scenario.iterations)
    np.testing.assert_allclose(default.objectives, scenario.objectives, rtol=1e-12)
    for task in default.targets:
        np.testing.assert_allclose(
            default.targets[task], scenario.targets[task], atol=1e-7
        )


def test_batch_solve_seconds_are_additive_and_cheaper(case9_fixture, opf_model9):
    """Batch-mode ``solve_seconds`` are additive shares of the lockstep wall:
    their total stays well below the per-scenario mode's total (the whole
    point of the lockstep path), and every share is positive."""
    batch = generate_dataset(case9_fixture, 8, seed=7, model=opf_model9)
    scenario = generate_dataset(
        case9_fixture, 8, seed=7, model=opf_model9, execution="scenario"
    )
    assert np.all(batch.solve_seconds > 0.0)
    assert np.all(scenario.solve_seconds > 0.0)
    # Identical trajectories solved lockstep must cost less in total wall —
    # the share semantics make this directly comparable (and additive).
    assert batch.solve_seconds.sum() < scenario.solve_seconds.sum()


def test_fig4_speedup_consumes_cold_solve_seconds():
    """Pin the Fig. 4 ratio: ``OnlineEvaluation.speedup`` is Eqn. 10 evaluated
    on mean cold ``solve_seconds`` (now the batched cold share), mean
    inference seconds and the mean *successful* warm solve seconds."""
    records = [
        OnlineRecord(
            scenario_id=i,
            success=(i != 2),
            used_fallback=(i == 2),
            iterations_warm=3,
            iterations_cold=12.0,
            inference_seconds=0.001,
            warm_solve_seconds=0.010 + 0.002 * i,
            cold_solve_seconds=0.040 + 0.004 * i,
            cost_warm=100.0,
            cost_cold=100.0,
            fallback_success=(i == 2),
            iterations_fallback=12 if i == 2 else 0,
            fallback_solve_seconds=0.05 if i == 2 else 0.0,
        )
        for i in range(4)
    ]
    evaluation = OnlineEvaluation(case_name="pin", records=records)
    t_mips = float(np.mean([r.cold_solve_seconds for r in records]))
    t_mtl = float(np.mean([r.inference_seconds for r in records]))
    t_warm = float(np.mean([r.warm_solve_seconds for r in records if r.success]))
    expected = speedup_su(t_mips, t_mtl, t_warm, evaluation.success_rate)
    assert evaluation.speedup == pytest.approx(expected, rel=1e-12)
    # Shrinking the cold baseline (faster batched cold generation) shrinks the
    # reported speedup — the ratio is conservative by construction.
    cheaper_cold = OnlineEvaluation(
        case_name="pin",
        records=[
            OnlineRecord(
                scenario_id=r.scenario_id,
                success=r.success,
                used_fallback=r.used_fallback,
                iterations_warm=r.iterations_warm,
                iterations_cold=r.iterations_cold,
                inference_seconds=r.inference_seconds,
                warm_solve_seconds=r.warm_solve_seconds,
                cold_solve_seconds=r.cold_solve_seconds / 4.0,
                cost_warm=r.cost_warm,
                cost_cold=r.cost_cold,
                fallback_success=r.fallback_success,
                iterations_fallback=r.iterations_fallback,
                fallback_solve_seconds=r.fallback_solve_seconds,
            )
            for r in records
        ],
    )
    assert cheaper_cold.speedup < evaluation.speedup


def test_framework_batch_evaluation_end_to_end(trained_trainer9, dataset9):
    """Both sides batched: the engine evaluates a batch-generated dataset and
    the Fig. 4 inputs stay well-defined and positive."""
    from repro.engine.engine import WarmStartEngine

    with WarmStartEngine.from_trainer(trained_trainer9, execution="batch") as engine:
        evaluation = engine.evaluate(dataset9, max_problems=8)
    assert evaluation.n_problems == 8
    assert evaluation.speedup > 0.0
    assert 0.0 < evaluation.iteration_ratio <= 1.0
    for record in evaluation.records:
        assert record.cold_solve_seconds > 0.0
        assert record.warm_solve_seconds >= 0.0


def test_dataset_execution_mode_recorded_on_sweep(case9_fixture):
    from repro.parallel import generate_scenarios, run_scenario_sweep

    scenarios = generate_scenarios(case9_fixture, 3, variation=0.05, seed=1)
    assert run_scenario_sweep(case9_fixture, scenarios).execution == "scenario"
    assert run_scenario_sweep(case9_fixture, scenarios, execution="batch").execution == "batch"
