"""Tests for admittance construction and power-injection kernels."""

import numpy as np
import pytest

from repro.powerflow import (
    branch_flows,
    bus_injection,
    bus_injection_batch,
    load_injection,
    make_connection_matrices,
    make_ybus,
    mismatch_norm,
    polar_to_complex,
    power_balance_mismatch,
)


def test_connection_matrices_shapes(case14_fixture):
    Cf, Ct, Cg = make_connection_matrices(case14_fixture)
    assert Cf.shape == (20, 14)
    assert Ct.shape == (20, 14)
    assert Cg.shape == (14, 5)
    # One entry per row / column.
    assert np.all(np.asarray(Cf.sum(axis=1)).ravel() == 1)
    assert np.all(np.asarray(Cg.sum(axis=0)).ravel() == 1)


def test_ybus_shape_and_symmetry_without_taps(case9_fixture):
    adm = make_ybus(case9_fixture)
    Y = adm.Ybus.toarray()
    assert Y.shape == (9, 9)
    # case9 has no transformers or phase shifters, so Ybus is symmetric.
    assert np.allclose(Y, Y.T)


def test_ybus_symmetric_with_real_taps_asymmetric_with_phase_shift(case14_fixture):
    # Off-nominal (real) tap ratios keep Ybus symmetric ...
    Y = make_ybus(case14_fixture).Ybus.toarray()
    assert np.allclose(Y, Y.T)
    # ... but a phase-shifting transformer breaks the symmetry.
    shifted = case14_fixture.copy()
    shifted.branch.angle[7] = 5.0
    Y_shift = make_ybus(shifted).Ybus.toarray()
    assert not np.allclose(Y_shift, Y_shift.T)


def test_ybus_row_sums_without_shunts(case9_fixture):
    # With no bus shunts, the row sums equal the total line-charging seen by
    # each bus; for a lossless check simply ensure off-diagonals are -series
    # admittance of the connecting branch.
    case = case9_fixture
    adm = make_ybus(case)
    Y = adm.Ybus.toarray()
    f, t = case.branch_bus_indices()
    for l in range(case.n_branch):
        ys = 1.0 / (case.branch.r[l] + 1j * case.branch.x[l])
        assert Y[f[l], t[l]] == pytest.approx(-ys, rel=1e-12)


def test_yf_yt_reproduce_branch_flows(case9_fixture):
    adm = make_ybus(case9_fixture)
    V = polar_to_complex(np.zeros(9), np.ones(9))
    Sf, St = branch_flows(adm, V)
    assert Sf.shape == (9,)
    # Flat voltage profile: series current is zero, only charging appears.
    assert np.allclose(Sf.real, 0.0, atol=1e-12)


def test_out_of_service_branch_removed_from_ybus(case9_fixture):
    modified = case9_fixture.copy()
    modified.branch.status[1] = 0
    Y_full = make_ybus(case9_fixture).Ybus.toarray()
    Y_reduced = make_ybus(modified).Ybus.toarray()
    f, t = case9_fixture.branch_bus_indices()
    assert Y_full[f[1], t[1]] != 0
    assert Y_reduced[f[1], t[1]] == 0


def test_bus_shunt_enters_diagonal(case14_fixture):
    # Bus 9 of case14 carries a 19 MVAr capacitive shunt: removing it must
    # lower that diagonal's susceptance by exactly Bs / baseMVA.
    idx = case14_fixture.bus_index_map()[9]
    with_shunt = make_ybus(case14_fixture).Ybus.toarray()[idx, idx]
    stripped = case14_fixture.copy()
    stripped.bus.Bs[idx] = 0.0
    without_shunt = make_ybus(stripped).Ybus.toarray()[idx, idx]
    assert (with_shunt - without_shunt).imag == pytest.approx(0.19, rel=1e-9)


def test_bus_injection_conservation(case9_fixture):
    """Total injected power equals total series + shunt losses (lossless reactive check)."""
    adm = make_ybus(case9_fixture)
    rng = np.random.default_rng(0)
    V = polar_to_complex(0.05 * rng.standard_normal(9), 1 + 0.02 * rng.standard_normal(9))
    Sbus = bus_injection(adm.Ybus, V)
    Sf, St = branch_flows(adm, V)
    # Power balance: sum of bus injections equals sum of from+to branch flows
    # (no bus shunts in case9).
    assert np.sum(Sbus) == pytest.approx(np.sum(Sf + St), rel=1e-10)


def test_bus_injection_batch_matches_scalar(case9_fixture):
    adm = make_ybus(case9_fixture)
    rng = np.random.default_rng(4)
    V = polar_to_complex(
        0.05 * rng.standard_normal((5, 9)), 1 + 0.02 * rng.standard_normal((5, 9))
    )
    batched = bus_injection_batch(adm.Ybus, V)
    assert batched.shape == (5, 9)
    for b in range(5):
        np.testing.assert_allclose(batched[b], bus_injection(adm.Ybus, V[b]), atol=1e-14)


def test_load_injection_default_and_override(case9_fixture):
    nominal = load_injection(case9_fixture)
    assert nominal.sum().real == pytest.approx(3.15)
    override = load_injection(case9_fixture, Pd=np.zeros(9), Qd=np.zeros(9))
    assert np.allclose(override, 0)


def test_power_balance_mismatch_zero_at_solution(case9_fixture, opf_model9, opf_solution9):
    parts = opf_model9.idx.split(opf_solution9.x)
    V = polar_to_complex(parts["Va"], parts["Vm"])
    mis = power_balance_mismatch(
        case9_fixture, opf_model9.adm, V, parts["Pg"], parts["Qg"]
    )
    assert mismatch_norm(mis) < 1e-5


def test_mismatch_norm_is_inf_norm():
    mis = np.array([0.1 + 0.2j, -0.5 + 0.05j])
    assert mismatch_norm(mis) == pytest.approx(0.5)
