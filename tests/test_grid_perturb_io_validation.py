"""Tests for load sampling, MATPOWER round-tripping and case validation."""

import numpy as np
import pytest

from repro.grid import (
    CaseValidationError,
    case_from_matpower,
    case_to_matpower,
    iter_load_samples,
    nominal_load,
    sample_loads,
    scaled_load,
    stressed_area_load,
    validate_case,
)
from repro.grid.components import REF


# ---------------------------------------------------------------- load sampling
def test_sample_loads_within_variation(case14_fixture):
    samples = sample_loads(case14_fixture, 50, variation=0.1, seed=1)
    assert len(samples) == 50
    Pd0 = case14_fixture.bus.Pd
    for s in samples:
        nonzero = Pd0 > 0
        assert np.all(s.Pd[nonzero] >= 0.9 * Pd0[nonzero] - 1e-12)
        assert np.all(s.Pd[nonzero] <= 1.1 * Pd0[nonzero] + 1e-12)
        assert np.all(s.Pd[~nonzero] == 0.0)


def test_sample_loads_reproducible_with_seed(case9_fixture):
    a = sample_loads(case9_fixture, 5, seed=42)
    b = sample_loads(case9_fixture, 5, seed=42)
    for sa, sb in zip(a, b):
        assert np.allclose(sa.Pd, sb.Pd)
        assert np.allclose(sa.Qd, sb.Qd)


def test_sample_loads_negative_count_raises(case9_fixture):
    with pytest.raises(ValueError):
        sample_loads(case9_fixture, -1)


def test_iter_load_samples_matches_list_version(case9_fixture):
    listed = sample_loads(case9_fixture, 4, seed=7)
    iterated = list(iter_load_samples(case9_fixture, 4, seed=7))
    for a, b in zip(listed, iterated):
        assert np.allclose(a.Pd, b.Pd)


def test_load_sample_apply_and_features(case9_fixture):
    sample = sample_loads(case9_fixture, 1, seed=0)[0]
    applied = sample.apply(case9_fixture)
    assert np.allclose(applied.bus.Pd, sample.Pd)
    feats = sample.feature_vector()
    assert feats.shape == (2 * case9_fixture.n_bus,)
    assert np.allclose(feats[: case9_fixture.n_bus], sample.Pd)


def test_scaled_and_nominal_load(case9_fixture):
    nominal = nominal_load(case9_fixture)
    scaled = scaled_load(case9_fixture, 1.2)
    assert np.allclose(scaled.Pd, 1.2 * nominal.Pd)
    with pytest.raises(ValueError):
        scaled_load(case9_fixture, -0.5)


def test_stressed_area_load(case9_fixture):
    sample = stressed_area_load(case9_fixture, area=1, factor=1.5)
    assert np.allclose(sample.Pd, 1.5 * case9_fixture.bus.Pd)
    with pytest.raises(ValueError):
        stressed_area_load(case9_fixture, area=99, factor=1.5)


# ----------------------------------------------------------- MATPOWER round trip
def test_case_matpower_roundtrip(case14_fixture):
    rows = case_to_matpower(case14_fixture)
    rebuilt = case_from_matpower(
        case14_fixture.name,
        rows["baseMVA"][0][0],
        rows["bus"],
        rows["gen"],
        rows["branch"],
        rows["gencost"],
    )
    assert np.allclose(rebuilt.bus.Pd, case14_fixture.bus.Pd)
    assert np.allclose(rebuilt.branch.x, case14_fixture.branch.x)
    assert np.allclose(rebuilt.gen.Pmax, case14_fixture.gen.Pmax)
    assert np.allclose(rebuilt.gencost.coeffs, case14_fixture.gencost.coeffs)


def test_case_from_matpower_rejects_short_rows():
    with pytest.raises(ValueError):
        case_from_matpower("bad", 100.0, [[1, 3, 0]], [[1] * 10], [[1, 2] + [0] * 9], [[2, 0, 0, 2, 1, 0]])


# ------------------------------------------------------------------- validation
def test_validate_accepts_builtin_cases(case9_fixture, case14_fixture):
    assert validate_case(case9_fixture, raise_on_error=False) == []
    assert validate_case(case14_fixture, raise_on_error=False) == []


def test_validation_detects_missing_reference(case9_fixture):
    broken = case9_fixture.copy()
    broken.bus.bus_type[broken.bus.bus_type == REF] = 2
    problems = validate_case(broken, raise_on_error=False)
    assert any("reference" in p for p in problems)
    with pytest.raises(CaseValidationError):
        validate_case(broken)


def test_validation_detects_disconnected_network(case9_fixture):
    broken = case9_fixture.copy()
    # Removing every branch at bus 9 (index 8) isolates it.
    mask = (broken.branch.f_bus == 9) | (broken.branch.t_bus == 9)
    broken.branch.status[mask] = 0
    problems = validate_case(broken, raise_on_error=False)
    assert any("not connected" in p for p in problems)


def test_validation_detects_bad_generator_bounds(case9_fixture):
    broken = case9_fixture.copy()
    broken.gen.Pmin[0] = broken.gen.Pmax[0] + 10
    problems = validate_case(broken, raise_on_error=False)
    assert any("Pmax" in p for p in problems)


def test_validation_detects_unknown_gen_bus(case9_fixture):
    broken = case9_fixture.copy()
    broken.gen.bus[0] = 999
    problems = validate_case(broken, raise_on_error=False)
    assert any("unknown bus" in p for p in problems)


def test_validation_detects_zero_impedance_branch(case9_fixture):
    broken = case9_fixture.copy()
    broken.branch.r[0] = 0.0
    broken.branch.x[0] = 0.0
    problems = validate_case(broken, raise_on_error=False)
    assert any("zero series impedance" in p for p in problems)


def test_validation_detects_bad_voltage_limits(case9_fixture):
    broken = case9_fixture.copy()
    broken.bus.Vmin[2] = 1.2
    broken.bus.Vmax[2] = 1.0
    problems = validate_case(broken, raise_on_error=False)
    assert any("Vmax" in p for p in problems)
