"""End-to-end integration tests spanning every subsystem."""

import numpy as np
import pytest

from repro.core import SmartPGSim, SmartPGSimConfig, breakdown_from_evaluation
from repro.grid import get_case, sample_loads
from repro.mtl import fast_config
from repro.opf import OPFModel, solve_opf
from repro.powerflow import newton_power_flow


def test_opf_solution_is_consistent_with_power_flow(case9_fixture, opf_solution9):
    """Re-dispatching the OPF set points through the power flow reproduces the state."""
    redispatched = case9_fixture.copy()
    redispatched.gen.Pg = opf_solution9.Pg_mw.copy()
    redispatched.gen.Qg = opf_solution9.Qg_mvar.copy()
    redispatched.gen.Vg = opf_solution9.Vm[case9_fixture.gen_bus_indices()].copy()
    pf = newton_power_flow(redispatched)
    assert pf.converged
    assert np.abs(pf.Vm - opf_solution9.Vm).max() < 1e-3
    # Slack generator absorbs only rounding-level mismatch.
    slack_bus = case9_fixture.ref_bus_indices()[0]
    slack_pg = pf.Sbus.real[slack_bus] * case9_fixture.base_mva + case9_fixture.bus.Pd[slack_bus]
    assert slack_pg == pytest.approx(opf_solution9.Pg_mw[0], abs=0.5)


def test_synthetic_case_full_pipeline():
    """The complete offline/online pipeline works on a synthetic Table-II system."""
    case = get_case("case30s")
    config = SmartPGSimConfig(
        n_samples=12,
        mtl=fast_config(epochs=8),
        seed=2,
    )
    framework = SmartPGSim(case, config)
    framework.offline()
    evaluation = framework.online_evaluate(max_problems=3)
    # 12 samples with an 80/20 split leave 2-3 validation problems.
    assert 2 <= evaluation.n_problems <= 3
    assert evaluation.mean_iterations_cold > 0
    # Even a briefly trained model yields a usable warm start on most problems.
    assert evaluation.success_rate >= 0.5
    breakdown = breakdown_from_evaluation(evaluation)
    assert breakdown.smart_total > 0


def test_scenario_consistency_across_interfaces(case14_fixture):
    """Solving via case copies and via load overrides gives the same optimum."""
    model = OPFModel(case14_fixture)
    sample = sample_loads(case14_fixture, 1, seed=9)[0]
    via_override = solve_opf(case14_fixture, Pd_mw=sample.Pd, Qd_mvar=sample.Qd, model=model)
    via_copy = solve_opf(sample.apply(case14_fixture))
    assert via_override.success and via_copy.success
    assert via_override.objective == pytest.approx(via_copy.objective, rel=1e-6)


def test_larger_system_cold_start_needs_more_iterations(case9_fixture):
    """Iteration counts grow with system size (the trend behind Fig. 4's scaling)."""
    small = solve_opf(case9_fixture)
    large = solve_opf(get_case("case57s"))
    assert small.success and large.success
    assert large.iterations >= small.iterations
