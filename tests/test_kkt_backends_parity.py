"""Cross-backend parity harness for the KKT linear-solver layer.

Every registered :class:`~repro.mips.linsolve.KKTSolver` backend must be a
drop-in replacement for every other: same iteration counts, objectives to
1e-8 and solutions to solver precision over a shared corpus of random
same-pattern QPs and case9 / case14 / case118s cold+warm sweeps.  On top of
the trajectory-level parity, the ``factorized`` and ``blockdiag`` backends are
**bit-identical by construction** (the block-diagonal factorisation replays
the per-slot column permutation under the ``NATURAL`` ordering), which this
suite asserts down to the last bit so the guarantee cannot silently rot.

The multi-RHS surface (``solve_many``) and factorisation reuse (``resolve``)
are exercised for every backend as well: several right-hand sides against one
matrix must agree with column-by-column solves while sharing a single
factorisation on the backends that retain one.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.grid import get_case
from repro.grid.perturb import sample_loads
from repro.mips import (
    BlockDiagSolver,
    FactorizedSolver,
    KKTSolveError,
    MIPSOptions,
    SpsolveSolver,
    available_kkt_solvers,
    make_kkt_solver,
    mips_batch,
    qps_mips,
)
from repro.opf import OPFModel, OPFOptions, solve_opf_batch
from repro.opf.batch import BatchedOPFModel

BACKENDS = available_kkt_solvers()
#: The pair whose parity is bitwise by construction (shared column
#: permutation + NATURAL replay), not merely to solver tolerance.
BITWISE_PAIR = ("factorized", "blockdiag")


def _opts(backend: str) -> OPFOptions:
    return OPFOptions(mips=MIPSOptions(kkt_solver=backend))


# ----------------------------------------------------------------- QP corpus
def _qp_batch(batch=6, nx=7, neq=2, niq=3, seed=11):
    rng = np.random.default_rng(seed)
    M = rng.uniform(0.5, 1.5, size=(batch, nx, nx))
    H = M @ M.transpose(0, 2, 1) + nx * np.eye(nx)
    c = rng.uniform(-1.0, 1.0, size=(batch, nx))
    Aeq = rng.uniform(0.5, 1.5, size=(batch, neq, nx))
    beq = rng.uniform(-0.5, 0.5, size=(batch, neq))
    Ain = rng.uniform(0.5, 1.5, size=(batch, niq, nx))
    bin_ = rng.uniform(1.0, 2.0, size=(batch, niq))
    return H, c, Aeq, beq, Ain, bin_


def _qp_callbacks(H, c, Aeq, beq, Ain, bin_):
    def f_fcn(X, idx):
        Ha = H[idx]
        F = 0.5 * np.einsum("bi,bij,bj->b", X, Ha, X) + np.einsum("bi,bi->b", c[idx], X)
        dF = np.einsum("bij,bj->bi", Ha, X) + c[idx]
        return F, dF

    def gh_fcn(X, idx):
        G = np.einsum("bij,bj->bi", Aeq[idx], X) - beq[idx]
        Hc = np.einsum("bij,bj->bi", Ain[idx], X) - bin_[idx]
        return G, Hc, Aeq[idx].reshape(idx.size, -1), Ain[idx].reshape(idx.size, -1)

    def hess_fcn(X, lam_nl, mu_nl, cost_mult, idx):
        return (H[idx] * cost_mult).reshape(idx.size, -1)

    return f_fcn, gh_fcn, hess_fcn


def _solve_qp_batch(backend: str, seed=11):
    H, c, Aeq, beq, Ain, bin_ = _qp_batch(seed=seed)
    batch, nx = c.shape
    neq, niq = beq.shape[1], bin_.shape[1]
    f_fcn, gh_fcn, hess_fcn = _qp_callbacks(H, c, Aeq, beq, Ain, bin_)
    return mips_batch(
        f_fcn,
        np.zeros((batch, nx)),
        gh_fcn=gh_fcn,
        hess_fcn=hess_fcn,
        jg_template=sp.csr_matrix(np.ones((neq, nx))),
        jh_template=sp.csr_matrix(np.ones((niq, nx))),
        hess_template=sp.csr_matrix(np.ones((nx, nx))),
        xmin=np.full(nx, -5.0),
        xmax=np.full(nx, 5.0),
        options=MIPSOptions(kkt_solver=backend),
    )


def _assert_trajectory_parity(results_by_backend, objective_rtol=1e-8):
    """Identical iteration counts + matching objectives across all backends."""
    names = list(results_by_backend)
    ref_name = names[0]
    ref = results_by_backend[ref_name]
    for name in names[1:]:
        got = results_by_backend[name]
        assert len(got) == len(ref)
        for i, (a, b) in enumerate(zip(ref, got)):
            assert _converged(a) and _converged(b), (ref_name, name, i)
            assert a.iterations == b.iterations, (
                f"iteration mismatch on member {i}: {ref_name}={a.iterations} "
                f"{name}={b.iterations}"
            )
            scale = 1.0 + abs(_objective(a))
            assert abs(_objective(a) - _objective(b)) <= objective_rtol * scale


def _objective(result):
    return result.objective if hasattr(result, "objective") else result.f


def _converged(result):
    return result.success if hasattr(result, "success") else result.converged


def _assert_bitwise(a, b):
    np.testing.assert_array_equal(a.x, b.x)
    np.testing.assert_array_equal(a.lam, b.lam)
    np.testing.assert_array_equal(a.mu, b.mu)
    np.testing.assert_array_equal(a.z, b.z)
    assert a.iterations == b.iterations
    assert _objective(a) == _objective(b)


def test_registry_contains_all_three_backends():
    assert set(BACKENDS) >= {"spsolve", "factorized", "blockdiag"}


def test_qp_corpus_parity_across_backends():
    results = {name: _solve_qp_batch(name) for name in BACKENDS}
    _assert_trajectory_parity(results)
    for a, b in zip(results[BITWISE_PAIR[0]], results[BITWISE_PAIR[1]]):
        _assert_bitwise(a, b)


def test_scalar_qp_parity_across_backends():
    rng = np.random.default_rng(3)
    M = rng.uniform(0.5, 1.5, size=(4, 4))
    H = M @ M.T + 4 * np.eye(4)
    c = rng.uniform(-1.0, 1.0, size=4)
    results = {}
    for name in BACKENDS:
        results[name] = qps_mips(
            H,
            c,
            A_eq=[[1.0, 1.0, 0.0, 0.0]],
            b_eq=[1.0],
            A_in=[[0.0, 1.0, 1.0, 1.0]],
            b_in=[2.0],
            xmin=np.full(4, -3.0),
            xmax=np.full(4, 3.0),
            options=MIPSOptions(kkt_solver=name),
        )
    _assert_trajectory_parity({k: [v] for k, v in results.items()})
    _assert_bitwise(results[BITWISE_PAIR[0]], results[BITWISE_PAIR[1]])


# ----------------------------------------------------------------- OPF corpus
@pytest.fixture(scope="module", params=["case9", "case14"])
def small_case_setup(request):
    case = get_case(request.param)
    model = OPFModel(case)
    batched = BatchedOPFModel(model)
    samples = sample_loads(case, 4, variation=0.06, seed=17)
    Pd = np.stack([s.Pd for s in samples])
    Qd = np.stack([s.Qd for s in samples])
    return case, model, batched, Pd, Qd


def test_cold_sweep_parity_across_backends(small_case_setup):
    case, model, batched, Pd, Qd = small_case_setup
    results = {
        name: solve_opf_batch(case, Pd, Qd, options=_opts(name), model=model, batched=batched)
        for name in BACKENDS
    }
    _assert_trajectory_parity(results)
    for a, b in zip(results[BITWISE_PAIR[0]], results[BITWISE_PAIR[1]]):
        _assert_bitwise(a, b)


def test_warm_sweep_parity_across_backends(small_case_setup):
    case, model, batched, Pd, Qd = small_case_setup
    base = solve_opf_batch(case, Pd, Qd, model=model, batched=batched)
    assert all(r.success for r in base)
    warms = [r.warm_start() for r in base]
    Pd2 = Pd * 1.01
    results = {
        name: solve_opf_batch(
            case, Pd2, Qd, warm_starts=warms, options=_opts(name), model=model, batched=batched
        )
        for name in BACKENDS
    }
    _assert_trajectory_parity(results)
    for a, b in zip(results[BITWISE_PAIR[0]], results[BITWISE_PAIR[1]]):
        _assert_bitwise(a, b)


def test_case118s_sweep_parity_across_backends():
    """The largest bundled system: cold + warm lockstep sweeps, all backends.

    Cold case118s trajectories run ~55 interior-point iterations, enough
    chaotic amplification that the ``spsolve`` backend (which re-runs the full
    symbolic analysis per iteration and therefore is not bit-identical to the
    cached-permutation backends) lands a few 1e-8 relative units away in
    objective — so the cold leg asserts success/objective agreement at 1e-6
    relative across all backends and keeps the **bitwise** guarantee for the
    ``factorized``/``blockdiag`` pair.  The warm leg (the serving workload)
    holds identical iteration counts across the SuperLU-family backends, with
    objectives compared at the solver's own convergence scale (two converged
    trajectories may stop at slightly different points inside the 1e-6
    tolerance band).  The ``ldl`` backend polishes every solve with guarded
    iterative refinement against the true KKT matrix, so on an
    ill-conditioned late-barrier iteration its Newton step can be *more*
    accurate than unrefined partial-pivoted LU — on a knife-edge member that
    legitimately shaves an interior-point iteration, so non-SuperLU backends
    are held to within one iteration of the reference trajectory rather than
    bit-for-bit lockstep.
    """
    case = get_case("case118s")
    model = OPFModel(case)
    batched = BatchedOPFModel(model)
    samples = sample_loads(case, 4, variation=0.03, seed=5)
    Pd = np.stack([s.Pd for s in samples])
    Qd = np.stack([s.Qd for s in samples])
    cold = {
        name: solve_opf_batch(case, Pd, Qd, options=_opts(name), model=model, batched=batched)
        for name in BACKENDS
    }
    for name in BACKENDS:
        for i, r in enumerate(cold[name]):
            assert r.success, (name, i)
            ref = cold[BACKENDS[0]][i]
            assert abs(r.objective - ref.objective) <= 1e-6 * (1.0 + abs(ref.objective))
    for a, b in zip(cold[BITWISE_PAIR[0]], cold[BITWISE_PAIR[1]]):
        _assert_bitwise(a, b)

    warms = [r.warm_start() for r in cold["factorized"]]
    warm = {
        name: solve_opf_batch(
            case, Pd * 1.01, Qd, warm_starts=warms, options=_opts(name), model=model,
            batched=batched,
        )
        for name in BACKENDS
    }
    superlu_family = [n for n in BACKENDS if n in ("spsolve", "factorized", "blockdiag")]
    _assert_trajectory_parity({n: warm[n] for n in superlu_family}, objective_rtol=1e-6)
    for name in BACKENDS:
        for i, r in enumerate(warm[name]):
            ref = warm[BACKENDS[0]][i]
            assert r.success, (name, i)
            assert abs(r.iterations - ref.iterations) <= 1, (
                f"warm member {i}: {name}={r.iterations} vs "
                f"{BACKENDS[0]}={ref.iterations}"
            )
            assert abs(r.objective - ref.objective) <= 1e-6 * (1.0 + abs(ref.objective))
    for a, b in zip(warm[BITWISE_PAIR[0]], warm[BITWISE_PAIR[1]]):
        _assert_bitwise(a, b)
    # Warm starts help identically under every backend.
    for name in BACKENDS:
        assert max(r.iterations for r in warm[name]) < max(r.iterations for r in cold[name])


# ----------------------------------------------------- multi-RHS / resolve API
def _well_posed_system(seed=0, n=50):
    """Symmetric quasi-definite test system — the shape every KKT matrix in
    this codebase actually has, and the contract the ``ldl`` backend is
    specified against (the SuperLU-family backends accept it trivially)."""
    rng = np.random.RandomState(seed)
    A = sp.random(n, n, density=0.12, random_state=rng, format="csc")
    m = n // 3
    signs = np.r_[np.ones(n - m), -np.ones(m)]
    A = sp.csc_matrix(A + A.T + sp.diags(signs * 4.0))
    A.sort_indices()
    return A, rng.standard_normal((n, 3))


@pytest.mark.parametrize("name", BACKENDS)
def test_solve_many_matches_column_solves(name):
    kkt, rhs_block = _well_posed_system(seed=int(np.sum([ord(ch) for ch in name])))
    solver = make_kkt_solver(name)
    block = solver.solve_many(kkt, rhs_block)
    assert block.shape == rhs_block.shape
    assert solver.factor_seconds >= 0.0 and solver.backsolve_seconds >= 0.0
    reference = make_kkt_solver(name)
    for j in range(rhs_block.shape[1]):
        np.testing.assert_allclose(block[:, j], reference.solve(kkt, rhs_block[:, j]), atol=1e-10)


@pytest.mark.parametrize("name", BACKENDS)
def test_solve_many_accepts_single_rhs(name):
    kkt, rhs_block = _well_posed_system(seed=7)
    solver = make_kkt_solver(name)
    out = solver.solve_many(kkt, rhs_block[:, 0])
    assert out.shape == (kkt.shape[0], 1)
    np.testing.assert_allclose(out[:, 0], make_kkt_solver(name).solve(kkt, rhs_block[:, 0]), atol=1e-12)


def test_factorized_solve_many_shares_one_factorisation():
    kkt, rhs_block = _well_posed_system(seed=2)
    solver = FactorizedSolver()
    solver.solve_many(kkt, rhs_block)
    assert solver.symbolic_reuses == 0
    # Same pattern again: the cached permutation path proves the factorisation
    # machinery ran once for the whole block, not once per column.
    solver.solve_many(kkt, rhs_block)
    assert solver.symbolic_reuses == 1


@pytest.mark.parametrize("cls", [FactorizedSolver, BlockDiagSolver])
def test_resolve_reuses_last_factorisation(cls):
    kkt, rhs_block = _well_posed_system(seed=4)
    solver = cls()
    first = solver.solve(kkt, rhs_block[:, 0])
    again = solver.resolve(rhs_block[:, 0])
    np.testing.assert_array_equal(first, again)
    other = solver.resolve(rhs_block[:, 1])
    np.testing.assert_allclose(kkt @ other, rhs_block[:, 1], atol=1e-9)


def test_resolve_without_factorisation_raises():
    with pytest.raises(KKTSolveError):
        SpsolveSolver().resolve(np.ones(3))
    with pytest.raises(KKTSolveError):
        FactorizedSolver().resolve(np.ones(3))


def test_scalar_refinement_polishes_residual_and_preserves_convergence():
    """``kkt_refine_steps`` re-solves the residual against the iteration's
    factorisation (the scalar multi-RHS reuse path) without changing where
    the solver lands."""
    rng = np.random.default_rng(9)
    M = rng.uniform(0.5, 1.5, size=(5, 5))
    H = M @ M.T + 5 * np.eye(5)
    c = rng.uniform(-1.0, 1.0, size=5)
    plain = qps_mips(H, c, A_eq=[[1.0] * 5], b_eq=[1.0], options=MIPSOptions())
    refined = qps_mips(
        H, c, A_eq=[[1.0] * 5], b_eq=[1.0], options=MIPSOptions(kkt_refine_steps=2)
    )
    assert plain.converged and refined.converged
    assert abs(plain.f - refined.f) <= 1e-8 * (1.0 + abs(plain.f))
    np.testing.assert_allclose(plain.x, refined.x, atol=1e-8)


def test_blockdiag_detects_pattern_change_with_same_shape_and_nnz():
    """Reusing one solver across different patterns must not replay stale
    permutation plans — the cache key is the index arrays, not (shape, nnz)."""
    n = 12
    rng = np.random.RandomState(8)
    diag = sp.diags(np.full(n, 5.0))
    # Same shape, same nnz (2n - 1), different patterns: super- vs subdiagonal.
    off = np.arange(1, n, dtype=float)
    a = sp.csc_matrix(diag + sp.diags(off, offsets=1))
    b = sp.csc_matrix(diag + sp.diags(off, offsets=-1))
    a.sort_indices()
    b.sort_indices()
    assert a.nnz == b.nnz and not np.array_equal(a.indices, b.indices)
    rhs = rng.standard_normal((2, n))
    solver = BlockDiagSolver()
    for matrix in (a, b, a):
        # Two calls per pattern so the second exercises the block (replay) path.
        for _ in range(2):
            report = solver.solve_blocks(matrix, np.stack([matrix.data, matrix.data * 1.5]), rhs)
            assert not report.failed
            np.testing.assert_allclose(matrix @ report.solutions[0], rhs[0], atol=1e-9)
            np.testing.assert_allclose((1.5 * matrix) @ report.solutions[1], rhs[1], atol=1e-9)


def test_blockdiag_scalar_path_is_bitwise_factorized():
    """Selected for a scalar solve, ``blockdiag`` degrades to ``factorized``."""
    rng = np.random.default_rng(6)
    M = rng.uniform(0.5, 1.5, size=(5, 5))
    H = M @ M.T + 5 * np.eye(5)
    c = rng.uniform(-1.0, 1.0, size=5)
    kw = dict(A_eq=[[1.0] * 5], b_eq=[1.0], A_in=[[0.0, 1.0, 1.0, 0.0, 0.0]], b_in=[1.5])
    a = qps_mips(H, c, options=MIPSOptions(kkt_solver="factorized"), **kw)
    b = qps_mips(H, c, options=MIPSOptions(kkt_solver="blockdiag"), **kw)
    _assert_bitwise(a, b)


# --------------------------------------------------------- threaded blockdiag
def test_threaded_block_factorisation_is_bitwise_identical():
    """``kkt_factor_threads=2`` must not change a single bit of any solution.

    The threaded path fans per-block factorisations out on a thread pool
    instead of factoring one large block-diagonal system; per-block numerics
    are identical (same permutation replay, same regularisation ladder), so
    the batch results must match the serial backend bit-for-bit — on any
    machine, including single-core boxes where threading buys no speed.
    """
    case = get_case("case14")
    model = OPFModel(case)
    batched = BatchedOPFModel(model)
    samples = sample_loads(case, 4, variation=0.05, seed=23)
    Pd = np.stack([s.Pd for s in samples])
    Qd = np.stack([s.Qd for s in samples])

    def opts(threads):
        return OPFOptions(
            mips=MIPSOptions(kkt_solver="blockdiag", kkt_factor_threads=threads)
        )

    serial = solve_opf_batch(case, Pd, Qd, options=opts(1), model=model, batched=batched)
    threaded = solve_opf_batch(case, Pd, Qd, options=opts(2), model=model, batched=batched)
    for a, b in zip(serial, threaded):
        _assert_bitwise(a, b)


def test_factor_threads_option_validation():
    with pytest.raises(ValueError):
        MIPSOptions(kkt_factor_threads=0).validate()
    MIPSOptions(kkt_factor_threads=2).validate()
