"""Property-style invariants of the solver's phase-timing accounting.

The Fig. 5 runtime breakdown consumes the eval / assembly / factorization /
backsolve phase splits recorded in :class:`~repro.mips.result.MIPSResult` and
threaded through :class:`~repro.engine.records.OnlineRecord`.  These tests pin
the accounting contract so it survives solver rearchitectures (the per-slot →
block-solve change in particular):

* every phase value is finite and non-negative,
* the phases are measured sub-intervals, so their sum never exceeds the
  solve's wall time,
* the per-scenario ``wall_share_seconds`` decomposition of a lockstep batch is
  additive — shares sum to (at most) the batch wall — while each scenario's
  ``elapsed_seconds`` remains its wall-clock-until-retirement,
* the invariants hold identically for the scalar solver, the per-slot batch
  backend and the block-diagonal batch backend.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.engine.fallback import get_fallback_policy
from repro.grid import get_case
from repro.mips import MIPSOptions, mips_batch, qps_mips
from repro.opf import OPFModel, WarmStart, solve_opf
from repro.parallel import generate_scenarios, run_scenario_sweep

PHASES = ("eval", "assembly", "factorization", "backsolve")
#: Wall-clock comparisons tolerate float accumulation noise, nothing more.
EPS = 1e-9


def _assert_mips_result_invariants(result):
    assert set(result.phase_seconds) == set(PHASES)
    for value in result.phase_seconds.values():
        assert np.isfinite(value) and value >= 0.0
    assert sum(result.phase_seconds.values()) <= result.elapsed_seconds + EPS
    assert 0.0 <= result.share_seconds <= result.elapsed_seconds + EPS
    for record in result.history:
        for field in ("eval_seconds", "assembly_seconds", "factor_seconds", "backsolve_seconds"):
            value = getattr(record, field)
            assert np.isfinite(value) and value >= 0.0


# ------------------------------------------------------------------ scalar path
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), nx=st.integers(min_value=2, max_value=7))
def test_scalar_qp_phase_invariants(seed, nx):
    rng = np.random.default_rng(seed)
    M = rng.uniform(0.5, 1.5, size=(nx, nx))
    H = M @ M.T + nx * np.eye(nx)
    c = rng.uniform(-1.0, 1.0, size=nx)
    result = qps_mips(
        H,
        c,
        A_eq=np.ones((1, nx)),
        b_eq=[1.0],
        xmin=np.full(nx, -4.0),
        xmax=np.full(nx, 4.0),
    )
    assert result.converged
    _assert_mips_result_invariants(result)
    # Scalar solves: the additive share IS the wall time.
    assert result.wall_share_seconds is None
    assert result.share_seconds == result.elapsed_seconds


def test_scalar_opf_phase_invariants(case9_fixture, opf_model9):
    result = solve_opf(case9_fixture, model=opf_model9)
    assert result.success
    for value in result.phase_seconds.values():
        assert np.isfinite(value) and value >= 0.0
    assert sum(result.phase_seconds.values()) <= result.solve_seconds + EPS
    assert result.total_seconds >= result.solve_seconds


# ------------------------------------------------------------------- batch path
def _qp_batch_callbacks(batch, nx, neq, niq, seed):
    rng = np.random.default_rng(seed)
    M = rng.uniform(0.5, 1.5, size=(batch, nx, nx))
    H = M @ M.transpose(0, 2, 1) + nx * np.eye(nx)
    c = rng.uniform(-1.0, 1.0, size=(batch, nx))
    Aeq = rng.uniform(0.5, 1.5, size=(batch, neq, nx))
    beq = rng.uniform(-0.5, 0.5, size=(batch, neq))
    Ain = rng.uniform(0.5, 1.5, size=(batch, niq, nx))
    bin_ = rng.uniform(1.0, 2.0, size=(batch, niq))

    def f_fcn(X, idx):
        Ha = H[idx]
        F = 0.5 * np.einsum("bi,bij,bj->b", X, Ha, X) + np.einsum("bi,bi->b", c[idx], X)
        return F, np.einsum("bij,bj->bi", Ha, X) + c[idx]

    def gh_fcn(X, idx):
        return (
            np.einsum("bij,bj->bi", Aeq[idx], X) - beq[idx],
            np.einsum("bij,bj->bi", Ain[idx], X) - bin_[idx],
            Aeq[idx].reshape(idx.size, -1),
            Ain[idx].reshape(idx.size, -1),
        )

    def hess_fcn(X, lam_nl, mu_nl, cost_mult, idx):
        return (H[idx] * cost_mult).reshape(idx.size, -1)

    kwargs = dict(
        gh_fcn=gh_fcn,
        hess_fcn=hess_fcn,
        jg_template=sp.csr_matrix(np.ones((neq, nx))),
        jh_template=sp.csr_matrix(np.ones((niq, nx))),
        hess_template=sp.csr_matrix(np.ones((nx, nx))),
    )
    return f_fcn, np.zeros((batch, nx)), kwargs


@pytest.mark.parametrize("backend", ["factorized", "blockdiag", "ldl"])
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000), batch=st.integers(min_value=1, max_value=6))
def test_batch_qp_phase_invariants(backend, seed, batch):
    f_fcn, x0, kwargs = _qp_batch_callbacks(batch, nx=5, neq=2, niq=2, seed=seed)
    results = mips_batch(f_fcn, x0, options=MIPSOptions(kkt_solver=backend), **kwargs)
    assert len(results) == batch
    for result in results:
        _assert_mips_result_invariants(result)
        assert result.wall_share_seconds is not None
    # The share decomposition is additive: shares sum to (at most) the batch
    # wall, which equals the last retiree's elapsed wall.
    batch_wall = max(r.elapsed_seconds for r in results)
    assert sum(r.share_seconds for r in results) <= batch_wall * (1.0 + 1e-6) + EPS


@pytest.mark.parametrize("backend", ["factorized", "blockdiag", "ldl"])
def test_opf_batch_phase_invariants_survive_block_solve(backend):
    from repro.grid.perturb import sample_loads
    from repro.opf import OPFOptions, solve_opf_batch

    case = get_case("case14")
    model = OPFModel(case)
    samples = sample_loads(case, 5, variation=0.06, seed=3)
    Pd = np.stack([s.Pd for s in samples])
    Qd = np.stack([s.Qd for s in samples])
    results = solve_opf_batch(
        case, Pd, Qd, options=OPFOptions(mips=MIPSOptions(kkt_solver=backend)), model=model
    )
    assert all(r.success for r in results)
    for result in results:
        assert set(result.phase_seconds) == set(PHASES)
        for value in result.phase_seconds.values():
            assert np.isfinite(value) and value >= 0.0
        # solve_seconds carries the additive share; phases are bounded by the
        # scenario's wall-until-retirement, which bounds the batch wall below.
        assert result.solve_seconds >= 0.0
        for record in result.history:
            assert record.eval_seconds >= 0.0
            assert record.assembly_seconds >= 0.0
            assert record.factor_seconds >= 0.0
            assert record.backsolve_seconds >= 0.0


# --------------------------------------------------------------- sweep / engine
@pytest.mark.parametrize("execution", ["scenario", "batch"])
def test_sweep_outcome_timing_invariants(case9_fixture, execution):
    scenarios = generate_scenarios(case9_fixture, 6, variation=0.05, seed=9)
    sweep = run_scenario_sweep(
        case9_fixture,
        scenarios,
        execution=execution,
        fallback=get_fallback_policy("cold_restart"),
    )
    assert sweep.execution == execution
    assert sweep.wall_seconds > 0.0
    total_share = 0.0
    for outcome in sweep.outcomes:
        assert outcome.solve_seconds >= 0.0
        assert outcome.fallback_seconds >= 0.0
        for value in outcome.phase_seconds.values():
            assert np.isfinite(value) and value >= 0.0
        # One scenario's phases are sub-intervals of the sweep's wall.
        assert sum(outcome.phase_seconds.values()) <= sweep.wall_seconds + EPS
        total_share += outcome.solve_seconds
    if execution == "batch":
        # The additive share semantics: per-scenario solve costs sum to (at
        # most) the sweep wall, instead of overlapping lockstep wall times.
        assert total_share <= sweep.wall_seconds * (1.0 + 1e-6) + EPS


def test_online_record_phase_invariants(trained_trainer9, case9_fixture, dataset9):
    from repro.engine.engine import WarmStartEngine

    for execution in ("scenario", "batch"):
        with WarmStartEngine.from_trainer(trained_trainer9, execution=execution) as engine:
            evaluation = engine.evaluate(dataset9, max_problems=6)
            assert evaluation.n_problems == 6
            for record in evaluation.records:
                for value in record.solver_phase_seconds.values():
                    assert np.isfinite(value) and value >= 0.0
                assert record.inference_seconds >= 0.0
                assert record.warm_solve_seconds >= 0.0
                assert record.fallback_solve_seconds >= 0.0
                assert record.online_seconds >= record.warm_solve_seconds


def test_batch_failed_scenario_keeps_phase_timings():
    """A scenario that fails mid-batch still reports its phases and share."""
    case = get_case("case9")
    model = OPFModel(case)
    nominal = solve_opf(case, model=model)
    good = nominal.warm_start()
    poisoned = WarmStart(x=good.x * 200.0, lam=good.lam, mu=good.mu, z=good.z)
    scenarios = generate_scenarios(case, 3, variation=0.04, seed=2)
    sweep = run_scenario_sweep(
        case, scenarios, warm_starts=[good, poisoned, good], execution="batch"
    )
    failed = sweep.outcomes[1]
    assert not failed.success
    assert failed.solve_seconds >= 0.0
    for value in failed.phase_seconds.values():
        assert np.isfinite(value) and value >= 0.0


# ------------------------------------------------------------- resolve timing
@pytest.mark.parametrize("backend", ["factorized", "blockdiag", "ldl"])
def test_resolve_timing_is_per_call_not_cumulative(backend, monkeypatch):
    """``resolve`` reports the *current call's* backsolve wall, every call.

    The refinement loop in ``repro.mips.solver`` accumulates across its own
    ``resolve`` calls; the solver object itself must not — an accumulating
    ``+=`` here would double-count earlier calls into later ones and inflate
    the Fig. 5 backsolve share.  Under a fake clock that advances a fixed
    amount per reading, every ``resolve`` performs the same work, so per-call
    semantics yield *identical* readings — an accumulator would grow strictly
    with each call.
    """
    import time as time_module

    from repro.mips import make_kkt_solver

    rng = np.random.RandomState(13)
    n = 40
    A = sp.random(n, n, density=0.15, random_state=rng, format="csc")
    kkt = sp.csc_matrix(A + A.T + sp.diags(np.ones(n) * 5.0))
    kkt.sort_indices()
    solver = make_kkt_solver(backend)
    solver.solve(kkt, rng.standard_normal(n))
    rhs = rng.standard_normal(n)

    ticks = [0.0]

    def fake_clock():
        ticks[0] += 1.0
        return ticks[0]

    monkeypatch.setattr(time_module, "perf_counter", fake_clock)
    readings = []
    for _ in range(3):
        solver.resolve(rhs)
        reading = solver.backsolve_seconds
        assert reading > 0.0
        readings.append(reading)
    # Same rhs, same factorisation, same fake clock: identical per-call work
    # must report identical per-call durations.
    assert readings[0] == readings[1] == readings[2]
