"""Finite-difference verification of the second-derivative (Hessian) kernels."""

import numpy as np
import pytest

from repro.powerflow import (
    d2ASbr_dV2,
    d2Sbr_dV2,
    d2Sbus_dV2,
    dAbr_dV,
    dSbr_dV,
    dSbus_dV,
    make_ybus,
    polar_to_complex,
)


def _fd_hessian(grad_fn, Va, Vm, eps=1e-6):
    """Finite differences of a gradient function returning a (2n,) vector."""
    n = Va.size
    H = np.zeros((2 * n, 2 * n), dtype=complex)
    for i in range(2 * n):
        Vap, Vmp = Va.copy(), Vm.copy()
        Vam, Vmm = Va.copy(), Vm.copy()
        if i < n:
            Vap[i] += eps
            Vam[i] -= eps
        else:
            Vmp[i - n] += eps
            Vmm[i - n] -= eps
        H[:, i] = (grad_fn(Vap, Vmp) - grad_fn(Vam, Vmm)) / (2 * eps)
    return H


def _blocks_to_full(Gaa, Gav, Gva, Gvv):
    return np.block([[Gaa.toarray(), Gav.toarray()], [Gva.toarray(), Gvv.toarray()]])


def test_d2Sbus_dV2_matches_finite_differences(case9_fixture, rng):
    case = case9_fixture
    adm = make_ybus(case)
    nb = case.n_bus
    Va = 0.06 * rng.standard_normal(nb)
    Vm = 1.0 + 0.03 * rng.standard_normal(nb)
    lam = rng.standard_normal(nb)

    def grad(Va_, Vm_):
        V = polar_to_complex(Va_, Vm_)
        dSa, dSm = dSbus_dV(adm.Ybus, V)
        return np.concatenate([dSa.T @ lam, dSm.T @ lam])

    H = _blocks_to_full(*d2Sbus_dV2(adm.Ybus, polar_to_complex(Va, Vm), lam))
    Hfd = _fd_hessian(grad, Va, Vm)
    assert np.abs(H - Hfd).max() < 1e-5 * max(1.0, np.abs(Hfd).max())


def test_d2Sbus_dV2_with_complex_multiplier(case14_fixture, rng):
    case = case14_fixture
    adm = make_ybus(case)
    nb = case.n_bus
    Va = 0.05 * rng.standard_normal(nb)
    Vm = 1.0 + 0.02 * rng.standard_normal(nb)
    lam = rng.standard_normal(nb) + 1j * rng.standard_normal(nb)

    def grad(Va_, Vm_):
        V = polar_to_complex(Va_, Vm_)
        dSa, dSm = dSbus_dV(adm.Ybus, V)
        return np.concatenate([dSa.T @ lam, dSm.T @ lam])

    H = _blocks_to_full(*d2Sbus_dV2(adm.Ybus, polar_to_complex(Va, Vm), lam))
    Hfd = _fd_hessian(grad, Va, Vm)
    assert np.abs(H - Hfd).max() < 1e-5 * max(1.0, np.abs(Hfd).max())


def test_d2Sbr_dV2_matches_finite_differences(case9_fixture, rng):
    case = case9_fixture
    adm = make_ybus(case)
    nb, nl = case.n_bus, case.n_branch
    Va = 0.05 * rng.standard_normal(nb)
    Vm = 1.0 + 0.03 * rng.standard_normal(nb)
    lam = rng.standard_normal(nl)

    def grad(Va_, Vm_):
        V = polar_to_complex(Va_, Vm_)
        dSa, dSm, _ = dSbr_dV(adm.Yf, adm.Cf, V)
        return np.concatenate([dSa.T @ lam, dSm.T @ lam])

    H = _blocks_to_full(*d2Sbr_dV2(adm.Cf, adm.Yf, polar_to_complex(Va, Vm), lam))
    Hfd = _fd_hessian(grad, Va, Vm)
    assert np.abs(H - Hfd).max() < 1e-5 * max(1.0, np.abs(Hfd).max())


@pytest.mark.parametrize("side", ["from", "to"])
def test_d2ASbr_dV2_matches_finite_differences(case9_fixture, rng, side):
    case = case9_fixture
    adm = make_ybus(case)
    nb, nl = case.n_bus, case.n_branch
    Ybr = adm.Yf if side == "from" else adm.Yt
    Cbr = adm.Cf if side == "from" else adm.Ct
    Va = 0.05 * rng.standard_normal(nb)
    Vm = 1.0 + 0.03 * rng.standard_normal(nb)
    mu = np.abs(rng.standard_normal(nl))

    def grad(Va_, Vm_):
        V = polar_to_complex(Va_, Vm_)
        dSa, dSm, Sbr = dSbr_dV(Ybr, Cbr, V)
        dAa, dAm = dAbr_dV(dSa, dSm, Sbr)
        return np.concatenate([dAa.T @ mu, dAm.T @ mu]).astype(complex)

    V = polar_to_complex(Va, Vm)
    dSa, dSm, Sbr = dSbr_dV(Ybr, Cbr, V)
    H = _blocks_to_full(*d2ASbr_dV2(dSa, dSm, Sbr, Cbr, Ybr, V, mu))
    Hfd = _fd_hessian(grad, Va, Vm)
    assert np.abs(H - Hfd.real).max() < 1e-4 * max(1.0, np.abs(Hfd).max())


def test_hessian_blocks_are_symmetric_overall(case9_fixture, rng):
    """The assembled (Va,Vm) Hessian of a real scalar function must be symmetric."""
    case = case9_fixture
    adm = make_ybus(case)
    nb = case.n_bus
    V = polar_to_complex(0.04 * rng.standard_normal(nb), 1 + 0.02 * rng.standard_normal(nb))
    lam = rng.standard_normal(nb)
    Gaa, Gav, Gva, Gvv = d2Sbus_dV2(adm.Ybus, V, lam)
    H_real = np.block(
        [[Gaa.toarray().real, Gav.toarray().real], [Gva.toarray().real, Gvv.toarray().real]]
    )
    assert np.abs(H_real - H_real.T).max() < 1e-10
