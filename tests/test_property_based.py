"""Property-based tests (hypothesis) of core kernels and data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.metrics import normalized_series, relative_errors, speedup_su
from repro.grid import SyntheticGridConfig, generate_case, validate_case
from repro.mips import qps_mips
from repro.mtl.normalization import MinMaxScaler
from repro.nn import Tensor, charbonnier
from repro.powerflow import bus_injection, dSbus_dV, make_ybus, polar_to_complex
from repro.utils.rng import derive_seed

FINITE = dict(allow_nan=False, allow_infinity=False)


# ------------------------------------------------------------------ autograd engine
@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(float, (3, 4), elements=st.floats(-5, 5, **FINITE)),
    hnp.arrays(float, (3, 4), elements=st.floats(-5, 5, **FINITE)),
)
def test_tensor_addition_matches_numpy(a, b):
    out = Tensor(a) + Tensor(b)
    assert np.allclose(out.data, a + b)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(float, (6,), elements=st.floats(-3, 3, **FINITE)))
def test_sigmoid_output_in_unit_interval(x):
    out = Tensor(x).sigmoid().data
    assert np.all(out >= 0) and np.all(out <= 1)


@settings(max_examples=25, deadline=None)
@given(hnp.arrays(float, (5,), elements=st.floats(-10, 10, **FINITE)))
def test_charbonnier_non_negative_and_zero_at_match(x):
    t = Tensor(x)
    assert charbonnier(t, t).item() <= 1e-8
    assert charbonnier(t, Tensor(np.zeros_like(x))).item() >= 0


@settings(max_examples=25, deadline=None)
@given(
    hnp.arrays(float, (4, 3), elements=st.floats(-2, 2, **FINITE)),
    hnp.arrays(float, (3, 2), elements=st.floats(-2, 2, **FINITE)),
)
def test_matmul_gradient_shape_matches_parameter(a, b):
    ta = Tensor(a, requires_grad=True)
    (ta @ Tensor(b)).sum().backward()
    assert ta.grad.shape == a.shape
    # Gradient of sum(A @ B) w.r.t. A is the row-broadcast of B's row sums.
    assert np.allclose(ta.grad, np.tile(b.sum(axis=1), (4, 1)))


# ----------------------------------------------------------------------- normaliser
@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        float,
        st.tuples(st.integers(2, 12), st.integers(1, 5)),
        elements=st.floats(-100, 100, **FINITE),
    )
)
def test_minmax_scaler_roundtrip_property(values):
    scaler = MinMaxScaler.fit(values)
    normed = scaler.transform(values)
    assert np.all(normed >= -1e-9) and np.all(normed <= 1 + 1e-9)
    assert np.allclose(scaler.inverse(normed), values, atol=1e-6)


# -------------------------------------------------------------------------- metrics
@settings(max_examples=40, deadline=None)
@given(
    st.floats(0.1, 1000),
    st.floats(0.001, 10),
    st.floats(0.001, 500),
    st.floats(0, 1),
)
def test_speedup_su_positive_and_bounded(t_mips, t_mtl, t_warm, sr):
    su = speedup_su(t_mips, t_mtl, t_warm, sr)
    assert su > 0
    # SU can never exceed the ratio of the cold time to the inference time alone.
    assert su <= t_mips / t_mtl + 1e-9


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(float, (7,), elements=st.floats(-50, 50, **FINITE)))
def test_normalized_series_range(values):
    out = normalized_series(values)
    assert np.all(out >= -1e-12) and np.all(out <= 1 + 1e-12)


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(float, (5,), elements=st.floats(0.1, 100, **FINITE)))
def test_relative_errors_zero_for_exact_prediction(truth):
    assert np.allclose(relative_errors(truth, truth), 0)


# ------------------------------------------------------------------------ power flow
@settings(max_examples=10, deadline=None)
@given(
    st.integers(0, 2**31 - 1),
    st.floats(0.9, 1.1),
)
def test_bus_injection_derivative_consistency(seed, scale):
    """dSbus_dV must match finite differences for random voltage profiles (case9)."""
    from repro.grid import case9

    case = case9()
    adm = make_ybus(case)
    rng = np.random.default_rng(seed)
    Va = 0.05 * rng.standard_normal(9)
    Vm = scale * np.ones(9) + 0.02 * rng.standard_normal(9)
    V = polar_to_complex(Va, Vm)
    dSa, dSm = dSbus_dV(adm.Ybus, V)
    eps = 1e-7
    i = int(rng.integers(0, 9))
    Va_p = Va.copy()
    Va_p[i] += eps
    fd = (bus_injection(adm.Ybus, polar_to_complex(Va_p, Vm)) - bus_injection(adm.Ybus, V)) / eps
    assert np.abs(dSa.toarray()[:, i] - fd).max() < 1e-5


# -------------------------------------------------------------------- synthetic grid
@settings(max_examples=8, deadline=None)
@given(
    st.integers(6, 24),
    st.integers(0, 10_000),
)
def test_synthetic_cases_always_valid(n_bus, seed):
    n_gen = max(1, n_bus // 4)
    n_branch = n_bus + n_bus // 3
    cfg = SyntheticGridConfig(n_bus=n_bus, n_gen=n_gen, n_branch=n_branch, seed=seed)
    case = generate_case(cfg)
    assert validate_case(case, raise_on_error=False) == []
    assert case.total_gen_capacity() >= case.bus.Pd.sum()


# -------------------------------------------------------------------------- QP solver
@settings(max_examples=10, deadline=None)
@given(
    hnp.arrays(float, (3,), elements=st.floats(0.5, 5.0, **FINITE)),
    hnp.arrays(float, (3,), elements=st.floats(-3.0, 3.0, **FINITE)),
)
def test_box_constrained_diagonal_qp_solution(diag, target):
    """min Σ d_i (x_i - t_i)^2 on [-1, 1]^3 has the clipped analytic solution."""
    H = np.diag(2 * diag)
    c = -2 * diag * target
    res = qps_mips(H, c, xmin=-np.ones(3), xmax=np.ones(3))
    assert res.converged
    # A well-posed convex QP must never need singular-KKT regularisation.
    assert res.kkt_regularizations == 0
    # MIPS stops on its relative termination tolerances (1e-6); for targets
    # sitting exactly on a bound the iterate can be ~1e-3 inside the box, so
    # the comparison tolerance must be looser than the solver's, not tighter.
    assert np.allclose(res.x, np.clip(target, -1, 1), atol=2e-3)


# ------------------------------------------------------------------------------ misc
@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**20), st.integers(0, 1000))
def test_derive_seed_in_32bit_range(seed, index):
    value = derive_seed(seed, index)
    assert 0 <= value < 2**32
