"""Tests of the OPF model (indexing, bounds) and the end-to-end solver."""

import numpy as np
import pytest

from repro.mips import MIPSOptions
from repro.opf import (
    OPFModel,
    OPFOptions,
    WarmStart,
    lagrangian_hessian,
    solve_opf,
    solve_opf_with_fallback,
)
from repro.opf.constraints import branch_flow_limits, power_balance
from repro.opf.costs import objective


# ----------------------------------------------------------------- variable index
def test_variable_index_split_join(opf_model9, rng):
    x = rng.standard_normal(opf_model9.idx.nx)
    parts = opf_model9.idx.split(x)
    assert parts["Va"].shape == (9,)
    assert parts["Pg"].shape == (3,)
    rebuilt = opf_model9.idx.join(parts["Va"], parts["Vm"], parts["Pg"], parts["Qg"])
    assert np.allclose(rebuilt, x)


def test_bounds_structure(case14_fixture):
    model = OPFModel(case14_fixture)
    xmin, xmax = model.bounds()
    ref = case14_fixture.ref_bus_indices()[0]
    # Reference angle fixed; other angles unbounded.
    assert xmin[ref] == xmax[ref]
    other = [i for i in range(14) if i != ref]
    assert np.all(np.isinf(xmin[other]))
    # Voltage magnitudes bounded by the bus limits.
    assert np.allclose(xmin[model.idx.vm], case14_fixture.bus.Vmin)
    assert np.allclose(xmax[model.idx.vm], case14_fixture.bus.Vmax)
    # Generator limits in p.u.
    assert np.allclose(xmax[model.idx.pg], case14_fixture.gen.Pmax / 100.0)


def test_table2_multiplier_counts(case14_fixture):
    """Reproduce the #λ / #µ(Z) bookkeeping of Table II for the 14-bus system."""
    result = solve_opf(case14_fixture)
    assert result.lam.size == 2 * 14 + 1  # 29 in the paper
    assert result.mu.size == 48  # 48 in the paper
    assert result.z.size == result.mu.size


def test_default_start_within_bounds(case30s_fixture):
    model = OPFModel(case30s_fixture)
    x0 = model.default_start()
    xmin, xmax = model.bounds()
    finite = np.isfinite(xmin)
    assert np.all(x0[finite] >= xmin[finite] - 1e-12)
    finite = np.isfinite(xmax)
    assert np.all(x0[finite] <= xmax[finite] + 1e-12)


def test_flat_start_profile(opf_model9):
    x0 = opf_model9.flat_start()
    assert np.allclose(x0[opf_model9.idx.va], 0)
    assert np.allclose(x0[opf_model9.idx.vm], 1)


# ----------------------------------------------------------------- Hessian checks
def test_lagrangian_hessian_matches_fd(opf_model9, rng):
    model = opf_model9
    x = model.default_start() + 0.01 * rng.standard_normal(model.idx.nx)
    lam = rng.standard_normal(2 * 9)
    mu = np.abs(rng.standard_normal(2 * 9))

    def lagr_grad(xx):
        _, df, _ = objective(model, xx)
        _, Jg = power_balance(model, xx)
        _, Jh = branch_flow_limits(model, xx)
        return df + Jg.T @ lam + Jh.T @ mu

    H = lagrangian_hessian(model, x, lam, mu).toarray()
    assert np.abs(H - H.T).max() < 1e-9  # symmetry
    eps = 1e-6
    cols = rng.choice(model.idx.nx, size=8, replace=False)
    for i in cols:
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        fd = (lagr_grad(xp) - lagr_grad(xm)) / (2 * eps)
        assert np.abs(H[:, i] - fd).max() < 1e-4 * max(1.0, np.abs(fd).max())


# ------------------------------------------------------------------- OPF solutions
def test_case9_opf_matches_reference_objective(opf_solution9):
    """MATPOWER's reference optimum for case9 is 5296.69 $/h."""
    assert opf_solution9.success
    assert opf_solution9.objective == pytest.approx(5296.69, rel=1e-3)


def test_case14_opf_matches_reference_objective(opf_solution14):
    """MATPOWER's reference optimum for case14 is 8081.53 $/h."""
    assert opf_solution14.success
    assert opf_solution14.objective == pytest.approx(8081.53, rel=1e-3)


def test_opf_solution_respects_limits(opf_solution14, case14_fixture):
    tol = 1e-4
    assert np.all(opf_solution14.Vm <= case14_fixture.bus.Vmax + tol)
    assert np.all(opf_solution14.Vm >= case14_fixture.bus.Vmin - tol)
    assert np.all(opf_solution14.Pg_mw <= case14_fixture.gen.Pmax + tol * 100)
    assert np.all(opf_solution14.Pg_mw >= case14_fixture.gen.Pmin - tol * 100)
    assert np.all(opf_solution14.Qg_mvar <= case14_fixture.gen.Qmax + tol * 100)


def test_opf_generation_covers_load_plus_losses(opf_solution9, case9_fixture):
    total_gen = opf_solution9.Pg_mw.sum()
    total_load = case9_fixture.bus.Pd.sum()
    assert total_gen > total_load  # losses are positive
    assert total_gen < total_load * 1.1


def test_opf_synthetic_case_solves(case30s_fixture):
    result = solve_opf(case30s_fixture)
    assert result.success
    assert result.objective > 0


def test_warm_start_from_solution_converges_immediately(case9_fixture, opf_model9, opf_solution9):
    warm = opf_solution9.warm_start()
    result = solve_opf(case9_fixture, warm_start=warm, model=opf_model9)
    assert result.success
    assert result.iterations <= 3
    assert result.objective == pytest.approx(opf_solution9.objective, rel=1e-6)


def test_warm_start_partial_components(case9_fixture, opf_model9, opf_solution9):
    warm = opf_solution9.warm_start().masked(use_x=True, use_lam=False, use_mu=False, use_z=False)
    result = solve_opf(case9_fixture, warm_start=warm, model=opf_model9)
    assert result.success


def test_load_override_changes_solution(case9_fixture, opf_model9, opf_solution9):
    heavier = solve_opf(
        case9_fixture,
        Pd_mw=case9_fixture.bus.Pd * 1.08,
        Qd_mvar=case9_fixture.bus.Qd * 1.08,
        model=opf_model9,
    )
    assert heavier.success
    assert heavier.objective > opf_solution9.objective


def test_solver_options_validation():
    with pytest.raises(ValueError):
        OPFOptions(flow_limits="bogus")
    with pytest.raises(ValueError):
        OPFOptions(init="bogus")


def test_model_case_mismatch_rejected(case9_fixture, case14_fixture, opf_model9):
    with pytest.raises(ValueError):
        solve_opf(case14_fixture, model=opf_model9)


def test_fallback_returns_cold_result_on_bad_warm_start(case9_fixture, opf_model9, rng):
    # A hopeless warm start: random multipliers, tiny slacks, random voltages.
    nx = opf_model9.idx.nx
    bad = WarmStart(
        x=opf_model9.default_start() + rng.uniform(-1.0, 1.0, nx),
        lam=rng.uniform(-100, 100, size=19),
        mu=np.full(48, 1e3),
        z=np.full(48, 1e-9),
    )
    # 30 iterations are plenty for the default start (~20) but usually not for
    # the deliberately poisoned one, so this exercises the restart path while
    # still guaranteeing a converged final answer either way.
    options = OPFOptions(mips=MIPSOptions(max_it=30))
    result, used_fallback, restart_seconds = solve_opf_with_fallback(
        case9_fixture, bad, options=options, model=opf_model9
    )
    assert result.success
    if used_fallback:
        assert restart_seconds > 0
        assert "restarted from default" in result.message
    else:
        assert restart_seconds == 0.0


def test_result_dispatch_summary(opf_solution9):
    summary = opf_solution9.dispatch_summary()
    assert summary["total_pg_mw"] == pytest.approx(opf_solution9.Pg_mw.sum())
    assert summary["iterations"] == opf_solution9.iterations


def test_warmstart_helpers(opf_solution9, opf_model9, rng):
    warm = opf_solution9.warm_start()
    assert not warm.is_cold()
    assert WarmStart.cold().is_cold()
    parts = warm.split_x(opf_model9)
    assert set(parts) == {"Va", "Vm", "Pg", "Qg"}
    noisy = warm.with_noise(rng, 0.01)
    assert not np.allclose(noisy.x, warm.x)
    clipped = WarmStart(mu=np.array([-1.0, 0.5]), z=np.array([0.0, 2.0])).clipped_duals()
    assert np.all(clipped.mu > 0)
    assert np.all(clipped.z > 0)
    with pytest.raises(ValueError):
        WarmStart.cold().split_x(opf_model9)
