"""Stochastic load streams: correlated sampling and the streamed dataset path.

Pins (a) the diffusion-kernel construction — PSD by construction, unit
diagonal, correlations decaying with graph distance; (b) the bounded-factor
guarantee; (c) bit-reproducibility of the stream from its seed, independent
of how it is chopped into batches; and (d) the streamed ``generate_dataset``
path producing bit-identical datasets to the materialised path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import generate_dataset
from repro.grid import CorrelatedLoadSampler, case9, case14


# ------------------------------------------------------------------- kernel
def test_kernel_is_psd_unit_diagonal_and_distance_decaying():
    case = case14()
    sampler = CorrelatedLoadSampler(case, beta=1.0)
    K = sampler.kernel
    assert K.shape == (case.n_bus, case.n_bus)
    assert np.allclose(K, K.T)
    eigenvalues = np.linalg.eigvalsh(K)
    assert np.all(eigenvalues > 0)  # nugget makes it strictly PD
    assert np.allclose(np.diag(K), 1.0 + 1e-6)
    # Adjacent buses correlate more strongly than distant ones: bus 0's
    # neighbours (1, 4 — branches 1-2, 1-5) vs the far end of the feeder.
    assert K[0, 1] > K[0, 13]
    assert K[0, 4] > K[0, 13]


def test_factors_are_bounded_and_zero_loads_stay_zero():
    case = case9()
    variation = 0.2
    sampler = CorrelatedLoadSampler(case, variation=variation, beta=0.5)
    samples = sampler.sample(64, seed=0)
    zero = case.bus.Pd == 0
    for sample in samples:
        assert np.all(sample.Pd[zero] == 0.0)
        loaded = ~zero
        factors = sample.Pd[loaded] / case.bus.Pd[loaded]
        assert np.all(factors > 1.0 - variation)
        assert np.all(factors < 1.0 + variation)


def test_sampler_validates_parameters():
    case = case9()
    with pytest.raises(ValueError, match="variation"):
        CorrelatedLoadSampler(case, variation=-0.1)
    with pytest.raises(ValueError, match="beta"):
        CorrelatedLoadSampler(case, beta=-1.0)
    with pytest.raises(ValueError, match="nugget"):
        CorrelatedLoadSampler(case, nugget=0.0)
    sampler = CorrelatedLoadSampler(case)
    with pytest.raises(ValueError, match="batch"):
        list(sampler.stream(4, batch=0))
    with pytest.raises(ValueError, match="n_samples"):
        sampler.sample(-1)


# ----------------------------------------------------------- reproducibility
def test_stream_bit_reproducible_and_batch_invariant():
    case = case9()
    sampler = CorrelatedLoadSampler(case, variation=0.1)
    reference = sampler.sample(10, seed=42)
    # Same seed → identical stream; different seed → different draws.
    again = sampler.sample(10, seed=42)
    other = sampler.sample(10, seed=43)
    for a, b in zip(reference, again):
        assert np.array_equal(a.Pd, b.Pd) and np.array_equal(a.Qd, b.Qd)
    assert not np.array_equal(reference[0].Pd, other[0].Pd)
    # Any batch chopping concatenates to the same stream, bit for bit.
    for batch in (1, 3, 10, 100):
        chopped = [s for block in sampler.stream(10, batch, seed=42) for s in block]
        assert [s.scenario_id for s in chopped] == list(range(10))
        for a, b in zip(reference, chopped):
            assert np.array_equal(a.Pd, b.Pd) and np.array_equal(a.Qd, b.Qd)
    # Per-scenario keying also means suffix draws don't depend on the prefix.
    tail = sampler.sample(4, seed=42, start=6)
    for a, b in zip(reference[6:], tail):
        assert np.array_equal(a.Pd, b.Pd) and np.array_equal(a.Qd, b.Qd)


def test_correlated_factors_follow_the_graph():
    """Neighbouring loaded buses move together far more than distant ones."""
    case = case14()
    sampler = CorrelatedLoadSampler(case, variation=0.1, beta=1.0)
    samples = sampler.sample(256, seed=7)
    factors = np.stack([s.Pd / np.where(case.bus.Pd == 0, 1.0, case.bus.Pd) for s in samples])
    # Buses 9 and 10 (0-indexed 9, 10) are adjacent; buses 1 and 13 are far.
    near = np.corrcoef(factors[:, 9], factors[:, 10])[0, 1]
    far = np.corrcoef(factors[:, 1], factors[:, 13])[0, 1]
    assert near > far
    assert near > 0.5


# ------------------------------------------------------------ dataset stream
def test_streamed_dataset_is_batch_invariant():
    case = case9()
    sampler = CorrelatedLoadSampler(case, variation=0.1)
    whole = generate_dataset(case, 6, sampler=sampler, seed=11)
    for stream_batch in (1, 2, 4):
        chopped = generate_dataset(
            case, 6, sampler=sampler, stream_batch=stream_batch, seed=11
        )
        assert np.array_equal(whole.inputs, chopped.inputs)
        assert np.array_equal(whole.objectives, chopped.objectives)
        assert np.array_equal(whole.iterations, chopped.iterations)
        for task in whole.targets:
            assert np.array_equal(whole.targets[task], chopped.targets[task])


def test_streamed_uniform_path_matches_materialised_path():
    """`stream_batch` without a sampler replays the classic uniform draws."""
    case = case9()
    materialised = generate_dataset(case, 6, seed=5)
    streamed = generate_dataset(case, 6, seed=5, stream_batch=2)
    assert np.array_equal(materialised.inputs, streamed.inputs)
    assert np.array_equal(materialised.objectives, streamed.objectives)
    for task in materialised.targets:
        assert np.array_equal(materialised.targets[task], streamed.targets[task])


def test_streamed_dataset_validates_inputs():
    case9_ = case9()
    sampler14 = CorrelatedLoadSampler(case14())
    with pytest.raises(ValueError, match="stream_batch"):
        generate_dataset(case9_, 4, stream_batch=0)
    with pytest.raises(ValueError, match="bus"):
        generate_dataset(case9_, 4, sampler=sampler14)
    with pytest.raises(ValueError, match="integer"):
        generate_dataset(case9_, 4, sampler=CorrelatedLoadSampler(case9_), seed=np.random.default_rng(0))
