"""Tests of the MIPS interior-point core on problems with known solutions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mips import MIPSOptions, mips, qps_mips


# ------------------------------------------------------------------- QP problems
def test_equality_constrained_qp():
    """min x'x  s.t. x1 + x2 = 1  ->  x = (0.5, 0.5)."""
    res = qps_mips(2 * np.eye(2), np.zeros(2), A_eq=[[1.0, 1.0]], b_eq=[1.0])
    assert res.converged
    assert np.allclose(res.x, [0.5, 0.5], atol=1e-6)
    assert res.f == pytest.approx(0.5, abs=1e-6)
    # Equality multiplier: lambda = -1 (gradient condition 2x + lam * 1 = 0).
    assert res.lam[0] == pytest.approx(-1.0, abs=1e-5)


def test_bound_constrained_qp_active_upper_bound():
    """min (x-3)^2 s.t. 0 <= x <= 2  ->  x = 2 with positive bound multiplier."""
    res = qps_mips([[2.0]], [-6.0], xmin=[0.0], xmax=[2.0])
    assert res.converged
    assert res.x[0] == pytest.approx(2.0, abs=1e-5)
    assert res.mu.max() > 0.1  # the upper bound is active


def test_inequality_constrained_qp():
    """min x1^2 + x2^2 s.t. x1 + x2 >= 2  ->  x = (1, 1)."""
    res = qps_mips(
        2 * np.eye(2), np.zeros(2), A_in=[[-1.0, -1.0]], b_in=[-2.0]
    )
    assert res.converged
    assert np.allclose(res.x, [1.0, 1.0], atol=1e-5)


def test_linear_program_with_bounds():
    """min -x1 - 2 x2 s.t. x1 + x2 <= 1, x >= 0  ->  x = (0, 1)."""
    res = qps_mips(
        None,
        np.array([-1.0, -2.0]),
        A_in=[[1.0, 1.0]],
        b_in=[1.0],
        xmin=np.zeros(2),
    )
    assert res.converged
    assert np.allclose(res.x, [0.0, 1.0], atol=1e-4)
    assert res.f == pytest.approx(-2.0, abs=1e-4)


def test_portfolio_style_qp_satisfies_kkt():
    """A 4-variable convex QP with equality and bound constraints: check the KKT conditions."""
    H = np.array(
        [
            [1003.1, 4.3, 6.3, 5.9],
            [4.3, 2.2, 2.1, 3.9],
            [6.3, 2.1, 3.5, 4.8],
            [5.9, 3.9, 4.8, 10.0],
        ]
    )
    c = np.zeros(4)
    A_eq = np.array([[1.0, 1.0, 1.0, 1.0], [0.17, 0.11, 0.10, 0.18]])
    b_eq = np.array([1.0, 0.10])
    res = qps_mips(H, c, A_eq=A_eq, b_eq=b_eq, xmin=np.zeros(4))
    assert res.converged
    # Primal feasibility.
    assert np.allclose(A_eq @ res.x, b_eq, atol=1e-6)
    assert np.all(res.x >= -1e-7)
    # Stationarity: H x + A_eqᵀ λ - µ_lb = 0 (lower-bound rows carry -I).
    mu_lb = np.zeros(4)
    mu_lb[res.partition.lb_idx] = res.mu[res.partition.n_ineq_nonlin :]
    grad = H @ res.x + A_eq.T @ res.lam[: 2] - mu_lb
    assert np.abs(grad).max() < 1e-5
    # Dual feasibility and complementarity.
    assert np.all(res.mu >= -1e-9)
    assert np.abs(res.mu * res.z).max() < 1e-5
    # The objective cannot beat the unconstrained-in-the-nullspace optimum found
    # by solving the reduced equality-constrained QP over the active-set guess.
    assert res.f <= 0.5 * res.x @ H @ res.x + 1e-9


def test_qp_input_validation():
    with pytest.raises(ValueError):
        qps_mips(np.eye(3), np.zeros(2))
    with pytest.raises(ValueError):
        qps_mips(np.eye(2), np.zeros(2), A_eq=np.eye(2), b_eq=np.zeros(3))


# ------------------------------------------------------------ nonlinear problems
def _rosenbrock_constrained():
    """min (1-x)^2 + 100 (y - x^2)^2  s.t.  x^2 + y^2 <= 1.5."""

    def f_fcn(x):
        f = (1 - x[0]) ** 2 + 100 * (x[1] - x[0] ** 2) ** 2
        df = np.array(
            [
                -2 * (1 - x[0]) - 400 * x[0] * (x[1] - x[0] ** 2),
                200 * (x[1] - x[0] ** 2),
            ]
        )
        return f, df

    def gh_fcn(x):
        g = np.zeros(0)
        h = np.array([x[0] ** 2 + x[1] ** 2 - 1.5])
        Jg = sp.csr_matrix((0, 2))
        Jh = sp.csr_matrix(np.array([[2 * x[0], 2 * x[1]]]))
        return g, h, Jg, Jh

    def hess_fcn(x, lam, mu, cost_mult):
        H = cost_mult * np.array(
            [
                [2 - 400 * (x[1] - 3 * x[0] ** 2), -400 * x[0]],
                [-400 * x[0], 200.0],
            ]
        )
        H = H + (mu[0] if mu.size else 0.0) * 2 * np.eye(2)
        return sp.csr_matrix(H)

    return f_fcn, gh_fcn, hess_fcn


def test_constrained_rosenbrock():
    f_fcn, gh_fcn, hess_fcn = _rosenbrock_constrained()
    res = mips(f_fcn, np.array([0.0, 0.0]), gh_fcn=gh_fcn, hess_fcn=hess_fcn)
    assert res.converged
    # The unconstrained optimum (1, 1) violates x^2+y^2 <= 1.5 slightly, so the
    # solution sits near the boundary close to (0.91, 0.83).
    assert res.f < 0.02
    assert res.x[0] ** 2 + res.x[1] ** 2 <= 1.5 + 1e-6


def test_mips_nonlinear_equality_circle():
    """min x + y s.t. x^2 + y^2 = 2  ->  x = y = -1 with multiplier 0.5.

    The objective is linear, so the Lagrangian Hessian is singular at λ = 0;
    a warm-started multiplier (which is exactly what Smart-PGSim supplies)
    makes the KKT system well posed from the first iteration.
    """

    def f_fcn(x):
        return x[0] + x[1], np.array([1.0, 1.0])

    def gh_fcn(x):
        g = np.array([x[0] ** 2 + x[1] ** 2 - 2.0])
        return g, np.zeros(0), sp.csr_matrix(np.array([[2 * x[0], 2 * x[1]]])), sp.csr_matrix((0, 2))

    def hess_fcn(x, lam, mu, cost_mult):
        return sp.csr_matrix((lam[0] if lam.size else 0.0) * 2 * np.eye(2))

    # The problem is non-convex (two stationary points); start in the basin of
    # the minimiser, as a warm start would.
    res = mips(
        f_fcn,
        np.array([-0.5, -1.5]),
        gh_fcn=gh_fcn,
        hess_fcn=hess_fcn,
        lam0=np.array([0.3]),
    )
    assert res.converged
    assert np.allclose(res.x, [-1.0, -1.0], atol=1e-5)
    assert res.lam[0] == pytest.approx(0.5, abs=1e-4)


# ----------------------------------------------------------------- solver details
def test_history_recording_and_conditions():
    res = qps_mips(2 * np.eye(2), np.zeros(2), A_eq=[[1.0, 1.0]], b_eq=[1.0])
    assert len(res.history) == res.iterations + 1
    final = res.final_conditions()
    assert final.feascond < 1e-6
    assert final.gradcond < 1e-6


def test_history_can_be_disabled():
    opts = MIPSOptions(record_history=False)
    res = qps_mips(2 * np.eye(2), np.zeros(2), A_eq=[[1.0, 1.0]], b_eq=[1.0], options=opts)
    assert res.history == []
    assert res.final_conditions() is None


def test_iteration_limit_reported():
    opts = MIPSOptions(max_it=1)
    res = qps_mips([[2.0]], [-6.0], xmin=[0.0], xmax=[2.0], options=opts)
    assert not res.converged
    assert res.eflag == 0
    assert "iteration limit" in res.message


def test_fixed_variable_treated_as_equality():
    """xmin == xmax pins the variable and yields an equality multiplier."""
    res = qps_mips(np.eye(2) * 2, np.zeros(2), xmin=np.array([1.0, -10.0]), xmax=np.array([1.0, 10.0]))
    assert res.converged
    assert res.x[0] == pytest.approx(1.0, abs=1e-8)
    assert res.x[1] == pytest.approx(0.0, abs=1e-6)
    assert res.partition.eq_bound_idx.tolist() == [0]


def test_warm_start_dimension_validation():
    """Wrong-sized warm-start multiplier vectors are rejected up front."""

    def f_fcn(x):
        return float(x @ x), 2 * x, sp.csr_matrix(2 * np.eye(2))

    with pytest.raises(ValueError):
        mips(f_fcn, np.zeros(2), xmin=np.zeros(2), xmax=np.ones(2), mu0=np.ones(7))
    with pytest.raises(ValueError):
        mips(f_fcn, np.zeros(2), xmin=np.zeros(2), xmax=np.ones(2), z0=np.ones(3))
    with pytest.raises(ValueError):
        mips(f_fcn, np.zeros(2), xmin=np.zeros(2), xmax=np.ones(2), lam0=np.ones(1))


def test_options_validation():
    with pytest.raises(ValueError):
        MIPSOptions(feastol=-1).validate()
    with pytest.raises(ValueError):
        MIPSOptions(xi=1.5).validate()
    with pytest.raises(ValueError):
        MIPSOptions(max_it=0).validate()
    MIPSOptions().validate()  # defaults are valid


def test_bounds_shape_validation():
    def f_fcn(x):
        return float(x @ x), 2 * x, sp.csr_matrix(2 * np.eye(2))

    with pytest.raises(ValueError):
        mips(f_fcn, np.zeros(2), xmin=np.zeros(3))
    with pytest.raises(ValueError):
        mips(f_fcn, np.zeros(2), xmin=np.ones(2), xmax=np.zeros(2))


def test_dense_jacobian_callbacks_accepted():
    """Constraint callbacks may return dense ndarray Jacobians (public API)."""

    def f_fcn(x):
        return float(x @ x), 2 * x

    def gh_fcn(x):
        g = np.array([x[0] + x[1] - 1.0])
        return g, np.zeros(0), np.array([[1.0, 1.0]]), np.zeros((0, 2))

    def hess_fcn(x, lam, mu, cost_mult):
        return sp.csr_matrix(2 * np.eye(2) * cost_mult)

    res = mips(f_fcn, np.zeros(2), gh_fcn=gh_fcn, hess_fcn=hess_fcn)
    assert res.converged
    assert np.allclose(res.x, [0.5, 0.5], atol=1e-6)


def test_unconstrained_quadratic_single_newton_step():
    """With no constraints at all the solver is a pure Newton method."""
    def f_fcn(x):
        H = np.diag([2.0, 4.0])
        return float(0.5 * x @ H @ x - x[0]), H @ x - np.array([1.0, 0.0]), sp.csr_matrix(H)

    res = mips(f_fcn, np.array([5.0, 5.0]))
    assert res.converged
    assert np.allclose(res.x, [0.5, 0.0], atol=1e-6)
