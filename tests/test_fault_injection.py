"""Deterministic fault injection: chaos parity, retries, deadlines, breakers.

The acceptance bar for the fault-tolerant runtime: with a deterministic
injected worker crash mid-sweep, the fleet completes, returns one outcome per
scenario, and every non-quarantined converged scenario is **bitwise
identical** to the fault-free run — on both schedules and both lockstep KKT
backends.  No injected fault may escape the serving engine as an unhandled
exception.
"""

import time

import pytest

from repro.engine import (
    BudgetedFallback,
    CircuitBreaker,
    HealthWindow,
    WarmStartEngine,
    get_fallback_policy,
)
from repro.mips.options import MIPSOptions
from repro.opf import OPFOptions
from repro.parallel import SolverFleet, generate_scenarios
from repro.testing.faults import (
    FaultPlan,
    FaultSpec,
    kill_at_task,
    kill_worker,
    raise_in_solver,
    stall_solve,
)


@pytest.fixture(scope="module")
def scenarios9(case9_fixture):
    """Eight scenarios, half with N-1 outages (mixed topology groups)."""
    return generate_scenarios(case9_fixture, 8, seed=0, contingency_fraction=0.5)


def _by_id(sweep):
    return {o.scenario_id: o for o in sweep.outcomes}


def _batch_options(kkt_solver):
    return OPFOptions(mips=MIPSOptions(kkt_solver=kkt_solver))


# ------------------------------------------------------------- plan semantics
def test_fault_spec_attempt_windows():
    persistent = kill_worker(3)
    assert persistent.applies(3, 0) and persistent.applies(3, 5)
    assert not persistent.applies(4, 0)
    transient = kill_worker(3, last_attempt=0)
    assert transient.applies(3, 0) and not transient.applies(3, 1)
    late = raise_in_solver(2, first_attempt=1)
    assert not late.applies(2, 0) and late.applies(2, 1)
    with pytest.raises(ValueError):
        FaultSpec(kind="warp", scenario_id=0)
    with pytest.raises(ValueError):
        kill_worker(1, first_attempt=2, last_attempt=1)


def test_fault_plan_lookups():
    plan = FaultPlan.of(kill_worker(3), raise_in_solver(5, message="boom"), stall_solve(1, 0.25))
    assert plan and not FaultPlan.none()
    assert plan.kill_for([0, 3], attempt=0) is not None
    assert plan.kill_for([0, 4], attempt=0) is None
    assert plan.raise_for([5], attempt=2).message == "boom"
    assert plan.stall_seconds([1, 2], attempt=0) == pytest.approx(0.25)
    assert plan.stall_seconds([2], attempt=0) == 0.0
    indexed = FaultPlan.of(kill_at_task(2))
    assert indexed.kill_at_task_index(2) and not indexed.kill_at_task_index(1)


# ---------------------------------------------------------------- chaos parity
@pytest.mark.parametrize("schedule", ["static", "steal"])
@pytest.mark.parametrize("kkt_solver", ["factorized", "blockdiag"])
def test_worker_crash_parity(case9_fixture, scenarios9, schedule, kkt_solver):
    """A persistent mid-sweep worker kill quarantines exactly the culprit and
    leaves every other scenario bitwise identical to the fault-free run."""
    options = _batch_options(kkt_solver)
    with SolverFleet(
        case9_fixture, options=options, n_workers=2, execution="batch", schedule=schedule
    ) as fleet:
        reference = fleet.solve(scenarios9)
    assert reference.errors == 0 and reference.quarantined == 0

    plan = FaultPlan.of(kill_worker(3))
    with SolverFleet(
        case9_fixture,
        options=options,
        n_workers=2,
        execution="batch",
        schedule=schedule,
        faults=plan,
    ) as fleet:
        chaos = fleet.solve(scenarios9)

    assert chaos.n_scenarios == len(scenarios9)
    assert sorted(o.scenario_id for o in chaos.outcomes) == list(range(len(scenarios9)))
    assert chaos.errors > 0 and chaos.quarantined == 1

    ref, got = _by_id(reference), _by_id(chaos)
    assert got[3].quarantined and not got[3].converged and got[3].error
    for sid in range(len(scenarios9)):
        if sid == 3:
            continue
        assert got[sid].converged == ref[sid].converged
        assert got[sid].objective == ref[sid].objective
        assert got[sid].iterations == ref[sid].iterations


def test_transient_crash_retries_to_full_parity(case9_fixture, scenarios9):
    """A kill absorbed by one retry costs accounting, not results."""
    with SolverFleet(
        case9_fixture, n_workers=2, execution="batch", schedule="steal"
    ) as fleet:
        reference = fleet.solve(scenarios9)

    plan = FaultPlan.of(kill_worker(3, last_attempt=0))
    with SolverFleet(
        case9_fixture,
        n_workers=2,
        execution="batch",
        schedule="steal",
        faults=plan,
    ) as fleet:
        chaos = fleet.solve(scenarios9)
        assert fleet._pool.respawns >= 1

    assert chaos.quarantined == 0 and chaos.retries >= 1
    ref, got = _by_id(reference), _by_id(chaos)
    assert got[3].retries >= 1
    for sid in range(len(scenarios9)):
        assert got[sid].converged == ref[sid].converged
        assert got[sid].objective == ref[sid].objective


def test_raise_in_solver_quarantines_culprit_in_process(case9_fixture, scenarios9):
    """The in-process fleet runs the identical retry/bisect/quarantine policy."""
    with SolverFleet(
        case9_fixture, n_workers=1, execution="batch", schedule="steal"
    ) as fleet:
        reference = fleet.solve(scenarios9)

    plan = FaultPlan.of(raise_in_solver(5, message="injected numerical explosion"))
    with SolverFleet(
        case9_fixture, n_workers=1, execution="batch", schedule="steal", faults=plan
    ) as fleet:
        chaos = fleet.solve(scenarios9)

    got, ref = _by_id(chaos), _by_id(reference)
    assert got[5].quarantined and "injected numerical explosion" in got[5].error
    assert chaos.quarantined == 1
    for sid in range(len(scenarios9)):
        if sid == 5:
            continue
        assert got[sid].objective == ref[sid].objective


def test_kill_at_task_is_transient_in_process(case9_fixture, scenarios9):
    """A task-counter kill hits once; the retried task finds a moved counter."""
    plan = FaultPlan.of(kill_at_task(0))
    with SolverFleet(
        case9_fixture, n_workers=1, execution="batch", schedule="steal", faults=plan
    ) as fleet:
        sweep = fleet.solve(scenarios9)
    assert sweep.errors >= 1 and sweep.retries >= 1 and sweep.quarantined == 0
    assert all(o.converged for o in sweep.outcomes)


def test_crash_retries_zero_bisects_immediately(case9_fixture, scenarios9):
    """With no retry budget the first crash goes straight to bisection."""
    plan = FaultPlan.of(kill_worker(3))
    with SolverFleet(
        case9_fixture,
        n_workers=1,
        execution="batch",
        schedule="steal",
        faults=plan,
        crash_retries=0,
    ) as fleet:
        sweep = fleet.solve(scenarios9)
    assert sweep.retries == 0 and sweep.quarantined == 1
    assert _by_id(sweep)[3].quarantined
    with pytest.raises(ValueError):
        SolverFleet(case9_fixture, crash_retries=-1)


# -------------------------------------------------------- deadlines / timeouts
def test_expired_deadline_retires_whole_sweep(case9_fixture, scenarios9):
    with SolverFleet(case9_fixture, n_workers=1, execution="batch") as fleet:
        sweep = fleet.solve(scenarios9, deadline=time.monotonic() - 1.0)
    assert sweep.n_scenarios == len(scenarios9)
    assert all(o.timed_out and not o.converged for o in sweep.outcomes)
    assert all(not o.quarantined for o in sweep.outcomes)


def test_stalled_scenario_times_out_alone(case9_fixture, scenarios9):
    """A stall past the request deadline retires only the stalled task.

    ``microbatch=1`` puts each scenario in its own pooled task, so the stall
    and its timeout stay confined to scenario 7; the other worker drains the
    rest well inside the deadline.  The first, undeadlined sweep exists only
    to warm the persistent pool — spawn startup on a loaded box can exceed
    the whole deadline, which would retire every scenario instead of just
    the stalled one.
    """
    plan = FaultPlan.of(stall_solve(7, seconds=2.5))
    with SolverFleet(
        case9_fixture,
        n_workers=2,
        execution="batch",
        schedule="steal",
        microbatch=1,
        faults=plan,
    ) as fleet:
        fleet.solve(scenarios9)
        sweep = fleet.solve(scenarios9, deadline_seconds=2.0)
    got = _by_id(sweep)
    assert got[7].timed_out and not got[7].converged and not got[7].quarantined
    for sid in range(7):
        assert got[sid].converged and not got[sid].timed_out


def test_deadline_seconds_must_be_positive(case9_fixture, scenarios9):
    with SolverFleet(case9_fixture, n_workers=1) as fleet:
        with pytest.raises(ValueError, match="deadline_seconds"):
            fleet.solve(scenarios9, deadline_seconds=0.0)


# ------------------------------------------------------------- serving engine
def test_no_fault_escapes_engine_serve(trained_trainer9, case9_fixture):
    """Injected kills and raises surface as structured outcomes, never as
    exceptions from ``WarmStartEngine.serve*``."""
    scenarios = generate_scenarios(case9_fixture, 6, seed=4, contingency_fraction=0.5)
    plan = FaultPlan.of(kill_worker(1), raise_in_solver(4, message="chaos"))
    engine = WarmStartEngine.from_trainer(
        trained_trainer9, execution="batch", schedule="steal"
    )
    engine.faults = plan
    with engine:
        sweep = engine.serve(scenarios, n_workers=2, deadline_seconds=60.0)
    assert sweep.n_scenarios == 6
    got = _by_id(sweep)
    assert got[1].quarantined and got[4].quarantined
    assert all(got[s].converged for s in (0, 2, 3, 5))
    assert sweep.quarantined == 2


def test_engine_serve_deadline_records_timeouts(trained_trainer9, case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 3, seed=5)
    with WarmStartEngine.from_trainer(trained_trainer9) as engine:
        sweep = engine.serve(scenarios, deadline_seconds=1e-9)
    assert all(o.timed_out for o in sweep.outcomes)


# ------------------------------------------------- health window and breaker
def test_health_window_rolls_and_resets():
    window = HealthWindow(window=3)
    assert window.fallback_rate == 0.0 and window.n_observations == 0
    for used in (True, True, False):
        window.record(used)
    assert window.fallback_rate == pytest.approx(2 / 3)
    window.record(False)  # evicts the oldest True
    assert window.fallback_rate == pytest.approx(1 / 3)
    window.reset()
    assert window.n_observations == 0
    with pytest.raises(ValueError):
        HealthWindow(window=0)


def test_circuit_breaker_state_machine():
    breaker = CircuitBreaker(window=8, threshold=0.5, min_observations=2, cooldown=2)
    assert breaker.state == CircuitBreaker.CLOSED and breaker.allow_warm()

    breaker.record(True)
    assert breaker.state == CircuitBreaker.CLOSED  # below min_observations
    breaker.record(True)
    assert breaker.state == CircuitBreaker.OPEN and breaker.trips == 1
    assert not breaker.allow_warm()

    breaker.record(False)  # degraded request 1 of cooldown
    assert breaker.state == CircuitBreaker.OPEN
    breaker.record(False)  # cooldown elapsed -> half-open probe
    assert breaker.state == CircuitBreaker.HALF_OPEN and breaker.allow_warm()

    breaker.record(True)  # failed probe re-trips
    assert breaker.state == CircuitBreaker.OPEN and breaker.trips == 2
    breaker.record(False)
    breaker.record(False)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record(False)  # clean probe closes and resets the window
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.health.n_observations == 0

    with pytest.raises(ValueError):
        CircuitBreaker(threshold=0.0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown=0)


def test_breaker_degrades_engine_to_cold_path(trained_trainer9, case9_fixture):
    """A fallback-heavy stream trips the breaker; the next request skips warm
    inference and is served degraded while the breaker cools down."""
    # One iteration is never enough: every warm attempt fails and uses the
    # fallback, so the health window saturates immediately.
    options = OPFOptions(mips=MIPSOptions(max_it=1))
    breaker = CircuitBreaker(window=4, threshold=0.5, min_observations=2, cooldown=16)
    scenarios = generate_scenarios(case9_fixture, 4, seed=6)
    with WarmStartEngine.from_trainer(
        trained_trainer9, opf_options=options
    ) as engine:
        engine.breaker = breaker
        first = engine.serve(scenarios)
        assert first.fallback_rate == 1.0
        assert breaker.trips == 1 and breaker.state == CircuitBreaker.OPEN
        second = engine.serve(scenarios)
        # Degraded request: cold starts everywhere, still one outcome each.
        assert second.n_scenarios == 4
        assert breaker.state == CircuitBreaker.OPEN  # still cooling down


# ------------------------------------------------------------ budgeted policy
class _StubResult:
    def __init__(self, success):
        self.success = success


def test_budgeted_fallback_retries_with_backoff_then_cold():
    policy = get_fallback_policy("budgeted")
    assert isinstance(policy, BudgetedFallback)
    options = OPFOptions()
    calls = []

    def failing_solve(warm, solve_options):
        calls.append((warm, solve_options))
        return _StubResult(False)

    result = policy.recover(failing_solve, "WARM", _StubResult(False), options)
    # max_retries relaxed attempts, then the cold restart (warm=None).
    assert len(calls) == policy.max_retries + 1
    assert calls[-1][0] is None and calls[-1][1] is options
    for attempt, (warm, solve_options) in enumerate(calls[:-1]):
        assert warm == "WARM"
        expected = options.mips.feastol * policy.backoff_scale ** (attempt + 1)
        assert solve_options.mips.feastol == pytest.approx(expected)
    assert result.success is False


def test_budgeted_fallback_stops_at_first_success():
    policy = BudgetedFallback(max_retries=3)
    calls = []

    def solve(warm, solve_options):
        calls.append(warm)
        return _StubResult(len(calls) == 2)

    result = policy.recover(solve, "WARM", _StubResult(False), OPFOptions())
    assert result.success and len(calls) == 2


def test_budgeted_fallback_without_cold_restart_returns_last_attempt():
    policy = BudgetedFallback(max_retries=2, cold_restart_on_exhaustion=False)
    calls = []

    def solve(warm, solve_options):
        calls.append(warm)
        return _StubResult(False)

    result = policy.recover(solve, "WARM", _StubResult(False), OPFOptions())
    assert len(calls) == 2 and all(w == "WARM" for w in calls)
    assert result is not None and not result.success
    with pytest.raises(ValueError):
        BudgetedFallback(max_retries=-1)
    with pytest.raises(ValueError):
        BudgetedFallback(backoff_scale=1.0)
