"""Finite-difference verification of the first-derivative kernels."""

import numpy as np
import pytest

from repro.powerflow import (
    dAbr_dV,
    dIbr_dV,
    dSbr_dV,
    dSbus_dV,
    make_ybus,
    polar_to_complex,
)


def _random_voltage(n, rng, spread=0.08):
    Va = spread * rng.standard_normal(n)
    Vm = 1.0 + spread * rng.standard_normal(n) * 0.5
    return Va, Vm


def _fd_jacobian(fn, Va, Vm, m, eps=1e-7):
    """Central finite differences of a complex vector function of (Va, Vm)."""
    n = Va.size
    J_a = np.zeros((m, n), dtype=complex)
    J_m = np.zeros((m, n), dtype=complex)
    for i in range(n):
        for arr, J in ((Va, J_a), (Vm, J_m)):
            orig = arr[i]
            arr[i] = orig + eps
            fp = fn(Va, Vm)
            arr[i] = orig - eps
            fm = fn(Va, Vm)
            arr[i] = orig
            J[:, i] = (fp - fm) / (2 * eps)
    return J_a, J_m


@pytest.mark.parametrize("case_name", ["case9", "case14"])
def test_dSbus_dV_matches_finite_differences(case_name, case9_fixture, case14_fixture, rng):
    case = case9_fixture if case_name == "case9" else case14_fixture
    adm = make_ybus(case)
    Va, Vm = _random_voltage(case.n_bus, rng)

    def sbus(Va_, Vm_):
        V = polar_to_complex(Va_, Vm_)
        return V * np.conj(adm.Ybus @ V)

    dSa, dSm = dSbus_dV(adm.Ybus, polar_to_complex(Va, Vm))
    Jfd_a, Jfd_m = _fd_jacobian(sbus, Va, Vm, case.n_bus)
    assert np.abs(dSa.toarray() - Jfd_a).max() < 1e-6
    assert np.abs(dSm.toarray() - Jfd_m).max() < 1e-6


def test_dSbr_dV_matches_finite_differences(case9_fixture, rng):
    case = case9_fixture
    adm = make_ybus(case)
    Va, Vm = _random_voltage(case.n_bus, rng)

    def sf(Va_, Vm_):
        V = polar_to_complex(Va_, Vm_)
        return (adm.Cf @ V) * np.conj(adm.Yf @ V)

    dSa, dSm, Sf = dSbr_dV(adm.Yf, adm.Cf, polar_to_complex(Va, Vm))
    Jfd_a, Jfd_m = _fd_jacobian(sf, Va, Vm, case.n_branch)
    assert np.abs(dSa.toarray() - Jfd_a).max() < 1e-6
    assert np.abs(dSm.toarray() - Jfd_m).max() < 1e-6
    assert np.allclose(Sf, sf(Va, Vm))


def test_dSbr_dV_to_side(case14_fixture, rng):
    case = case14_fixture
    adm = make_ybus(case)
    Va, Vm = _random_voltage(case.n_bus, rng)

    def st(Va_, Vm_):
        V = polar_to_complex(Va_, Vm_)
        return (adm.Ct @ V) * np.conj(adm.Yt @ V)

    dSa, dSm, St = dSbr_dV(adm.Yt, adm.Ct, polar_to_complex(Va, Vm))
    Jfd_a, Jfd_m = _fd_jacobian(st, Va, Vm, case.n_branch)
    assert np.abs(dSa.toarray() - Jfd_a).max() < 1e-6
    assert np.abs(dSm.toarray() - Jfd_m).max() < 1e-6


def test_dAbr_dV_matches_finite_differences(case9_fixture, rng):
    case = case9_fixture
    adm = make_ybus(case)
    Va, Vm = _random_voltage(case.n_bus, rng)

    def asq(Va_, Vm_):
        V = polar_to_complex(Va_, Vm_)
        Sf = (adm.Cf @ V) * np.conj(adm.Yf @ V)
        return (np.abs(Sf) ** 2).astype(complex)

    dSa, dSm, Sf = dSbr_dV(adm.Yf, adm.Cf, polar_to_complex(Va, Vm))
    dAa, dAm = dAbr_dV(dSa, dSm, Sf)
    Jfd_a, Jfd_m = _fd_jacobian(asq, Va, Vm, case.n_branch)
    assert np.abs(dAa.toarray() - Jfd_a.real).max() < 1e-5
    assert np.abs(dAm.toarray() - Jfd_m.real).max() < 1e-5


def test_dIbr_dV_matches_finite_differences(case9_fixture, rng):
    case = case9_fixture
    adm = make_ybus(case)
    Va, Vm = _random_voltage(case.n_bus, rng)

    def current(Va_, Vm_):
        return adm.Yf @ polar_to_complex(Va_, Vm_)

    dIa, dIm, Ibr = dIbr_dV(adm.Yf, polar_to_complex(Va, Vm))
    Jfd_a, Jfd_m = _fd_jacobian(current, Va, Vm, case.n_branch)
    assert np.abs(dIa.toarray() - Jfd_a).max() < 1e-6
    assert np.abs(dIm.toarray() - Jfd_m).max() < 1e-6
    assert np.allclose(Ibr, current(Va, Vm))
