"""Tests for the Newton-Raphson AC power flow and the DC power flow."""

import numpy as np
import pytest

from repro.powerflow import (
    dc_nominal_flows,
    dc_power_flow,
    make_bdc,
    make_ybus,
    newton_power_flow,
)


def test_newton_converges_case9(case9_fixture):
    result = newton_power_flow(case9_fixture)
    assert result.converged
    assert result.max_mismatch < 1e-8
    assert result.iterations <= 10


def test_newton_converges_case14_from_flat_start(case14_fixture):
    result = newton_power_flow(case14_fixture, flat_start=True)
    assert result.converged
    # IEEE 14-bus solution: voltage magnitudes stay within operational range.
    assert result.Vm.min() > 0.9
    assert result.Vm.max() < 1.15


def test_newton_case14_reproduces_reference_angles(case14_fixture):
    """The case ships its solved voltage profile; the solver must reproduce it."""
    result = newton_power_flow(case14_fixture)
    assert result.converged
    # Bus 14 angle around -16 degrees in the standard solution.
    idx = case14_fixture.bus_index_map()[14]
    assert np.rad2deg(result.Va[idx]) == pytest.approx(-16.04, abs=0.3)


def test_newton_history_monotone_tail(case9_fixture):
    result = newton_power_flow(case9_fixture, flat_start=True)
    assert result.converged
    # Newton converges quadratically near the solution: last step must shrink.
    assert result.history[-1] < result.history[-2]


def test_newton_mismatch_consistency(case30s_fixture):
    result = newton_power_flow(case30s_fixture)
    assert result.converged
    adm = make_ybus(case30s_fixture)
    mis = result.Sbus - (
        adm.Cg
        @ ((case30s_fixture.gen.Pg + 1j * case30s_fixture.gen.Qg) / case30s_fixture.base_mva)
        - (case30s_fixture.bus.Pd + 1j * case30s_fixture.bus.Qd) / case30s_fixture.base_mva
    )
    # PQ-bus mismatch is tiny; PV/slack buses absorb the remainder.
    pq = case30s_fixture.pq_bus_indices()
    assert np.abs(mis[pq]).max() < 1e-6


def test_newton_requires_single_reference(case9_fixture):
    broken = case9_fixture.copy()
    broken.bus.bus_type[1] = 3
    with pytest.raises(ValueError):
        newton_power_flow(broken)


def test_newton_reports_nonconvergence(case9_fixture):
    impossible = case9_fixture.copy()
    impossible.bus.Pd *= 50.0  # far beyond any feasible transfer capability
    result = newton_power_flow(impossible, max_iter=15)
    assert not result.converged


# ------------------------------------------------------------------ DC power flow
def test_dc_matrices_shapes(case14_fixture):
    mats = make_bdc(case14_fixture)
    assert mats.Bbus.shape == (14, 14)
    assert mats.Bf.shape == (20, 14)


def test_dc_flow_balance(case9_fixture):
    Pinj = np.zeros(9)
    Pinj[0] = 100.0
    Pinj[4] = -100.0
    flows = dc_power_flow(case9_fixture, Pinj)
    assert flows.shape == (9,)
    # Net flow out of bus 1 equals its injection.
    f, t = case9_fixture.branch_bus_indices()
    net = np.zeros(9)
    np.add.at(net, f, flows)
    np.add.at(net, t, -flows)
    assert net[0] == pytest.approx(100.0, abs=1e-6)
    assert net[4] == pytest.approx(-100.0, abs=1e-6)


def test_dc_flow_tracks_ac_flows_roughly(case9_fixture):
    ac = newton_power_flow(case9_fixture)
    dc = dc_nominal_flows(case9_fixture)
    ac_p = ac.Sf.real * case9_fixture.base_mva
    # DC approximation: correct signs and within ~20 MW on this small case.
    assert np.all(np.sign(dc[np.abs(ac_p) > 5]) == np.sign(ac_p[np.abs(ac_p) > 5]))
    assert np.abs(dc - ac_p).max() < 20.0


def test_dc_rejects_bad_input(case9_fixture):
    with pytest.raises(ValueError):
        dc_power_flow(case9_fixture, np.zeros(3))
