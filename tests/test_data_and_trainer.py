"""Tests of dataset generation and the MTL training loop."""

import numpy as np
import pytest

from repro.data import OPFDataset, TASK_NAMES, generate_dataset
from repro.mtl import (
    MTLTrainer,
    SeparateTaskNetworks,
    SmartPGSimMTL,
    TaskDimensions,
    fast_config,
    warm_start_from_prediction,
)
from repro.opf import solve_opf


# ------------------------------------------------------------------------ dataset
def test_dataset_shapes_and_tasks(dataset9, case9_fixture):
    assert dataset9.n_samples == 24
    assert dataset9.n_features == 2 * case9_fixture.n_bus
    assert set(dataset9.targets) == set(TASK_NAMES)
    assert dataset9.task_dim("Va") == 9
    assert dataset9.task_dim("lam") == 19
    assert dataset9.task_dim("mu") == dataset9.task_dim("z") == 48
    assert np.all(dataset9.iterations > 0)
    assert np.all(dataset9.solve_seconds > 0)


def test_dataset_inputs_are_pu_loads(dataset9, case9_fixture):
    Pd_pu = dataset9.inputs[:, : case9_fixture.n_bus]
    assert np.allclose(Pd_pu * case9_fixture.base_mva, dataset9.Pd_mw)


def test_dataset_targets_are_feasible_solutions(dataset9, case9_fixture):
    Vm = dataset9.targets["Vm"]
    assert np.all(Vm <= case9_fixture.bus.Vmax + 1e-6)
    assert np.all(Vm >= case9_fixture.bus.Vmin - 1e-6)
    assert np.all(dataset9.targets["z"] > 0)
    assert np.all(dataset9.targets["mu"] >= 0)


def test_dataset_split_and_subset(dataset9):
    train, val = dataset9.split(0.75, seed=3)
    assert train.n_samples + val.n_samples == dataset9.n_samples
    assert train.n_samples == int(round(0.75 * dataset9.n_samples))
    sub = dataset9.subset(np.array([0, 2, 4]))
    assert sub.n_samples == 3
    assert np.allclose(sub.inputs[1], dataset9.inputs[2])
    with pytest.raises(ValueError):
        dataset9.split(1.5)


def test_dataset_batches_cover_all_rows(dataset9):
    seen = np.concatenate(list(dataset9.batches(7, seed=0)))
    assert sorted(seen.tolist()) == list(range(dataset9.n_samples))
    with pytest.raises(ValueError):
        list(dataset9.batches(0))


def test_dataset_save_load_roundtrip(dataset9, tmp_path):
    path = dataset9.save(tmp_path / "ds.npz")
    loaded = OPFDataset.load(path)
    assert loaded.case_name == dataset9.case_name
    assert np.allclose(loaded.inputs, dataset9.inputs)
    for task in TASK_NAMES:
        assert np.allclose(loaded.targets[task], dataset9.targets[task])


def test_generate_dataset_deterministic(case9_fixture, opf_model9):
    a = generate_dataset(case9_fixture, 3, seed=5, model=opf_model9)
    b = generate_dataset(case9_fixture, 3, seed=5, model=opf_model9)
    assert np.allclose(a.inputs, b.inputs)
    assert np.allclose(a.targets["Pg"], b.targets["Pg"])


# ------------------------------------------------------------------------ trainer
def test_training_reduces_loss(dataset9, opf_model9):
    dims = TaskDimensions(9, 3, dataset9.task_dim("lam"), dataset9.task_dim("mu"))
    cfg = fast_config(epochs=12)
    net = SmartPGSimMTL(dims, cfg, seed=3)
    trainer = MTLTrainer(net, dataset9, opf_model9, config=cfg)
    history = trainer.train()
    losses = history.losses()
    assert losses.shape == (12,)
    assert losses[-1] < losses[0]
    assert history.train_seconds > 0


def test_trainer_detach_schedule_respected(dataset9, opf_model9, case9_fixture):
    dims = TaskDimensions(9, 3, dataset9.task_dim("lam"), dataset9.task_dim("mu"))
    cfg = fast_config(epochs=4, detach_period=2)
    net = SmartPGSimMTL(dims, cfg, seed=1)
    trainer = MTLTrainer(net, dataset9, opf_model9, config=cfg)
    history = trainer.train()
    detached = [e.detached for e in history.epochs]
    assert detached == [False, True, False, True]


def test_trainer_without_physics_has_zero_physics_loss(dataset9, opf_model9):
    dims = TaskDimensions(9, 3, dataset9.task_dim("lam"), dataset9.task_dim("mu"))
    cfg = fast_config(epochs=2, use_physics=False)
    net = SmartPGSimMTL(dims, cfg, seed=2)
    trainer = MTLTrainer(net, dataset9, opf_model9, config=cfg, use_physics=False)
    history = trainer.train()
    assert all(e.physics_loss == 0.0 for e in history.epochs)


def test_trainer_with_physics_records_terms(dataset9, opf_model9):
    dims = TaskDimensions(9, 3, dataset9.task_dim("lam"), dataset9.task_dim("mu"))
    cfg = fast_config(epochs=2, use_physics=True)
    net = SmartPGSimMTL(dims, cfg, seed=2)
    trainer = MTLTrainer(net, dataset9, opf_model9, config=cfg)
    history = trainer.train()
    assert set(history.epochs[0].physics_terms) == {"f_ac", "f_ieq", "f_cost", "f_lag"}
    assert history.epochs[0].physics_loss > 0


def test_trainer_works_with_separate_networks(dataset9, opf_model9):
    dims = TaskDimensions(9, 3, dataset9.task_dim("lam"), dataset9.task_dim("mu"))
    cfg = fast_config(epochs=3)
    net = SeparateTaskNetworks(dims, cfg, seed=0)
    trainer = MTLTrainer(net, dataset9, opf_model9, config=cfg)
    history = trainer.train()
    assert history.epochs[-1].total_loss < history.epochs[0].total_loss


def test_predict_physical_shapes_and_ranges(trained_trainer9, dataset9, case9_fixture):
    pred = trained_trainer9.predict_physical(dataset9.inputs[:5])
    assert pred["Vm"].shape == (5, 9)
    # Sigmoid heads + min-max denormalisation keep Vm inside the observed range.
    assert pred["Vm"].min() >= case9_fixture.bus.Vmin.min() - 1e-6
    assert pred["Vm"].max() <= case9_fixture.bus.Vmax.max() + 1e-6
    # Sigmoid heads keep Z inside the observed (non-negative) range up to the
    # tiny widening applied to constant dimensions by the normaliser.
    assert pred["z"].min() >= -1e-6


def test_evaluate_reports_all_tasks(trained_trainer9, dataset9):
    metrics = trained_trainer9.evaluate(dataset9)
    for task in TASK_NAMES:
        assert f"mae_{task}" in metrics
        assert np.isfinite(metrics[f"mae_{task}"])


def test_prediction_accuracy_reasonable(trained_trainer9, dataset9):
    """The trained model must track the main tasks well (Fig. 6 behaviour)."""
    metrics = trained_trainer9.evaluate(dataset9)
    assert metrics["rel_Vm"] < 0.05
    assert metrics["rel_Pg"] < 0.15


def test_warm_start_from_prediction_structure(trained_trainer9, opf_model9, dataset9):
    warm = trained_trainer9.warm_start_for(dataset9.inputs[0])
    assert warm.x.shape == (opf_model9.idx.nx,)
    assert warm.lam.shape == (19,)
    assert np.all(warm.mu > 0)
    assert np.all(warm.z > 0)


def test_warm_start_prediction_accelerates_solver(trained_trainer9, dataset9, case9_fixture, opf_model9):
    """The headline mechanism: warm-started solves need far fewer iterations."""
    warm_iters, cold_iters = [], []
    for i in range(min(6, dataset9.n_samples)):
        warm = trained_trainer9.warm_start_for(dataset9.inputs[i])
        res = solve_opf(
            case9_fixture,
            warm_start=warm,
            Pd_mw=dataset9.Pd_mw[i],
            Qd_mvar=dataset9.Qd_mw[i],
            model=opf_model9,
        )
        assert res.success
        warm_iters.append(res.iterations)
        cold_iters.append(dataset9.iterations[i])
    assert np.mean(warm_iters) < 0.6 * np.mean(cold_iters)


def test_warm_start_solution_preserves_optimality(trained_trainer9, dataset9, case9_fixture, opf_model9):
    i = 0
    warm = trained_trainer9.warm_start_for(dataset9.inputs[i])
    res = solve_opf(
        case9_fixture, warm_start=warm, Pd_mw=dataset9.Pd_mw[i], Qd_mvar=dataset9.Qd_mw[i], model=opf_model9
    )
    assert res.objective == pytest.approx(dataset9.objectives[i], rel=1e-5)


def test_warm_start_from_prediction_helper(opf_model9, dataset9):
    pred = {task: dataset9.targets[task][0] for task in TASK_NAMES}
    warm = warm_start_from_prediction(pred, opf_model9)
    assert np.allclose(warm.x[: 9], dataset9.targets["Va"][0])
