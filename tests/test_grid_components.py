"""Unit tests for the columnar grid data model."""

import numpy as np
import pytest

from repro.grid.components import PQ, PV, REF, BusTable


def test_case9_sizes(case9_fixture):
    assert case9_fixture.n_bus == 9
    assert case9_fixture.n_gen == 3
    assert case9_fixture.n_branch == 9


def test_case14_sizes(case14_fixture):
    assert case14_fixture.n_bus == 14
    assert case14_fixture.n_gen == 5
    assert case14_fixture.n_branch == 20


def test_bus_index_map_is_bijective(case14_fixture):
    mapping = case14_fixture.bus_index_map()
    assert len(mapping) == case14_fixture.n_bus
    assert sorted(mapping.values()) == list(range(case14_fixture.n_bus))


def test_gen_bus_indices_point_to_generator_buses(case9_fixture):
    idx = case9_fixture.gen_bus_indices()
    assert list(case9_fixture.bus.bus_i[idx]) == list(case9_fixture.gen.bus)


def test_branch_bus_indices_match_endpoints(case14_fixture):
    f, t = case14_fixture.branch_bus_indices()
    assert np.all(case14_fixture.bus.bus_i[f] == case14_fixture.branch.f_bus)
    assert np.all(case14_fixture.bus.bus_i[t] == case14_fixture.branch.t_bus)


def test_exactly_one_reference_bus(case9_fixture, case14_fixture):
    for case in (case9_fixture, case14_fixture):
        assert case.ref_bus_indices().size == 1


def test_bus_type_partition(case14_fixture):
    ref = case14_fixture.ref_bus_indices()
    pv = case14_fixture.pv_bus_indices()
    pq = case14_fixture.pq_bus_indices()
    assert ref.size + pv.size + pq.size == case14_fixture.n_bus
    assert set(ref) | set(pv) | set(pq) == set(range(case14_fixture.n_bus))


def test_copy_is_deep(case9_fixture):
    clone = case9_fixture.copy()
    clone.bus.Pd[0] += 100.0
    assert case9_fixture.bus.Pd[0] != clone.bus.Pd[0]


def test_with_loads_replaces_loads(case9_fixture):
    new_pd = np.arange(case9_fixture.n_bus, dtype=float)
    new_qd = np.ones(case9_fixture.n_bus)
    modified = case9_fixture.with_loads(new_pd, new_qd, name="modified")
    assert modified.name == "modified"
    assert np.allclose(modified.bus.Pd, new_pd)
    assert np.allclose(modified.bus.Qd, new_qd)
    # Original untouched.
    assert not np.allclose(case9_fixture.bus.Pd, new_pd)


def test_with_loads_rejects_wrong_shape(case9_fixture):
    with pytest.raises(ValueError):
        case9_fixture.with_loads(np.zeros(3), np.zeros(3))


def test_total_load_and_capacity(case9_fixture):
    total = case9_fixture.total_load()
    assert total.real == pytest.approx(315.0)
    assert total.imag == pytest.approx(115.0)
    assert case9_fixture.total_gen_capacity() == pytest.approx(820.0)


def test_summary_fields(case14_fixture):
    summary = case14_fixture.summary()
    assert summary["buses"] == 14
    assert summary["generators"] == 5
    assert summary["branches"] == 20
    assert summary["total_load_mw"] == pytest.approx(259.0, abs=1.0)


def test_bus_table_rejects_mismatched_columns():
    with pytest.raises(ValueError):
        BusTable(
            bus_i=[1, 2],
            bus_type=[REF, PQ],
            Pd=[0.0],  # wrong length
            Qd=[0.0, 0.0],
            Gs=[0.0, 0.0],
            Bs=[0.0, 0.0],
            Vm=[1.0, 1.0],
            Va=[0.0, 0.0],
            base_kv=[100.0, 100.0],
            Vmax=[1.1, 1.1],
            Vmin=[0.9, 0.9],
        )


def test_bus_type_constants():
    assert (PQ, PV, REF) == (1, 2, 3)


def test_gencost_constant_column_alignment(case9_fixture):
    # Quadratic costs: last column is the constant term.
    assert case9_fixture.gencost.coeffs.shape == (3, 3)
    assert case9_fixture.gencost.coeffs[0, -1] == pytest.approx(150.0)
    assert case9_fixture.gencost.coeffs[1, -1] == pytest.approx(600.0)


def test_table_copies_are_independent(case9_fixture):
    gen_copy = case9_fixture.gen.copy()
    gen_copy.Pmax[0] = 1.0
    assert case9_fixture.gen.Pmax[0] != 1.0
