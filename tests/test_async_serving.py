"""Batcher-invariance suite for the async serving front-end.

Mirrors ``test_scheduler_invariants.py`` one layer up: per-request results
must be **bitwise** independent of how the dynamic batcher happened to cut
traffic into flushes — arrival interleaving, flush boundaries (``max_batch``),
coalescing partners and fleet width — because engine inference is row-
deterministic and lockstep solves are row-independent.  Plus the deadline
semantics the batcher rides on: the row-wise deadline gate (only expired rows
retire), mixed-deadline coalescing, deterministic overload rejection and
all-cancelled flush tolerance.
"""

import asyncio
import time

import numpy as np
import pytest

from repro.engine import WarmStartEngine
from repro.parallel import SolverFleet, generate_scenarios
from repro.parallel.scenarios import Scenario, ScenarioSet
from repro.serving import AsyncServer, OverloadedError


def _assert_bitwise_equal_outcomes(a, b):
    assert a.scenario_id == b.scenario_id
    assert a.success == b.success
    assert a.converged == b.converged
    assert a.iterations == b.iterations
    if a.success:
        assert a.objective == b.objective


def _assert_bitwise_equal_sweeps(a, b):
    assert a.n_scenarios == b.n_scenarios
    for oa, ob in zip(a.outcomes, b.outcomes):
        _assert_bitwise_equal_outcomes(oa, ob)


@pytest.fixture(scope="module")
def engine9(trained_trainer9):
    """Lockstep batch/steal engine — the configuration coalescing targets."""
    with WarmStartEngine.from_trainer(
        trained_trainer9, execution="batch", schedule="steal"
    ) as engine:
        yield engine


def _requests_from(dataset, sizes, start=0):
    """Cut ``sizes`` consecutive per-request load slices out of the dataset."""
    requests, row = [], start
    for size in sizes:
        requests.append((dataset.Pd_mw[row : row + size], dataset.Qd_mw[row : row + size]))
        row += size
    return requests


async def _serve_concurrently(engine, requests, **server_kwargs):
    server_kwargs.setdefault("max_wait_seconds", 0.2)
    async with AsyncServer(engine, **server_kwargs) as server:
        sweeps = await asyncio.gather(
            *(server.submit_loads(Pd, Qd, deadline_seconds=60.0) for Pd, Qd in requests)
        )
        stats = server.stats
    return sweeps, stats


# ------------------------------------------------------------------ invariance
def test_coalesced_requests_match_direct_serve_bitwise(engine9, dataset9):
    """One flush of three coalesced requests == three direct serve calls."""
    requests = _requests_from(dataset9, [2, 2, 2])
    sweeps, stats = asyncio.run(
        _serve_concurrently(engine9, requests, max_batch=6)
    )
    # All three were admitted before the batcher woke, so they rode one flush.
    assert stats.flushes == 1 and stats.widest_flush == 6
    for (Pd, Qd), sweep in zip(requests, sweeps):
        direct = engine9.serve_loads(Pd, Qd)
        _assert_bitwise_equal_sweeps(sweep, direct)
        assert sweep.model_generation == direct.model_generation


def test_results_invariant_to_arrival_interleaving(engine9, dataset9):
    """Coalesced, sequential and reversed arrivals produce identical results.

    The width-1 request rides a single-row flush on the sequential path — the
    case that only stays bitwise because engine inference pads onto the
    batched BLAS path.
    """
    requests = _requests_from(dataset9, [1, 2, 3])
    coalesced, _ = asyncio.run(_serve_concurrently(engine9, requests, max_batch=6))
    reversed_sweeps, _ = asyncio.run(
        _serve_concurrently(engine9, list(reversed(requests)), max_batch=6)
    )
    reversed_sweeps = list(reversed(reversed_sweeps))

    async def sequential():
        results = []
        async with AsyncServer(engine9, max_batch=6, max_wait_seconds=0.01) as server:
            for Pd, Qd in requests:
                results.append(await server.submit_loads(Pd, Qd))
        return results

    one_by_one = asyncio.run(sequential())
    for a, b, c in zip(coalesced, reversed_sweeps, one_by_one):
        _assert_bitwise_equal_sweeps(a, b)
        _assert_bitwise_equal_sweeps(a, c)


def test_results_invariant_to_flush_boundaries(engine9, dataset9):
    """max_batch (and with it the flush cuts) must not leak into results."""
    requests = _requests_from(dataset9, [2, 1, 3])
    reference = [engine9.serve_loads(Pd, Qd) for Pd, Qd in requests]
    for max_batch in (1, 2, 3, 100):
        sweeps, _ = asyncio.run(
            _serve_concurrently(engine9, requests, max_batch=max_batch)
        )
        for sweep, direct in zip(sweeps, reference):
            _assert_bitwise_equal_sweeps(sweep, direct)


def test_results_invariant_to_worker_count(engine9, dataset9):
    """A multi-process flush serves the same bits as the in-process fleet."""
    requests = _requests_from(dataset9, [2, 2])
    reference = [engine9.serve_loads(Pd, Qd) for Pd, Qd in requests]
    sweeps, _ = asyncio.run(
        _serve_concurrently(engine9, requests, max_batch=4, n_workers=2)
    )
    for sweep, direct in zip(sweeps, reference):
        assert sweep.n_workers == 2
        _assert_bitwise_equal_sweeps(sweep, direct)


# ------------------------------------------------------------------- deadlines
def test_mixed_deadline_coalescing(engine9, dataset9):
    """A hopeless-deadline rider retires without touching its flush mates."""
    generous = _requests_from(dataset9, [3])[0]
    hopeless = _requests_from(dataset9, [2], start=3)[0]
    direct = engine9.serve_loads(*generous)

    async def run():
        async with AsyncServer(engine9, max_batch=8, max_wait_seconds=0.2) as server:
            return await asyncio.gather(
                server.submit_loads(*generous, deadline_seconds=60.0),
                server.submit_loads(*hopeless, deadline_seconds=1e-7),
            )

    generous_sweep, hopeless_sweep = asyncio.run(run())
    assert all(o.timed_out for o in hopeless_sweep.outcomes)
    assert hopeless_sweep.n_scenarios == 2
    _assert_bitwise_equal_sweeps(generous_sweep, direct)


@pytest.mark.parametrize("schedule", ["static", "steal"])
def test_row_deadline_gate_retires_only_expired_rows(case9_fixture, schedule):
    """Per-row gate: expired rows retire, survivors stay bitwise identical."""
    scenarios = generate_scenarios(case9_fixture, 6, seed=3, contingency_fraction=0.5)
    with SolverFleet(case9_fixture, execution="batch", schedule=schedule) as fleet:
        baseline = fleet.solve(scenarios)
        past = time.monotonic() - 1.0
        per_row = np.array([past, np.inf, past, np.inf, np.inf, past])
        gated = fleet.solve(scenarios, deadline=per_row)
    assert [o.scenario_id for o in gated.outcomes] == [o.scenario_id for o in baseline.outcomes]
    for deadline, base, out in zip(per_row, baseline.outcomes, gated.outcomes):
        if np.isfinite(deadline):
            assert out.timed_out and not out.success
            assert out.error == "wall deadline exceeded"
        else:
            _assert_bitwise_equal_outcomes(base, out)


def test_all_rows_expired_retires_whole_task(case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 3, seed=4)
    with SolverFleet(case9_fixture, execution="batch", schedule="steal") as fleet:
        gated = fleet.solve(scenarios, deadline=time.monotonic() - 1.0)
    assert all(o.timed_out for o in gated.outcomes)
    assert gated.n_scenarios == 3


def test_per_scenario_deadline_validation(case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 3, seed=5)
    with SolverFleet(case9_fixture) as fleet:
        with pytest.raises(ValueError, match="one entry per scenario"):
            fleet.solve(scenarios, deadline_seconds=[1.0, 1.0])
        with pytest.raises(ValueError, match="must be positive"):
            fleet.solve(scenarios, deadline_seconds=[1.0, -1.0, 1.0])
        # nan/inf entries mean unbounded — including the all-unbounded vector.
        sweep = fleet.solve(scenarios, deadline_seconds=[np.nan, np.inf, np.nan])
        assert not any(o.timed_out for o in sweep.outcomes)


# ---------------------------------------------------------------- backpressure
def test_oversized_request_rejected_deterministically(engine9, dataset9):
    """A request wider than max_queue is rejected on an empty queue, typed."""
    Pd, Qd = _requests_from(dataset9, [3])[0]

    async def run():
        async with AsyncServer(engine9, max_queue=2, max_wait_seconds=0.01) as server:
            with pytest.raises(OverloadedError):
                await server.submit_loads(Pd, Qd)
            rejected = server.stats.rejected_requests
            # The server stays healthy: a fitting request is still served.
            sweep = await server.submit_loads(Pd[:2], Qd[:2])
            return rejected, server.stats.rejected_requests, sweep

    rejected_before, rejected_after, sweep = asyncio.run(run())
    assert rejected_before == 1 and rejected_after == 1
    assert sweep.n_scenarios == 2


def test_backlog_overflow_rejects_latest_request(engine9, dataset9):
    """Admissions in one event-loop tick fill the queue in order; the request
    that would overflow it is the one rejected."""
    requests = _requests_from(dataset9, [2, 2, 2])

    async def run():
        async with AsyncServer(
            engine9, max_batch=4, max_queue=4, max_wait_seconds=0.05
        ) as server:
            tasks = [
                asyncio.create_task(server.submit_loads(Pd, Qd))
                for Pd, Qd in requests
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

    first, second, third = asyncio.run(run())
    assert first.n_scenarios == 2 and second.n_scenarios == 2
    assert isinstance(third, OverloadedError)


def test_all_cancelled_flush_is_tolerated(engine9, dataset9):
    """Cancelling every rider of a pending flush must not wedge the batcher."""
    Pd, Qd = _requests_from(dataset9, [2])[0]

    async def run():
        async with AsyncServer(engine9, max_batch=8, max_wait_seconds=0.05) as server:
            doomed = [
                asyncio.create_task(server.submit_loads(Pd, Qd)) for _ in range(2)
            ]
            await asyncio.sleep(0)  # let the admissions land
            for task in doomed:
                task.cancel()
            await asyncio.sleep(0.2)  # the empty flush fires and is skipped
            skipped_scenarios = server.stats.served_scenarios
            sweep = await server.submit_loads(Pd, Qd)
            return skipped_scenarios, sweep, server.stats

    skipped_scenarios, sweep, stats = asyncio.run(run())
    assert skipped_scenarios == 0  # nothing reached the engine
    assert sweep.n_scenarios == 2 and stats.served_scenarios == 2
    assert stats.flushes >= 2


# ------------------------------------------------------------------- lifecycle
def test_empty_request_is_served_inline(engine9):
    async def run():
        async with AsyncServer(engine9) as server:
            a = await server.submit([])
            b = await server.submit_loads(np.empty((0,)), np.empty((0,)))
            return a, b, server.stats

    a, b, stats = asyncio.run(run())
    assert a.n_scenarios == 0 and b.n_scenarios == 0
    assert a.model_generation == engine9.generation
    assert stats.admitted_requests == 0  # inline, never queued


def test_submit_requires_running_server(engine9, dataset9):
    Pd, Qd = _requests_from(dataset9, [1])[0]
    server = AsyncServer(engine9)

    async def run():
        with pytest.raises(RuntimeError, match="not running"):
            await server.submit_loads(Pd, Qd)

    asyncio.run(run())


def test_stop_drains_admitted_backlog(engine9, dataset9):
    """Requests admitted before stop() are flushed, not abandoned."""
    Pd, Qd = _requests_from(dataset9, [2])[0]

    async def run():
        server = await AsyncServer(
            engine9, max_batch=8, max_wait_seconds=5.0
        ).start()
        task = asyncio.create_task(server.submit_loads(Pd, Qd))
        await asyncio.sleep(0)  # admitted, now parked waiting for partners
        await server.stop()
        return await task

    sweep = asyncio.run(run())
    assert sweep.n_scenarios == 2


def test_server_constructor_validation(engine9):
    with pytest.raises(ValueError):
        AsyncServer(engine9, max_batch=0)
    with pytest.raises(ValueError):
        AsyncServer(engine9, max_wait_seconds=-0.1)
    with pytest.raises(ValueError):
        AsyncServer(engine9, max_queue=0)
    with pytest.raises(ValueError):
        AsyncServer(engine9, deadline_slack_seconds=-1.0)

    async def run():
        async with AsyncServer(engine9) as server:
            with pytest.raises(ValueError, match="deadline_seconds"):
                await server.submit(
                    [Scenario(0, np.zeros(9), np.zeros(9))], deadline_seconds=0.0
                )

    asyncio.run(run())


def test_scenario_ids_and_order_preserved(engine9, case9_fixture):
    """Original (non-contiguous) scenario ids survive the renumbering."""
    base = generate_scenarios(case9_fixture, 4, seed=9)
    rows = [
        Scenario(17, base[0].Pd, base[0].Qd),
        Scenario(5, base[1].Pd, base[1].Qd),
    ]
    direct = engine9.serve(ScenarioSet(case9_fixture.name, rows))

    async def run():
        async with AsyncServer(engine9, max_wait_seconds=0.01) as server:
            return await server.submit(rows)

    sweep = asyncio.run(run())
    assert [o.scenario_id for o in sweep.outcomes] == [5, 17]
    _assert_bitwise_equal_sweeps(sweep, direct)
