"""Tests of the batched warm-start serving engine, fleet and fallback policies."""

import numpy as np
import pytest

from repro.engine import (
    CircuitBreaker,
    ColdRestartFallback,
    NoFallback,
    RelaxedWarmRetryFallback,
    WarmStartEngine,
    get_fallback_policy,
)
from repro.data import generate_dataset
from repro.opf import OPFOptions, relaxed_options, solve_opf
from repro.mips.options import MIPSOptions
from repro.parallel import ScenarioSet, SolverFleet, generate_scenarios, run_scenario_sweep


@pytest.fixture(scope="module")
def engine9(trained_trainer9):
    """Serving engine wrapping the shared trained case9 model."""
    return WarmStartEngine.from_trainer(trained_trainer9)


# -------------------------------------------------------------- batched inference
def test_warm_starts_for_is_batched(trained_trainer9, dataset9):
    inputs = dataset9.inputs[:6]
    warms = trained_trainer9.warm_starts_for(inputs)
    assert len(warms) == 6
    for i, warm in enumerate(warms):
        per_row = trained_trainer9.warm_start_for(inputs[i])
        np.testing.assert_allclose(warm.x, per_row.x, rtol=0, atol=1e-12)
        np.testing.assert_allclose(warm.mu, per_row.mu, rtol=0, atol=1e-12)
        assert np.all(warm.mu > 0) and np.all(warm.z > 0)


def test_engine_evaluate_matches_sequential_loop(engine9, trained_trainer9, case9_fixture, dataset9, opf_model9):
    """The engine's batched evaluation reproduces the per-row sequential loop."""
    subset = dataset9.subset(np.arange(5))
    evaluation = engine9.evaluate(subset)
    assert evaluation.n_problems == 5
    for i, record in enumerate(evaluation.records):
        warm = trained_trainer9.warm_start_for(subset.inputs[i])
        result = solve_opf(
            case9_fixture,
            warm_start=warm,
            Pd_mw=subset.Pd_mw[i],
            Qd_mvar=subset.Qd_mw[i],
            model=opf_model9,
        )
        assert record.success == result.success
        assert record.iterations_warm == result.iterations
        assert record.cost_warm == pytest.approx(result.objective, rel=1e-9)


def test_engine_evaluate_max_problems_and_validation(engine9, dataset9):
    limited = engine9.evaluate(dataset9, max_problems=2)
    assert limited.n_problems == 2
    with pytest.raises(ValueError):
        engine9.evaluate(dataset9, max_problems=0)


def test_engine_serve_scenarios(engine9, case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 4, seed=3)
    sweep = engine9.serve(scenarios)
    assert sweep.n_scenarios == 4
    assert sweep.success_rate >= 0.75
    # The fleet persists across calls; close() tears it down (and a later
    # serve lazily starts a fresh one).
    assert engine9.serve(scenarios).n_scenarios == 4
    assert 1 in engine9._fleets
    engine9.close()
    assert not engine9._fleets


def test_engine_serve_batch_execution_matches_scenario(trained_trainer9, case9_fixture):
    """A batch-mode engine serves the same outcomes as a scenario-mode one."""
    scenarios = generate_scenarios(case9_fixture, 6, variation=0.05, seed=13)
    with pytest.raises(ValueError, match="execution"):
        WarmStartEngine.from_trainer(trained_trainer9, execution="warp")
    with WarmStartEngine.from_trainer(trained_trainer9) as engine_scenario, \
            WarmStartEngine.from_trainer(trained_trainer9, execution="batch") as engine_batch:
        assert engine_batch.execution == "batch"
        sweep_scenario = engine_scenario.serve(scenarios)
        sweep_batch = engine_batch.serve(scenarios)
    assert sweep_batch.n_scenarios == sweep_scenario.n_scenarios
    for a, b in zip(sweep_scenario.outcomes, sweep_batch.outcomes):
        assert a.success == b.success
        if a.success:
            assert a.iterations == b.iterations
            assert a.objective == pytest.approx(b.objective, rel=1e-8)


def test_engine_serve_loads_matrix(engine9, case9_fixture):
    Pd = np.vstack([case9_fixture.bus.Pd, case9_fixture.bus.Pd * 1.02])
    Qd = np.vstack([case9_fixture.bus.Qd, case9_fixture.bus.Qd * 1.02])
    sweep = engine9.serve_loads(Pd, Qd)
    assert sweep.n_scenarios == 2
    assert sweep.success_rate == 1.0
    with pytest.raises(ValueError):
        engine9.serve_loads(Pd, Qd[:1])


# -------------------------------------------------------------- fallback policies
def test_get_fallback_policy_resolution():
    assert isinstance(get_fallback_policy("cold_restart"), ColdRestartFallback)
    assert isinstance(get_fallback_policy("relaxed_warm"), RelaxedWarmRetryFallback)
    assert isinstance(get_fallback_policy("none"), NoFallback)
    assert isinstance(get_fallback_policy(None), NoFallback)
    policy = RelaxedWarmRetryFallback(tolerance_scale=10.0)
    assert get_fallback_policy(policy) is policy
    with pytest.raises(ValueError):
        get_fallback_policy("bogus")


def test_relaxed_options_scales_all_tolerances():
    base = OPFOptions()
    relaxed = relaxed_options(base, 100.0)
    for name in ("feastol", "gradtol", "comptol", "costtol"):
        assert getattr(relaxed.mips, name) == pytest.approx(getattr(base.mips, name) * 100.0)
    # Untouched knobs carry over.
    assert relaxed.mips.max_it == base.mips.max_it
    assert relaxed.flow_limits == base.flow_limits
    with pytest.raises(ValueError):
        relaxed_options(base, 0.0)


class _Result:
    def __init__(self, success):
        self.success = success


def test_relaxed_warm_retry_policy_recovery_order():
    calls = []

    def solve(warm, options=None):
        calls.append((warm, options))
        return _Result(success=len(calls) >= 2)

    policy = RelaxedWarmRetryFallback(tolerance_scale=50.0)
    base = OPFOptions()
    warm = object()
    result = policy.recover(solve, warm, _Result(False), base)
    # First call: warm retry with relaxed tolerances; second: cold restart.
    assert result.success
    assert calls[0][0] is warm
    assert calls[0][1].mips.feastol == pytest.approx(base.mips.feastol * 50.0)
    assert calls[1][0] is None and calls[1][1] is base


def test_no_fallback_keeps_failure():
    policy = NoFallback()
    assert policy.recover(lambda *a, **k: _Result(True), None, _Result(False), OPFOptions()) is None


def test_sweep_fallback_recovers_failed_warm_solve(case9_fixture):
    """A starved warm solve fails; the cold-restart policy recovers it in-worker."""
    scenarios = generate_scenarios(case9_fixture, 2, seed=5)
    # A tiny iteration budget guarantees the (cold) first attempt fails ...
    starving = OPFOptions(mips=MIPSOptions(max_it=2))

    class _RestartWithDefaults(ColdRestartFallback):
        def recover(self, solve, warm, failed, options):
            # ... while the recovery runs with a workable budget.
            return solve(None, OPFOptions())

    sweep = run_scenario_sweep(
        case9_fixture,
        scenarios,
        options=starving,
        fallback=_RestartWithDefaults(),
    )
    for outcome in sweep.outcomes:
        assert not outcome.success
        assert outcome.iterations == 2
        assert outcome.used_fallback and outcome.fallback_success
        assert outcome.converged
        assert outcome.final_iterations == outcome.iterations_fallback > 2
        assert outcome.fallback_seconds > 0
        assert np.isfinite(outcome.final_objective)


def test_engine_evaluate_records_fallback_honestly(trained_trainer9, dataset9):
    """Warm-attempt numbers stay honest when the fallback runs (the old conflation bug)."""
    engine = WarmStartEngine.from_trainer(
        trained_trainer9,
        opf_options=OPFOptions(mips=MIPSOptions(max_it=1)),
        fallback="cold_restart",
    )
    evaluation = engine.evaluate(dataset9, max_problems=3)
    assert evaluation.fallback_rate == 1.0
    assert evaluation.success_rate == 0.0
    for record in evaluation.records:
        # The warm attempt burned exactly the starved budget — not the fallback's.
        assert record.iterations_warm == 1
        assert record.iterations_fallback == 1
        assert not record.success
        assert record.used_fallback
        assert record.restart_seconds > 0
        assert record.warm_solve_seconds > 0
        assert record.online_seconds >= record.warm_solve_seconds + record.restart_seconds


def test_sweep_relaxed_fallback_counts_every_recovery_solve(case9_fixture):
    """A relaxed retry that degrades to a cold restart charges both solves."""
    scenarios = generate_scenarios(case9_fixture, 1, seed=5)
    # Both the relaxed retry and the cold restart are iteration-starved, so the
    # recovery runs exactly two 2-iteration solves.
    starving = OPFOptions(mips=MIPSOptions(max_it=2))
    sweep = run_scenario_sweep(
        case9_fixture,
        scenarios,
        options=starving,
        fallback=RelaxedWarmRetryFallback(tolerance_scale=2.0),
    )
    (outcome,) = sweep.outcomes
    assert not outcome.success and outcome.used_fallback and not outcome.fallback_success
    assert outcome.iterations == 2
    assert outcome.iterations_fallback == 4  # relaxed retry (2) + cold restart (2)


# ------------------------------------------------ serving-path accounting fixes
def test_serve_empty_request_short_circuits(engine9, case9_fixture):
    """Empty requests return an empty generation-stamped sweep, no solves."""
    sweep = engine9.serve(ScenarioSet(case9_fixture.name, []))
    assert sweep.n_scenarios == 0
    assert sweep.outcomes == []
    assert sweep.model_generation == engine9.generation
    loads = engine9.serve_loads(
        np.zeros((0, case9_fixture.n_bus)), np.zeros((0, case9_fixture.n_bus))
    )
    assert loads.n_scenarios == 0
    assert loads.model_generation == engine9.generation


def test_empty_scenario_set_feature_matrix_is_shape_correct(case9_fixture):
    """`feature_matrix` on an empty set must not crash in ``np.vstack``.

    Any caller that batches, slices or coalesces requests can produce an
    empty set; carrying ``n_bus`` keeps the feature width shape-correct so
    batched inference (and anything downstream) handles zero rows uniformly.
    """
    n_bus = case9_fixture.n_bus
    empty = ScenarioSet(case9_fixture.name, [], n_bus=n_bus)
    assert empty.feature_matrix(case9_fixture.base_mva).shape == (0, 2 * n_bus)
    # Without n_bus there is nothing to infer from — degrade to width 0.
    assert ScenarioSet(case9_fixture.name, []).feature_matrix(100.0).shape == (0, 0)
    # Non-empty sets infer n_bus from their first scenario.
    populated = generate_scenarios(case9_fixture, 2, seed=0)
    assert populated.n_bus == n_bus
    assert populated.feature_matrix(case9_fixture.base_mva).shape == (2, 2 * n_bus)


def test_serve_empty_request_skips_health_machinery(trained_trainer9, case9_fixture):
    """An empty request must not feed the breaker (it served zero scenarios)."""
    breaker = CircuitBreaker(window=4, threshold=0.5, min_observations=2, cooldown=8)
    engine = WarmStartEngine.from_trainer(trained_trainer9, breaker=breaker)
    try:
        sweep = engine.serve(ScenarioSet(case9_fixture.name, []))
        assert sweep.n_scenarios == 0
        assert breaker.health.n_observations == 0
        assert breaker.trips == 0 and breaker.state == CircuitBreaker.CLOSED
    finally:
        engine.close()


def test_evaluate_drives_breaker_like_serve(trained_trainer9, dataset9):
    """Evaluate-path fallbacks drive the breaker exactly like serve-path ones.

    ``evaluate`` used to snapshot ``breaker.trips`` once before its record
    loop and never feed the breaker at all, so evaluation traffic was
    invisible to the health machinery and every record carried the same stale
    trip count.
    """
    n = 5

    def starved(breaker):
        # max_it=1 guarantees every warm attempt fails, so each scenario is
        # one fallback observation — enough to trip a 2-observation breaker.
        return WarmStartEngine.from_trainer(
            trained_trainer9,
            opf_options=OPFOptions(mips=MIPSOptions(max_it=1)),
            fallback="cold_restart",
            breaker=breaker,
        )

    serve_breaker = CircuitBreaker(window=4, threshold=0.5, min_observations=2, cooldown=100)
    eval_breaker = CircuitBreaker(window=4, threshold=0.5, min_observations=2, cooldown=100)
    serve_engine = starved(serve_breaker)
    eval_engine = starved(eval_breaker)
    try:
        serve_engine.serve_loads(dataset9.Pd_mw[:n], dataset9.Qd_mw[:n])
        evaluation = eval_engine.evaluate(dataset9, max_problems=n)
    finally:
        serve_engine.close()
        eval_engine.close()
    assert eval_breaker.trips == serve_breaker.trips > 0
    assert eval_breaker.state == serve_breaker.state
    # Each record snapshots the trip count *after* its own outcome landed:
    # record 0 precedes min_observations, record 1 trips the breaker, the
    # open breaker then just counts cooldown.
    assert [record.fallback_trips for record in evaluation.records] == [0, 1, 1, 1, 1]
    assert evaluation.records[-1].fallback_trips == eval_breaker.trips


def test_serving_inference_is_batch_width_invariant(engine9, dataset9):
    """Row predictions are bitwise identical whatever batch width served them.

    The async batcher coalesces requests into arbitrary flush widths, so the
    serving forward pass pins every matmul to one canonical gemm shape —
    a row's bits must not depend on how the batcher cut its flush.
    """
    inputs = dataset9.inputs[:5]
    full = engine9.predict_physical(inputs)
    per_row = [engine9.predict_physical(inputs[i : i + 1]) for i in range(5)]
    head = engine9.predict_physical(inputs[:2])
    tail = engine9.predict_physical(inputs[2:])
    for key, value in full.items():
        np.testing.assert_array_equal(
            np.vstack([chunk[key] for chunk in per_row]), value
        )
        np.testing.assert_array_equal(np.vstack([head[key], tail[key]]), value)


# ------------------------------------------------------------------------ fleet
def test_solver_fleet_persists_and_closes(case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 3, seed=7)
    fleet = SolverFleet(case9_fixture)
    first = fleet.solve(scenarios)
    second = fleet.solve(scenarios)
    assert first.n_scenarios == second.n_scenarios == 3
    assert [o.iterations for o in first.outcomes] == [o.iterations for o in second.outcomes]
    fleet.close()
    fleet.close()  # idempotent
    with pytest.raises(RuntimeError):
        fleet.solve(scenarios)
    with pytest.raises(ValueError):
        SolverFleet(case9_fixture, n_workers=0)


def test_fleet_spawn_workers_roundtrip(case9_fixture):
    """Two real spawn workers: policies, warm starts and solutions all pickle."""
    scenarios = generate_scenarios(case9_fixture, 4, seed=9)
    sweep = run_scenario_sweep(
        case9_fixture,
        scenarios,
        n_workers=2,
        fallback=ColdRestartFallback(),
        collect_solutions=True,
    )
    assert sweep.n_scenarios == 4
    assert sweep.success_rate == 1.0
    assert {o.worker for o in sweep.outcomes} == {0, 1}
    assert all(o.solution is not None for o in sweep.outcomes)
    # Identical to the in-process fleet (same solves, different processes).
    inline = run_scenario_sweep(case9_fixture, scenarios, n_workers=1)
    assert [o.iterations for o in sweep.outcomes] == [o.iterations for o in inline.outcomes]


def test_sweep_warm_start_count_validation(case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 2, seed=0)
    with pytest.raises(ValueError):
        run_scenario_sweep(case9_fixture, scenarios, warm_starts=[None])


# ---------------------------------------------------------- pooled ground truth
def test_pooled_dataset_generation_matches_direct_solves(case9_fixture, opf_model9):
    """The pooled scenario-mode path reproduces per-sample direct solves exactly.

    The default (lockstep batch) path evaluates callbacks batch-vectorised, so
    it matches per-sample solves to solver-tolerance precision — identical
    iteration counts, objectives to 1e-12 — rather than bit-for-bit.
    """
    from repro.grid.perturb import sample_loads

    dataset = generate_dataset(
        case9_fixture, 5, seed=42, model=opf_model9, execution="scenario"
    )
    batch_set = generate_dataset(case9_fixture, 5, seed=42, model=opf_model9)
    samples = sample_loads(case9_fixture, 5, variation=0.1, seed=42)
    assert dataset.n_samples == batch_set.n_samples == 5
    for i, sample in enumerate(samples):
        result = solve_opf(
            case9_fixture, Pd_mw=sample.Pd, Qd_mvar=sample.Qd, model=opf_model9
        )
        assert result.success
        assert dataset.iterations[i] == result.iterations
        assert dataset.objectives[i] == pytest.approx(result.objective, rel=1e-12)
        parts = opf_model9.idx.split(result.x)
        np.testing.assert_array_equal(dataset.targets["Vm"][i], parts["Vm"])
        np.testing.assert_array_equal(dataset.targets["lam"][i], result.lam)
        np.testing.assert_array_equal(dataset.targets["mu"][i], result.mu)
        # Default batch-mode generation: same trajectories, same supervision
        # signal, solver-precision equality.
        assert batch_set.iterations[i] == result.iterations
        assert batch_set.objectives[i] == pytest.approx(result.objective, rel=1e-12)
        np.testing.assert_allclose(batch_set.targets["Vm"][i], parts["Vm"], atol=1e-9)
        np.testing.assert_allclose(batch_set.targets["lam"][i], result.lam, atol=1e-7)
        np.testing.assert_allclose(batch_set.targets["mu"][i], result.mu, atol=1e-7)


def test_generate_dataset_collects_solutions_only_internally(case9_fixture, opf_model9):
    """Solution payloads power dataset assembly but stay out of plain sweeps."""
    scenarios = generate_scenarios(case9_fixture, 2, seed=1)
    plain = run_scenario_sweep(case9_fixture, scenarios)
    assert all(o.solution is None for o in plain.outcomes)
    collecting = run_scenario_sweep(case9_fixture, scenarios, collect_solutions=True)
    for outcome in collecting.outcomes:
        assert outcome.solution is not None
        assert outcome.solution.x.shape == (opf_model9.idx.nx,)
