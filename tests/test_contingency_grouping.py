"""Cross-sweep contingency batching parity: grouped == per-sweep, bit for bit.

Outage-heavy SC-ACOPF screening runs many N-1 sweeps whose scenarios repeat
the same outage branches.  :meth:`SolverFleet.solve_many` merges such sweeps
into one elastic dispatch so same-branch scenarios of different sweeps share
one lockstep group (served by the workers' memoized per-branch batched
models).  Grouping must be a pure scheduling decision: every scenario's
iterations, objective and multipliers must match the per-sweep path exactly —
including scenarios whose warm attempt fails and is recovered by the fallback
policy, whose accounting must survive the regrouping untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.fallback import get_fallback_policy
from repro.grid import get_case
from repro.grid.perturb import sample_loads
from repro.opf import OPFModel, solve_opf
from repro.opf.warmstart import WarmStart
from repro.parallel import Scenario, ScenarioSet, SolverFleet


def _outage_candidates(case, count):
    """First ``count`` branches whose removal keeps every bus degree >= 1."""
    f, t = case.branch_bus_indices()
    live = case.branch.status > 0
    degree = np.bincount(f[live], minlength=case.n_bus) + np.bincount(
        t[live], minlength=case.n_bus
    )
    candidates = np.flatnonzero(live & (degree[f] > 1) & (degree[t] > 1))
    assert candidates.size >= count
    return [int(b) for b in candidates[:count]]


def _n1_sweeps(case, branches, per_sweep, n_sweeps, seed):
    """N-1 screening sweeps cycling over a shared outage-branch set."""
    samples = sample_loads(case, per_sweep * n_sweeps, variation=0.05, seed=seed)
    sweeps = []
    k = 0
    for _ in range(n_sweeps):
        scenarios = []
        for i in range(per_sweep):
            outage = branches[k % len(branches)] if i % 2 == 0 else None
            scenarios.append(
                Scenario(i, samples[k].Pd, samples[k].Qd, outage_branch=outage)
            )
            k += 1
        sweeps.append(ScenarioSet(case.name, scenarios))
    return sweeps


def _assert_sweeps_bitwise(per_sweep_results, grouped_results):
    for sep, grp in zip(per_sweep_results, grouped_results):
        assert grp.n_scenarios == sep.n_scenarios
        for a, b in zip(sep.outcomes, grp.outcomes):
            assert a.scenario_id == b.scenario_id
            assert a.success == b.success
            assert a.converged == b.converged
            assert a.iterations == b.iterations
            assert a.used_fallback == b.used_fallback
            assert a.fallback_success == b.fallback_success
            assert a.iterations_fallback == b.iterations_fallback
            if a.success:
                assert a.objective == b.objective
            if a.used_fallback and a.fallback_success:
                assert a.objective_fallback == b.objective_fallback
            if a.solution is not None:
                assert b.solution is not None
                assert np.array_equal(a.solution.x, b.solution.x)
                assert np.array_equal(a.solution.lam, b.solution.lam)
                assert np.array_equal(a.solution.mu, b.solution.mu)
                assert np.array_equal(a.solution.z, b.solution.z)


@pytest.mark.parametrize("case_name", ["case14", "case118s"])
def test_grouped_n1_screening_matches_per_sweep_bitwise(case_name):
    case = get_case(case_name)
    branches = _outage_candidates(case, 2)
    per_sweep = 4 if case_name == "case118s" else 6
    sweeps = _n1_sweeps(case, branches, per_sweep=per_sweep, n_sweeps=2, seed=3)
    # The sweeps genuinely share outage branches (the fragmentation scenario).
    shared = set.intersection(
        *({s.outage_branch for s in sweep if s.outage_branch is not None} for sweep in sweeps)
    )
    assert shared

    with SolverFleet(
        case,
        execution="batch",
        schedule="steal",
        microbatch=3,
        collect_solutions=True,
    ) as fleet:
        separate = [fleet.solve(sweep) for sweep in sweeps]
        grouped = fleet.solve_many(sweeps)
    _assert_sweeps_bitwise(separate, grouped)


def test_grouped_parity_with_mixed_fallback_members():
    """A poisoned warm start fails identically under grouping and recovers."""
    case = get_case("case14")
    branches = _outage_candidates(case, 2)
    sweeps = _n1_sweeps(case, branches, per_sweep=4, n_sweeps=2, seed=7)

    model = OPFModel(case)
    good = solve_opf(case, model=model).warm_start()
    poisoned = WarmStart(x=good.x * 200.0, lam=good.lam, mu=good.mu, z=good.z)
    # One poisoned load-only member in the first sweep, the rest cold.
    warm_lists = [[None] * 4 for _ in sweeps]
    warm_lists[0][1] = poisoned

    with SolverFleet(
        case,
        execution="batch",
        schedule="steal",
        microbatch=2,
        fallback=get_fallback_policy("cold_restart"),
        collect_solutions=True,
    ) as fleet:
        separate = [fleet.solve(sweep, warms) for sweep, warms in zip(sweeps, warm_lists)]
        grouped = fleet.solve_many(sweeps, warm_lists)

    poisoned_outcome = grouped[0].outcomes[1]
    assert not poisoned_outcome.success
    assert poisoned_outcome.used_fallback and poisoned_outcome.fallback_success
    assert poisoned_outcome.converged
    _assert_sweeps_bitwise(separate, grouped)


def test_solve_many_wall_and_share_semantics():
    """Each grouped sweep records the joint wall; shares stay additive."""
    case = get_case("case14")
    branches = _outage_candidates(case, 2)
    sweeps = _n1_sweeps(case, branches, per_sweep=4, n_sweeps=2, seed=9)
    with SolverFleet(case, execution="batch", schedule="steal", microbatch=2) as fleet:
        grouped = fleet.solve_many(sweeps)
    assert grouped[0].wall_seconds == grouped[1].wall_seconds
    total_share = sum(sweep.total_solver_seconds() for sweep in grouped)
    assert 0.0 < total_share <= grouped[0].wall_seconds + 1e-6
