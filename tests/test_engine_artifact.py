"""Artifact round-trip and ``nn/serialization`` coverage.

The key guarantee: an engine reloaded from disk reproduces the original
engine's predictions *bit for bit* (including the sigmoid-bounded ``z``/``µ``
heads and the normalizer statistics), so a deployment can be reconstructed
without retraining and without numerical drift.
"""

import numpy as np
import pytest

from repro.engine import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMismatchError,
    WarmStartEngine,
    case_fingerprint,
    load_artifact,
    save_artifact,
)
from repro.mtl import DatasetNormalizer, SeparateTaskNetworks, TaskDimensions, fast_config
from repro.nn.modules import Linear, Sequential
from repro.nn.serialization import (
    CHECKSUM_KEY,
    BundleIntegrityError,
    load_bundle,
    load_module,
    load_state_dict,
    save_bundle,
    save_module,
    save_state_dict,
)
from repro.testing.faults import corrupt_artifact_bytes


@pytest.fixture(scope="module")
def engine9(trained_trainer9):
    return WarmStartEngine.from_trainer(trained_trainer9, fallback="relaxed_warm")


# ------------------------------------------------------------- nn/serialization
def test_state_dict_roundtrip(tmp_path):
    module = Sequential(Linear(4, 8, rng=0), Linear(8, 2, rng=1))
    path = save_state_dict(module.state_dict(), tmp_path / "weights.npz")
    loaded = load_state_dict(path)
    assert set(loaded) == set(module.state_dict())
    for name, value in module.state_dict().items():
        np.testing.assert_array_equal(loaded[name], value)


def test_save_load_module_roundtrip(tmp_path):
    module = Sequential(Linear(3, 5, rng=0))
    path = save_module(module, tmp_path / "mod.npz")
    twin = Sequential(Linear(3, 5, rng=99))
    load_module(twin, path)
    np.testing.assert_array_equal(twin.state_dict()["layer0.weight"], module.state_dict()["layer0.weight"])


def test_bundle_roundtrip_and_reserved_key(tmp_path):
    arrays = {"a": np.arange(6, dtype=float).reshape(2, 3), "nested/b": np.ones(2)}
    meta = {"version": 1, "note": "hello", "weights": {"x": 0.5}}
    path = save_bundle(tmp_path / "bundle.npz", arrays, meta)
    loaded_arrays, loaded_meta = load_bundle(path)
    assert loaded_meta == meta
    assert set(loaded_arrays) == set(arrays)
    np.testing.assert_array_equal(loaded_arrays["nested/b"], arrays["nested/b"])
    with pytest.raises(ValueError):
        save_bundle(tmp_path / "bad.npz", {"__meta__": np.ones(1)}, {})


def test_load_bundle_rejects_plain_npz(tmp_path):
    np.savez(tmp_path / "plain.npz", a=np.ones(2))
    with pytest.raises(ValueError):
        load_bundle(tmp_path / "plain.npz")


# --------------------------------------------------------------- bundle integrity
def test_bundle_carries_verifiable_checksum(tmp_path):
    path = save_bundle(tmp_path / "b.npz", {"a": np.arange(4.0)}, {"v": 1})
    with np.load(path, allow_pickle=False) as data:
        assert CHECKSUM_KEY in data.files
    arrays, meta = load_bundle(path)  # verifies without raising
    assert CHECKSUM_KEY not in arrays and meta == {"v": 1}
    with pytest.raises(ValueError, match="reserved"):
        save_bundle(tmp_path / "bad.npz", {CHECKSUM_KEY: np.ones(1)}, {})


def test_corrupted_bundle_raises_integrity_error(tmp_path):
    path = save_bundle(
        tmp_path / "b.npz", {"a": np.arange(64.0), "b": np.ones((8, 8))}, {"v": 1}
    )
    corrupt_artifact_bytes(path)
    with pytest.raises(BundleIntegrityError):
        load_bundle(path)


def test_truncated_bundle_raises_integrity_error(tmp_path):
    path = save_bundle(tmp_path / "b.npz", {"a": np.arange(64.0)}, {"v": 1})
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(BundleIntegrityError):
        load_bundle(path)


# ------------------------------------------------------------ case fingerprints
def test_case_fingerprint_ignores_name_but_not_data(case9_fixture):
    renamed = case9_fixture.copy()
    renamed.name = "something-else"
    assert case_fingerprint(renamed) == case_fingerprint(case9_fixture)
    perturbed = case9_fixture.copy()
    perturbed.branch.x[0] *= 1.001
    assert case_fingerprint(perturbed) != case_fingerprint(case9_fixture)


# ------------------------------------------------------------ artifact roundtrip
def test_artifact_roundtrip_bit_identical(engine9, case9_fixture, dataset9, tmp_path):
    path = save_artifact(engine9, tmp_path / "engine.npz")
    reloaded = load_artifact(path, case9_fixture)

    inputs = dataset9.inputs
    original = engine9.predict_physical(inputs)
    restored = reloaded.predict_physical(inputs)
    for task in original:
        np.testing.assert_array_equal(restored[task], original[task])
    # The sigmoid-bounded z/µ heads must survive exactly: in normalised space
    # their outputs stay inside the hard [0, 1] box.
    norm_in = engine9.normalizer.normalize_inputs(inputs)
    for task in ("z", "mu"):
        norm_out = reloaded.network.predict(np.asarray(norm_in))[task]
        assert np.all(norm_out > 0.0) and np.all(norm_out < 1.0)

    # Identical warm starts from the reloaded engine.
    for warm_a, warm_b in zip(engine9.warm_starts_for(inputs), reloaded.warm_starts_for(inputs)):
        np.testing.assert_array_equal(warm_a.x, warm_b.x)
        np.testing.assert_array_equal(warm_a.lam, warm_b.lam)
        np.testing.assert_array_equal(warm_a.mu, warm_b.mu)
        np.testing.assert_array_equal(warm_a.z, warm_b.z)


def test_artifact_restores_normalizer_config_and_fallback(engine9, case9_fixture, tmp_path):
    path = engine9.save_artifact(tmp_path / "engine.npz")
    reloaded = WarmStartEngine.load_artifact(path, case9_fixture)
    np.testing.assert_array_equal(reloaded.normalizer.inputs.lo, engine9.normalizer.inputs.lo)
    np.testing.assert_array_equal(reloaded.normalizer.inputs.span, engine9.normalizer.inputs.span)
    for task, scaler in engine9.normalizer.tasks.items():
        np.testing.assert_array_equal(reloaded.normalizer.tasks[task].lo, scaler.lo)
        np.testing.assert_array_equal(reloaded.normalizer.tasks[task].span, scaler.span)
    assert reloaded.config == engine9.config
    assert reloaded.opf_options == engine9.opf_options
    assert reloaded.fallback.name == "relaxed_warm"
    # Deployment-time overrides win over the persisted policy, and an explicit
    # ``None`` means "no recovery" exactly as everywhere else in the API.
    assert WarmStartEngine.load_artifact(path, case9_fixture, fallback="none").fallback.name == "none"
    assert WarmStartEngine.load_artifact(path, case9_fixture, fallback=None).fallback.name == "none"


def test_artifact_mismatched_case_raises(engine9, case14_fixture, tmp_path):
    path = save_artifact(engine9, tmp_path / "engine.npz")
    with pytest.raises(ArtifactMismatchError, match="fingerprint"):
        load_artifact(path, case14_fixture)


def test_artifact_rejects_non_artifact_file(case9_fixture, tmp_path):
    np.savez(tmp_path / "not_an_artifact.npz", a=np.ones(3))
    with pytest.raises(ArtifactError):
        load_artifact(tmp_path / "not_an_artifact.npz", case9_fixture)


def test_byte_corrupted_artifact_raises_typed_error(engine9, case9_fixture, tmp_path):
    """Flipped payload bytes surface as ArtifactCorruptError, not garbage."""
    path = save_artifact(engine9, tmp_path / "engine.npz")
    load_artifact(path, case9_fixture)  # healthy before corruption
    corrupt_artifact_bytes(path)
    with pytest.raises(ArtifactCorruptError):
        load_artifact(path, case9_fixture)
    # The typed error is still an ArtifactError (and distinct from a mismatch).
    assert issubclass(ArtifactCorruptError, ArtifactError)
    assert not issubclass(ArtifactCorruptError, ArtifactMismatchError)


def test_artifact_roundtrip_separate_networks(case9_fixture, dataset9, opf_model9, tmp_path):
    """The separate-networks baseline persists under its own model-type tag."""
    dims = TaskDimensions(
        n_bus=case9_fixture.n_bus,
        n_gen=case9_fixture.n_gen,
        n_eq=dataset9.task_dim("lam"),
        n_ineq=dataset9.task_dim("mu"),
    )
    config = fast_config(epochs=1)
    network = SeparateTaskNetworks(dims, config, seed=3)
    normalizer = DatasetNormalizer.fit(dataset9.inputs, dataset9.targets)
    engine = WarmStartEngine(
        case9_fixture, network, normalizer, config=config, opf_model=opf_model9
    )
    path = save_artifact(engine, tmp_path / "separate.npz")
    reloaded = load_artifact(path, case9_fixture, opf_model=opf_model9)
    assert isinstance(reloaded.network, SeparateTaskNetworks)
    original = engine.predict_physical(dataset9.inputs[:3])
    restored = reloaded.predict_physical(dataset9.inputs[:3])
    for task in original:
        np.testing.assert_array_equal(restored[task], original[task])


# ---------------------------------------------------------- crash-safe writes
def _aborting_savez(fh, **payload):
    """Stand-in for a process killed mid-write: partial bytes, then death."""
    fh.write(b"PK\x03\x04 partial archive torn off mid-write")
    raise KeyboardInterrupt("simulated kill during artifact save")


def test_aborted_save_never_corrupts_published_artifact(
    engine9, case9_fixture, tmp_path, monkeypatch
):
    """A write killed mid-save leaves the previously published artifact intact."""
    path = tmp_path / "live.npz"
    save_artifact(engine9, path)
    healthy = load_artifact(path, case9_fixture)
    expected = healthy.predict_physical(np.zeros((1, 2 * case9_fixture.n_bus)))

    import repro.nn.serialization as serialization

    monkeypatch.setattr(serialization.np, "savez", _aborting_savez)
    with pytest.raises(KeyboardInterrupt):
        save_artifact(engine9, path)
    monkeypatch.undo()

    # The published path still holds the old, fully intact artifact …
    reloaded = load_artifact(path, case9_fixture)
    served = reloaded.predict_physical(np.zeros((1, 2 * case9_fixture.n_bus)))
    for task in expected:
        np.testing.assert_array_equal(served[task], expected[task])
    # … and no temp debris was left next to it.
    assert [p.name for p in tmp_path.iterdir()] == ["live.npz"]


def test_aborted_save_of_new_artifact_leaves_no_file(
    engine9, tmp_path, monkeypatch
):
    """A first-time save killed mid-write publishes nothing at all."""
    import repro.nn.serialization as serialization

    path = tmp_path / "fresh.npz"
    monkeypatch.setattr(serialization.np, "savez", _aborting_savez)
    with pytest.raises(KeyboardInterrupt):
        save_artifact(engine9, path)
    assert not path.exists()
    assert list(tmp_path.iterdir()) == []
