"""Tests of the scenario sweep substrate, the cluster scaling model and utilities."""

import numpy as np
import pytest

from repro.parallel import (
    ClusterModel,
    PAPER_WORKER_COUNTS,
    calibrate_from_inference,
    generate_scenarios,
    run_scenario_sweep,
)
from repro.utils import Timer, ensure_rng, spawn_rngs, timed
from repro.utils.rng import derive_seed


# ------------------------------------------------------------------------ scenarios
def test_generate_scenarios_counts_and_bounds(case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 20, variation=0.1, seed=0)
    assert len(scenarios) == 20
    nominal = case9_fixture.bus.Pd
    for s in scenarios:
        loaded = nominal > 0
        assert np.all(s.Pd[loaded] >= 0.9 * nominal[loaded] - 1e-9)
        assert np.all(s.Pd[loaded] <= 1.1 * nominal[loaded] + 1e-9)
        assert s.outage_branch is None


def test_generate_scenarios_with_contingencies(case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 30, contingency_fraction=1.0, seed=1)
    outages = [s.outage_branch for s in scenarios if s.outage_branch is not None]
    assert len(outages) == 30
    applied = scenarios[0].apply(case9_fixture)
    assert applied.branch.status[scenarios[0].outage_branch] == 0
    # Original untouched.
    assert case9_fixture.branch.status.sum() == 9


def test_scenario_chunking_covers_everything(case9_fixture):
    from repro.parallel import balanced_assignment

    scenarios = generate_scenarios(case9_fixture, 11, seed=2)
    chunks = balanced_assignment(list(scenarios), [None] * 11, 3)
    assert sorted(i for chunk in chunks for i in chunk) == list(range(11))
    # Equal predicted costs degrade to a near-equal count split.
    assert max(len(c) for c in chunks) - min(len(c) for c in chunks) <= 1
    features = scenarios.feature_matrix(case9_fixture.base_mva)
    assert features.shape == (11, 18)


def test_generate_scenarios_validation(case9_fixture):
    with pytest.raises(ValueError):
        generate_scenarios(case9_fixture, 5, contingency_fraction=1.5)


# ------------------------------------------------------------------------ pool sweep
def test_scenario_sweep_serial(case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 4, seed=3)
    result = run_scenario_sweep(case9_fixture, scenarios, n_workers=1)
    assert result.n_scenarios == 4
    assert result.success_rate == 1.0
    assert result.wall_seconds > 0
    assert result.total_solver_seconds() > 0
    assert result.throughput > 0
    assert [o.scenario_id for o in result.outcomes] == [0, 1, 2, 3]


def test_scenario_sweep_warm_starts(case9_fixture, trained_trainer9):
    scenarios = generate_scenarios(case9_fixture, 3, seed=4)
    warm = [
        trained_trainer9.warm_start_for(s.feature_vector(case9_fixture.base_mva))
        for s in scenarios
    ]
    cold = run_scenario_sweep(case9_fixture, scenarios, n_workers=1)
    warm_result = run_scenario_sweep(case9_fixture, scenarios, warm_starts=warm, n_workers=1)
    assert warm_result.success_rate == 1.0
    mean_cold = np.mean([o.iterations for o in cold.outcomes])
    mean_warm = np.mean([o.iterations for o in warm_result.outcomes])
    assert mean_warm < mean_cold


def test_scenario_sweep_applies_branch_outage(case14_fixture):
    """An N-1 scenario must be solved on the outaged network, not the base one."""
    from repro.opf import solve_opf
    from repro.parallel.scenarios import ScenarioSet

    case = case14_fixture
    scenarios = generate_scenarios(case, 1, contingency_fraction=1.0, seed=6)
    scenario = scenarios[0]
    assert scenario.outage_branch is not None

    direct = solve_opf(scenario.apply(case))
    intact = solve_opf(case, Pd_mw=scenario.Pd, Qd_mvar=scenario.Qd)
    assert direct.success and intact.success
    # The outage actually changes the dispatch (otherwise this test is vacuous).
    assert abs(direct.objective - intact.objective) > 1e-8

    sweep = run_scenario_sweep(case, ScenarioSet(case.name, [scenario]), n_workers=1)
    assert sweep.success_rate == 1.0
    assert sweep.outcomes[0].objective == pytest.approx(direct.objective, rel=1e-8)


def test_scenario_sweep_validation(case9_fixture):
    scenarios = generate_scenarios(case9_fixture, 2, seed=5)
    with pytest.raises(ValueError):
        run_scenario_sweep(case9_fixture, scenarios, warm_starts=[None], n_workers=1)
    with pytest.raises(ValueError):
        run_scenario_sweep(case9_fixture, scenarios, n_workers=0)


# --------------------------------------------------------------------- cluster model
def test_cluster_model_strong_scaling_monotone():
    model = ClusterModel(throughput=100.0)
    speedups = model.strong_scaling(10_000, PAPER_WORKER_COUNTS)
    assert speedups[1] == pytest.approx(1.0)
    values = [speedups[w] for w in PAPER_WORKER_COUNTS]
    assert all(b > a for a, b in zip(values, values[1:]))
    # Sub-linear: communication and imbalance keep it below ideal.
    assert speedups[128] < 128


def test_cluster_model_weak_scaling_rate_increases():
    model = ClusterModel(throughput=50.0)
    rates = model.weak_scaling(1000, [1, 16, 64])
    assert rates[16] > rates[1]
    assert rates[64] > rates[16]


def test_cluster_model_efficiency_decreases():
    model = ClusterModel(throughput=200.0)
    eff = model.efficiency(10_000, [1, 16, 128])
    assert eff[1] == pytest.approx(1.0)
    assert eff[128] < eff[16] <= 1.0


def test_cluster_model_validation():
    with pytest.raises(ValueError):
        ClusterModel(throughput=0.0)
    with pytest.raises(ValueError):
        ClusterModel(throughput=1.0, broadcast_base=-1)
    with pytest.raises(ValueError):
        ClusterModel(throughput=1.0).time_for(0, 1)


def test_calibrate_from_inference_measures_throughput():
    model = calibrate_from_inference(lambda batch: batch * 2, np.ones((256, 4)), repeats=2)
    assert model.throughput > 0
    with pytest.raises(ValueError):
        calibrate_from_inference(lambda b: b, np.ones((2, 2)), repeats=0)


# ----------------------------------------------------------------------------- utils
def test_ensure_rng_accepts_everything():
    assert isinstance(ensure_rng(None), np.random.Generator)
    gen = ensure_rng(5)
    assert ensure_rng(gen) is gen
    assert isinstance(ensure_rng(np.random.SeedSequence(1)), np.random.Generator)


def test_spawn_rngs_independent_and_deterministic():
    a = spawn_rngs(7, 3)
    b = spawn_rngs(7, 3)
    assert len(a) == 3
    assert a[0].random() == b[0].random()
    assert a[1].random() != a[2].random()
    with pytest.raises(ValueError):
        spawn_rngs(0, -1)


def test_derive_seed_stable():
    assert derive_seed(1, 2) == derive_seed(1, 2)
    assert derive_seed(1, 2) != derive_seed(1, 3)


def test_timer_sections_and_merge():
    timer = Timer()
    with timer.section("a"):
        pass
    timer.add("b", 1.5)
    assert timer.total("b") == pytest.approx(1.5)
    assert timer.overall() >= 1.5
    other = Timer()
    other.add("b", 0.5)
    timer.merge(other)
    assert timer.total("b") == pytest.approx(2.0)
    assert timer.as_dict()["b"] == pytest.approx(2.0)


def test_timed_contextmanager():
    with timed() as t:
        sum(range(1000))
    assert t.seconds >= 0
