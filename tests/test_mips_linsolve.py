"""Tests of the pluggable KKT linear-solver layer and the sparse structure caches."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.mips import (
    FactorizedSolver,
    KKTSolveError,
    MIPSOptions,
    SpsolveSolver,
    available_kkt_solvers,
    make_kkt_solver,
    qps_mips,
    register_kkt_solver,
)
from repro.mips.linsolve import _SOLVERS
from repro.utils.sparse import (
    CachedBmat,
    CachedTranspose,
    col_scaled_csr,
    row_scaled_csr,
)


# ------------------------------------------------------------- structure caches
def _random_csr(rng, m, n, density=0.3, complex_=False):
    mat = sp.random(m, n, density=density, random_state=rng, format="csr")
    if complex_:
        mat = mat + 1j * sp.random(m, n, density=density, random_state=rng, format="csr")
    mat.sum_duplicates()
    mat.sort_indices()
    return mat


def test_cached_bmat_matches_scipy_bmat():
    rng = np.random.RandomState(0)
    A = _random_csr(rng, 4, 5)
    B = _random_csr(rng, 4, 3)
    C = _random_csr(rng, 2, 5)
    cache = CachedBmat("csr")
    blocks = [[A, B], [C, None]]
    out = cache.assemble(blocks)
    ref = sp.bmat(blocks, format="csr")
    assert np.allclose(out.toarray(), ref.toarray())
    assert cache.misses == 1 and cache.hits == 0

    # Same pattern, new values -> fast path, identical result.
    A2 = A.copy()
    A2.data = A2.data * 3.0 - 1.0
    out2 = cache.assemble([[A2, B], [C, None]])
    ref2 = sp.bmat([[A2, B], [C, None]], format="csr")
    assert np.allclose(out2.toarray(), ref2.toarray())
    assert cache.hits == 1

    # The returned matrix owns its data: a later assemble must not mutate it.
    before = out2.toarray()
    cache.assemble([[A, B], [C, None]])
    assert np.allclose(out2.toarray(), before)


def test_cached_bmat_rebuilds_on_pattern_change():
    rng = np.random.RandomState(1)
    cache = CachedBmat("csc")
    A = _random_csr(rng, 3, 3, density=0.5)
    out = cache.assemble([[A]])
    assert np.allclose(out.toarray(), A.toarray())
    B = _random_csr(rng, 3, 3, density=0.9)
    out = cache.assemble([[B]])
    assert np.allclose(out.toarray(), B.toarray())
    assert cache.misses == 2


def test_cached_bmat_complex_and_empty_blocks():
    rng = np.random.RandomState(2)
    A = _random_csr(rng, 3, 4, complex_=True)
    Z = sp.csr_matrix((3, 2))
    cache = CachedBmat("csr")
    out = cache.assemble([[A, Z]])
    ref = sp.bmat([[A, Z]], format="csr")
    assert np.allclose(out.toarray(), ref.toarray())


def test_cached_transpose_matches_scipy():
    rng = np.random.RandomState(3)
    tr = CachedTranspose()
    A = _random_csr(rng, 5, 7, complex_=True)
    out = tr.transpose(A)
    assert np.allclose(out.toarray(), A.T.toarray())
    A2 = A.copy()
    A2.data = A2.data * (2.0 - 0.5j)
    out2 = tr.transpose(A2)
    assert np.allclose(out2.toarray(), A2.T.toarray())


def test_scaled_csr_helpers_match_diag_products():
    rng = np.random.RandomState(4)
    A = _random_csr(rng, 6, 4, complex_=True)
    r = rng.standard_normal(6) + 1j * rng.standard_normal(6)
    c = rng.standard_normal(4)
    assert np.allclose(
        row_scaled_csr(A, r).toarray(), (sp.diags(r) @ A).toarray()
    )
    assert np.allclose(
        col_scaled_csr(A, c).toarray(), (A @ sp.diags(c)).toarray()
    )


# ----------------------------------------------------------------- KKT backends
def _random_system(seed=0, n=60):
    rng = np.random.RandomState(seed)
    A = sp.random(n, n, density=0.1, random_state=rng, format="csc")
    A = A + sp.diags(np.ones(n) * 3.0)
    rhs = rng.standard_normal(n)
    return sp.csc_matrix(A), rhs


@pytest.mark.parametrize("name", ["factorized", "spsolve"])
def test_backends_solve_a_well_posed_system(name):
    kkt, rhs = _random_system()
    solver = make_kkt_solver(name)
    x = solver.solve(kkt, rhs)
    assert np.allclose(kkt @ x, rhs, atol=1e-9)
    assert solver.factor_seconds >= 0.0


def test_factorized_solver_reuses_symbolic_pattern():
    kkt, rhs = _random_system(seed=1)
    solver = FactorizedSolver()
    x1 = solver.solve(kkt, rhs)
    assert solver.symbolic_reuses == 0
    # Same pattern, different values: the cached permutation is reused.
    kkt2 = kkt.copy()
    kkt2.data = kkt2.data * 1.5
    x2 = solver.solve(kkt2, rhs)
    assert solver.symbolic_reuses == 1
    assert np.allclose(kkt2 @ x2, rhs, atol=1e-9)
    assert np.allclose(x2, x1 / 1.5, atol=1e-9)
    # A different pattern forces a fresh symbolic analysis.
    kkt3, rhs3 = _random_system(seed=2)
    x3 = solver.solve(kkt3, rhs3)
    assert solver.symbolic_reuses == 1
    assert np.allclose(kkt3 @ x3, rhs3, atol=1e-9)


def test_factorized_solver_matches_spsolve():
    kkt, rhs = _random_system(seed=3)
    ref = SpsolveSolver().solve(kkt, rhs)
    out = FactorizedSolver().solve(kkt, rhs)
    assert np.allclose(out, ref, atol=1e-10)


def test_factorized_solver_regularizes_singular_kkt():
    # Saddle-point system with a fully zero (1,1) block and rank-deficient
    # Jacobian rows: exactly singular, the seed path's hard-failure case.
    kkt = sp.csc_matrix(
        np.array(
            [
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
                [1.0, 1.0, 0.0],
            ]
        )
    )
    rhs = np.array([1.0, 1.0, 1.0])
    solver = FactorizedSolver(regularization=1e-8)
    x = solver.solve(kkt, rhs)
    assert solver.regularizations >= 1
    assert np.all(np.isfinite(x))
    # The regularised solution still satisfies the consistent equations.
    assert np.allclose(kkt @ x, rhs, atol=1e-5)


def test_factorized_solver_rejects_degraded_regularized_solution():
    """A singular system with an *inconsistent* rhs has no solution; the
    regularised factorisation succeeds but its solution must be rejected by
    the residual check instead of silently returned."""
    kkt = sp.csc_matrix(
        np.array(
            [
                [0.0, 0.0, 1.0],
                [0.0, 0.0, 1.0],
                [1.0, 1.0, 0.0],
            ]
        )
    )
    rhs = np.array([1.0, 2.0, 1.0])  # rows 1/2 demand x3 = 1 and x3 = 2
    solver = FactorizedSolver()
    with pytest.raises(KKTSolveError, match="residual"):
        solver.solve(kkt, rhs)


def test_factorized_solver_gives_up_on_hopeless_matrix():
    kkt = sp.csc_matrix((2, 2))
    solver = FactorizedSolver(regularization=1e-30, reg_growth=1.0 + 1e-9, max_retries=0)
    with pytest.raises(KKTSolveError):
        solver.solve(kkt, np.ones(2))
    # The counter reports actual recoveries, not failed attempts.
    assert solver.regularizations == 0
    assert solver.factor_seconds >= 0.0


def test_factorized_solver_validation():
    with pytest.raises(ValueError):
        FactorizedSolver(regularization=0.0)
    with pytest.raises(ValueError):
        FactorizedSolver(reg_growth=1.0)
    with pytest.raises(ValueError):
        FactorizedSolver(max_retries=-1)
    with pytest.raises(ValueError):
        FactorizedSolver(residual_tol=0.0)


# ------------------------------------------------------------ registry/options
def test_registry_lists_and_rejects():
    assert set(available_kkt_solvers()) >= {"factorized", "spsolve"}
    with pytest.raises(ValueError):
        make_kkt_solver("does-not-exist")
    with pytest.raises(ValueError):
        register_kkt_solver("", SpsolveSolver)


def test_register_custom_solver():
    class Custom(SpsolveSolver):
        name = "custom-test"

    register_kkt_solver("custom-test", Custom)
    try:
        assert isinstance(make_kkt_solver("custom-test"), Custom)
    finally:
        _SOLVERS.pop("custom-test", None)


def test_options_validate_kkt_fields():
    with pytest.raises(ValueError):
        MIPSOptions(kkt_solver="nope").validate()
    with pytest.raises(ValueError):
        MIPSOptions(kkt_reg=0.0).validate()
    with pytest.raises(ValueError):
        MIPSOptions(kkt_max_retries=-1).validate()
    MIPSOptions(kkt_solver="spsolve").validate()


# ------------------------------------------------- backends through the solver
@pytest.mark.parametrize("name", ["factorized", "spsolve"])
def test_qp_solves_identically_with_both_backends(name):
    opts = MIPSOptions(kkt_solver=name)
    res = qps_mips(
        2 * np.eye(2), np.zeros(2), A_eq=[[1.0, 1.0]], b_eq=[1.0], options=opts
    )
    assert res.converged
    assert np.allclose(res.x, [0.5, 0.5], atol=1e-6)


def test_backends_agree_on_iterations_and_objective():
    H = np.array([[3.0, 0.5], [0.5, 1.0]])
    results = {}
    for name in ("factorized", "spsolve"):
        results[name] = qps_mips(
            H,
            np.array([-1.0, 0.5]),
            A_in=[[1.0, 1.0]],
            b_in=[1.0],
            xmin=np.zeros(2),
            options=MIPSOptions(kkt_solver=name),
        )
    fact, sps = results["factorized"], results["spsolve"]
    assert fact.converged and sps.converged
    assert fact.iterations == sps.iterations
    assert abs(fact.f - sps.f) <= 1e-8 * (1.0 + abs(sps.f))
    assert np.allclose(fact.x, sps.x, atol=1e-8)


def test_singular_kkt_recovered_by_factorized_backend():
    """A linear objective with a redundant equality row makes the first KKT
    system exactly singular; the seed path failed hard, the factorized
    backend's diagonal regularisation lets MIPS continue."""
    res = qps_mips(
        None,
        np.array([1.0, 1.0]),
        A_eq=[[1.0, 1.0], [1.0, 1.0]],
        b_eq=[1.0, 1.0],
        options=MIPSOptions(kkt_solver="factorized"),
    )
    assert res.converged
    assert res.f == pytest.approx(1.0, abs=1e-6)


def test_phase_seconds_recorded():
    res = qps_mips(
        2 * np.eye(2), np.zeros(2), A_eq=[[1.0, 1.0]], b_eq=[1.0]
    )
    assert set(res.phase_seconds) == {"eval", "assembly", "factorization", "backsolve"}
    assert all(v >= 0.0 for v in res.phase_seconds.values())
    assert sum(res.phase_seconds.values()) <= res.elapsed_seconds
    final = res.final_conditions()
    assert final.factor_seconds >= 0.0
