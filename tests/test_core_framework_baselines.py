"""Integration tests of the Smart-PGSim framework, baselines, breakdown and traces."""

import os

import numpy as np
import pytest

from repro.core import (
    DirectPredictionBaseline,
    SmartPGSim,
    SmartPGSimConfig,
    breakdown_from_evaluation,
    capture_convergence_traces,
)
from repro.data import TASK_NAMES
from repro.mtl import fast_config


@pytest.fixture(scope="module")
def framework9(case9_fixture, dataset9):
    """Framework trained on the shared case9 dataset (reused to keep tests fast)."""
    config = SmartPGSimConfig(n_samples=dataset9.n_samples, mtl=fast_config(epochs=20), seed=0)
    fw = SmartPGSim(case9_fixture, config)
    fw.offline(dataset=dataset9)
    return fw


@pytest.fixture(scope="module")
def evaluation9(framework9):
    return framework9.online_evaluate()


# ----------------------------------------------------------------------- framework
def test_config_validation():
    with pytest.raises(ValueError):
        SmartPGSimConfig(model_type="bogus")
    with pytest.raises(ValueError):
        SmartPGSimConfig(n_samples=2)
    with pytest.raises(ValueError):
        SmartPGSimConfig(train_fraction=1.2)


def test_offline_artifacts_populated(framework9):
    art = framework9.artifacts
    assert art is not None
    assert art.train_set.n_samples + art.validation_set.n_samples == art.dataset.n_samples
    assert art.history.final_loss < art.history.epochs[0].total_loss
    assert art.training_seconds > 0


def test_online_requires_offline(case9_fixture):
    fw = SmartPGSim(case9_fixture)
    with pytest.raises(RuntimeError):
        fw.online_evaluate()


def test_online_evaluation_metrics(evaluation9):
    assert evaluation9.n_problems > 0
    assert 0.0 <= evaluation9.success_rate <= 1.0
    # The trained warm start must beat the cold start end to end.
    assert evaluation9.speedup > 1.0
    assert evaluation9.iteration_ratio < 0.7
    assert evaluation9.mean_iterations_warm < evaluation9.mean_iterations_cold


def test_online_preserves_optimality(evaluation9):
    """Warm-started solutions match the cold-start optimum (no optimality loss)."""
    assert evaluation9.mean_cost_deviation < 1e-6


def test_online_records_are_consistent(evaluation9):
    for record in evaluation9.records:
        assert record.cold_solve_seconds > 0
        assert record.inference_seconds >= 0
        if record.used_fallback:
            assert record.restart_seconds > 0
        else:
            assert record.restart_seconds == 0.0


def test_online_max_problems_limit(framework9):
    limited = framework9.online_evaluate(max_problems=2)
    assert limited.n_problems == 2


def test_prediction_accuracy_structure(framework9):
    acc = framework9.prediction_accuracy()
    assert set(acc) == set(TASK_NAMES)
    for task, pair in acc.items():
        assert pair["prediction"].shape == pair["ground_truth"].shape
        assert pair["ground_truth"].min() >= -1e-9
        assert pair["ground_truth"].max() <= 1 + 1e-9


def test_prediction_accuracy_main_tasks_close_to_diagonal(framework9):
    """Fig. 6: main-task predictions hug the y = x line."""
    acc = framework9.prediction_accuracy()
    for task in ("Vm", "Pg"):
        diff = np.abs(acc[task]["prediction"] - acc[task]["ground_truth"])
        assert float(np.median(diff)) < 0.2


def test_separate_model_framework_runs(case9_fixture, dataset9):
    config = SmartPGSimConfig(
        n_samples=dataset9.n_samples,
        model_type="separate",
        use_physics=False,
        mtl=fast_config(epochs=6),
        seed=1,
    )
    fw = SmartPGSim(case9_fixture, config)
    fw.offline(dataset=dataset9)
    ev = fw.online_evaluate(max_problems=3)
    assert ev.n_problems == 3


# ------------------------------------------------------------------------ breakdown
def test_breakdown_normalisation(evaluation9):
    breakdown = breakdown_from_evaluation(evaluation9)
    norm = breakdown.normalized()
    assert norm["smart_pgsim_total"] == pytest.approx(
        norm["preprocess"] + norm["newton_update"] + norm["inference"] + norm["restart"]
    )
    # Smart-PGSim spends less total time than plain MIPS on this workload.
    assert norm["smart_pgsim_total"] < 1.0
    assert breakdown.smart_total < breakdown.mips_total


def test_breakdown_requires_records(evaluation9):
    from repro.core.framework import OnlineEvaluation

    with pytest.raises(ValueError):
        breakdown_from_evaluation(OnlineEvaluation(case_name="empty"))


# ------------------------------------------------------------------------ baselines
def test_direct_prediction_baseline(framework9):
    baseline = DirectPredictionBaseline(framework9.artifacts.trainer, framework9.opf_model)
    report = baseline.evaluate(framework9.artifacts.validation_set)
    # Inference alone is much faster than the solver (Table III SF).  The SF
    # denominator is a live wall-clock inference timing, so the hard floor only
    # runs under REPRO_BENCH_STRICT (scheduler noise on shared runners dips a
    # ~10x measurement below 10); the metric being positive and the
    # quality-gap asserts below are deterministic and always checked.
    assert report.speedup_factor > 0
    if os.environ.get("REPRO_BENCH_STRICT", "") == "1":
        assert report.speedup_factor > 10
    # ...but the direct solution is not exactly optimal (non-zero cost loss)
    # and not exactly feasible (non-zero balance violation), which motivates
    # the warm-start design.
    assert report.cost_loss_pct >= 0
    assert report.feasibility_violation > 0
    summary = report.summary()
    assert set(summary) == {"SF", "Lcost_pct", "max_balance_violation_pu"}


# ----------------------------------------------------------------------- convergence
def test_convergence_traces_shapes(case9_fixture):
    traces = capture_convergence_traces(case9_fixture, seed=5)
    assert set(traces) == {"default", "good", "bad"}
    for trace in traces.values():
        series = trace.series()
        assert set(series) == {"step_size", "feasibility", "gradient", "complementarity", "cost"}
        assert len(series["step_size"]) == len(trace.history)


def test_convergence_good_start_needs_fewer_iterations(case9_fixture):
    traces = capture_convergence_traces(case9_fixture, seed=5)
    assert traces["good"].converged
    assert traces["default"].converged
    assert traces["good"].iterations < traces["default"].iterations


def test_convergence_good_trace_feasibility_decreases(case9_fixture):
    traces = capture_convergence_traces(case9_fixture, seed=5)
    feas = traces["good"].series()["feasibility"]
    assert feas[-1] < 1e-6
