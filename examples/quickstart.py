#!/usr/bin/env python3
"""Quickstart: accelerate AC-OPF on the IEEE 14-bus system with Smart-PGSim.

The script walks through the full workflow of the paper in miniature:

1. solve the AC-OPF cold (plain MIPS) for a reference,
2. run the offline phase — sample load scenarios, collect ground truth with
   MIPS and train the physics-informed multitask model,
3. run the online phase — predict warm-start points and re-solve the
   validation problems, reporting speedup, iteration counts and success rate.

Run it with ``python examples/quickstart.py`` (takes ~1 minute on a laptop).
"""

from __future__ import annotations

from repro.core import SmartPGSim, SmartPGSimConfig, breakdown_from_evaluation
from repro.grid import get_case
from repro.mtl import fast_config
from repro.opf import solve_opf


def main() -> None:
    case = get_case("case14")
    print(f"System: {case.name} — {case.n_bus} buses, {case.n_gen} generators, "
          f"{case.n_branch} branches, {case.bus.Pd.sum():.1f} MW load")

    # ------------------------------------------------------------- cold solve
    cold = solve_opf(case)
    print(f"\nCold-start AC-OPF: objective {cold.objective:.2f} $/h "
          f"in {cold.iterations} interior-point iterations "
          f"({cold.total_seconds:.2f} s)")

    # ---------------------------------------------------------- offline phase
    config = SmartPGSimConfig(
        n_samples=60,                # paper uses 10,000; 60 keeps the demo quick
        mtl=fast_config(epochs=30),  # small trunk + short training for the demo
        seed=0,
    )
    framework = SmartPGSim(case, config)
    artifacts = framework.offline()
    print(f"\nOffline phase: {artifacts.dataset.n_samples} scenarios solved in "
          f"{artifacts.dataset_seconds:.1f} s, model trained in "
          f"{artifacts.training_seconds:.1f} s "
          f"(final loss {artifacts.history.final_loss:.4f})")

    # ----------------------------------------------------------- online phase
    evaluation = framework.online_evaluate()
    print(f"\nOnline phase over {evaluation.n_problems} unseen problems:")
    print(f"  end-to-end speedup SU      : {evaluation.speedup:.2f}x")
    print(f"  warm-start success rate    : {100 * evaluation.success_rate:.1f} %")
    print(f"  iterations (cold -> warm)  : {evaluation.mean_iterations_cold:.1f} -> "
          f"{evaluation.mean_iterations_warm:.1f} "
          f"({100 * evaluation.iteration_ratio:.1f} % of cold)")
    print(f"  cost deviation vs optimum  : {evaluation.mean_cost_deviation:.2e}")

    breakdown = breakdown_from_evaluation(evaluation).normalized()
    print("\nRuntime breakdown (normalised to the MIPS-only total):")
    for phase in ("preprocess", "newton_update", "inference", "restart"):
        print(f"  {phase:<14}: {breakdown[phase]:.3f}")
    print(f"  {'total':<14}: {breakdown['smart_pgsim_total']:.3f}")


if __name__ == "__main__":
    main()
