#!/usr/bin/env python3
"""Deploying Smart-PGSim: persist a trained engine, reload it, serve a batch.

The offline phase (ground-truth generation + MTL training) happens once; a
deployed system then serves load scenarios from the saved artifact without
ever retraining.  This example walks the full deployment loop:

1. train a small pipeline on the WSCC 9-bus system and wrap it in a
   ``WarmStartEngine``,
2. ``save_artifact`` → one ``.npz`` bundling model weights, normalizer
   statistics, configuration and the case fingerprint,
3. ``load_artifact`` → a fresh engine reconstructed from disk (bit-identical
   predictions, no retraining),
4. serve a batch of scenarios: one batched MTL forward pass produces the warm
   starts, the solver fleet dispatches the MIPS solves, and the configured
   fallback policy recovers any failure,
5. show that loading the artifact against the *wrong* grid is rejected.

Run with ``python examples/serving_engine.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import SmartPGSim, SmartPGSimConfig
from repro.engine import ArtifactMismatchError, load_artifact
from repro.grid import get_case
from repro.mtl import fast_config
from repro.parallel import generate_scenarios


def main() -> None:
    case = get_case("case9")

    # ------------------------------------------------------------ offline phase
    print("Offline: generating ground truth and training the MTL model...")
    framework = SmartPGSim(
        case,
        SmartPGSimConfig(n_samples=40, mtl=fast_config(epochs=25), seed=7),
    )
    framework.offline()
    engine = framework.engine

    # -------------------------------------------------------------- persistence
    artifact_dir = Path(tempfile.mkdtemp(prefix="smart_pgsim_"))
    artifact_path = engine.save_artifact(artifact_dir / "engine_case9.npz")
    size_kb = artifact_path.stat().st_size / 1024
    print(f"\nSaved engine artifact to {artifact_path} ({size_kb:.0f} KiB)")

    # A deployment reconstructs the engine from disk — no dataset, no training.
    # ``execution="batch"`` selects the lockstep batched MIPS backend: each
    # request batch is advanced through the interior-point iterations together
    # (vectorised evaluation/assembly, per-scenario factorisation only).
    served = load_artifact(
        artifact_path, case, fallback="relaxed_warm", execution="batch"
    )
    probe = framework.artifacts.validation_set.inputs
    identical = all(
        np.array_equal(a, b)
        for a, b in zip(
            engine.predict_physical(probe).values(),
            served.predict_physical(probe).values(),
        )
    )
    print(f"Reloaded engine reproduces predictions bit-for-bit: {identical}")
    print(f"Fallback policy for this deployment: {served.fallback.name}")

    # ----------------------------------------------------------------- serving
    print("\nServing a batch of 12 scenarios (2 with N-1 branch outages)...")
    scenarios = generate_scenarios(case, 12, variation=0.1, contingency_fraction=0.15, seed=99)
    with served:
        sweep = served.serve(scenarios, n_workers=1)
    print(f"  throughput      : {sweep.throughput:.1f} scenarios/s")
    print(f"  warm-start SR   : {100 * sweep.warm_success_rate:.0f} %")
    print(f"  converged (all) : {100 * sweep.success_rate:.0f} %")
    print(f"  fallback used   : {100 * sweep.fallback_rate:.0f} % of scenarios")
    print(f"{'id':>4} {'iters':>6} {'fallback':>9} {'objective $/h':>14}")
    for outcome in sweep.outcomes:
        print(
            f"{outcome.scenario_id:>4} {outcome.final_iterations:>6} "
            f"{'yes' if outcome.used_fallback else 'no':>9} {outcome.final_objective:>14.2f}"
        )

    # ----------------------------------------------------- fingerprint guarding
    print("\nLoading the artifact against the wrong grid is rejected:")
    try:
        load_artifact(artifact_path, get_case("case14"))
    except ArtifactMismatchError as exc:
        print(f"  ArtifactMismatchError: {exc}")


if __name__ == "__main__":
    main()
