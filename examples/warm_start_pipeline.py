#!/usr/bin/env python3
"""Step-by-step warm-start pipeline on the WSCC 9-bus system.

This example exposes the individual pieces that ``SmartPGSim`` wires together,
which is useful when embedding the library in an existing workflow:

1. build the OPF model and generate ground truth with the MIPS solver,
2. train the physics-informed MTL model explicitly with ``MTLTrainer``,
3. predict a warm-start point for a new scenario, hand it to ``solve_opf`` and
   fall back to a cold start if the warm-started run fails,
4. compare against the separate-networks baseline of the paper's Section VIII-D.

Run with ``python examples/warm_start_pipeline.py``.
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_dataset
from repro.grid import get_case, sample_loads
from repro.mtl import (
    MTLTrainer,
    SeparateTaskNetworks,
    SmartPGSimMTL,
    TaskDimensions,
    fast_config,
)
from repro.opf import OPFModel, solve_opf, solve_opf_with_fallback


def train_variant(name, network_cls, use_physics, dims, train_set, opf_model, config):
    """Train one model variant and report its final loss."""
    network = network_cls(dims, config, seed=0)
    trainer = MTLTrainer(network, train_set, opf_model, config=config, use_physics=use_physics)
    history = trainer.train()
    print(f"  {name:<22} final loss {history.final_loss:.4f} "
          f"({history.train_seconds:.1f} s, {network.n_parameters()} parameters)")
    return trainer


def main() -> None:
    case = get_case("case9")
    opf_model = OPFModel(case)

    # ------------------------------------------------------------ ground truth
    print("Generating ground truth with MIPS (60 scenarios, ±10 % load sampling)...")
    dataset = generate_dataset(case, 60, variation=0.1, seed=7, model=opf_model)
    train_set, val_set = dataset.split(0.8, seed=7)
    print(f"  {dataset.n_samples} converged scenarios, "
          f"mean cold-start iterations {dataset.iterations.mean():.1f}")

    dims = TaskDimensions(
        n_bus=case.n_bus,
        n_gen=case.n_gen,
        n_eq=dataset.task_dim("lam"),
        n_ineq=dataset.task_dim("mu"),
    )
    config = fast_config(epochs=40)

    # ----------------------------------------------------------- train variants
    print("\nTraining the three model variants of Fig. 7:")
    separate = train_variant("separate networks", SeparateTaskNetworks, False, dims, train_set, opf_model, config)
    mtl_plain = train_variant("MTL (no physics)", SmartPGSimMTL, False, dims, train_set, opf_model, config)
    smart = train_variant("Smart-PGSim (physics)", SmartPGSimMTL, True, dims, train_set, opf_model, config)

    # ------------------------------------------------------------- online solve
    print("\nWarm-starting the validation scenarios:")
    header = f"{'variant':<22} {'SR %':>6} {'mean iters':>11} {'cold iters':>11}"
    print(header)
    for name, trainer in (
        ("separate networks", separate),
        ("MTL (no physics)", mtl_plain),
        ("Smart-PGSim", smart),
    ):
        iters, successes = [], []
        for i in range(val_set.n_samples):
            warm = trainer.warm_start_for(val_set.inputs[i])
            result, used_fallback, _ = solve_opf_with_fallback(
                case, warm, Pd_mw=val_set.Pd_mw[i], Qd_mvar=val_set.Qd_mw[i], model=opf_model
            )
            successes.append(not used_fallback)
            iters.append(result.iterations)
        print(f"{name:<22} {100 * np.mean(successes):>6.1f} {np.mean(iters):>11.1f} "
              f"{val_set.iterations.mean():>11.1f}")

    # --------------------------------------------------------- a brand new case
    print("\nSolving one brand-new scenario with the Smart-PGSim warm start:")
    scenario = sample_loads(case, 1, variation=0.1, seed=999)[0]
    cold = solve_opf(case, Pd_mw=scenario.Pd, Qd_mvar=scenario.Qd, model=opf_model)
    warm = smart.warm_start_for(scenario.feature_vector() / case.base_mva)
    warm_result = solve_opf(case, warm_start=warm, Pd_mw=scenario.Pd, Qd_mvar=scenario.Qd, model=opf_model)
    print(f"  cold start : {cold.iterations} iterations, objective {cold.objective:.2f} $/h")
    print(f"  warm start : {warm_result.iterations} iterations, objective {warm_result.objective:.2f} $/h")
    print(f"  cost deviation: {abs(warm_result.objective - cold.objective) / cold.objective:.2e}")


if __name__ == "__main__":
    main()
