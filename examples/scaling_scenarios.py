#!/usr/bin/env python3
"""SC-ACOPF style scenario sweep with data-parallel workers (Fig. 9 workflow).

Security-constrained studies evaluate thousands of scenarios (load variations
and N-1 contingencies).  This example:

1. trains a Smart-PGSim model on the 14-bus system,
2. generates a scenario set including branch outages,
3. produces warm starts for every scenario with batched inference,
4. runs the sweep through the process-pool runner, and
5. extrapolates strong/weak scaling to 128 workers with the calibrated
   cluster model used for the Fig. 9 reproduction.

Run with ``python examples/scaling_scenarios.py [n_scenarios] [n_workers]``.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import SmartPGSim, SmartPGSimConfig
from repro.grid import get_case
from repro.mtl import fast_config
from repro.parallel import (
    PAPER_WORKER_COUNTS,
    ClusterModel,
    generate_scenarios,
    run_scenario_sweep,
)


def main() -> None:
    n_scenarios = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    n_workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    case = get_case("case14")
    print(f"Training Smart-PGSim on {case.name}...")
    framework = SmartPGSim(case, SmartPGSimConfig(n_samples=50, mtl=fast_config(epochs=25), seed=1))
    framework.offline()
    trainer = framework.artifacts.trainer

    # ------------------------------------------------------------ scenario sweep
    scenarios = generate_scenarios(case, n_scenarios, variation=0.1, contingency_fraction=0.25, seed=3)
    outages = sum(1 for s in scenarios if s.outage_branch is not None)
    print(f"\nGenerated {len(scenarios)} scenarios ({outages} with an N-1 branch outage)")

    # One batched forward pass covers the whole sweep.
    warm_starts = trainer.warm_starts_for(scenarios.feature_matrix(case.base_mva))

    print(f"Running the sweep on {n_workers} worker process(es)...")
    sweep = run_scenario_sweep(case, scenarios, warm_starts=warm_starts, n_workers=n_workers)
    print(f"  solved {sweep.n_scenarios} scenarios in {sweep.wall_seconds:.1f} s "
          f"({sweep.throughput:.2f} scenarios/s, success rate {100 * sweep.success_rate:.1f} %)")
    print(f"  serial-equivalent solver time: {sweep.total_solver_seconds():.1f} s")
    iters = [o.iterations for o in sweep.outcomes]
    print(f"  warm-started iterations: mean {np.mean(iters):.1f}, max {max(iters)}")

    # -------------------------------------------------------------- Fig. 9 model
    # Anchor the analytic cluster model to the measured end-to-end solve rate
    # (the serial-equivalent of this sweep), not inference alone.
    cluster = ClusterModel.calibrate(sweep.n_scenarios / sweep.total_solver_seconds())
    print(f"\nCalibrated single-worker solve throughput: {cluster.throughput:.1f} scenarios/s")
    strong = cluster.strong_scaling(10_000, PAPER_WORKER_COUNTS)
    weak = cluster.weak_scaling(10_000, PAPER_WORKER_COUNTS)
    print(f"{'workers':>8} {'strong speedup':>15} {'weak rate (scen/s)':>19}")
    for w in PAPER_WORKER_COUNTS:
        print(f"{w:>8} {strong[w]:>15.1f} {weak[w]:>19.0f}")


if __name__ == "__main__":
    main()
