#!/usr/bin/env python3
"""Reproduce the Table I sensitivity study on a chosen test system.

The study initialises the MIPS solver with every combination of precise
(ground-truth) and imprecise (default) values of the four warm-start signals
``X, λ, µ, Z`` and reports the success rate and speedup of each combination —
the analysis that drives the MTL design (feature prioritisation and the
physics-dependent hierarchy).

Usage::

    python examples/sensitivity_study.py [case9|case14|case30s] [n_scenarios]
"""

from __future__ import annotations

import sys

from repro.core import run_sensitivity_study
from repro.grid import get_case


def main() -> None:
    case_name = sys.argv[1] if len(sys.argv) > 1 else "case9"
    n_scenarios = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    case = get_case(case_name)
    print(f"Sensitivity study on {case.name} with {n_scenarios} sampled scenarios")
    print("(0 = imprecise solver default, 1 = precise ground-truth value)\n")

    report = run_sensitivity_study(case, n_scenarios=n_scenarios, seed=0)

    header = f"{'X':>3} {'lam':>4} {'mu':>3} {'Z':>3} | {'SR %':>6} {'SU':>6} {'iters':>7}"
    print(header)
    print("-" * len(header))
    for row in report.as_table():
        su = "  -  " if row["speedup"] is None else f"{row['speedup']:5.2f}"
        print(
            f"{row['X']:>3} {row['lambda']:>4} {row['mu']:>3} {row['Z']:>3} | "
            f"{row['success_rate_pct']:>6.1f} {su:>6} {row['mean_iterations']:>7.1f}"
        )

    full = report.row("1111")
    baseline = report.row("0000")
    print(
        f"\nAll-precise warm start (case XVI): {full.mean_iterations:.1f} iterations vs "
        f"{baseline.mean_iterations:.1f} for the default start "
        f"({full.speedup:.2f}x speedup at {100 * full.success_rate:.0f}% success rate)."
    )
    print("Observation 1: precise X alone preserves a 100% success rate; "
          "λ, µ and Z add speed once X is accurate.")


if __name__ == "__main__":
    main()
