"""Nonlinear AC-OPF constraints and their Jacobians.

Equality constraints (``g(x) = 0``) are the 2·nb nodal power-balance equations
(real rows first, then reactive rows — Eqn. 2 of the paper).  Inequality
constraints (``h(x) <= 0``) are squared apparent-power flow limits at both
ends of every rated branch.  Jacobians are returned in standard
row-per-constraint orientation as sparse matrices.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.opf.model import OPFModel
from repro.powerflow.derivatives import dAbr_dV, dSbr_dV, dSbus_dV
from repro.powerflow.injections import bus_injection


def power_balance(
    model: OPFModel,
    x: np.ndarray,
    Pd_mw: Optional[np.ndarray] = None,
    Qd_mw: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, sp.csr_matrix]:
    """Power-balance mismatch ``g(x)`` and its Jacobian.

    The mismatch is ``S_bus(V) + S_d - C_g·S_g`` split into real and reactive
    rows.  ``Pd_mw``/``Qd_mw`` override the case's nominal loads (this is how
    sampled scenarios enter the problem).
    """
    case = model.case
    base = case.base_mva
    nb, ng = case.n_bus, case.n_gen
    Pd = (case.bus.Pd if Pd_mw is None else np.asarray(Pd_mw, dtype=float)) / base
    Qd = (case.bus.Qd if Qd_mw is None else np.asarray(Qd_mw, dtype=float)) / base

    V = model.complex_voltage(x)
    Pg = x[model.idx.pg]
    Qg = x[model.idx.qg]
    on = (case.gen.status > 0).astype(float)

    Sbus = bus_injection(model.adm.Ybus, V)
    Sgen = model.adm.Cg @ ((Pg + 1j * Qg) * on)
    mis = Sbus + (Pd + 1j * Qd) - Sgen
    g = np.concatenate([mis.real, mis.imag])

    dSa, dSm = dSbus_dV(model.adm.Ybus, V)
    Cg_on = model.adm.Cg @ sp.diags(on)
    zero_bg = sp.csr_matrix((nb, ng))
    # Rows: [P-balance; Q-balance], columns: [Va, Vm, Pg, Qg].
    Jg = sp.bmat(
        [
            [sp.csr_matrix(dSa.real), sp.csr_matrix(dSm.real), -Cg_on, zero_bg],
            [sp.csr_matrix(dSa.imag), sp.csr_matrix(dSm.imag), zero_bg, -Cg_on],
        ],
        format="csr",
    )
    return g, Jg


def branch_flow_limits(model: OPFModel, x: np.ndarray) -> Tuple[np.ndarray, sp.csr_matrix]:
    """Squared apparent-flow limit constraints ``h(x)`` and their Jacobian.

    For every rated branch the from-end and to-end constraints are
    ``|S_f|² - S_max² <= 0`` and ``|S_t|² - S_max² <= 0`` (p.u.).  Returns an
    empty system when the model has no rated branches or flow limits are
    disabled.
    """
    nx = model.idx.nx
    lim = model.limited_branches
    if lim.size == 0:
        return np.zeros(0), sp.csr_matrix((0, nx))

    case = model.case
    V = model.complex_voltage(x)
    Yf = model.adm.Yf[lim]
    Yt = model.adm.Yt[lim]
    Cf = model.adm.Cf[lim]
    Ct = model.adm.Ct[lim]

    dSf_dVa, dSf_dVm, Sf = dSbr_dV(Yf, Cf, V)
    dSt_dVa, dSt_dVm, St = dSbr_dV(Yt, Ct, V)

    h = np.concatenate(
        [np.abs(Sf) ** 2 - model.flow_limit_sq, np.abs(St) ** 2 - model.flow_limit_sq]
    )

    dAf_dVa, dAf_dVm = dAbr_dV(dSf_dVa, dSf_dVm, Sf)
    dAt_dVa, dAt_dVm = dAbr_dV(dSt_dVa, dSt_dVm, St)

    ng = case.n_gen
    nl = lim.size
    zero_lg = sp.csr_matrix((nl, 2 * ng))
    Jh = sp.bmat(
        [[dAf_dVa, dAf_dVm, zero_lg], [dAt_dVa, dAt_dVm, zero_lg]], format="csr"
    )
    return h, Jh


def constraint_function(
    model: OPFModel,
    Pd_mw: Optional[np.ndarray] = None,
    Qd_mw: Optional[np.ndarray] = None,
):
    """Return the MIPS constraint callback ``x -> (g, h, Jg, Jh)`` for a scenario."""

    def gh_fcn(x: np.ndarray):
        g, Jg = power_balance(model, x, Pd_mw, Qd_mw)
        h, Jh = branch_flow_limits(model, x)
        return g, h, Jg, Jh

    return gh_fcn
