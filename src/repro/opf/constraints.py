"""Nonlinear AC-OPF constraints and their Jacobians.

Equality constraints (``g(x) = 0``) are the 2·nb nodal power-balance equations
(real rows first, then reactive rows — Eqn. 2 of the paper).  Inequality
constraints (``h(x) <= 0``) are squared apparent-power flow limits at both
ends of every rated branch.  Jacobians are returned in standard
row-per-constraint orientation as sparse matrices.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.opf.model import OPFModel
from repro.powerflow.derivatives import dAbr_dV, dSbus_dV
from repro.powerflow.injections import bus_injection


def power_balance(
    model: OPFModel,
    x: np.ndarray,
    Pd_mw: Optional[np.ndarray] = None,
    Qd_mw: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, sp.csr_matrix]:
    """Power-balance mismatch ``g(x)`` and its Jacobian.

    The mismatch is ``S_bus(V) + S_d - C_g·S_g`` split into real and reactive
    rows.  ``Pd_mw``/``Qd_mw`` override the case's nominal loads (this is how
    sampled scenarios enter the problem).
    """
    case = model.case
    base = case.base_mva
    Pd = (case.bus.Pd if Pd_mw is None else np.asarray(Pd_mw, dtype=float)) / base
    Qd = (case.bus.Qd if Qd_mw is None else np.asarray(Qd_mw, dtype=float)) / base

    V = model.complex_voltage(x)
    Pg = x[model.idx.pg]
    Qg = x[model.idx.qg]

    Sbus = bus_injection(model.adm.Ybus, V)
    Sgen = model.adm.Cg @ ((Pg + 1j * Qg) * model.gen_on)
    mis = Sbus + (Pd + 1j * Qd) - Sgen
    g = np.concatenate([mis.real, mis.imag])

    dSa, dSm = dSbus_dV(model.adm.Ybus, V)
    neg_Cg, zero_bg = model.neg_Cg_on, model.zero_bg
    # Rows: [P-balance; Q-balance], columns: [Va, Vm, Pg, Qg].  The block
    # layout is structure-cached on the model: after the first call only the
    # voltage-derivative values are scattered into the cached pattern.
    Jg = model._pb_jac_cache.assemble(
        [
            [dSa.real, dSm.real, neg_Cg, zero_bg],
            [dSa.imag, dSm.imag, zero_bg, neg_Cg],
        ]
    )
    return g, Jg


def branch_flow_limits(model: OPFModel, x: np.ndarray) -> Tuple[np.ndarray, sp.csr_matrix]:
    """Squared apparent-flow limit constraints ``h(x)`` and their Jacobian.

    For every rated branch the from-end and to-end constraints are
    ``|S_f|² - S_max² <= 0`` and ``|S_t|² - S_max² <= 0`` (p.u.).  Returns an
    empty system when the model has no rated branches or flow limits are
    disabled.
    """
    nx = model.idx.nx
    lim = model.limited_branches
    if lim.size == 0:
        return np.zeros(0), sp.csr_matrix((0, nx))

    (dSf_dVa, dSf_dVm, Sf), (dSt_dVa, dSt_dVm, St) = model.branch_flow_derivatives(x)

    h = np.concatenate(
        [np.abs(Sf) ** 2 - model.flow_limit_sq, np.abs(St) ** 2 - model.flow_limit_sq]
    )

    dAf_dVa, dAf_dVm = dAbr_dV(dSf_dVa, dSf_dVm, Sf)
    dAt_dVa, dAt_dVm = dAbr_dV(dSt_dVa, dSt_dVm, St)

    zero_lg = model.zero_lg
    Jh = model._flow_jac_cache.assemble(
        [[dAf_dVa, dAf_dVm, zero_lg], [dAt_dVa, dAt_dVm, zero_lg]]
    )
    return h, Jh


def constraint_function(
    model: OPFModel,
    Pd_mw: Optional[np.ndarray] = None,
    Qd_mw: Optional[np.ndarray] = None,
):
    """Return the MIPS constraint callback ``x -> (g, h, Jg, Jh)`` for a scenario."""

    def gh_fcn(x: np.ndarray):
        g, Jg = power_balance(model, x, Pd_mw, Qd_mw)
        h, Jh = branch_flow_limits(model, x)
        return g, h, Jg, Jh

    return gh_fcn
