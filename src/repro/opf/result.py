"""Result container for AC-OPF solves."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.grid.components import Case
from repro.mips.result import IterationRecord, MIPSResult
from repro.opf.model import OPFModel
from repro.opf.warmstart import WarmStart


@dataclass
class OPFResult:
    """Solution of one AC-OPF problem.

    Physical quantities are reported in engineering units (MW, MVAr, degrees,
    p.u. voltage magnitudes); the raw optimisation vector and multipliers are
    kept for warm-start extraction and analysis.
    """

    case_name: str
    success: bool
    objective: float
    iterations: int
    Va_deg: np.ndarray
    Vm: np.ndarray
    Pg_mw: np.ndarray
    Qg_mvar: np.ndarray
    x: np.ndarray
    lam: np.ndarray
    mu: np.ndarray
    z: np.ndarray
    message: str = ""
    history: List[IterationRecord] = field(default_factory=list)
    preprocess_seconds: float = 0.0
    solve_seconds: float = 0.0
    #: Per-phase solver time (eval / assembly / factorization / backsolve).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: KKT backend factorisation counters (symbolic reuses, numeric
    #: refactorisations, block factorisations …) harvested from the solve —
    #: see ``MIPSResult.kkt_telemetry``.
    kkt_telemetry: Dict[str, int] = field(default_factory=dict)
    #: True when the solve was cut short by a wall deadline or per-solve wall
    #: budget rather than a numerical outcome (see ``MIPSResult.timed_out``).
    timed_out: bool = False
    Pd_mw: Optional[np.ndarray] = None
    Qd_mvar: Optional[np.ndarray] = None

    @property
    def total_seconds(self) -> float:
        """Pre-processing plus solver time."""
        return self.preprocess_seconds + self.solve_seconds

    def warm_start(self) -> WarmStart:
        """Warm-start point carrying this solution's primal and dual variables."""
        return WarmStart(x=self.x.copy(), lam=self.lam.copy(), mu=self.mu.copy(), z=self.z.copy())

    def dispatch_summary(self) -> Dict[str, float]:
        """Headline dispatch quantities."""
        return {
            "objective_usd_per_h": self.objective,
            "total_pg_mw": float(self.Pg_mw.sum()),
            "total_qg_mvar": float(self.Qg_mvar.sum()),
            "max_vm": float(self.Vm.max()),
            "min_vm": float(self.Vm.min()),
            "iterations": self.iterations,
        }


def build_opf_result(
    case: Case,
    model: OPFModel,
    mips_result: MIPSResult,
    preprocess_seconds: float,
    Pd_mw: Optional[np.ndarray],
    Qd_mvar: Optional[np.ndarray],
) -> OPFResult:
    """Translate a raw MIPS result into an :class:`OPFResult`."""
    parts = model.idx.split(mips_result.x)
    return OPFResult(
        case_name=case.name,
        success=mips_result.converged,
        objective=mips_result.f,
        iterations=mips_result.iterations,
        Va_deg=np.rad2deg(parts["Va"]),
        Vm=parts["Vm"].copy(),
        Pg_mw=parts["Pg"] * case.base_mva,
        Qg_mvar=parts["Qg"] * case.base_mva,
        x=mips_result.x.copy(),
        lam=mips_result.lam.copy(),
        mu=mips_result.mu.copy(),
        z=mips_result.z.copy(),
        message=mips_result.message,
        history=list(mips_result.history),
        preprocess_seconds=preprocess_seconds,
        # The additive per-scenario cost: wall time for scalar solves, the
        # scenario's lockstep wall share for batch solves — keeps
        # ``solve_seconds`` comparable and summable in both execution modes.
        solve_seconds=mips_result.share_seconds,
        phase_seconds=dict(mips_result.phase_seconds),
        kkt_telemetry=dict(mips_result.kkt_telemetry),
        timed_out=mips_result.timed_out,
        Pd_mw=None if Pd_mw is None else np.asarray(Pd_mw, dtype=float).copy(),
        Qd_mvar=None if Qd_mvar is None else np.asarray(Qd_mvar, dtype=float).copy(),
    )
