"""Lagrangian Hessian of the AC-OPF problem.

MIPS takes exact Newton steps, so it needs the Hessian of::

    L(x, λ, µ) = σ·f(x) + λᵀ g(x) + µᵀ h(x)

with respect to ``x``.  The cost contributes a diagonal block in ``Pg``; the
power-balance and branch-flow constraints contribute blocks in ``(Va, Vm)``
assembled from the second-derivative kernels of
:mod:`repro.powerflow.hessians`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.opf.costs import objective_hessian_diag
from repro.opf.model import OPFModel
from repro.powerflow.hessians import d2ASbr_dV2, d2Sbus_dV2


def hessian_blocks(
    model: OPFModel,
    x: np.ndarray,
    lam_nl: np.ndarray,
    mu_nl: np.ndarray,
    cost_mult: float = 1.0,
):
    """Evaluate the Lagrangian-Hessian kernel blocks at ``x``.

    Returns ``(Haa, Hav, Hva, Hvv, Dgg)``: the four ``(nb, nb)`` voltage
    blocks (power balance plus branch-flow curvature) and the diagonal
    ``(2·ng, 2·ng)`` cost block.  :func:`lagrangian_hessian` assembles these
    into the full matrix; the KKT micro-benchmark times that assembly in
    isolation.
    """
    case = model.case
    nb, ng = case.n_bus, case.n_gen
    V = model.complex_voltage(x)

    # ------------------------------------------------------------- cost part
    # Diagonal Pg block of the objective Hessian in the (Pg, Qg) corner; the
    # Qg half is structurally zero but kept explicit so the pattern is fixed.
    diag_gg = np.zeros(2 * ng)
    diag_gg[:ng] = objective_hessian_diag(model, x) * cost_mult
    gg_idx = np.arange(2 * ng)
    Dgg = sp.csr_matrix((diag_gg, (gg_idx, gg_idx)), shape=(2 * ng, 2 * ng))

    # ----------------------------------------------------- power balance part
    lamP = lam_nl[:nb]
    lamQ = lam_nl[nb : 2 * nb]
    Gpaa, Gpav, Gpva, Gpvv = d2Sbus_dV2(model.adm.Ybus, V, lamP)
    Gqaa, Gqav, Gqva, Gqvv = d2Sbus_dV2(model.adm.Ybus, V, lamQ)
    Haa = sp.csr_matrix(Gpaa.real) + sp.csr_matrix(Gqaa.imag)
    Hav = sp.csr_matrix(Gpav.real) + sp.csr_matrix(Gqav.imag)
    Hva = sp.csr_matrix(Gpva.real) + sp.csr_matrix(Gqva.imag)
    Hvv = sp.csr_matrix(Gpvv.real) + sp.csr_matrix(Gqvv.imag)

    # ----------------------------------------------------- branch flow part
    lim = model.limited_branches
    if lim.size and mu_nl.size:
        nl = lim.size
        muF = mu_nl[:nl]
        muT = mu_nl[nl : 2 * nl]
        Yf, Yt = model.Yf_lim, model.Yt_lim
        Cf, Ct = model.Cf_lim, model.Ct_lim

        (dSf_dVa, dSf_dVm, Sf), (dSt_dVa, dSt_dVm, St) = model.branch_flow_derivatives(x, V)

        Hfaa, Hfav, Hfva, Hfvv = d2ASbr_dV2(dSf_dVa, dSf_dVm, Sf, Cf, Yf, V, muF)
        Htaa, Htav, Htva, Htvv = d2ASbr_dV2(dSt_dVa, dSt_dVm, St, Ct, Yt, V, muT)

        Haa = Haa + Hfaa + Htaa
        Hav = Hav + Hfav + Htav
        Hva = Hva + Hfva + Htva
        Hvv = Hvv + Hfvv + Htvv

    return Haa, Hav, Hva, Hvv, Dgg


def lagrangian_hessian(
    model: OPFModel,
    x: np.ndarray,
    lam_nl: np.ndarray,
    mu_nl: np.ndarray,
    cost_mult: float = 1.0,
) -> sp.csr_matrix:
    """Hessian of the Lagrangian w.r.t. the optimisation vector.

    ``lam_nl`` holds the multipliers of the 2·nb power-balance rows (real rows
    first) and ``mu_nl`` those of the branch-flow rows (from-end rows first);
    bound multipliers never appear because bound constraints are linear.

    The full Hessian is assembled through the model's structure cache: the
    ``(Va, Vm)`` kernel blocks and the diagonal ``Pg`` cost block are scattered
    into a block pattern computed once per case.
    """
    Haa, Hav, Hva, Hvv, Dgg = hessian_blocks(model, x, lam_nl, mu_nl, cost_mult)
    return model._hess_cache.assemble(
        [
            [Haa, Hav, None],
            [Hva, Hvv, None],
            [None, None, Dgg],
        ]
    )


def hessian_function(model: OPFModel):
    """Return the MIPS Hessian callback for ``model``."""

    def hess_fcn(x: np.ndarray, lam_nl: np.ndarray, mu_nl: np.ndarray, cost_mult: float):
        return lagrangian_hessian(model, x, lam_nl, mu_nl, cost_mult)

    return hess_fcn
