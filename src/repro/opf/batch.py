"""Batch-vectorised AC-OPF evaluation and the batched solve driver.

:class:`BatchedOPFModel` is the batch-axis counterpart of
:class:`~repro.opf.model.OPFModel`: for a ``(B, nx)`` state matrix it
evaluates the objective, the nonlinear constraints and the *data planes* of
their Jacobians and of the Lagrangian Hessian — ``(B, nnz)`` arrays scattered
into sparsity patterns that are fixed per case and computed once at
construction.  All evaluation work is vectorised across the batch axis via
the batched kernels of :mod:`repro.powerflow.derivatives` /
:mod:`repro.powerflow.hessians`; the only remaining per-scenario work
(factorise / backsolve) lives in :func:`repro.mips.batch.mips_batch`.

:func:`solve_opf_batch` is the sweep-level entry point: it solves a whole
batch of load scenarios of one case in lockstep and returns one
:class:`~repro.opf.result.OPFResult` per scenario.  A scenario batch shares
the case topology, the sparsity patterns and the variable bounds; loads and
warm starts vary per row.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from repro.grid.components import Case
from repro.mips.batch import BatchFeedPayload, mips_batch
from repro.opf.model import OPFModel
from repro.opf.result import OPFResult, build_opf_result
from repro.opf.solver import OPFOptions
from repro.opf.warmstart import WarmStart
from repro.powerflow.derivatives import BatchedBranchDerivatives, BatchedSbusDerivatives
from repro.powerflow.hessians import BatchedASbrHessian, BatchedSbusHessian
from repro.utils.sparse import CachedBmat, pattern_union

__all__ = ["BatchedOPFModel", "solve_opf_batch"]


class BatchedOPFModel:
    """Batch-axis evaluation kernels for one case's AC-OPF problem.

    Wraps an :class:`OPFModel` (which contributes the constant case data) and
    precomputes every sparsity pattern and scatter plan the batched
    evaluations need.  Like the scalar model, instances are stateless across
    calls except for the pattern caches and must not be shared between
    threads.
    """

    def __init__(self, model: OPFModel):
        self.model = model
        case = model.case
        nb, ng = case.n_bus, case.n_gen
        self.idx = model.idx
        self._base = case.base_mva
        self._coeffs = case.gencost.coeffs
        self._gen_on = model.gen_on
        self._nb, self._ng = nb, ng

        # ------------------------------------------------- first derivatives
        self._sbus = BatchedSbusDerivatives(model.adm.Ybus)
        lim = model.limited_branches
        self._n_lim = lim.size
        if self._n_lim:
            self._fder = BatchedBranchDerivatives(model.Yf_lim, model.Cf_lim)
            self._tder = BatchedBranchDerivatives(model.Yt_lim, model.Ct_lim)
        # One-evaluation memo of the branch first-derivative planes: within a
        # lockstep iteration the Hessian is evaluated at (a row subset of) the
        # state of the preceding constraint evaluation, so the planes are
        # shared — the batch counterpart of the scalar model's
        # ``branch_flow_derivatives`` memo.  Keyed per row on the state bytes.
        self._branch_memo: dict = {}
        self._branch_planes: tuple = ()

        # ------------------------------------------- Jacobian block templates
        self._neg_cg = model.neg_Cg_on.tocsr()
        self._neg_cg.sort_indices()
        dS_t = self._sbus.template
        self._jg_cache = CachedBmat("csr")
        self._jg_cache.assemble(
            [
                [dS_t, dS_t, self._neg_cg, model.zero_bg],
                [dS_t, dS_t, model.zero_bg, self._neg_cg],
            ]
        )
        if self._n_lim:
            br_f, br_t = self._fder.template, self._tder.template
            self._jh_cache = CachedBmat("csr")
            self._jh_cache.assemble(
                [[br_f, br_f, model.zero_lg], [br_t, br_t, model.zero_lg]]
            )
        else:
            self._jh_cache = None

        # -------------------------------------------------- Hessian templates
        self._bus_hess = BatchedSbusHessian(model.adm.Ybus)
        v_patterns = [self._bus_hess.template]
        if self._n_lim:
            self._f_hess = BatchedASbrHessian(
                model.Cf_lim, model.Yf_lim, self._fder.template
            )
            self._t_hess = BatchedASbrHessian(
                model.Ct_lim, model.Yt_lim, self._tder.template
            )
            v_patterns += [self._f_hess.template, self._t_hess.template]
        self._vblock, positions = pattern_union(v_patterns)
        self._pos_bus = positions[0]
        if self._n_lim:
            self._pos_f, self._pos_t = positions[1], positions[2]
        dgg = sp.identity(2 * ng, format="csr")
        self._hess_cache = CachedBmat("csr")
        self._hess_cache.assemble(
            [
                [self._vblock, self._vblock, None],
                [self._vblock, self._vblock, None],
                [None, None, dgg],
            ]
        )

    # ------------------------------------------------------------- templates
    @property
    def jg_template(self) -> sp.spmatrix:
        """Pattern of the nonlinear equality-constraint Jacobian."""
        return self._jg_cache.template

    @property
    def jh_template(self) -> sp.spmatrix:
        """Pattern of the nonlinear inequality-constraint Jacobian."""
        if self._jh_cache is None:
            return sp.csr_matrix((0, self.idx.nx))
        return self._jh_cache.template

    @property
    def hess_template(self) -> sp.spmatrix:
        """Pattern of the Lagrangian Hessian."""
        return self._hess_cache.template

    # ------------------------------------------------------------- objective
    def _cost_terms(self, Pg_mw: np.ndarray):
        """Batched Horner evaluation of the polynomial costs and derivatives."""
        coeffs = self._coeffs
        ncost_max = coeffs.shape[1]
        batch = Pg_mw.shape[0]
        # Float exponents mirror the scalar implementation bit-for-bit.
        powers = np.arange(ncost_max - 1, -1, -1, dtype=float)
        cost = np.zeros((batch, self._ng))
        d1 = np.zeros((batch, self._ng))
        d2 = np.zeros((batch, self._ng))
        for k in range(ncost_max):
            p = powers[k]
            cost = cost * Pg_mw + coeffs[:, k]
            if p >= 1:
                d1 += coeffs[:, k] * p * Pg_mw ** (p - 1)
            if p >= 2:
                d2 += coeffs[:, k] * p * (p - 1) * Pg_mw ** (p - 2)
        return cost, d1, d2

    def objective(self, X: np.ndarray):
        """Batched objective ``(F, dF)`` in optimisation space."""
        base = self._base
        Pg_mw = X[:, self.idx.pg] * base
        cost, d1, _ = self._cost_terms(Pg_mw)
        F = (cost * self._gen_on).sum(axis=1)
        dF = np.zeros((X.shape[0], self.idx.nx))
        dF[:, self.idx.pg] = d1 * self._gen_on * base
        return F, dF

    def objective_hessian_diag(self, X: np.ndarray) -> np.ndarray:
        """Batched diagonal of the objective Hessian over the ``Pg`` block."""
        base = self._base
        _, _, d2 = self._cost_terms(X[:, self.idx.pg] * base)
        return d2 * self._gen_on * base * base

    # ----------------------------------------------------------- constraints
    def _voltages(self, X: np.ndarray) -> np.ndarray:
        return X[:, self.idx.vm] * np.exp(1j * X[:, self.idx.va])

    def _branch_derivatives(self, X: np.ndarray, V: np.ndarray):
        """Branch first-derivative planes at ``X``, memoised per row.

        Returns ``(fdVa, fdVm, Sf, tdVa, tdVm, St)``.  A full-batch hit (every
        row of ``X`` evaluated by the previous call) is served by gathering
        the stored rows; any miss re-evaluates the whole batch.
        """
        keys = [row.tobytes() for row in X]
        memo = self._branch_memo
        if memo and all(key in memo for key in keys):
            rows = np.array([memo[key] for key in keys])
            return tuple(plane[rows] for plane in self._branch_planes)
        fdVa, fdVm, Sf = self._fder(V)
        tdVa, tdVm, St = self._tder(V)
        self._branch_planes = (fdVa, fdVm, Sf, tdVa, tdVm, St)
        self._branch_memo = {key: i for i, key in enumerate(keys)}
        return self._branch_planes

    def constraints(self, X: np.ndarray, Pd_pu: np.ndarray, Qd_pu: np.ndarray):
        """Batched constraint values and Jacobian data planes.

        ``Pd_pu``/``Qd_pu`` are the per-scenario loads in p.u., one row per
        row of ``X``.  Returns ``(G, H, Jg_data, Jh_data)`` with the data
        planes on :attr:`jg_template` / :attr:`jh_template`.
        """
        model = self.model
        batch = X.shape[0]
        V = self._voltages(X)
        # One Ybus @ V product serves both the injections and the derivatives.
        dVa, dVm, Ibus = self._sbus(V)
        Sbus = V * np.conj(Ibus)
        Sg = (X[:, self.idx.pg] + 1j * X[:, self.idx.qg]) * self._gen_on
        Sgen = (model.adm.Cg @ Sg.T).T
        mis = Sbus + (Pd_pu + 1j * Qd_pu) - Sgen
        G = np.concatenate([mis.real, mis.imag], axis=1)

        neg_cg = np.broadcast_to(self._neg_cg.data, (batch, self._neg_cg.nnz))
        none = np.zeros((batch, 0))
        Jg_data = self._jg_cache.assemble_batch(
            [dVa.real, dVm.real, neg_cg, none, dVa.imag, dVm.imag, none, neg_cg]
        )

        if self._n_lim:
            fdVa, fdVm, Sf, tdVa, tdVm, St = self._branch_derivatives(X, V)
            H = np.concatenate(
                [
                    np.abs(Sf) ** 2 - model.flow_limit_sq,
                    np.abs(St) ** 2 - model.flow_limit_sq,
                ],
                axis=1,
            )
            fAa, fAm = self._fder.squared_flow(fdVa, fdVm, Sf)
            tAa, tAm = self._tder.squared_flow(tdVa, tdVm, St)
            Jh_data = self._jh_cache.assemble_batch([fAa, fAm, none, tAa, tAm, none])
        else:
            H = np.zeros((batch, 0))
            Jh_data = np.zeros((batch, 0))
        return G, H, Jg_data, Jh_data

    # --------------------------------------------------------------- Hessian
    def hessian(
        self,
        X: np.ndarray,
        Lam_nl: np.ndarray,
        Mu_nl: np.ndarray,
        cost_mult: float = 1.0,
    ) -> np.ndarray:
        """Batched Lagrangian-Hessian data planes on :attr:`hess_template`.

        ``Lam_nl`` holds the ``(B, 2·nb)`` power-balance multipliers (real
        rows first) and ``Mu_nl`` the ``(B, 2·n_lim)`` branch-flow multipliers
        (from-end rows first), matching the scalar callback's ordering.
        """
        nb = self._nb
        batch = X.shape[0]
        V = self._voltages(X)
        # One complex evaluation covers both multiplier blocks: the kernel is
        # linear in lam, and Re{G(lamP - j·lamQ)} == Re{G(lamP)} + Im{G(lamQ)}.
        lam_c = Lam_nl[:, :nb] - 1j * Lam_nl[:, nb:]
        Gaa, Gav, Gva, Gvv = self._bus_hess(V, lam_c)

        nnz_v = self._vblock.nnz
        Haa = np.zeros((batch, nnz_v))
        Hav = np.zeros((batch, nnz_v))
        Hva = np.zeros((batch, nnz_v))
        Hvv = np.zeros((batch, nnz_v))
        Haa[:, self._pos_bus] = Gaa.real
        Hav[:, self._pos_bus] = Gav.real
        Hva[:, self._pos_bus] = Gva.real
        Hvv[:, self._pos_bus] = Gvv.real

        if self._n_lim:
            nl = self._n_lim
            muF, muT = Mu_nl[:, :nl], Mu_nl[:, nl:]
            fdVa, fdVm, Sf, tdVa, tdVm, St = self._branch_derivatives(X, V)
            for hess, dVa_, dVm_, Sbr, mu_, pos in (
                (self._f_hess, fdVa, fdVm, Sf, muF, self._pos_f),
                (self._t_hess, tdVa, tdVm, St, muT, self._pos_t),
            ):
                Baa, Bav, Bva, Bvv = hess.blocks(dVa_, dVm_, Sbr, mu_, V)
                Haa[:, pos] += Baa
                Hav[:, pos] += Bav
                Hva[:, pos] += Bva
                Hvv[:, pos] += Bvv

        Dgg = np.zeros((batch, 2 * self._ng))
        Dgg[:, : self._ng] = self.objective_hessian_diag(X) * cost_mult
        return self._hess_cache.assemble_batch([Haa, Hav, Hva, Hvv, Dgg])


def _warm_component(
    warm_starts: Sequence[Optional[WarmStart]],
    attr: str,
    n: int,
    floor: Optional[float] = None,
):
    """Stack one warm-start component into a value matrix plus presence mask."""
    batch = len(warm_starts)
    mask = np.zeros(batch, dtype=bool)
    values = np.zeros((batch, n))
    for i, warm in enumerate(warm_starts):
        component = getattr(warm, attr) if warm is not None else None
        if component is None:
            continue
        component = np.asarray(component, dtype=float)
        if component.shape != (n,):
            raise ValueError(
                f"warm start {i}: {attr} has shape {component.shape}, expected ({n},)"
            )
        values[i] = np.maximum(component, floor) if floor is not None else component
        mask[i] = True
    if not mask.any():
        return None, None
    return values, mask


def solve_opf_batch(
    case: Case,
    Pd_mw: np.ndarray,
    Qd_mvar: np.ndarray,
    warm_starts: Optional[Sequence[Optional[WarmStart]]] = None,
    options: Optional[OPFOptions] = None,
    model: Optional[OPFModel] = None,
    batched: Optional[BatchedOPFModel] = None,
    window: Optional[int] = None,
    deadline: Optional[object] = None,
) -> List[OPFResult]:
    """Solve a batch of load scenarios of one case in lockstep.

    ``Pd_mw``/``Qd_mvar`` are ``(B, nb)`` per-scenario loads in MW/MVAr;
    ``warm_starts`` is an optional per-scenario list (``None`` entries mean a
    cold start, and missing components fall back to solver defaults exactly
    like :func:`repro.opf.solver.solve_opf`).  Returns one
    :class:`OPFResult` per scenario, in input order.

    ``window`` bounds the lockstep width: the solve starts with the first
    ``window`` scenarios and *streams* the rest through the active set via
    the batched solver's retire-and-refill feed — whenever scenarios converge
    and retire, queued ones are enrolled in their place, so stragglers never
    shrink the march below the available work.  Per-scenario results are
    bit-identical for every window size (including the default unbounded
    one); the scheduler-invariant harness pins that.  Note the window bounds
    the *march* (per-iteration evaluation/factorisation width), not memory:
    solver state is allocated for the whole batch up front, so callers
    bounding footprint should split the sweep into separate calls (as the
    fleet's micro-batch dispatch does).

    ``deadline`` is an absolute wall deadline on the ``time.monotonic()``
    clock — a scalar shared by every scenario or a ``(B,)`` vector of per-row
    deadlines.  Expired rows retire with ``timed_out`` between iterations
    through the ordinary retirement path, leaving the trajectories of their
    lockstep neighbours bitwise unchanged.
    """
    options = options or OPFOptions()
    t0 = time.perf_counter()
    if model is None:
        model = OPFModel(case, flow_limits=options.flow_limits)
    elif model.case is not case:
        raise ValueError("the supplied model was built for a different case object")
    if batched is None:
        batched = BatchedOPFModel(model)
    elif batched.model is not model:
        raise ValueError("the supplied batched model wraps a different OPFModel")

    Pd_mw = np.atleast_2d(np.asarray(Pd_mw, dtype=float))
    Qd_mvar = np.atleast_2d(np.asarray(Qd_mvar, dtype=float))
    if Pd_mw.shape != Qd_mvar.shape or Pd_mw.shape[1] != case.n_bus:
        raise ValueError("Pd_mw/Qd_mvar must both be (B, n_bus)")
    batch = Pd_mw.shape[0]
    if warm_starts is None:
        warm_starts = [None] * batch
    if len(warm_starts) != batch:
        raise ValueError("warm_starts must have one entry per scenario")
    warm_starts = [
        None if w is None else w.clipped_duals() for w in warm_starts
    ]

    xmin, xmax = model.bounds()
    x_default = model.default_start() if options.init == "case" else model.flat_start()
    X0 = np.tile(x_default, (batch, 1))
    for i, warm in enumerate(warm_starts):
        if warm is not None and warm.x is not None:
            X0[i] = np.asarray(warm.x, dtype=float)

    # Sizes of the internal multiplier vectors (nonlinear rows + bound rows),
    # mirroring the _BoundHandler partition the batch solver will build.
    finite_lo = np.isfinite(xmin)
    finite_hi = np.isfinite(xmax)
    fixed = finite_lo & finite_hi & (np.abs(xmax - xmin) <= options.mips.bound_eq_tol)
    n_eq = model.n_eq_nonlin + np.count_nonzero(fixed)
    n_ineq = (
        model.n_ineq_nonlin
        + np.count_nonzero(finite_hi & ~fixed)
        + np.count_nonzero(finite_lo & ~fixed)
    )
    lam0, lam_mask = _warm_component(warm_starts, "lam", n_eq)
    mu0, mu_mask = _warm_component(warm_starts, "mu", n_ineq)
    z0, z_mask = _warm_component(warm_starts, "z", n_ineq)

    if deadline is None:
        deadlines = None
    else:
        deadlines = np.asarray(deadline, dtype=float)
        if deadlines.ndim == 0:
            deadlines = np.full(batch, float(deadlines))
        elif deadlines.shape != (batch,):
            raise ValueError("deadline must be a scalar or have one entry per scenario")

    Pd_pu = Pd_mw / case.base_mva
    Qd_pu = Qd_mvar / case.base_mva

    def f_fcn(X: np.ndarray, idx: np.ndarray):
        return batched.objective(X)

    def gh_fcn(X: np.ndarray, idx: np.ndarray):
        return batched.constraints(X, Pd_pu[idx], Qd_pu[idx])

    def hess_fcn(X, Lam_nl, Mu_nl, cost_mult, idx):
        return batched.hessian(X, Lam_nl, Mu_nl, cost_mult)

    preprocess_seconds = (time.perf_counter() - t0) / batch

    def rows(start: int, stop: int) -> dict:
        """Entry arguments for scenario rows ``[start, stop)``."""
        sl = slice(start, stop)
        return {
            "lam0": None if lam0 is None else lam0[sl],
            "mu0": None if mu0 is None else mu0[sl],
            "z0": None if z0 is None else z0[sl],
            "lam0_mask": None if lam0 is None else lam_mask[sl],
            "mu0_mask": None if mu0 is None else mu_mask[sl],
            "z0_mask": None if z0 is None else z_mask[sl],
            "deadline": None if deadlines is None else deadlines[sl],
        }

    if window is not None and window < 1:
        raise ValueError("window must be positive")
    if window is not None and window < batch:
        # Stream the batch through a bounded lockstep window: retired slots
        # are refilled from the remaining scenarios between iterations.
        cursor = window

        def feed(free_slots: int) -> Optional[BatchFeedPayload]:
            nonlocal cursor
            if cursor >= batch:
                return None
            stop = min(cursor + free_slots, batch)
            payload = BatchFeedPayload(x0=X0[cursor:stop], **rows(cursor, stop))
            cursor = stop
            return payload

        mips_results = mips_batch(
            f_fcn,
            X0[:window],
            gh_fcn=gh_fcn,
            hess_fcn=hess_fcn,
            jg_template=batched.jg_template,
            jh_template=batched.jh_template,
            hess_template=batched.hess_template,
            xmin=xmin,
            xmax=xmax,
            options=options.mips,
            feed=feed,
            feed_capacity=batch,
            **rows(0, window),
        )
    else:
        mips_results = mips_batch(
            f_fcn,
            X0,
            gh_fcn=gh_fcn,
            hess_fcn=hess_fcn,
            jg_template=batched.jg_template,
            jh_template=batched.jh_template,
            hess_template=batched.hess_template,
            xmin=xmin,
            xmax=xmax,
            lam0=lam0,
            mu0=mu0,
            z0=z0,
            lam0_mask=lam_mask,
            mu0_mask=mu_mask,
            z0_mask=z_mask,
            options=options.mips,
            deadline=deadlines,
        )
    return [
        build_opf_result(case, model, r, preprocess_seconds, Pd_mw[i], Qd_mvar[i])
        for i, r in enumerate(mips_results)
    ]
