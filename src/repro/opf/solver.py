"""AC-OPF driver: assemble the MIPS problem for a case/scenario and solve it.

``solve_opf`` is the library's main numerical entry point — the function the
Smart-PGSim framework accelerates by feeding it predicted warm-start points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.grid.components import Case
from repro.mips.options import MIPSOptions
from repro.mips.solver import mips
from repro.opf.constraints import constraint_function
from repro.opf.costs import objective
from repro.opf.hessian import hessian_function
from repro.opf.model import OPFModel
from repro.opf.result import OPFResult, build_opf_result
from repro.opf.warmstart import WarmStart


@dataclass(frozen=True)
class OPFOptions:
    """Options for :func:`solve_opf`.

    ``flow_limits`` selects the branch-flow constraint type (``"S"`` squared
    apparent power, ``"none"`` to ignore ratings); ``init`` selects the
    default starting point used when no warm start (or a partial one) is
    supplied.
    """

    flow_limits: str = "S"
    init: str = "case"  # "case" or "flat"
    mips: MIPSOptions = field(default_factory=MIPSOptions)

    def __post_init__(self) -> None:
        if self.flow_limits not in ("S", "none"):
            raise ValueError("flow_limits must be 'S' or 'none'")
        if self.init not in ("case", "flat"):
            raise ValueError("init must be 'case' or 'flat'")


def relaxed_options(options: OPFOptions, scale: float) -> OPFOptions:
    """Copy of ``options`` with all four MIPS termination tolerances scaled.

    Used by the relaxed-tolerance warm-retry fallback: a warm start that stalls
    just short of the tight default tolerances often converges immediately once
    they are loosened by a couple of orders of magnitude.
    """
    if scale <= 0:
        raise ValueError("tolerance scale must be positive")
    mips = replace(
        options.mips,
        feastol=options.mips.feastol * scale,
        gradtol=options.mips.gradtol * scale,
        comptol=options.mips.comptol * scale,
        costtol=options.mips.costtol * scale,
    )
    return replace(options, mips=mips)


def build_model(case: Case, options: Optional[OPFOptions] = None) -> OPFModel:
    """Construct (and cache nothing beyond) the OPF model for ``case``."""
    options = options or OPFOptions()
    return OPFModel(case, flow_limits=options.flow_limits)


def solve_opf(
    case: Case,
    warm_start: Optional[WarmStart] = None,
    Pd_mw: Optional[np.ndarray] = None,
    Qd_mvar: Optional[np.ndarray] = None,
    options: Optional[OPFOptions] = None,
    model: Optional[OPFModel] = None,
    deadline: Optional[float] = None,
) -> OPFResult:
    """Solve the AC optimal power flow for ``case``.

    Parameters
    ----------
    case:
        The power-grid case (loads may be overridden per call).
    warm_start:
        Optional :class:`WarmStart`; missing components fall back to the
        solver defaults (the paper's *imprecise default data*).
    Pd_mw, Qd_mvar:
        Optional per-bus loads overriding the case values — this is how
        sampled scenarios are solved without copying the case.
    options:
        :class:`OPFOptions` (flow-limit handling, initial point, MIPS options).
    model:
        Pre-built :class:`OPFModel` to reuse across scenarios of the same
        case (avoids rebuilding admittance matrices for every sample).
    deadline:
        Optional absolute wall deadline on the ``time.monotonic()`` clock.
        Checked cooperatively between solver iterations; an expired deadline
        terminates the solve with ``timed_out`` set instead of raising.
    """
    options = options or OPFOptions()
    t0 = time.perf_counter()
    if model is None:
        model = OPFModel(case, flow_limits=options.flow_limits)
    elif model.case is not case:
        raise ValueError("the supplied model was built for a different case object")

    xmin, xmax = model.bounds()
    x_default = model.default_start() if options.init == "case" else model.flat_start()

    warm = warm_start or WarmStart.cold()
    warm = warm.clipped_duals()
    x0 = x_default if warm.x is None else np.asarray(warm.x, dtype=float).copy()

    gh_fcn = constraint_function(model, Pd_mw, Qd_mvar)
    hess_fcn = hessian_function(model)

    def f_fcn(x: np.ndarray):
        f, df, _ = objective(model, x)
        return f, df

    preprocess_seconds = time.perf_counter() - t0

    mips_result = mips(
        f_fcn,
        x0,
        gh_fcn=gh_fcn,
        hess_fcn=hess_fcn,
        xmin=xmin,
        xmax=xmax,
        lam0=warm.lam,
        mu0=warm.mu,
        z0=warm.z,
        options=options.mips,
        deadline=deadline,
    )

    return build_opf_result(case, model, mips_result, preprocess_seconds, Pd_mw, Qd_mvar)


def solve_opf_with_fallback(
    case: Case,
    warm_start: WarmStart,
    Pd_mw: Optional[np.ndarray] = None,
    Qd_mvar: Optional[np.ndarray] = None,
    options: Optional[OPFOptions] = None,
    model: Optional[OPFModel] = None,
) -> tuple[OPFResult, bool, float]:
    """Warm-started solve with automatic cold restart on failure.

    Mirrors the paper's online procedure: if the warm-started solve fails to
    converge, the solver is re-run from the default initial point so the
    workflow always produces a converged solution.  Returns
    ``(result, used_fallback, restart_seconds)``.
    """
    first = solve_opf(
        case, warm_start=warm_start, Pd_mw=Pd_mw, Qd_mvar=Qd_mvar, options=options, model=model
    )
    if first.success:
        return first, False, 0.0
    retry = solve_opf(
        case, warm_start=None, Pd_mw=Pd_mw, Qd_mvar=Qd_mvar, options=options, model=model
    )
    retry.message = f"warm start failed ({first.message}); restarted from default"
    return retry, True, first.total_seconds
