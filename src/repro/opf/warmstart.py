"""Warm-start containers for the AC-OPF / MIPS pipeline.

A :class:`WarmStart` carries exactly the quantities the paper's MTL model
predicts — the primal point ``X = (Va, Vm, Pg, Qg)``, the equality multipliers
``λ``, the inequality multipliers ``µ`` and the slack variables ``Z`` — in the
MIPS-internal ordering, so it can be injected straight into the solver.  It
also supports the per-group mixing of *precise* and *imprecise* data used by
the Table I sensitivity study.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.mips.result import MIPSResult
from repro.opf.model import OPFModel


@dataclass(frozen=True)
class WarmStart:
    """Initial values for the MIPS primal and dual variables.

    Any of the fields may be ``None`` meaning "use the solver default"
    (the paper's *imprecise default data*).
    """

    x: Optional[np.ndarray] = None
    lam: Optional[np.ndarray] = None
    mu: Optional[np.ndarray] = None
    z: Optional[np.ndarray] = None

    # ------------------------------------------------------------ constructors
    @staticmethod
    def from_mips_result(result: MIPSResult) -> "WarmStart":
        """Precise warm start extracted from a converged MIPS solve."""
        return WarmStart(
            x=result.x.copy(),
            lam=result.lam.copy(),
            mu=result.mu.copy(),
            z=result.z.copy(),
        )

    @staticmethod
    def cold() -> "WarmStart":
        """The all-defaults (cold) start."""
        return WarmStart()

    # ------------------------------------------------------------------ views
    def split_x(self, model: OPFModel) -> Dict[str, np.ndarray]:
        """Named view of the primal components (requires ``x``)."""
        if self.x is None:
            raise ValueError("warm start has no primal point")
        return model.idx.split(self.x)

    def is_cold(self) -> bool:
        """True when every component is left at the solver default."""
        return self.x is None and self.lam is None and self.mu is None and self.z is None

    # ------------------------------------------------------------- sensitivity
    def masked(
        self,
        use_x: bool = True,
        use_lam: bool = True,
        use_mu: bool = True,
        use_z: bool = True,
    ) -> "WarmStart":
        """Keep only the selected components (others fall back to defaults).

        This is the knob behind the 16-combination ablation of Table I: each
        of ``X, λ, µ, Z`` is independently either *precise* (kept) or
        *imprecise* (dropped → solver default).
        """
        return WarmStart(
            x=self.x if use_x else None,
            lam=self.lam if use_lam else None,
            mu=self.mu if use_mu else None,
            z=self.z if use_z else None,
        )

    def with_noise(self, rng: np.random.Generator, relative: float) -> "WarmStart":
        """Multiplicatively perturb every present component (robustness studies)."""
        def jitter(v: Optional[np.ndarray]) -> Optional[np.ndarray]:
            if v is None:
                return None
            return v * (1.0 + relative * rng.standard_normal(v.shape))

        return WarmStart(
            x=jitter(self.x), lam=jitter(self.lam), mu=jitter(self.mu), z=jitter(self.z)
        )

    def clipped_duals(self, floor: float = 1e-8) -> "WarmStart":
        """Return a copy with ``µ`` and ``Z`` clipped to be strictly positive.

        Interior-point iterates must stay strictly inside the cone; predicted
        values can otherwise contain small negative entries.
        """
        mu = None if self.mu is None else np.maximum(self.mu, floor)
        z = None if self.z is None else np.maximum(self.z, floor)
        return replace(self, mu=mu, z=z)
