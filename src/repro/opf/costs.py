"""Polynomial generation-cost functions and their derivatives.

Cost coefficients are stored in $/h per MW powers (MATPOWER convention) while
the optimisation variable ``Pg`` is in p.u., so the chain rule brings in
factors of the MVA base for the gradient and Hessian.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.grid.components import Case
from repro.opf.model import OPFModel


def polynomial_cost(case: Case, Pg_mw: np.ndarray) -> np.ndarray:
    """Per-generator cost ($/h) for outputs ``Pg_mw`` in MW."""
    Pg_mw = np.asarray(Pg_mw, dtype=float)
    ncost_max = case.gencost.coeffs.shape[1]
    cost = np.zeros(case.n_gen)
    # Horner evaluation over the padded coefficient matrix (leading zeros for
    # generators with fewer terms contribute nothing).
    for k in range(ncost_max):
        cost = cost * Pg_mw + case.gencost.coeffs[:, k]
    return cost


def polynomial_cost_derivatives(case: Case, Pg_mw: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """First and second derivatives of the per-generator cost w.r.t. ``Pg`` in MW."""
    Pg_mw = np.asarray(Pg_mw, dtype=float)
    coeffs = case.gencost.coeffs
    ncost_max = coeffs.shape[1]
    powers = np.arange(ncost_max - 1, -1, -1, dtype=float)

    d1 = np.zeros(case.n_gen)
    d2 = np.zeros(case.n_gen)
    for k in range(ncost_max):
        p = powers[k]
        if p >= 1:
            d1 += coeffs[:, k] * p * Pg_mw ** (p - 1)
        if p >= 2:
            d2 += coeffs[:, k] * p * (p - 1) * Pg_mw ** (p - 2)
    return d1, d2


def total_cost(case: Case, Pg_mw: np.ndarray) -> float:
    """Total system generation cost ($/h) for in-service generators."""
    on = case.gen.status > 0
    return float(polynomial_cost(case, Pg_mw)[on].sum())


def objective_hessian_diag(
    model: OPFModel, x: np.ndarray, d2_mw: Optional[np.ndarray] = None
) -> np.ndarray:
    """Diagonal of the objective Hessian over the ``Pg`` block (p.u. space).

    One per-generator value ``d²cost/dPg_pu²`` with out-of-service units
    masked — the single source of truth for the cost curvature, shared by
    :func:`objective` and the Lagrangian-Hessian assembly.  ``d2_mw`` lets a
    caller that already evaluated :func:`polynomial_cost_derivatives` skip
    recomputing them.
    """
    case = model.case
    base = case.base_mva
    if d2_mw is None:
        _, d2_mw = polynomial_cost_derivatives(case, x[model.idx.pg] * base)
    return d2_mw * model.gen_on * base * base


def objective(model: OPFModel, x: np.ndarray) -> Tuple[float, np.ndarray, sp.csr_matrix]:
    """OPF objective ``f(x)``, gradient and (diagonal) Hessian in optimisation space.

    Only the ``Pg`` block of ``x`` enters the objective.
    """
    case = model.case
    base = case.base_mva
    Pg_mw = x[model.idx.pg] * base
    on = model.gen_on

    cost = polynomial_cost(case, Pg_mw) * on
    d1, d2 = polynomial_cost_derivatives(case, Pg_mw)

    f = float(cost.sum())
    df = np.zeros(model.idx.nx)
    df[model.idx.pg] = d1 * on * base  # d cost / d Pg_pu

    nx = model.idx.nx
    pg_idx = np.arange(model.idx.pg.start, model.idx.pg.stop)
    d2f = sp.csr_matrix(
        (objective_hessian_diag(model, x, d2_mw=d2), (pg_idx, pg_idx)), shape=(nx, nx)
    )
    return f, df, d2f
