"""AC optimal power flow: model, constraints, Hessian, driver and warm starts."""

from repro.opf.batch import BatchedOPFModel, solve_opf_batch
from repro.opf.costs import (
    objective,
    objective_hessian_diag,
    polynomial_cost,
    polynomial_cost_derivatives,
    total_cost,
)
from repro.opf.constraints import branch_flow_limits, constraint_function, power_balance
from repro.opf.hessian import hessian_blocks, hessian_function, lagrangian_hessian
from repro.opf.model import OPFModel, VariableIndex
from repro.opf.result import OPFResult, build_opf_result
from repro.opf.solver import (
    OPFOptions,
    build_model,
    relaxed_options,
    solve_opf,
    solve_opf_with_fallback,
)
from repro.opf.warmstart import WarmStart

__all__ = [
    "BatchedOPFModel",
    "OPFModel",
    "VariableIndex",
    "OPFOptions",
    "OPFResult",
    "WarmStart",
    "build_model",
    "build_opf_result",
    "solve_opf",
    "solve_opf_batch",
    "solve_opf_with_fallback",
    "relaxed_options",
    "objective",
    "objective_hessian_diag",
    "polynomial_cost",
    "polynomial_cost_derivatives",
    "total_cost",
    "power_balance",
    "branch_flow_limits",
    "constraint_function",
    "hessian_blocks",
    "hessian_function",
    "lagrangian_hessian",
]
