"""AC-OPF problem model: variable indexing, bounds and starting points.

The optimisation vector follows the paper (and MATPOWER)::

    x = [ Va (nb) ; Vm (nb) ; Pg (ng) ; Qg (ng) ]

with voltage angles in radians, magnitudes in p.u. and generator injections in
p.u. on the system MVA base.  The reference-bus angle is fixed through its
bounds (``xmin == xmax``), which the MIPS layer turns into an equality
constraint — this is why the paper's Table II reports ``#λ = 2·nb + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.grid.components import Case
from repro.powerflow.derivatives import dSbr_dV
from repro.powerflow.ybus import AdmittanceMatrices, make_ybus
from repro.utils.sparse import CachedBmat


@dataclass(frozen=True)
class VariableIndex:
    """Slices of the four variable groups inside the optimisation vector."""

    nb: int
    ng: int

    @property
    def nx(self) -> int:
        """Total number of optimisation variables."""
        return 2 * self.nb + 2 * self.ng

    @property
    def va(self) -> slice:
        """Voltage-angle block."""
        return slice(0, self.nb)

    @property
    def vm(self) -> slice:
        """Voltage-magnitude block."""
        return slice(self.nb, 2 * self.nb)

    @property
    def pg(self) -> slice:
        """Active generator-injection block."""
        return slice(2 * self.nb, 2 * self.nb + self.ng)

    @property
    def qg(self) -> slice:
        """Reactive generator-injection block."""
        return slice(2 * self.nb + self.ng, 2 * self.nb + 2 * self.ng)

    def split(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Split an optimisation vector into its named components."""
        return {
            "Va": x[self.va],
            "Vm": x[self.vm],
            "Pg": x[self.pg],
            "Qg": x[self.qg],
        }

    def join(self, Va: np.ndarray, Vm: np.ndarray, Pg: np.ndarray, Qg: np.ndarray) -> np.ndarray:
        """Assemble an optimisation vector from its named components."""
        return np.concatenate([Va, Vm, Pg, Qg])


class OPFModel:
    """Caches everything the OPF callbacks need for one case.

    The model is load-agnostic: loads enter only through the power-balance
    constraint evaluation, so one model can be reused across all sampled
    scenarios of a case (this is what makes dataset generation cheap).

    Beyond the admittance matrices the model holds everything about the case
    that is *constant across evaluations*: the generator-connection blocks of
    the power-balance Jacobian, the admittance rows of the rated branches and
    — crucially for the warm-started scenario sweeps — the sparsity-structure
    caches of the constraint Jacobians and the Lagrangian Hessian.  The
    patterns are computed on the first evaluation and only the numeric values
    are refreshed afterwards, so per-iteration assembly is a handful of array
    gathers.  The caches make evaluations stateful: a model must not be
    shared across threads evaluating concurrently (process pools are fine —
    each worker builds its own model).
    """

    def __init__(self, case: Case, flow_limits: str = "S"):
        if flow_limits not in ("S", "none"):
            raise ValueError("flow_limits must be 'S' or 'none'")
        self.case = case
        self.flow_limits = flow_limits
        self.adm: AdmittanceMatrices = make_ybus(case)
        self.idx = VariableIndex(nb=case.n_bus, ng=case.n_gen)

        # Branches with an active flow limit (rate_a == 0 means unlimited).
        rated = (case.branch.rate_a > 0) & (case.branch.status > 0)
        self.limited_branches = (
            np.flatnonzero(rated) if flow_limits == "S" else np.zeros(0, dtype=int)
        )
        #: Squared flow limits in p.u.
        self.flow_limit_sq = (case.branch.rate_a[self.limited_branches] / case.base_mva) ** 2

        self._ref = case.ref_bus_indices()
        if self._ref.size != 1:
            raise ValueError("OPF requires exactly one reference bus")

        nb, ng = case.n_bus, case.n_gen
        lim = self.limited_branches
        #: In-service mask of the generators (float, constant per case).
        self.gen_on = (case.gen.status > 0).astype(float)
        #: Negated generator-connection block of the power-balance Jacobian.
        self.neg_Cg_on = (-(self.adm.Cg @ sp.diags(self.gen_on))).tocsr()
        #: Constant zero blocks of the Jacobians.
        self.zero_bg = sp.csr_matrix((nb, ng))
        self.zero_lg = sp.csr_matrix((lim.size, 2 * ng))
        #: Admittance / connection rows of the rated branches (constant slices).
        self.Yf_lim = self.adm.Yf[lim]
        self.Yt_lim = self.adm.Yt[lim]
        self.Cf_lim = self.adm.Cf[lim]
        self.Ct_lim = self.adm.Ct[lim]

        # Sparsity-structure caches (pattern computed once, values refreshed).
        self._pb_jac_cache = CachedBmat("csr")
        self._flow_jac_cache = CachedBmat("csr")
        self._hess_cache = CachedBmat("csr")
        # One-entry memo for the branch-flow first derivatives: within a MIPS
        # iteration the Hessian is evaluated at the same point as the previous
        # constraint evaluation, so the kernels are shared between the two.
        self._branch_deriv_key: Optional[bytes] = None
        self._branch_deriv_val = None

    # ------------------------------------------------------------------ sizes
    @property
    def n_eq_nonlin(self) -> int:
        """Number of nonlinear equality constraints (2·nb power-balance rows)."""
        return 2 * self.case.n_bus

    @property
    def n_ineq_nonlin(self) -> int:
        """Number of nonlinear inequality constraints (2 per limited branch)."""
        return 2 * self.limited_branches.size

    # ----------------------------------------------------------------- bounds
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Variable bounds ``(xmin, xmax)``.

        Non-reference voltage angles are unbounded, the reference angle is
        fixed, magnitudes follow the bus voltage limits and generator
        injections follow their capability limits (out-of-service units are
        pinned at zero).
        """
        case = self.case
        nb, ng = case.n_bus, case.n_gen
        xmin = np.full(self.idx.nx, -np.inf)
        xmax = np.full(self.idx.nx, np.inf)

        ref = self._ref[0]
        va_ref = np.deg2rad(case.bus.Va[ref])
        xmin[self.idx.va][...] = -np.inf
        xmax[self.idx.va][...] = np.inf
        # Slices of xmin/xmax return views, so in-place assignment works.
        xmin[ref] = va_ref
        xmax[ref] = va_ref

        xmin[self.idx.vm] = case.bus.Vmin
        xmax[self.idx.vm] = case.bus.Vmax

        on = case.gen.status > 0
        pmin = np.where(on, case.gen.Pmin, 0.0) / case.base_mva
        pmax = np.where(on, case.gen.Pmax, 0.0) / case.base_mva
        qmin = np.where(on, case.gen.Qmin, 0.0) / case.base_mva
        qmax = np.where(on, case.gen.Qmax, 0.0) / case.base_mva
        xmin[self.idx.pg] = pmin
        xmax[self.idx.pg] = pmax
        xmin[self.idx.qg] = qmin
        xmax[self.idx.qg] = qmax
        return xmin, xmax

    # ----------------------------------------------------------- start points
    def default_start(self) -> np.ndarray:
        """The *imprecise default* starting point of the paper.

        This mirrors MATPOWER's OPF initialisation: case voltage profile (with
        generator buses at their set points) and the case's scheduled
        generator outputs, clipped into bounds.
        """
        case = self.case
        Va = np.deg2rad(case.bus.Va)
        Vm = case.bus.Vm.copy()
        gbus = case.gen_bus_indices()
        on = case.gen.status > 0
        Vm[gbus[on]] = case.gen.Vg[on]
        Pg = case.gen.Pg / case.base_mva
        Qg = case.gen.Qg / case.base_mva
        x0 = self.idx.join(Va, Vm, Pg, Qg)
        xmin, xmax = self.bounds()
        finite_lo, finite_hi = np.isfinite(xmin), np.isfinite(xmax)
        x0[finite_lo] = np.maximum(x0[finite_lo], xmin[finite_lo])
        x0[finite_hi] = np.minimum(x0[finite_hi], xmax[finite_hi])
        return x0

    def flat_start(self) -> np.ndarray:
        """Flat voltage profile with generation at the midpoint of its range."""
        case = self.case
        Va = np.zeros(case.n_bus)
        Vm = np.ones(case.n_bus)
        Pg = 0.5 * (case.gen.Pmin + case.gen.Pmax) / case.base_mva
        Qg = 0.5 * (case.gen.Qmin + case.gen.Qmax) / case.base_mva
        return self.idx.join(Va, Vm, Pg, Qg)

    # -------------------------------------------------------------- voltages
    def complex_voltage(self, x: np.ndarray) -> np.ndarray:
        """Complex bus voltages encoded in ``x``."""
        return x[self.idx.vm] * np.exp(1j * x[self.idx.va])

    # ------------------------------------------------------- shared derivatives
    def branch_flow_derivatives(self, x: np.ndarray, V: Optional[np.ndarray] = None):
        """First derivatives of the rated-branch flows at ``x`` (memoised).

        Returns ``((dSf_dVa, dSf_dVm, Sf), (dSt_dVa, dSt_dVm, St))`` for the
        from/to ends of the rated branches.  The constraint evaluation and the
        Lagrangian Hessian need these at the same point within one MIPS
        iteration, so the most recent evaluation is memoised (keyed on the
        bytes of ``x``).
        """
        key = x.tobytes()
        if self._branch_deriv_key == key:
            return self._branch_deriv_val
        if V is None:
            V = self.complex_voltage(x)
        value = (
            dSbr_dV(self.Yf_lim, self.Cf_lim, V),
            dSbr_dV(self.Yt_lim, self.Ct_lim, V),
        )
        self._branch_deriv_key = key
        self._branch_deriv_val = value
        return value
