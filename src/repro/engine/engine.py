"""The batched warm-start serving engine.

:class:`WarmStartEngine` is the deployable half of Smart-PGSim: a trained
prediction network plus everything needed to turn load scenarios into solved
AC-OPF problems at throughput —

* **batched MTL inference** — one forward pass covers a whole batch of load
  vectors (``warm_starts_for``), instead of one per-row predict per scenario;
* **a persistent solver fleet** — warm-started MIPS solves are dispatched
  across the :class:`~repro.parallel.pool.SolverFleet` workers, which stay
  alive across requests;
* **pluggable failure recovery** — a :class:`~repro.engine.fallback.FallbackPolicy`
  decides what happens when a warm solve does not converge;
* **artifact persistence** — :meth:`save_artifact` / :meth:`load_artifact`
  bundle model weights, normalizer statistics, configuration and a case
  fingerprint, so an engine can be reconstructed from disk and serve requests
  without retraining.

The offline/online driver in :mod:`repro.core.framework` is a thin
orchestrator over this class.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.data.dataset import OPFDataset
from repro.engine.fallback import CircuitBreaker, FallbackPolicy, get_fallback_policy
from repro.engine.records import OnlineEvaluation, OnlineRecord
from repro.grid.components import Case
from repro.mtl.config import MTLConfig
from repro.mtl.normalization import DatasetNormalizer
from repro.mtl.trainer import MTLTrainer, predict_physical, warm_starts_from_predictions
from repro.nn.modules import Module
from repro.opf.model import OPFModel
from repro.opf.solver import OPFOptions
from repro.opf.warmstart import WarmStart
from repro.parallel.pool import EXECUTION_MODES, SolverFleet, SweepResult
from repro.parallel.scenarios import Scenario, ScenarioSet
from repro.parallel.scheduler import SCHEDULES
from repro.testing.faults import FaultPlan
from repro.utils.logging import get_logger

LOGGER = get_logger("engine")

#: Sentinel for :meth:`WarmStartEngine.load_artifact`: "use the fallback
#: policy persisted in the artifact" (``None`` keeps meaning no recovery).
PERSISTED_FALLBACK = object()


class WarmStartEngine:
    """Serves batches of load scenarios with MTL warm starts and a solver fleet."""

    def __init__(
        self,
        case: Case,
        network: Module,
        normalizer: DatasetNormalizer,
        config: Optional[MTLConfig] = None,
        opf_options: Optional[OPFOptions] = None,
        fallback: Union[str, FallbackPolicy, None] = "cold_restart",
        opf_model: Optional[OPFModel] = None,
        execution: str = "scenario",
        kkt_solver: Optional[str] = None,
        kkt_factor_threads: Optional[int] = None,
        schedule: str = "static",
        microbatch: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
        faults: Optional[FaultPlan] = None,
        crash_retries: int = 1,
    ):
        self.case = case
        self.network = network
        self.normalizer = normalizer
        self.config = config or getattr(network, "config", MTLConfig())
        self.opf_options = opf_options or OPFOptions()
        if kkt_solver is not None or kkt_factor_threads is not None:
            # Convenience overrides so deployments can pick the KKT backend
            # (e.g. "blockdiag" for lockstep batch serving, "ldl" for the
            # refactorisation backend) and its factorisation thread count
            # without rebuilding the whole (frozen) option tree by hand.
            mips_overrides = {}
            if kkt_solver is not None:
                mips_overrides["kkt_solver"] = kkt_solver
            if kkt_factor_threads is not None:
                mips_overrides["kkt_factor_threads"] = kkt_factor_threads
            self.opf_options = replace(
                self.opf_options,
                mips=replace(self.opf_options.mips, **mips_overrides),
            )
            self.opf_options.mips.validate()
        self.fallback = get_fallback_policy(fallback)
        self.opf_model = opf_model or OPFModel(case, flow_limits=self.opf_options.flow_limits)
        if execution not in EXECUTION_MODES:
            # Fail at construction, not at the first (lazy) fleet creation.
            raise ValueError(f"execution must be one of {EXECUTION_MODES}")
        if schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}")
        if microbatch is not None and microbatch < 1:
            raise ValueError("microbatch must be positive")
        #: Worker execution mode: ``"scenario"`` (per-scenario solves) or
        #: ``"batch"`` (lockstep batched MIPS per worker).
        self.execution = execution
        #: Fleet scheduling policy: ``"static"`` (cost-balanced fixed chunks)
        #: or ``"steal"`` (elastic micro-batch queue with work stealing).
        self.schedule = schedule
        #: Micro-batch size for the elastic scheduler (auto-sized when None).
        self.microbatch = microbatch
        #: Optional health-aware circuit breaker over the warm-start path.
        #: While open, new requests skip inference and go straight to the
        #: relaxed/cold path; per-request outcomes feed its health window.
        self.breaker = breaker
        #: Optional deterministic fault plan injected into fleet workers
        #: (testing only) and the crash-retry budget handed to fleets.
        self.faults = faults
        self.crash_retries = crash_retries
        #: Live fleets keyed by worker count; created lazily, kept across calls.
        self._fleets: Dict[int, SolverFleet] = {}

    # -------------------------------------------------------------- constructors
    @classmethod
    def from_trainer(
        cls,
        trainer: MTLTrainer,
        opf_options: Optional[OPFOptions] = None,
        fallback: Union[str, FallbackPolicy, None] = "cold_restart",
        execution: str = "scenario",
        kkt_solver: Optional[str] = None,
        kkt_factor_threads: Optional[int] = None,
        schedule: str = "static",
        microbatch: Optional[int] = None,
    ) -> "WarmStartEngine":
        """Build an engine that shares a trained :class:`MTLTrainer`'s state."""
        return cls(
            trainer.opf_model.case,
            trainer.network,
            trainer.normalizer,
            config=trainer.config,
            opf_options=opf_options,
            fallback=fallback,
            opf_model=trainer.opf_model,
            execution=execution,
            kkt_solver=kkt_solver,
            kkt_factor_threads=kkt_factor_threads,
            schedule=schedule,
            microbatch=microbatch,
        )

    # ---------------------------------------------------------------- inference
    def predict_physical(self, inputs_pu: np.ndarray) -> Dict[str, np.ndarray]:
        """Batched inference for raw p.u. load vectors; outputs in physical units."""
        return predict_physical(self.network, self.normalizer, inputs_pu)

    def warm_starts_for(self, inputs_pu: np.ndarray) -> List[WarmStart]:
        """One forward pass over a batch of load vectors → one warm start per row."""
        return warm_starts_from_predictions(
            self.predict_physical(np.atleast_2d(inputs_pu)), self.opf_model
        )

    # ------------------------------------------------------------------ serving
    def fleet(self, n_workers: int = 1) -> SolverFleet:
        """The persistent solver fleet for ``n_workers`` (created on first use)."""
        fleet = self._fleets.get(n_workers)
        if fleet is None:
            fleet = SolverFleet(
                self.case,
                options=self.opf_options,
                n_workers=n_workers,
                fallback=self.fallback,
                model=self.opf_model if n_workers == 1 else None,
                execution=self.execution,
                schedule=self.schedule,
                microbatch=self.microbatch,
                faults=self.faults,
                crash_retries=self.crash_retries,
            )
            self._fleets[n_workers] = fleet
            LOGGER.info(
                "%s: started %s-mode (%s-scheduled) solver fleet with %d worker(s)",
                self.case.name,
                self.execution,
                self.schedule,
                n_workers,
            )
        return fleet

    def serve(
        self,
        scenarios: ScenarioSet,
        n_workers: int = 1,
        deadline_seconds: Optional[float] = None,
    ) -> SweepResult:
        """Serve a batch of scenarios: batched inference + fleet dispatch.

        ``deadline_seconds`` bounds each scenario's wall time; expired solves
        retire with ``timed_out`` outcomes instead of raising.  When the
        engine's :class:`~repro.engine.fallback.CircuitBreaker` is open, the
        request skips inference entirely and is served from the degraded
        (cold-start + fallback) path.  Faults injected via the engine's
        :class:`~repro.testing.faults.FaultPlan` never escape this method —
        they surface as structured failed outcomes in the sweep.
        """
        degraded = self.breaker is not None and not self.breaker.allow_warm()
        if degraded:
            warm_starts = None
            LOGGER.info(
                "%s: circuit breaker open — serving %d scenario(s) on the degraded path",
                self.case.name,
                len(scenarios),
            )
        else:
            warm_starts = self.warm_starts_for(scenarios.feature_matrix(self.case.base_mva))
        sweep = self.fleet(n_workers).solve(
            scenarios, warm_starts, deadline_seconds=deadline_seconds
        )
        if self.breaker is not None:
            # Feed outcomes in scenario order so the breaker's count-based
            # state machine is deterministic regardless of worker scheduling.
            for outcome in sorted(sweep.outcomes, key=lambda o: o.scenario_id):
                self.breaker.record(outcome.used_fallback)
        return sweep

    def serve_loads(
        self,
        Pd_mw: np.ndarray,
        Qd_mvar: np.ndarray,
        n_workers: int = 1,
        deadline_seconds: Optional[float] = None,
    ) -> SweepResult:
        """Serve raw per-bus load matrices (one row per scenario, MW/MVAr)."""
        Pd_mw = np.atleast_2d(np.asarray(Pd_mw, dtype=float))
        Qd_mvar = np.atleast_2d(np.asarray(Qd_mvar, dtype=float))
        if Pd_mw.shape != Qd_mvar.shape:
            raise ValueError("Pd_mw and Qd_mvar must have matching shapes")
        # Row views into the validated matrices are enough: Scenario is frozen
        # and the rows are consumed within this call — copying every row just
        # doubled the request's allocation rate.
        scenarios = ScenarioSet(
            self.case.name,
            [Scenario(i, Pd_mw[i], Qd_mvar[i]) for i in range(Pd_mw.shape[0])],
        )
        return self.serve(scenarios, n_workers=n_workers, deadline_seconds=deadline_seconds)

    # --------------------------------------------------------------- evaluation
    def evaluate(
        self,
        dataset: OPFDataset,
        max_problems: Optional[int] = None,
        n_workers: int = 1,
        deadline_seconds: Optional[float] = None,
    ) -> OnlineEvaluation:
        """Warm-start every problem of ``dataset`` and aggregate the outcomes.

        Cold-start timings and iteration counts are taken from the dataset
        (they were measured while generating the ground truth), so the online
        phase only pays for inference plus the warm-started solve — exactly
        like the deployed system.  Inference is one batched forward pass; its
        wall-clock is attributed evenly across the records.
        """
        n = dataset.n_samples if max_problems is None else min(max_problems, dataset.n_samples)
        if n < 1:
            raise ValueError("dataset has no problems to evaluate")

        t0 = time.perf_counter()
        warm_starts = self.warm_starts_for(dataset.inputs[:n])
        inference_seconds = (time.perf_counter() - t0) / n

        scenarios = ScenarioSet(
            self.case.name,
            [Scenario(i, dataset.Pd_mw[i], dataset.Qd_mw[i]) for i in range(n)],
        )
        sweep = self.fleet(n_workers).solve(
            scenarios, warm_starts, deadline_seconds=deadline_seconds
        )

        trips = 0 if self.breaker is None else self.breaker.trips
        evaluation = OnlineEvaluation(case_name=self.case.name)
        for outcome in sweep.outcomes:
            i = outcome.scenario_id
            evaluation.records.append(
                OnlineRecord(
                    scenario_id=i,
                    success=outcome.success,
                    used_fallback=outcome.used_fallback,
                    iterations_warm=outcome.iterations,
                    iterations_cold=float(dataset.iterations[i]),
                    inference_seconds=inference_seconds,
                    warm_solve_seconds=outcome.solve_seconds,
                    cold_solve_seconds=float(dataset.solve_seconds[i]),
                    cost_warm=outcome.objective,
                    cost_cold=float(dataset.objectives[i]),
                    fallback_success=outcome.fallback_success,
                    iterations_fallback=outcome.iterations_fallback,
                    fallback_solve_seconds=outcome.fallback_seconds,
                    cost_fallback=outcome.objective_fallback,
                    solver_phase_seconds=dict(outcome.phase_seconds),
                    retries=outcome.retries,
                    timed_out=outcome.timed_out,
                    fallback_trips=trips,
                )
            )
        return evaluation

    # -------------------------------------------------------------- persistence
    def save_artifact(self, path: Union[str, Path]) -> Path:
        """Persist the engine (weights, normalizer, config, case fingerprint)."""
        from repro.engine.artifact import save_artifact

        return save_artifact(self, path)

    @staticmethod
    def load_artifact(
        path: Union[str, Path],
        case: Case,
        opf_options: Optional[OPFOptions] = None,
        fallback: object = PERSISTED_FALLBACK,
        opf_model: Optional[OPFModel] = None,
        execution: str = "scenario",
        schedule: str = "static",
        microbatch: Optional[int] = None,
    ) -> "WarmStartEngine":
        """Reconstruct an engine previously written by :meth:`save_artifact`.

        ``fallback`` defaults to the policy persisted in the artifact; pass a
        name, a policy instance or ``None`` (no recovery) to override.
        """
        from repro.engine.artifact import load_artifact

        return load_artifact(
            path,
            case,
            opf_options=opf_options,
            fallback=fallback,
            opf_model=opf_model,
            execution=execution,
            schedule=schedule,
            microbatch=microbatch,
        )

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down every fleet this engine started (idempotent)."""
        for fleet in self._fleets.values():
            fleet.close()
        self._fleets.clear()

    def __enter__(self) -> "WarmStartEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
