"""The batched warm-start serving engine.

:class:`WarmStartEngine` is the deployable half of Smart-PGSim: a trained
prediction network plus everything needed to turn load scenarios into solved
AC-OPF problems at throughput —

* **batched MTL inference** — one forward pass covers a whole batch of load
  vectors (``warm_starts_for``), instead of one per-row predict per scenario;
* **a persistent solver fleet** — warm-started MIPS solves are dispatched
  across the :class:`~repro.parallel.pool.SolverFleet` workers, which stay
  alive across requests;
* **pluggable failure recovery** — a :class:`~repro.engine.fallback.FallbackPolicy`
  decides what happens when a warm solve does not converge;
* **artifact persistence** — :meth:`save_artifact` / :meth:`load_artifact`
  bundle model weights, normalizer statistics, configuration and a case
  fingerprint, so an engine can be reconstructed from disk and serve requests
  without retraining.

The offline/online driver in :mod:`repro.core.framework` is a thin
orchestrator over this class.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.dataset import OPFDataset
from repro.engine.drift import DriftMonitor, DriftReport
from repro.engine.fallback import CircuitBreaker, FallbackPolicy, get_fallback_policy
from repro.engine.records import OnlineEvaluation, OnlineRecord
from repro.grid.components import Case
from repro.mtl.config import MTLConfig
from repro.mtl.normalization import DatasetNormalizer
from repro.mtl.trainer import MTLTrainer, predict_physical, warm_starts_from_predictions
from repro.nn.modules import Module
from repro.opf.model import OPFModel
from repro.opf.solver import OPFOptions
from repro.opf.warmstart import WarmStart
from repro.parallel.pool import EXECUTION_MODES, SolverFleet, SweepResult
from repro.parallel.scenarios import Scenario, ScenarioSet
from repro.parallel.scheduler import SCHEDULES
from repro.testing.faults import FaultPlan
from repro.utils.logging import get_logger

LOGGER = get_logger("engine")


def _predict_rows(
    network: Module, normalizer: DatasetNormalizer, inputs_pu: np.ndarray
) -> Dict[str, np.ndarray]:
    """Batched inference whose per-row outputs are independent of batch width.

    Requests ride whatever flush the async batcher happened to cut, so the
    serving path must not let the flush width leak into the predicted warm
    starts.  The shared :func:`repro.mtl.trainer.predict_physical` helper
    provides the guarantee — every forward pass runs in canonical
    fixed-width gemm blocks — so row ``i``'s prediction is bitwise identical
    whether it was served alone, in a pair, or in the middle of a wide
    coalesced batch, and trainer-side predictions match the serving path
    bit for bit.
    """
    return predict_physical(network, normalizer, inputs_pu)

#: Sentinel for :meth:`WarmStartEngine.load_artifact`: "use the fallback
#: policy persisted in the artifact" (``None`` keeps meaning no recovery).
PERSISTED_FALLBACK = object()


@dataclass(frozen=True)
class ServingModel:
    """One immutable generation of the engine's learned state.

    The engine publishes exactly one of these at a time; a hot-swap builds the
    next generation completely and then replaces the published reference in a
    single assignment.  Requests snapshot the reference once on entry, so a
    request in flight during a swap finishes on the generation it started
    with — every request is served by a *pure* generation, never a hybrid.
    """

    network: Module
    normalizer: DatasetNormalizer
    config: MTLConfig
    generation: int = 0


class WarmStartEngine:
    """Serves batches of load scenarios with MTL warm starts and a solver fleet."""

    def __init__(
        self,
        case: Case,
        network: Module,
        normalizer: DatasetNormalizer,
        config: Optional[MTLConfig] = None,
        opf_options: Optional[OPFOptions] = None,
        fallback: Union[str, FallbackPolicy, None] = "cold_restart",
        opf_model: Optional[OPFModel] = None,
        execution: str = "scenario",
        kkt_solver: Optional[str] = None,
        kkt_factor_threads: Optional[int] = None,
        schedule: str = "static",
        microbatch: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
        faults: Optional[FaultPlan] = None,
        crash_retries: int = 1,
        drift_monitor: Optional[DriftMonitor] = None,
    ):
        self.case = case
        #: The published model generation.  Swapped atomically by
        #: :meth:`hot_swap`; read it through the ``network`` / ``normalizer``
        #: / ``config`` / ``generation`` properties, or snapshot the whole
        #: :class:`ServingModel` for request-pure serving.
        self._serving = ServingModel(
            network=network,
            normalizer=normalizer,
            config=config or getattr(network, "config", MTLConfig()),
        )
        self._swap_lock = threading.Lock()
        self.opf_options = opf_options or OPFOptions()
        if kkt_solver is not None or kkt_factor_threads is not None:
            # Convenience overrides so deployments can pick the KKT backend
            # (e.g. "blockdiag" for lockstep batch serving, "ldl" for the
            # refactorisation backend) and its factorisation thread count
            # without rebuilding the whole (frozen) option tree by hand.
            mips_overrides = {}
            if kkt_solver is not None:
                mips_overrides["kkt_solver"] = kkt_solver
            if kkt_factor_threads is not None:
                mips_overrides["kkt_factor_threads"] = kkt_factor_threads
            self.opf_options = replace(
                self.opf_options,
                mips=replace(self.opf_options.mips, **mips_overrides),
            )
            self.opf_options.mips.validate()
        self.fallback = get_fallback_policy(fallback)
        self.opf_model = opf_model or OPFModel(case, flow_limits=self.opf_options.flow_limits)
        if execution not in EXECUTION_MODES:
            # Fail at construction, not at the first (lazy) fleet creation.
            raise ValueError(f"execution must be one of {EXECUTION_MODES}")
        if schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}")
        if microbatch is not None and microbatch < 1:
            raise ValueError("microbatch must be positive")
        #: Worker execution mode: ``"scenario"`` (per-scenario solves) or
        #: ``"batch"`` (lockstep batched MIPS per worker).
        self.execution = execution
        #: Fleet scheduling policy: ``"static"`` (cost-balanced fixed chunks)
        #: or ``"steal"`` (elastic micro-batch queue with work stealing).
        self.schedule = schedule
        #: Micro-batch size for the elastic scheduler (auto-sized when None).
        self.microbatch = microbatch
        #: Optional health-aware circuit breaker over the warm-start path.
        #: While open, new requests skip inference and go straight to the
        #: relaxed/cold path; per-request outcomes feed its health window.
        self.breaker = breaker
        #: Optional predictive drift monitor fed one outcome per served
        #: scenario (in scenario-id order); surfaces trends on
        #: :meth:`drift_report` *before* the breaker has anything to trip on.
        self.drift_monitor = drift_monitor
        #: Optional deterministic fault plan injected into fleet workers
        #: (testing only) and the crash-retry budget handed to fleets.
        self.faults = faults
        self.crash_retries = crash_retries
        #: Live fleets keyed by worker count; created lazily, kept across calls.
        self._fleets: Dict[int, SolverFleet] = {}
        #: Trajectory-serving fleets (``collect_solutions=True`` — the
        #: step-to-step warm chain *is* the previous step's solutions), kept
        #: separate so ordinary serving keeps its lean no-solution transfers.
        self._trajectory_fleets: Dict[int, SolverFleet] = {}

    # ------------------------------------------------------------ serving state
    @property
    def network(self) -> Module:
        """The live generation's prediction network."""
        return self._serving.network

    @property
    def normalizer(self) -> DatasetNormalizer:
        """The live generation's normalizer statistics."""
        return self._serving.normalizer

    @property
    def config(self) -> MTLConfig:
        """The live generation's MTL configuration."""
        return self._serving.config

    @property
    def generation(self) -> int:
        """Monotonic model-generation counter (0 at construction)."""
        return self._serving.generation

    @property
    def serving_model(self) -> ServingModel:
        """Snapshot of the published generation (immutable)."""
        return self._serving

    def hot_swap(
        self,
        network: Module,
        normalizer: DatasetNormalizer,
        config: Optional[MTLConfig] = None,
    ) -> int:
        """Atomically publish a new model generation; returns its number.

        The next :class:`ServingModel` is built completely before being
        published in one reference assignment, so there is no instant at which
        a request can observe a half-swapped engine: requests already past
        their snapshot finish on the old generation, requests entering after
        the assignment serve the new one, and nothing is dropped.  On success
        the health machinery is reset — a freshly promoted model must not
        inherit the previous model's open breaker or drift stream (trip
        counts are cumulative telemetry and survive the reset).
        """
        with self._swap_lock:
            incumbent = self._serving
            self._serving = ServingModel(
                network=network,
                normalizer=normalizer,
                config=config or getattr(network, "config", incumbent.config),
                generation=incumbent.generation + 1,
            )
            published = self._serving
        if self.breaker is not None:
            self.breaker.reset()
        if self.drift_monitor is not None:
            self.drift_monitor.reset()
        LOGGER.info(
            "%s: hot-swapped serving model to generation %d",
            self.case.name,
            published.generation,
        )
        return published.generation

    def adopt_artifact(self, path: Union[str, Path]) -> int:
        """Hot-swap to the model persisted in an artifact file.

        The artifact's case fingerprint and content checksum are verified
        *before* anything is published — a mismatched or corrupt artifact
        raises (:class:`~repro.engine.artifact.ArtifactMismatchError` /
        :class:`~repro.engine.artifact.ArtifactCorruptError`) with the
        incumbent generation untouched.  Returns the new generation.
        """
        from repro.engine.artifact import load_artifact

        candidate = load_artifact(
            path,
            self.case,
            opf_options=self.opf_options,
            opf_model=self.opf_model,
        )
        return self.hot_swap(candidate.network, candidate.normalizer, candidate.config)

    def drift_report(self) -> Optional[DriftReport]:
        """The drift monitor's current verdict (``None`` without a monitor)."""
        return None if self.drift_monitor is None else self.drift_monitor.report()

    # -------------------------------------------------------------- constructors
    @classmethod
    def from_trainer(
        cls,
        trainer: MTLTrainer,
        opf_options: Optional[OPFOptions] = None,
        fallback: Union[str, FallbackPolicy, None] = "cold_restart",
        execution: str = "scenario",
        kkt_solver: Optional[str] = None,
        kkt_factor_threads: Optional[int] = None,
        schedule: str = "static",
        microbatch: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
        drift_monitor: Optional[DriftMonitor] = None,
    ) -> "WarmStartEngine":
        """Build an engine that shares a trained :class:`MTLTrainer`'s state."""
        return cls(
            trainer.opf_model.case,
            trainer.network,
            trainer.normalizer,
            config=trainer.config,
            opf_options=opf_options,
            fallback=fallback,
            opf_model=trainer.opf_model,
            execution=execution,
            kkt_solver=kkt_solver,
            kkt_factor_threads=kkt_factor_threads,
            schedule=schedule,
            microbatch=microbatch,
            breaker=breaker,
            drift_monitor=drift_monitor,
        )

    # ---------------------------------------------------------------- inference
    def predict_physical(self, inputs_pu: np.ndarray) -> Dict[str, np.ndarray]:
        """Batched inference for raw p.u. load vectors; outputs in physical units.

        Row-deterministic: a row's prediction is bitwise identical whether it
        is served alone or inside a batch (see :func:`_predict_rows`).
        """
        return _predict_rows(self.network, self.normalizer, inputs_pu)

    def warm_starts_for(self, inputs_pu: np.ndarray) -> List[WarmStart]:
        """One forward pass over a batch of load vectors → one warm start per row."""
        return warm_starts_from_predictions(
            self.predict_physical(np.atleast_2d(inputs_pu)), self.opf_model
        )

    # ------------------------------------------------------------------ serving
    def fleet(self, n_workers: int = 1) -> SolverFleet:
        """The persistent solver fleet for ``n_workers`` (created on first use)."""
        fleet = self._fleets.get(n_workers)
        if fleet is None:
            fleet = SolverFleet(
                self.case,
                options=self.opf_options,
                n_workers=n_workers,
                fallback=self.fallback,
                model=self.opf_model if n_workers == 1 else None,
                execution=self.execution,
                schedule=self.schedule,
                microbatch=self.microbatch,
                faults=self.faults,
                crash_retries=self.crash_retries,
            )
            self._fleets[n_workers] = fleet
            LOGGER.info(
                "%s: started %s-mode (%s-scheduled) solver fleet with %d worker(s)",
                self.case.name,
                self.execution,
                self.schedule,
                n_workers,
            )
        return fleet

    def serve(
        self,
        scenarios: ScenarioSet,
        n_workers: int = 1,
        deadline_seconds: Optional[object] = None,
        deadline: Optional[object] = None,
    ) -> SweepResult:
        """Serve a batch of scenarios: batched inference + fleet dispatch.

        ``deadline_seconds`` (relative wall budgets) and ``deadline``
        (absolute ``time.monotonic()`` deadlines) bound the request — each a
        scalar shared by every scenario or a per-scenario sequence
        (``inf``/``nan`` = unbounded), which is how the async batcher
        forwards the different budgets of coalesced requests.  Expired solves
        retire with ``timed_out`` outcomes instead of raising.  When the
        engine's :class:`~repro.engine.fallback.CircuitBreaker` is open, the
        request skips inference entirely and is served from the degraded
        (cold-start + fallback) path.  Faults injected via the engine's
        :class:`~repro.testing.faults.FaultPlan` never escape this method —
        they surface as structured failed outcomes in the sweep.

        The published :class:`ServingModel` is snapshotted once on entry, so
        a hot-swap concurrent with this request cannot produce a hybrid: the
        whole request is served by the generation recorded on the returned
        sweep's ``model_generation``.

        An empty request short-circuits to an empty sweep stamped with the
        live generation — it never reaches inference, the fleet or the
        health machinery.
        """
        serving = self._serving
        if len(scenarios) == 0:
            sweep = SweepResult(
                case_name=self.case.name,
                n_workers=n_workers,
                execution=self.execution,
                schedule=self.schedule,
            )
            sweep.model_generation = serving.generation
            return sweep
        degraded = self.breaker is not None and not self.breaker.allow_warm()
        if degraded:
            warm_starts = None
            LOGGER.info(
                "%s: circuit breaker open — serving %d scenario(s) on the degraded path",
                self.case.name,
                len(scenarios),
            )
        else:
            warm_starts = warm_starts_from_predictions(
                _predict_rows(
                    serving.network,
                    serving.normalizer,
                    np.atleast_2d(scenarios.feature_matrix(self.case.base_mva)),
                ),
                self.opf_model,
            )
        sweep = self.fleet(n_workers).solve(
            scenarios, warm_starts, deadline_seconds=deadline_seconds, deadline=deadline
        )
        sweep.model_generation = serving.generation
        # Feed health machinery in scenario order so both count-based state
        # machines are deterministic regardless of worker scheduling.  The
        # drift monitor sees every outcome first: trends surface on
        # ``drift_report()`` before the breaker has accumulated enough
        # realized fallbacks to trip.
        ordered = sorted(sweep.outcomes, key=lambda o: o.scenario_id)
        if self.drift_monitor is not None:
            for outcome in ordered:
                self.drift_monitor.observe_outcome(outcome)
        if self.breaker is not None:
            for outcome in ordered:
                self.breaker.record(outcome.used_fallback)
        return sweep

    def serve_loads(
        self,
        Pd_mw: np.ndarray,
        Qd_mvar: np.ndarray,
        n_workers: int = 1,
        deadline_seconds: Optional[object] = None,
        deadline: Optional[object] = None,
    ) -> SweepResult:
        """Serve raw per-bus load matrices (one row per scenario, MW/MVAr).

        Deadlines follow :meth:`serve` (scalar or one entry per row).  An
        empty load matrix (zero rows or a zero-size array) is a valid empty
        request and returns an empty generation-stamped sweep.
        """
        Pd_mw = np.asarray(Pd_mw, dtype=float)
        Qd_mvar = np.asarray(Qd_mvar, dtype=float)
        if Pd_mw.size == 0 and Qd_mvar.size == 0:
            return self.serve(
                ScenarioSet(self.case.name, [], n_bus=self.case.n_bus),
                n_workers=n_workers,
                deadline_seconds=deadline_seconds,
                deadline=deadline,
            )
        Pd_mw = np.atleast_2d(Pd_mw)
        Qd_mvar = np.atleast_2d(Qd_mvar)
        if Pd_mw.shape != Qd_mvar.shape:
            raise ValueError("Pd_mw and Qd_mvar must have matching shapes")
        # Row views into the validated matrices are enough: Scenario is frozen
        # and the rows are consumed within this call — copying every row just
        # doubled the request's allocation rate.
        scenarios = ScenarioSet(
            self.case.name,
            [Scenario(i, Pd_mw[i], Qd_mvar[i]) for i in range(Pd_mw.shape[0])],
            n_bus=self.case.n_bus,
        )
        return self.serve(
            scenarios,
            n_workers=n_workers,
            deadline_seconds=deadline_seconds,
            deadline=deadline,
        )

    def trajectory_fleet(self, n_workers: int = 1) -> SolverFleet:
        """The persistent solution-collecting fleet for trajectory serving.

        Separate from :meth:`fleet` because trajectory chaining needs every
        converged solve's primal/dual variables shipped back
        (``collect_solutions=True``), which ordinary serving deliberately
        avoids paying for.
        """
        fleet = self._trajectory_fleets.get(n_workers)
        if fleet is None:
            fleet = SolverFleet(
                self.case,
                options=self.opf_options,
                n_workers=n_workers,
                fallback=self.fallback,
                collect_solutions=True,
                model=self.opf_model if n_workers == 1 else None,
                execution=self.execution,
                schedule=self.schedule,
                microbatch=self.microbatch,
                faults=self.faults,
                crash_retries=self.crash_retries,
            )
            self._trajectory_fleets[n_workers] = fleet
            LOGGER.info(
                "%s: started trajectory fleet (%s-mode, %s-scheduled) with %d worker(s)",
                self.case.name,
                self.execution,
                self.schedule,
                n_workers,
            )
        return fleet

    def serve_trajectory(
        self,
        steps: "Sequence[ScenarioSet]",
        n_workers: int = 1,
        warm_chain: bool = True,
        deadline_seconds: Optional[object] = None,
    ) -> "TrajectoryResult":
        """Serve a time-coupled multi-period trajectory with warm chaining.

        ``steps`` is the per-period scenario sets of one trajectory (equally
        sized — see :func:`repro.parallel.trajectory.trajectory_steps`).
        Step 0 is warm-started from batched MTL inference exactly like
        :meth:`serve`; every later step chains from its predecessor's
        converged solutions (primal + equality multipliers, with ``µ``/``Z``
        masked across topology changes) — the model predicts once, the
        trajectory's temporal locality does the rest.  ``warm_chain=False``
        serves every step from the model instead (the per-step baseline the
        benchmark compares against).

        The published :class:`ServingModel` is snapshotted once for the whole
        trajectory and stamped on every per-step sweep; the health machinery
        is fed per step in scenario order, like :meth:`serve`.
        """
        from repro.parallel.trajectory import MultiPeriodSweep, TrajectoryResult

        steps = list(steps)
        serving = self._serving
        if not steps:
            return TrajectoryResult(case_name=self.case.name)

        degraded = self.breaker is not None and not self.breaker.allow_warm()

        def model_warm_starts(step: ScenarioSet) -> Optional[List[WarmStart]]:
            if degraded or len(step) == 0:
                return None
            return warm_starts_from_predictions(
                _predict_rows(
                    serving.network,
                    serving.normalizer,
                    np.atleast_2d(step.feature_matrix(self.case.base_mva)),
                ),
                self.opf_model,
            )

        fleet = self.trajectory_fleet(n_workers)
        if warm_chain:
            driver = MultiPeriodSweep(fleet, warm_chain=True)
            result = driver.run(
                steps,
                initial_warm_starts=model_warm_starts(steps[0]),
                deadline_seconds=deadline_seconds,
            )
        else:
            # Per-step model serving: no chaining, every period predicted.
            result = TrajectoryResult(case_name=self.case.name)
            for t, step in enumerate(steps):
                sweep = fleet.solve(
                    step,
                    warm_starts=model_warm_starts(step),
                    deadline_seconds=deadline_seconds,
                )
                sweep.period = t
                result.steps.append(sweep)
        for sweep in result.steps:
            sweep.model_generation = serving.generation
            ordered = sorted(sweep.outcomes, key=lambda o: o.scenario_id)
            if self.drift_monitor is not None:
                for outcome in ordered:
                    self.drift_monitor.observe_outcome(outcome)
            if self.breaker is not None:
                for outcome in ordered:
                    self.breaker.record(outcome.used_fallback)
        return result

    # --------------------------------------------------------------- evaluation
    def evaluate(
        self,
        dataset: OPFDataset,
        max_problems: Optional[int] = None,
        n_workers: int = 1,
        deadline_seconds: Optional[object] = None,
        deadline: Optional[object] = None,
    ) -> OnlineEvaluation:
        """Warm-start every problem of ``dataset`` and aggregate the outcomes.

        Cold-start timings and iteration counts are taken from the dataset
        (they were measured while generating the ground truth), so the online
        phase only pays for inference plus the warm-started solve — exactly
        like the deployed system.  Inference is one batched forward pass; its
        wall-clock is attributed evenly across the records.
        """
        n = dataset.n_samples if max_problems is None else min(max_problems, dataset.n_samples)
        if n < 1:
            raise ValueError("dataset has no problems to evaluate")

        serving = self._serving
        t0 = time.perf_counter()
        warm_starts = warm_starts_from_predictions(
            _predict_rows(
                serving.network, serving.normalizer, np.atleast_2d(dataset.inputs[:n])
            ),
            self.opf_model,
        )
        inference_seconds = (time.perf_counter() - t0) / n

        scenarios = ScenarioSet(
            self.case.name,
            [Scenario(i, dataset.Pd_mw[i], dataset.Qd_mw[i]) for i in range(n)],
            n_bus=self.case.n_bus,
        )
        sweep = self.fleet(n_workers).solve(
            scenarios, warm_starts, deadline_seconds=deadline_seconds, deadline=deadline
        )
        sweep.model_generation = serving.generation

        evaluation = OnlineEvaluation(case_name=self.case.name)
        for outcome in sweep.outcomes:
            i = outcome.scenario_id
            # Outcomes arrive sorted by scenario id (the sweep sorts), so the
            # drift stream — and the per-record status snapshot — is
            # deterministic whatever the worker scheduling did.
            drift_status = "stationary"
            if self.drift_monitor is not None:
                self.drift_monitor.observe_outcome(outcome)
                drift_status = self.drift_monitor.status
            # Evaluation traffic drives the breaker exactly like serving
            # traffic (same scenario-id order), and each record snapshots the
            # trip count *after* its own outcome was observed — previously the
            # whole evaluation stamped a stale pre-sweep count and the breaker
            # never saw evaluate-path fallbacks at all.
            if self.breaker is not None:
                self.breaker.record(outcome.used_fallback)
            trips = 0 if self.breaker is None else self.breaker.trips
            evaluation.records.append(
                OnlineRecord(
                    scenario_id=i,
                    success=outcome.success,
                    used_fallback=outcome.used_fallback,
                    iterations_warm=outcome.iterations,
                    iterations_cold=float(dataset.iterations[i]),
                    inference_seconds=inference_seconds,
                    warm_solve_seconds=outcome.solve_seconds,
                    cold_solve_seconds=float(dataset.solve_seconds[i]),
                    cost_warm=outcome.objective,
                    cost_cold=float(dataset.objectives[i]),
                    fallback_success=outcome.fallback_success,
                    iterations_fallback=outcome.iterations_fallback,
                    fallback_solve_seconds=outcome.fallback_seconds,
                    cost_fallback=outcome.objective_fallback,
                    solver_phase_seconds=dict(outcome.phase_seconds),
                    retries=outcome.retries,
                    timed_out=outcome.timed_out,
                    fallback_trips=trips,
                    drift_status=drift_status,
                    model_generation=serving.generation,
                )
            )
        return evaluation

    # -------------------------------------------------------------- persistence
    def save_artifact(self, path: Union[str, Path]) -> Path:
        """Persist the engine (weights, normalizer, config, case fingerprint)."""
        from repro.engine.artifact import save_artifact

        return save_artifact(self, path)

    @staticmethod
    def load_artifact(
        path: Union[str, Path],
        case: Case,
        opf_options: Optional[OPFOptions] = None,
        fallback: object = PERSISTED_FALLBACK,
        opf_model: Optional[OPFModel] = None,
        execution: str = "scenario",
        schedule: str = "static",
        microbatch: Optional[int] = None,
    ) -> "WarmStartEngine":
        """Reconstruct an engine previously written by :meth:`save_artifact`.

        ``fallback`` defaults to the policy persisted in the artifact; pass a
        name, a policy instance or ``None`` (no recovery) to override.
        """
        from repro.engine.artifact import load_artifact

        return load_artifact(
            path,
            case,
            opf_options=opf_options,
            fallback=fallback,
            opf_model=opf_model,
            execution=execution,
            schedule=schedule,
            microbatch=microbatch,
        )

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down every fleet this engine started (idempotent)."""
        for fleet in self._fleets.values():
            fleet.close()
        self._fleets.clear()
        for fleet in self._trajectory_fleets.values():
            fleet.close()
        self._trajectory_fleets.clear()

    def __enter__(self) -> "WarmStartEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
