"""Per-problem records and aggregated metrics of the online (serving) phase.

These classes historically lived in :mod:`repro.core.framework`; they moved
here when the serving path was extracted into the engine subsystem.  The
original ``OnlineRecord`` conflated warm and fallback outcomes — when the warm
solve failed, ``iterations_warm``, ``warm_solve_seconds`` and ``cost_warm``
were silently taken from the cold fallback run.  The fields now always
describe the *warm attempt*; fallback effort is recorded in the dedicated
``iterations_fallback`` / ``fallback_solve_seconds`` / ``cost_fallback``
fields, and the Fig. 5 aggregation charges recovery time to the restart bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.core.metrics import iteration_reduction, speedup_su, success_rate


@dataclass(frozen=True)
class OnlineRecord:
    """Outcome of one online (warm-started) problem.

    ``iterations_warm`` / ``warm_solve_seconds`` / ``cost_warm`` always
    describe the warm attempt, whether or not it converged; the
    ``*_fallback`` fields describe the recovery when a fallback policy ran —
    ``iterations_fallback`` and ``fallback_solve_seconds`` cover *every*
    recovery solve (a relaxed retry that degrades to a cold restart counts
    both), ``cost_fallback`` the one that produced the final answer.
    ``solver_phase_seconds`` carries the per-phase split (callback evaluation
    / KKT assembly / factorisation / back substitution) of the final solve.

    The robustness telemetry fields describe the serving runtime rather than
    the numerics: ``retries`` counts how often the scenario's task was
    re-dispatched after a worker crash, ``timed_out`` flags a solve retired by
    a wall deadline, and ``fallback_trips`` snapshots the engine's cumulative
    circuit-breaker trip count at the time the record was made (0 when the
    engine runs without a breaker).
    """

    scenario_id: int
    success: bool
    used_fallback: bool
    iterations_warm: int
    iterations_cold: float
    inference_seconds: float
    warm_solve_seconds: float
    cold_solve_seconds: float
    cost_warm: float
    cost_cold: float
    fallback_success: bool = False
    iterations_fallback: int = 0
    fallback_solve_seconds: float = 0.0
    cost_fallback: float = float("nan")
    solver_phase_seconds: Dict[str, float] = field(default_factory=dict)
    retries: int = 0
    timed_out: bool = False
    fallback_trips: int = 0
    #: Drift-monitor verdict (``stationary`` / ``trending`` / ``drifted``)
    #: after this record's outcome was observed — the predictive health
    #: signal, surfaced per record *before* the breaker trips.
    drift_status: str = "stationary"
    #: Model generation that served this record (see ``ServingModel``).
    model_generation: int = 0

    # ----------------------------------------------------------- derived views
    @property
    def converged(self) -> bool:
        """True when either the warm attempt or its fallback converged."""
        return self.success or (self.used_fallback and self.fallback_success)

    @property
    def final_iterations(self) -> int:
        """Iterations spent on the path that produced the final answer."""
        return self.iterations_fallback if self.used_fallback else self.iterations_warm

    @property
    def final_cost(self) -> float:
        """Objective of the solve that produced the final answer."""
        return self.cost_fallback if self.used_fallback else self.cost_warm

    @property
    def restart_seconds(self) -> float:
        """Wall-clock spent recovering from a failed warm attempt."""
        return self.fallback_solve_seconds

    @property
    def online_seconds(self) -> float:
        """Total online cost of this problem (inference + warm + recovery)."""
        return self.inference_seconds + self.warm_solve_seconds + self.fallback_solve_seconds


@dataclass
class OnlineEvaluation:
    """Aggregated online results for one test system (Fig. 4 / Fig. 5 data)."""

    case_name: str
    records: List[OnlineRecord] = field(default_factory=list)

    @property
    def n_problems(self) -> int:
        """Number of evaluated problems."""
        return len(self.records)

    @property
    def success_rate(self) -> float:
        """Warm-start success rate before any restart (Fig. 4c)."""
        return success_rate([r.success for r in self.records])

    @property
    def fallback_rate(self) -> float:
        """Fraction of problems that needed the fallback policy."""
        return float(np.mean([r.used_fallback for r in self.records])) if self.records else 0.0

    @property
    def speedup(self) -> float:
        """End-to-end speedup SU of Eqn. 10 over the evaluation set (Fig. 4a)."""
        t_mips = float(np.mean([r.cold_solve_seconds for r in self.records]))
        t_mtl = float(np.mean([r.inference_seconds for r in self.records]))
        t_warm = float(np.mean([r.warm_solve_seconds for r in self.records if r.success] or [t_mips]))
        return speedup_su(t_mips, t_mtl, t_warm, self.success_rate)

    @property
    def iteration_ratio(self) -> float:
        """Warm-start iterations as a fraction of cold-start iterations (Fig. 4b)."""
        return iteration_reduction(
            [r.iterations_cold for r in self.records],
            [r.iterations_warm for r in self.records if r.success] or [r.iterations_cold for r in self.records],
        )

    @property
    def mean_iterations_warm(self) -> float:
        """Mean warm-start iteration count over successful problems."""
        values = [r.iterations_warm for r in self.records if r.success]
        return float(np.mean(values)) if values else float("nan")

    @property
    def mean_iterations_cold(self) -> float:
        """Mean cold-start iteration count."""
        return float(np.mean([r.iterations_cold for r in self.records]))

    @property
    def mean_cost_deviation(self) -> float:
        """Mean relative deviation of warm-started cost from the cold-start optimum."""
        devs = [
            abs(r.cost_warm - r.cost_cold) / max(abs(r.cost_cold), 1e-12)
            for r in self.records
            if r.success
        ]
        return float(np.mean(devs)) if devs else float("nan")

    def total_times(self) -> Dict[str, float]:
        """Summed per-phase wall-clock times (the Fig. 5 breakdown numerators).

        ``warm_solve`` sums the warm attempts (including failed ones) and
        ``restart`` sums the fallback recovery time, so the two keys now
        partition the online solver cost honestly; their sum matches the old
        (conflated) accounting.
        """
        return {
            "inference": float(sum(r.inference_seconds for r in self.records)),
            "warm_solve": float(sum(r.warm_solve_seconds for r in self.records)),
            "restart": float(sum(r.fallback_solve_seconds for r in self.records)),
            "cold_solve": float(sum(r.cold_solve_seconds for r in self.records)),
        }

    def solver_phase_totals(self) -> Dict[str, float]:
        """Summed per-phase MIPS component times over the warm-started solves.

        The keys are the MIPS instrumentation phases (``eval``, ``assembly``,
        ``factorization``, ``backsolve``); these are the *measured* component
        times behind the Fig. 5 Newton-update bar.
        """
        totals: Dict[str, float] = {}
        for record in self.records:
            for phase, seconds in record.solver_phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals
