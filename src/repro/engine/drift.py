"""Predictive drift detection over the serving engine's per-request signals.

The reactive health machinery (:class:`~repro.engine.fallback.HealthWindow` /
:class:`~repro.engine.fallback.CircuitBreaker`) trips only after warm starts
are *already* failing — the fallback rate has to cross a threshold before
anything happens.  This module supplies the predictive half of the closed
loop: streaming change detectors over the per-request signals the engine
already records (warm iteration counts, fallback usage, deadline timeouts,
warm-solve seconds) that flag a *trend* towards degradation before the
breaker has anything to trip on, giving the model lifecycle
(:mod:`repro.engine.lifecycle`) time to retrain and hot-swap.

Everything here is pure deterministic arithmetic on the observed values — no
wall clock, no randomness — so a detector fed the same outcome stream reports
the same thing on every machine, schedule and worker count (the engine feeds
outcomes in scenario-id order for exactly this reason).

Two detectors run per signal:

* **Page–Hinkley** (CUSUM-style) change detection: the cumulative sum of
  deviations above the running mean (minus a tolerated ``delta``) is compared
  against its own running minimum; when the gap exceeds ``threshold`` the
  signal's mean has shifted upward and the signal is **drifted** (latched).
* **Rolling-mean trend**: a least-squares slope over the last ``window``
  observations; a slope above ``slope_threshold`` marks the signal
  **trending** — the early warning that precedes a Page–Hinkley alarm on a
  gradual degradation ramp.

Signals can be *advisory* (wall-clock-derived ones like warm-solve seconds):
they are tracked and reported as evidence but never drive the overall status,
which keeps the monitor's verdict reproducible across machines of different
speeds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Mapping, Optional, Tuple

#: Drift statuses, ordered from healthy to alarmed.
DRIFT_STATUSES = ("stationary", "trending", "drifted")

STATIONARY, TRENDING, DRIFTED = DRIFT_STATUSES

#: Rank used to combine per-signal statuses into an overall verdict.
_STATUS_RANK = {status: rank for rank, status in enumerate(DRIFT_STATUSES)}


@dataclass(frozen=True)
class SignalReport:
    """Evidence snapshot of one monitored signal.

    ``statistic`` is the current Page–Hinkley gap (cumulative deviation above
    its running minimum); an alarm fired when it exceeded ``threshold`` at
    observation ``onset_index`` (0-based, ``None`` while healthy).  ``slope``
    is the least-squares trend over the last ``window`` observations and
    ``mean`` the running mean of the whole stream.
    """

    name: str
    status: str
    n_observations: int
    onset_index: Optional[int]
    statistic: float
    threshold: float
    slope: float
    slope_threshold: float
    mean: float
    advisory: bool = False

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (drift-telemetry artifact payload)."""
        return {
            "name": self.name,
            "status": self.status,
            "n_observations": self.n_observations,
            "onset_index": self.onset_index,
            "statistic": self.statistic,
            "threshold": self.threshold,
            "slope": self.slope,
            "slope_threshold": self.slope_threshold,
            "mean": self.mean,
            "advisory": self.advisory,
        }


@dataclass(frozen=True)
class DriftReport:
    """Typed verdict of a :class:`DriftMonitor` over its observation stream.

    ``status`` is the worst status among non-advisory signals; ``onset_index``
    the earliest Page–Hinkley alarm index among drifted signals (``None``
    until one fires).  Advisory signals appear in ``signals`` as evidence but
    never decide ``status``.
    """

    status: str
    onset_index: Optional[int]
    n_observations: int
    signals: Tuple[SignalReport, ...]

    @property
    def drifted(self) -> bool:
        """True once any deciding signal's change detector has alarmed."""
        return self.status == DRIFTED

    def signal(self, name: str) -> SignalReport:
        """The report of one signal by name (raises ``KeyError`` if absent)."""
        for report in self.signals:
            if report.name == name:
                return report
        raise KeyError(f"no monitored signal named {name!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable view (drift-telemetry artifact payload)."""
        return {
            "status": self.status,
            "onset_index": self.onset_index,
            "n_observations": self.n_observations,
            "signals": [report.to_dict() for report in self.signals],
        }


class PageHinkley:
    """Streaming Page–Hinkley test for an upward shift of a signal's mean.

    Maintains the cumulative sum ``m_t = Σ (x_i − x̄_i − delta)`` (``x̄_i``
    the running mean after observation ``i``) and its running minimum; the
    statistic ``m_t − min(m)`` exceeds ``threshold`` exactly when the recent
    observations have run persistently above the historical mean by more than
    ``delta`` per step.  Purely incremental, O(1) state, no wall clock.
    """

    def __init__(self, delta: float, threshold: float, min_observations: int = 1):
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_observations < 1:
            raise ValueError("min_observations must be positive")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_observations = min_observations
        self.n = 0
        self.mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0
        #: 0-based index of the observation that first tripped the alarm.
        self.onset_index: Optional[int] = None

    @property
    def statistic(self) -> float:
        """Current gap between the cumulative sum and its running minimum."""
        return self._cumulative - self._minimum

    @property
    def alarmed(self) -> bool:
        """True once the statistic has crossed the threshold (latched)."""
        return self.onset_index is not None

    def update(self, x: float) -> bool:
        """Consume one observation; returns :attr:`alarmed`."""
        self.n += 1
        self.mean += (float(x) - self.mean) / self.n
        self._cumulative += float(x) - self.mean - self.delta
        if self._cumulative < self._minimum:
            self._minimum = self._cumulative
        if (
            self.onset_index is None
            and self.n >= self.min_observations
            and self.statistic > self.threshold
        ):
            self.onset_index = self.n - 1
        return self.alarmed


class RollingTrend:
    """Least-squares slope over the last ``window`` observations.

    The slope is computed against the observation index (units: signal change
    per observation), so it is independent of wall clock and identical for
    identical streams.  The window must be full before a trend is reported.
    """

    def __init__(self, window: int, slope_threshold: float):
        if window < 2:
            raise ValueError("window must be at least 2")
        if slope_threshold <= 0:
            raise ValueError("slope_threshold must be positive")
        self.window = window
        self.slope_threshold = float(slope_threshold)
        self._values: Deque[float] = deque(maxlen=window)

    def update(self, x: float) -> None:
        """Consume one observation."""
        self._values.append(float(x))

    @property
    def slope(self) -> float:
        """Least-squares slope over the window (0.0 until it is full)."""
        n = len(self._values)
        if n < self.window:
            return 0.0
        # Closed-form simple linear regression against t = 0..n-1:
        # slope = Σ (t - t̄)(x - x̄) / Σ (t - t̄)² with Σ (t - t̄)² = n(n²−1)/12.
        t_mean = (n - 1) / 2.0
        x_mean = sum(self._values) / n
        numerator = sum((t - t_mean) * (x - x_mean) for t, x in enumerate(self._values))
        denominator = n * (n * n - 1) / 12.0
        return numerator / denominator

    @property
    def trending(self) -> bool:
        """True when the window is full and the slope exceeds the threshold."""
        return self.slope > self.slope_threshold


class DriftDetector:
    """Per-signal composite detector: Page–Hinkley alarm + rolling trend.

    Status is ``"drifted"`` once the Page–Hinkley test alarms (latched until
    :meth:`reset`), ``"trending"`` while the rolling-window slope exceeds its
    threshold, ``"stationary"`` otherwise.
    """

    def __init__(
        self,
        name: str,
        delta: float,
        threshold: float,
        window: int = 16,
        slope_threshold: Optional[float] = None,
        min_observations: int = 8,
        advisory: bool = False,
    ):
        self.name = name
        self.advisory = advisory
        self._args = dict(
            delta=delta,
            threshold=threshold,
            window=window,
            # A degradation that would trip Page–Hinkley in ~2 windows has
            # slope ≈ threshold / window²; half of that is the early warning.
            slope_threshold=(
                slope_threshold
                if slope_threshold is not None
                else 0.5 * threshold / (window * window)
            ),
            min_observations=min_observations,
        )
        self._ph = PageHinkley(delta, threshold, min_observations)
        self._trend = RollingTrend(window, self._args["slope_threshold"])

    def observe(self, x: float) -> None:
        """Consume one observation of this signal."""
        self._ph.update(x)
        self._trend.update(x)

    def reset(self) -> None:
        """Forget the whole stream (called after a model promotion)."""
        self._ph = PageHinkley(
            self._args["delta"], self._args["threshold"], self._args["min_observations"]
        )
        self._trend = RollingTrend(self._args["window"], self._args["slope_threshold"])

    @property
    def n_observations(self) -> int:
        return self._ph.n

    @property
    def status(self) -> str:
        if self._ph.alarmed:
            return DRIFTED
        if self._trend.trending:
            return TRENDING
        return STATIONARY

    def report(self) -> SignalReport:
        """Current evidence snapshot of this signal."""
        return SignalReport(
            name=self.name,
            status=self.status,
            n_observations=self._ph.n,
            onset_index=self._ph.onset_index,
            statistic=self._ph.statistic,
            threshold=self._ph.threshold,
            slope=self._trend.slope,
            slope_threshold=self._trend.slope_threshold,
            mean=self._ph.mean,
            advisory=self.advisory,
        )


def default_detectors() -> Tuple[DriftDetector, ...]:
    """The engine's default signal set.

    * ``iterations`` — warm-attempt iteration counts; the earliest degradation
      signal (warm starts lose accuracy → the IPM needs more steps long before
      it starts failing outright).  ``delta=0.25`` tolerates a quarter-
      iteration of mean wander; the alarm needs ~10 cumulative excess
      iterations.
    * ``used_fallback`` — 0/1 per request; ``threshold=2.0`` alarms after
      roughly three excess fallbacks over the historical rate.
    * ``timed_out`` — 0/1 per request, same scale as ``used_fallback``.
    * ``warm_solve_seconds`` — *advisory* (wall-clock-derived, so it never
      decides the overall status; reported as corroborating evidence only).
    """
    return (
        DriftDetector("iterations", delta=0.25, threshold=10.0, window=16),
        DriftDetector("used_fallback", delta=0.05, threshold=2.0, window=16),
        DriftDetector("timed_out", delta=0.05, threshold=2.0, window=16),
        DriftDetector(
            "warm_solve_seconds", delta=0.005, threshold=0.5, window=16, advisory=True
        ),
    )


class DriftMonitor:
    """Streaming drift monitor over the engine's per-request outcome signals.

    The engine calls :meth:`observe_outcome` once per served scenario (in
    scenario-id order, so the stream — and therefore the verdict — is
    independent of worker scheduling) and surfaces :meth:`report` on its
    telemetry.  The overall status is the worst status among non-advisory
    signals; a promotion resets the monitor via :meth:`reset` so a fresh
    model is not judged by its predecessor's stream.
    """

    def __init__(self, detectors: Optional[Iterable[DriftDetector]] = None):
        self.detectors: Tuple[DriftDetector, ...] = (
            tuple(detectors) if detectors is not None else default_detectors()
        )
        if not self.detectors:
            raise ValueError("DriftMonitor needs at least one detector")
        names = [d.name for d in self.detectors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate detector names: {names}")
        self.n_observations = 0

    def observe(self, values: Mapping[str, float]) -> None:
        """Consume one request's signal values (missing signals are skipped)."""
        for detector in self.detectors:
            if detector.name in values:
                detector.observe(float(values[detector.name]))
        self.n_observations += 1

    def observe_outcome(self, outcome) -> None:
        """Consume one :class:`~repro.parallel.pool.ScenarioOutcome`."""
        self.observe(
            {
                "iterations": float(outcome.iterations),
                "used_fallback": 1.0 if outcome.used_fallback else 0.0,
                "timed_out": 1.0 if outcome.timed_out else 0.0,
                "warm_solve_seconds": float(outcome.solve_seconds),
            }
        )

    def reset(self) -> None:
        """Restart every detector (called on successful model promotion)."""
        for detector in self.detectors:
            detector.reset()
        self.n_observations = 0

    @property
    def status(self) -> str:
        """Worst status among the deciding (non-advisory) signals."""
        deciding = [d.status for d in self.detectors if not d.advisory]
        if not deciding:
            return STATIONARY
        return max(deciding, key=_STATUS_RANK.__getitem__)

    def report(self) -> DriftReport:
        """Typed verdict plus per-signal evidence."""
        signals = tuple(detector.report() for detector in self.detectors)
        onsets = [
            s.onset_index
            for s in signals
            if not s.advisory and s.onset_index is not None
        ]
        return DriftReport(
            status=self.status,
            onset_index=min(onsets) if onsets else None,
            n_observations=self.n_observations,
            signals=signals,
        )
