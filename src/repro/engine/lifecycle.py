"""Closed-loop model lifecycle: retrain, shadow-evaluate, hot-swap.

This module closes the loop the drift monitor (:mod:`repro.engine.drift`)
opens.  When the monitor flags a degradation trend, an operator (or an
automated job) runs the :class:`ModelLifecycle` pipeline:

1. **retrain** — continue training on fresh data with *checkpointed* progress
   (:meth:`MTLTrainer.train` with ``checkpoint_path``), so a killed retrain
   resumes bitwise-identically instead of starting over;
2. **build** — persist the retrained model as a candidate artifact (the same
   checksummed bundle format the engine serves from);
3. **shadow** — evaluate the candidate *and* the live incumbent on a held-back
   slice, in isolated shadow engines that share nothing mutable with the
   serving path (no breaker, no drift monitor, private ``OPFModel`` memos);
   a :class:`ShadowGate` decides whether the candidate actually beats the
   incumbent on fallback rate / iteration cost;
4. **publish** — atomically hot-swap the engine to the candidate
   (:meth:`~repro.engine.engine.WarmStartEngine.hot_swap`).  Requests in
   flight finish on the old generation, new requests serve the new one,
   nothing is dropped and nothing is hybrid.

Every failure path is first-class: a corrupt or mismatched artifact, a gate
rejection, or an injected fault (:class:`~repro.testing.faults.LifecycleFaultPlan`)
produces a rejected :class:`PromotionResult` with the incumbent generation
untouched — and rejected candidates stay replayable via
:meth:`ModelLifecycle.replay_rejected`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.data.dataset import OPFDataset
from repro.engine.artifact import ArtifactError, load_artifact, save_artifact
from repro.engine.engine import ServingModel, WarmStartEngine
from repro.engine.records import OnlineEvaluation
from repro.mtl.trainer import MTLTrainer, TrainingHistory
from repro.testing.faults import FaultInjectionError, LifecycleFaultPlan
from repro.utils.logging import get_logger

LOGGER = get_logger("lifecycle")

__all__ = [
    "ShadowMetrics",
    "ShadowGate",
    "ShadowReport",
    "PromotionResult",
    "ModelLifecycle",
]


@dataclass(frozen=True)
class ShadowMetrics:
    """Serving-cost summary of one model over the shadow slice."""

    n_problems: int
    convergence_rate: float
    fallback_rate: float
    #: Mean iterations of the solve that produced each final answer (always
    #: defined, unlike the warm-only mean, which is NaN when nothing converges).
    mean_iterations: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_problems": self.n_problems,
            "convergence_rate": self.convergence_rate,
            "fallback_rate": self.fallback_rate,
            "mean_iterations": self.mean_iterations,
        }


@dataclass(frozen=True)
class ShadowGate:
    """Promotion criteria: the candidate must beat (or match) the incumbent.

    ``fallback_rate_slack`` is absolute (rate points), ``iteration_slack``
    relative (fraction of the incumbent's mean).  The defaults demand the
    candidate be no worse on every axis; loosen them when a retrained model
    is expected to trade a little iteration cost for robustness.
    """

    min_problems: int = 4
    fallback_rate_slack: float = 0.0
    iteration_slack: float = 0.0
    convergence_slack: float = 0.0

    def __post_init__(self) -> None:
        if self.min_problems < 1:
            raise ValueError("min_problems must be positive")
        for name in ("fallback_rate_slack", "iteration_slack", "convergence_slack"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def decide(self, candidate: ShadowMetrics, incumbent: ShadowMetrics) -> "ShadowReport":
        """Compare candidate against incumbent; returns the gate's verdict."""
        reasons: List[str] = []
        if candidate.n_problems < self.min_problems:
            reasons.append(
                f"shadow slice has {candidate.n_problems} problem(s); "
                f"gate requires at least {self.min_problems}"
            )
        if candidate.convergence_rate < incumbent.convergence_rate - self.convergence_slack:
            reasons.append(
                f"convergence rate {candidate.convergence_rate:.3f} below incumbent "
                f"{incumbent.convergence_rate:.3f} (slack {self.convergence_slack:.3f})"
            )
        if candidate.fallback_rate > incumbent.fallback_rate + self.fallback_rate_slack:
            reasons.append(
                f"fallback rate {candidate.fallback_rate:.3f} exceeds incumbent "
                f"{incumbent.fallback_rate:.3f} (slack {self.fallback_rate_slack:.3f})"
            )
        if np.isnan(candidate.mean_iterations):
            reasons.append("candidate produced no iteration statistics")
        elif not np.isnan(incumbent.mean_iterations):
            budget = incumbent.mean_iterations * (1.0 + self.iteration_slack)
            if candidate.mean_iterations > budget:
                reasons.append(
                    f"mean iterations {candidate.mean_iterations:.2f} exceed incumbent "
                    f"budget {budget:.2f} "
                    f"(incumbent {incumbent.mean_iterations:.2f}, "
                    f"slack {self.iteration_slack:.3f})"
                )
        return ShadowReport(
            candidate=candidate,
            incumbent=incumbent,
            passed=not reasons,
            reasons=tuple(reasons),
        )


@dataclass(frozen=True)
class ShadowReport:
    """Outcome of one shadow evaluation (candidate vs. incumbent)."""

    candidate: ShadowMetrics
    incumbent: ShadowMetrics
    passed: bool
    reasons: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate.to_dict(),
            "incumbent": self.incumbent.to_dict(),
            "passed": self.passed,
            "reasons": list(self.reasons),
        }


@dataclass(frozen=True)
class PromotionResult:
    """Outcome of one promotion attempt.

    ``generation`` is the engine's published generation *after* the attempt —
    the new generation when promoted, the untouched incumbent otherwise.
    ``stage`` is the pipeline stage reached (``load`` / ``shadow`` /
    ``publish``); on rejection it names the stage that failed.
    """

    promoted: bool
    generation: int
    stage: str
    reason: str
    artifact_path: str
    attempt: int
    shadow: Optional[ShadowReport] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "promoted": self.promoted,
            "generation": self.generation,
            "stage": self.stage,
            "reason": self.reason,
            "artifact_path": self.artifact_path,
            "attempt": self.attempt,
            "shadow": None if self.shadow is None else self.shadow.to_dict(),
        }


class ModelLifecycle:
    """Controller for the retrain → shadow → promote loop of one engine.

    The lifecycle owns no model state itself: it drives the ``trainer`` for
    checkpointed retraining, stages candidates on disk as ordinary engine
    artifacts and promotes through the engine's atomic
    :meth:`~repro.engine.engine.WarmStartEngine.hot_swap`.  An optional
    :class:`~repro.testing.faults.LifecycleFaultPlan` injects deterministic
    failures at each stage boundary for chaos tests.
    """

    def __init__(
        self,
        engine: WarmStartEngine,
        trainer: Optional[MTLTrainer] = None,
        gate: Optional[ShadowGate] = None,
        faults: Optional[LifecycleFaultPlan] = None,
    ):
        self.engine = engine
        self.trainer = trainer
        self.gate = gate or ShadowGate()
        self.faults = faults or LifecycleFaultPlan.none()
        #: Every promotion attempt, in order (promoted and rejected alike).
        self.attempts: List[PromotionResult] = []
        self._attempt_counter = 0

    # ------------------------------------------------------------- drift signal
    def retrain_recommended(self) -> bool:
        """True when the engine's drift monitor has left *stationary*."""
        report = self.engine.drift_report()
        return report is not None and report.status != "stationary"

    # ---------------------------------------------------------------- retraining
    def retrain(
        self,
        validation: Optional[OPFDataset] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        resume_from: Optional[Union[str, Path]] = None,
        until_epoch: Optional[int] = None,
    ) -> TrainingHistory:
        """Run (or resume) a checkpointed training pass on the trainer."""
        if self.trainer is None:
            raise ValueError("this lifecycle was built without a trainer")
        return self.trainer.train(
            validation=validation,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            resume_from=resume_from,
            until_epoch=until_epoch,
        )

    def build_candidate(self, path: Union[str, Path]) -> Path:
        """Persist the trainer's current model as a candidate artifact.

        The candidate is written through the crash-safe bundle writer, so a
        kill mid-build leaves no truncated artifact at the published path.
        """
        if self.trainer is None:
            raise ValueError("this lifecycle was built without a trainer")
        self.faults.check("build", self._attempt_counter)
        staging = WarmStartEngine(
            self.engine.case,
            self.trainer.network,
            self.trainer.normalizer,
            config=self.trainer.config,
            opf_options=self.engine.opf_options,
            fallback=self.engine.fallback,
            opf_model=self.trainer.opf_model,
        )
        return save_artifact(staging, path)

    # ------------------------------------------------------------ shadow + swap
    def _shadow_engine(self, serving: ServingModel) -> WarmStartEngine:
        """An isolated single-worker engine around one model generation.

        No breaker, no drift monitor, and a private ``OPFModel`` (its memo
        caches are mutable, so the live one is never shared across threads) —
        shadow traffic must not perturb live health state.
        """
        return WarmStartEngine(
            self.engine.case,
            serving.network,
            serving.normalizer,
            config=serving.config,
            opf_options=self.engine.opf_options,
            fallback=self.engine.fallback,
        )

    @staticmethod
    def _metrics(evaluation: OnlineEvaluation) -> ShadowMetrics:
        records = evaluation.records
        return ShadowMetrics(
            n_problems=len(records),
            convergence_rate=(
                float(np.mean([r.converged for r in records])) if records else 0.0
            ),
            fallback_rate=evaluation.fallback_rate,
            mean_iterations=(
                float(np.mean([r.final_iterations for r in records]))
                if records
                else float("nan")
            ),
        )

    def shadow_evaluate(
        self,
        candidate_path: Union[str, Path],
        dataset: OPFDataset,
        max_problems: Optional[int] = None,
    ) -> ShadowReport:
        """Evaluate a candidate artifact against the live incumbent.

        Both models run over the same held-back slice in isolated shadow
        engines; the gate's verdict is returned without touching the live
        serving path (no swap, no breaker/drift mutation).
        """
        candidate = load_artifact(
            candidate_path, self.engine.case, opf_options=self.engine.opf_options
        )
        try:
            return self._compare(candidate, dataset, max_problems)
        finally:
            candidate.close()

    def _compare(
        self,
        candidate: WarmStartEngine,
        dataset: OPFDataset,
        max_problems: Optional[int],
    ) -> ShadowReport:
        incumbent = self._shadow_engine(self.engine.serving_model)
        try:
            candidate_eval = candidate.evaluate(dataset, max_problems=max_problems)
            incumbent_eval = incumbent.evaluate(dataset, max_problems=max_problems)
        finally:
            incumbent.close()
        return self.gate.decide(self._metrics(candidate_eval), self._metrics(incumbent_eval))

    def promote(
        self,
        candidate_path: Union[str, Path],
        dataset: OPFDataset,
        max_problems: Optional[int] = None,
    ) -> PromotionResult:
        """Run the full load → shadow → publish pipeline for one candidate.

        Never raises for a bad candidate: integrity failures
        (:class:`~repro.engine.artifact.ArtifactError` and subclasses), gate
        rejections and injected lifecycle faults all produce a rejected
        :class:`PromotionResult` with the incumbent generation untouched.
        A candidate that clears the gate is published atomically; on success
        the engine's breaker and drift monitor are reset (inside
        ``hot_swap``) so the new generation starts with clean health state.
        """
        attempt = self._attempt_counter
        self._attempt_counter += 1
        path = str(candidate_path)
        stage = "load"
        shadow: Optional[ShadowReport] = None
        candidate: Optional[WarmStartEngine] = None
        try:
            self.faults.check(stage, attempt)
            candidate = load_artifact(
                candidate_path, self.engine.case, opf_options=self.engine.opf_options
            )
            stage = "shadow"
            self.faults.check(stage, attempt)
            shadow = self._compare(candidate, dataset, max_problems)
            if not shadow.passed:
                return self._record(
                    PromotionResult(
                        promoted=False,
                        generation=self.engine.generation,
                        stage=stage,
                        reason="candidate failed shadow gate: " + "; ".join(shadow.reasons),
                        artifact_path=path,
                        attempt=attempt,
                        shadow=shadow,
                    )
                )
            stage = "publish"
            self.faults.check(stage, attempt)
            generation = self.engine.hot_swap(
                candidate.network, candidate.normalizer, candidate.config
            )
            return self._record(
                PromotionResult(
                    promoted=True,
                    generation=generation,
                    stage=stage,
                    reason="candidate cleared the shadow gate",
                    artifact_path=path,
                    attempt=attempt,
                    shadow=shadow,
                )
            )
        except (ArtifactError, FaultInjectionError) as exc:
            return self._record(
                PromotionResult(
                    promoted=False,
                    generation=self.engine.generation,
                    stage=stage,
                    reason=f"{type(exc).__name__}: {exc}",
                    artifact_path=path,
                    attempt=attempt,
                    shadow=shadow,
                )
            )
        finally:
            if candidate is not None:
                candidate.close()

    def _record(self, result: PromotionResult) -> PromotionResult:
        self.attempts.append(result)
        if result.promoted:
            LOGGER.info(
                "promotion attempt %d published generation %d from %s",
                result.attempt,
                result.generation,
                result.artifact_path,
            )
        else:
            LOGGER.warning(
                "promotion attempt %d rejected at stage %r: %s",
                result.attempt,
                result.stage,
                result.reason,
            )
        return result

    # ----------------------------------------------------------------- replays
    @property
    def promotions(self) -> List[PromotionResult]:
        """Successful promotion attempts, in order."""
        return [a for a in self.attempts if a.promoted]

    @property
    def rejections(self) -> List[PromotionResult]:
        """Rejected promotion attempts, in order."""
        return [a for a in self.attempts if not a.promoted]

    def replay_rejected(
        self,
        dataset: OPFDataset,
        max_problems: Optional[int] = None,
    ) -> PromotionResult:
        """Re-run the most recently rejected candidate through the pipeline.

        The candidate artifact is re-read from disk, so a rejection caused by
        a since-repaired file (or a transient injected fault) can succeed on
        replay; a rejection caused by the gate will simply be re-judged on
        the (possibly different) slice.
        """
        rejected = self.rejections
        if not rejected:
            raise ValueError("no rejected promotion attempt to replay")
        return self.promote(rejected[-1].artifact_path, dataset, max_problems=max_problems)
