"""Pluggable fallback policies for failed warm-started solves.

The paper's online procedure restarts a failed warm solve from the solver
default so the workflow always converges.  In a serving deployment that is
only one point in a recovery-cost trade-off: a relaxed-tolerance warm retry is
often much cheaper than a full cold restart, and a batch analytics job may
prefer to record the failure and move on.  This module makes that choice a
policy object that the serving engine and the worker pool thread through
unchanged — policies are small frozen dataclasses, so they pickle cleanly into
spawned solver workers.

A policy's :meth:`~FallbackPolicy.recover` receives a ``solve`` callable
(``solve(warm_start, options=None) -> OPFResult``) bound to the failing
scenario, the warm start that failed and the failed result; it returns the
recovery result, or ``None`` to keep the failure as the final answer.

Beyond per-scenario recovery this module also provides the serving tier's
health machinery: :class:`HealthWindow` (a rolling window over recent
fallback outcomes) and :class:`CircuitBreaker` (a deterministic, count-based
breaker the engine consults before spending inference + warm-solve effort on
a request stream whose warm starts have stopped converging).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Callable, ClassVar, Deque, Dict, Optional, Type, Union

from repro.opf.result import OPFResult
from repro.opf.solver import OPFOptions, relaxed_options
from repro.opf.warmstart import WarmStart

#: Signature of the per-scenario solve callable handed to policies.
SolveFn = Callable[..., OPFResult]


class FallbackPolicy(ABC):
    """Strategy applied when a warm-started solve fails to converge."""

    #: Registry key (also used when persisting an engine artifact).
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def recover(
        self,
        solve: SolveFn,
        warm: Optional[WarmStart],
        failed: OPFResult,
        options: OPFOptions,
    ) -> Optional[OPFResult]:
        """Attempt recovery; return the new result or ``None`` to keep ``failed``."""


@dataclass(frozen=True)
class ColdRestartFallback(FallbackPolicy):
    """Re-solve from the solver default start (the paper's online procedure)."""

    name: ClassVar[str] = "cold_restart"

    def recover(self, solve, warm, failed, options):
        return solve(None, options)


@dataclass(frozen=True)
class RelaxedWarmRetryFallback(FallbackPolicy):
    """Retry the warm start with scaled termination tolerances.

    A warm start that stalls just short of the default tolerances usually
    passes once they are loosened by ``tolerance_scale``; that retry starts
    from the predicted point, so it is far cheaper than a cold restart.  When
    ``cold_restart_on_failure`` is set the policy degrades to the cold restart
    if the relaxed retry also fails, so convergence is still guaranteed.
    """

    name: ClassVar[str] = "relaxed_warm"

    tolerance_scale: float = 100.0
    cold_restart_on_failure: bool = True

    def recover(self, solve, warm, failed, options):
        retry = solve(warm, relaxed_options(options, self.tolerance_scale))
        if retry.success or not self.cold_restart_on_failure:
            return retry
        return solve(None, options)


@dataclass(frozen=True)
class BudgetedFallback(FallbackPolicy):
    """Warm retries under a bounded budget with multiplicative tolerance backoff.

    Attempt ``i`` (zero-based) retries the warm start with the termination
    tolerances relaxed by ``backoff_scale ** (i + 1)``; the budget caps how
    many such retries may run for one scenario.  The backoff is numerical, not
    temporal — each retry starts from the predicted point with progressively
    looser tolerances, so the recovery cost stays bounded and the behaviour is
    deterministic (no wall-clock sleeps).  When the budget is exhausted the
    policy degrades to a cold restart unless ``cold_restart_on_exhaustion`` is
    disabled, in which case the last relaxed attempt is returned as-is.
    """

    name: ClassVar[str] = "budgeted"

    max_retries: int = 2
    backoff_scale: float = 10.0
    cold_restart_on_exhaustion: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_scale <= 1.0:
            raise ValueError("backoff_scale must be greater than 1")

    def recover(self, solve, warm, failed, options):
        last: Optional[OPFResult] = None
        for attempt in range(self.max_retries):
            scale = self.backoff_scale ** (attempt + 1)
            last = solve(warm, relaxed_options(options, scale))
            if last.success:
                return last
        if self.cold_restart_on_exhaustion:
            return solve(None, options)
        return last


@dataclass(frozen=True)
class NoFallback(FallbackPolicy):
    """Record the failure and move on (batch analytics mode)."""

    name: ClassVar[str] = "none"

    def recover(self, solve, warm, failed, options):
        return None


#: Built-in policies, keyed by their registry name.
FALLBACK_POLICIES: Dict[str, Type[FallbackPolicy]] = {
    ColdRestartFallback.name: ColdRestartFallback,
    RelaxedWarmRetryFallback.name: RelaxedWarmRetryFallback,
    BudgetedFallback.name: BudgetedFallback,
    NoFallback.name: NoFallback,
}


class HealthWindow:
    """Rolling window over the last ``window`` per-request fallback outcomes.

    The serving engine records one boolean per served scenario (did the warm
    attempt need the fallback policy?); the window's ``fallback_rate`` is the
    health signal the :class:`CircuitBreaker` trips on.
    """

    def __init__(self, window: int = 32):
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self._events: Deque[bool] = deque(maxlen=window)

    def record(self, used_fallback: bool) -> None:
        """Append one observation (oldest falls out once the window is full)."""
        self._events.append(bool(used_fallback))

    def reset(self) -> None:
        """Forget all observations (called when the breaker closes again)."""
        self._events.clear()

    @property
    def n_observations(self) -> int:
        """Observations currently in the window (≤ ``window``)."""
        return len(self._events)

    @property
    def fallback_rate(self) -> float:
        """Fraction of windowed requests that needed the fallback (0 when empty)."""
        if not self._events:
            return 0.0
        return sum(self._events) / len(self._events)


class CircuitBreaker:
    """Deterministic count-based breaker over the warm-start path.

    States follow the classic pattern, driven purely by request counts (no
    wall clock, so tests are reproducible):

    * **closed** — warm starts are served normally; each outcome lands in a
      :class:`HealthWindow`.  Once at least ``min_observations`` are in the
      window and its fallback rate reaches ``threshold``, the breaker trips
      (``trips`` increments) and opens.
    * **open** — :meth:`allow_warm` is ``False``: the engine skips inference
      and routes requests straight to the relaxed/cold path.  After
      ``cooldown`` recorded requests the breaker moves to half-open.
    * **half-open** — one probe request is served warm; a clean probe closes
      the breaker (window reset), a fallback re-trips it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        window: int = 32,
        threshold: float = 0.5,
        min_observations: int = 8,
        cooldown: int = 16,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if min_observations < 1:
            raise ValueError("min_observations must be positive")
        if cooldown < 1:
            raise ValueError("cooldown must be positive")
        self.health = HealthWindow(window)
        self.threshold = threshold
        self.min_observations = min_observations
        self.cooldown = cooldown
        self.state = self.CLOSED
        #: Number of times the breaker has tripped open (telemetry).
        self.trips = 0
        self._cooldown_left = 0

    def allow_warm(self) -> bool:
        """Whether the next request should take the warm-start path."""
        return self.state != self.OPEN

    def record(self, used_fallback: bool) -> None:
        """Record one served request's outcome and advance the state machine."""
        if self.state == self.OPEN:
            # Degraded requests only count down the cooldown; their outcome
            # says nothing about warm-start health.
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = self.HALF_OPEN
            return
        if self.state == self.HALF_OPEN:
            if used_fallback:
                self._trip()
            else:
                self.state = self.CLOSED
                self.health.reset()
            return
        self.health.record(used_fallback)
        if (
            self.health.n_observations >= self.min_observations
            and self.health.fallback_rate >= self.threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = self.OPEN
        self.trips += 1
        self._cooldown_left = self.cooldown
        self.health.reset()

    def reset(self) -> None:
        """Return to *closed* with a fresh health window.

        Called on a successful model promotion: the health the breaker
        accumulated belongs to the retired model, and a freshly promoted one
        must not inherit an open breaker (or a half-open probe) it did
        nothing to earn.  ``trips`` is cumulative telemetry across
        generations and deliberately survives the reset.
        """
        self.state = self.CLOSED
        self._cooldown_left = 0
        self.health.reset()


def get_fallback_policy(spec: Union[str, FallbackPolicy, None]) -> FallbackPolicy:
    """Resolve a policy instance from a name, an instance or ``None``.

    ``None`` means "no recovery" and resolves to :class:`NoFallback`.
    """
    if spec is None:
        return NoFallback()
    if isinstance(spec, FallbackPolicy):
        return spec
    try:
        return FALLBACK_POLICIES[spec]()
    except KeyError:
        raise ValueError(
            f"unknown fallback policy {spec!r}; expected one of {sorted(FALLBACK_POLICIES)}"
        ) from None
