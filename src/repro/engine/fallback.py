"""Pluggable fallback policies for failed warm-started solves.

The paper's online procedure restarts a failed warm solve from the solver
default so the workflow always converges.  In a serving deployment that is
only one point in a recovery-cost trade-off: a relaxed-tolerance warm retry is
often much cheaper than a full cold restart, and a batch analytics job may
prefer to record the failure and move on.  This module makes that choice a
policy object that the serving engine and the worker pool thread through
unchanged — policies are small frozen dataclasses, so they pickle cleanly into
spawned solver workers.

A policy's :meth:`~FallbackPolicy.recover` receives a ``solve`` callable
(``solve(warm_start, options=None) -> OPFResult``) bound to the failing
scenario, the warm start that failed and the failed result; it returns the
recovery result, or ``None`` to keep the failure as the final answer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, ClassVar, Dict, Optional, Type, Union

from repro.opf.result import OPFResult
from repro.opf.solver import OPFOptions, relaxed_options
from repro.opf.warmstart import WarmStart

#: Signature of the per-scenario solve callable handed to policies.
SolveFn = Callable[..., OPFResult]


class FallbackPolicy(ABC):
    """Strategy applied when a warm-started solve fails to converge."""

    #: Registry key (also used when persisting an engine artifact).
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def recover(
        self,
        solve: SolveFn,
        warm: Optional[WarmStart],
        failed: OPFResult,
        options: OPFOptions,
    ) -> Optional[OPFResult]:
        """Attempt recovery; return the new result or ``None`` to keep ``failed``."""


@dataclass(frozen=True)
class ColdRestartFallback(FallbackPolicy):
    """Re-solve from the solver default start (the paper's online procedure)."""

    name: ClassVar[str] = "cold_restart"

    def recover(self, solve, warm, failed, options):
        return solve(None, options)


@dataclass(frozen=True)
class RelaxedWarmRetryFallback(FallbackPolicy):
    """Retry the warm start with scaled termination tolerances.

    A warm start that stalls just short of the default tolerances usually
    passes once they are loosened by ``tolerance_scale``; that retry starts
    from the predicted point, so it is far cheaper than a cold restart.  When
    ``cold_restart_on_failure`` is set the policy degrades to the cold restart
    if the relaxed retry also fails, so convergence is still guaranteed.
    """

    name: ClassVar[str] = "relaxed_warm"

    tolerance_scale: float = 100.0
    cold_restart_on_failure: bool = True

    def recover(self, solve, warm, failed, options):
        retry = solve(warm, relaxed_options(options, self.tolerance_scale))
        if retry.success or not self.cold_restart_on_failure:
            return retry
        return solve(None, options)


@dataclass(frozen=True)
class NoFallback(FallbackPolicy):
    """Record the failure and move on (batch analytics mode)."""

    name: ClassVar[str] = "none"

    def recover(self, solve, warm, failed, options):
        return None


#: Built-in policies, keyed by their registry name.
FALLBACK_POLICIES: Dict[str, Type[FallbackPolicy]] = {
    ColdRestartFallback.name: ColdRestartFallback,
    RelaxedWarmRetryFallback.name: RelaxedWarmRetryFallback,
    NoFallback.name: NoFallback,
}


def get_fallback_policy(spec: Union[str, FallbackPolicy, None]) -> FallbackPolicy:
    """Resolve a policy instance from a name, an instance or ``None``.

    ``None`` means "no recovery" and resolves to :class:`NoFallback`.
    """
    if spec is None:
        return NoFallback()
    if isinstance(spec, FallbackPolicy):
        return spec
    try:
        return FALLBACK_POLICIES[spec]()
    except KeyError:
        raise ValueError(
            f"unknown fallback policy {spec!r}; expected one of {sorted(FALLBACK_POLICIES)}"
        ) from None
