"""Batched warm-start serving engine: inference, fleet dispatch, persistence."""

from repro.engine.fallback import (
    FALLBACK_POLICIES,
    BudgetedFallback,
    CircuitBreaker,
    ColdRestartFallback,
    FallbackPolicy,
    HealthWindow,
    NoFallback,
    RelaxedWarmRetryFallback,
    get_fallback_policy,
)
from repro.engine.records import OnlineEvaluation, OnlineRecord
from repro.engine.engine import PERSISTED_FALLBACK, WarmStartEngine
from repro.engine.artifact import (
    ARTIFACT_VERSION,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMismatchError,
    case_fingerprint,
    load_artifact,
    save_artifact,
)

__all__ = [
    "WarmStartEngine",
    "PERSISTED_FALLBACK",
    "OnlineRecord",
    "OnlineEvaluation",
    "FallbackPolicy",
    "ColdRestartFallback",
    "RelaxedWarmRetryFallback",
    "BudgetedFallback",
    "NoFallback",
    "FALLBACK_POLICIES",
    "get_fallback_policy",
    "HealthWindow",
    "CircuitBreaker",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactMismatchError",
    "ArtifactCorruptError",
    "case_fingerprint",
    "save_artifact",
    "load_artifact",
]
