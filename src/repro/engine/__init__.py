"""Batched warm-start serving engine: inference, fleet dispatch, persistence."""

from repro.engine.fallback import (
    FALLBACK_POLICIES,
    BudgetedFallback,
    CircuitBreaker,
    ColdRestartFallback,
    FallbackPolicy,
    HealthWindow,
    NoFallback,
    RelaxedWarmRetryFallback,
    get_fallback_policy,
)
from repro.engine.drift import (
    DRIFT_STATUSES,
    DriftDetector,
    DriftMonitor,
    DriftReport,
    PageHinkley,
    RollingTrend,
    SignalReport,
    default_detectors,
)
from repro.engine.records import OnlineEvaluation, OnlineRecord
from repro.engine.engine import PERSISTED_FALLBACK, ServingModel, WarmStartEngine
from repro.engine.artifact import (
    ARTIFACT_VERSION,
    ArtifactCorruptError,
    ArtifactError,
    ArtifactMismatchError,
    case_fingerprint,
    load_artifact,
    save_artifact,
)
from repro.engine.lifecycle import (
    ModelLifecycle,
    PromotionResult,
    ShadowGate,
    ShadowMetrics,
    ShadowReport,
)

__all__ = [
    "WarmStartEngine",
    "ServingModel",
    "PERSISTED_FALLBACK",
    "OnlineRecord",
    "OnlineEvaluation",
    "FallbackPolicy",
    "ColdRestartFallback",
    "RelaxedWarmRetryFallback",
    "BudgetedFallback",
    "NoFallback",
    "FALLBACK_POLICIES",
    "get_fallback_policy",
    "HealthWindow",
    "CircuitBreaker",
    "DRIFT_STATUSES",
    "DriftDetector",
    "DriftMonitor",
    "DriftReport",
    "PageHinkley",
    "RollingTrend",
    "SignalReport",
    "default_detectors",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactMismatchError",
    "ArtifactCorruptError",
    "case_fingerprint",
    "save_artifact",
    "load_artifact",
    "ModelLifecycle",
    "PromotionResult",
    "ShadowGate",
    "ShadowMetrics",
    "ShadowReport",
]
