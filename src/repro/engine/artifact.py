"""Engine artifacts: one-file persistence of a trained serving engine.

An artifact is a single ``.npz`` bundle (see :mod:`repro.nn.serialization`)
holding

* the prediction network's parameters (full ``float64`` precision, so a
  reloaded engine reproduces its predictions bit for bit),
* the :class:`~repro.mtl.normalization.DatasetNormalizer` statistics,
* the :class:`~repro.mtl.config.MTLConfig`, task dimensions, model type and
  solver options, and
* a SHA-256 **fingerprint of the power-grid case** the model was trained on.

Loading verifies the fingerprint against the case the caller supplies: a
model trained on one network topology produces meaningless warm starts for
another, so a mismatch raises :class:`ArtifactMismatchError` instead of
silently serving garbage.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.engine.engine import PERSISTED_FALLBACK, WarmStartEngine
from repro.engine.fallback import get_fallback_policy
from repro.grid.components import Case
from repro.mips.options import MIPSOptions
from repro.mtl.config import MTLConfig
from repro.mtl.model import SmartPGSimMTL, TaskDimensions
from repro.mtl.normalization import DatasetNormalizer, MinMaxScaler
from repro.mtl.separate import SeparateTaskNetworks
from repro.nn.serialization import BundleIntegrityError, load_bundle, save_bundle
from repro.opf.model import OPFModel
from repro.opf.solver import OPFOptions

#: Bumped on incompatible layout changes.
ARTIFACT_VERSION = 1

#: Persisted model-type tags → network classes.
_MODEL_TYPES = {"mtl": SmartPGSimMTL, "separate": SeparateTaskNetworks}

_PARAM_PREFIX = "param/"
_NORM_INPUT_PREFIX = "norm/inputs/"
_NORM_TASK_PREFIX = "norm/tasks/"


class ArtifactError(ValueError):
    """Malformed or unreadable engine artifact."""


class ArtifactMismatchError(ArtifactError):
    """The artifact was trained on a different case than the one supplied."""


class ArtifactCorruptError(ArtifactError):
    """The artifact file is damaged (bad archive or checksum mismatch).

    Distinct from :class:`ArtifactMismatchError`: a *mismatched* artifact is a
    healthy file for the wrong case, a *corrupt* one failed its integrity
    checks (zip structure, zlib stream, or the bundle's SHA-256 content
    checksum) and should be re-fetched or regenerated.
    """


def case_fingerprint(case: Case) -> str:
    """SHA-256 fingerprint of a case's numerical content.

    Covers the base MVA and every column of the bus/generator/branch/cost
    tables; the case *name* is deliberately excluded (it is cosmetic and
    scenario sweeps rename copies freely).
    """
    digest = hashlib.sha256()
    digest.update(np.float64(case.base_mva).tobytes())
    for table in (case.bus, case.gen, case.branch, case.gencost):
        for column in dataclasses.fields(table):
            arr = np.ascontiguousarray(getattr(table, column.name))
            digest.update(column.name.encode())
            digest.update(str(arr.dtype).encode())
            digest.update(arr.tobytes())
    return digest.hexdigest()


def _model_type_of(network: object) -> str:
    for tag, cls in _MODEL_TYPES.items():
        if isinstance(network, cls):
            return tag
    raise ArtifactError(f"cannot persist network of type {type(network).__name__}")


def save_artifact(engine: WarmStartEngine, path: Union[str, Path]) -> Path:
    """Write ``engine`` to a one-file artifact; returns the written path."""
    dims = engine.network.dims
    meta = {
        "artifact_version": ARTIFACT_VERSION,
        "case_name": engine.case.name,
        "case_fingerprint": case_fingerprint(engine.case),
        "model_type": _model_type_of(engine.network),
        "mtl_config": dataclasses.asdict(engine.config),
        "dims": dataclasses.asdict(dims),
        "opf_options": dataclasses.asdict(engine.opf_options),
        "fallback": engine.fallback.name,
    }
    arrays = {
        _PARAM_PREFIX + name: value for name, value in engine.network.state_dict().items()
    }
    arrays[_NORM_INPUT_PREFIX + "lo"] = engine.normalizer.inputs.lo
    arrays[_NORM_INPUT_PREFIX + "span"] = engine.normalizer.inputs.span
    for task, scaler in engine.normalizer.tasks.items():
        arrays[f"{_NORM_TASK_PREFIX}{task}/lo"] = scaler.lo
        arrays[f"{_NORM_TASK_PREFIX}{task}/span"] = scaler.span
    return save_bundle(path, arrays, meta)


def _normalizer_from_arrays(arrays) -> DatasetNormalizer:
    tasks = {}
    for key in arrays:
        if key.startswith(_NORM_TASK_PREFIX) and key.endswith("/lo"):
            task = key[len(_NORM_TASK_PREFIX) : -len("/lo")]
            tasks[task] = MinMaxScaler(
                lo=arrays[key], span=arrays[f"{_NORM_TASK_PREFIX}{task}/span"]
            )
    return DatasetNormalizer(
        inputs=MinMaxScaler(
            lo=arrays[_NORM_INPUT_PREFIX + "lo"], span=arrays[_NORM_INPUT_PREFIX + "span"]
        ),
        tasks=tasks,
    )


def load_artifact(
    path: Union[str, Path],
    case: Case,
    opf_options: Optional[OPFOptions] = None,
    fallback: object = PERSISTED_FALLBACK,
    opf_model: Optional[OPFModel] = None,
    execution: str = "scenario",
    schedule: str = "static",
    microbatch: Optional[int] = None,
) -> WarmStartEngine:
    """Reconstruct a :class:`WarmStartEngine` from an artifact file.

    ``case`` must be the system the artifact was trained on; the stored
    fingerprint is verified and :class:`ArtifactMismatchError` is raised on
    mismatch.  ``opf_options`` and ``fallback`` default to the persisted
    values and can be overridden for the new deployment; passing
    ``fallback=None`` explicitly selects no recovery
    (:class:`~repro.engine.fallback.NoFallback`), as everywhere else.
    ``execution``, ``schedule`` and ``microbatch`` configure the solver
    fleet (they are deployment choices, not part of the trained artifact).
    """
    try:
        arrays, meta = load_bundle(path)
    except BundleIntegrityError as exc:
        raise ArtifactCorruptError(f"engine artifact {path} is corrupt: {exc}") from exc
    except ValueError as exc:
        raise ArtifactError(f"cannot read engine artifact {path}: {exc}") from exc

    version = meta.get("artifact_version")
    if version != ARTIFACT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {version!r} (this build reads {ARTIFACT_VERSION})"
        )
    expected = meta["case_fingerprint"]
    actual = case_fingerprint(case)
    if actual != expected:
        raise ArtifactMismatchError(
            f"artifact {Path(path).name} was trained on case "
            f"{meta.get('case_name', '<unknown>')!r} (fingerprint {expected[:12]}…) but the "
            f"supplied case {case.name!r} has fingerprint {actual[:12]}…; load the artifact "
            "with the case it was trained on, or retrain"
        )

    cfg_dict = dict(meta["mtl_config"])
    cfg_dict["shared_layer_scales"] = tuple(cfg_dict["shared_layer_scales"])
    config = MTLConfig(**cfg_dict)
    dims = TaskDimensions(**meta["dims"])
    try:
        network_cls = _MODEL_TYPES[meta["model_type"]]
    except KeyError:
        raise ArtifactError(f"unknown model type {meta['model_type']!r} in artifact") from None
    network = network_cls(dims, config, seed=config.seed)
    network.load_state_dict(
        {
            key[len(_PARAM_PREFIX) :]: value
            for key, value in arrays.items()
            if key.startswith(_PARAM_PREFIX)
        }
    )

    if opf_options is None:
        opf_dict = dict(meta["opf_options"])
        opf_dict["mips"] = MIPSOptions(**opf_dict["mips"])
        opf_options = OPFOptions(**opf_dict)

    if fallback is PERSISTED_FALLBACK:
        fallback = meta["fallback"]
    return WarmStartEngine(
        case,
        network,
        _normalizer_from_arrays(arrays),
        config=config,
        opf_options=opf_options,
        fallback=get_fallback_policy(fallback),
        opf_model=opf_model,
        execution=execution,
        schedule=schedule,
        microbatch=microbatch,
    )
