"""Smart-PGSim reproduction library.

A from-scratch Python implementation of *Smart-PGSim: Using Neural Network to
Accelerate AC-OPF Power Grid Simulation* (SC 2020): the AC-OPF formulation and
MIPS primal-dual interior-point solver, a NumPy neural-network stack, the
physics-informed multitask-learning warm-start model and the full evaluation
harness (sensitivity study, speedup/accuracy metrics, scaling experiments).

Typical usage::

    from repro.grid import get_case
    from repro.core import SmartPGSim, SmartPGSimConfig

    framework = SmartPGSim(get_case("case14"), SmartPGSimConfig(n_samples=100))
    framework.offline()
    evaluation = framework.online_evaluate()
    print(evaluation.speedup, evaluation.success_rate)
"""

from repro import (
    core,
    data,
    engine,
    grid,
    mips,
    mtl,
    nn,
    opf,
    parallel,
    powerflow,
    serving,
    utils,
)

__version__ = "1.1.0"

__all__ = [
    "grid",
    "powerflow",
    "mips",
    "opf",
    "nn",
    "mtl",
    "data",
    "core",
    "engine",
    "parallel",
    "serving",
    "utils",
    "__version__",
]
