"""Deterministic test harnesses for the serving runtime (fault injection)."""

from repro.testing.faults import (
    FAULT_KINDS,
    FaultInjectionError,
    FaultPlan,
    FaultSpec,
    WorkerCrashError,
    corrupt_artifact_bytes,
    kill_at_task,
    kill_worker,
    raise_in_solver,
    stall_solve,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjectionError",
    "WorkerCrashError",
    "kill_worker",
    "kill_at_task",
    "raise_in_solver",
    "stall_solve",
    "corrupt_artifact_bytes",
]
