"""Deterministic fault injection for the fault-tolerant serving runtime.

Recovery code that is never exercised is recovery code that does not work.
This module provides a *deterministic, seedable* fault-injection registry the
solver fleet consults from inside its workers, so chaos scenarios — a worker
killed mid-sweep, a solver raising on one scenario, a solve stalling past its
deadline, an artifact corrupted on disk — are reproducible unit tests rather
than hopes about production behaviour.

A :class:`FaultPlan` is a frozen, picklable bundle of :class:`FaultSpec`
triggers that ships to spawn workers through the fleet initializer (exactly
like the fallback policy).  Triggers are keyed on *scenario id* and *attempt
number* — the attempt is carried in the task message, so a fault can be
transient ("crash the first attempt, let the retry succeed") or persistent
("crash every attempt until the scheduler quarantines the culprit") without
any cross-process mutable state.  The one worker-local trigger,
``kill_at_task``, counts tasks processed by each worker process.

Fault kinds
-----------

* ``kill_worker`` — terminate the worker process without cleanup
  (``os._exit``), the closest deterministic stand-in for an OOM kill or
  segfault.  In the in-process fleet it raises :class:`WorkerCrashError`
  instead, which the dispatcher treats exactly like a dead worker.
* ``kill_at_task`` — kill the worker when its per-process task counter
  reaches ``task_index`` (worker-local, for soak-style tests).
* ``raise_in_solver`` — raise :class:`FaultInjectionError` in the worker's
  solve path (a typed stand-in for an unexpected solver exception).
* ``stall_solve`` — sleep ``seconds`` before solving, so a cooperative
  deadline expires (a hung factorisation stand-in).

:func:`corrupt_artifact_bytes` flips bytes of a saved engine artifact
deterministically for artifact-robustness tests.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence, Tuple, Union

__all__ = [
    "FAULT_KINDS",
    "SWAP_STAGES",
    "FaultSpec",
    "FaultPlan",
    "SwapFaultSpec",
    "LifecycleFaultPlan",
    "FaultInjectionError",
    "WorkerCrashError",
    "kill_worker",
    "kill_at_task",
    "raise_in_solver",
    "stall_solve",
    "swap_fault",
    "corrupt_artifact_bytes",
]

#: Valid fault kinds.
FAULT_KINDS = ("kill_worker", "kill_at_task", "raise_in_solver", "stall_solve")

#: Exit code used by injected worker kills (visible in crash diagnostics).
KILL_EXIT_CODE = 57

#: Grace between a kill trigger and the actual ``os._exit``.  The worker's
#: task-start notification travels over an OS pipe that is written before the
#: task function runs, but the result queue's feeder thread is asynchronous —
#: the pause keeps crash *attribution* deterministic on slow machines.
_KILL_GRACE_SECONDS = 0.05


class FaultInjectionError(RuntimeError):
    """Raised inside a worker by a ``raise_in_solver`` fault."""


class WorkerCrashError(RuntimeError):
    """In-process stand-in for a killed worker (no subprocess to kill)."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault trigger.

    ``scenario_id`` selects the scenario whose task trips the fault (ignored
    by ``kill_at_task``).  The fault fires on attempts in
    ``[first_attempt, last_attempt]`` of the *task* carrying the scenario;
    ``last_attempt=None`` means every attempt (a persistent fault that forces
    bisection and quarantine), ``last_attempt=0`` a transient fault absorbed
    by one retry.
    """

    kind: str
    scenario_id: Optional[int] = None
    task_index: Optional[int] = None
    first_attempt: int = 0
    last_attempt: Optional[int] = None
    seconds: float = 0.0
    message: str = "injected solver fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.kind == "kill_at_task":
            if self.task_index is None or self.task_index < 0:
                raise ValueError("kill_at_task requires a non-negative task_index")
        elif self.scenario_id is None:
            raise ValueError(f"{self.kind} requires a scenario_id")
        if self.first_attempt < 0:
            raise ValueError("first_attempt must be non-negative")
        if self.last_attempt is not None and self.last_attempt < self.first_attempt:
            raise ValueError("last_attempt must be >= first_attempt")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")

    def applies(self, scenario_id: int, attempt: int) -> bool:
        """True when this (scenario-keyed) spec fires for ``attempt``."""
        if self.kind == "kill_at_task" or self.scenario_id != scenario_id:
            return False
        if attempt < self.first_attempt:
            return False
        return self.last_attempt is None or attempt <= self.last_attempt


@dataclass(frozen=True)
class FaultPlan:
    """A picklable bundle of fault triggers consulted by fleet workers.

    Empty plans are inert; :meth:`none` (or simply ``None`` at the fleet API)
    is the production configuration.  All lookups are pure functions of the
    task message (scenario ids + attempt number), so a plan behaves
    identically no matter which worker, schedule or retry executes the task.
    """

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    @classmethod
    def none(cls) -> "FaultPlan":
        return cls()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def _matching(self, kind: str, scenario_ids: Iterable[int], attempt: int):
        for spec in self.specs:
            if spec.kind != kind:
                continue
            for sid in scenario_ids:
                if spec.applies(sid, attempt):
                    yield spec
                    break

    def kill_for(self, scenario_ids: Sequence[int], attempt: int) -> Optional[FaultSpec]:
        """The kill spec tripped by a task over ``scenario_ids``, if any."""
        return next(self._matching("kill_worker", scenario_ids, attempt), None)

    def raise_for(self, scenario_ids: Sequence[int], attempt: int) -> Optional[FaultSpec]:
        """The raise spec tripped by a task over ``scenario_ids``, if any."""
        return next(self._matching("raise_in_solver", scenario_ids, attempt), None)

    def stall_seconds(self, scenario_ids: Sequence[int], attempt: int) -> float:
        """Total injected stall for a task over ``scenario_ids`` (0.0 = none)."""
        return float(
            sum(spec.seconds for spec in self._matching("stall_solve", scenario_ids, attempt))
        )

    def kill_at_task_index(self, task_count: int) -> bool:
        """True when a worker that has processed ``task_count`` tasks must die."""
        return any(
            spec.kind == "kill_at_task" and spec.task_index == task_count
            for spec in self.specs
        )


# ------------------------------------------------------------- spec builders
def kill_worker(
    scenario_id: int, first_attempt: int = 0, last_attempt: Optional[int] = None
) -> FaultSpec:
    """Kill the worker processing ``scenario_id`` on the given attempts."""
    return FaultSpec(
        kind="kill_worker",
        scenario_id=scenario_id,
        first_attempt=first_attempt,
        last_attempt=last_attempt,
    )


def kill_at_task(task_index: int) -> FaultSpec:
    """Kill a worker when its per-process task counter reaches ``task_index``."""
    return FaultSpec(kind="kill_at_task", task_index=task_index)


def raise_in_solver(
    scenario_id: int,
    first_attempt: int = 0,
    last_attempt: Optional[int] = None,
    message: str = "injected solver fault",
) -> FaultSpec:
    """Raise :class:`FaultInjectionError` in the task solving ``scenario_id``."""
    return FaultSpec(
        kind="raise_in_solver",
        scenario_id=scenario_id,
        first_attempt=first_attempt,
        last_attempt=last_attempt,
        message=message,
    )


def stall_solve(
    scenario_id: int,
    seconds: float,
    first_attempt: int = 0,
    last_attempt: Optional[int] = None,
) -> FaultSpec:
    """Sleep ``seconds`` before solving the task carrying ``scenario_id``."""
    return FaultSpec(
        kind="stall_solve",
        scenario_id=scenario_id,
        first_attempt=first_attempt,
        last_attempt=last_attempt,
        seconds=seconds,
    )


# -------------------------------------------------------------- worker hooks
def execute_kill(in_subprocess: bool) -> None:
    """Carry out a tripped kill fault.

    Spawn workers die like a SIGKILL'd process (``os._exit`` — no cleanup, no
    exception propagation); the in-process fleet raises
    :class:`WorkerCrashError`, which its dispatcher handles through the same
    crash-retry path a dead subprocess takes.
    """
    if in_subprocess:
        time.sleep(_KILL_GRACE_SECONDS)
        os._exit(KILL_EXIT_CODE)
    raise WorkerCrashError("injected worker kill (in-process)")


# ------------------------------------------------------- lifecycle swap faults
#: Promotion stages at which a lifecycle fault can fire (see
#: :class:`repro.engine.lifecycle.ModelLifecycle`).
SWAP_STAGES = ("build", "load", "shadow", "publish")


@dataclass(frozen=True)
class SwapFaultSpec:
    """One deterministic fault trigger in the model-promotion pipeline.

    Keyed on the promotion *stage* and the lifecycle's attempt counter, so a
    fault can be transient ("fail the first promotion, let the replay
    succeed") or persistent, exactly like the solver-side
    :class:`FaultSpec`.  ``last_attempt=None`` fires on every attempt.
    """

    stage: str
    first_attempt: int = 0
    last_attempt: Optional[int] = None
    message: str = "injected swap fault"

    def __post_init__(self) -> None:
        if self.stage not in SWAP_STAGES:
            raise ValueError(f"stage must be one of {SWAP_STAGES}, got {self.stage!r}")
        if self.first_attempt < 0:
            raise ValueError("first_attempt must be non-negative")
        if self.last_attempt is not None and self.last_attempt < self.first_attempt:
            raise ValueError("last_attempt must be >= first_attempt")

    def applies(self, stage: str, attempt: int) -> bool:
        """True when this spec fires at ``stage`` on ``attempt``."""
        if self.stage != stage or attempt < self.first_attempt:
            return False
        return self.last_attempt is None or attempt <= self.last_attempt


@dataclass(frozen=True)
class LifecycleFaultPlan:
    """Deterministic fault triggers consulted by the model lifecycle.

    The lifecycle calls :meth:`check` as it enters each promotion stage; a
    matching spec raises :class:`FaultInjectionError` *before* the stage runs.
    Because the publish stage's actual publication is a single atomic
    reference assignment, a publish-stage fault is the deterministic
    stand-in for a process killed mid-swap: everything before the assignment
    has happened, the assignment itself has not, and the incumbent keeps
    serving.
    """

    specs: Tuple[SwapFaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: SwapFaultSpec) -> "LifecycleFaultPlan":
        return cls(specs=tuple(specs))

    @classmethod
    def none(cls) -> "LifecycleFaultPlan":
        return cls()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def check(self, stage: str, attempt: int) -> None:
        """Raise :class:`FaultInjectionError` when a spec fires at ``stage``."""
        for spec in self.specs:
            if spec.applies(stage, attempt):
                raise FaultInjectionError(
                    f"{spec.message} (stage={stage!r}, attempt={attempt})"
                )


def swap_fault(
    stage: str,
    first_attempt: int = 0,
    last_attempt: Optional[int] = None,
    message: str = "injected swap fault",
) -> SwapFaultSpec:
    """Fault the promotion pipeline at ``stage`` on the given attempts."""
    return SwapFaultSpec(
        stage=stage,
        first_attempt=first_attempt,
        last_attempt=last_attempt,
        message=message,
    )


# -------------------------------------------------------- artifact corruption
def corrupt_artifact_bytes(
    path: Union[str, Path],
    offset: Optional[int] = None,
    count: int = 32,
) -> Path:
    """Deterministically flip ``count`` bytes of a file in place.

    ``offset`` defaults to the middle of the file, which for an engine
    artifact lands inside the array payload (the zip directory lives at the
    end).  Bytes are XOR-flipped, so corruption is deterministic and
    self-inverse.  Returns the path.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    if offset is None:
        offset = len(data) // 2
    if not 0 <= offset < len(data):
        raise ValueError(f"offset {offset} outside file of {len(data)} bytes")
    stop = min(offset + max(count, 1), len(data))
    for i in range(offset, stop):
        data[i] ^= 0xFF
    path.write_bytes(bytes(data))
    return path
