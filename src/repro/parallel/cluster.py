"""Calibrated analytic model of data-parallel scaling (Fig. 9).

The paper scales Smart-PGSim inference over up to 128 V100 GPUs with data
parallelism: every device holds a replica of the model and processes its local
batch of scenarios, with a broadcast of the model and mild load imbalance
limiting the achieved speedup.  Physical GPUs are not available in this
environment, so the scaling experiment is reproduced with an analytic model
calibrated from measured single-worker throughput:

* per-worker compute time  = ``n_local_scenarios / throughput``
* broadcast / staging time = ``broadcast_base + broadcast_per_worker · (w - 1)``
* load imbalance           = the slowest worker carries ``ceil(n / w)`` scenarios
  plus an ``imbalance_factor`` overhead that grows with the worker count,
  mimicking the NVLink/GPUDirect staging effect the paper describes.

The model reports both speedup (strong scaling) and sustained throughput
(weak scaling), which is the shape of Fig. 9(a)/(b).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class ClusterModel:
    """Analytic cluster-scaling model.

    ``throughput`` is scenarios/second of a single worker; the remaining
    parameters control communication and imbalance overheads.
    """

    throughput: float
    broadcast_base: float = 0.02
    broadcast_per_worker: float = 0.004
    imbalance_factor: float = 0.015
    #: Work (in "scenario-equivalents") represented by one scenario; used to
    #: convert throughput into a FLOP-style rate for the weak-scaling plot.
    flops_per_scenario: float = 1.0

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ValueError("throughput must be positive")
        if min(self.broadcast_base, self.broadcast_per_worker, self.imbalance_factor) < 0:
            raise ValueError("overhead parameters must be non-negative")

    # -------------------------------------------------------------- constructors
    @classmethod
    def calibrate(cls, engine_throughput: float, **overrides) -> "ClusterModel":
        """Build the model from a *measured* single-worker engine rate.

        ``engine_throughput`` is the scenarios/second achieved by one batched
        serving engine worker (e.g. ``SweepResult.throughput`` from a
        :meth:`repro.engine.engine.WarmStartEngine.serve` run), so the Fig. 9
        projection is anchored to the real end-to-end rate — inference plus
        warm-started solve — instead of a hand-fed constant.
        """
        return cls(throughput=float(engine_throughput), **overrides)

    # ------------------------------------------------------------------ timing
    def time_for(self, n_scenarios: int, n_workers: int) -> float:
        """Wall-clock estimate for ``n_scenarios`` on ``n_workers`` workers."""
        if n_scenarios < 1 or n_workers < 1:
            raise ValueError("n_scenarios and n_workers must be positive")
        local = math.ceil(n_scenarios / n_workers)
        compute = local / self.throughput
        imbalance = compute * self.imbalance_factor * math.log2(max(n_workers, 1) + 1)
        comm = self.broadcast_base + self.broadcast_per_worker * (n_workers - 1)
        return compute + imbalance + comm

    # ------------------------------------------------------------- strong scaling
    def strong_scaling(self, n_scenarios: int, workers: Sequence[int]) -> Dict[int, float]:
        """Speedup over one worker for a fixed total problem count (Fig. 9a)."""
        t1 = self.time_for(n_scenarios, 1)
        return {int(w): t1 / self.time_for(n_scenarios, int(w)) for w in workers}

    # --------------------------------------------------------------- weak scaling
    def weak_scaling(self, scenarios_per_worker: int, workers: Sequence[int]) -> Dict[int, float]:
        """Sustained rate (scenario-equivalents per second) when work grows with workers (Fig. 9b)."""
        rates = {}
        for w in workers:
            w = int(w)
            n = scenarios_per_worker * w
            rates[w] = n * self.flops_per_scenario / self.time_for(n, w)
        return rates

    def efficiency(self, n_scenarios: int, workers: Sequence[int]) -> Dict[int, float]:
        """Parallel efficiency (speedup / workers) for strong scaling."""
        return {w: s / w for w, s in self.strong_scaling(n_scenarios, workers).items()}


def calibrate_from_inference(
    inference_fn,
    inputs: np.ndarray,
    repeats: int = 3,
    **model_kwargs,
) -> ClusterModel:
    """Build a :class:`ClusterModel` by timing batched inference on this machine.

    ``inference_fn`` takes a batch of input rows and returns predictions;
    the measured throughput (rows/second) seeds the analytic model.
    """
    if repeats < 1:
        raise ValueError("repeats must be positive")
    inputs = np.atleast_2d(inputs)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        inference_fn(inputs)
        best = min(best, time.perf_counter() - t0)
    throughput = inputs.shape[0] / max(best, 1e-9)
    return ClusterModel(throughput=throughput, **model_kwargs)


#: The GPU counts used on the x-axis of Fig. 9.
PAPER_WORKER_COUNTS: List[int] = [1, 16, 32, 64, 128]
