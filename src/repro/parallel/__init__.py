"""Parallel scenario sweeps and the multi-worker scaling model."""

from repro.parallel.cluster import PAPER_WORKER_COUNTS, ClusterModel, calibrate_from_inference
from repro.parallel.pool import ScenarioOutcome, SweepResult, run_scenario_sweep
from repro.parallel.scenarios import Scenario, ScenarioSet, generate_scenarios

__all__ = [
    "Scenario",
    "ScenarioSet",
    "generate_scenarios",
    "ScenarioOutcome",
    "SweepResult",
    "run_scenario_sweep",
    "ClusterModel",
    "calibrate_from_inference",
    "PAPER_WORKER_COUNTS",
]
