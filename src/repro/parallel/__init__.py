"""Parallel scenario sweeps, the solver fleet and the multi-worker scaling model."""

from repro.parallel.cluster import PAPER_WORKER_COUNTS, ClusterModel, calibrate_from_inference
from repro.parallel.pool import (
    EXECUTION_MODES,
    ScenarioOutcome,
    ScenarioSolution,
    SolverFleet,
    SweepResult,
    run_scenario_sweep,
)
from repro.parallel.scenarios import Scenario, ScenarioSet, generate_scenarios
from repro.parallel.scheduler import (
    SCHEDULES,
    MicroBatch,
    auto_microbatch_size,
    balanced_assignment,
    make_microbatches,
    predicted_cost,
    topology_key,
)
from repro.parallel.supervision import PoolClosedError, SupervisedPool

__all__ = [
    "EXECUTION_MODES",
    "SCHEDULES",
    "Scenario",
    "ScenarioSet",
    "generate_scenarios",
    "ScenarioOutcome",
    "ScenarioSolution",
    "SolverFleet",
    "SweepResult",
    "run_scenario_sweep",
    "MicroBatch",
    "auto_microbatch_size",
    "balanced_assignment",
    "make_microbatches",
    "predicted_cost",
    "topology_key",
    "ClusterModel",
    "calibrate_from_inference",
    "PAPER_WORKER_COUNTS",
    "PoolClosedError",
    "SupervisedPool",
]
