"""Parallel scenario sweeps, the solver fleet and the multi-worker scaling model."""

from repro.parallel.cluster import PAPER_WORKER_COUNTS, ClusterModel, calibrate_from_inference
from repro.parallel.pool import (
    EXECUTION_MODES,
    ScenarioOutcome,
    ScenarioSolution,
    SolverFleet,
    SweepResult,
    run_scenario_sweep,
)
from repro.parallel.scenarios import (
    Scenario,
    ScenarioSet,
    generate_contingency_set,
    generate_scenarios,
    outage_keeps_connected,
    screened_outage_sets,
    validate_outage_branches,
)
from repro.parallel.scheduler import (
    SCHEDULES,
    MicroBatch,
    auto_microbatch_size,
    balanced_assignment,
    make_microbatches,
    predicted_cost,
    topology_key,
)
from repro.parallel.supervision import PoolClosedError, SupervisedPool
from repro.parallel.trajectory import (
    MultiPeriodSweep,
    TrajectoryResult,
    chained_warm_start,
    trajectory_steps,
)

__all__ = [
    "EXECUTION_MODES",
    "SCHEDULES",
    "Scenario",
    "ScenarioSet",
    "generate_scenarios",
    "generate_contingency_set",
    "outage_keeps_connected",
    "screened_outage_sets",
    "validate_outage_branches",
    "ScenarioOutcome",
    "ScenarioSolution",
    "SolverFleet",
    "SweepResult",
    "run_scenario_sweep",
    "MicroBatch",
    "auto_microbatch_size",
    "balanced_assignment",
    "make_microbatches",
    "predicted_cost",
    "topology_key",
    "ClusterModel",
    "calibrate_from_inference",
    "PAPER_WORKER_COUNTS",
    "PoolClosedError",
    "SupervisedPool",
    "MultiPeriodSweep",
    "TrajectoryResult",
    "chained_warm_start",
    "trajectory_steps",
]
