"""Parallel scenario sweeps, the solver fleet and the multi-worker scaling model."""

from repro.parallel.cluster import PAPER_WORKER_COUNTS, ClusterModel, calibrate_from_inference
from repro.parallel.pool import (
    EXECUTION_MODES,
    ScenarioOutcome,
    ScenarioSolution,
    SolverFleet,
    SweepResult,
    run_scenario_sweep,
)
from repro.parallel.scenarios import Scenario, ScenarioSet, generate_scenarios

__all__ = [
    "EXECUTION_MODES",
    "Scenario",
    "ScenarioSet",
    "generate_scenarios",
    "ScenarioOutcome",
    "ScenarioSolution",
    "SolverFleet",
    "SweepResult",
    "run_scenario_sweep",
    "ClusterModel",
    "calibrate_from_inference",
    "PAPER_WORKER_COUNTS",
]
