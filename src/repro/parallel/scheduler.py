"""Elastic scenario scheduling: micro-batches, cost balancing, work queues.

The solver fleet historically scattered a sweep as ``n_workers`` fixed chunks
computed up front.  That is optimal only when every scenario costs the same;
real sweeps are *skewed* — cold starts take several times the iterations of
warm ones, outage scenarios pay extra model work, and a single slow chunk
serialises the whole sweep while the other workers idle.  This module supplies
the scheduling layer that fixes both failure modes:

* :func:`balanced_assignment` — cost-aware static chunking.  Scenarios are
  assigned greedily (longest-processing-time first) by :func:`predicted_cost`
  so no chunk concentrates the expensive ones.  Used by the fleet's
  ``schedule="static"`` path.
* :func:`make_microbatches` — splits a sweep into **topology-keyed
  micro-batches**: scenarios sharing a network topology (same outage branch,
  or the base network) group together, because only same-structure problems
  can march in lockstep, and each group is cut into micro-batches of bounded
  size.  The micro-batch list is the shared work queue of the fleet's
  ``schedule="steal"`` path: persistent workers pull the next micro-batch the
  moment they finish one, so remaining work is effectively *stolen* from
  whichever static chunk would have hoarded it.
* Cross-sweep contingency batching — :func:`make_microbatches` accepts any
  flat scenario sequence, so :meth:`~repro.parallel.pool.SolverFleet.solve_many`
  concatenates several N-1 sweeps and scenarios that share an outage branch
  across sweeps land in the same lockstep group, recovering the batch win
  that per-sweep fragmentation forfeits.

Every policy here is **deterministic** (pure functions of the input order and
the predicted costs) and only decides *where and with whom* a scenario is
solved — never *how*.  Lockstep batch solves are row-independent bit for bit,
so per-scenario results are invariant under chunk assignment, steal order,
worker count and micro-batch size; the scheduler-invariant test harness pins
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.opf.warmstart import WarmStart
from repro.parallel.scenarios import Scenario

__all__ = [
    "SCHEDULES",
    "COLD_COST_FACTOR",
    "OUTAGE_COST_FACTOR",
    "MicroBatch",
    "topology_key",
    "predicted_cost",
    "balanced_assignment",
    "auto_microbatch_size",
    "make_microbatches",
]

#: Valid fleet scheduling policies: ``"static"`` (cost-balanced fixed chunks,
#: one per worker) and ``"steal"`` (shared micro-batch queue with dynamic
#: pulling).
SCHEDULES = ("static", "steal")

#: Predicted cost multiplier of a cold start relative to a warm start (cold
#: MIPS solves take roughly three times the iterations of a good warm start —
#: the Fig. 4 ratio the paper reproduces).
COLD_COST_FACTOR = 3.0

#: Predicted cost multiplier of an N-1 outage scenario (dedicated topology
#: model, typically a slightly harder problem than the base network).
OUTAGE_COST_FACTOR = 1.25


@dataclass(frozen=True)
class MicroBatch:
    """A topology-pure unit of schedulable work.

    ``positions`` are indices into the flat scenario sequence the scheduler
    was given (NOT scenario ids — ids may collide across sweeps when several
    are merged); ``key`` is the shared topology key of every member (the
    sorted outage-branch tuple; ``()`` for the intact network).
    """

    key: Tuple[int, ...]
    positions: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.positions)


def topology_key(scenario: Scenario) -> Tuple[int, ...]:
    """The network-topology key of a scenario: its sorted outage-branch tuple.

    ``()`` is the intact network; ``(b,)`` an N-1 outage; ``(b1, b2)`` an N-2
    pair, and so on — topology keys *compose*, so N-k scenarios group exactly
    like N-1 ones.  Scenarios with equal keys share admittances, sparsity
    patterns and bounds, so they can be solved in one lockstep group by the
    batched MIPS kernels.  This is the **single source of truth** for
    topology grouping: the scheduler's micro-batches and the pool workers'
    lockstep groups both key on it (a divergence between the two silently
    changes lockstep group membership).
    """
    return scenario.outage_branches


def predicted_cost(scenario: Scenario, warm: Optional[WarmStart]) -> float:
    """Relative predicted solve cost of one scenario.

    A deliberately simple, deterministic heuristic: cold starts cost
    :data:`COLD_COST_FACTOR` warm solves, and each outaged branch pays
    :data:`OUTAGE_COST_FACTOR` — an N-k scenario costs the factor to the
    power ``k`` (every dropped branch stresses the network a little more).
    Case size scales every scenario of a sweep equally, so it cancels out of
    the balancing decision.
    """
    cost = 1.0 if warm is not None else COLD_COST_FACTOR
    if scenario.outage_branches:
        cost *= OUTAGE_COST_FACTOR ** len(scenario.outage_branches)
    return cost


def balanced_assignment(
    scenarios: Sequence[Scenario],
    warm_starts: Sequence[Optional[WarmStart]],
    n_chunks: int,
) -> List[List[int]]:
    """Cost-balanced static chunking (longest-processing-time greedy).

    Positions are sorted by descending :func:`predicted_cost` (ties keep input
    order) and dealt one by one to the currently least-loaded chunk (ties go
    to the lowest chunk id), so a hot scenario lands in a chunk that receives
    correspondingly fewer cheap ones.  Within each chunk, positions are
    restored to input order.  Deterministic; returns ``n_chunks`` lists whose
    concatenation covers every position exactly once (some may be empty when
    there are fewer scenarios than chunks).
    """
    if n_chunks < 1:
        raise ValueError("n_chunks must be positive")
    if len(warm_starts) != len(scenarios):
        raise ValueError("warm_starts must have one entry per scenario")
    costs = [predicted_cost(s, w) for s, w in zip(scenarios, warm_starts)]
    order = sorted(range(len(scenarios)), key=lambda i: (-costs[i], i))
    loads = [0.0] * n_chunks
    chunks: List[List[int]] = [[] for _ in range(n_chunks)]
    for i in order:
        target = min(range(n_chunks), key=lambda c: (loads[c], c))
        chunks[target].append(i)
        loads[target] += costs[i]
    for chunk in chunks:
        chunk.sort()
    return chunks


def auto_microbatch_size(n_scenarios: int, n_workers: int, oversubscribe: int = 4) -> int:
    """Default micro-batch size for a sweep of ``n_scenarios``.

    Sized so the queue holds roughly ``oversubscribe`` micro-batches per
    worker: small enough that a straggler cannot hoard much work behind it,
    large enough that the lockstep batch win is not given away.
    """
    if n_scenarios < 1:
        return 1
    return max(1, -(-n_scenarios // (max(n_workers, 1) * max(oversubscribe, 1))))


def make_microbatches(
    scenarios: Sequence[Scenario],
    microbatch: Optional[int] = None,
    n_workers: int = 1,
) -> List[MicroBatch]:
    """Cut a flat scenario sequence into topology-keyed micro-batches.

    Scenarios are grouped by :func:`topology_key` (groups ordered by first
    appearance, members in input order — so merged multi-sweep sequences put
    same-outage scenarios of *different* sweeps into the same group), then
    each group is sliced into micro-batches of at most ``microbatch``
    scenarios (:func:`auto_microbatch_size` when omitted).  The result is the
    fleet's work queue; its order is part of the deterministic contract but
    per-scenario results do not depend on it.
    """
    if microbatch is None:
        microbatch = auto_microbatch_size(len(scenarios), n_workers)
    if microbatch < 1:
        raise ValueError("microbatch must be positive")
    groups: Dict[Tuple[int, ...], List[int]] = {}
    for pos, scenario in enumerate(scenarios):
        groups.setdefault(topology_key(scenario), []).append(pos)
    batches: List[MicroBatch] = []
    for key, positions in groups.items():
        for start in range(0, len(positions), microbatch):
            batches.append(
                MicroBatch(key=key, positions=tuple(positions[start : start + microbatch]))
            )
    return batches
