"""SC-ACOPF scenario generation.

Security-constrained AC-OPF (Section VIII-E) analyses a large tree of largely
independent scenarios: base-load variations, localised stress and single
branch outages (N-1 contingencies).  This module generates such scenario sets;
the pool runner and the cluster model consume them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.grid.components import Case
from repro.grid.perturb import sample_loads
from repro.utils.rng import RNGLike, ensure_rng


@dataclass(frozen=True)
class Scenario:
    """One SC-ACOPF scenario: a load realisation plus an optional branch outage."""

    scenario_id: int
    Pd: np.ndarray
    Qd: np.ndarray
    outage_branch: Optional[int] = None

    def apply(self, case: Case) -> Case:
        """Return a copy of ``case`` with this scenario's loads and outage applied."""
        scenario_case = case.with_loads(self.Pd, self.Qd, name=f"{case.name}#sc{self.scenario_id}")
        if self.outage_branch is not None:
            scenario_case.branch.status[self.outage_branch] = 0
        return scenario_case

    def feature_vector(self, base_mva: float) -> np.ndarray:
        """Model input vector ``[Pd, Qd]`` in p.u."""
        return np.concatenate([self.Pd, self.Qd]) / base_mva


@dataclass
class ScenarioSet:
    """A batch of scenarios for one case."""

    case_name: str
    scenarios: List[Scenario] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    def feature_matrix(self, base_mva: float) -> np.ndarray:
        """Stacked model inputs for batched inference."""
        return np.vstack([s.feature_vector(base_mva) for s in self.scenarios])


def generate_scenarios(
    case: Case,
    n_scenarios: int,
    variation: float = 0.1,
    contingency_fraction: float = 0.0,
    seed: RNGLike = 0,
) -> ScenarioSet:
    """Generate ``n_scenarios`` load scenarios, optionally with N-1 outages.

    ``contingency_fraction`` of the scenarios additionally drop one random
    in-service, non-bridging branch (bridges are avoided crudely by only
    dropping branches whose removal keeps every bus degree at least one).
    """
    if not 0.0 <= contingency_fraction <= 1.0:
        raise ValueError("contingency_fraction must be in [0, 1]")
    rng = ensure_rng(seed)
    loads = sample_loads(case, n_scenarios, variation=variation, seed=rng)

    # Candidate branches for outages: in-service branches whose endpoints keep
    # degree >= 2 counting *live* branches only (an out-of-service branch must
    # not make a bus look better connected than it is).
    f, t = case.branch_bus_indices()
    live = case.branch.status > 0
    degree = np.bincount(f[live], minlength=case.n_bus) + np.bincount(
        t[live], minlength=case.n_bus
    )
    candidates = np.flatnonzero(live & (degree[f] > 1) & (degree[t] > 1))

    scenarios = []
    for i, sample in enumerate(loads):
        outage = None
        if candidates.size and rng.random() < contingency_fraction:
            outage = int(rng.choice(candidates))
        scenarios.append(
            Scenario(scenario_id=i, Pd=sample.Pd, Qd=sample.Qd, outage_branch=outage)
        )
    return ScenarioSet(case_name=case.name, scenarios=scenarios)
