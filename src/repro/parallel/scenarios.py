"""SC-ACOPF scenario generation.

Security-constrained AC-OPF (Section VIII-E) analyses a large tree of largely
independent scenarios: base-load variations, localised stress and branch
outages.  This module generates such scenario sets — N-1 single-branch
outages, screened N-k outage *sets* (:func:`generate_contingency_set`) and
plain load sweeps; the pool runner and the cluster model consume them.

A :class:`Scenario` carries its outage as a **sorted tuple of branch
indices** (``outage_branches``); the classic single-branch field
``outage_branch`` remains as a compatibility view for k ≤ 1.  The sorted
tuple is also the scenario's topology key (see
:func:`repro.parallel.scheduler.topology_key`): scenarios dropping the same
branch *set* share admittances and sparsity structure, so N-2 pairs form
lockstep groups exactly like N-1 singles do.

Outage screening uses a real connectivity check
(:func:`outage_keeps_connected`, union-find over the post-outage live graph)
rather than the old endpoint-degree heuristic, which admitted branches whose
removal splits the network (an islanded outage surfaces deep in the solver as
a singular powerflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.components import Case
from repro.grid.perturb import sample_loads
from repro.utils.rng import RNGLike, ensure_rng


def validate_outage_branches(branches: Sequence[int], n_branch: int) -> None:
    """Check every outage index against the case's branch count.

    Raises a typed :class:`ValueError` instead of letting a negative index
    silently alias the *last* branch (NumPy semantics) or an out-of-range one
    surface as a bare ``IndexError`` inside the solver.
    """
    for branch in branches:
        if not 0 <= int(branch) < n_branch:
            raise ValueError(
                f"outage branch index {int(branch)} out of range for a case "
                f"with {n_branch} branches"
            )


def _normalized_outage_branches(
    outage_branch: Optional[int], outage_branches: Iterable[int]
) -> Tuple[int, ...]:
    """Reconcile the two outage fields into one sorted, de-duplicated tuple."""
    branches = tuple(outage_branches or ())
    for branch in branches:
        if not isinstance(branch, (int, np.integer)):
            raise ValueError(
                f"outage branch indices must be integers, got {branch!r}"
            )
    branches = tuple(int(b) for b in branches)
    if outage_branch is not None:
        if not isinstance(outage_branch, (int, np.integer)):
            raise ValueError(
                f"outage_branch must be an integer, got {outage_branch!r}"
            )
        single = int(outage_branch)
        if branches and single not in branches:
            raise ValueError(
                "outage_branch and outage_branches disagree: "
                f"{single} not in {branches}"
            )
        if not branches:
            branches = (single,)
    for branch in branches:
        if branch < 0:
            raise ValueError(
                f"outage branch index must be non-negative, got {branch} "
                "(a negative index would silently alias the last branch)"
            )
    return tuple(sorted(set(branches)))


@dataclass(frozen=True)
class Scenario:
    """One SC-ACOPF scenario: a load realisation plus an optional branch-outage set.

    ``outage_branches`` is the canonical outage representation — a sorted
    tuple of branch indices (empty for the intact network) that doubles as
    the scenario's topology key.  ``outage_branch`` is kept as a
    compatibility view: it mirrors the single member for k = 1 outages and is
    ``None`` otherwise.  Constructing with either field (or both, when
    consistent) works; indices are validated to be non-negative integers at
    construction and bounds-checked against the case on :meth:`apply`.
    """

    scenario_id: int
    Pd: np.ndarray
    Qd: np.ndarray
    outage_branch: Optional[int] = None
    outage_branches: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        branches = _normalized_outage_branches(self.outage_branch, self.outage_branches)
        object.__setattr__(self, "outage_branches", branches)
        object.__setattr__(
            self, "outage_branch", branches[0] if len(branches) == 1 else None
        )

    def apply(self, case: Case) -> Case:
        """Return a copy of ``case`` with this scenario's loads and outages applied."""
        scenario_case = case.with_loads(self.Pd, self.Qd, name=f"{case.name}#sc{self.scenario_id}")
        if self.outage_branches:
            validate_outage_branches(self.outage_branches, case.n_branch)
            scenario_case.branch.status[list(self.outage_branches)] = 0
        return scenario_case

    def feature_vector(self, base_mva: float) -> np.ndarray:
        """Model input vector ``[Pd, Qd]`` in p.u."""
        return np.concatenate([self.Pd, self.Qd]) / base_mva


@dataclass
class ScenarioSet:
    """A batch of scenarios for one case.

    ``n_bus`` carries the case's bus count so an *empty* set still knows its
    feature width — ``feature_matrix`` on an empty set returns a
    shape-correct ``(0, 2·n_bus)`` array instead of crashing in
    ``np.vstack`` (callers that batch, slice or coalesce requests routinely
    produce empty sets).  When omitted it is inferred from the first
    scenario; an empty set without it degrades to width 0.
    """

    case_name: str
    scenarios: List[Scenario] = field(default_factory=list)
    n_bus: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_bus is None and self.scenarios:
            self.n_bus = int(np.asarray(self.scenarios[0].Pd).shape[0])

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    def feature_matrix(self, base_mva: float) -> np.ndarray:
        """Stacked model inputs for batched inference (shape-correct when empty)."""
        if not self.scenarios:
            return np.zeros((0, 2 * (self.n_bus or 0)))
        return np.vstack([s.feature_vector(base_mva) for s in self.scenarios])


# ------------------------------------------------------------- connectivity
def _n_components(n_bus: int, f: np.ndarray, t: np.ndarray) -> int:
    """Connected-component count of the graph with edges ``(f[i], t[i])``."""
    parent = list(range(n_bus))

    def find(i: int) -> int:
        root = i
        while parent[root] != root:
            root = parent[root]
        while parent[i] != root:
            parent[i], i = root, parent[i]
        return root

    count = n_bus
    for a, b in zip(f, t):
        ra, rb = find(int(a)), find(int(b))
        if ra != rb:
            parent[rb] = ra
            count -= 1
    return count


def outage_keeps_connected(case: Case, branches: Sequence[int]) -> bool:
    """True when dropping ``branches`` does not split the live network.

    Union-find over the post-outage live graph, compared against the intact
    live graph's component count — the *real* islanding check.  The old
    endpoint-degree heuristic (both endpoints keep degree > 1) admits
    splitting branches: any branch on a cycle-free chain *segment* passes it
    while its removal still islands the chain's tail, and no degree condition
    can screen joint N-k removals.
    """
    branches = tuple(int(b) for b in branches)
    validate_outage_branches(branches, case.n_branch)
    f, t = case.branch_bus_indices()
    live = case.branch.status > 0
    base_components = _n_components(case.n_bus, f[live], t[live])
    keep = live.copy()
    keep[list(branches)] = False
    return _n_components(case.n_bus, f[keep], t[keep]) == base_components


def screened_outage_sets(
    case: Case,
    k: int = 1,
    max_sets: Optional[int] = None,
    seed: RNGLike = 0,
) -> List[Tuple[int, ...]]:
    """Screened N-k outage sets: size-``k`` combinations of live branches
    whose joint removal keeps the live network connected.

    Combinations are enumerated in lexicographic order over the live-branch
    indices and screened by :func:`outage_keeps_connected`.  When ``max_sets``
    bounds the result, a deterministic subsample (without replacement, from
    ``seed``) of the screened universe is returned, preserving lexicographic
    order — sampling keeps N-2 screening tractable on cases where the full
    pair universe is large.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if max_sets is not None and max_sets < 1:
        raise ValueError("max_sets must be positive")
    live = [int(b) for b in np.flatnonzero(case.branch.status > 0)]
    screened = [
        combo for combo in combinations(live, k) if outage_keeps_connected(case, combo)
    ]
    if max_sets is not None and len(screened) > max_sets:
        rng = ensure_rng(seed)
        chosen = rng.choice(len(screened), size=max_sets, replace=False)
        screened = [screened[i] for i in sorted(int(c) for c in chosen)]
    return screened


# --------------------------------------------------------------- generation
def generate_scenarios(
    case: Case,
    n_scenarios: int,
    variation: float = 0.1,
    contingency_fraction: float = 0.0,
    seed: RNGLike = 0,
) -> ScenarioSet:
    """Generate ``n_scenarios`` load scenarios, optionally with N-1 outages.

    ``contingency_fraction`` of the scenarios additionally drop one random
    in-service branch whose removal keeps the network connected
    (:func:`outage_keeps_connected` — a real islanding check, not the old
    endpoint-degree heuristic).
    """
    if not 0.0 <= contingency_fraction <= 1.0:
        raise ValueError("contingency_fraction must be in [0, 1]")
    rng = ensure_rng(seed)
    loads = sample_loads(case, n_scenarios, variation=variation, seed=rng)

    # Candidate branches for outages: the cheap degree filter is kept as a
    # necessary pre-condition (an endpoint of degree 1 always islands), then
    # each survivor is screened by the actual connectivity check.
    f, t = case.branch_bus_indices()
    live = case.branch.status > 0
    degree = np.bincount(f[live], minlength=case.n_bus) + np.bincount(
        t[live], minlength=case.n_bus
    )
    prefilter = np.flatnonzero(live & (degree[f] > 1) & (degree[t] > 1))
    candidates = np.asarray(
        [b for b in prefilter if outage_keeps_connected(case, (int(b),))], dtype=int
    )

    scenarios = []
    for i, sample in enumerate(loads):
        outage = None
        if candidates.size and rng.random() < contingency_fraction:
            outage = int(rng.choice(candidates))
        scenarios.append(
            Scenario(scenario_id=i, Pd=sample.Pd, Qd=sample.Qd, outage_branch=outage)
        )
    return ScenarioSet(case_name=case.name, scenarios=scenarios, n_bus=case.n_bus)


def generate_contingency_set(
    case: Case,
    n_scenarios: int,
    k: int = 2,
    variation: float = 0.1,
    max_outage_sets: Optional[int] = None,
    seed: RNGLike = 0,
) -> ScenarioSet:
    """N-k contingency screening set: load samples over screened outage sets.

    Each scenario pairs one ±``variation`` load sample with one screened
    N-``k`` outage set (:func:`screened_outage_sets`), assigned round-robin —
    so scenarios sharing an outage set recur and form lockstep groups for the
    batched solver exactly like N-1 screening sweeps do.  ``max_outage_sets``
    bounds (by deterministic subsampling) how many distinct topologies the
    sweep visits, which directly bounds the per-worker model-cache footprint.
    """
    if n_scenarios < 0:
        raise ValueError("n_scenarios must be non-negative")
    rng = ensure_rng(seed)
    loads = sample_loads(case, n_scenarios, variation=variation, seed=rng)
    outage_sets = screened_outage_sets(case, k=k, max_sets=max_outage_sets, seed=rng)
    if not outage_sets:
        raise ValueError(
            f"case {case.name} has no connectivity-preserving N-{k} outage set"
        )
    scenarios = [
        Scenario(
            scenario_id=i,
            Pd=sample.Pd,
            Qd=sample.Qd,
            outage_branches=outage_sets[i % len(outage_sets)],
        )
        for i, sample in enumerate(loads)
    ]
    return ScenarioSet(case_name=case.name, scenarios=scenarios, n_bus=case.n_bus)
