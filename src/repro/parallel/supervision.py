"""Supervised worker processes: crash detection, attribution and respawn.

``multiprocessing.Pool`` cannot serve a fault-tolerant fleet: a worker that
dies mid-task (OOM kill, segfault, injected chaos) leaves ``map`` /
``imap_unordered`` waiting forever on a task nobody will finish, and the pool
offers no way to learn *which* task died with the worker.  This module
replaces it with a small, explicit supervisor built for exactly that failure
mode:

* every worker announces the task it picks up over a dedicated OS pipe
  **before** running it (a synchronous write, unlike the result queue's
  feeder thread), so a crash is attributed to its in-flight task exactly;
* the parent event loop polls worker liveness whenever the result queue is
  quiet — a dead worker yields a ``crash`` event for its running task and is
  respawned into the same slot immediately;
* a task consumed from the queue by a worker that died before announcing it
  (a narrow race) is recovered by the lost-task watchdog: when every worker
  sits idle, the queue is drained and unstarted submissions exist, they are
  resubmitted.  Duplicate completions (possible after resubmission) are
  dropped by the parent, which is safe because fleet tasks are deterministic;
* worker exceptions travel back as ``error`` events (message + exception type
  — never a pickled traceback object, which may not unpickle), leaving the
  worker alive for the next task.

The supervisor is policy-free: retries, bisection and quarantine live in the
fleet dispatcher (:mod:`repro.parallel.pool`), which consumes the
``done`` / ``error`` / ``crash`` event stream this class produces.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.utils.logging import get_logger

LOGGER = get_logger("parallel")

__all__ = ["SupervisedPool", "PoolClosedError", "TaskEvent"]

#: Event tuple: ``(kind, task_id, payload)`` where kind is ``"done"``
#: (payload = task return value), ``"error"`` (payload = description string)
#: or ``"crash"`` (payload = description string).
TaskEvent = Tuple[str, int, Any]


class PoolClosedError(RuntimeError):
    """The supervised pool was terminated while events were outstanding."""


def _supervised_worker(
    slot: int,
    task_queue,
    result_queue,
    start_conn,
    initializer: Optional[Callable],
    initargs: tuple,
) -> None:
    """Worker main loop: announce, run, report; repeat until sentinel."""
    if initializer is not None:
        initializer(*initargs)
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, fn, payload = item
        # Synchronous pipe write: guaranteed visible to the parent before the
        # task function can bring the process down.
        start_conn.send(task_id)
        try:
            value = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
            result_queue.put(
                ("error", slot, task_id, f"{type(exc).__name__}: {exc}")
            )
        else:
            result_queue.put(("done", slot, task_id, value))


class SupervisedPool:
    """A crash-supervised pool of persistent worker processes.

    Tasks are submitted with :meth:`submit` and consumed as events from
    :meth:`next_event`; the pool never blocks forever on a dead worker.
    Workers run ``initializer(*initargs)`` once per process (including
    respawns), exactly like a ``multiprocessing.Pool`` initializer.

    Not thread-safe except for :meth:`terminate`, which may be called from
    another thread to abort a dispatch in flight (the event loop then raises
    :class:`PoolClosedError`).
    """

    def __init__(
        self,
        n_workers: int,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        context: str = "spawn",
        poll_interval: float = 0.05,
        lost_task_grace: float = 2.0,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        self._ctx = mp.get_context(context)
        self._initializer = initializer
        self._initargs = initargs
        self._poll_interval = float(poll_interval)
        self._lost_task_grace = float(lost_task_grace)
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        self._procs: List[Optional[mp.process.BaseProcess]] = [None] * n_workers
        self._start_conns: List[Any] = [None] * n_workers
        self._running: List[Optional[int]] = [None] * n_workers
        self._pending: Dict[int, Tuple[Callable, Any]] = {}
        self._started: set = set()
        self._finished: set = set()
        self._crash_backlog: List[TaskEvent] = []
        self._next_task_id = 0
        self._respawns = 0
        self._closed = False
        self._last_progress = time.monotonic()
        for slot in range(n_workers):
            self._spawn(slot)

    # ------------------------------------------------------------- lifecycle
    def _spawn(self, slot: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_supervised_worker,
            args=(
                slot,
                self._task_queue,
                self._result_queue,
                child_conn,
                self._initializer,
                self._initargs,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[slot] = proc
        self._start_conns[slot] = parent_conn
        self._running[slot] = None

    @property
    def n_workers(self) -> int:
        return len(self._procs)

    @property
    def processes(self) -> List[mp.process.BaseProcess]:
        """Live worker process handles (for liveness assertions in tests)."""
        return [proc for proc in self._procs if proc is not None]

    @property
    def respawns(self) -> int:
        """Number of workers respawned after a crash."""
        return self._respawns

    @property
    def pending(self) -> int:
        """Tasks submitted but not yet completed, failed or crashed."""
        return len(self._pending) + len(self._crash_backlog)

    @property
    def closed(self) -> bool:
        return self._closed

    def terminate(self) -> None:
        """Kill every worker and release queue resources (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=5.0)
        for conn in self._start_conns:
            if conn is not None:
                conn.close()
        for q in (self._task_queue, self._result_queue):
            q.close()
            # The queue feeder threads must not block interpreter exit on
            # unflushed task payloads of an aborted dispatch.
            q.cancel_join_thread()

    # ------------------------------------------------------------ submission
    def submit(self, fn: Callable, payload: Any) -> int:
        """Queue ``fn(payload)`` for execution; returns the task id."""
        if self._closed:
            raise PoolClosedError("pool is closed")
        task_id = self._next_task_id
        self._next_task_id += 1
        self._pending[task_id] = (fn, payload)
        self._task_queue.put((task_id, fn, payload))
        return task_id

    # ------------------------------------------------------------ event loop
    def _drain_start_notifications(self) -> None:
        for slot, conn in enumerate(self._start_conns):
            if conn is None:
                continue
            try:
                while conn.poll(0):
                    task_id = conn.recv()
                    self._running[slot] = task_id
                    self._started.add(task_id)
                    self._last_progress = time.monotonic()
            except (EOFError, OSError):
                # Connection torn down by a dead worker; liveness polling
                # handles the crash itself.
                continue

    def _reap_dead_workers(self) -> None:
        for slot, proc in enumerate(self._procs):
            if proc is None or proc.is_alive() or self._closed:
                continue
            # The worker may have announced a task right before dying.
            self._drain_start_notifications()
            task_id = self._running[slot]
            exitcode = proc.exitcode
            conn = self._start_conns[slot]
            if conn is not None:
                conn.close()
            self._respawns += 1
            self._spawn(slot)
            self._last_progress = time.monotonic()
            if task_id is not None and task_id in self._pending:
                del self._pending[task_id]
                self._crash_backlog.append(
                    (
                        "crash",
                        task_id,
                        f"worker died (exit code {exitcode}) while running task {task_id}",
                    )
                )
                LOGGER.warning(
                    "worker slot %d died (exit code %s) running task %d; respawned",
                    slot,
                    exitcode,
                    task_id,
                )
            else:
                LOGGER.warning(
                    "worker slot %d died (exit code %s) between tasks; respawned",
                    slot,
                    exitcode,
                )

    def _recover_lost_tasks(self) -> None:
        """Resubmit tasks consumed by a worker that died before announcing them."""
        if not self._pending or any(tid is not None for tid in self._running):
            return
        if time.monotonic() - self._last_progress < self._lost_task_grace:
            return
        try:
            queue_empty = self._task_queue.empty()
        except (OSError, ValueError):
            return
        if not queue_empty:
            return
        unstarted = [tid for tid in self._pending if tid not in self._started]
        for task_id in unstarted:
            fn, payload = self._pending[task_id]
            LOGGER.warning("resubmitting lost task %d", task_id)
            self._task_queue.put((task_id, fn, payload))
        self._last_progress = time.monotonic()

    def next_event(self) -> TaskEvent:
        """Block until the next ``done`` / ``error`` / ``crash`` event.

        Raises :class:`PoolClosedError` if the pool is terminated while
        waiting, and ``RuntimeError`` when called with no outstanding tasks.
        """
        while True:
            if self._crash_backlog:
                return self._crash_backlog.pop(0)
            if self._closed:
                raise PoolClosedError("pool was terminated with tasks in flight")
            if not self._pending:
                raise RuntimeError("no outstanding tasks")
            self._drain_start_notifications()
            try:
                msg = self._result_queue.get(timeout=self._poll_interval)
            except queue_mod.Empty:
                self._reap_dead_workers()
                self._recover_lost_tasks()
                continue
            kind, slot, task_id, payload = msg
            if self._running[slot] == task_id:
                self._running[slot] = None
            self._last_progress = time.monotonic()
            if task_id in self._finished or task_id not in self._pending:
                # Duplicate completion of a resubmitted lost task: tasks are
                # deterministic, so either copy of the result is the result.
                continue
            self._finished.add(task_id)
            del self._pending[task_id]
            return (kind, task_id, payload)

    # -------------------------------------------------------------- contexts
    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate()
