"""Process-pool scenario runner.

The SC-ACOPF scenario sweep is embarrassingly parallel: each worker receives a
batch of scenarios, produces warm starts with the trained model and solves
them independently.  This module distributes that sweep over CPU processes —
the same scatter → compute → gather structure as the paper's multi-GPU data
parallelism, with processes standing in for GPUs.

Workers are *persistent*: the case and solver options are shipped once via the
pool initializer, each worker builds its :class:`~repro.opf.model.OPFModel`
(admittances, sparsity-structure caches) once and keeps it for its whole
lifetime, and per-batch messages carry only the scenarios and warm starts.
This keeps the Fig. 9 scaling benchmark measuring solve throughput rather
than case re-pickling and model reconstruction.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.grid.components import Case
from repro.opf.model import OPFModel
from repro.opf.solver import OPFOptions, solve_opf
from repro.opf.warmstart import WarmStart
from repro.parallel.scenarios import Scenario, ScenarioSet


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of one scenario solve."""

    scenario_id: int
    success: bool
    iterations: int
    objective: float
    solve_seconds: float
    worker: int = 0


@dataclass
class SweepResult:
    """Aggregated outcome of a scenario sweep."""

    case_name: str
    n_workers: int
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def n_scenarios(self) -> int:
        """Number of solved scenarios."""
        return len(self.outcomes)

    @property
    def success_rate(self) -> float:
        """Fraction of scenarios that converged."""
        return float(np.mean([o.success for o in self.outcomes])) if self.outcomes else 0.0

    @property
    def throughput(self) -> float:
        """Scenarios per wall-clock second."""
        return self.n_scenarios / self.wall_seconds if self.wall_seconds > 0 else float("nan")

    def total_solver_seconds(self) -> float:
        """Sum of per-scenario solver times (the serial-equivalent work)."""
        return float(sum(o.solve_seconds for o in self.outcomes))


#: Per-process worker state: populated once by :func:`_init_worker`, reused by
#: every batch the worker processes (model construction and case transfer are
#: paid once per worker, not once per batch).
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(case: Case, options: OPFOptions) -> None:
    """Pool initializer: build the per-process OPF model once."""
    _WORKER_STATE["case"] = case
    _WORKER_STATE["options"] = options
    _WORKER_STATE["model"] = OPFModel(case, flow_limits=options.flow_limits)
    _WORKER_STATE["outage_models"] = {}


def _outage_case_and_model(case: Case, options: OPFOptions, branch: int):
    """Per-worker memo of outaged-network cases/models, keyed by branch.

    Sweeps draw outages from a small candidate set, so the same topology
    recurs across scenarios; building its admittances and structure caches
    once per worker keeps contingency scenarios as cheap as load-only ones.
    Loads stay at the base-case values — scenarios override them per solve.
    """
    cache: Dict[int, tuple] = _WORKER_STATE["outage_models"]
    entry = cache.get(branch)
    if entry is None:
        outage_case = case.with_loads(
            case.bus.Pd, case.bus.Qd, name=f"{case.name}#out{branch}"
        )
        outage_case.branch.status[branch] = 0
        entry = (outage_case, OPFModel(outage_case, flow_limits=options.flow_limits))
        cache[branch] = entry
    return entry


def _solve_scenario(
    scenario: Scenario,
    warm: Optional[WarmStart],
    case: Case,
    options: OPFOptions,
    model: OPFModel,
):
    """Solve one scenario, honouring its N-1 branch outage when present.

    Load-only scenarios reuse the persistent per-worker model; an outage
    changes the network topology (admittances, rated-branch set), so those
    scenarios get a dedicated case/model.  When the outage drops a rated
    branch the inequality multipliers/slacks of a base-network warm start no
    longer line up, so ``µ``/``Z`` fall back to solver defaults while the
    primal point and equality multipliers are kept.
    """
    if scenario.outage_branch is None:
        return solve_opf(
            case,
            warm_start=warm,
            Pd_mw=scenario.Pd,
            Qd_mvar=scenario.Qd,
            options=options,
            model=model,
        )
    outage_case, outage_model = _outage_case_and_model(
        case, options, scenario.outage_branch
    )
    if warm is not None and outage_model.n_ineq_nonlin != model.n_ineq_nonlin:
        warm = warm.masked(use_mu=False, use_z=False)
    return solve_opf(
        outage_case,
        warm_start=warm,
        Pd_mw=scenario.Pd,
        Qd_mvar=scenario.Qd,
        options=options,
        model=outage_model,
    )


def _solve_batch(args) -> List[ScenarioOutcome]:
    """Worker entry point: solve a batch of scenarios (module-level for pickling).

    Uses the initializer-held case/options/model; batch messages carry only
    the scenarios, warm starts and a batch id.
    """
    scenarios, warm_starts, worker_id = args
    case: Case = _WORKER_STATE["case"]
    options: OPFOptions = _WORKER_STATE["options"]
    model: OPFModel = _WORKER_STATE["model"]
    outcomes = []
    for scenario, warm in zip(scenarios, warm_starts):
        t0 = time.perf_counter()
        result = _solve_scenario(scenario, warm, case, options, model)
        outcomes.append(
            ScenarioOutcome(
                scenario_id=scenario.scenario_id,
                success=result.success,
                iterations=result.iterations,
                objective=result.objective,
                solve_seconds=time.perf_counter() - t0,
                worker=worker_id,
            )
        )
    return outcomes


def run_scenario_sweep(
    case: Case,
    scenario_set: ScenarioSet,
    warm_starts: Optional[List[Optional[WarmStart]]] = None,
    n_workers: int = 1,
    options: Optional[OPFOptions] = None,
) -> SweepResult:
    """Solve every scenario of ``scenario_set`` using ``n_workers`` processes.

    ``warm_starts`` is an optional per-scenario list (``None`` entries mean a
    cold start); it is typically produced by batched MTL inference in the
    parent process.  ``n_workers=1`` runs everything in-process, which is what
    the unit tests use.
    """
    options = options or OPFOptions()
    if warm_starts is None:
        warm_starts = [None] * len(scenario_set)
    if len(warm_starts) != len(scenario_set):
        raise ValueError("warm_starts must have one entry per scenario")
    if n_workers < 1:
        raise ValueError("n_workers must be positive")

    chunks = scenario_set.partition(n_workers)
    warm_chunks: List[List[Optional[WarmStart]]] = []
    offset = 0
    for chunk in chunks:
        warm_chunks.append(warm_starts[offset : offset + len(chunk)])
        offset += len(chunk)

    jobs = [
        (list(chunk), warm_chunk, worker_id)
        for worker_id, (chunk, warm_chunk) in enumerate(zip(chunks, warm_chunks))
        if len(chunk) > 0
    ]

    start = time.perf_counter()
    if n_workers == 1:
        _init_worker(case, options)
        try:
            results = [_solve_batch(job) for job in jobs]
        finally:
            _WORKER_STATE.clear()
    else:
        ctx = mp.get_context("spawn")
        with ctx.Pool(
            processes=n_workers, initializer=_init_worker, initargs=(case, options)
        ) as pool:
            results = pool.map(_solve_batch, jobs)
    wall = time.perf_counter() - start

    sweep = SweepResult(case_name=case.name, n_workers=n_workers, wall_seconds=wall)
    for batch in results:
        sweep.outcomes.extend(batch)
    sweep.outcomes.sort(key=lambda o: o.scenario_id)
    return sweep
