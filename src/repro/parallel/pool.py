"""Process-pool scenario runner and the persistent solver fleet.

The SC-ACOPF scenario sweep is embarrassingly parallel: each worker receives a
batch of scenarios, pairs them with warm starts produced by batched MTL
inference in the parent and solves them independently.  This module
distributes that sweep over CPU processes — the same scatter → compute →
gather structure as the paper's multi-GPU data parallelism, with processes
standing in for GPUs.

Workers are *persistent* at two levels.  Within one sweep the case and solver
options are shipped once via the pool initializer, each worker builds its
:class:`~repro.opf.model.OPFModel` (admittances, sparsity-structure caches)
once and per-batch messages carry only scenarios and warm starts.  Across
sweeps a :class:`SolverFleet` keeps the worker processes alive, which is what
the serving engine uses to amortise process start-up over many requests.

Each worker supports two *execution modes*.  ``"scenario"`` (the default)
solves its batch one scenario at a time through :func:`solve_opf`;
``"batch"`` solves all same-topology scenarios of the batch in lockstep
through :func:`repro.opf.batch.solve_opf_batch`, which vectorises the
evaluation/assembly phases across the batch and loops only for the
per-scenario factorise/backsolve.  The two modes compose with multi-worker
fleets: with ``n_workers > 1`` each worker runs one lockstep batch over its
chunk of the sweep.

Failed solves can be recovered in-worker through a pluggable fallback policy
(see :mod:`repro.engine.fallback`); the policy object is shipped with the
initializer, so recovery costs no extra scatter/gather round trip.  In batch
mode the (rare) recoveries run per scenario after the lockstep solve.

On top of the execution mode sits the *scheduling policy*
(:mod:`repro.parallel.scheduler`).  ``schedule="static"`` assigns each worker
one cost-balanced chunk up front; ``schedule="steal"`` turns the sweep into a
shared queue of topology-keyed micro-batches that idle workers pull
dynamically — a straggling scenario keeps only its own micro-batch busy while
the rest of its former chunk is stolen by the other workers, and the
in-process fleet streams each topology group through a bounded lockstep
window whose retired slots are refilled from the queue between iterations.
:meth:`SolverFleet.solve_many` extends the same machinery across *several*
sweeps at once: scenarios of different sweeps that share a topology key (the
sorted outage-branch *set* — N-1 singles and N-k tuples alike) merge into one
lockstep group (cross-sweep contingency batching).  Scheduling
only decides where and with whom a scenario is solved; lockstep solves are
row-independent bit for bit, so per-scenario results are invariant under
chunking, steal order, worker count and micro-batch size.

Dispatch is *supervised* (:mod:`repro.parallel.supervision`): tasks flow
through a crash-aware worker pool, and a task whose worker dies (or whose
solve raises) is retried with a bounded budget, then **bisected** — split
along topology-group lines first, then halved — until the culprit scenario is
isolated and quarantined as a structured failed outcome.  Bisection fragments
re-enter the normal solve paths, and lockstep row independence guarantees the
surviving scenarios' results stay bit-identical to a fault-free sweep.
Wall deadlines ride along with each task **per scenario** — a request-wide
scalar and a per-scenario vector (the async batcher's coalesced-flush shape)
normalise to the same per-row form — and reach the solver's cooperative
between-iteration checks; an expired scenario retires as a ``timed_out``
outcome without perturbing its lockstep neighbours, and a dispatched task
whose deadlines have partially passed retires only the expired rows while
solving the rest.
Deterministic chaos for all of this comes from an optional
:class:`~repro.testing.faults.FaultPlan` shipped to the workers with the
initializer.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.grid.components import Case
from repro.opf.batch import BatchedOPFModel, solve_opf_batch
from repro.opf.model import OPFModel
from repro.opf.result import OPFResult
from repro.opf.solver import OPFOptions, solve_opf
from repro.opf.warmstart import WarmStart
from repro.parallel.scenarios import Scenario, ScenarioSet, validate_outage_branches
from repro.parallel.scheduler import (
    SCHEDULES,
    balanced_assignment,
    make_microbatches,
    topology_key,
)
from repro.parallel.supervision import SupervisedPool
from repro.testing.faults import FaultInjectionError, FaultPlan, execute_kill

if TYPE_CHECKING:  # pragma: no cover - import-time cycle guard (engine imports pool)
    from repro.engine.fallback import FallbackPolicy

#: Valid worker execution modes.
EXECUTION_MODES = ("scenario", "batch")


@dataclass(frozen=True)
class ScenarioSolution:
    """Converged primal/dual variables of one scenario solve.

    Collected (on request) so ground-truth generation can run through the same
    pooled batch-solve path as online serving.
    """

    x: np.ndarray
    lam: np.ndarray
    mu: np.ndarray
    z: np.ndarray


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of one scenario solve.

    ``success`` / ``iterations`` / ``objective`` / ``solve_seconds`` always
    describe the first (warm) attempt; when a fallback policy recovered a
    failure, the ``fallback_*`` fields describe the recovery and the
    ``final_*`` properties select the solve that produced the final answer.
    ``solve_seconds`` is the scenario's *additive* solve cost — the per-solve
    wall time in scenario mode, the scenario's share of the lockstep wall in
    batch mode (see :class:`SweepResult`).
    """

    scenario_id: int
    success: bool
    iterations: int
    objective: float
    solve_seconds: float
    worker: int = 0
    used_fallback: bool = False
    fallback_success: bool = False
    #: Summed over *every* recovery solve (a relaxed retry that degrades to a
    #: cold restart counts both), matching ``fallback_seconds``' coverage.
    iterations_fallback: int = 0
    objective_fallback: float = float("nan")
    fallback_seconds: float = 0.0
    #: Per-phase solver times of the solve that produced the final answer.
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: KKT backend factorisation counters of the final solve (symbolic
    #: reuses, numeric refactorisations, block factorisations …) — the Fig. 5
    #: attribution inputs, harvested from ``OPFResult.kkt_telemetry``.
    kkt_telemetry: Dict[str, int] = field(default_factory=dict)
    #: Final primal/dual variables (present when solutions were requested).
    solution: Optional[ScenarioSolution] = None
    #: Crash/error retries of the tasks that carried this scenario (0 for a
    #: clean dispatch; includes retries of fragments it rode along in).
    retries: int = 0
    #: True when the scenario retired on a wall deadline or per-solve budget
    #: (a resource outcome — no fallback recovery is attempted).
    timed_out: bool = False
    #: True when supervision isolated this scenario as the culprit of repeated
    #: worker crashes / solver errors and retired it without a solution.
    quarantined: bool = False
    #: Description of the crash or exception that quarantined the scenario.
    error: str = ""

    @property
    def converged(self) -> bool:
        """True when either the first attempt or its fallback converged."""
        return self.success or (self.used_fallback and self.fallback_success)

    @property
    def final_iterations(self) -> int:
        """Iterations spent on the path that produced the final answer."""
        return self.iterations_fallback if self.used_fallback else self.iterations

    @property
    def final_objective(self) -> float:
        """Objective of the solve that produced the final answer."""
        return self.objective_fallback if self.used_fallback else self.objective


@dataclass
class SweepResult:
    """Aggregated outcome of a scenario sweep.

    ``execution`` records which worker mode produced the outcomes, because it
    decides the semantics of ``ScenarioOutcome.solve_seconds``: per-solve wall
    time in ``"scenario"`` mode, the scenario's additive share of the
    lockstep wall in ``"batch"`` mode (shares sum to the batch wall, so both
    flavours are comparable and summable).
    """

    case_name: str
    n_workers: int
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    execution: str = "scenario"
    #: Scheduling policy that dispatched the sweep (``"static"`` or
    #: ``"steal"``; :meth:`SolverFleet.solve_many` always records ``"steal"``).
    schedule: str = "static"
    #: Task failure events the supervisor observed (worker crashes plus
    #: raised worker exceptions) while dispatching this sweep.
    errors: int = 0
    #: Task retry attempts the supervisor dispatched for this sweep.
    retries: int = 0
    #: Scenarios quarantined as crash/error culprits (see
    #: ``ScenarioOutcome.quarantined``).  For :meth:`SolverFleet.solve_many`
    #: the three counters record the *joint* dispatch, repeated on each sweep.
    quarantined: int = 0
    #: Model generation that served this sweep (stamped by the engine; 0 for
    #: bare-fleet sweeps).  A request in flight across a hot-swap keeps the
    #: generation it snapshotted on entry — never a hybrid.
    model_generation: int = 0
    #: Trajectory step index when this sweep is one period of a multi-period
    #: sweep (stamped by :class:`~repro.parallel.trajectory.MultiPeriodSweep`);
    #: ``None`` for ordinary one-shot sweeps.
    period: Optional[int] = None

    @property
    def n_scenarios(self) -> int:
        """Number of solved scenarios."""
        return len(self.outcomes)

    @property
    def success_rate(self) -> float:
        """Fraction of scenarios that converged (after any fallback)."""
        return float(np.mean([o.converged for o in self.outcomes])) if self.outcomes else 0.0

    @property
    def warm_success_rate(self) -> float:
        """Fraction of scenarios whose first (warm) attempt converged."""
        return float(np.mean([o.success for o in self.outcomes])) if self.outcomes else 0.0

    @property
    def fallback_rate(self) -> float:
        """Fraction of scenarios that needed the fallback policy."""
        return float(np.mean([o.used_fallback for o in self.outcomes])) if self.outcomes else 0.0

    @property
    def throughput(self) -> float:
        """Scenarios per wall-clock second."""
        return self.n_scenarios / self.wall_seconds if self.wall_seconds > 0 else float("nan")

    def total_solver_seconds(self) -> float:
        """Sum of per-scenario solver times (the serial-equivalent work)."""
        return float(sum(o.solve_seconds + o.fallback_seconds for o in self.outcomes))


# ---------------------------------------------------------------------- workers
#: Per-process worker state: populated once by :func:`_init_worker`, reused by
#: every batch the worker processes (model construction and case transfer are
#: paid once per worker, not once per batch).
_WORKER_STATE: Dict[str, object] = {}


def _build_state(
    case: Case,
    options: OPFOptions,
    fallback: "Optional[FallbackPolicy]" = None,
    collect_solutions: bool = False,
    model: Optional[OPFModel] = None,
    execution: str = "scenario",
    faults: Optional[FaultPlan] = None,
    in_subprocess: bool = False,
) -> Dict[str, object]:
    return {
        "case": case,
        "options": options,
        "model": model or OPFModel(case, flow_limits=options.flow_limits),
        "outage_models": {},
        "batched_models": {},
        "fallback": fallback,
        "collect_solutions": collect_solutions,
        "execution": execution,
        "faults": faults,
        "in_subprocess": in_subprocess,
        # Tasks processed by this worker process (drives ``kill_at_task``).
        "task_count": 0,
    }


def _init_worker(
    case: Case,
    options: OPFOptions,
    fallback: "Optional[FallbackPolicy]" = None,
    collect_solutions: bool = False,
    execution: str = "scenario",
    faults: Optional[FaultPlan] = None,
) -> None:
    """Pool initializer: build the per-process OPF model once."""
    _WORKER_STATE.clear()
    _WORKER_STATE.update(
        _build_state(
            case,
            options,
            fallback,
            collect_solutions,
            execution=execution,
            faults=faults,
            in_subprocess=True,
        )
    )


def _outage_case_and_model(state: Dict[str, object], branches: Tuple[int, ...]):
    """Per-worker memo of outaged-network cases/models, keyed by topology key.

    The key is the scenario's sorted outage-branch tuple — an N-1 single and
    an N-2 pair memoise the same way.  Sweeps draw outages from a small
    candidate set, so the same topology recurs across scenarios; building its
    admittances and structure caches once per worker keeps contingency
    scenarios as cheap as load-only ones.  Loads stay at the base-case values
    — scenarios override them per solve.  Branch indices are bounds-checked
    here (typed :class:`ValueError`) before they can reach NumPy fancy
    indexing.
    """
    case: Case = state["case"]
    options: OPFOptions = state["options"]
    cache: Dict[Tuple[int, ...], tuple] = state["outage_models"]
    entry = cache.get(branches)
    if entry is None:
        validate_outage_branches(branches, case.n_branch)
        label = "+".join(str(b) for b in branches)
        outage_case = case.with_loads(
            case.bus.Pd, case.bus.Qd, name=f"{case.name}#out{label}"
        )
        outage_case.branch.status[list(branches)] = 0
        entry = (outage_case, OPFModel(outage_case, flow_limits=options.flow_limits))
        cache[branches] = entry
    return entry


def _solve_scenario(
    state: Dict[str, object],
    scenario: Scenario,
    warm: Optional[WarmStart],
    options: Optional[OPFOptions] = None,
    deadline: Optional[float] = None,
) -> OPFResult:
    """Solve one scenario, honouring its branch-outage set when present.

    Load-only scenarios reuse the persistent per-worker model; an outage
    (single N-1 branch or a whole N-k set) changes the network topology
    (admittances, rated-branch set), so those scenarios get a dedicated
    case/model.  When the outage drops a rated branch the inequality
    multipliers/slacks of a base-network warm start no longer line up, so
    ``µ``/``Z`` fall back to solver defaults while the primal point and
    equality multipliers are kept.
    """
    case: Case = state["case"]
    model: OPFModel = state["model"]
    options = options or state["options"]
    if not scenario.outage_branches:
        return solve_opf(
            case,
            warm_start=warm,
            Pd_mw=scenario.Pd,
            Qd_mvar=scenario.Qd,
            options=options,
            model=model,
            deadline=deadline,
        )
    outage_case, outage_model = _outage_case_and_model(state, scenario.outage_branches)
    if warm is not None and outage_model.n_ineq_nonlin != model.n_ineq_nonlin:
        warm = warm.masked(use_mu=False, use_z=False)
    return solve_opf(
        outage_case,
        warm_start=warm,
        Pd_mw=scenario.Pd,
        Qd_mvar=scenario.Qd,
        options=options,
        model=outage_model,
        deadline=deadline,
    )


def _batched_model_for(
    state: Dict[str, object], key: Tuple[int, ...], model: OPFModel
):
    """Per-worker memo of batched evaluation models, keyed by topology key."""
    cache: Dict[Tuple[int, ...], BatchedOPFModel] = state["batched_models"]
    batched = cache.get(key)
    if batched is None:
        batched = BatchedOPFModel(model)
        cache[key] = batched
    return batched


def _topology_groups(scenarios: Sequence[Scenario]) -> Dict[Tuple[int, ...], List[int]]:
    """Group scenario positions by :func:`topology_key` (first-appearance order).

    The one grouping rule shared by every solve path: the scheduler's
    micro-batches (:func:`~repro.parallel.scheduler.make_microbatches`), the
    static-chunk lockstep grouping and task bisection all call this (or
    ``topology_key`` directly), so lockstep group membership cannot silently
    diverge between the pool and the scheduler.
    """
    groups: Dict[Tuple[int, ...], List[int]] = {}
    for pos, scenario in enumerate(scenarios):
        groups.setdefault(topology_key(scenario), []).append(pos)
    return groups


def _lockstep_group(
    state: Dict[str, object],
    key: Tuple[int, ...],
    scenarios: Sequence[Scenario],
    warm_starts: Sequence[Optional[WarmStart]],
    window: Optional[int] = None,
    deadline: Optional[object] = None,
) -> List[OPFResult]:
    """Lockstep first attempts for a *topology-pure* scenario group.

    Every scenario must share ``key`` (its sorted outage-branch tuple; ``()``
    = the intact network); warm-start ``µ``/``Z`` are masked on topology
    changes exactly like the scalar path.  ``window`` bounds the lockstep
    width (retire-and-refill streaming, see
    :func:`repro.opf.batch.solve_opf_batch`).  ``deadline`` is a scalar or a
    per-scenario vector of absolute wall deadlines (``inf`` = unbounded),
    forwarded to the batch solver's per-row retirement checks.
    """
    options: OPFOptions = state["options"]
    base_model: OPFModel = state["model"]
    key = tuple(key or ())
    if not key:
        case, model = state["case"], base_model
    else:
        case, model = _outage_case_and_model(state, key)
    warms = []
    for warm in warm_starts:
        if (
            warm is not None
            and key
            and model.n_ineq_nonlin != base_model.n_ineq_nonlin
        ):
            warm = warm.masked(use_mu=False, use_z=False)
        warms.append(warm)
    return solve_opf_batch(
        case,
        np.stack([s.Pd for s in scenarios]),
        np.stack([s.Qd for s in scenarios]),
        warm_starts=warms,
        options=options,
        model=model,
        batched=_batched_model_for(state, key, model),
        window=window,
        deadline=deadline,
    )


def _row_deadline(deadlines: Optional[List[float]], pos: int) -> Optional[float]:
    """The scalar deadline of one row (``None`` for unbounded/absent rows)."""
    if deadlines is None:
        return None
    value = deadlines[pos]
    return None if np.isinf(value) else float(value)


def _lockstep_first_attempts(
    state: Dict[str, object],
    scenarios: List[Scenario],
    warm_starts: List[Optional[WarmStart]],
    deadlines: Optional[List[float]] = None,
    skip: Optional[Set[int]] = None,
) -> List[Optional[OPFResult]]:
    """First (warm) attempts for a worker batch, solved in lockstep.

    Scenarios are grouped by :func:`~repro.parallel.scheduler.topology_key`
    (via :func:`_topology_groups`) — all load-only scenarios share the base
    network, and outage scenarios share their outaged network per branch
    *set* — because only same-structure problems can march in lockstep.
    Grouping by the raw ``outage_branch`` view here used to silently diverge
    from the scheduler's key for N-k scenarios (every k ≥ 2 scenario views as
    ``None`` and would have joined the base-network group — solved on the
    wrong topology).  Groups of one fall back to the scalar path (a one-off
    topology gains nothing from the batch machinery).  Warm-start ``µ``/``Z``
    are masked on topology changes exactly like the scalar path.

    ``skip`` marks positions already retired (expired deadlines).  Grouping
    and the scalar-vs-lockstep choice are still made over the *original* row
    set — the scalar and lockstep paths differ in the last bits, so letting a
    retired row shrink a pair into a singleton would flip its neighbour onto
    a different numeric path.  Skipped positions return ``None``.
    """
    skip = skip or set()
    results: List[Optional[OPFResult]] = [None] * len(scenarios)
    groups = _topology_groups(scenarios)
    for key, positions in groups.items():
        live = [pos for pos in positions if pos not in skip]
        if not live:
            continue
        if len(positions) == 1:
            pos = positions[0]
            results[pos] = _solve_scenario(
                state, scenarios[pos], warm_starts[pos],
                deadline=_row_deadline(deadlines, pos),
            )
            continue
        batch_results = _lockstep_group(
            state,
            key,
            [scenarios[pos] for pos in live],
            [warm_starts[pos] for pos in live],
            deadline=None if deadlines is None else [deadlines[pos] for pos in live],
        )
        for pos, result in zip(live, batch_results):
            results[pos] = result
    return results


def _outcome_for(
    state: Dict[str, object],
    scenario: Scenario,
    warm: Optional[WarmStart],
    worker_id: int,
    first: Optional[OPFResult] = None,
    deadline: Optional[float] = None,
) -> ScenarioOutcome:
    """Solve one scenario, apply the fallback policy and package the outcome.

    ``first`` short-circuits the initial solve with a result computed
    elsewhere (the lockstep batch path); recovery still runs per scenario.
    A first attempt that timed out retires as-is — recovery would only burn
    more of a budget that is already spent — and recovery solves for ordinary
    failures inherit the scenario's deadline.
    """
    options: OPFOptions = state["options"]
    policy = state["fallback"]
    if first is None:
        first = _solve_scenario(state, scenario, warm, deadline=deadline)

    recovered: Optional[OPFResult] = None
    fallback_seconds = 0.0
    fallback_iterations = 0
    if not first.success and not first.timed_out and policy is not None:
        attempts: List[OPFResult] = []

        def solve(warm_start, solve_options=None):
            result = _solve_scenario(
                state, scenario, warm_start, solve_options, deadline=deadline
            )
            attempts.append(result)
            return result

        t0 = time.perf_counter()
        recovered = policy.recover(solve, warm, first, options)
        fallback_seconds = time.perf_counter() - t0
        if recovered is not None:
            # Charge every recovery solve (e.g. a failed relaxed retry plus
            # the cold restart), keeping iteration and wall-time accounting
            # consistent.
            fallback_iterations = (
                sum(r.iterations for r in attempts) if attempts else recovered.iterations
            )

    final = recovered if recovered is not None else first
    solution = None
    if state["collect_solutions"]:
        solution = ScenarioSolution(
            x=final.x.copy(), lam=final.lam.copy(), mu=final.mu.copy(), z=final.z.copy()
        )
    return ScenarioOutcome(
        scenario_id=scenario.scenario_id,
        success=first.success,
        iterations=first.iterations,
        objective=first.objective,
        solve_seconds=first.total_seconds,
        worker=worker_id,
        used_fallback=recovered is not None,
        fallback_success=bool(recovered.success) if recovered is not None else False,
        iterations_fallback=fallback_iterations,
        objective_fallback=recovered.objective if recovered is not None else float("nan"),
        fallback_seconds=fallback_seconds,
        phase_seconds=dict(final.phase_seconds),
        kkt_telemetry=dict(getattr(final, "kkt_telemetry", {}) or {}),
        solution=solution,
        timed_out=first.timed_out or (recovered is not None and recovered.timed_out),
    )


def _solve_batch_in_state(
    state: Dict[str, object],
    scenarios: List[Scenario],
    warm_starts: List[Optional[WarmStart]],
    worker_id: int,
    deadlines: Optional[List[float]] = None,
    skip: Optional[Set[int]] = None,
) -> List[ScenarioOutcome]:
    """Solve a static chunk; positions in ``skip`` are omitted from the output.

    The full (unfiltered) row set must be passed even when some rows have
    already retired — chunk-level decisions (lockstep eligibility, topology
    group sizes) are made over the original rows so that surviving rows stay
    on the exact numeric path they would have taken in a deadline-free sweep.
    """
    skip = skip or set()
    if state.get("execution") == "batch" and len(scenarios) > 1:
        firsts = _lockstep_first_attempts(
            state, scenarios, warm_starts, deadlines=deadlines, skip=skip
        )
        return [
            _outcome_for(
                state, scenario, warm, worker_id, first=first,
                deadline=_row_deadline(deadlines, pos),
            )
            for pos, (scenario, warm, first) in enumerate(zip(scenarios, warm_starts, firsts))
            if pos not in skip
        ]
    return [
        _outcome_for(state, scenario, warm, worker_id, deadline=_row_deadline(deadlines, pos))
        for pos, (scenario, warm) in enumerate(zip(scenarios, warm_starts))
        if pos not in skip
    ]


def _solve_keyed_group_in_state(
    state: Dict[str, object],
    key: Tuple[int, ...],
    scenarios: List[Scenario],
    warm_starts: List[Optional[WarmStart]],
    worker_id: int,
    window: Optional[int] = None,
    deadlines: Optional[List[float]] = None,
) -> List[ScenarioOutcome]:
    """Solve a topology-pure group on the elastic (steal/grouped) paths.

    Unlike the legacy static-chunk path, *every* group marches in lockstep in
    batch mode — singletons included — so per-scenario results are one
    canonical set regardless of how the scheduler happened to cut the queue
    into micro-batches.  Fallback recovery stays per scenario.
    """
    if state.get("execution") == "batch":
        firsts = _lockstep_group(
            state, key, scenarios, warm_starts, window=window, deadline=deadlines
        )
        return [
            _outcome_for(
                state, scenario, warm, worker_id, first=first,
                deadline=_row_deadline(deadlines, pos),
            )
            for pos, (scenario, warm, first) in enumerate(zip(scenarios, warm_starts, firsts))
        ]
    return [
        _outcome_for(state, scenario, warm, worker_id, deadline=_row_deadline(deadlines, pos))
        for pos, (scenario, warm) in enumerate(zip(scenarios, warm_starts))
    ]


def _worker_identity() -> int:
    """This process's 1-based pool-worker index (0 in the parent process).

    Observability only (fills ``ScenarioOutcome.worker``), so the undocumented
    ``Process._identity`` is read defensively — a runtime without it simply
    reports worker 0 rather than failing the sweep.
    """
    identity = getattr(mp.current_process(), "_identity", None) or ()
    return int(identity[0]) if identity else 0


# -------------------------------------------------------------- task machinery
#: A dispatch task is a plain picklable dict:
#:
#: * ``kind`` — ``"static_chunk"`` (legacy chunk semantics: per-chunk
#:   topology grouping, scalar shortcut for one-off topologies) or
#:   ``"keyed_group"`` (topology-pure, always lockstep in batch mode);
#: * ``positions`` — global sweep positions of the carried scenarios;
#: * ``scenarios`` / ``warm_starts`` — the carried work, aligned with
#:   ``positions``;
#: * ``key`` — the topology key of a ``keyed_group`` task (the sorted
#:   outage-branch tuple; ``()`` for the intact network);
#: * ``worker_id`` — the worker label stamped on outcomes (``None`` = the
#:   executing process's own identity, the steal-mode label);
#: * ``window`` — optional lockstep window for ``keyed_group`` tasks;
#: * ``attempt`` — crash-retry attempt number (0 = first dispatch), which
#:   fault plans key on;
#: * ``deadline`` — ``None`` (unbounded task) or a tuple of absolute
#:   ``time.monotonic()`` wall deadlines aligned with ``scenarios``
#:   (``inf`` entries = unbounded rows).  A scalar is also accepted and
#:   broadcast over the task's rows.


def _make_task(
    kind: str,
    positions: Sequence[int],
    key: Optional[Tuple[int, ...]],
    scenarios: List[Scenario],
    warm_starts: List[Optional[WarmStart]],
    worker_id: Optional[int],
    window: Optional[int],
    due: Optional[np.ndarray],
) -> Dict[str, object]:
    return {
        "kind": kind,
        "positions": tuple(positions),
        "key": key,
        "scenarios": [scenarios[i] for i in positions],
        "warm_starts": [warm_starts[i] for i in positions],
        "worker_id": worker_id,
        "window": window,
        "attempt": 0,
        "deadline": None if due is None else tuple(float(due[i]) for i in positions),
    }


def _task_deadlines(task: Dict[str, object]) -> Optional[List[float]]:
    """The task's per-row absolute deadlines (``None`` when unbounded).

    Scalars broadcast over the task's scenarios so hand-built tasks keep
    working; ``inf`` rows mean unbounded.
    """
    deadline = task["deadline"]
    if deadline is None:
        return None
    if isinstance(deadline, (int, float)):
        return [float(deadline)] * len(task["scenarios"])
    return [float(d) for d in deadline]


def _split_task(task: Dict[str, object]) -> Optional[List[Dict[str, object]]]:
    """Bisect a repeatedly-failing task; ``None`` when it cannot shrink.

    Splitting must preserve the bitwise parity of surviving scenarios with a
    fault-free sweep, so it follows the solve-path semantics:

    * a task spanning several topology groups splits into one fragment per
      group, **keeping the parent kind** — inside a static chunk each group
      already solved independently (scalar for singletons, lockstep
      otherwise), so per-group fragments replay the exact same paths;
    * a topology-pure task halves into ``"keyed_group"`` fragments, which
      march in lockstep *even as singletons*; lockstep rows are independent
      bit for bit, so any cut of a lockstep group reproduces its rows.

    Fragments restart the retry budget (``attempt=0``).
    """
    positions: Tuple[int, ...] = task["positions"]
    if len(positions) <= 1:
        return None
    scenarios: List[Scenario] = task["scenarios"]
    warm_starts: List[Optional[WarmStart]] = task["warm_starts"]
    groups: Dict[Tuple[int, ...], List[int]] = {}
    for i, scenario in enumerate(scenarios):
        groups.setdefault(topology_key(scenario), []).append(i)

    deadlines = _task_deadlines(task)

    def fragment(local: List[int], kind: str, key: Tuple[int, ...]) -> Dict[str, object]:
        return dict(
            task,
            kind=kind,
            key=key,
            positions=tuple(positions[i] for i in local),
            scenarios=[scenarios[i] for i in local],
            warm_starts=[warm_starts[i] for i in local],
            attempt=0,
            deadline=None if deadlines is None else tuple(deadlines[i] for i in local),
        )

    if len(groups) > 1:
        return [fragment(local, task["kind"], key) for key, local in groups.items()]
    ((key, local),) = groups.items()
    half = len(local) // 2
    return [
        fragment(local[:half], "keyed_group", key),
        fragment(local[half:], "keyed_group", key),
    ]


def _task_worker_label(task: Dict[str, object]) -> int:
    """The worker id stamped on this task's outcomes (see ``_make_task``)."""
    worker_id = task["worker_id"]
    return _worker_identity() if worker_id is None else int(worker_id)


def _retired_outcome(
    scenario: Scenario,
    worker: int,
    message: str,
    timed_out: bool = False,
    quarantined: bool = False,
    retries: int = 0,
) -> ScenarioOutcome:
    """A structured outcome for a scenario retired without a solution."""
    return ScenarioOutcome(
        scenario_id=scenario.scenario_id,
        success=False,
        iterations=0,
        objective=float("nan"),
        solve_seconds=0.0,
        worker=worker,
        timed_out=timed_out,
        quarantined=quarantined,
        error=message,
        retries=retries,
    )


def _solve_task_in_state(
    state: Dict[str, object], task: Dict[str, object]
) -> List[ScenarioOutcome]:
    """Execute one dispatch task: faults, deadline gate, then the solve path."""
    scenarios: List[Scenario] = task["scenarios"]
    attempt: int = task["attempt"]
    plan: Optional[FaultPlan] = state.get("faults")
    if plan:
        index = int(state.get("task_count", 0))
        state["task_count"] = index + 1
        scenario_ids = [s.scenario_id for s in scenarios]
        if plan.kill_at_task_index(index) or plan.kill_for(scenario_ids, attempt):
            execute_kill(bool(state.get("in_subprocess")))
        stall = plan.stall_seconds(scenario_ids, attempt)
        if stall > 0.0:
            time.sleep(stall)
        spec = plan.raise_for(scenario_ids, attempt)
        if spec is not None:
            raise FaultInjectionError(spec.message)
    deadlines = _task_deadlines(task)
    warm_starts: List[Optional[WarmStart]] = task["warm_starts"]
    retired: Dict[int, ScenarioOutcome] = {}
    if deadlines is not None:
        # Row-wise deadline gate: a coalesced task carries rows with different
        # deadlines, so only the rows that already missed theirs retire as
        # timed out — the rest are solved with their own per-row deadlines.
        # Lockstep rows are bit-independent, so retiring a subset up front
        # leaves the surviving rows' results bitwise identical to a sweep
        # where the expired rows never existed.
        now = time.monotonic()
        worker = _task_worker_label(task)
        for pos, row_deadline in enumerate(deadlines):
            if now >= row_deadline:
                retired[pos] = _retired_outcome(
                    scenarios[pos], worker, "wall deadline exceeded", timed_out=True
                )
        if retired and len(retired) == len(scenarios):
            return [retired[pos] for pos in range(len(scenarios))]

    if task["kind"] == "static_chunk":
        # The static path must see the full original row set: its topology
        # grouping picks the scalar shortcut for one-off topologies, and that
        # choice has to match the deadline-free sweep bit-for-bit.  Expired
        # rows are skipped inside, never re-grouped around.
        solved = _solve_batch_in_state(
            state,
            scenarios,
            warm_starts,
            _task_worker_label(task),
            deadlines=deadlines,
            skip=set(retired),
        )
    else:
        # Keyed groups always march in lockstep and lockstep rows are
        # bit-independent, so simply dropping the expired rows keeps the
        # survivors on their canonical numeric path.
        if retired:
            live = [pos for pos in range(len(scenarios)) if pos not in retired]
            scenarios = [scenarios[pos] for pos in live]
            warm_starts = [warm_starts[pos] for pos in live]
            if deadlines is not None:
                deadlines = [deadlines[pos] for pos in live]
        solved = _solve_keyed_group_in_state(
            state,
            task["key"],
            scenarios,
            warm_starts,
            _task_worker_label(task),
            window=task["window"],
            deadlines=deadlines,
        )
    if not retired:
        return solved
    outs: List[ScenarioOutcome] = []
    solved_iter = iter(solved)
    for pos in range(len(task["scenarios"])):
        outs.append(retired[pos] if pos in retired else next(solved_iter))
    return outs


def _solve_task(task: Dict[str, object]) -> List[ScenarioOutcome]:
    """Worker entry point (module-level for pickling); uses the initializer state."""
    return _solve_task_in_state(_WORKER_STATE, task)


# ------------------------------------------------------------------------ fleet
class SolverFleet:
    """A persistent fleet of solver workers for one case.

    ``n_workers == 1`` runs everything in-process (no subprocesses, optionally
    reusing a caller-provided :class:`OPFModel`); larger fleets hold a spawn
    pool whose workers stay alive across :meth:`solve` calls, so a serving
    engine pays process start-up and model construction once, not per batch.

    ``execution`` selects how each worker solves its chunk: ``"scenario"``
    (one solve at a time, the default) or ``"batch"`` (lockstep batched MIPS
    over same-topology scenarios — see :func:`repro.opf.batch.solve_opf_batch`).
    The modes compose: a multi-worker batch fleet runs one lockstep batch per
    worker process.

    ``schedule`` selects how work reaches the workers.  ``"static"`` (the
    default) gives each worker one chunk up front, balanced by predicted
    scenario cost so a hot chunk cannot serialise the sweep; ``"steal"`` cuts
    the sweep into topology-keyed micro-batches (``microbatch`` scenarios
    each, auto-sized when omitted) that idle workers pull from a shared
    queue, and streams in-process groups through a retire-and-refill lockstep
    window.  Scheduling never changes *how* a scenario is solved within a
    policy: elastic results are invariant under steal order, worker count and
    micro-batch size (the static batch path keeps its legacy scalar shortcut
    for one-off topologies, so it is pinned separately).

    Dispatch is supervised: a worker that dies mid-task is respawned and its
    task retried (``crash_retries`` attempts per task), then bisected until
    the culprit scenario is quarantined as a structured failed outcome —
    a sweep always returns one outcome per scenario.  ``faults`` injects
    deterministic chaos (worker kills, solver raises, stalls) for tests; see
    :mod:`repro.testing.faults`.  Per-request wall deadlines are accepted by
    :meth:`solve` / :meth:`solve_many`.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        case: Case,
        options: Optional[OPFOptions] = None,
        n_workers: int = 1,
        fallback: "Optional[FallbackPolicy]" = None,
        collect_solutions: bool = False,
        model: Optional[OPFModel] = None,
        execution: str = "scenario",
        schedule: str = "static",
        microbatch: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        crash_retries: int = 1,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be positive")
        if execution not in EXECUTION_MODES:
            raise ValueError(f"execution must be one of {EXECUTION_MODES}")
        if schedule not in SCHEDULES:
            raise ValueError(f"schedule must be one of {SCHEDULES}")
        if microbatch is not None and microbatch < 1:
            raise ValueError("microbatch must be positive")
        if crash_retries < 0:
            raise ValueError("crash_retries must be non-negative")
        self.case = case
        self.options = options or OPFOptions()
        self.n_workers = n_workers
        self.fallback = fallback
        self.collect_solutions = collect_solutions
        self.execution = execution
        self.schedule = schedule
        self.microbatch = microbatch
        self.faults = faults
        self.crash_retries = crash_retries
        self._pool: Optional[SupervisedPool] = None
        self._state: Optional[Dict[str, object]] = None
        if n_workers == 1:
            self._state = _build_state(
                case, self.options, fallback, collect_solutions, model=model,
                execution=execution, faults=faults,
            )
        else:
            self._pool = SupervisedPool(
                n_workers,
                initializer=_init_worker,
                initargs=(case, self.options, fallback, collect_solutions, execution, faults),
            )

    # ------------------------------------------------------------------ solving
    @staticmethod
    def _deadline_vector(
        deadline_seconds: Optional[object],
        deadline: Optional[object],
        n_scenarios: int,
    ) -> Optional[np.ndarray]:
        """Normalise request deadlines to one absolute deadline per scenario.

        ``deadline_seconds`` (relative wall budgets) and ``deadline``
        (absolute ``time.monotonic()`` deadlines) each accept a scalar —
        broadcast over the sweep — or a per-scenario sequence; ``inf`` /
        ``nan`` entries mean unbounded.  When both are given the earlier
        deadline wins per scenario.  Returns ``None`` when no scenario is
        bounded (the unbounded fast path).
        """

        def as_vector(value: object, label: str) -> np.ndarray:
            arr = np.asarray(value, dtype=float)
            if arr.ndim == 0:
                arr = np.full(n_scenarios, float(arr))
            elif arr.shape != (n_scenarios,):
                raise ValueError(f"{label} must be a scalar or have one entry per scenario")
            return np.where(np.isnan(arr), np.inf, arr)

        due: Optional[np.ndarray] = None
        if deadline_seconds is not None:
            budgets = as_vector(deadline_seconds, "deadline_seconds")
            if np.any(budgets[np.isfinite(budgets)] <= 0):
                raise ValueError("deadline_seconds must be positive")
            due = time.monotonic() + budgets
        if deadline is not None:
            absolute = as_vector(deadline, "deadline")
            due = absolute if due is None else np.minimum(due, absolute)
        if due is None or not np.any(np.isfinite(due)):
            return None
        return due

    def solve(
        self,
        scenario_set: ScenarioSet,
        warm_starts: Optional[List[Optional[WarmStart]]] = None,
        deadline_seconds: Optional[object] = None,
        deadline: Optional[object] = None,
    ) -> SweepResult:
        """Solve every scenario of ``scenario_set`` on the fleet.

        ``warm_starts`` is an optional per-scenario list (``None`` entries mean
        a cold start), typically produced by batched MTL inference in the
        parent process.  ``deadline_seconds`` (wall budgets for this request)
        and ``deadline`` (absolute ``time.monotonic()`` deadlines) bound the
        sweep cooperatively — each a scalar shared by the whole sweep or a
        per-scenario sequence (``inf``/``nan`` = unbounded), the shape a
        deadline-aware batcher needs when it coalesces requests with
        different budgets into one sweep.  Scenarios that miss their cut
        retire as ``timed_out`` outcomes instead of blocking the request.
        """
        if warm_starts is None:
            warm_starts = [None] * len(scenario_set)
        if len(warm_starts) != len(scenario_set):
            raise ValueError("warm_starts must have one entry per scenario")
        due = self._deadline_vector(deadline_seconds, deadline, len(scenario_set))

        scenarios = list(scenario_set)
        start = time.perf_counter()
        if self.schedule == "steal":
            outcomes, stats = self._dispatch_elastic(scenarios, list(warm_starts), due)
        else:
            outcomes, stats = self._dispatch_static(scenarios, list(warm_starts), due)
        wall = time.perf_counter() - start

        sweep = SweepResult(
            case_name=self.case.name,
            n_workers=self.n_workers,
            wall_seconds=wall,
            execution=self.execution,
            schedule=self.schedule,
            errors=stats["errors"],
            retries=stats["retries"],
            quarantined=stats["quarantined"],
        )
        sweep.outcomes.extend(outcomes)
        sweep.outcomes.sort(key=lambda o: o.scenario_id)
        return sweep

    def solve_many(
        self,
        scenario_sets: Sequence[ScenarioSet],
        warm_starts: Optional[Sequence[Optional[List[Optional[WarmStart]]]]] = None,
        deadline_seconds: Optional[object] = None,
        deadline: Optional[object] = None,
    ) -> List[SweepResult]:
        """Solve several sweeps at once with cross-sweep contingency batching.

        The sweeps' scenarios are merged into one elastic dispatch, so
        scenarios of *different* sweeps that share an outage branch (or the
        base network) land in the same lockstep group — outage-heavy SC-ACOPF
        screening no longer fragments into tiny per-sweep per-branch groups
        that forfeit the batch win.  Always scheduled elastically (micro-batch
        queue with stealing) whatever the fleet's ``schedule`` setting;
        per-scenario results are bit-identical to solving each sweep
        separately on an elastic fleet.

        ``warm_starts`` is an optional per-sweep sequence of per-scenario
        lists (``None`` sweeps mean all-cold).  Returns one
        :class:`SweepResult` per input sweep (outcomes sorted by scenario
        id); each records the *joint* dispatch wall — and the joint
        ``errors`` / ``retries`` / ``quarantined`` counters — so aggregate
        cost by summing per-scenario ``solve_seconds``, not walls across
        sweeps.  ``deadline_seconds`` / ``deadline`` bound the joint dispatch
        like :meth:`solve`; per-scenario sequences follow the flattened
        dispatch order (sweep 0's scenarios, then sweep 1's, …).
        """
        sets = list(scenario_sets)
        if warm_starts is None:
            warm_starts = [None] * len(sets)
        if len(warm_starts) != len(sets):
            raise ValueError("warm_starts must have one entry per scenario set")
        flat_scenarios: List[Scenario] = []
        flat_warms: List[Optional[WarmStart]] = []
        origins: List[int] = []
        for si, scenario_set in enumerate(sets):
            warm_list = warm_starts[si]
            if warm_list is None:
                warm_list = [None] * len(scenario_set)
            if len(warm_list) != len(scenario_set):
                raise ValueError(f"warm_starts[{si}] must have one entry per scenario")
            for scenario, warm in zip(scenario_set, warm_list):
                flat_scenarios.append(scenario)
                flat_warms.append(warm)
                origins.append(si)

        due = self._deadline_vector(deadline_seconds, deadline, len(flat_scenarios))
        start = time.perf_counter()
        outcomes, stats = self._dispatch_elastic(flat_scenarios, flat_warms, due)
        wall = time.perf_counter() - start

        sweeps = [
            SweepResult(
                case_name=self.case.name,
                n_workers=self.n_workers,
                wall_seconds=wall,
                execution=self.execution,
                schedule="steal",
                errors=stats["errors"],
                retries=stats["retries"],
                quarantined=stats["quarantined"],
            )
            for _ in sets
        ]
        for outcome, origin in zip(outcomes, origins):
            sweeps[origin].outcomes.append(outcome)
        for sweep in sweeps:
            sweep.outcomes.sort(key=lambda o: o.scenario_id)
        return sweeps

    # ------------------------------------------------------------- dispatchers
    def _require_state(self) -> Dict[str, object]:
        if self._state is None:
            raise RuntimeError("fleet is closed")
        return self._state

    def _dispatch_static(
        self,
        scenarios: List[Scenario],
        warm_starts: List[Optional[WarmStart]],
        due: Optional[np.ndarray] = None,
    ) -> Tuple[List[ScenarioOutcome], Dict[str, int]]:
        """Cost-balanced fixed chunks, one per worker (the legacy scatter).

        Chunks are balanced by :func:`~repro.parallel.scheduler.predicted_cost`
        instead of the seed's count-equal split, so a single expensive
        (cold / outage) scenario is paired with fewer cheap ones rather than
        serialising its chunk.
        """
        assignment = balanced_assignment(scenarios, warm_starts, self.n_workers)
        tasks = [
            _make_task(
                "static_chunk", positions, None, scenarios, warm_starts,
                worker_id, None, due,
            )
            for worker_id, positions in enumerate(assignment)
            if positions
        ]
        return self._run_tasks(tasks, len(scenarios))

    def _dispatch_elastic(
        self,
        scenarios: List[Scenario],
        warm_starts: List[Optional[WarmStart]],
        due: Optional[np.ndarray] = None,
    ) -> Tuple[List[ScenarioOutcome], Dict[str, int]]:
        """Shared micro-batch queue with stealing; outcomes returned by position.

        Multi-worker fleets submit the topology-keyed micro-batches to the
        supervised pool's shared task queue, and whichever worker drains its
        current micro-batch first pulls (steals) the next one.  The
        in-process fleet instead streams each topology group through a
        lockstep window of one micro-batch, refilling retired slots from the
        queue between iterations (see :func:`repro.opf.batch.solve_opf_batch`).
        """
        if self._pool is None:
            # With a single in-process worker there is nobody to steal from,
            # so micro-batch boundaries are irrelevant: solve whole topology
            # groups, where a bounded lockstep window only caps how many
            # scenarios march per iteration — default to unbounded (maximum
            # amortisation) and let an explicit ``microbatch`` opt into
            # bounded retire-and-refill streaming.  Results are
            # window-invariant bit for bit either way.
            grouped = _topology_groups(scenarios)
            tasks = [
                _make_task(
                    "keyed_group", positions, key, scenarios, warm_starts,
                    0, self.microbatch, due,
                )
                for key, positions in grouped.items()
            ]
        else:
            microbatches = make_microbatches(
                scenarios, microbatch=self.microbatch, n_workers=self.n_workers
            )
            tasks = [
                _make_task(
                    "keyed_group", microbatch.positions, microbatch.key,
                    scenarios, warm_starts, None, None, due,
                )
                for microbatch in microbatches
            ]
        return self._run_tasks(tasks, len(scenarios))

    def _run_tasks(
        self, tasks: List[Dict[str, object]], n_scenarios: int
    ) -> Tuple[List[ScenarioOutcome], Dict[str, int]]:
        """Run dispatch tasks under supervision; one outcome per position.

        A failing task (dead worker or raised exception — including injected
        faults) is retried up to ``crash_retries`` times, then bisected by
        :func:`_split_task` until the culprit scenario is isolated and
        quarantined.  The multi-worker path consumes the supervised pool's
        event stream (crashed workers are respawned by the pool); the
        in-process path runs the identical policy inline, treating any
        exception from the solve as the failure event.
        """
        outcomes: List[Optional[ScenarioOutcome]] = [None] * n_scenarios
        stats = {"errors": 0, "retries": 0, "quarantined": 0}
        #: Retry attempts each global position has ridden along in — folded
        #: into its final outcome whichever task eventually carries it home.
        retry_counts: Dict[int, int] = {}

        def place(task: Dict[str, object], outs: List[ScenarioOutcome]) -> None:
            for pos, outcome in zip(task["positions"], outs):
                extra = retry_counts.get(pos, 0)
                if extra:
                    outcome = replace(outcome, retries=outcome.retries + extra)
                outcomes[pos] = outcome

        def on_failure(
            task: Dict[str, object], message: str
        ) -> List[Dict[str, object]]:
            """Retry, bisect or quarantine; returns the tasks to (re)dispatch."""
            stats["errors"] += 1
            if task["attempt"] < self.crash_retries:
                stats["retries"] += 1
                for pos in task["positions"]:
                    retry_counts[pos] = retry_counts.get(pos, 0) + 1
                return [dict(task, attempt=task["attempt"] + 1)]
            fragments = _split_task(task)
            if fragments is not None:
                return fragments
            scenario = task["scenarios"][0]
            pos = task["positions"][0]
            worker = task["worker_id"]
            outcomes[pos] = _retired_outcome(
                scenario,
                0 if worker is None else int(worker),
                message,
                quarantined=True,
                retries=retry_counts.get(pos, 0),
            )
            stats["quarantined"] += 1
            return []

        if self._pool is None:
            state = self._require_state()
            queue: List[Dict[str, object]] = list(tasks)
            while queue:
                task = queue.pop(0)
                try:
                    outs = _solve_task_in_state(state, task)
                except Exception as exc:  # noqa: BLE001 - the supervision boundary
                    queue.extend(on_failure(task, f"{type(exc).__name__}: {exc}"))
                else:
                    place(task, outs)
        else:
            # Hold a local reference: a cross-thread close() nulls self._pool,
            # and the terminated pool then raises PoolClosedError from
            # next_event()/submit() — the designed abort signal — rather than
            # this loop tripping over a vanished attribute.
            pool = self._pool
            inflight: Dict[int, Dict[str, object]] = {}
            for task in tasks:
                inflight[pool.submit(_solve_task, task)] = task
            while inflight:
                kind, task_id, payload = pool.next_event()
                task = inflight.pop(task_id)
                if kind == "done":
                    place(task, payload)
                    continue
                for fragment in on_failure(task, str(payload)):
                    inflight[pool.submit(_solve_task, fragment)] = fragment
        return outcomes, stats  # type: ignore[return-value]

    # ---------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut the fleet down (terminates pool workers; idempotent).

        Safe to call from another thread while a sweep is in flight: the
        supervised pool's event loop then aborts the dispatch with
        :class:`~repro.parallel.supervision.PoolClosedError` instead of
        hanging on workers that no longer exist.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool = None
        self._state = None

    def __enter__(self) -> "SolverFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def run_scenario_sweep(
    case: Case,
    scenario_set: ScenarioSet,
    warm_starts: Optional[List[Optional[WarmStart]]] = None,
    n_workers: int = 1,
    options: Optional[OPFOptions] = None,
    fallback: "Optional[FallbackPolicy]" = None,
    collect_solutions: bool = False,
    model: Optional[OPFModel] = None,
    execution: str = "scenario",
    schedule: str = "static",
    microbatch: Optional[int] = None,
    faults: Optional[FaultPlan] = None,
    crash_retries: int = 1,
    deadline_seconds: Optional[float] = None,
) -> SweepResult:
    """Solve every scenario of ``scenario_set`` using a one-shot fleet.

    Convenience wrapper over :class:`SolverFleet` for single sweeps;
    ``n_workers=1`` runs everything in-process, which is what the unit tests
    use.  Long-lived callers (the serving engine) hold a fleet instead so the
    workers persist across sweeps.
    """
    with SolverFleet(
        case,
        options=options,
        n_workers=n_workers,
        fallback=fallback,
        collect_solutions=collect_solutions,
        model=model,
        execution=execution,
        schedule=schedule,
        microbatch=microbatch,
        faults=faults,
        crash_retries=crash_retries,
    ) as fleet:
        return fleet.solve(scenario_set, warm_starts, deadline_seconds=deadline_seconds)
