"""Process-pool scenario runner.

The SC-ACOPF scenario sweep is embarrassingly parallel: each worker receives a
batch of scenarios, produces warm starts with the trained model and solves
them independently.  This module distributes that sweep over CPU processes —
the same scatter → compute → gather structure as the paper's multi-GPU data
parallelism, with processes standing in for GPUs.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.grid.components import Case
from repro.opf.model import OPFModel
from repro.opf.solver import OPFOptions, solve_opf
from repro.opf.warmstart import WarmStart
from repro.parallel.scenarios import Scenario, ScenarioSet


@dataclass(frozen=True)
class ScenarioOutcome:
    """Result of one scenario solve."""

    scenario_id: int
    success: bool
    iterations: int
    objective: float
    solve_seconds: float
    worker: int = 0


@dataclass
class SweepResult:
    """Aggregated outcome of a scenario sweep."""

    case_name: str
    n_workers: int
    outcomes: List[ScenarioOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def n_scenarios(self) -> int:
        """Number of solved scenarios."""
        return len(self.outcomes)

    @property
    def success_rate(self) -> float:
        """Fraction of scenarios that converged."""
        return float(np.mean([o.success for o in self.outcomes])) if self.outcomes else 0.0

    @property
    def throughput(self) -> float:
        """Scenarios per wall-clock second."""
        return self.n_scenarios / self.wall_seconds if self.wall_seconds > 0 else float("nan")

    def total_solver_seconds(self) -> float:
        """Sum of per-scenario solver times (the serial-equivalent work)."""
        return float(sum(o.solve_seconds for o in self.outcomes))


def _solve_batch(args) -> List[ScenarioOutcome]:
    """Worker entry point: solve a batch of scenarios (module-level for pickling)."""
    case, scenarios, warm_starts, options, worker_id = args
    model = OPFModel(case, flow_limits=options.flow_limits)
    outcomes = []
    for scenario, warm in zip(scenarios, warm_starts):
        t0 = time.perf_counter()
        result = solve_opf(
            case,
            warm_start=warm,
            Pd_mw=scenario.Pd,
            Qd_mvar=scenario.Qd,
            options=options,
            model=model,
        )
        outcomes.append(
            ScenarioOutcome(
                scenario_id=scenario.scenario_id,
                success=result.success,
                iterations=result.iterations,
                objective=result.objective,
                solve_seconds=time.perf_counter() - t0,
                worker=worker_id,
            )
        )
    return outcomes


def run_scenario_sweep(
    case: Case,
    scenario_set: ScenarioSet,
    warm_starts: Optional[List[Optional[WarmStart]]] = None,
    n_workers: int = 1,
    options: Optional[OPFOptions] = None,
) -> SweepResult:
    """Solve every scenario of ``scenario_set`` using ``n_workers`` processes.

    ``warm_starts`` is an optional per-scenario list (``None`` entries mean a
    cold start); it is typically produced by batched MTL inference in the
    parent process.  ``n_workers=1`` runs everything in-process, which is what
    the unit tests use.
    """
    options = options or OPFOptions()
    if warm_starts is None:
        warm_starts = [None] * len(scenario_set)
    if len(warm_starts) != len(scenario_set):
        raise ValueError("warm_starts must have one entry per scenario")
    if n_workers < 1:
        raise ValueError("n_workers must be positive")

    chunks = scenario_set.partition(n_workers)
    warm_chunks: List[List[Optional[WarmStart]]] = []
    offset = 0
    for chunk in chunks:
        warm_chunks.append(warm_starts[offset : offset + len(chunk)])
        offset += len(chunk)

    jobs = [
        (case, list(chunk), warm_chunk, options, worker_id)
        for worker_id, (chunk, warm_chunk) in enumerate(zip(chunks, warm_chunks))
        if len(chunk) > 0
    ]

    start = time.perf_counter()
    if n_workers == 1:
        results = [_solve_batch(job) for job in jobs]
    else:
        ctx = mp.get_context("spawn")
        with ctx.Pool(processes=n_workers) as pool:
            results = pool.map(_solve_batch, jobs)
    wall = time.perf_counter() - start

    sweep = SweepResult(case_name=case.name, n_workers=n_workers, wall_seconds=wall)
    for batch in results:
        sweep.outcomes.extend(batch)
    sweep.outcomes.sort(key=lambda o: o.scenario_id)
    return sweep
