"""Time-coupled multi-period scenario sweeps.

A day-ahead operational study is not a bag of independent scenarios but a
*trajectory*: ``T`` load realisations a time step apart, where the grid state
drifts a few percent between consecutive steps.  That temporal locality is a
warm-start gold mine the one-shot sweep machinery cannot exploit — step
``t``'s converged solution is an excellent initial point for step ``t+1``,
typically better than anything a learned model predicts, because it is an
*exact* optimum of a nearby problem.

:class:`MultiPeriodSweep` drives exactly that chaining over an existing
:class:`~repro.parallel.pool.SolverFleet`:

* each step is a full :class:`~repro.parallel.scenarios.ScenarioSet` (one
  scenario per tracked sub-case — the base network plus any contingencies
  under watch), solved through the fleet's normal dispatch, so steal
  scheduling, lockstep batching and the retire-and-refill window all apply
  *within* a step;
* between steps, scenario ``j`` of step ``t+1`` is warm-started from the
  converged solution of scenario ``j`` of step ``t`` — primal point and
  equality multipliers always; inequality multipliers ``µ`` and slacks ``Z``
  only when the two scenarios share a topology key (an outage change remaps
  the inequality rows, so stale ``µ``/``Z`` would be injected against the
  wrong constraints);
* failed / retired steps chain *through*: a scenario whose step ``t`` solve
  did not converge passes its most recent good solution forward (or goes
  cold when there is none yet).

Per-step :class:`~repro.parallel.pool.SweepResult` records are stamped with
their ``period`` and collected in a :class:`TrajectoryResult`, so the warm
benefit is measurable step by step (cold first step, warm tail — the
multi-period analogue of the paper's Fig. 4 warm/cold iteration gap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.grid.components import Case
from repro.grid.perturb import LoadSample
from repro.opf.warmstart import WarmStart
from repro.parallel.pool import ScenarioSolution, SolverFleet, SweepResult
from repro.parallel.scenarios import Scenario, ScenarioSet
from repro.parallel.scheduler import topology_key

__all__ = [
    "MultiPeriodSweep",
    "TrajectoryResult",
    "trajectory_steps",
    "chained_warm_start",
]


def trajectory_steps(
    case: Case,
    samples: Sequence[LoadSample],
    outage_branches: Sequence[Sequence[int]] = ((),),
) -> List[ScenarioSet]:
    """Build per-step scenario sets from a load trajectory.

    Step ``t`` tracks one scenario per entry of ``outage_branches`` (default:
    just the intact network) under ``samples[t]``'s loads — the classic
    "base case plus watched contingencies" rolling study.  Scenario ids are
    the tracked-case index, stable across steps, which is what lets the
    chaining in :class:`MultiPeriodSweep` match solutions step to step.
    """
    tracked = [tuple(int(b) for b in branches) for branches in outage_branches]
    if not tracked:
        raise ValueError("outage_branches must track at least one sub-case")
    return [
        ScenarioSet(
            case_name=case.name,
            scenarios=[
                Scenario(
                    scenario_id=j,
                    Pd=sample.Pd,
                    Qd=sample.Qd,
                    outage_branches=branches,
                )
                for j, branches in enumerate(tracked)
            ],
            n_bus=case.n_bus,
        )
        for sample in samples
    ]


def chained_warm_start(
    solution: Optional[ScenarioSolution],
    previous: Scenario,
    current: Scenario,
) -> Optional[WarmStart]:
    """The step-to-step warm start carried from ``previous`` to ``current``.

    Primal point and equality multipliers always chain; ``µ``/``Z`` only when
    both scenarios share a topology key, because an outage change remaps the
    inequality constraint rows.  (The solver additionally masks ``µ``/``Z``
    on any inequality-dimension mismatch as a belt-and-braces guard; masking
    here is the semantic rule, not just a shape rule.)  ``None`` solution →
    ``None`` (cold start).
    """
    if solution is None:
        return None
    warm = WarmStart(x=solution.x, lam=solution.lam, mu=solution.mu, z=solution.z)
    if topology_key(previous) != topology_key(current):
        warm = warm.masked(use_mu=False, use_z=False)
    return warm.clipped_duals()


@dataclass
class TrajectoryResult:
    """Aggregated outcome of a multi-period sweep.

    ``steps[t]`` is the full :class:`SweepResult` of period ``t`` (stamped
    ``period=t``); the properties aggregate across the trajectory.
    """

    case_name: str
    steps: List[SweepResult] = field(default_factory=list)

    @property
    def n_steps(self) -> int:
        return len(self.steps)

    @property
    def n_solves(self) -> int:
        return sum(step.n_scenarios for step in self.steps)

    @property
    def wall_seconds(self) -> float:
        """Summed per-step walls (steps are strictly sequential)."""
        return float(sum(step.wall_seconds for step in self.steps))

    @property
    def success_rate(self) -> float:
        rates = [o.converged for step in self.steps for o in step.outcomes]
        return float(np.mean(rates)) if rates else 0.0

    @property
    def total_iterations(self) -> int:
        """Summed final-path iterations over every step and scenario."""
        return int(sum(o.final_iterations for step in self.steps for o in step.outcomes))

    def iterations_by_step(self) -> List[int]:
        """Per-step summed iterations — the warm-chaining fingerprint (cold
        first step, cheaper warm tail)."""
        return [
            int(sum(o.final_iterations for o in step.outcomes)) for step in self.steps
        ]

    def total_solver_seconds(self) -> float:
        return float(sum(step.total_solver_seconds() for step in self.steps))


class MultiPeriodSweep:
    """Drive a T-step trajectory over a fleet with step-to-step warm chaining.

    The fleet must collect solutions (``collect_solutions=True``) — the
    chained warm starts *are* the previous step's solutions.  The driver
    itself is policy-free about intra-step execution: whatever schedule /
    execution mode / microbatch window the fleet was built with applies to
    each step's sweep unchanged, so trajectory results inherit the fleet's
    bitwise scheduling invariance within every step.
    """

    def __init__(self, fleet: SolverFleet, warm_chain: bool = True):
        if not fleet.collect_solutions:
            raise ValueError(
                "MultiPeriodSweep needs a fleet with collect_solutions=True "
                "(step-to-step warm starts are the previous step's solutions)"
            )
        self.fleet = fleet
        self.warm_chain = warm_chain

    def run(
        self,
        steps: Sequence[ScenarioSet],
        initial_warm_starts: Optional[List[Optional[WarmStart]]] = None,
        deadline_seconds: Optional[object] = None,
    ) -> TrajectoryResult:
        """Solve the trajectory; returns per-step records.

        ``initial_warm_starts`` seeds step 0 (e.g. MTL predictions); later
        steps chain from their predecessor's solutions, matched by scenario
        *position* within the step (steps must therefore be equally sized —
        use :func:`trajectory_steps` to build aligned step sets).
        ``deadline_seconds`` applies per step.
        """
        steps = list(steps)
        if not steps:
            raise ValueError("trajectory must have at least one step")
        n_tracked = len(steps[0])
        if any(len(step) != n_tracked for step in steps):
            raise ValueError("every trajectory step must track the same sub-cases")

        result = TrajectoryResult(case_name=self.fleet.case.name)
        carried: List[Optional[ScenarioSolution]] = [None] * n_tracked
        carried_from: List[Optional[Scenario]] = [None] * n_tracked
        warm_starts = initial_warm_starts
        for t, step in enumerate(steps):
            if t > 0 and self.warm_chain:
                warm_starts = [
                    chained_warm_start(carried[j], carried_from[j], step[j])
                    if carried_from[j] is not None
                    else None
                    for j in range(n_tracked)
                ]
            elif t > 0:
                warm_starts = None
            sweep = self.fleet.solve(
                step, warm_starts=warm_starts, deadline_seconds=deadline_seconds
            )
            sweep.period = t
            result.steps.append(sweep)
            # Chain through failures: keep the most recent good solution.
            by_id = {o.scenario_id: o for o in sweep.outcomes}
            for j in range(n_tracked):
                outcome = by_id.get(step[j].scenario_id)
                if outcome is not None and outcome.converged and outcome.solution is not None:
                    carried[j] = outcome.solution
                    carried_from[j] = step[j]
        return result
