"""Async serving tier: request front-end over the warm-start engine.

The blocking library surface stays :class:`~repro.engine.engine.WarmStartEngine`;
this package adds the service layer — an asyncio :class:`AsyncServer` whose
deadline-aware dynamic batcher coalesces concurrent requests into single
batched inference + lockstep solve dispatches, with bounded-queue
backpressure (:class:`OverloadedError`).
"""

from repro.serving.server import AsyncServer, OverloadedError, ServerStats

__all__ = ["AsyncServer", "OverloadedError", "ServerStats"]
