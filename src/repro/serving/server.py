"""Asyncio serving front-end with a deadline-aware dynamic batcher.

:class:`AsyncServer` turns the blocking :class:`~repro.engine.engine.WarmStartEngine`
library call into a concurrent request/response service.  Clients submit
load-profile requests — each with its own wall-clock budget — and await a
per-request :class:`~repro.parallel.pool.SweepResult`; between the two sits a
**dynamic batcher** that coalesces concurrent requests into one batched MTL
inference plus one lockstep ``mips_batch`` dispatch (the engine's ``"batch"``
execution admits the coalesced rows through the retire-and-refill ``feed``
window), then splits the per-scenario outcomes back onto per-request futures.

A flush fires on whichever pressure arrives first:

* **max-batch** — the queued scenario count reached ``max_batch``;
* **max-wait** — the oldest queued request has waited ``max_wait_seconds``;
* **deadline pressure** — the earliest queued deadline is within
  ``deadline_slack_seconds`` of expiring, so waiting longer would spend a
  request's remaining budget on queueing instead of solving.

Requests are atomic: the batcher never splits one request across flushes
(a request wider than ``max_batch`` simply flushes alone).  Backpressure is a
bounded admission queue counted in *scenarios*; a submit that would exceed
``max_queue`` is rejected immediately with :class:`OverloadedError` instead of
building an unbounded backlog.

Results are deterministic by construction.  Engine inference is bitwise
row-deterministic (single-row flushes are padded onto the batched BLAS path)
and lockstep solves are row-independent bit for bit, so a request's outcomes
are bitwise identical whether it was served alone through
:meth:`WarmStartEngine.serve` or coalesced with arbitrary neighbours — the
batcher invariance the test suite pins.

The engine call runs on a dedicated single-thread executor: one flush is in
flight at a time (the engine's fleet and OPF model are not thread-safe), and
the event loop stays free to accept and coalesce the next wave of requests
while the current flush solves.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.engine import WarmStartEngine
from repro.parallel.pool import SweepResult
from repro.parallel.scenarios import Scenario, ScenarioSet
from repro.utils.logging import get_logger

LOGGER = get_logger("serving")


class OverloadedError(RuntimeError):
    """Admission would exceed the server's bounded queue; retry later.

    Raised synchronously at submit time (never after queueing), so a rejected
    request costs the client nothing but the exception.
    """


@dataclass
class ServerStats:
    """Liveness counters of one :class:`AsyncServer` (not request telemetry)."""

    #: Requests admitted to the batcher queue.
    admitted_requests: int = 0
    #: Requests rejected with :class:`OverloadedError`.
    rejected_requests: int = 0
    #: Batched engine dispatches (flushes) executed, including degenerate
    #: all-cancelled flushes that skipped the engine.
    flushes: int = 0
    #: Scenarios solved across all flushes.
    served_scenarios: int = 0
    #: Scenario count of the widest flush so far.
    widest_flush: int = 0


@dataclass
class _PendingRequest:
    """One admitted request waiting for (or riding in) a flush."""

    scenarios: List[Scenario]
    #: Absolute ``time.monotonic()`` deadline (``inf`` = unbounded).
    deadline: float
    future: "asyncio.Future[SweepResult]"
    enqueued_at: float = field(default_factory=time.monotonic)


#: Queue sentinel that tells the batcher loop to drain and exit.
_STOP = object()


class AsyncServer:
    """Deadline-aware batching front-end over a :class:`WarmStartEngine`.

    Use as an async context manager (or call :meth:`start` / :meth:`stop`)::

        async with AsyncServer(engine, max_batch=16) as server:
            sweep = await server.submit_loads(Pd, Qd, deadline_seconds=0.5)

    Parameters
    ----------
    engine:
        The warm-start engine every flush is served by.  Lockstep batch
        execution (``execution="batch"``) is where coalescing pays — the
        flush becomes one lockstep window — but any engine configuration
        works.
    n_workers:
        Fleet width handed to :meth:`WarmStartEngine.serve` per flush.
    max_batch:
        Scenario count that triggers an immediate flush.  One request is
        never split, so a single wider request flushes alone.
    max_wait_seconds:
        Longest time the oldest queued request may wait for coalescing
        partners before the batcher flushes anyway.
    max_queue:
        Admission bound, counted in queued (not yet flushed) scenarios.
        A submit that would push the backlog past this bound raises
        :class:`OverloadedError`.  Must be at least as large as the widest
        request you intend to accept.
    deadline_slack_seconds:
        Deadline-pressure margin: the batcher flushes early once the
        earliest queued deadline is within this margin of ``now``, reserving
        that much of the request's budget for the solve itself.
    """

    def __init__(
        self,
        engine: WarmStartEngine,
        n_workers: int = 1,
        max_batch: int = 16,
        max_wait_seconds: float = 0.01,
        max_queue: int = 1024,
        deadline_slack_seconds: float = 0.0,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be non-negative")
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        if deadline_slack_seconds < 0:
            raise ValueError("deadline_slack_seconds must be non-negative")
        self.engine = engine
        self.n_workers = n_workers
        self.max_batch = max_batch
        self.max_wait_seconds = max_wait_seconds
        self.max_queue = max_queue
        self.deadline_slack_seconds = deadline_slack_seconds
        self.stats = ServerStats()
        self._queue: Optional[asyncio.Queue] = None
        self._batcher: Optional[asyncio.Task] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        #: Scenarios admitted but not yet taken into a flush (the backlog the
        #: admission bound is checked against).
        self._queued_scenarios = 0

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> "AsyncServer":
        """Start the batcher loop (idempotent)."""
        if self._batcher is None:
            self._queue = asyncio.Queue()
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="serving-flush"
            )
            self._batcher = asyncio.create_task(self._batch_loop(), name="serving-batcher")
        return self

    async def stop(self) -> None:
        """Flush the backlog, stop the batcher and release the executor."""
        if self._batcher is None:
            return
        self._queue.put_nowait(_STOP)
        await self._batcher
        self._batcher = None
        self._queue = None
        self._executor.shutdown(wait=True)
        self._executor = None

    async def __aenter__(self) -> "AsyncServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # --------------------------------------------------------------- submission
    def _admit(
        self, scenarios: List[Scenario], deadline_seconds: Optional[float]
    ) -> _PendingRequest:
        if self._queue is None:
            raise RuntimeError("server is not running (use 'async with' or start())")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if self._queued_scenarios + len(scenarios) > self.max_queue:
            self.stats.rejected_requests += 1
            raise OverloadedError(
                f"admission queue full ({self._queued_scenarios} queued scenarios, "
                f"request of {len(scenarios)} exceeds max_queue={self.max_queue})"
            )
        deadline = (
            float("inf")
            if deadline_seconds is None
            else time.monotonic() + float(deadline_seconds)
        )
        request = _PendingRequest(
            scenarios=scenarios,
            deadline=deadline,
            future=asyncio.get_running_loop().create_future(),
        )
        self._queued_scenarios += len(scenarios)
        self.stats.admitted_requests += 1
        self._queue.put_nowait(request)
        return request

    async def submit(
        self,
        scenarios: Union[ScenarioSet, Sequence[Scenario]],
        deadline_seconds: Optional[float] = None,
    ) -> SweepResult:
        """Serve one request of scenarios; resolves to its own sweep result.

        ``deadline_seconds`` is this request's wall budget, measured from
        submission — it covers queueing *and* solving, so scenarios still
        unsolved when it expires retire as ``timed_out`` outcomes.  The
        returned sweep contains exactly this request's outcomes (original
        scenario ids preserved, sorted by id), stamped with the model
        generation that served its flush.

        Raises :class:`OverloadedError` when admission would exceed
        ``max_queue``.  An empty request is served inline (no queueing).
        """
        rows = list(scenarios)
        if not rows:
            return self.engine.serve(
                ScenarioSet(self.engine.case.name, [], n_bus=self.engine.case.n_bus),
                n_workers=self.n_workers,
            )
        request = self._admit(rows, deadline_seconds)
        return await request.future

    async def submit_loads(
        self,
        Pd_mw: np.ndarray,
        Qd_mvar: np.ndarray,
        deadline_seconds: Optional[float] = None,
    ) -> SweepResult:
        """Serve raw per-bus load matrices (one row per scenario, MW/MVAr)."""
        Pd_mw = np.asarray(Pd_mw, dtype=float)
        Qd_mvar = np.asarray(Qd_mvar, dtype=float)
        if Pd_mw.size == 0 and Qd_mvar.size == 0:
            return await self.submit([], deadline_seconds=deadline_seconds)
        Pd_mw = np.atleast_2d(Pd_mw)
        Qd_mvar = np.atleast_2d(Qd_mvar)
        if Pd_mw.shape != Qd_mvar.shape:
            raise ValueError("Pd_mw and Qd_mvar must have matching shapes")
        rows = [Scenario(i, Pd_mw[i], Qd_mvar[i]) for i in range(Pd_mw.shape[0])]
        return await self.submit(rows, deadline_seconds=deadline_seconds)

    # ------------------------------------------------------------------ batcher
    def _flush_at(self, pending: List[_PendingRequest]) -> float:
        """Absolute time at which the current collection must flush."""
        wait_cap = pending[0].enqueued_at + self.max_wait_seconds
        deadline_cap = (
            min(request.deadline for request in pending) - self.deadline_slack_seconds
        )
        return min(wait_cap, deadline_cap)

    async def _batch_loop(self) -> None:
        """Collect requests into flushes until the stop sentinel arrives."""
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _STOP:
                break
            pending = [item]
            self._queued_scenarios -= len(item.scenarios)
            n_scenarios = len(item.scenarios)
            while n_scenarios < self.max_batch:
                timeout = self._flush_at(pending) - time.monotonic()
                if timeout <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if item is _STOP:
                    stopping = True
                    break
                pending.append(item)
                self._queued_scenarios -= len(item.scenarios)
                n_scenarios += len(item.scenarios)
            await self._flush(pending)
        # Drain the backlog so no admitted future is left dangling: anything
        # still queued at stop is flushed (deadline semantics intact).
        leftovers: List[_PendingRequest] = []
        while self._queue is not None and not self._queue.empty():
            item = self._queue.get_nowait()
            if item is _STOP:
                continue
            leftovers.append(item)
            self._queued_scenarios -= len(item.scenarios)
        if leftovers:
            await self._flush(leftovers)

    async def _flush(self, pending: List[_PendingRequest]) -> None:
        """Serve one coalesced flush and resolve its per-request futures."""
        self.stats.flushes += 1
        live = [request for request in pending if not request.future.cancelled()]
        if not live:
            # Every rider was cancelled while queued — nothing to solve, and
            # nothing to resolve.  (The all-cancelled flush must be tolerated,
            # not sent to the engine as an empty sweep.)
            return

        combined: List[Scenario] = []
        deadlines: List[float] = []
        slices: List[Tuple[_PendingRequest, int, int]] = []
        for request in live:
            start = len(combined)
            for scenario in request.scenarios:
                # Renumber onto flush-global positions: sweeps sort outcomes
                # by scenario id, so position ids make the per-request split a
                # contiguous slice.  Original ids are restored on the way out.
                combined.append(replace(scenario, scenario_id=len(combined)))
                deadlines.append(request.deadline)
            slices.append((request, start, len(combined)))
        self.stats.served_scenarios += len(combined)
        self.stats.widest_flush = max(self.stats.widest_flush, len(combined))

        deadline_vec = None
        if any(np.isfinite(deadline) for deadline in deadlines):
            deadline_vec = np.asarray(deadlines, dtype=float)
        scenario_set = ScenarioSet(
            self.engine.case.name, combined, n_bus=self.engine.case.n_bus
        )
        loop = asyncio.get_running_loop()
        try:
            sweep = await loop.run_in_executor(
                self._executor,
                lambda: self.engine.serve(
                    scenario_set, n_workers=self.n_workers, deadline=deadline_vec
                ),
            )
        except Exception as exc:  # noqa: BLE001 - fault barrier onto futures
            for request in live:
                if not request.future.cancelled():
                    request.future.set_exception(exc)
            return

        outcome_by_id: Dict[int, object] = {o.scenario_id: o for o in sweep.outcomes}
        for request, start, stop in slices:
            if request.future.cancelled():
                continue
            restored = [
                replace(outcome_by_id[position], scenario_id=original.scenario_id)
                for position, original in zip(range(start, stop), request.scenarios)
            ]
            restored.sort(key=lambda o: o.scenario_id)
            result = SweepResult(
                case_name=sweep.case_name,
                n_workers=sweep.n_workers,
                wall_seconds=sweep.wall_seconds,
                execution=sweep.execution,
                schedule=sweep.schedule,
                errors=sweep.errors,
                retries=sweep.retries,
                quarantined=sweep.quarantined,
                model_generation=sweep.model_generation,
            )
            result.outcomes.extend(restored)
            request.future.set_result(result)
