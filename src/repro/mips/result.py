"""Result containers for the MIPS solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of one MIPS iteration (drives the Fig. 10 convergence traces).

    ``step_size`` is the infinity norm of the primal Newton step ``|Δx|``; the
    four condition values are exactly the quantities tested against the
    termination tolerances.  The four ``*_seconds`` fields split the
    iteration's wall-clock time into callback evaluation, KKT assembly,
    factorisation and back-substitution (the Fig. 5 component times).
    """

    iteration: int
    step_size: float
    feascond: float
    gradcond: float
    compcond: float
    costcond: float
    objective: float
    gamma: float
    alpha_primal: float
    alpha_dual: float
    eval_seconds: float = 0.0
    assembly_seconds: float = 0.0
    factor_seconds: float = 0.0
    backsolve_seconds: float = 0.0


@dataclass(frozen=True)
class ConstraintPartition:
    """How the internal constraint vectors are laid out.

    Equalities are ordered ``[nonlinear, fixed-variable bounds]`` and
    inequalities ``[nonlinear, upper bounds, lower bounds]``.  The index arrays
    refer to positions in the decision vector ``x`` for the bound-derived
    rows, allowing callers (the OPF layer, the warm-start machinery) to map
    multipliers back onto named quantities.
    """

    n_eq_nonlin: int
    n_ineq_nonlin: int
    eq_bound_idx: np.ndarray
    ub_idx: np.ndarray
    lb_idx: np.ndarray

    @property
    def n_eq(self) -> int:
        """Total number of equality constraints."""
        return self.n_eq_nonlin + self.eq_bound_idx.size

    @property
    def n_ineq(self) -> int:
        """Total number of inequality constraints."""
        return self.n_ineq_nonlin + self.ub_idx.size + self.lb_idx.size


@dataclass
class MIPSResult:
    """Outcome of a MIPS solve.

    ``lam`` holds the equality multipliers, ``mu`` the inequality multipliers
    and ``z`` the positive slacks, all in the internal ordering described by
    ``partition``.  ``history`` is non-empty when the solver was configured
    with ``record_history=True``.  ``phase_seconds`` aggregates per-phase
    solver time over all iterations under the keys ``"eval"``, ``"assembly"``,
    ``"factorization"`` and ``"backsolve"``.
    """

    x: np.ndarray
    f: float
    converged: bool
    iterations: int
    lam: np.ndarray
    mu: np.ndarray
    z: np.ndarray
    partition: ConstraintPartition
    message: str = ""
    history: List[IterationRecord] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Number of singular-KKT factorisations recovered by diagonal
    #: regularisation (0 for a well-posed solve; non-zero flags
    #: ill-conditioning that the seed solver would have failed hard on).
    kkt_regularizations: int = 0
    #: Factorisation telemetry harvested from the KKT backend at the end of
    #: the solve (``repro.mips.linsolve.solver_telemetry``): whichever of
    #: ``symbolic_reuses``, ``numeric_refactorizations``,
    #: ``block_factorizations``, ``block_fallbacks`` and
    #: ``accelerated_factorizations`` the backend maintains.  Lets the Fig. 5
    #: breakdown attribute factorisation time to symbolic analysis vs numeric
    #: sweeps per backend.
    kkt_telemetry: Dict[str, int] = field(default_factory=dict)
    #: True when the solve was terminated by a wall deadline or per-solve
    #: wall budget (``message`` carries the detail) — a resource outcome, not
    #: a numerical failure.
    timed_out: bool = False
    #: This solve's *additive* share of wall time.  ``None`` for scalar solves
    #: (the share is simply ``elapsed_seconds``); lockstep batch solves set it
    #: to the sum of each iteration's wall time divided by the number of
    #: scenarios active in that iteration, so shares sum to the batch wall and
    #: stay comparable with scalar per-solve times (``elapsed_seconds`` keeps
    #: meaning wall-clock-until-retirement, which overlaps across the batch).
    wall_share_seconds: Optional[float] = None

    @property
    def share_seconds(self) -> float:
        """The additive per-scenario solve cost (see ``wall_share_seconds``)."""
        return self.elapsed_seconds if self.wall_share_seconds is None else self.wall_share_seconds

    @property
    def eflag(self) -> int:
        """MATPOWER-style exit flag: 1 converged, 0 iteration limit, -1 failed."""
        if self.converged:
            return 1
        if self.timed_out:
            # A budget outcome, like the iteration limit: the iterates are
            # fine, the solver just ran out of allotted resources.
            return 0
        return 0 if "iteration limit" in self.message else -1

    def final_conditions(self) -> Optional[IterationRecord]:
        """The last recorded iteration (``None`` when history is disabled)."""
        return self.history[-1] if self.history else None

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "converged" if self.converged else f"FAILED ({self.message})"
        return (
            f"MIPS {status} in {self.iterations} iterations, "
            f"objective {self.f:.6g}"
        )
