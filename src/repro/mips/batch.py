"""Lockstep batched MIPS: solve B same-structure NLPs at once.

Scenario sweeps hand the solver many instances of the *same* problem
structure — one case topology, one sparsity pattern, different loads and warm
starts.  Solving them one at a time leaves most of the per-iteration time in
small-matrix NumPy/SciPy call overhead.  :func:`mips_batch` instead advances a
whole batch in lockstep: primal/dual state is held as ``(B, ·)`` matrices, the
callback evaluation, constraint stacking, Lagrangian gradient, step-length /
centering and convergence math are vectorised across the batch axis.  The
linear algebra itself comes in two flavours, selected by
``MIPSOptions.kkt_solver``: per-slot backends (``"factorized"``, the default,
and ``"spsolve"``) assemble, factorise and back-substitute each active
scenario's KKT system in a loop, while the ``"blockdiag"`` backend assembles
all active systems at once through plan-based batched kernels
(:class:`_BatchKKTAssembler`) and solves them with **one** block-diagonal
factorisation and **one** stacked backsolve per iteration
(:class:`~repro.mips.linsolve.BlockDiagSolver`) — bit-identical per scenario
to the per-slot path, so the two stay interchangeable.

Scenarios retire individually: a converged (or numerically failed) scenario
drops out of the active set immediately, so stragglers never pay for
finishers.  The converse also holds — a retire-and-refill ``feed``
(:class:`BatchFeedPayload`) can enroll queued scenarios into the freed slots
*between iterations*, turning the initial batch width into a lockstep window
that elastic schedulers keep topped up.  Enrollment runs the exact entry path
of the initial batch (and block backends give fresh scenarios the per-block
direct first factorisation), so a scenario's trajectory is bit-identical no
matter when, or whether, it was fed in.  Each scenario gets its own
:class:`~repro.mips.result.MIPSResult` with the same message vocabulary,
iteration history and termination behaviour as the scalar
:func:`~repro.mips.solver.mips` — the parity suite asserts the two agree
scenario-by-scenario.

Phase-timing attribution is honest but necessarily shared for the vectorised
phases: batched evaluation time is split evenly across the scenarios that
participated in the evaluation, while assembly / factorisation / backsolve are
measured per slot on the per-slot backends and split evenly (like evaluation)
when a block backend solves the whole active set at once.  Each scenario's
``elapsed_seconds`` is the lockstep wall time until its retirement, and
``wall_share_seconds`` is its *additive* share of that wall (every
iteration's wall time divided over the scenarios active in it) — the number
that stays comparable with scalar per-solve times.  The scalar refinement
option ``kkt_refine_steps`` does not apply to lockstep solves.

The batched callbacks exchange Jacobian/Hessian *data planes* — ``(B, nnz)``
arrays on fixed sparsity templates (see :mod:`repro.opf.batch` for the AC-OPF
implementation):

* ``f_fcn(X, idx) -> (F, dF)`` — objective values ``(B,)`` and gradients
  ``(B, nx)``;
* ``gh_fcn(X, idx) -> (G, H, Jg_data, Jh_data)`` — nonlinear constraint
  values and Jacobian data planes on ``jg_template`` / ``jh_template``;
* ``hess_fcn(X, Lam_nl, Mu_nl, cost_mult, idx) -> Hdata`` — Lagrangian
  Hessian data planes on ``hess_template``.

``idx`` carries the original batch positions of the rows of ``X`` so callbacks
can look up per-scenario data (loads) for the shrinking active set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.mips.linsolve import KKTSolveError, make_kkt_solver, solver_telemetry
from repro.mips.options import MIPSOptions
from repro.mips.result import IterationRecord, MIPSResult
from repro.mips.solver import _BoundHandler, _KKTAssembler
from repro.utils.logging import get_logger
from repro.utils.sparse import (
    CachedBmat,
    MatmulPlan,
    batched_matvec,
    batched_row_sums,
    csr_from_template,
    csr_rows,
    pattern_union,
    transpose_plan,
)

LOGGER = get_logger("mips")

#: Batched objective callback: ``(X, idx) -> (F, dF)``.
BatchedObjectiveFn = Callable[[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]
#: Batched constraint callback: ``(X, idx) -> (G, H, Jg_data, Jh_data)``.
BatchedConstraintFn = Callable[
    [np.ndarray, np.ndarray],
    Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
]
#: Batched Hessian callback: ``(X, Lam_nl, Mu_nl, cost_mult, idx) -> Hdata``.
BatchedHessianFn = Callable[
    [np.ndarray, np.ndarray, np.ndarray, float, np.ndarray], np.ndarray
]

_PHASES = ("eval", "assembly", "factorization", "backsolve")


@dataclass(frozen=True)
class BatchFeedPayload:
    """Scenarios handed to a running lockstep batch by a retire-and-refill feed.

    ``x0`` holds one primal start per enrolling scenario; the optional warm
    components and masks mirror :func:`mips_batch`'s entry parameters.  Rows
    are enrolled in order, continuing the global row numbering — the ``idx``
    arrays the batched callbacks receive index the *enrollment order*, so the
    per-scenario data the callbacks close over must be laid out the same way.
    """

    x0: np.ndarray
    lam0: Optional[np.ndarray] = None
    mu0: Optional[np.ndarray] = None
    z0: Optional[np.ndarray] = None
    lam0_mask: Optional[np.ndarray] = None
    mu0_mask: Optional[np.ndarray] = None
    z0_mask: Optional[np.ndarray] = None
    #: Optional per-row absolute wall deadlines (``time.monotonic()`` clock);
    #: ``None`` entries (NaN/inf) mean unbounded.  A row whose deadline
    #: expires retires with ``timed_out`` between iterations, exactly like a
    #: convergence retirement — its lockstep neighbours are not perturbed.
    deadline: Optional[np.ndarray] = None


#: Retire-and-refill hook: called with the number of free lockstep slots,
#: returns the next scenarios to enroll (at most that many rows) or ``None``
#: when the queue is exhausted.
BatchFeedFn = Callable[[int], Optional[BatchFeedPayload]]


def _canonical_template(template: Optional[sp.spmatrix], nx: int) -> sp.csr_matrix:
    if template is None:
        return sp.csr_matrix((0, nx))
    t = sp.csr_matrix(template).tocsr()
    t.sort_indices()
    return t


def _warm_rows(
    values: Optional[np.ndarray], mask: Optional[np.ndarray], batch: int, n: int, name: str
) -> Tuple[Optional[np.ndarray], np.ndarray]:
    """Validate a warm-start value matrix and its per-scenario presence mask."""
    if values is None:
        return None, np.zeros(batch, dtype=bool)
    values = np.asarray(values, dtype=float)
    if values.shape != (batch, n):
        raise ValueError(f"{name} must have shape ({batch}, {n})")
    if mask is None:
        mask = np.ones(batch, dtype=bool)
    else:
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (batch,):
            raise ValueError(f"{name} mask must have shape ({batch},)")
    return values, mask


class _BatchKKTAssembler:
    """Batched assembly of all active scenarios' KKT systems, bit-for-bit.

    The batch counterpart of :class:`~repro.mips.solver._KKTAssembler`: every
    sparsity pattern entering the Newton system — the stacked constraint
    Jacobians (nonlinear blocks over the constant bound-selector rows), their
    transposes, the structural ``JhᵀD Jh`` product and the final
    ``[[M, Jgᵀ], [Jg, 0]]`` layout — is fixed for the whole batch solve, so
    the symbolic work is expanded once into gather/reduce plans
    (:class:`~repro.utils.sparse.MatmulPlan`,
    :func:`~repro.utils.sparse.transpose_plan`,
    :meth:`~repro.utils.sparse.CachedBmat.assemble_batch`) and each iteration
    replays them as pure NumPy operations over ``(B, nnz)`` data planes.

    The scalar assembler evaluates the *same* plans on one-row planes, and
    every replayed operation reduces each plane row independently, so the
    produced KKT data is **bit-identical** to the per-slot path's — the plane
    holds, per active scenario, exactly the CSC data of the per-slot
    assembler's KKT matrix, ready for
    :meth:`~repro.mips.linsolve.BlockDiagSolver.solve_blocks`.
    """

    def __init__(
        self,
        jg_t: sp.csr_matrix,
        jh_t: sp.csr_matrix,
        hess_t: sp.csr_matrix,
        bounds: _BoundHandler,
    ) -> None:
        E_eq, E_ub, E_lb = bounds.bound_selectors
        nx = hess_t.shape[0]
        self._nx = nx

        self._jg_cache = CachedBmat("csr")
        jg_stack = self._jg_cache.assemble([[jg_t], [E_eq]])
        self._jh_cache = CachedBmat("csr")
        jh_stack = self._jh_cache.assemble([[jh_t], [E_ub], [E_lb]])
        self._eq_data = E_eq.data
        self._ub_data = E_ub.data
        self._lb_data = E_lb.data
        self.neq = jg_stack.shape[0]
        self.niq = jh_stack.shape[0]

        if self.niq:
            self._jh_rows = csr_rows(jh_stack)
            order, t_indptr, t_indices = transpose_plan(jh_stack)
            self._jhT_order = order
            self._jhT_indptr = t_indptr
            self._jhT_indices = t_indices
            jhT = sp.csr_matrix(
                (np.zeros(jh_stack.nnz), t_indices, t_indptr), shape=(nx, self.niq)
            )
            jhT.has_canonical_format = True
            self._matmul = MatmulPlan(jhT, jh_stack)
            m_template, (self._pos_hess, self._pos_prod) = pattern_union(
                [hess_t, self._matmul.template]
            )
        else:
            m_template = hess_t
            self._pos_hess = self._pos_prod = None

        self._m_nnz = m_template.nnz
        self._kkt_cache = CachedBmat("csc")
        if self.neq:
            order, _, _ = transpose_plan(jg_stack)
            self._jgT_order = order
            jgT = sp.csr_matrix(jg_stack.T)
            jgT.sort_indices()
            jgT.data = np.zeros(jgT.nnz)
            self._kkt_cache.assemble([[m_template, jgT], [jg_stack, None]])
        else:
            self._kkt_cache.assemble([[m_template]])
        #: Canonical CSC pattern of one scenario's KKT system (read-only).
        self.kkt_template = self._kkt_cache.template

    def build(
        self,
        Hdata: np.ndarray,
        Jg_data: np.ndarray,
        Jh_data: np.ndarray,
        Lx: np.ndarray,
        G: np.ndarray,
        H: np.ndarray,
        Z: np.ndarray,
        Mu: np.ndarray,
        Gamma: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """KKT data planes and right-hand sides for the active scenarios.

        All inputs are ``(B, ·)`` slices over the active set; returns
        ``(kkt_plane, rhs_plane)`` with ``kkt_plane`` in
        :attr:`kkt_template`'s storage order.
        """
        Hdata = np.atleast_2d(np.asarray(Hdata, dtype=float))
        batch = Hdata.shape[0]
        if self.niq:
            jh_plane = self._jh_cache.assemble_batch(
                [
                    Jh_data,
                    np.broadcast_to(self._ub_data, (batch, self._ub_data.size)),
                    np.broadcast_to(self._lb_data, (batch, self._lb_data.size)),
                ]
            )
            zinv = 1.0 / Z
            jh_scaled = jh_plane * (Mu * zinv)[:, self._jh_rows]
            jhT_plane = jh_plane[:, self._jhT_order]
            prod = self._matmul.multiply(jhT_plane, jh_scaled)
            m_plane = np.zeros((batch, self._m_nnz))
            m_plane[:, self._pos_hess] += Hdata
            m_plane[:, self._pos_prod] += prod
            vec = (Mu * H + Gamma[:, None]) * zinv
            N = Lx + batched_matvec(jhT_plane, self._jhT_indptr, self._jhT_indices, vec)
        else:
            m_plane = Hdata
            N = Lx.copy()

        if self.neq:
            jg_plane = self._jg_cache.assemble_batch(
                [Jg_data, np.broadcast_to(self._eq_data, (batch, self._eq_data.size))]
            )
            kkt_plane = self._kkt_cache.assemble_batch(
                [m_plane, jg_plane[:, self._jgT_order], jg_plane]
            )
            rhs_plane = np.concatenate([-N, -G], axis=1)
        else:
            kkt_plane = self._kkt_cache.assemble_batch([m_plane])
            rhs_plane = -N
        return kkt_plane, rhs_plane


def mips_batch(
    f_fcn: BatchedObjectiveFn,
    x0: np.ndarray,
    gh_fcn: Optional[BatchedConstraintFn] = None,
    hess_fcn: Optional[BatchedHessianFn] = None,
    *,
    jg_template: Optional[sp.spmatrix] = None,
    jh_template: Optional[sp.spmatrix] = None,
    hess_template: Optional[sp.spmatrix] = None,
    xmin: Optional[np.ndarray] = None,
    xmax: Optional[np.ndarray] = None,
    lam0: Optional[np.ndarray] = None,
    mu0: Optional[np.ndarray] = None,
    z0: Optional[np.ndarray] = None,
    lam0_mask: Optional[np.ndarray] = None,
    mu0_mask: Optional[np.ndarray] = None,
    z0_mask: Optional[np.ndarray] = None,
    options: Optional[MIPSOptions] = None,
    feed: Optional[BatchFeedFn] = None,
    feed_capacity: Optional[int] = None,
    deadline: Optional[object] = None,
) -> List[MIPSResult]:
    """Solve ``B`` same-structure NLPs in lockstep; one result per scenario.

    Parameters mirror :func:`repro.mips.solver.mips` lifted to a batch axis:
    ``x0`` is ``(B, nx)``, bounds are shared (same structure implies the same
    bound vectors), warm starts are ``(B, ·)`` matrices whose rows apply only
    where the corresponding ``*_mask`` entry is True (all rows when the mask
    is omitted).  ``jg_template`` / ``jh_template`` / ``hess_template`` carry
    the fixed sparsity patterns of the nonlinear-constraint Jacobians and the
    Lagrangian Hessian whose data planes the callbacks produce.

    **Retire-and-refill.**  When ``feed`` is given, the width of ``x0``'s
    batch becomes a lockstep *window*: every time scenarios retire (converge
    or fail), the feed is asked for replacements, which are enrolled between
    iterations and run through exactly the entry path the initial batch took
    — same warm-start initialisation, same entry evaluation, and a per-block
    *direct* first KKT factorisation on block backends — so a scenario's
    trajectory is bit-identical no matter when (or whether) it was fed in.
    ``feed_capacity`` (required with ``feed``) bounds the total number of
    scenarios the call may enroll; per-scenario iteration counts, histories
    and wall shares are kept relative to each scenario's own enrollment.

    **Deadlines.**  ``deadline`` is an absolute wall deadline on the
    ``time.monotonic()`` clock — a scalar applying to every initial-batch row
    or a ``(B,)`` vector of per-row deadlines (fed scenarios carry theirs in
    :attr:`BatchFeedPayload.deadline`); ``options.max_wall_seconds`` is the
    *relative* per-scenario budget measured from each row's own enrollment.
    Both are checked cooperatively between iterations, and an expired row
    retires with ``timed_out`` set through exactly the retirement path a
    converged row takes — its lockstep neighbours are bitwise unperturbed.

    Returns a list of per-scenario :class:`MIPSResult` in enrollment order
    (batch order, then fed scenarios in feed order).
    """
    opt = options or MIPSOptions()
    opt.validate()

    X0 = np.array(x0, dtype=float)
    if X0.ndim != 2:
        raise ValueError("x0 must be a (B, nx) matrix")
    batch, nx = X0.shape
    if batch == 0:
        if feed is not None:
            raise ValueError("the initial batch must be non-empty when a feed is given")
        return []
    if feed is None:
        capacity = batch
    else:
        if feed_capacity is None:
            raise ValueError("feed_capacity is required when a feed is given")
        capacity = int(feed_capacity)
        if capacity < batch:
            raise ValueError("feed_capacity must cover the initial batch")
    xmin = np.full(nx, -np.inf) if xmin is None else np.asarray(xmin, dtype=float)
    xmax = np.full(nx, np.inf) if xmax is None else np.asarray(xmax, dtype=float)
    if xmin.shape != (nx,) or xmax.shape != (nx,):
        raise ValueError("xmin/xmax must match the width of x0")
    if np.any(xmin > xmax):
        raise ValueError("xmin > xmax for at least one variable")
    if hess_fcn is None or hess_template is None:
        raise ValueError("mips_batch requires hess_fcn and hess_template")
    if gh_fcn is not None and (jg_template is None or jh_template is None):
        raise ValueError("jg_template/jh_template are required with gh_fcn")
    if deadline is None:
        entry_deadline = None
    else:
        entry_deadline = np.asarray(deadline, dtype=float)
        if entry_deadline.ndim == 0:
            entry_deadline = np.full(batch, float(entry_deadline))
        elif entry_deadline.shape != (batch,):
            raise ValueError("deadline must be a scalar or a (B,) vector")

    bounds = _BoundHandler(nx, xmin, xmax, opt.bound_eq_tol)
    eq_idx, ub_idx, lb_idx = bounds.eq_idx, bounds.ub_idx, bounds.lb_idx
    nub = ub_idx.size

    jg_t = _canonical_template(jg_template, nx)
    jh_t = _canonical_template(jh_template, nx)
    hess_t = _canonical_template(hess_template, nx)
    n_eq_nl, n_ineq_nl = jg_t.shape[0], jh_t.shape[0]
    partition = bounds.partition(n_eq_nl, n_ineq_nl)
    neq, niq = partition.n_eq, partition.n_ineq

    jgT_order, jgT_indptr, jgT_indices = transpose_plan(jg_t)
    jhT_order, jhT_indptr, jhT_indices = transpose_plan(jh_t)

    # One solver per enrolled scenario for per-slot backends; backends that
    # support whole block iterations (``blockdiag``) get a single shared
    # instance plus the plan-based batched assembler, removing the per-slot
    # assemble/factor/backsolve loop entirely.
    proto_solver = make_kkt_solver(
        opt.kkt_solver,
        regularization=opt.kkt_reg,
        max_retries=opt.kkt_max_retries,
        factor_threads=opt.kkt_factor_threads,
    )
    use_blocks = bool(getattr(proto_solver, "supports_blocks", False))
    solvers: List = []
    if use_blocks:
        block_solver = proto_solver
        batch_assembler = _BatchKKTAssembler(jg_t, jh_t, hess_t, bounds)
    else:
        block_solver = None
        batch_assembler = None
    assembler = _KKTAssembler()

    # ------------------------------------------------------------- batch state
    # Arrays are sized for every scenario the call may ever hold (just the
    # initial batch without a feed); ``n_enrolled`` is the high-water mark,
    # ``active`` masks the scenarios currently marching, and the initial batch
    # width doubles as the lockstep *window* the feed refills.
    width = batch
    X = np.zeros((capacity, nx))
    F = np.zeros(capacity)
    dF = np.zeros((capacity, nx))
    G = np.zeros((capacity, neq))
    H = np.zeros((capacity, niq))
    Jg_data = np.zeros((capacity, jg_t.nnz))
    Jh_data = np.zeros((capacity, jh_t.nnz))
    Lx = np.zeros((capacity, nx))
    lam = np.zeros((capacity, neq))
    mu = np.zeros((capacity, niq))
    z = np.zeros((capacity, niq))
    gamma = np.full(capacity, opt.z0)
    conds = np.zeros((capacity, 4))
    tols = np.array([opt.feastol, opt.gradtol, opt.comptol, opt.costtol])

    iterations = np.zeros(capacity, dtype=int)
    phase = {name: np.zeros(capacity) for name in _PHASES}
    histories: List[List[IterationRecord]] = [[] for _ in range(capacity)]
    results: List[Optional[MIPSResult]] = [None] * capacity
    active = np.zeros(capacity, dtype=bool)
    #: Accepted singular-KKT recoveries per scenario (both solver modes).
    reg_counts = np.zeros(capacity, dtype=int)
    #: Additive wall share per scenario: every iteration's wall time is split
    #: evenly over the scenarios active in it, so shares sum to the lockstep
    #: wall and stay comparable with scalar per-solve times.
    share = np.zeros(capacity)
    #: Completed lockstep iterations at each scenario's enrollment: iteration
    #: counts, history numbering and the per-scenario iteration limit are all
    #: relative to it, so a fed scenario behaves as if it started fresh.
    start_it = np.zeros(capacity, dtype=int)
    #: Wall clock at each scenario's enrollment (its ``elapsed_seconds`` zero).
    enroll_clock = np.zeros(capacity)
    #: Per-row absolute wall deadline (``time.monotonic()`` clock; +inf = none).
    row_deadline = np.full(capacity, np.inf)
    n_enrolled = 0
    it = 0

    def evaluate(idx: np.ndarray) -> float:
        """Evaluate objective + constraints for rows ``idx``; returns wall time."""
        t0 = time.perf_counter()
        Xa = X[idx]
        f_raw, df_raw = f_fcn(Xa, idx)
        F[idx] = np.asarray(f_raw, dtype=float) * opt.cost_mult
        dF[idx] = np.asarray(df_raw, dtype=float) * opt.cost_mult
        if gh_fcn is not None:
            g_nl, h_nl, jgd, jhd = gh_fcn(Xa, idx)
            g_nl = np.asarray(g_nl, dtype=float)
            h_nl = np.asarray(h_nl, dtype=float)
        else:
            g_nl = np.zeros((idx.size, 0))
            h_nl = np.zeros((idx.size, 0))
            jgd = np.zeros((idx.size, 0))
            jhd = np.zeros((idx.size, 0))
        G[idx] = np.concatenate([g_nl, Xa[:, eq_idx] - xmin[eq_idx]], axis=1)
        H[idx] = np.concatenate(
            [h_nl, Xa[:, ub_idx] - xmax[ub_idx], xmin[lb_idx] - Xa[:, lb_idx]], axis=1
        )
        Jg_data[idx] = jgd
        Jh_data[idx] = jhd
        return time.perf_counter() - t0

    def lagrangian_gradient(idx: np.ndarray) -> None:
        Lxa = dF[idx].copy()
        lam_a = lam[idx]
        mu_a = mu[idx]
        if n_eq_nl:
            td = Jg_data[idx][:, jgT_order]
            Lxa += batched_row_sums(td * lam_a[:, :n_eq_nl][:, jgT_indices], jgT_indptr)
        if eq_idx.size:
            Lxa[:, eq_idx] += lam_a[:, n_eq_nl:]
        if n_ineq_nl:
            td = Jh_data[idx][:, jhT_order]
            Lxa += batched_row_sums(td * mu_a[:, :n_ineq_nl][:, jhT_indices], jhT_indptr)
        if nub:
            Lxa[:, ub_idx] += mu_a[:, n_ineq_nl : n_ineq_nl + nub]
        if lb_idx.size:
            Lxa[:, lb_idx] -= mu_a[:, n_ineq_nl + nub :]
        Lx[idx] = Lxa

    def conditions(idx: np.ndarray, F0a: np.ndarray) -> None:
        """Vectorised version of the scalar solver's four termination tests."""
        na = idx.size
        zeros = np.zeros(na)
        maxh = H[idx].max(axis=1) if niq else np.full(na, -np.inf)
        norm_g = np.abs(G[idx]).max(axis=1) if neq else zeros
        norm_x = np.abs(X[idx]).max(axis=1)
        norm_z = np.abs(z[idx]).max(axis=1) if niq else zeros
        norm_lam = np.abs(lam[idx]).max(axis=1) if neq else zeros
        norm_mu = np.abs(mu[idx]).max(axis=1) if niq else zeros
        feas = np.maximum(norm_g, maxh) / (1.0 + np.maximum(norm_x, norm_z))
        grad = np.abs(Lx[idx]).max(axis=1) / (1.0 + np.maximum(norm_lam, norm_mu))
        comp = (np.einsum("ij,ij->i", z[idx], mu[idx]) if niq else zeros) / (
            1.0 + norm_x
        )
        cost = np.abs(F[idx] - F0a) / (1.0 + np.abs(F0a))
        conds[idx] = np.stack([feas, grad, comp, cost], axis=1)

    def finalize(b: int, message: str, converged: bool, timed_out: bool = False) -> None:
        active[b] = False
        if reg_counts[b]:
            LOGGER.warning(
                "scenario %d: KKT system was singular %d time(s); recovered with "
                "diagonal regularisation",
                b,
                reg_counts[b],
            )
        results[b] = MIPSResult(
            x=X[b].copy(),
            f=F[b] / opt.cost_mult,
            converged=converged,
            iterations=int(iterations[b]),
            lam=lam[b].copy(),
            mu=mu[b].copy(),
            z=z[b].copy(),
            partition=partition,
            message=message,
            history=histories[b],
            elapsed_seconds=time.perf_counter() - enroll_clock[b],
            phase_seconds={name: float(phase[name][b]) for name in _PHASES},
            kkt_regularizations=int(reg_counts[b]),
            # Block mode shares one solver across the batch, so the counters
            # are batch-level aggregates snapshotted at this row's retirement;
            # per-slot mode reports the row's own solver.
            kkt_telemetry=solver_telemetry(
                block_solver if use_blocks else solvers[b]
            ),
            timed_out=timed_out,
            wall_share_seconds=float(share[b]),
        )

    def enroll(payload: BatchFeedPayload) -> np.ndarray:
        """Enter scenarios into the lockstep batch (initial batch and feed).

        One code path for both means a fed scenario takes bit-for-bit the
        entry route a standalone batch member takes: primal clamp into
        bounds, entry evaluation, warm-start dual initialisation, entry
        conditions (and immediate retirement when already converged).
        """
        nonlocal n_enrolled
        t0 = time.perf_counter()
        xb = np.atleast_2d(np.array(payload.x0, dtype=float))
        if xb.ndim != 2 or xb.shape[1] != nx:
            raise ValueError("fed x0 rows must form a (k, nx) matrix")
        k = xb.shape[0]
        if k == 0:
            raise ValueError("a feed payload must enroll at least one scenario")
        if n_enrolled + k > capacity:
            raise ValueError("feed enrolled more scenarios than feed_capacity")
        new = np.arange(n_enrolled, n_enrolled + k)
        n_enrolled += k
        enroll_clock[new] = t0
        start_it[new] = it
        if payload.deadline is not None:
            dl = np.asarray(payload.deadline, dtype=float)
            if dl.shape != (k,):
                raise ValueError("fed deadline must have one entry per enrolled row")
            row_deadline[new] = np.where(np.isnan(dl), np.inf, dl)
        active[new] = True
        if not use_blocks:
            solvers.extend(
                make_kkt_solver(
                    opt.kkt_solver,
                    regularization=opt.kkt_reg,
                    max_retries=opt.kkt_max_retries,
                    factor_threads=opt.kkt_factor_threads,
                )
                for _ in range(k)
            )

        xb[:, eq_idx] = xmin[eq_idx]
        if lb_idx.size:
            xb[:, lb_idx] = np.maximum(xb[:, lb_idx], xmin[lb_idx])
        if ub_idx.size:
            xb[:, ub_idx] = np.minimum(xb[:, ub_idx], xmax[ub_idx])
        X[new] = xb

        entry_dt = evaluate(new)
        phase["eval"][new] += entry_dt / k

        lam0v, lam_m = _warm_rows(payload.lam0, payload.lam0_mask, k, neq, "lam0")
        mu0v, mu_m = _warm_rows(payload.mu0, payload.mu0_mask, k, niq, "mu0")
        z0v, z_m = _warm_rows(payload.z0, payload.z0_mask, k, niq, "z0")
        if lam0v is not None and np.any(lam_m):
            lam[new[lam_m]] = lam0v[lam_m]
        if niq:
            Hn = H[new]
            zn = np.full((k, niq), opt.z0)
            below = Hn < -opt.z0
            zn[below] = -Hn[below]
            if z0v is not None and np.any(z_m):
                zn[z_m] = np.maximum(z0v[z_m], 1e-10)
            gn = np.full(k, opt.z0)
            mun = np.full((k, niq), opt.z0)
            big = gn[:, None] / np.maximum(zn, 1e-300) > opt.z0
            mun[big] = np.broadcast_to(gn[:, None], zn.shape)[big] / zn[big]
            if mu0v is not None and np.any(mu_m):
                mun[mu_m] = np.maximum(mu0v[mu_m], 1e-10)
            warm = mu_m | z_m
            if np.any(warm):
                gn[warm] = np.maximum(
                    opt.sigma * np.einsum("ij,ij->i", zn[warm], mun[warm]) / niq, 1e-12
                )
            z[new] = zn
            mu[new] = mun
            gamma[new] = gn

        lagrangian_gradient(new)
        conditions(new, F[new])

        if opt.record_history:
            entry_share = entry_dt / k
            for b in new:
                histories[b].append(
                    IterationRecord(
                        iteration=0,
                        step_size=0.0,
                        feascond=conds[b, 0],
                        gradcond=conds[b, 1],
                        compcond=conds[b, 2],
                        costcond=conds[b, 3],
                        objective=F[b] / opt.cost_mult,
                        gamma=gamma[b],
                        alpha_primal=0.0,
                        alpha_dual=0.0,
                        eval_seconds=entry_share,
                    )
                )

        share[new] += (time.perf_counter() - t0) / k
        for b in new[(conds[new] < tols).all(axis=1)]:
            finalize(int(b), "converged", True)
        return new

    # ----------------------------------------------------------------- entry
    enroll(
        BatchFeedPayload(
            x0=X0,
            lam0=lam0,
            mu0=mu0,
            z0=z0,
            lam0_mask=lam0_mask,
            mu0_mask=mu0_mask,
            z0_mask=z0_mask,
            deadline=entry_deadline,
        )
    )
    feed_drained = feed is None

    # Per-iteration scratch, allocated once: rows are (re)assigned before any
    # read within the iteration that uses them (survivors only), so no
    # clearing between iterations is needed.
    DX = np.zeros((capacity, nx))
    Dlam = np.zeros((capacity, neq))
    it_eval = np.zeros(capacity)
    it_asm = np.zeros(capacity)
    it_fac = np.zeros(capacity)
    it_back = np.zeros(capacity)

    # ------------------------------------------------------------------ loop
    while True:
        # Retire-and-refill: top the active set back up to the lockstep
        # window from the feed before the next iteration marches.
        if not feed_drained:
            free = width - int(np.count_nonzero(active))
            while free > 0:
                payload = feed(free)
                if payload is None:
                    feed_drained = True
                    break
                if np.atleast_2d(np.asarray(payload.x0)).shape[0] > free:
                    raise ValueError(
                        "feed returned more scenarios than the requested free slots"
                    )
                enroll(payload)
                free = width - int(np.count_nonzero(active))
        # Cooperative wall-deadline / per-row-budget check.  An expired row
        # retires through exactly the retirement path a converged row takes —
        # its state is simply dropped from the active set — so the lockstep
        # trajectories of its neighbours are bitwise unperturbed.
        rows = np.flatnonzero(active)
        if rows.size and (
            opt.max_wall_seconds is not None or bool((row_deadline[rows] < np.inf).any())
        ):
            now_mono = time.monotonic()
            now_perf = time.perf_counter()
            for b in rows:
                if row_deadline[b] <= now_mono or (
                    opt.max_wall_seconds is not None
                    and now_perf - enroll_clock[b] >= opt.max_wall_seconds
                ):
                    finalize(int(b), "wall deadline exceeded", False, timed_out=True)
        idx = np.flatnonzero(active)
        if idx.size == 0:
            if not feed_drained:
                # Deadline retirements just freed the whole window; go refill
                # before concluding the queue is empty.
                continue
            break
        it += 1
        iterations[idx] = it - start_it[idx]
        na = idx.size
        t_iter = time.perf_counter()
        #: Failures detected during this iteration; finalised after the wall
        #: share of the iteration has been credited to every active scenario.
        pending: List[Tuple[int, str]] = []

        def close_iteration() -> None:
            share[idx] += (time.perf_counter() - t_iter) / na
            for b, msg in pending:
                finalize(b, msg, False)

        # ------------------------------------------------- batched Hessian eval
        t0 = time.perf_counter()
        Hdata = np.atleast_2d(
            np.asarray(
                hess_fcn(
                    X[idx], lam[idx][:, :n_eq_nl], mu[idx][:, :n_ineq_nl], opt.cost_mult, idx
                )
            )
        )
        hess_dt = time.perf_counter() - t0
        phase["eval"][idx] += hess_dt / na
        it_eval[idx] = hess_dt / na

        # ------------------------- assembly + factor + solve (block or per-slot)
        survivors: List[int] = []

        def accept_step(b: int, sol: np.ndarray) -> None:
            """Newton-step sanity checks shared by both solver modes."""
            if not np.all(np.isfinite(sol)):
                pending.append((int(b), "numerically failed (non-finite Newton step)"))
                return
            dx = sol[:nx]
            if float(np.max(np.abs(dx))) > opt.max_stepsize:
                pending.append((int(b), "numerically failed (step size exploded)"))
                return
            DX[b] = dx
            if neq:
                Dlam[b] = sol[nx:]
            survivors.append(int(b))

        if use_blocks:
            # One batched assembly + one block-diagonal factorisation + one
            # stacked backsolve for all active scenarios.  The shared phases
            # are split evenly across the active set, like the batched
            # evaluation phases.
            t0 = time.perf_counter()
            kkt_plane, rhs_plane = batch_assembler.build(
                Hdata, Jg_data[idx], Jh_data[idx], Lx[idx], G[idx], H[idx],
                z[idx], mu[idx], gamma[idx],
            )
            asm_dt = (time.perf_counter() - t0) / na
            phase["assembly"][idx] += asm_dt
            it_asm[idx] = asm_dt
            # Scenarios in their first iteration — the whole batch at it=1,
            # fed scenarios later — take the per-block *direct* factorisation
            # path (a per-slot solver's first factorisation is a direct
            # ``splu``); seasoned scenarios replay the cached permutation in
            # one block factorisation.  The split keeps a scenario's
            # trajectory independent of when the feed enrolled it.
            fresh = start_it[idx] == it - 1
            parts: List[Tuple[np.ndarray, bool]] = []
            if np.any(~fresh):
                parts.append((np.flatnonzero(~fresh), False))
            if np.any(fresh):
                parts.append((np.flatnonzero(fresh), True))
            fac_dt = back_dt = 0.0
            for pos, direct in parts:
                rows = idx[pos]
                try:
                    report = block_solver.solve_blocks(
                        batch_assembler.kkt_template,
                        kkt_plane[pos],
                        rhs_plane[pos],
                        direct=direct,
                    )
                except KKTSolveError:
                    fac_dt += block_solver.factor_seconds
                    for b in rows:
                        pending.append((int(b), "numerically failed (singular KKT system)"))
                    continue
                fac_dt += block_solver.factor_seconds
                back_dt += block_solver.backsolve_seconds
                reg_counts[rows] += report.regularizations
                failed = set(report.failed)
                for p, b in enumerate(rows):
                    if p in failed:
                        pending.append((int(b), "numerically failed (singular KKT system)"))
                        continue
                    accept_step(int(b), report.solutions[p])
            phase["factorization"][idx] += fac_dt / na
            phase["backsolve"][idx] += back_dt / na
            it_fac[idx] = fac_dt / na
            it_back[idx] = back_dt / na
        else:
            for p, b in enumerate(idx):
                t0 = time.perf_counter()
                Lxx = csr_from_template(hess_t, Hdata[p])
                Jg_b, Jh_b = bounds.stack_jacobians(
                    csr_from_template(jg_t, Jg_data[b]), csr_from_template(jh_t, Jh_data[b])
                )
                kkt, rhs = assembler.build(
                    Lxx, Jg_b, Jh_b, Lx[b], G[b], H[b], z[b], mu[b], gamma[b]
                )
                asm_dt = time.perf_counter() - t0
                phase["assembly"][b] += asm_dt
                it_asm[b] = asm_dt
                try:
                    sol = solvers[b].solve(kkt, rhs)
                except KKTSolveError:
                    phase["factorization"][b] += solvers[b].factor_seconds
                    reg_counts[b] = solvers[b].regularizations
                    pending.append((int(b), "numerically failed (singular KKT system)"))
                    continue
                phase["factorization"][b] += solvers[b].factor_seconds
                phase["backsolve"][b] += solvers[b].backsolve_seconds
                it_fac[b] = solvers[b].factor_seconds
                it_back[b] = solvers[b].backsolve_seconds
                reg_counts[b] = solvers[b].regularizations
                accept_step(int(b), sol)

        if not survivors:
            close_iteration()
            continue
        s = np.asarray(survivors)
        DXs = DX[s]

        # ------------------------------------------ batched step-length update
        if niq:
            Jh_dx = np.zeros((s.size, niq))
            if n_ineq_nl:
                Jh_dx[:, :n_ineq_nl] = batched_matvec(
                    Jh_data[s], jh_t.indptr, jh_t.indices, DXs
                )
            if nub:
                Jh_dx[:, n_ineq_nl : n_ineq_nl + nub] = DXs[:, ub_idx]
            if lb_idx.size:
                Jh_dx[:, n_ineq_nl + nub :] = -DXs[:, lb_idx]
            DZ = -H[s] - z[s] - Jh_dx
            DMU = -mu[s] + (gamma[s][:, None] - mu[s] * DZ) / z[s]
            with np.errstate(divide="ignore", invalid="ignore"):
                alphap = np.minimum(
                    opt.xi * np.where(DZ < 0, z[s] / -DZ, np.inf).min(axis=1), 1.0
                )
                alphad = np.minimum(
                    opt.xi * np.where(DMU < 0, mu[s] / -DMU, np.inf).min(axis=1), 1.0
                )
        else:
            DZ = np.zeros((s.size, 0))
            DMU = np.zeros((s.size, 0))
            alphap = np.ones(s.size)
            alphad = np.ones(s.size)

        X[s] += alphap[:, None] * DXs
        if niq:
            z[s] += alphap[:, None] * DZ
            mu[s] += alphad[:, None] * DMU
            gamma[s] = opt.sigma * np.einsum("ij,ij->i", z[s], mu[s]) / niq
        if neq:
            lam[s] += alphad[:, None] * Dlam[s]

        # --------------------------------------------------- batched re-evaluate
        F0s = F[s].copy()
        dt = evaluate(s)
        phase["eval"][s] += dt / s.size
        it_eval[s] += dt / s.size
        lagrangian_gradient(s)
        conditions(s, F0s)

        if opt.record_history:
            step_sizes = np.abs(DXs).max(axis=1) if nx else np.zeros(s.size)
            for pos, b in enumerate(s):
                histories[b].append(
                    IterationRecord(
                        iteration=int(iterations[b]),
                        step_size=float(step_sizes[pos]),
                        feascond=conds[b, 0],
                        gradcond=conds[b, 1],
                        compcond=conds[b, 2],
                        costcond=conds[b, 3],
                        objective=F[b] / opt.cost_mult,
                        gamma=gamma[b],
                        alpha_primal=float(alphap[pos]),
                        alpha_dual=float(alphad[pos]),
                        eval_seconds=it_eval[b],
                        assembly_seconds=it_asm[b],
                        factor_seconds=it_fac[b],
                        backsolve_seconds=it_back[b],
                    )
                )
        if opt.verbose:
            LOGGER.info(
                "it %3d  active=%d  worst feas=%.3e grad=%.3e comp=%.3e cost=%.3e",
                it,
                s.size,
                conds[s, 0].max(),
                conds[s, 1].max(),
                conds[s, 2].max(),
                conds[s, 3].max(),
            )

        close_iteration()
        converged_now = (conds[s] < tols).all(axis=1)
        nonfinite = ~np.isfinite(X[s]).all(axis=1)
        diverged = np.abs(X[s]).max(axis=1) > opt.max_stepsize
        for pos, b in enumerate(s):
            if converged_now[pos]:
                finalize(int(b), "converged", True)
            elif nonfinite[pos]:
                finalize(int(b), "numerically failed (non-finite iterate)", False)
            elif diverged[pos]:
                finalize(int(b), "numerically failed (iterate diverged)", False)

        # Per-scenario iteration limit, relative to each scenario's own
        # enrollment (a fed scenario gets the full budget it would have had
        # in a standalone batch).
        for b in np.flatnonzero(active):
            if it - start_it[b] >= opt.max_it:
                finalize(int(b), "iteration limit reached", False)

    return results[:n_enrolled]  # type: ignore[return-value]
