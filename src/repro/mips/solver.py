"""MIPS: primal-dual interior-point solver for constrained nonlinear programs.

This is a from-scratch NumPy/SciPy reimplementation of the algorithm behind
MATPOWER's MIPS solver (Wang et al.), the numerical engine the paper
accelerates.  It solves problems of the form::

    min  f(x)
    s.t. g(x)  = 0          (nonlinear equalities)
         h(x) <= 0          (nonlinear inequalities)
         xmin <= x <= xmax  (variable bounds)

by converting the inequalities into equalities with positive slacks ``Z``,
adding a logarithmic barrier with parameter ``gamma`` and applying Newton's
method to the perturbed KKT conditions of the Lagrangian (Eqn. 3 of the
paper).  The solver exposes exactly the warm-start surface the paper exploits:
the primal point ``x``, equality multipliers ``λ``, inequality multipliers
``µ`` and slacks ``Z`` can all be supplied as starting values, and the four
termination conditions are recorded per iteration for the Fig. 10 analysis.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.mips.options import MIPSOptions
from repro.mips.result import ConstraintPartition, IterationRecord, MIPSResult
from repro.utils.logging import get_logger

LOGGER = get_logger("mips")

#: Objective callback: ``x -> (f, df)`` or ``(f, df, d2f)``.
ObjectiveFn = Callable[[np.ndarray], Tuple]
#: Constraint callback: ``x -> (g, h, Jg, Jh)`` with Jacobians in standard
#: row-per-constraint orientation (``(n_con, n_x)`` sparse matrices).
ConstraintFn = Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray, sp.spmatrix, sp.spmatrix]]
#: Lagrangian-Hessian callback: ``(x, lam_nl, mu_nl, cost_mult) -> (n_x, n_x)`` sparse.
HessianFn = Callable[[np.ndarray, np.ndarray, np.ndarray, float], sp.spmatrix]


def _empty_constraints(nx: int) -> Tuple[np.ndarray, np.ndarray, sp.csr_matrix, sp.csr_matrix]:
    zero = np.zeros(0)
    empty = sp.csr_matrix((0, nx))
    return zero, zero, empty, empty


class _BoundHandler:
    """Converts variable bounds into internal equality / inequality rows."""

    def __init__(self, nx: int, xmin: np.ndarray, xmax: np.ndarray, eq_tol: float):
        self.nx = nx
        self.xmin = xmin
        self.xmax = xmax
        finite_lo = np.isfinite(xmin)
        finite_hi = np.isfinite(xmax)
        fixed = finite_lo & finite_hi & (np.abs(xmax - xmin) <= eq_tol)
        self.eq_idx = np.flatnonzero(fixed)
        self.ub_idx = np.flatnonzero(finite_hi & ~fixed)
        self.lb_idx = np.flatnonzero(finite_lo & ~fixed)

        def selector(idx: np.ndarray, sign: float) -> sp.csr_matrix:
            m = idx.size
            return sp.csr_matrix(
                (np.full(m, sign), (np.arange(m), idx)), shape=(m, nx)
            )

        self._E_eq = selector(self.eq_idx, 1.0)
        self._E_ub = selector(self.ub_idx, 1.0)
        self._E_lb = selector(self.lb_idx, -1.0)

    def partition(self, n_eq_nl: int, n_ineq_nl: int) -> ConstraintPartition:
        return ConstraintPartition(
            n_eq_nonlin=n_eq_nl,
            n_ineq_nonlin=n_ineq_nl,
            eq_bound_idx=self.eq_idx.copy(),
            ub_idx=self.ub_idx.copy(),
            lb_idx=self.lb_idx.copy(),
        )

    def assemble(
        self,
        x: np.ndarray,
        g_nl: np.ndarray,
        h_nl: np.ndarray,
        Jg_nl: sp.spmatrix,
        Jh_nl: sp.spmatrix,
    ) -> Tuple[np.ndarray, np.ndarray, sp.csr_matrix, sp.csr_matrix]:
        """Stack nonlinear constraints with the bound-derived rows."""
        g = np.concatenate([g_nl, x[self.eq_idx] - self.xmin[self.eq_idx]])
        h = np.concatenate(
            [h_nl, x[self.ub_idx] - self.xmax[self.ub_idx], self.xmin[self.lb_idx] - x[self.lb_idx]]
        )
        Jg = sp.vstack([sp.csr_matrix(Jg_nl), self._E_eq], format="csr")
        Jh = sp.vstack([sp.csr_matrix(Jh_nl), self._E_ub, self._E_lb], format="csr")
        return g, h, Jg, Jh

    def interior_start(self, x0: np.ndarray) -> np.ndarray:
        """Clip the starting point strictly inside non-degenerate bounds and onto fixed values."""
        x = x0.copy()
        x[self.eq_idx] = self.xmin[self.eq_idx]
        lb, ub = self.lb_idx, self.ub_idx
        x[lb] = np.maximum(x[lb], self.xmin[lb])
        x[ub] = np.minimum(x[ub], self.xmax[ub])
        return x


def mips(
    f_fcn: ObjectiveFn,
    x0: np.ndarray,
    gh_fcn: Optional[ConstraintFn] = None,
    hess_fcn: Optional[HessianFn] = None,
    xmin: Optional[np.ndarray] = None,
    xmax: Optional[np.ndarray] = None,
    lam0: Optional[np.ndarray] = None,
    mu0: Optional[np.ndarray] = None,
    z0: Optional[np.ndarray] = None,
    options: Optional[MIPSOptions] = None,
) -> MIPSResult:
    """Solve a constrained nonlinear program with the MIPS interior-point method.

    Parameters
    ----------
    f_fcn:
        Objective callback returning ``(f, df)`` (or ``(f, df, d2f)``; the
        Hessian entry is used only when ``hess_fcn`` is omitted, i.e. for
        problems without nonlinear constraints).
    x0:
        Initial primal point.
    gh_fcn:
        Nonlinear constraint callback returning ``(g, h, Jg, Jh)`` where
        ``g(x) = 0`` and ``h(x) <= 0`` and the Jacobians have one row per
        constraint.  ``None`` for bound-only problems.
    hess_fcn:
        Lagrangian Hessian callback ``(x, lam_nl, mu_nl, cost_mult)`` → sparse
        matrix.  Required when ``gh_fcn`` is supplied.
    xmin, xmax:
        Variable bounds (``±inf`` allowed).  Components with
        ``xmin == xmax`` are treated as equality constraints.
    lam0, mu0, z0:
        Optional warm-start values for the equality multipliers, inequality
        multipliers and slacks *in the internal ordering* (nonlinear rows
        first, then bound rows) — this is the interface Smart-PGSim's
        predicted warm-start point feeds.
    options:
        :class:`MIPSOptions`; defaults match MATPOWER.
    """
    opt = options or MIPSOptions()
    opt.validate()

    x0 = np.asarray(x0, dtype=float).copy()
    nx = x0.size
    xmin = np.full(nx, -np.inf) if xmin is None else np.asarray(xmin, dtype=float)
    xmax = np.full(nx, np.inf) if xmax is None else np.asarray(xmax, dtype=float)
    if xmin.shape != (nx,) or xmax.shape != (nx,):
        raise ValueError("xmin/xmax must match the size of x0")
    if np.any(xmin > xmax):
        raise ValueError("xmin > xmax for at least one variable")

    bounds = _BoundHandler(nx, xmin, xmax, opt.bound_eq_tol)
    if gh_fcn is not None and hess_fcn is None:
        raise ValueError("hess_fcn is required when nonlinear constraints are present")

    def eval_objective(x: np.ndarray) -> Tuple[float, np.ndarray, Optional[sp.spmatrix]]:
        out = f_fcn(x)
        if len(out) == 2:
            f, df = out
            d2f = None
        else:
            f, df, d2f = out
        return float(f) * opt.cost_mult, np.asarray(df, dtype=float) * opt.cost_mult, d2f

    def eval_constraints(x: np.ndarray):
        if gh_fcn is None:
            g_nl, h_nl, Jg_nl, Jh_nl = _empty_constraints(nx)
        else:
            g_nl, h_nl, Jg_nl, Jh_nl = gh_fcn(x)
            g_nl = np.asarray(g_nl, dtype=float)
            h_nl = np.asarray(h_nl, dtype=float)
        return bounds.assemble(x, g_nl, h_nl, Jg_nl, Jh_nl), (g_nl.size, h_nl.size)

    start_time = time.perf_counter()
    x = bounds.interior_start(x0)

    (g, h, Jg, Jh), (n_eq_nl, n_ineq_nl) = eval_constraints(x)
    partition = bounds.partition(n_eq_nl, n_ineq_nl)
    neq, niq = g.size, h.size

    f, df, d2f_cached = eval_objective(x)

    # ---------------------------------------------------------------- warm start
    gamma = opt.z0
    if lam0 is not None:
        lam = np.asarray(lam0, dtype=float).copy()
        if lam.shape != (neq,):
            raise ValueError(f"lam0 must have length {neq}")
    else:
        lam = np.zeros(neq)

    z = opt.z0 * np.ones(niq)
    below = h < -opt.z0
    z[below] = -h[below]
    if z0 is not None:
        z_ws = np.asarray(z0, dtype=float)
        if z_ws.shape != (niq,):
            raise ValueError(f"z0 must have length {niq}")
        z = np.maximum(z_ws, 1e-10)

    mu = opt.z0 * np.ones(niq)
    big = gamma / np.maximum(z, 1e-300) > opt.z0
    mu[big] = gamma / z[big]
    if mu0 is not None:
        mu_ws = np.asarray(mu0, dtype=float)
        if mu_ws.shape != (niq,):
            raise ValueError(f"mu0 must have length {niq}")
        mu = np.maximum(mu_ws, 1e-10)
    if niq > 0 and (mu0 is not None or z0 is not None):
        gamma = max(opt.sigma * float(z @ mu) / niq, 1e-12)

    e = np.ones(niq)

    def lagrangian_gradient(df_, Jg_, Jh_, lam_, mu_) -> np.ndarray:
        Lx = df_.copy()
        if neq:
            Lx = Lx + Jg_.T @ lam_
        if niq:
            Lx = Lx + Jh_.T @ mu_
        return Lx

    def conditions(f_, f0_, g_, h_, Lx_, x_, z_, lam_, mu_) -> Tuple[float, float, float, float]:
        maxh = float(np.max(h_)) if h_.size else -np.inf
        norm_g = float(np.max(np.abs(g_))) if g_.size else 0.0
        norm_x = float(np.max(np.abs(x_))) if x_.size else 0.0
        norm_z = float(np.max(np.abs(z_))) if z_.size else 0.0
        norm_lam = float(np.max(np.abs(lam_))) if lam_.size else 0.0
        norm_mu = float(np.max(np.abs(mu_))) if mu_.size else 0.0
        feascond = max(norm_g, maxh) / (1.0 + max(norm_x, norm_z))
        gradcond = (float(np.max(np.abs(Lx_))) if Lx_.size else 0.0) / (
            1.0 + max(norm_lam, norm_mu)
        )
        compcond = (float(z_ @ mu_) if z_.size else 0.0) / (1.0 + norm_x)
        costcond = abs(f_ - f0_) / (1.0 + abs(f0_))
        return feascond, gradcond, compcond, costcond

    Lx = lagrangian_gradient(df, Jg, Jh, lam, mu)
    f0 = f
    feascond, gradcond, compcond, costcond = conditions(f, f0, g, h, Lx, x, z, lam, mu)

    history = []
    converged = bool(
        feascond < opt.feastol
        and gradcond < opt.gradtol
        and compcond < opt.comptol
        and costcond < opt.costtol
    )
    message = "converged" if converged else ""
    iterations = 0

    if opt.record_history:
        history.append(
            IterationRecord(
                iteration=0,
                step_size=0.0,
                feascond=feascond,
                gradcond=gradcond,
                compcond=compcond,
                costcond=costcond,
                objective=f / opt.cost_mult,
                gamma=gamma,
                alpha_primal=0.0,
                alpha_dual=0.0,
            )
        )

    while not converged and iterations < opt.max_it:
        iterations += 1

        # ------------------------------------------------------ Newton system
        lam_nl = lam[:n_eq_nl]
        mu_nl = mu[:n_ineq_nl]
        if hess_fcn is not None:
            Lxx = sp.csr_matrix(hess_fcn(x, lam_nl, mu_nl, opt.cost_mult))
        elif d2f_cached is not None:
            Lxx = sp.csr_matrix(d2f_cached) * opt.cost_mult
        else:
            raise ValueError(
                "no Hessian available: provide hess_fcn or a 3-tuple objective"
            )

        if niq:
            zinv = 1.0 / z
            dh_zinv = Jh.T @ sp.diags(zinv)  # columns scaled by 1/z  -> (nx, niq)
            M = Lxx + dh_zinv @ sp.diags(mu) @ Jh
            N = Lx + dh_zinv @ (mu * h + gamma * e)
        else:
            M = Lxx
            N = Lx.copy()

        if neq:
            kkt = sp.bmat([[M, Jg.T], [Jg, None]], format="csc")
            rhs = np.concatenate([-N, -g])
        else:
            kkt = sp.csc_matrix(M)
            rhs = -N

        try:
            sol = spla.spsolve(kkt, rhs)
        except Exception:  # singular factorisation
            message = "numerically failed (singular KKT system)"
            break
        if not np.all(np.isfinite(sol)):
            message = "numerically failed (non-finite Newton step)"
            break

        dx = sol[:nx]
        dlam = sol[nx:] if neq else np.zeros(0)
        if float(np.max(np.abs(dx))) > opt.max_stepsize:
            message = "numerically failed (step size exploded)"
            break

        if niq:
            dz = -h - z - Jh @ dx
            dmu = -mu + (gamma - mu * dz) / z
        else:
            dz = np.zeros(0)
            dmu = np.zeros(0)

        # --------------------------------------------------- step lengths
        alphap = 1.0
        if niq:
            neg = dz < 0
            if np.any(neg):
                alphap = min(opt.xi * float(np.min(z[neg] / -dz[neg])), 1.0)
        alphad = 1.0
        if niq:
            neg = dmu < 0
            if np.any(neg):
                alphad = min(opt.xi * float(np.min(mu[neg] / -dmu[neg])), 1.0)

        x = x + alphap * dx
        if niq:
            z = z + alphap * dz
            mu = mu + alphad * dmu
            gamma = opt.sigma * float(z @ mu) / niq
        if neq:
            lam = lam + alphad * dlam

        # ----------------------------------------------------- re-evaluate
        f0 = f
        f, df, d2f_cached = eval_objective(x)
        (g, h, Jg, Jh), _ = eval_constraints(x)
        Lx = lagrangian_gradient(df, Jg, Jh, lam, mu)
        feascond, gradcond, compcond, costcond = conditions(
            f, f0, g, h, Lx, x, z, lam, mu
        )

        if opt.record_history:
            history.append(
                IterationRecord(
                    iteration=iterations,
                    step_size=float(np.max(np.abs(dx))) if dx.size else 0.0,
                    feascond=feascond,
                    gradcond=gradcond,
                    compcond=compcond,
                    costcond=costcond,
                    objective=f / opt.cost_mult,
                    gamma=gamma,
                    alpha_primal=alphap,
                    alpha_dual=alphad,
                )
            )
        if opt.verbose:
            LOGGER.info(
                "it %3d  f=%.6e  feas=%.3e grad=%.3e comp=%.3e cost=%.3e",
                iterations,
                f,
                feascond,
                gradcond,
                compcond,
                costcond,
            )

        if (
            feascond < opt.feastol
            and gradcond < opt.gradtol
            and compcond < opt.comptol
            and costcond < opt.costtol
        ):
            converged = True
            message = "converged"
            break
        if not np.all(np.isfinite(x)):
            message = "numerically failed (non-finite iterate)"
            break
        if float(np.max(np.abs(x))) > opt.max_stepsize:
            message = "numerically failed (iterate diverged)"
            break

    if not converged and not message:
        message = "iteration limit reached"

    elapsed = time.perf_counter() - start_time
    return MIPSResult(
        x=x,
        f=f / opt.cost_mult,
        converged=converged,
        iterations=iterations,
        lam=lam,
        mu=mu,
        z=z,
        partition=partition,
        message=message,
        history=history,
        elapsed_seconds=elapsed,
    )
