"""MIPS: primal-dual interior-point solver for constrained nonlinear programs.

This is a from-scratch NumPy/SciPy reimplementation of the algorithm behind
MATPOWER's MIPS solver (Wang et al.), the numerical engine the paper
accelerates.  It solves problems of the form::

    min  f(x)
    s.t. g(x)  = 0          (nonlinear equalities)
         h(x) <= 0          (nonlinear inequalities)
         xmin <= x <= xmax  (variable bounds)

by converting the inequalities into equalities with positive slacks ``Z``,
adding a logarithmic barrier with parameter ``gamma`` and applying Newton's
method to the perturbed KKT conditions of the Lagrangian (Eqn. 3 of the
paper).  The solver exposes exactly the warm-start surface the paper exploits:
the primal point ``x``, equality multipliers ``λ``, inequality multipliers
``µ`` and slacks ``Z`` can all be supplied as starting values, and the four
termination conditions are recorded per iteration for the Fig. 10 analysis.

The KKT sparsity pattern is fixed once the constraint structure is known, so
the Newton system is assembled through structure caches
(:class:`repro.utils.sparse.CachedBmat`): block layouts are computed once and
only the numeric ``data`` arrays are refreshed per iteration.  The linear
solve itself is delegated to a pluggable backend
(:mod:`repro.mips.linsolve`) selected via ``MIPSOptions.kkt_solver``, and the
per-phase split (callback evaluation / assembly / factorisation /
back-substitution) is recorded in the iteration history and aggregated in
``MIPSResult.phase_seconds`` for the Fig. 5 runtime breakdown.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.mips.linsolve import KKTSolveError, make_kkt_solver, solver_telemetry
from repro.mips.options import MIPSOptions
from repro.mips.result import ConstraintPartition, IterationRecord, MIPSResult
from repro.utils.logging import get_logger
from repro.utils.sparse import (
    CachedBmat,
    CachedTranspose,
    MatmulPlan,
    _canonical_csr,
    batched_row_sums,
    cached_vstack_csr,
    csr_from_template,
    pattern_union,
    row_scaled_csr,
    same_pattern,
)

LOGGER = get_logger("mips")

#: Objective callback: ``x -> (f, df)`` or ``(f, df, d2f)``.
ObjectiveFn = Callable[[np.ndarray], Tuple]
#: Constraint callback: ``x -> (g, h, Jg, Jh)`` with Jacobians in standard
#: row-per-constraint orientation (``(n_con, n_x)`` sparse matrices).
ConstraintFn = Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray, sp.spmatrix, sp.spmatrix]]
#: Lagrangian-Hessian callback: ``(x, lam_nl, mu_nl, cost_mult) -> (n_x, n_x)`` sparse.
HessianFn = Callable[[np.ndarray, np.ndarray, np.ndarray, float], sp.spmatrix]


def _empty_constraints(nx: int) -> Tuple[np.ndarray, np.ndarray, sp.csr_matrix, sp.csr_matrix]:
    zero = np.zeros(0)
    empty = sp.csr_matrix((0, nx))
    return zero, zero, empty, empty


class _BoundHandler:
    """Converts variable bounds into internal equality / inequality rows.

    The bound-derived selector rows are constant, so the stacked Jacobians are
    assembled through structure caches: after the first evaluation only the
    nonlinear blocks' numeric values are copied.
    """

    def __init__(self, nx: int, xmin: np.ndarray, xmax: np.ndarray, eq_tol: float):
        self.nx = nx
        self.xmin = xmin
        self.xmax = xmax
        finite_lo = np.isfinite(xmin)
        finite_hi = np.isfinite(xmax)
        fixed = finite_lo & finite_hi & (np.abs(xmax - xmin) <= eq_tol)
        self.eq_idx = np.flatnonzero(fixed)
        self.ub_idx = np.flatnonzero(finite_hi & ~fixed)
        self.lb_idx = np.flatnonzero(finite_lo & ~fixed)

        def selector(idx: np.ndarray, sign: float) -> sp.csr_matrix:
            m = idx.size
            return sp.csr_matrix(
                (np.full(m, sign), (np.arange(m), idx)), shape=(m, nx)
            )

        self._E_eq = selector(self.eq_idx, 1.0)
        self._E_ub = selector(self.ub_idx, 1.0)
        self._E_lb = selector(self.lb_idx, -1.0)
        self._Jg_cache = CachedBmat("csr")
        self._Jh_cache = CachedBmat("csr")

    @property
    def bound_selectors(self) -> Tuple[sp.csr_matrix, sp.csr_matrix, sp.csr_matrix]:
        """The constant bound-row selector matrices ``(E_eq, E_ub, E_lb)``.

        Shared with the batched KKT assembler, which stacks their (constant)
        data planes under the nonlinear Jacobian blocks once per iteration.
        """
        return self._E_eq, self._E_ub, self._E_lb

    def partition(self, n_eq_nl: int, n_ineq_nl: int) -> ConstraintPartition:
        return ConstraintPartition(
            n_eq_nonlin=n_eq_nl,
            n_ineq_nonlin=n_ineq_nl,
            eq_bound_idx=self.eq_idx.copy(),
            ub_idx=self.ub_idx.copy(),
            lb_idx=self.lb_idx.copy(),
        )

    def assemble(
        self,
        x: np.ndarray,
        g_nl: np.ndarray,
        h_nl: np.ndarray,
        Jg_nl: sp.spmatrix,
        Jh_nl: sp.spmatrix,
    ) -> Tuple[np.ndarray, np.ndarray, sp.csr_matrix, sp.csr_matrix]:
        """Stack nonlinear constraints with the (constant) bound-derived rows."""
        g = np.concatenate([g_nl, x[self.eq_idx] - self.xmin[self.eq_idx]])
        h = np.concatenate(
            [h_nl, x[self.ub_idx] - self.xmax[self.ub_idx], self.xmin[self.lb_idx] - x[self.lb_idx]]
        )
        Jg, Jh = self.stack_jacobians(Jg_nl, Jh_nl)
        return g, h, Jg, Jh

    def stack_jacobians(
        self, Jg_nl: sp.spmatrix, Jh_nl: sp.spmatrix
    ) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
        """Stack nonlinear Jacobians on top of the constant bound-selector rows.

        Shared with the lockstep batch solver, which stacks the constraint
        *values* batch-vectorised but still needs per-slot stacked Jacobians
        for the KKT assembly.
        """
        Jg = cached_vstack_csr(self._Jg_cache, [Jg_nl, self._E_eq])
        Jh = cached_vstack_csr(self._Jh_cache, [Jh_nl, self._E_ub, self._E_lb])
        return Jg, Jh

    def interior_start(self, x0: np.ndarray) -> np.ndarray:
        """Clip the starting point strictly inside non-degenerate bounds and onto fixed values."""
        x = x0.copy()
        x[self.eq_idx] = self.xmin[self.eq_idx]
        lb, ub = self.lb_idx, self.ub_idx
        x[lb] = np.maximum(x[lb], self.xmin[lb])
        x[ub] = np.minimum(x[ub], self.xmax[ub])
        return x


class _KKTAssembler:
    """Structure-cached assembly of the Newton (KKT) system.

    The reduced system is::

        M = Lxx + Jhᵀ diag(µ/z) Jh
        N = Lx  + Jhᵀ ((µ∘h + γ) / z)
        kkt = [[M, Jgᵀ], [Jg, 0]],  rhs = [-N; -g]

    Transposes, the row scaling of ``Jh``, the ``JhᵀD Jh`` product and the
    final block assembly all reuse their symbolic structure across
    iterations.  The product runs through a fixed-pattern
    :class:`~repro.utils.sparse.MatmulPlan` rather than scipy's ``@``:
    scipy's sparse matmul *prunes* output entries that happen to sum to
    exactly zero (common at cold starts, where many Jacobian values vanish),
    which would make the KKT pattern flip between iterations and silently
    invalidate every downstream symbolic cache — the plan keeps the full
    structural pattern, so the KKT pattern is stable for the life of the
    problem.  The same plan arithmetic evaluates the batched data planes in
    :class:`repro.mips.batch._BatchKKTAssembler` (rows are reduced
    independently), which is what keeps per-slot and block-diagonal solves
    bit-for-bit identical.
    """

    def __init__(self) -> None:
        self._kkt_cache = CachedBmat("csc")
        self._JhT = CachedTranspose()
        self._JgT = CachedTranspose()
        self._zinv: Optional[np.ndarray] = None
        self._scale_data: Optional[np.ndarray] = None
        self._matmul: Optional[MatmulPlan] = None
        self._m_template: Optional[sp.csr_matrix] = None
        self._pos_lxx: Optional[np.ndarray] = None
        self._pos_prod: Optional[np.ndarray] = None
        self._plan_patterns: Optional[tuple] = None

    def _product_plan(self, Lxx: sp.csr_matrix, JhT: sp.csr_matrix, Jh: sp.csr_matrix):
        """The (cached) structural product/union plan for the current patterns."""
        cached = self._plan_patterns
        if cached is not None:
            (jht_ptr, jht_idx, lxx_ptr, lxx_idx) = cached
            if same_pattern(JhT, jht_ptr, jht_idx) and same_pattern(Lxx, lxx_ptr, lxx_idx):
                return
        self._matmul = MatmulPlan(JhT, Jh)
        self._m_template, (self._pos_lxx, self._pos_prod) = pattern_union(
            [Lxx, self._matmul.template]
        )
        self._plan_patterns = (JhT.indptr, JhT.indices, Lxx.indptr, Lxx.indices)

    def build(
        self,
        Lxx: sp.spmatrix,
        Jg: sp.csr_matrix,
        Jh: sp.csr_matrix,
        Lx: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        z: np.ndarray,
        mu: np.ndarray,
        gamma: float,
    ) -> Tuple[sp.spmatrix, np.ndarray]:
        neq, niq = g.size, h.size
        if niq:
            if self._zinv is None or self._zinv.size != niq:
                self._zinv = np.empty(niq)
            zinv = np.divide(1.0, z, out=self._zinv)
            JhT = self._JhT.transpose(Jh)
            if self._scale_data is None or self._scale_data.size != Jh.nnz:
                self._scale_data = np.empty(Jh.nnz)
            Jh_scaled = row_scaled_csr(Jh, mu * zinv, out=self._scale_data)
            Lxx = _canonical_csr(Lxx)
            self._product_plan(Lxx, JhT, Jh_scaled)
            prod_data = self._matmul.multiply(
                JhT.data[None, :], Jh_scaled.data[None, :]
            )[0]
            m_data = np.zeros(self._m_template.nnz)
            m_data[self._pos_lxx] += Lxx.data
            m_data[self._pos_prod] += prod_data
            M = csr_from_template(self._m_template, m_data)
            vec = (mu * h + gamma) * zinv
            N = Lx + batched_row_sums(
                JhT.data[None, :] * vec[JhT.indices][None, :], JhT.indptr
            )[0]
        else:
            M = Lxx
            N = Lx.copy()

        if neq:
            JgT = self._JgT.transpose(Jg)
            kkt = self._kkt_cache.assemble([[M, JgT], [Jg, None]])
            rhs = np.concatenate([-N, -g])
        else:
            kkt = sp.csc_matrix(M)
            rhs = -N
        return kkt, rhs


def _conditions(
    f_: float,
    f0_: float,
    g_: np.ndarray,
    h_: np.ndarray,
    Lx_: np.ndarray,
    x_: np.ndarray,
    z_: np.ndarray,
    lam_: np.ndarray,
    mu_: np.ndarray,
) -> Tuple[float, float, float, float]:
    """The four MIPS termination quantities (feasibility, gradient, complementarity, cost)."""
    maxh = float(np.max(h_)) if h_.size else -np.inf
    norm_g = float(np.max(np.abs(g_))) if g_.size else 0.0
    norm_x = float(np.max(np.abs(x_))) if x_.size else 0.0
    norm_z = float(np.max(np.abs(z_))) if z_.size else 0.0
    norm_lam = float(np.max(np.abs(lam_))) if lam_.size else 0.0
    norm_mu = float(np.max(np.abs(mu_))) if mu_.size else 0.0
    feascond = max(norm_g, maxh) / (1.0 + max(norm_x, norm_z))
    gradcond = (float(np.max(np.abs(Lx_))) if Lx_.size else 0.0) / (
        1.0 + max(norm_lam, norm_mu)
    )
    compcond = (float(z_ @ mu_) if z_.size else 0.0) / (1.0 + norm_x)
    costcond = abs(f_ - f0_) / (1.0 + abs(f0_))
    return feascond, gradcond, compcond, costcond


def _is_converged(conds: Sequence[float], opt: MIPSOptions) -> bool:
    """Single convergence test used at entry and per iteration (no duplicated logic)."""
    feascond, gradcond, compcond, costcond = conds
    return bool(
        feascond < opt.feastol
        and gradcond < opt.gradtol
        and compcond < opt.comptol
        and costcond < opt.costtol
    )


def mips(
    f_fcn: ObjectiveFn,
    x0: np.ndarray,
    gh_fcn: Optional[ConstraintFn] = None,
    hess_fcn: Optional[HessianFn] = None,
    xmin: Optional[np.ndarray] = None,
    xmax: Optional[np.ndarray] = None,
    lam0: Optional[np.ndarray] = None,
    mu0: Optional[np.ndarray] = None,
    z0: Optional[np.ndarray] = None,
    options: Optional[MIPSOptions] = None,
    deadline: Optional[float] = None,
) -> MIPSResult:
    """Solve a constrained nonlinear program with the MIPS interior-point method.

    Parameters
    ----------
    f_fcn:
        Objective callback returning ``(f, df)`` (or ``(f, df, d2f)``; the
        Hessian entry is used only when ``hess_fcn`` is omitted, i.e. for
        problems without nonlinear constraints).
    x0:
        Initial primal point.
    gh_fcn:
        Nonlinear constraint callback returning ``(g, h, Jg, Jh)`` where
        ``g(x) = 0`` and ``h(x) <= 0`` and the Jacobians have one row per
        constraint.  ``None`` for bound-only problems.
    hess_fcn:
        Lagrangian Hessian callback ``(x, lam_nl, mu_nl, cost_mult)`` → sparse
        matrix.  Required when ``gh_fcn`` is supplied.
    xmin, xmax:
        Variable bounds (``±inf`` allowed).  Components with
        ``xmin == xmax`` are treated as equality constraints.
    lam0, mu0, z0:
        Optional warm-start values for the equality multipliers, inequality
        multipliers and slacks *in the internal ordering* (nonlinear rows
        first, then bound rows) — this is the interface Smart-PGSim's
        predicted warm-start point feeds.
    options:
        :class:`MIPSOptions`; defaults match MATPOWER.  ``kkt_solver``
        selects the linear-solver backend for the Newton systems.
    deadline:
        Optional absolute wall deadline (``time.monotonic()`` clock).
        Checked cooperatively between iterations; an expired deadline ends
        the solve with ``timed_out=True`` instead of raising, so serving
        requests degrade into structured outcomes.  Composes with the
        relative per-solve budget ``options.max_wall_seconds``.
    """
    opt = options or MIPSOptions()
    opt.validate()

    x0 = np.asarray(x0, dtype=float).copy()
    nx = x0.size
    xmin = np.full(nx, -np.inf) if xmin is None else np.asarray(xmin, dtype=float)
    xmax = np.full(nx, np.inf) if xmax is None else np.asarray(xmax, dtype=float)
    if xmin.shape != (nx,) or xmax.shape != (nx,):
        raise ValueError("xmin/xmax must match the size of x0")
    if np.any(xmin > xmax):
        raise ValueError("xmin > xmax for at least one variable")

    bounds = _BoundHandler(nx, xmin, xmax, opt.bound_eq_tol)
    if gh_fcn is not None and hess_fcn is None:
        raise ValueError("hess_fcn is required when nonlinear constraints are present")

    kkt_solver = make_kkt_solver(
        opt.kkt_solver,
        regularization=opt.kkt_reg,
        max_retries=opt.kkt_max_retries,
        factor_threads=opt.kkt_factor_threads,
    )
    assembler = _KKTAssembler()
    phase = {"eval": 0.0, "assembly": 0.0, "factorization": 0.0, "backsolve": 0.0}

    def eval_objective(x: np.ndarray) -> Tuple[float, np.ndarray, Optional[sp.spmatrix]]:
        out = f_fcn(x)
        if len(out) == 2:
            f, df = out
            d2f = None
        else:
            f, df, d2f = out
        return float(f) * opt.cost_mult, np.asarray(df, dtype=float) * opt.cost_mult, d2f

    def eval_constraints(x: np.ndarray):
        if gh_fcn is None:
            g_nl, h_nl, Jg_nl, Jh_nl = _empty_constraints(nx)
        else:
            g_nl, h_nl, Jg_nl, Jh_nl = gh_fcn(x)
            g_nl = np.asarray(g_nl, dtype=float)
            h_nl = np.asarray(h_nl, dtype=float)
        return bounds.assemble(x, g_nl, h_nl, Jg_nl, Jh_nl), (g_nl.size, h_nl.size)

    start_time = time.perf_counter()
    x = bounds.interior_start(x0)

    t_eval = time.perf_counter()
    (g, h, Jg, Jh), (n_eq_nl, n_ineq_nl) = eval_constraints(x)
    partition = bounds.partition(n_eq_nl, n_ineq_nl)
    neq, niq = g.size, h.size

    f, df, d2f_cached = eval_objective(x)
    entry_eval_seconds = time.perf_counter() - t_eval
    phase["eval"] += entry_eval_seconds

    # ---------------------------------------------------------------- warm start
    gamma = opt.z0
    if lam0 is not None:
        lam = np.asarray(lam0, dtype=float).copy()
        if lam.shape != (neq,):
            raise ValueError(f"lam0 must have length {neq}")
    else:
        lam = np.zeros(neq)

    z = opt.z0 * np.ones(niq)
    below = h < -opt.z0
    z[below] = -h[below]
    if z0 is not None:
        z_ws = np.asarray(z0, dtype=float)
        if z_ws.shape != (niq,):
            raise ValueError(f"z0 must have length {niq}")
        z = np.maximum(z_ws, 1e-10)

    mu = opt.z0 * np.ones(niq)
    big = gamma / np.maximum(z, 1e-300) > opt.z0
    mu[big] = gamma / z[big]
    if mu0 is not None:
        mu_ws = np.asarray(mu0, dtype=float)
        if mu_ws.shape != (niq,):
            raise ValueError(f"mu0 must have length {niq}")
        mu = np.maximum(mu_ws, 1e-10)
    if niq > 0 and (mu0 is not None or z0 is not None):
        gamma = max(opt.sigma * float(z @ mu) / niq, 1e-12)

    def lagrangian_gradient(df_, Jg_, Jh_, lam_, mu_) -> np.ndarray:
        Lx = df_.copy()
        if neq:
            Lx = Lx + Jg_.T @ lam_
        if niq:
            Lx = Lx + Jh_.T @ mu_
        return Lx

    Lx = lagrangian_gradient(df, Jg, Jh, lam, mu)
    f0 = f
    conds = _conditions(f, f0, g, h, Lx, x, z, lam, mu)
    feascond, gradcond, compcond, costcond = conds

    history = []
    converged = _is_converged(conds, opt)
    message = "converged" if converged else ""
    iterations = 0

    if opt.record_history:
        history.append(
            IterationRecord(
                iteration=0,
                step_size=0.0,
                feascond=feascond,
                gradcond=gradcond,
                compcond=compcond,
                costcond=costcond,
                objective=f / opt.cost_mult,
                gamma=gamma,
                alpha_primal=0.0,
                alpha_dual=0.0,
                eval_seconds=entry_eval_seconds,
            )
        )

    timed_out = False

    def _deadline_expired() -> bool:
        if deadline is not None and time.monotonic() >= deadline:
            return True
        if (
            opt.max_wall_seconds is not None
            and time.perf_counter() - start_time >= opt.max_wall_seconds
        ):
            return True
        return False

    while not converged and iterations < opt.max_it:
        # Cooperative wall-budget check, between iterations only: the iterate
        # is always left in a consistent state and the numerical trajectory
        # up to the cut-off is untouched.
        if _deadline_expired():
            timed_out = True
            message = "wall deadline exceeded"
            break
        iterations += 1

        # ------------------------------------------------------ Newton system
        lam_nl = lam[:n_eq_nl]
        mu_nl = mu[:n_ineq_nl]
        t_eval = time.perf_counter()
        if hess_fcn is not None:
            Lxx = hess_fcn(x, lam_nl, mu_nl, opt.cost_mult)
            # The OPF callbacks already return CSR; converting again would
            # copy the whole matrix every iteration for nothing.
            if not sp.isspmatrix_csr(Lxx):
                Lxx = sp.csr_matrix(Lxx)
        elif d2f_cached is not None:
            d2f = d2f_cached if sp.isspmatrix_csr(d2f_cached) else sp.csr_matrix(d2f_cached)
            Lxx = d2f * opt.cost_mult
        else:
            raise ValueError(
                "no Hessian available: provide hess_fcn or a 3-tuple objective"
            )
        eval_seconds = time.perf_counter() - t_eval
        phase["eval"] += eval_seconds

        t_asm = time.perf_counter()
        kkt, rhs = assembler.build(Lxx, Jg, Jh, Lx, g, h, z, mu, gamma)
        assembly_seconds = time.perf_counter() - t_asm
        phase["assembly"] += assembly_seconds

        try:
            sol = kkt_solver.solve(kkt, rhs)
        except KKTSolveError:
            phase["factorization"] += kkt_solver.factor_seconds
            message = "numerically failed (singular KKT system)"
            break
        factor_seconds = kkt_solver.factor_seconds
        backsolve_seconds = kkt_solver.backsolve_seconds
        # Optional iterative refinement: each sweep re-solves the residual
        # against the iteration's factorisation (one extra back-substitution
        # on retaining backends — the scalar multi-RHS reuse path).  Backends
        # without a retained factorisation simply skip refinement.  ``resolve``
        # reports per-call timings, so each sweep's backsolve is accumulated
        # here rather than by the backend.
        for _ in range(opt.kkt_refine_steps):
            try:
                sol = sol + kkt_solver.resolve(rhs - kkt @ sol)
            except KKTSolveError:
                break
            backsolve_seconds += kkt_solver.backsolve_seconds
        phase["factorization"] += factor_seconds
        phase["backsolve"] += backsolve_seconds
        if not np.all(np.isfinite(sol)):
            message = "numerically failed (non-finite Newton step)"
            break

        dx = sol[:nx]
        dlam = sol[nx:] if neq else np.zeros(0)
        if float(np.max(np.abs(dx))) > opt.max_stepsize:
            message = "numerically failed (step size exploded)"
            break

        if niq:
            dz = -h - z - Jh @ dx
            dmu = -mu + (gamma - mu * dz) / z
        else:
            dz = np.zeros(0)
            dmu = np.zeros(0)

        # --------------------------------------------------- step lengths
        alphap = 1.0
        if niq:
            neg = dz < 0
            if np.any(neg):
                alphap = min(opt.xi * float(np.min(z[neg] / -dz[neg])), 1.0)
        alphad = 1.0
        if niq:
            neg = dmu < 0
            if np.any(neg):
                alphad = min(opt.xi * float(np.min(mu[neg] / -dmu[neg])), 1.0)

        x = x + alphap * dx
        if niq:
            z = z + alphap * dz
            mu = mu + alphad * dmu
            gamma = opt.sigma * float(z @ mu) / niq
        if neq:
            lam = lam + alphad * dlam

        # ----------------------------------------------------- re-evaluate
        f0 = f
        t_eval = time.perf_counter()
        f, df, d2f_cached = eval_objective(x)
        (g, h, Jg, Jh), _ = eval_constraints(x)
        post_eval_seconds = time.perf_counter() - t_eval
        eval_seconds += post_eval_seconds
        phase["eval"] += post_eval_seconds
        Lx = lagrangian_gradient(df, Jg, Jh, lam, mu)
        conds = _conditions(f, f0, g, h, Lx, x, z, lam, mu)
        feascond, gradcond, compcond, costcond = conds

        if opt.record_history:
            history.append(
                IterationRecord(
                    iteration=iterations,
                    step_size=float(np.max(np.abs(dx))) if dx.size else 0.0,
                    feascond=feascond,
                    gradcond=gradcond,
                    compcond=compcond,
                    costcond=costcond,
                    objective=f / opt.cost_mult,
                    gamma=gamma,
                    alpha_primal=alphap,
                    alpha_dual=alphad,
                    eval_seconds=eval_seconds,
                    assembly_seconds=assembly_seconds,
                    factor_seconds=factor_seconds,
                    backsolve_seconds=backsolve_seconds,
                )
            )
        if opt.verbose:
            LOGGER.info(
                "it %3d  f=%.6e  feas=%.3e grad=%.3e comp=%.3e cost=%.3e",
                iterations,
                f,
                feascond,
                gradcond,
                compcond,
                costcond,
            )

        if _is_converged(conds, opt):
            converged = True
            message = "converged"
            break
        if not np.all(np.isfinite(x)):
            message = "numerically failed (non-finite iterate)"
            break
        if float(np.max(np.abs(x))) > opt.max_stepsize:
            message = "numerically failed (iterate diverged)"
            break

    if not converged and not message:
        message = "iteration limit reached"

    if kkt_solver.regularizations:
        LOGGER.warning(
            "KKT system was singular %d time(s); recovered with diagonal "
            "regularisation (ill-conditioned problem or multiplier start)",
            kkt_solver.regularizations,
        )

    elapsed = time.perf_counter() - start_time
    return MIPSResult(
        x=x,
        f=f / opt.cost_mult,
        converged=converged,
        iterations=iterations,
        lam=lam,
        mu=mu,
        z=z,
        partition=partition,
        message=message,
        history=history,
        elapsed_seconds=elapsed,
        phase_seconds=dict(phase),
        kkt_regularizations=kkt_solver.regularizations,
        kkt_telemetry=solver_telemetry(kkt_solver),
        timed_out=timed_out,
    )
