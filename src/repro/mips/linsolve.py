"""Pluggable sparse linear solvers for the MIPS KKT system.

Every MIPS Newton iteration solves one symmetric-indefinite sparse system::

    [ M   Jgᵀ ] [ dx   ]   [ -N ]
    [ Jg   0  ] [ dlam ] = [ -g ]

whose sparsity pattern is fixed once the constraint structure is known.  The
seed implementation called ``scipy.sparse.linalg.spsolve`` directly, redoing
the fill-reducing column ordering (the symbolic analysis) from scratch every
iteration and failing hard on a singular factorisation.  This module isolates
the solve behind a small interface (the architecture production interior-point
codes such as Pyomo's ``contrib.interior_point`` use) so backends can be
swapped via :class:`~repro.mips.options.MIPSOptions`:

* :class:`FactorizedSolver` — the default.  Factors with ``splu``, reuses the
  fill-reducing column permutation across pattern-identical systems (computed
  once, then applied as a cheap data gather + ``NATURAL``-ordered
  factorisation), retries a singular factorisation with escalating diagonal
  regularisation, and reports factor / back-substitution times separately.
* :class:`SpsolveSolver` — the seed behaviour, kept as a fallback backend and
  as the reference path for the KKT micro-benchmark.
* :class:`BlockDiagSolver` — the lockstep-batch backend.  The batched MIPS
  loop hands it the ``B`` active scenarios' same-pattern KKT systems as one
  ``(B, nnz)`` data plane; the backend assembles them into a single
  block-diagonal matrix and performs **one** supernodal ``splu`` factorisation
  plus **one** stacked backsolve per iteration.  The per-block column
  permutation is computed once and replicated, so each block's numerics are
  bit-identical to a per-slot :class:`FactorizedSolver` solve — backends stay
  drop-in swappable.  With ``factor_threads > 1`` the seasoned per-iteration
  factorisation fans the independent blocks out on a shared thread pool
  (bit-identical numerics, SuperLU releases the GIL).
* ``LDLSolver`` (``repro.mips.ldl``, registered as ``"ldl"``) — same-pattern
  sparse LDLᵀ refactorisation for the symmetric quasi-definite KKT: one
  symbolic analysis (fill-reducing ordering, elimination tree, cached L
  pattern) reused across every pattern-identical iteration, with only the
  batched numeric sweep rerun.

Every backend also exposes :meth:`KKTSolver.solve_many`, the multi-RHS
backsolve path: several right-hand sides against one matrix share a single
factorisation, and :meth:`KKTSolver.resolve` re-solves against the most
recent factorisation (the hook iterative refinement and predictor/corrector
schemes need).

Custom backends can be registered with :func:`register_kkt_solver`.
"""

from __future__ import annotations

import inspect
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils.sparse import BlockDiagPlan, csc_from_template, same_pattern

__all__ = [
    "KKTSolveError",
    "KKTSolver",
    "SpsolveSolver",
    "FactorizedSolver",
    "BlockDiagSolver",
    "BlockSolveReport",
    "available_kkt_solvers",
    "make_kkt_solver",
    "register_kkt_solver",
    "solver_telemetry",
]


class KKTSolveError(RuntimeError):
    """The KKT system could not be solved (singular beyond regularisation)."""


class KKTSolver:
    """Interface every KKT backend implements.

    ``solve`` returns the solution vector and fills :attr:`factor_seconds` /
    :attr:`backsolve_seconds` with the wall-clock split of the last call so
    the MIPS loop can attribute time per phase (the Fig. 5 breakdown).
    A solver instance lives for one ``mips()`` call and may cache state
    (factorisations, permutations) across iterations.
    """

    name = "base"

    def __init__(self) -> None:
        #: Seconds spent factorising in the most recent ``solve`` call.
        self.factor_seconds = 0.0
        #: Seconds spent on back-substitution in the most recent call.
        self.backsolve_seconds = 0.0
        #: Total diagonal-regularisation retries performed so far.
        self.regularizations = 0

    def solve(self, kkt: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        """Solve ``kkt @ x = rhs``; raise :class:`KKTSolveError` on failure."""
        raise NotImplementedError

    def solve_many(self, kkt: sp.spmatrix, rhs_block: np.ndarray) -> np.ndarray:
        """Solve ``kkt @ X = rhs_block`` for an ``(n, k)`` block of right-hand sides.

        All ``k`` systems share one matrix, so backends that factorise should
        factor **once** and back-substitute the whole block (predictor and
        corrector systems of one interior-point iteration are the canonical
        use).  The base implementation loops over columns — correct for any
        backend — and aggregates the per-call timings.
        """
        rhs_block = np.asarray(rhs_block, dtype=float)
        if rhs_block.ndim == 1:
            rhs_block = rhs_block[:, None]
        factor = backsolve = 0.0
        cols = []
        for j in range(rhs_block.shape[1]):
            cols.append(self.solve(kkt, rhs_block[:, j]))
            factor += self.factor_seconds
            backsolve += self.backsolve_seconds
        self.factor_seconds = factor
        self.backsolve_seconds = backsolve
        return np.stack(cols, axis=1)

    def resolve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve another right-hand side against the most recent factorisation.

        Backends that retain their factorisation answer from it (one extra
        back-substitution); the base implementation raises — callers fall back
        to a fresh :meth:`solve` when the backend cannot resolve.  Used by the
        scalar solver's iterative-refinement option
        (``MIPSOptions.kkt_refine_steps``).
        """
        raise KKTSolveError(f"backend {self.name!r} retains no factorisation to resolve against")


class SpsolveSolver(KKTSolver):
    """Seed-equivalent backend: one ``spsolve`` call per iteration.

    ``spsolve`` fuses symbolic analysis, numeric factorisation and the back
    substitution, so the whole call is charged to ``factor_seconds``.
    """

    name = "spsolve"

    def solve(self, kkt: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        try:
            sol = spla.spsolve(sp.csc_matrix(kkt), rhs)
        except Exception as exc:  # pragma: no cover - scipy error type varies
            self.factor_seconds = time.perf_counter() - start
            self.backsolve_seconds = 0.0
            raise KKTSolveError(f"spsolve failed: {exc}") from exc
        self.factor_seconds = time.perf_counter() - start
        self.backsolve_seconds = 0.0
        return np.asarray(sol, dtype=float)


class FactorizedSolver(KKTSolver):
    """``splu``-based backend with symbolic-pattern reuse and regularisation.

    The first factorisation of a given sparsity pattern computes a fill
    reducing column permutation (COLAMD).  While the pattern stays fixed —
    which it does for the entire MIPS iteration once the constraint structure
    is known — later systems are column-permuted with a precomputed data
    gather and factorised under the ``NATURAL`` ordering, skipping the
    symbolic analysis.  A singular factorisation is retried with an
    escalating diagonal shift ``reg * I`` instead of aborting the solve.

    Parameters
    ----------
    regularization:
        Initial diagonal shift applied on a singular factorisation.
    reg_growth:
        Multiplicative escalation factor between retries.
    max_retries:
        Number of regularised attempts before giving up.
    """

    name = "factorized"

    def __init__(
        self,
        regularization: float = 1e-8,
        reg_growth: float = 100.0,
        max_retries: int = 3,
        residual_tol: float = 1e-6,
    ) -> None:
        super().__init__()
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if reg_growth <= 1:
            raise ValueError("reg_growth must exceed 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if residual_tol <= 0:
            raise ValueError("residual_tol must be positive")
        self.regularization = regularization
        self.reg_growth = reg_growth
        self.max_retries = max_retries
        #: Relative residual bound for accepting a regularised solution.
        self.residual_tol = residual_tol
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._perm_c: Optional[np.ndarray] = None
        self._permuted: Optional[sp.csc_matrix] = None
        self._data_order: Optional[np.ndarray] = None
        self._identity: Optional[sp.csc_matrix] = None
        self._last_lu = None
        self._last_perm: Optional[np.ndarray] = None
        #: Factorisations that reused the cached column permutation.
        self.symbolic_reuses = 0
        #: Total numeric factorisations performed (fresh, replayed or shifted).
        self.numeric_refactorizations = 0

    # ------------------------------------------------------------------ pattern
    def _pattern_matches(self, kkt: sp.csc_matrix) -> bool:
        if self._perm_c is None:
            return False
        return same_pattern(kkt, self._indptr, self._indices)

    def _cache_pattern(self, kkt: sp.csc_matrix, lu) -> None:
        self._indptr = kkt.indptr
        self._indices = kkt.indices
        # SuperLU reports perm_c such that the low-fill matrix is the one whose
        # column ``perm_c[j]`` holds original column ``j`` — i.e. we must
        # reorder columns by the *inverse* permutation to reproduce it.
        colamd = np.asarray(lu.perm_c)
        perm = np.empty_like(colamd)
        perm[colamd] = np.arange(colamd.size)
        self._perm_c = perm
        # Column-permuting a CSC matrix only rearranges column slices of the
        # data/indices arrays; record that rearrangement once as a gather
        # index and build the permuted matrix from it directly.
        counts = np.diff(kkt.indptr)
        lens = counts[perm]
        starts = kkt.indptr[perm]
        concat_starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
        order = np.arange(kkt.nnz, dtype=np.intp) + np.repeat(starts - concat_starts, lens)
        indptr = np.concatenate([[0], np.cumsum(lens)]).astype(kkt.indptr.dtype)
        permuted = sp.csc_matrix(
            (kkt.data[order], kkt.indices[order], indptr), shape=kkt.shape
        )
        self._permuted = permuted
        self._data_order = order

    # -------------------------------------------------------------------- solve
    def _factorize(self, kkt: sp.csc_matrix):
        if self._pattern_matches(kkt):
            permuted = self._permuted
            permuted.data[...] = kkt.data[self._data_order]
            lu = spla.splu(permuted, permc_spec="NATURAL")
            self.symbolic_reuses += 1
            self.numeric_refactorizations += 1
            return lu, self._perm_c
        lu = spla.splu(kkt)
        self._cache_pattern(kkt, lu)
        self.numeric_refactorizations += 1
        return lu, None

    def solve(self, kkt: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        return self._solve_rhs(kkt, np.asarray(rhs, dtype=float))

    def solve_many(self, kkt: sp.spmatrix, rhs_block: np.ndarray) -> np.ndarray:
        """Multi-RHS fast path: one factorisation, one block back-substitution."""
        rhs_block = np.asarray(rhs_block, dtype=float)
        if rhs_block.ndim == 1:
            rhs_block = rhs_block[:, None]
        return self._solve_rhs(kkt, rhs_block)

    def resolve(self, rhs: np.ndarray) -> np.ndarray:
        """One extra back-substitution against the most recent factorisation.

        Like ``solve``, the timing attributes describe *this call only*:
        ``backsolve_seconds`` is assigned (not accumulated), so callers mixing
        ``solve``/``resolve`` sequences aggregate per-call splits themselves
        and phase totals never double-count.
        """
        if self._last_lu is None:
            raise KKTSolveError("no factorisation available to resolve against")
        start = time.perf_counter()
        sol = self._last_lu.solve(np.asarray(rhs, dtype=float))
        if self._last_perm is not None:
            unpermuted = np.empty_like(sol)
            unpermuted[self._last_perm] = sol
            sol = unpermuted
        self.backsolve_seconds = time.perf_counter() - start
        return np.asarray(sol, dtype=float)

    def _solve_rhs(self, kkt: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        kkt = sp.csc_matrix(kkt)
        kkt.sort_indices()
        start = time.perf_counter()
        self.backsolve_seconds = 0.0
        regularized = False
        try:
            try:
                lu, perm = self._factorize(kkt)
            except KKTSolveError:
                raise
            except RuntimeError:
                # SuperLU signals a singular factorisation as RuntimeError:
                # degrade to the regularised path instead of crashing.
                lu, perm = self._regularized_factorize(kkt)
                regularized = True
            except Exception as exc:
                # Anything else (memory exhaustion, corrupted inputs) is not a
                # singularity — fail as a solve error with the real cause.
                raise KKTSolveError(f"KKT factorisation failed: {exc}") from exc
        finally:
            self.factor_seconds = time.perf_counter() - start
        self._last_lu = lu
        self._last_perm = perm

        start = time.perf_counter()
        sol = lu.solve(rhs)
        if perm is not None:
            unpermuted = np.empty_like(sol)
            unpermuted[perm] = sol
            sol = unpermuted
        self.backsolve_seconds = time.perf_counter() - start
        if regularized:
            # The shifted system only approximates the true one; accept its
            # solution only when the residual on the *unshifted* KKT is small
            # (consistent singular systems pass, genuinely degraded steps
            # fail loudly like the seed path did).
            residual = float(np.max(np.abs(kkt @ sol - rhs)))
            if not np.isfinite(residual) or residual > self.residual_tol * (
                1.0 + float(np.max(np.abs(rhs)))
            ):
                raise KKTSolveError(
                    f"regularised KKT solution rejected (residual {residual:.3e})"
                )
            # Count only solutions actually recovered (factored with a shift
            # AND accepted by the residual check), so the counter and the
            # solver's end-of-run warning reflect real recoveries.
            self.regularizations += 1
        return np.asarray(sol, dtype=float)

    def _regularized_factorize(self, kkt: sp.csc_matrix):
        """Retry a singular factorisation with escalating diagonal shifts."""
        if self._identity is None or self._identity.shape != kkt.shape:
            self._identity = sp.identity(kkt.shape[0], format="csc")
        reg = self.regularization
        last_error: Optional[Exception] = None
        for _ in range(self.max_retries):
            shifted = (kkt + reg * self._identity).tocsc()
            try:
                # The shift changes the pattern only where the diagonal was
                # structurally empty, so factor without the permutation cache.
                lu = spla.splu(shifted)
            except RuntimeError as exc:
                last_error = exc
                reg *= self.reg_growth
                continue
            except Exception as exc:
                raise KKTSolveError(f"KKT factorisation failed: {exc}") from exc
            self.numeric_refactorizations += 1
            return lu, None
        raise KKTSolveError(
            f"KKT factorisation singular after {self.max_retries} "
            f"regularised retries (last shift {reg / self.reg_growth:g})"
        ) from last_error


#: Counter attributes harvested into per-solve factorisation telemetry.
_TELEMETRY_COUNTERS = (
    "symbolic_reuses",
    "numeric_refactorizations",
    "block_factorizations",
    "block_fallbacks",
    "accelerated_factorizations",
)


def solver_telemetry(solver: KKTSolver) -> Dict[str, int]:
    """Factorisation telemetry counters exposed by ``solver``.

    Backends advertise whichever of the known counters they maintain
    (symbolic-analysis reuses, numeric refactorisations, batched block
    factorisations, per-block fallbacks, accelerator hits); absent counters
    are simply omitted, so the harvest works uniformly across built-in and
    registered backends.  The MIPS loops surface this dict on
    ``MIPSResult.kkt_telemetry`` for the Fig. 5 symbolic-vs-numeric
    attribution.
    """
    out: Dict[str, int] = {}
    for name in _TELEMETRY_COUNTERS:
        value = getattr(solver, name, None)
        if value is not None:
            out[name] = int(value)
    return out


#: Shared per-process executors for threaded block factorisation, keyed by
#: worker count.  Threads are reused across solver instances and iterations
#: (SuperLU releases the GIL in its heavy kernels, so per-block work scales).
_FACTOR_EXECUTORS: Dict[int, ThreadPoolExecutor] = {}
_FACTOR_EXECUTOR_LOCK = threading.Lock()


def _factor_executor(workers: int) -> ThreadPoolExecutor:
    with _FACTOR_EXECUTOR_LOCK:
        pool = _FACTOR_EXECUTORS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="kkt-factor"
            )
            _FACTOR_EXECUTORS[workers] = pool
        return pool


class BlockSolveReport:
    """Outcome of one :meth:`BlockDiagSolver.solve_blocks` call.

    ``solutions`` holds one row per block (rows of failed blocks are NaN),
    ``failed`` lists the block indices whose system stayed unsolvable after
    regularisation, and ``regularizations`` counts the diagonal-shift
    recoveries performed for each block in this call.
    """

    __slots__ = ("solutions", "failed", "regularizations")

    def __init__(self, solutions: np.ndarray, failed: List[int], regularizations: np.ndarray):
        self.solutions = solutions
        self.failed = failed
        self.regularizations = regularizations


class BlockDiagSolver(KKTSolver):
    """Batched backend: one block-diagonal factorisation for ``B`` same-pattern systems.

    The lockstep batch solver produces, per iteration, the ``B`` active
    scenarios' KKT systems as one fixed CSC pattern plus a ``(B, nnz)`` data
    plane.  :meth:`solve_blocks` assembles them into a single block-diagonal
    matrix (index plan cached per active-set size) and performs one supernodal
    ``splu`` factorisation and one stacked backsolve — the per-slot
    factorise/backsolve loop disappears.

    **Numerical parity.**  The backend reproduces a per-slot
    :class:`FactorizedSolver` **bit for bit**.  The first call for a pattern
    solves each block individually through a scratch :class:`FactorizedSolver`
    (exactly the per-slot first-iteration semantics: a direct ``splu`` whose
    effective column order includes SuperLU's elimination-tree postorder) and
    harvests the cached column permutation.  Every later call replicates that
    permutation across the diagonal and factorises the big matrix under the
    ``NATURAL`` ordering — elimination then proceeds block by block in exactly
    the order the per-slot cached-permutation path uses, and SuperLU's row
    pivoting cannot cross structurally-empty off-diagonal blocks, so each
    block's solution is bit-identical to the per-slot path; iteration counts
    and objectives match exactly, which the cross-backend parity suite
    asserts.

    **Singular blocks.**  A singular block poisons the shared factorisation,
    so on failure the call degrades to per-block solves for this iteration:
    healthy blocks are factorised individually under the same cached
    permutation (still bit-identical) while singular blocks get the escalating
    diagonal-shift retry with the unshifted-residual acceptance check —
    neighbours of a regularised block are unaffected down to the last bit.

    Used as a scalar :class:`KKTSolver` (the ``mips()`` path), it behaves
    exactly like :class:`FactorizedSolver` via delegation, so
    ``kkt_solver="blockdiag"`` is safe to select globally.
    """

    name = "blockdiag"
    #: The batched MIPS loop checks this to route whole iterations here.
    supports_blocks = True

    def __init__(
        self,
        regularization: float = 1e-8,
        reg_growth: float = 100.0,
        max_retries: int = 3,
        residual_tol: float = 1e-6,
        factor_threads: int = 1,
    ) -> None:
        super().__init__()
        if factor_threads < 1:
            raise ValueError("factor_threads must be at least 1")
        self._scalar = FactorizedSolver(
            regularization=regularization,
            reg_growth=reg_growth,
            max_retries=max_retries,
            residual_tol=residual_tol,
        )
        self.regularization = regularization
        self.reg_growth = reg_growth
        self.max_retries = max_retries
        self.residual_tol = residual_tol
        #: Worker threads for per-block factor/backsolve (1 = serial, the
        #: single big block-diagonal factorisation).
        self.factor_threads = factor_threads
        self._pattern_key: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._perm: Optional[np.ndarray] = None
        self._order: Optional[np.ndarray] = None
        self._perm_indptr: Optional[np.ndarray] = None
        self._perm_indices: Optional[np.ndarray] = None
        self._plans: Dict[int, BlockDiagPlan] = {}
        #: Batched factorisations performed (one per lockstep iteration).
        self.block_factorizations = 0
        #: Iterations that fell back to per-block solves (singular block present).
        self.block_fallbacks = 0
        #: Factorisations that reused the cached column permutation.
        self.symbolic_reuses = 0
        #: Total numeric factorisations performed across scalar and block paths.
        self.numeric_refactorizations = 0

    # ----------------------------------------------------------- scalar interface
    def _mirror_scalar(self) -> None:
        self.factor_seconds = self._scalar.factor_seconds
        self.backsolve_seconds = self._scalar.backsolve_seconds
        self.regularizations = self._scalar.regularizations
        self.symbolic_reuses = self._scalar.symbolic_reuses
        self.numeric_refactorizations = self._scalar.numeric_refactorizations

    def solve(self, kkt: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        try:
            return self._scalar.solve(kkt, rhs)
        finally:
            self._mirror_scalar()

    def solve_many(self, kkt: sp.spmatrix, rhs_block: np.ndarray) -> np.ndarray:
        try:
            return self._scalar.solve_many(kkt, rhs_block)
        finally:
            self._mirror_scalar()

    def resolve(self, rhs: np.ndarray) -> np.ndarray:
        try:
            return self._scalar.resolve(rhs)
        finally:
            self._mirror_scalar()

    # ------------------------------------------------------------ block interface
    def _make_slot_solver(self) -> FactorizedSolver:
        return FactorizedSolver(
            regularization=self.regularization,
            reg_growth=self.reg_growth,
            max_retries=self.max_retries,
            residual_tol=self.residual_tol,
        )

    def _run_blocks(
        self,
        template: sp.csc_matrix,
        data_plane: np.ndarray,
        rhs_plane: np.ndarray,
        solutions: np.ndarray,
        regs: np.ndarray,
        failed: List[int],
        seeded: bool,
    ) -> Tuple[float, float]:
        """Per-block solves through scratch :class:`FactorizedSolver` instances.

        ``seeded=False`` runs the per-slot *direct*-``splu`` first-iteration
        semantics (and harvests the column-permutation cache of the first
        cleanly factorised block); ``seeded=True`` pre-seeds every scratch
        solver with the shared cached permutation so healthy blocks replay
        the ``NATURAL`` factorisation bit-identically to the big
        block-diagonal factor.  Blocks are independent, so with
        ``factor_threads > 1`` they are dispatched on the shared
        :func:`_factor_executor` thread pool (SuperLU releases the GIL in its
        numeric kernels); results, counters and the permutation harvest are
        aggregated in block order either way, keeping every outcome —
        solutions included — bit-identical to the serial path.  Returns the
        summed per-block ``(factor_seconds, backsolve_seconds)``.
        """
        n = template.shape[0]

        def run(b: int):
            slot = self._make_slot_solver()
            if seeded:
                slot._indptr = template.indptr
                slot._indices = template.indices
                slot._perm_c = self._perm
                slot._data_order = self._order
                slot._permuted = sp.csc_matrix(
                    (np.empty(template.nnz), self._perm_indices, self._perm_indptr),
                    shape=(n, n),
                )
            try:
                sol = slot.solve(
                    csc_from_template(template, data_plane[b]), rhs_plane[b]
                )
            except KKTSolveError:
                sol = None
            return slot, sol

        count = data_plane.shape[0]
        if self.factor_threads > 1 and count > 1:
            results = list(
                _factor_executor(self.factor_threads).map(run, range(count))
            )
        else:
            results = [run(b) for b in range(count)]

        factor = backsolve = 0.0
        for b, (slot, sol) in enumerate(results):
            if sol is None:
                solutions[b] = np.nan
                failed.append(b)
            else:
                solutions[b] = sol
                regs[b] += slot.regularizations
                self.regularizations += slot.regularizations
            factor += slot.factor_seconds
            backsolve += slot.backsolve_seconds
            self.numeric_refactorizations += slot.numeric_refactorizations
            self.symbolic_reuses += slot.symbolic_reuses
            if not seeded and self._perm is None and slot._perm_c is not None:
                # Harvest the pattern cache of the first cleanly factorised
                # block: identical formula to FactorizedSolver._cache_pattern,
                # so the NATURAL replay matches the per-slot one bit for bit.
                self._perm = slot._perm_c
                self._order = slot._data_order
                self._perm_indptr = slot._permuted.indptr
                self._perm_indices = slot._permuted.indices
        return factor, backsolve

    def _first_call_blocks(
        self,
        template: sp.csc_matrix,
        data_plane: np.ndarray,
        rhs_plane: np.ndarray,
        solutions: np.ndarray,
        regs: np.ndarray,
        failed: List[int],
    ) -> None:
        """First iteration for a pattern: per-block direct ``splu`` solves.

        A direct ``splu`` composes an elimination-tree postorder into its
        effective column order, which the permute-then-``NATURAL`` replay does
        not reproduce — so to stay bit-identical to a per-slot
        :class:`FactorizedSolver` (whose first call *is* a direct ``splu``)
        the first iteration runs the exact same per-block path, and the block
        factorisation takes over from the second iteration on, using the
        column permutation cached here.
        """
        factor, backsolve = self._run_blocks(
            template, data_plane, rhs_plane, solutions, regs, failed, seeded=False
        )
        self.factor_seconds = factor
        self.backsolve_seconds = backsolve

    def _plan_for(self, blocks: int, n: int) -> BlockDiagPlan:
        plan = self._plans.get(blocks)
        if plan is None:
            plan = BlockDiagPlan(
                self._perm_indptr, self._perm_indices, (n, n), blocks, format="csc"
            )
            self._plans[blocks] = plan
        return plan

    def _solve_block_fallback(
        self,
        template: sp.csc_matrix,
        data_plane: np.ndarray,
        rhs_plane: np.ndarray,
        solutions: np.ndarray,
        regs: np.ndarray,
        failed: List[int],
    ) -> None:
        """Per-block degradation for iterations with a singular block.

        Every block runs through a scratch :class:`FactorizedSolver` whose
        pattern cache is pre-seeded with the shared column permutation, so
        each block follows *exactly* the per-slot code path: healthy blocks
        factorise under the cached ``NATURAL`` replay (bit-identical to what
        the big factorisation would have produced), singular blocks get the
        escalating diagonal-shift retry with the unshifted-residual check —
        and neighbours of a regularised block are unaffected down to the last
        bit.
        """
        self._run_blocks(
            template, data_plane, rhs_plane, solutions, regs, failed, seeded=True
        )

    def solve_blocks(
        self,
        template: sp.csc_matrix,
        data_plane: np.ndarray,
        rhs_plane: np.ndarray,
        direct: bool = False,
    ) -> BlockSolveReport:
        """Solve ``B`` same-pattern systems with one block-diagonal factorisation.

        ``template`` carries the shared CSC pattern, ``data_plane`` is the
        ``(B, nnz)`` numeric data (row ``b`` in the template's storage order)
        and ``rhs_plane`` the ``(B, n)`` right-hand sides.  Fills
        :attr:`factor_seconds` / :attr:`backsolve_seconds` with the call's
        wall-clock split and returns a :class:`BlockSolveReport`.

        ``direct=True`` forces the per-block direct-``splu`` path regardless
        of the cached permutation.  The batched MIPS loop uses it for blocks
        in their *first* iteration — scenarios enrolled into a running
        lockstep batch by the retire-and-refill feed — because a per-slot
        :class:`FactorizedSolver`'s first factorisation is a direct ``splu``
        and only the replay of its harvested permutation is bit-reproducible;
        routing fresh blocks through the same direct path keeps a scenario's
        trajectory independent of *when* it joined the batch.
        """
        # Plane slices produced by fancy indexing may be column-major; SuperLU
        # needs C-contiguous rows, so normalise the layout once up front.
        data_plane = np.ascontiguousarray(np.atleast_2d(np.asarray(data_plane, dtype=float)))
        rhs_plane = np.ascontiguousarray(np.atleast_2d(np.asarray(rhs_plane, dtype=float)))
        blocks, n = rhs_plane.shape
        if data_plane.shape[0] != blocks:
            raise ValueError("data plane and rhs plane must have matching batch sizes")
        solutions = np.empty((blocks, n))
        regs = np.zeros(blocks, dtype=int)
        failed: List[int] = []

        if self._pattern_key is None or not same_pattern(
            template, self._pattern_key[0], self._pattern_key[1]
        ):
            # Full index-array comparison (not just shape/nnz), mirroring
            # FactorizedSolver: a different pattern must never be scattered
            # through a stale permutation plan.
            self._pattern_key = (template.indptr, template.indices)
            self._perm = None
            self._plans = {}
        if direct or self._perm is None:
            # First call for this pattern (or explicitly fresh blocks):
            # per-block direct solves (bitwise per-slot first-iteration
            # semantics) that also seed the column-permutation cache.
            self._first_call_blocks(template, data_plane, rhs_plane, solutions, regs, failed)
            return BlockSolveReport(solutions, failed, regs)

        if self.factor_threads > 1 and blocks > 1:
            # Threaded seasoned path: factor the independent blocks
            # concurrently through permutation-seeded scratch solvers instead
            # of one serial big factorisation.  Each block replays the shared
            # cached ``NATURAL`` permutation — the same replay the big
            # block-diagonal factor performs — so per-block numerics are
            # bit-identical to the serial path.
            self.block_factorizations += 1
            factor, backsolve = self._run_blocks(
                template, data_plane, rhs_plane, solutions, regs, failed, seeded=True
            )
            self.factor_seconds = factor
            self.backsolve_seconds = backsolve
            return BlockSolveReport(solutions, failed, regs)

        start = time.perf_counter()
        data_perm = np.ascontiguousarray(data_plane[:, self._order])
        plan = self._plan_for(blocks, n)
        big = plan.matrix(data_perm)
        try:
            lu = spla.splu(big, permc_spec="NATURAL")
        except RuntimeError:
            # At least one singular block: degrade to per-block solves so the
            # healthy blocks stay bit-identical and only the singular ones pay
            # for (and are changed by) regularisation.
            self.block_fallbacks += 1
            self._solve_block_fallback(
                template, data_plane, rhs_plane, solutions, regs, failed
            )
            self.factor_seconds = time.perf_counter() - start
            self.backsolve_seconds = 0.0
            return BlockSolveReport(solutions, failed, regs)
        except Exception as exc:
            self.factor_seconds = time.perf_counter() - start
            self.backsolve_seconds = 0.0
            raise KKTSolveError(f"KKT factorisation failed: {exc}") from exc
        self.block_factorizations += 1
        # One batched numeric factorisation over the cached symbolic analysis
        # (shared column permutation + scatter order) covers every block.
        self.symbolic_reuses += 1
        self.numeric_refactorizations += 1
        self.factor_seconds = time.perf_counter() - start

        start = time.perf_counter()
        stacked = lu.solve(rhs_plane.reshape(-1))
        solutions[:, self._perm] = stacked.reshape(blocks, n)
        self.backsolve_seconds = time.perf_counter() - start
        return BlockSolveReport(solutions, failed, regs)


# ---------------------------------------------------------------------- registry
_SOLVERS: Dict[str, Callable[..., KKTSolver]] = {
    SpsolveSolver.name: SpsolveSolver,
    FactorizedSolver.name: FactorizedSolver,
    BlockDiagSolver.name: BlockDiagSolver,
}


def available_kkt_solvers() -> tuple:
    """Names accepted by :func:`make_kkt_solver` (and ``MIPSOptions.kkt_solver``)."""
    return tuple(sorted(_SOLVERS))


def register_kkt_solver(name: str, factory: Callable[..., KKTSolver]) -> None:
    """Register a custom KKT backend under ``name``.

    The registry is per-process.  Spawn-based worker pools (e.g.
    ``repro.parallel.pool``) start fresh interpreters, so a backend selected
    via ``MIPSOptions.kkt_solver`` must be registered at import time of a
    module the workers import — a registration done only in the parent's
    ``__main__`` is invisible to them.
    """
    if not name:
        raise ValueError("solver name must be non-empty")
    _SOLVERS[name] = factory


def make_kkt_solver(name: str, **kwargs) -> KKTSolver:
    """Instantiate the KKT backend registered under ``name``.

    ``kwargs`` are filtered against the factory's signature so callers (the
    MIPS loop) can pass the full option set uniformly: backends receive the
    parameters they support and the rest are dropped, regardless of which
    backend — built-in or registered — is selected.
    """
    try:
        factory = _SOLVERS[name]
    except KeyError:
        raise ValueError(
            f"unknown KKT solver {name!r}; available: {', '.join(available_kkt_solvers())}"
        ) from None
    if kwargs:
        try:
            params = inspect.signature(factory).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            params = None
        if params is not None and not any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        ):
            kwargs = {k: v for k, v in kwargs.items() if k in params}
    return factory(**kwargs)
