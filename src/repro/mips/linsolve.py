"""Pluggable sparse linear solvers for the MIPS KKT system.

Every MIPS Newton iteration solves one symmetric-indefinite sparse system::

    [ M   Jgᵀ ] [ dx   ]   [ -N ]
    [ Jg   0  ] [ dlam ] = [ -g ]

whose sparsity pattern is fixed once the constraint structure is known.  The
seed implementation called ``scipy.sparse.linalg.spsolve`` directly, redoing
the fill-reducing column ordering (the symbolic analysis) from scratch every
iteration and failing hard on a singular factorisation.  This module isolates
the solve behind a small interface (the architecture production interior-point
codes such as Pyomo's ``contrib.interior_point`` use) so backends can be
swapped via :class:`~repro.mips.options.MIPSOptions`:

* :class:`FactorizedSolver` — the default.  Factors with ``splu``, reuses the
  fill-reducing column permutation across pattern-identical systems (computed
  once, then applied as a cheap data gather + ``NATURAL``-ordered
  factorisation), retries a singular factorisation with escalating diagonal
  regularisation, and reports factor / back-substitution times separately.
* :class:`SpsolveSolver` — the seed behaviour, kept as a fallback backend and
  as the reference path for the KKT micro-benchmark.

Custom backends can be registered with :func:`register_kkt_solver`.
"""

from __future__ import annotations

import inspect
import time
from typing import Callable, Dict, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils.sparse import same_pattern

__all__ = [
    "KKTSolveError",
    "KKTSolver",
    "SpsolveSolver",
    "FactorizedSolver",
    "available_kkt_solvers",
    "make_kkt_solver",
    "register_kkt_solver",
]


class KKTSolveError(RuntimeError):
    """The KKT system could not be solved (singular beyond regularisation)."""


class KKTSolver:
    """Interface every KKT backend implements.

    ``solve`` returns the solution vector and fills :attr:`factor_seconds` /
    :attr:`backsolve_seconds` with the wall-clock split of the last call so
    the MIPS loop can attribute time per phase (the Fig. 5 breakdown).
    A solver instance lives for one ``mips()`` call and may cache state
    (factorisations, permutations) across iterations.
    """

    name = "base"

    def __init__(self) -> None:
        #: Seconds spent factorising in the most recent ``solve`` call.
        self.factor_seconds = 0.0
        #: Seconds spent on back-substitution in the most recent call.
        self.backsolve_seconds = 0.0
        #: Total diagonal-regularisation retries performed so far.
        self.regularizations = 0

    def solve(self, kkt: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        """Solve ``kkt @ x = rhs``; raise :class:`KKTSolveError` on failure."""
        raise NotImplementedError


class SpsolveSolver(KKTSolver):
    """Seed-equivalent backend: one ``spsolve`` call per iteration.

    ``spsolve`` fuses symbolic analysis, numeric factorisation and the back
    substitution, so the whole call is charged to ``factor_seconds``.
    """

    name = "spsolve"

    def solve(self, kkt: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        start = time.perf_counter()
        try:
            sol = spla.spsolve(sp.csc_matrix(kkt), rhs)
        except Exception as exc:  # pragma: no cover - scipy error type varies
            self.factor_seconds = time.perf_counter() - start
            self.backsolve_seconds = 0.0
            raise KKTSolveError(f"spsolve failed: {exc}") from exc
        self.factor_seconds = time.perf_counter() - start
        self.backsolve_seconds = 0.0
        return np.asarray(sol, dtype=float)


class FactorizedSolver(KKTSolver):
    """``splu``-based backend with symbolic-pattern reuse and regularisation.

    The first factorisation of a given sparsity pattern computes a fill
    reducing column permutation (COLAMD).  While the pattern stays fixed —
    which it does for the entire MIPS iteration once the constraint structure
    is known — later systems are column-permuted with a precomputed data
    gather and factorised under the ``NATURAL`` ordering, skipping the
    symbolic analysis.  A singular factorisation is retried with an
    escalating diagonal shift ``reg * I`` instead of aborting the solve.

    Parameters
    ----------
    regularization:
        Initial diagonal shift applied on a singular factorisation.
    reg_growth:
        Multiplicative escalation factor between retries.
    max_retries:
        Number of regularised attempts before giving up.
    """

    name = "factorized"

    def __init__(
        self,
        regularization: float = 1e-8,
        reg_growth: float = 100.0,
        max_retries: int = 3,
        residual_tol: float = 1e-6,
    ) -> None:
        super().__init__()
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if reg_growth <= 1:
            raise ValueError("reg_growth must exceed 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if residual_tol <= 0:
            raise ValueError("residual_tol must be positive")
        self.regularization = regularization
        self.reg_growth = reg_growth
        self.max_retries = max_retries
        #: Relative residual bound for accepting a regularised solution.
        self.residual_tol = residual_tol
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._perm_c: Optional[np.ndarray] = None
        self._permuted: Optional[sp.csc_matrix] = None
        self._data_order: Optional[np.ndarray] = None
        self._identity: Optional[sp.csc_matrix] = None
        #: Factorisations that reused the cached column permutation.
        self.symbolic_reuses = 0

    # ------------------------------------------------------------------ pattern
    def _pattern_matches(self, kkt: sp.csc_matrix) -> bool:
        if self._perm_c is None:
            return False
        return same_pattern(kkt, self._indptr, self._indices)

    def _cache_pattern(self, kkt: sp.csc_matrix, lu) -> None:
        self._indptr = kkt.indptr
        self._indices = kkt.indices
        # SuperLU reports perm_c such that the low-fill matrix is the one whose
        # column ``perm_c[j]`` holds original column ``j`` — i.e. we must
        # reorder columns by the *inverse* permutation to reproduce it.
        colamd = np.asarray(lu.perm_c)
        perm = np.empty_like(colamd)
        perm[colamd] = np.arange(colamd.size)
        self._perm_c = perm
        # Column-permuting a CSC matrix only rearranges column slices of the
        # data/indices arrays; record that rearrangement once as a gather
        # index and build the permuted matrix from it directly.
        counts = np.diff(kkt.indptr)
        lens = counts[perm]
        starts = kkt.indptr[perm]
        concat_starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
        order = np.arange(kkt.nnz, dtype=np.intp) + np.repeat(starts - concat_starts, lens)
        indptr = np.concatenate([[0], np.cumsum(lens)]).astype(kkt.indptr.dtype)
        permuted = sp.csc_matrix(
            (kkt.data[order], kkt.indices[order], indptr), shape=kkt.shape
        )
        self._permuted = permuted
        self._data_order = order

    # -------------------------------------------------------------------- solve
    def _factorize(self, kkt: sp.csc_matrix):
        if self._pattern_matches(kkt):
            permuted = self._permuted
            permuted.data[...] = kkt.data[self._data_order]
            lu = spla.splu(permuted, permc_spec="NATURAL")
            self.symbolic_reuses += 1
            return lu, self._perm_c
        lu = spla.splu(kkt)
        self._cache_pattern(kkt, lu)
        return lu, None

    def solve(self, kkt: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        kkt = sp.csc_matrix(kkt)
        kkt.sort_indices()
        start = time.perf_counter()
        self.backsolve_seconds = 0.0
        regularized = False
        try:
            try:
                lu, perm = self._factorize(kkt)
            except KKTSolveError:
                raise
            except RuntimeError:
                # SuperLU signals a singular factorisation as RuntimeError:
                # degrade to the regularised path instead of crashing.
                lu, perm = self._regularized_factorize(kkt)
                regularized = True
            except Exception as exc:
                # Anything else (memory exhaustion, corrupted inputs) is not a
                # singularity — fail as a solve error with the real cause.
                raise KKTSolveError(f"KKT factorisation failed: {exc}") from exc
        finally:
            self.factor_seconds = time.perf_counter() - start

        start = time.perf_counter()
        sol = lu.solve(rhs)
        if perm is not None:
            unpermuted = np.empty_like(sol)
            unpermuted[perm] = sol
            sol = unpermuted
        self.backsolve_seconds = time.perf_counter() - start
        if regularized:
            # The shifted system only approximates the true one; accept its
            # solution only when the residual on the *unshifted* KKT is small
            # (consistent singular systems pass, genuinely degraded steps
            # fail loudly like the seed path did).
            residual = float(np.max(np.abs(kkt @ sol - rhs)))
            if not np.isfinite(residual) or residual > self.residual_tol * (
                1.0 + float(np.max(np.abs(rhs)))
            ):
                raise KKTSolveError(
                    f"regularised KKT solution rejected (residual {residual:.3e})"
                )
            # Count only solutions actually recovered (factored with a shift
            # AND accepted by the residual check), so the counter and the
            # solver's end-of-run warning reflect real recoveries.
            self.regularizations += 1
        return np.asarray(sol, dtype=float)

    def _regularized_factorize(self, kkt: sp.csc_matrix):
        """Retry a singular factorisation with escalating diagonal shifts."""
        if self._identity is None or self._identity.shape != kkt.shape:
            self._identity = sp.identity(kkt.shape[0], format="csc")
        reg = self.regularization
        last_error: Optional[Exception] = None
        for _ in range(self.max_retries):
            shifted = (kkt + reg * self._identity).tocsc()
            try:
                # The shift changes the pattern only where the diagonal was
                # structurally empty, so factor without the permutation cache.
                lu = spla.splu(shifted)
            except RuntimeError as exc:
                last_error = exc
                reg *= self.reg_growth
                continue
            except Exception as exc:
                raise KKTSolveError(f"KKT factorisation failed: {exc}") from exc
            return lu, None
        raise KKTSolveError(
            f"KKT factorisation singular after {self.max_retries} "
            f"regularised retries (last shift {reg / self.reg_growth:g})"
        ) from last_error


# ---------------------------------------------------------------------- registry
_SOLVERS: Dict[str, Callable[..., KKTSolver]] = {
    SpsolveSolver.name: SpsolveSolver,
    FactorizedSolver.name: FactorizedSolver,
}


def available_kkt_solvers() -> tuple:
    """Names accepted by :func:`make_kkt_solver` (and ``MIPSOptions.kkt_solver``)."""
    return tuple(sorted(_SOLVERS))


def register_kkt_solver(name: str, factory: Callable[..., KKTSolver]) -> None:
    """Register a custom KKT backend under ``name``.

    The registry is per-process.  Spawn-based worker pools (e.g.
    ``repro.parallel.pool``) start fresh interpreters, so a backend selected
    via ``MIPSOptions.kkt_solver`` must be registered at import time of a
    module the workers import — a registration done only in the parent's
    ``__main__`` is invisible to them.
    """
    if not name:
        raise ValueError("solver name must be non-empty")
    _SOLVERS[name] = factory


def make_kkt_solver(name: str, **kwargs) -> KKTSolver:
    """Instantiate the KKT backend registered under ``name``.

    ``kwargs`` are filtered against the factory's signature so callers (the
    MIPS loop) can pass the full option set uniformly: backends receive the
    parameters they support and the rest are dropped, regardless of which
    backend — built-in or registered — is selected.
    """
    try:
        factory = _SOLVERS[name]
    except KeyError:
        raise ValueError(
            f"unknown KKT solver {name!r}; available: {', '.join(available_kkt_solvers())}"
        ) from None
    if kwargs:
        try:
            params = inspect.signature(factory).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            params = None
        if params is not None and not any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
        ):
            kwargs = {k: v for k, v in kwargs.items() if k in params}
    return factory(**kwargs)
