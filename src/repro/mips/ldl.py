"""Same-pattern sparse LDLᵀ refactorisation backend for the MIPS KKT system.

SuperLU (the ``factorized``/``blockdiag`` backends) re-runs numeric *pivoting*
from scratch every MIPS iteration because scipy exposes no same-pattern
refactorisation.  The KKT matrix is symmetric quasi-definite with a fixed
sparsity pattern, which admits the classical split production interior-point
codes use (pyomo's ``contrib.interior_point`` drives MUMPS through exactly
this): a **symbolic phase** — fill-reducing ordering, elimination tree,
``L``-pattern and a level schedule, computed once per pattern — and a
**numeric phase** that refactorises new data over the frozen pattern with no
symbolic work and roughly half the flops of an LU.

The numeric phase here is *level-scheduled and batched*: columns of ``L`` are
grouped by elimination-tree height, every level is one vectorised NumPy
update over a ``(B, n + nnz(L))`` "column-space" plane (diagonal ``D`` slots
followed by the ``L`` entries), and the whole batch of ``B`` same-pattern
systems factorises simultaneously.  Per-row arithmetic is element-wise along
the batch axis, so each system's numerics are independent of which other
systems share the batch — the enrollment-invariance property the lockstep
batch solver requires — and the Python-step count per factorisation is the
number of tree levels, not ``n`` or ``nnz(L)``.

Exact zero pivots (a zero-diagonal constraint row eliminated before its
coupled primal rows) are handled by qdldl-style **dynamic pivot clamping**:
a pivot whose finalised magnitude is below a tiny signed threshold is
replaced by the threshold — negative on the constraint block, preserving
quasi-definite inertia — so only degenerate pivots are perturbed and healthy
rows keep full factorisation accuracy.  Solutions are polished with guarded
per-row iterative refinement against the *true* (unsymmetrised, unperturbed)
matrix, so the backend reproduces the ``factorized`` backend's trajectories
at solver precision: the cross-backend parity suite runs the full QP/OPF
corpus over it with identical iteration counts.  Singular systems follow the
same contract as :class:`~repro.mips.linsolve.FactorizedSolver`: an
escalating *signed* diagonal shift (regularisation respecting the
quasi-definite sign structure) whose solution is accepted only when the
residual on the unshifted system is small.

Optional accelerators (``qdldl``, ``scikit-sparse``'s CHOLMOD) are used for
scalar solves when importable — :func:`load_ldl_accelerator` probes for them —
and the pure-NumPy path is the default so the repo works with no optional
dependencies.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.mips.linsolve import (
    BlockSolveReport,
    KKTSolveError,
    KKTSolver,
    register_kkt_solver,
)
from repro.utils.sparse import (
    batched_matvec,
    same_pattern,
    symmetric_lower_map,
    transpose_plan,
)

__all__ = ["LDLSolver", "LDLSymbolic", "load_ldl_accelerator"]


# ------------------------------------------------------------------ symbolic
class _Level:
    """Per-level slices of the symbolic plans (one elimination-tree height)."""

    __slots__ = (
        "cols",
        "pair_a", "pair_b", "pair_starts", "pair_targets",
        "div_pos", "div_dslot",
        "fwd_pos", "fwd_col", "fwd_starts", "fwd_rows",
        "bwd_pos", "bwd_row", "bwd_starts", "bwd_cols",
    )


class LDLSymbolic:
    """Symbolic analysis of one KKT sparsity pattern under one ordering.

    Holds everything the numeric phase replays: the permuted lower-triangle
    gather (:func:`~repro.utils.sparse.symmetric_lower_map`), the elimination
    tree and the ``L`` pattern derived from it, the height-level schedule, and
    the per-level gather/reduce index plans for the factorisation and both
    triangular solves.  Construction is two-stage so an ordering *candidate*
    can be costed from the cheap pattern analysis alone; :meth:`finalize`
    expands the numeric plans only for the chosen ordering.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, n: int, perm: np.ndarray):
        self.n = int(n)
        self.perm = np.asarray(perm, dtype=np.int64)
        self.template_indptr = indptr
        self.template_indices = indices
        self._build_pattern(indptr, indices)
        self._finalized = False

    # -------------------------------------------------------- stage 1: pattern
    def _build_pattern(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        n = self.n
        low_indptr, low_rows, low_src = symmetric_lower_map(indptr, indices, n, self.perm)
        self.low_indptr = low_indptr
        self.low_rows = low_rows
        self.low_src = low_src
        low_cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(low_indptr))

        # Transpose view of the strict lower pattern: for each row j, the
        # columns k < j with a stored entry — the input the etree walk needs.
        strict = low_rows != low_cols
        srow, scol = low_rows[strict], low_cols[strict]
        order = np.argsort(srow, kind="stable")
        rptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(srow, minlength=n), out=rptr[1:])
        rcols = scol[order]

        # Elimination tree (Liu's algorithm with path compression).
        parent = np.full(n, -1, dtype=np.int64)
        ancestor = np.full(n, -1, dtype=np.int64)
        for j in range(n):
            for k in rcols[rptr[j]:rptr[j + 1]]:
                r = int(k)
                while ancestor[r] != -1 and ancestor[r] != j:
                    nxt = int(ancestor[r])
                    ancestor[r] = j
                    r = nxt
                if ancestor[r] == -1:
                    ancestor[r] = j
                    parent[r] = j
        self.parent = parent

        # Row patterns of L: row i holds every node on the tree paths from
        # the stored entries (i, k) up towards i.  Each walk step discovers a
        # new entry of L, so the total work is O(nnz(L)).
        marker = np.full(n, -1, dtype=np.int64)
        li: List[int] = []
        lj: List[int] = []
        for i in range(n):
            marker[i] = i
            for k in rcols[rptr[i]:rptr[i + 1]]:
                r = int(k)
                while marker[r] != i:
                    marker[r] = i
                    li.append(i)
                    lj.append(r)
                    r = int(parent[r])
        lrow = np.asarray(li, dtype=np.int64)
        lcol = np.asarray(lj, dtype=np.int64)
        # Canonical CSC order of L's strict lower pattern.
        order = np.lexsort((lrow, lcol))
        lrow, lcol = lrow[order], lcol[order]
        self.l_rows = lrow
        l_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(lcol, minlength=n), out=l_indptr[1:])
        self.l_indptr = l_indptr
        self.nnzL = int(lrow.size)
        self.l_keys = lcol * n + lrow  # sorted ascending by construction

        # Height levels: leaves are level 0, a parent sits above its children.
        level = np.zeros(n, dtype=np.int64)
        for j in range(n):
            p = parent[j]
            if p >= 0 and level[p] <= level[j]:
                level[p] = level[j] + 1
        self.level = level
        self.n_levels = int(level.max()) + 1 if n else 0

        counts = np.diff(l_indptr)
        self.pair_count = int(np.sum(counts * (counts + 1) // 2))
        #: Heuristic numeric-phase cost: contribution pairs dominate the
        #: arithmetic, levels dominate the per-step Python overhead.
        self.cost = float(self.pair_count) + 150.0 * self.n_levels

    # ---------------------------------------------------------- stage 2: plans
    def finalize(self) -> "LDLSymbolic":
        """Expand the per-level gather/reduce plans (idempotent)."""
        if self._finalized:
            return self
        n = self.n
        l_indptr, l_rows, l_keys = self.l_indptr, self.l_rows, self.l_keys
        level = self.level

        # Initial scatter: original CSC data -> column-space plane positions.
        low_cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.low_indptr))
        diag = self.low_rows == low_cols
        q = np.searchsorted(l_keys, low_cols * n + self.low_rows)
        self.init_tpos = np.where(diag, low_cols, n + q)
        self.init_src = self.low_src

        # Contribution pairs: for column k with L rows r_0 < … < r_{m-1}, every
        # ordered pair (a <= b) contributes W[r_b, k] * V[r_a, k] to output
        # (r_b, r_a) — the D slot of r_a when a == b.  The fill rule guarantees
        # the target exists in L's pattern.  Applied at level(r_a).
        pa: List[np.ndarray] = []
        pb: List[np.ndarray] = []
        tcol: List[np.ndarray] = []
        trow: List[np.ndarray] = []
        for k in range(n):
            lo, hi = int(l_indptr[k]), int(l_indptr[k + 1])
            m = hi - lo
            if m == 0:
                continue
            rows_k = l_rows[lo:hi]
            ii, jj = np.triu_indices(m)
            pa.append(n + lo + jj)
            pb.append(n + lo + ii)
            tcol.append(rows_k[ii])
            trow.append(rows_k[jj])
        if pa:
            pair_a = np.concatenate(pa)
            pair_b = np.concatenate(pb)
            t_col = np.concatenate(tcol)
            t_row = np.concatenate(trow)
            on_diag = t_row == t_col
            qq = np.searchsorted(l_keys, t_col * n + t_row)
            t_pos = np.where(on_diag, t_col, n + qq)
            t_level = level[t_col]
        else:  # pragma: no cover - diagonal-only patterns
            pair_a = pair_b = t_pos = t_level = np.zeros(0, dtype=np.int64)

        l_cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(l_indptr))
        col_level = level  # level of each column
        entry_level = col_level[l_cols]

        self.levels: List[_Level] = []
        for lev in range(self.n_levels):
            plan = _Level()
            # Columns finalised at this level: every contribution targeting
            # them has landed by this level's pair step, so their pivots are
            # final before this level's divisions (the clamp hook point).
            plan.cols = np.flatnonzero(level == lev)
            # --- factor: contributions whose target column sits at this level
            sel = np.flatnonzero(t_level == lev)
            if sel.size:
                ordr = sel[np.argsort(t_pos[sel], kind="stable")]
                tp = t_pos[ordr]
                fresh = np.ones(tp.size, dtype=bool)
                fresh[1:] = tp[1:] != tp[:-1]
                plan.pair_a = pair_a[ordr]
                plan.pair_b = pair_b[ordr]
                plan.pair_starts = np.flatnonzero(fresh)
                plan.pair_targets = tp[fresh]
            else:
                plan.pair_a = np.zeros(0, dtype=np.int64)
                plan.pair_b = plan.pair_starts = plan.pair_targets = plan.pair_a
            # --- factor: division of this level's columns by their D
            esel = np.flatnonzero(entry_level == lev)
            plan.div_pos = n + esel
            plan.div_dslot = l_cols[esel]
            # --- forward solve: this level's entries scatter x[col] into rows
            if esel.size:
                ordr = esel[np.argsort(l_rows[esel], kind="stable")]
                rows_sorted = l_rows[ordr]
                fresh = np.ones(rows_sorted.size, dtype=bool)
                fresh[1:] = rows_sorted[1:] != rows_sorted[:-1]
                plan.fwd_pos = n + ordr
                plan.fwd_col = l_cols[ordr]
                plan.fwd_starts = np.flatnonzero(fresh)
                plan.fwd_rows = rows_sorted[fresh]
                # --- backward solve: entries grouped by their own column
                # (esel is ascending and l_cols nondecreasing, so the level's
                # entries arrive already column-contiguous).
                ecols = l_cols[esel]
                fresh = np.ones(ecols.size, dtype=bool)
                fresh[1:] = ecols[1:] != ecols[:-1]
                plan.bwd_pos = n + esel
                plan.bwd_row = l_rows[esel]
                plan.bwd_starts = np.flatnonzero(fresh)
                plan.bwd_cols = ecols[fresh]
            else:
                z = np.zeros(0, dtype=np.int64)
                plan.fwd_pos = plan.fwd_col = plan.fwd_starts = plan.fwd_rows = z
                plan.bwd_pos = plan.bwd_row = plan.bwd_starts = plan.bwd_cols = z
            self.levels.append(plan)

        # CSR matvec plan of the *full* template (refinement residuals): the
        # template's CSC arrays read as CSR describe Aᵀ, and transposing that
        # fixed pattern once yields A's CSR with a pure data gather.
        at_csr = sp.csr_matrix(
            (np.arange(1.0, self.template_indices.size + 1.0),
             self.template_indices, self.template_indptr),
            shape=(n, n),
        )
        self.csr_order, self.csr_indptr, self.csr_indices = transpose_plan(at_csr)
        self._finalized = True
        return self


def _etree_perms(csc: sp.csc_matrix, ordering: str) -> List[np.ndarray]:
    """Candidate elimination orders for ``csc``'s symmetrised pattern."""
    n = csc.shape[0]
    natural = np.arange(n, dtype=np.int64)
    if ordering == "natural" or n <= 2:
        return [natural]
    pattern = sp.csc_matrix(
        (np.ones(csc.nnz), csc.indices, csc.indptr), shape=csc.shape
    )
    spd_like = (pattern + pattern.T + float(n) * sp.identity(n, format="csc")).tocsc()
    cands: List[np.ndarray] = []
    if ordering in ("auto", "mmd"):
        try:
            lu = spla.splu(spd_like, permc_spec="MMD_AT_PLUS_A")
            perm_c = np.asarray(lu.perm_c, dtype=np.int64)
            inv = np.empty_like(perm_c)
            inv[perm_c] = np.arange(n, dtype=np.int64)
            cands.append(inv)
        except Exception:  # pragma: no cover - splu failure on a benign SPD-like
            pass
    if ordering in ("auto", "rcm"):
        try:
            from scipy.sparse.csgraph import reverse_cuthill_mckee

            rcm = np.asarray(
                reverse_cuthill_mckee(spd_like.tocsr(), symmetric_mode=True),
                dtype=np.int64,
            )
            cands.append(rcm)
        except Exception:  # pragma: no cover - csgraph unavailable
            pass
    if not cands or n <= 64:
        cands.append(natural)
    return cands


#: Module-level symbolic cache: analyses are pure functions of the pattern
#: and the ordering strategy, so pattern-identical solver instances (one per
#: ``mips()`` call) share them instead of re-walking the elimination tree.
_SYM_CACHE: "OrderedDict[tuple, LDLSymbolic]" = OrderedDict()
_SYM_LOCK = threading.Lock()
_SYM_CACHE_MAX = 8


def _symbolic_for_pattern(csc: sp.csc_matrix, ordering: str) -> LDLSymbolic:
    digest = hashlib.sha1()
    digest.update(np.ascontiguousarray(csc.indptr).tobytes())
    digest.update(np.ascontiguousarray(csc.indices).tobytes())
    key = (csc.shape, csc.nnz, ordering, digest.hexdigest())
    with _SYM_LOCK:
        sym = _SYM_CACHE.get(key)
        if sym is not None:
            _SYM_CACHE.move_to_end(key)
            return sym
    candidates = [
        LDLSymbolic(csc.indptr, csc.indices, csc.shape[0], perm)
        for perm in _etree_perms(csc, ordering)
    ]
    sym = min(candidates, key=lambda s: s.cost).finalize()
    with _SYM_LOCK:
        _SYM_CACHE[key] = sym
        while len(_SYM_CACHE) > _SYM_CACHE_MAX:
            _SYM_CACHE.popitem(last=False)
    return sym


# ------------------------------------------------------------------- numeric
class LDLNumeric:
    """One numeric LDLᵀ factorisation of a ``(B, nnz)`` data plane.

    ``W`` holds the *undivided* column values (slot ``j < n`` is ``D[j]``,
    slots ``n + q`` the pre-division entries ``L[i, k]·D[k]``); ``V`` holds
    the divided ``L`` entries.  Keeping both planes lets the contribution
    ``L[i,k]·D[k]·L[j,k]`` be formed as ``W · V`` with no diagonal gather.
    """

    __slots__ = ("sym", "W", "V")

    def __init__(self, sym: LDLSymbolic, W: np.ndarray, V: np.ndarray):
        self.sym = sym
        self.W = W
        self.V = V

    @property
    def D(self) -> np.ndarray:
        return self.W[:, : self.sym.n]

    def ok_rows(self) -> np.ndarray:
        """Per-row factorisation health: finite planes and a nonzero D."""
        finite = np.isfinite(self.W).all(axis=1) & np.isfinite(self.V).all(axis=1)
        return finite & (self.D != 0.0).all(axis=1)

    def solve(self, X: np.ndarray, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Level-scheduled ``L D Lᵀ`` solve of the ``(k, n)`` right-hand sides.

        A ``(1, ·)`` factorisation broadcasts over any number of right-hand
        sides; a ``(B, ·)`` factorisation solves its own batch row-for-row.
        ``rows`` restricts a batched factorisation to a subset of its planes
        (``X`` already holds just those rows) — the refinement loop uses it so
        late polish steps only pay for the rows still active.  Every operation
        is element-wise along the batch axis, so each row's solution is
        bit-independent of its batch neighbours and of any ``rows`` slicing.
        """
        sym = self.sym
        if rows is None or self.W.shape[0] == 1:
            V, D = self.V, self.D
        else:
            V, D = self.V[rows], self.D[rows]
        x = np.ascontiguousarray(X[:, sym.perm], dtype=float)
        for plan in sym.levels:
            if plan.fwd_pos.size:
                contrib = V[:, plan.fwd_pos] * x[:, plan.fwd_col]
                x[:, plan.fwd_rows] -= np.add.reduceat(contrib, plan.fwd_starts, axis=1)
        x /= D
        for plan in reversed(sym.levels):
            if plan.bwd_pos.size:
                contrib = V[:, plan.bwd_pos] * x[:, plan.bwd_row]
                x[:, plan.bwd_cols] -= np.add.reduceat(contrib, plan.bwd_starts, axis=1)
        out = np.empty_like(x)
        out[:, sym.perm] = x
        return out


def _factor_planes(
    sym: LDLSymbolic,
    data_plane: np.ndarray,
    shift: Optional[np.ndarray] = None,
    clamp: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    clamped_out: Optional[np.ndarray] = None,
) -> LDLNumeric:
    """Numeric phase: level-scheduled batched factorisation over the plans.

    ``shift`` is an optional ``(B, n)`` signed diagonal shift (the regularised
    retry path).  ``clamp`` is an optional ``(eps, sign)`` pair of ``(B, n)``
    planes implementing qdldl-style dynamic pivot regularisation: at each
    level, pivots just finalised with ``|d| < eps`` are replaced by
    ``sign · eps`` *before* their column divides — only genuinely degenerate
    pivots are perturbed, healthy ones keep full accuracy.  Rows where any
    clamp fired are flagged in ``clamped_out`` (a ``(B,)`` bool array).
    Singular pivots that remain surface as zeros/NaNs in the planes — the
    caller inspects :meth:`LDLNumeric.ok_rows` instead of catching exceptions,
    so one batched call factors healthy and singular systems alike.
    """
    B = data_plane.shape[0]
    W = np.zeros((B, sym.n + sym.nnzL))
    W[:, sym.init_tpos] = data_plane[:, sym.init_src]
    if shift is not None:
        W[:, : sym.n] += shift
    V = np.zeros_like(W)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        for plan in sym.levels:
            if plan.pair_a.size:
                contrib = W[:, plan.pair_a] * V[:, plan.pair_b]
                W[:, plan.pair_targets] -= np.add.reduceat(
                    contrib, plan.pair_starts, axis=1
                )
            if clamp is not None and plan.cols.size:
                eps, sign = clamp
                d = W[:, plan.cols]
                tiny = np.abs(d) < eps[:, plan.cols]
                if tiny.any():
                    W[:, plan.cols] = np.where(
                        tiny, sign[:, plan.cols] * eps[:, plan.cols], d
                    )
                    if clamped_out is not None:
                        clamped_out |= tiny.any(axis=1)
            if plan.div_pos.size:
                V[:, plan.div_pos] = W[:, plan.div_pos] / W[:, plan.div_dslot]
    return LDLNumeric(sym, W, V)


def _refine_rows(
    numeric: LDLNumeric,
    matvec: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    x: np.ndarray,
    tol_rel: float,
    max_steps: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Guarded per-row iterative refinement against the true matrix.

    Every accept/stop decision is row-local (a row freezes once it converges
    or stops improving), so a row's refined solution is independent of which
    other rows share the batch — the same invariance the factorisation
    guarantees.  Returns ``(x, residual_inf, scale)`` per row.
    """
    r = rhs - matvec(x)
    rnorm = np.abs(r).max(axis=1)
    scale = 1.0 + np.abs(rhs).max(axis=1)
    idx = np.flatnonzero(np.isfinite(rnorm) & (rnorm > tol_rel * scale))
    for _ in range(max_steps):
        if idx.size == 0:
            break
        # Compress to the still-active rows: late polish steps typically
        # chase one or two stragglers, so solving only those planes turns an
        # O(B) tail into an O(active) one without changing any row's result.
        rows = None if idx.size == rhs.shape[0] else idx
        dx = numeric.solve(r[idx], rows=rows)
        x_cand = x[idx] + dx
        r_cand = rhs[idx] - matvec(x_cand, rows=rows)
        cnorm = np.abs(r_cand).max(axis=1)
        prev = rnorm[idx]
        improved = np.isfinite(cnorm) & (cnorm < prev)
        sel = idx[improved]
        x[sel] = x_cand[improved]
        r[sel] = r_cand[improved]
        rnorm[sel] = cnorm[improved]
        # A refinable system contracts by orders of magnitude per step; a row
        # creeping down by mere percents is riding an unstable factor and will
        # never reach the target — freeze it now (the caller's acceptance
        # check decides whether where it stopped is good enough).
        contracting = cnorm[improved] <= 0.3 * prev[improved]
        keep = sel[contracting]
        idx = keep[rnorm[keep] > tol_rel * scale[keep]]
    return x, rnorm, scale


# -------------------------------------------------------------- accelerators
class _AccelNumeric:
    """Duck-typed stand-in for :class:`LDLNumeric` over an accelerator.

    Solves row-by-row, so the per-row independence the refinement loop relies
    on holds for accelerated factorisations too.
    """

    __slots__ = ("_accel",)

    def __init__(self, accel):
        self._accel = accel

    def solve(self, X: np.ndarray, rows: Optional[np.ndarray] = None) -> np.ndarray:
        return np.stack([np.asarray(self._accel.solve(row), dtype=float) for row in X])


class _QdldlAccelerator:
    """Adapter over the ``qdldl`` package's same-pattern ``Solver``/``update``."""

    name = "qdldl"

    def __init__(self, module):
        self._module = module
        self._solver = None

    def factor(self, matrix: sp.csc_matrix, fresh: bool) -> None:
        if fresh or self._solver is None:
            self._solver = self._module.Solver(matrix)
        else:
            self._solver.update(matrix)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return np.asarray(self._solver.solve(rhs), dtype=float)


class _CholmodAccelerator:
    """Adapter over scikit-sparse CHOLMOD (simplicial LDLᵀ, analyse-once)."""

    name = "cholmod"

    def __init__(self, module):
        self._module = module
        self._factor = None

    def factor(self, matrix: sp.csc_matrix, fresh: bool) -> None:
        if fresh or self._factor is None:
            self._factor = self._module.analyze(matrix, mode="simplicial")
        self._factor.cholesky_inplace(matrix)

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        return np.asarray(self._factor(rhs), dtype=float).reshape(rhs.shape)


def load_ldl_accelerator(prefer: Tuple[str, ...] = ("qdldl", "cholmod")):
    """Probe for an optional LDLᵀ accelerator; ``None`` when none importable.

    ``qdldl`` (the OSQP factorisation core) is preferred: it is built for
    exactly this quasi-definite same-pattern ``update``/re-solve cycle.
    CHOLMOD via ``scikit-sparse`` is the second choice.  Import errors are
    the *expected* path on a dependency-free install.
    """
    for name in prefer:
        if name == "qdldl":
            try:
                import qdldl  # type: ignore[import-not-found]
            except ImportError:
                continue
            return _QdldlAccelerator(qdldl)
        if name == "cholmod":
            try:
                from sksparse import cholmod  # type: ignore[import-not-found]
            except ImportError:
                continue
            return _CholmodAccelerator(cholmod)
    return None


# -------------------------------------------------------------------- solver
class LDLSolver(KKTSolver):
    """Same-pattern LDLᵀ refactorisation backend (``kkt_solver="ldl"``).

    Scalar solves, the multi-RHS ``solve_many`` path, ``resolve`` and the
    lockstep ``solve_blocks`` plane interface all share one symbolic analysis
    per pattern and the level-scheduled batched numeric phase.  See the
    module docstring for the algorithm; see
    :class:`~repro.mips.linsolve.FactorizedSolver` for the regularisation
    contract this backend mirrors (signed shifts instead of unsigned ones —
    the quasi-definite analogue).

    Parameters mirror the other backends'; ``ordering`` selects the
    fill-reducing candidate set (``"auto"`` costs minimum-degree against
    reverse-Cuthill-McKee and picks the cheaper numeric phase) and
    ``accelerator`` gates the optional-dependency scalar fast path
    (``"auto"`` probes, ``"pure"`` forces the NumPy kernels).
    """

    name = "ldl"
    #: The batched MIPS loop checks this to route whole iterations here.
    supports_blocks = True

    #: Relative residual target of the refinement polish — orders of
    #: magnitude below ``residual_tol`` and below a partial-pivoted LU's
    #: typical residual on these systems, while cheap enough that warm-start
    #: iterations converge in a couple of polish steps.
    refine_tol = 1e-12
    #: Refinement step cap (rows freeze on non-improvement well before this).
    max_refine_steps = 25
    #: Dynamic pivot-clamp threshold (relative to ``1 + |diag|``): a pivot
    #: whose finalised magnitude falls below it is replaced by the signed
    #: threshold, keeping no-pivoting LDLᵀ away from the exact zero pivots of
    #: the constraint block while leaving healthy pivots untouched;
    #: refinement removes the perturbation from clamped rows' solutions.
    pivot_clamp = 1e-13

    def __init__(
        self,
        regularization: float = 1e-8,
        reg_growth: float = 100.0,
        max_retries: int = 3,
        residual_tol: float = 1e-6,
        ordering: str = "auto",
        accelerator: str = "auto",
    ) -> None:
        super().__init__()
        if regularization <= 0:
            raise ValueError("regularization must be positive")
        if reg_growth <= 1:
            raise ValueError("reg_growth must exceed 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if residual_tol <= 0:
            raise ValueError("residual_tol must be positive")
        if ordering not in ("auto", "mmd", "rcm", "natural"):
            raise ValueError("ordering must be one of auto|mmd|rcm|natural")
        if accelerator not in ("auto", "pure"):
            raise ValueError("accelerator must be 'auto' or 'pure'")
        self.regularization = regularization
        self.reg_growth = reg_growth
        self.max_retries = max_retries
        self.residual_tol = residual_tol
        self.ordering = ordering
        self._accel = load_ldl_accelerator() if accelerator == "auto" else None
        self._sym: Optional[LDLSymbolic] = None
        self._indptr: Optional[np.ndarray] = None
        self._indices: Optional[np.ndarray] = None
        self._last_numeric: Optional[LDLNumeric] = None
        self._last_matvec: Optional[Callable[[np.ndarray], np.ndarray]] = None
        #: Numeric factorisations that reused a previously analysed pattern.
        self.symbolic_reuses = 0
        #: Numeric (re)factorisations performed, batched calls counting one.
        self.numeric_refactorizations = 0
        #: Batched ``solve_blocks`` factorisations (one per lockstep iteration).
        self.block_factorizations = 0
        #: Scalar factorisations served by an optional accelerator.
        self.accelerated_factorizations = 0

    # ----------------------------------------------------------------- symbolic
    def _symbolic(self, csc: sp.csc_matrix) -> LDLSymbolic:
        if self._sym is not None and same_pattern(csc, self._indptr, self._indices):
            self.symbolic_reuses += 1
            return self._sym
        self._sym = _symbolic_for_pattern(csc, self.ordering)
        self._indptr = csc.indptr
        self._indices = csc.indices
        self._last_numeric = None
        self._last_matvec = None
        return self._sym

    def _matvec_for(self, sym: LDLSymbolic, data_plane: np.ndarray):
        """Row-wise residual matvec ``X ↦ A_b @ X[b]`` over the CSR plan."""
        csr_data = np.ascontiguousarray(data_plane[:, sym.csr_order])

        def matvec(X: np.ndarray, rows: Optional[np.ndarray] = None) -> np.ndarray:
            data = csr_data
            if rows is not None and data.shape[0] != 1:
                data = data[rows]
            return batched_matvec(data, sym.csr_indptr, sym.csr_indices, X)

        return matvec

    # ------------------------------------------------------------ factor + heal
    def _solve_with_recovery(
        self, sym: LDLSymbolic, data_plane: np.ndarray, rhs_plane: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, LDLNumeric, float, float]:
        """Factor, refine and recover the whole batch; the core numeric path.

        LDLᵀ without pivoting meets *exact* zero pivots whenever the ordering
        eliminates a zero-diagonal constraint row before its coupled primal
        rows, so the numeric phase applies qdldl-style dynamic pivot
        clamping: a pivot whose finalised magnitude falls below
        ``pivot_clamp`` (scaled by the row's original diagonal) is replaced
        by the signed threshold — negative for the constraint block,
        preserving quasi-definite inertia.  Only degenerate pivots are
        perturbed, so healthy rows keep full factorisation accuracy, and
        guarded refinement against the *unperturbed* matrix polishes every
        row to ``refine_tol``.

        The AC-OPF Hessian is not always positive definite, so a fixed-order
        factorisation can also go *unstable* (element growth) on a
        near-singular iteration even without zero pivots.  Both failure modes
        surface the same way — the refined residual stalls above the
        acceptance threshold — and both are healed the same way: refactorise the
        affected rows under an escalating **signed** diagonal shift (the
        quasi-definite analogue of ``FactorizedSolver``'s regularised retry),
        which bounds growth, then refine against the true matrix again.

        Returns ``(x, accepted, numeric, factor_seconds, solve_seconds)``.
        Perturbed rows (clamped or shift-recovered) face the same
        unperturbed-residual acceptance check ``FactorizedSolver`` applies —
        failures come back NaN; ``accepted`` flags shift recoveries that
        passed (the rows reported as regularisations — pivot clamps are an
        ordering artifact of the quasi-definite KKT, not a conditioning
        event).  ``numeric`` is the factorisation backing the returned
        solutions (the retry factor when every row was recovered — the
        ``resolve`` surface refines against it); the timing pair splits the
        call's wall into numeric-factorisation vs backsolve/refinement time.
        """
        t_enter = time.perf_counter()
        factor_t = 0.0
        B = data_plane.shape[0]
        # A (1, ·) data plane broadcasts over any number of right-hand-side
        # rows (the scalar multi-RHS surface); otherwise planes pair row-for-row.
        R = rhs_plane.shape[0]
        diag0 = np.zeros((B, sym.n))
        init_diag = sym.init_tpos < sym.n
        diag0[:, sym.init_tpos[init_diag]] = data_plane[:, sym.init_src[init_diag]]
        # Zero (structurally absent) diagonals are the constraint block:
        # clamp/shift them negative, preserving quasi-definite inertia.
        sign = np.where(diag0 > 0.0, 1.0, -1.0)
        dscale = 1.0 + np.abs(diag0)
        eps = self.pivot_clamp * dscale
        clamped = np.zeros(B, dtype=bool)
        t0 = time.perf_counter()
        numeric = _factor_planes(
            sym, data_plane, clamp=(eps, sign), clamped_out=clamped
        )
        factor_t += time.perf_counter() - t0
        self.numeric_refactorizations += 1
        matvec = self._matvec_for(sym, data_plane)
        x = numeric.solve(rhs_plane)
        x, rnorm, scale = _refine_rows(
            numeric, matvec, rhs_plane, x, self.refine_tol, self.max_refine_steps
        )
        finite = np.isfinite(x).all(axis=1) & np.isfinite(rnorm)
        # Retry only rows that would fail the acceptance check below: an
        # ill-conditioned-but-refinable system (common on the first couple of
        # warm-start iterations, where the factor can be unstable yet
        # refinement still lands well under ``residual_tol``) must NOT trigger
        # the shift path — a signed shift on an indefinite Hessian block can
        # push eigenvalues *toward* zero, so speculative retries both waste
        # factorisations and produce worse factors.
        stalled = ~finite | (rnorm > self.residual_tol * scale)
        shifted = np.zeros(R, dtype=bool)
        clamped_rows = clamped if B == R else np.broadcast_to(clamped, (R,)).copy()
        if stalled.any() and self.max_retries:
            reg = self.regularization
            bad = np.flatnonzero(stalled)
            for _ in range(self.max_retries):
                t0 = time.perf_counter()
                if B == 1:
                    retry = _factor_planes(
                        sym, data_plane, shift=sign * (reg * dscale),
                        clamp=(eps, sign),
                    )
                    sub_matvec = matvec
                else:
                    retry = _factor_planes(
                        sym,
                        data_plane[bad],
                        shift=(sign * (reg * dscale))[bad],
                        clamp=(eps[bad], sign[bad]),
                    )
                    sub_matvec = self._matvec_for(sym, data_plane[bad])
                factor_t += time.perf_counter() - t0
                self.numeric_refactorizations += 1
                xb = retry.solve(rhs_plane[bad])
                xb, rb, sb = _refine_rows(
                    retry, sub_matvec, rhs_plane[bad], xb,
                    self.refine_tol, self.max_refine_steps,
                )
                okb = np.isfinite(xb).all(axis=1) & np.isfinite(rb)
                better = okb & (~finite[bad] | (rb < rnorm[bad]))
                rows = bad[better]
                x[rows] = xb[better]
                rnorm[rows] = rb[better]
                finite[rows] = True
                shifted[rows] = True
                if B == 1 and better.any():
                    numeric = retry
                healed = okb & (rb <= self.residual_tol * sb)
                bad = bad[~healed]
                if bad.size == 0:
                    break
                reg *= self.reg_growth
        # Same acceptance rule as FactorizedSolver: a perturbed factor's
        # solution counts only when the residual on the *unperturbed* system
        # is small; otherwise the row fails loudly (NaN).
        rel_ok = finite & (rnorm <= self.residual_tol * scale)
        dead = ~finite | ((clamped_rows | shifted) & ~rel_ok)
        accepted = shifted & rel_ok & ~dead
        if dead.any():
            x[dead] = np.nan
        solve_t = (time.perf_counter() - t_enter) - factor_t
        return x, accepted, numeric, factor_t, solve_t

    # ------------------------------------------------------------- scalar paths
    def _accel_solve(
        self, csc: sp.csc_matrix, sym: LDLSymbolic, rhs_plane: np.ndarray
    ) -> Optional[Tuple["_AccelNumeric", np.ndarray]]:
        """Optional-dependency scalar fast path; ``None`` falls back to pure.

        The accelerator factors the symmetrised system once per call
        (``update`` on pattern reuse) and backsubstitutes every right-hand
        side; the shared refinement polish then runs against the true matrix,
        so accelerated solutions meet the same residual target — anything the
        accelerator cannot handle (import quirks, indefinite pivots it
        rejects, a residual the polish cannot close) silently degrades to the
        pure kernels.
        """
        if self._accel is None:
            return None
        try:
            n = sym.n
            vals = csc.data[sym.low_src]
            lower = sp.csc_matrix(
                (vals, sym.low_rows, sym.low_indptr), shape=(n, n)
            )
            full = (lower + lower.T - sp.diags(lower.diagonal())).tocsc()
            fresh = self._last_numeric is None
            self._accel.factor(full, fresh)
            numeric = _AccelNumeric(self._accel)
            x = numeric.solve(rhs_plane)
            if not np.isfinite(x).all():
                return None
            self.accelerated_factorizations += 1
            return numeric, x
        except Exception:
            return None

    def _solve_scalar(self, kkt: sp.spmatrix, rhs_plane: np.ndarray) -> np.ndarray:
        csc = sp.csc_matrix(kkt)
        csc.sort_indices()
        start = time.perf_counter()
        sym = self._symbolic(csc)
        data_plane = csc.data[None, :]
        matvec = self._matvec_for(sym, data_plane)
        accelerated = self._accel_solve(csc, sym, rhs_plane)
        if accelerated is not None:
            numeric, x = accelerated
            self.numeric_refactorizations += 1
            self.factor_seconds = time.perf_counter() - start
            start = time.perf_counter()
            x, rnorm, scale = _refine_rows(
                numeric, matvec, rhs_plane, x,
                self.refine_tol, self.max_refine_steps,
            )
            self.backsolve_seconds = time.perf_counter() - start
            if np.isfinite(x).all() and (rnorm <= self.residual_tol * scale).all():
                self._last_numeric = numeric
                self._last_matvec = matvec
                return x
            # Accelerated solve missed the residual target: redo in pure
            # NumPy (charged to the same factor/backsolve split).
            start = time.perf_counter()
        sym_t = time.perf_counter() - start
        x, accepted, numeric, factor_t, solve_t = self._solve_with_recovery(
            sym, data_plane, rhs_plane
        )
        self.factor_seconds = sym_t + factor_t
        self.backsolve_seconds = solve_t
        self._last_numeric = numeric
        self._last_matvec = matvec
        if not np.isfinite(x).all():
            raise KKTSolveError(
                f"KKT factorisation singular after {self.max_retries} "
                f"regularised retries (ldl residual check failed)"
            )
        self.regularizations += int(accepted.sum())
        return x

    def solve(self, kkt: sp.spmatrix, rhs: np.ndarray) -> np.ndarray:
        rhs = np.asarray(rhs, dtype=float)
        return self._solve_scalar(kkt, rhs[None, :])[0]

    def solve_many(self, kkt: sp.spmatrix, rhs_block: np.ndarray) -> np.ndarray:
        rhs_block = np.asarray(rhs_block, dtype=float)
        if rhs_block.ndim == 1:
            rhs_block = rhs_block[:, None]
        return self._solve_scalar(kkt, np.ascontiguousarray(rhs_block.T)).T

    def resolve(self, rhs: np.ndarray) -> np.ndarray:
        """One extra polished backsolve against the retained factorisation."""
        if self._last_numeric is None:
            raise KKTSolveError("no factorisation available to resolve against")
        start = time.perf_counter()
        rhs_plane = np.asarray(rhs, dtype=float)[None, :]
        x = self._last_numeric.solve(rhs_plane)
        x, _, _ = _refine_rows(
            self._last_numeric, self._last_matvec, rhs_plane, x,
            self.refine_tol, self.max_refine_steps,
        )
        self.backsolve_seconds = time.perf_counter() - start
        if not np.isfinite(x).all():
            raise KKTSolveError("resolve produced non-finite values")
        return x[0]

    # -------------------------------------------------------------- block path
    def solve_blocks(
        self,
        template: sp.csc_matrix,
        data_plane: np.ndarray,
        rhs_plane: np.ndarray,
        direct: bool = False,
    ) -> BlockSolveReport:
        """Batched plane interface: one level-scheduled factorisation for ``B`` blocks.

        Unlike the SuperLU block backend there is no first-call/replay split:
        the numeric phase is already deterministic per row and independent of
        batch composition, so ``direct`` (fresh blocks) takes the same path
        and enrollment invariance holds by construction.
        """
        data_plane = np.ascontiguousarray(np.atleast_2d(np.asarray(data_plane, dtype=float)))
        rhs_plane = np.ascontiguousarray(np.atleast_2d(np.asarray(rhs_plane, dtype=float)))
        blocks, n = rhs_plane.shape
        if data_plane.shape[0] != blocks:
            raise ValueError("data plane and rhs plane must have matching batch sizes")
        start = time.perf_counter()
        sym = self._symbolic(template)
        sym_t = time.perf_counter() - start
        solutions, accepted, _, factor_t, solve_t = self._solve_with_recovery(
            sym, data_plane, rhs_plane
        )
        self.block_factorizations += 1
        self.factor_seconds = sym_t + factor_t
        self.backsolve_seconds = solve_t
        regs = accepted.astype(int)
        self.regularizations += int(accepted.sum())
        failed = [int(b) for b in np.flatnonzero(~np.isfinite(solutions).all(axis=1))]
        return BlockSolveReport(solutions, failed, regs)


register_kkt_solver(LDLSolver.name, LDLSolver)
