"""Convex quadratic-programming convenience wrapper around MIPS.

``qps_mips`` solves::

    min  0.5 xᵀ H x + cᵀ x
    s.t. A_eq x = b_eq
         A_in x <= b_in
         xmin <= x <= xmax

It exists for two reasons: it gives the test suite analytically checkable
problems to validate the interior-point core against, and it is a useful
stand-alone utility (e.g. DC-OPF style dispatch problems).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.mips.options import MIPSOptions
from repro.mips.result import MIPSResult
from repro.mips.solver import mips


def qps_mips(
    H: Optional[np.ndarray | sp.spmatrix],
    c: np.ndarray,
    A_eq: Optional[np.ndarray | sp.spmatrix] = None,
    b_eq: Optional[np.ndarray] = None,
    A_in: Optional[np.ndarray | sp.spmatrix] = None,
    b_in: Optional[np.ndarray] = None,
    xmin: Optional[np.ndarray] = None,
    xmax: Optional[np.ndarray] = None,
    x0: Optional[np.ndarray] = None,
    options: Optional[MIPSOptions] = None,
) -> MIPSResult:
    """Solve a (convex) quadratic program with the MIPS solver.

    ``H`` may be ``None`` for a pure linear program.  Linear equality /
    inequality constraints are passed straight through as "nonlinear"
    constraints with constant Jacobians.
    """
    c = np.asarray(c, dtype=float)
    nx = c.size
    Hs = sp.csr_matrix((nx, nx)) if H is None else sp.csr_matrix(H)
    if Hs.shape != (nx, nx):
        raise ValueError("H must be square and match the size of c")

    Ae = sp.csr_matrix((0, nx)) if A_eq is None else sp.csr_matrix(A_eq)
    be = np.zeros(0) if b_eq is None else np.asarray(b_eq, dtype=float)
    Ai = sp.csr_matrix((0, nx)) if A_in is None else sp.csr_matrix(A_in)
    bi = np.zeros(0) if b_in is None else np.asarray(b_in, dtype=float)
    if Ae.shape[0] != be.size or Ai.shape[0] != bi.size:
        raise ValueError("constraint matrix / rhs size mismatch")

    def f_fcn(x: np.ndarray):
        Hx = Hs @ x
        f = 0.5 * float(x @ Hx) + float(c @ x)
        df = Hx + c
        return f, df, Hs

    has_constraints = Ae.shape[0] > 0 or Ai.shape[0] > 0

    def gh_fcn(x: np.ndarray):
        g = Ae @ x - be
        h = Ai @ x - bi
        return g, h, Ae, Ai

    def hess_fcn(x, lam_nl, mu_nl, cost_mult):
        return Hs * cost_mult

    x_start = np.zeros(nx) if x0 is None else np.asarray(x0, dtype=float)
    return mips(
        f_fcn,
        x_start,
        gh_fcn=gh_fcn if has_constraints else None,
        hess_fcn=hess_fcn if has_constraints else None,
        xmin=xmin,
        xmax=xmax,
        options=options,
    )
