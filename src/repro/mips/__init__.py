"""MIPS primal-dual interior-point solver (warm-startable)."""

from repro.mips.linsolve import (
    BlockDiagSolver,
    BlockSolveReport,
    FactorizedSolver,
    KKTSolveError,
    KKTSolver,
    SpsolveSolver,
    available_kkt_solvers,
    make_kkt_solver,
    register_kkt_solver,
    solver_telemetry,
)

# Importing the module registers the "ldl" backend with the KKT registry, so
# spawn-based workers that import ``repro.mips`` can select it via
# ``MIPSOptions.kkt_solver`` (see ``register_kkt_solver``'s per-process note).
from repro.mips.ldl import LDLSolver
from repro.mips.batch import BatchFeedPayload, mips_batch
from repro.mips.options import MIPSOptions
from repro.mips.qp import qps_mips
from repro.mips.result import ConstraintPartition, IterationRecord, MIPSResult
from repro.mips.solver import mips

__all__ = [
    "MIPSOptions",
    "MIPSResult",
    "IterationRecord",
    "ConstraintPartition",
    "mips",
    "mips_batch",
    "BatchFeedPayload",
    "qps_mips",
    "KKTSolver",
    "KKTSolveError",
    "BlockDiagSolver",
    "BlockSolveReport",
    "FactorizedSolver",
    "LDLSolver",
    "SpsolveSolver",
    "available_kkt_solvers",
    "make_kkt_solver",
    "register_kkt_solver",
    "solver_telemetry",
]
