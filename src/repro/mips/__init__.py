"""MIPS primal-dual interior-point solver (warm-startable)."""

from repro.mips.linsolve import (
    BlockDiagSolver,
    BlockSolveReport,
    FactorizedSolver,
    KKTSolveError,
    KKTSolver,
    SpsolveSolver,
    available_kkt_solvers,
    make_kkt_solver,
    register_kkt_solver,
)
from repro.mips.batch import BatchFeedPayload, mips_batch
from repro.mips.options import MIPSOptions
from repro.mips.qp import qps_mips
from repro.mips.result import ConstraintPartition, IterationRecord, MIPSResult
from repro.mips.solver import mips

__all__ = [
    "MIPSOptions",
    "MIPSResult",
    "IterationRecord",
    "ConstraintPartition",
    "mips",
    "mips_batch",
    "BatchFeedPayload",
    "qps_mips",
    "KKTSolver",
    "KKTSolveError",
    "BlockDiagSolver",
    "BlockSolveReport",
    "FactorizedSolver",
    "SpsolveSolver",
    "available_kkt_solvers",
    "make_kkt_solver",
    "register_kkt_solver",
]
