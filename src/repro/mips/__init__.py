"""MIPS primal-dual interior-point solver (warm-startable)."""

from repro.mips.options import MIPSOptions
from repro.mips.qp import qps_mips
from repro.mips.result import ConstraintPartition, IterationRecord, MIPSResult
from repro.mips.solver import mips

__all__ = [
    "MIPSOptions",
    "MIPSResult",
    "IterationRecord",
    "ConstraintPartition",
    "mips",
    "qps_mips",
]
