"""MIPS primal-dual interior-point solver (warm-startable)."""

from repro.mips.linsolve import (
    FactorizedSolver,
    KKTSolveError,
    KKTSolver,
    SpsolveSolver,
    available_kkt_solvers,
    make_kkt_solver,
    register_kkt_solver,
)
from repro.mips.options import MIPSOptions
from repro.mips.qp import qps_mips
from repro.mips.result import ConstraintPartition, IterationRecord, MIPSResult
from repro.mips.solver import mips

__all__ = [
    "MIPSOptions",
    "MIPSResult",
    "IterationRecord",
    "ConstraintPartition",
    "mips",
    "qps_mips",
    "KKTSolver",
    "KKTSolveError",
    "FactorizedSolver",
    "SpsolveSolver",
    "available_kkt_solvers",
    "make_kkt_solver",
    "register_kkt_solver",
]
