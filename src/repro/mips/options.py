"""Solver options for the MIPS primal-dual interior-point method."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class MIPSOptions:
    """Options controlling the MIPS iteration.

    Defaults match MATPOWER's MIPS solver: the four termination tolerances
    (feasibility, gradient, complementarity, cost), the maximum iteration
    count, the step-length safety factor ``xi`` and the centering parameter
    ``sigma`` of the barrier update.
    """

    #: Feasibility (constraint violation) tolerance.
    feastol: float = 1e-6
    #: Lagrangian-gradient tolerance.
    gradtol: float = 1e-6
    #: Complementarity tolerance.
    comptol: float = 1e-6
    #: Relative cost-change tolerance.
    costtol: float = 1e-6
    #: Maximum number of interior-point iterations.
    max_it: int = 150
    #: Step-length safety factor keeping iterates strictly interior.
    xi: float = 0.99995
    #: Centering parameter of the barrier update ``gamma = sigma * zᵀµ / niq``.
    sigma: float = 0.1
    #: Initial value used for slack variables and multipliers.
    z0: float = 1.0
    #: Multiplier applied to the objective (MATPOWER uses this to balance
    #: objective and constraint scales; the OPF layer leaves it at 1).
    cost_mult: float = 1.0
    #: Treat ``|xmax - xmin| <= bound_eq_tol`` as an equality constraint.
    bound_eq_tol: float = 1e-10
    #: Declare numerical failure when the step or iterate norm exceeds this.
    max_stepsize: float = 1e10
    #: KKT linear-solver backend: ``"factorized"`` (``splu`` with symbolic
    #: pattern reuse and singular-matrix regularisation, the fast path),
    #: ``"blockdiag"`` (one block-diagonal factorisation per lockstep batch
    #: iteration; identical to ``"factorized"`` for scalar solves),
    #: ``"ldl"`` (same-pattern sparse LDLᵀ refactorisation: one symbolic
    #: analysis reused across all pattern-identical iterations, only the
    #: numeric sweep rerun — see :mod:`repro.mips.ldl`) or ``"spsolve"``
    #: (the seed behaviour).  See :mod:`repro.mips.linsolve`.
    kkt_solver: str = "factorized"
    #: Worker threads for per-block KKT factorisation in lockstep batches
    #: (``"blockdiag"`` backend).  1 (the default) keeps the serial big
    #: block-diagonal factorisation; >1 fans the independent blocks out on a
    #: shared thread pool with bit-identical per-block numerics.
    kkt_factor_threads: int = 1
    #: Initial diagonal shift used when a KKT factorisation is singular.
    kkt_reg: float = 1e-8
    #: Number of escalating regularisation retries before declaring failure.
    kkt_max_retries: int = 3
    #: Iterative-refinement sweeps applied to each Newton solution: every
    #: sweep re-solves the residual against the iteration's factorisation
    #: (the multi-RHS/resolve path of :mod:`repro.mips.linsolve`), sharpening
    #: steps on ill-conditioned warm starts.  0 (the default) disables
    #: refinement and reproduces the historic behaviour exactly.
    kkt_refine_steps: int = 0
    #: Per-solve wall budget in seconds (``None`` = unbounded).  Checked
    #: cooperatively between iterations; an exhausted budget terminates the
    #: solve with ``timed_out`` set instead of raising.  In lockstep batch
    #: solves the budget is *per scenario*, measured from each scenario's own
    #: enrollment — the row-level counterpart of the per-row ``max_it``.
    max_wall_seconds: Optional[float] = None
    #: Record per-iteration history (needed for Fig. 10 traces).
    record_history: bool = True
    #: Print one line per iteration via the ``repro.mips`` logger.
    verbose: bool = False

    def validate(self) -> None:
        """Raise ``ValueError`` for non-sensical settings."""
        for name in ("feastol", "gradtol", "comptol", "costtol"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.max_it < 1:
            raise ValueError("max_it must be at least 1")
        if not 0 < self.xi < 1:
            raise ValueError("xi must be in (0, 1)")
        if not 0 < self.sigma <= 1:
            raise ValueError("sigma must be in (0, 1]")
        if self.z0 <= 0:
            raise ValueError("z0 must be positive")
        from repro.mips.linsolve import available_kkt_solvers

        if self.kkt_solver not in available_kkt_solvers():
            raise ValueError(
                f"kkt_solver must be one of {available_kkt_solvers()}, "
                f"got {self.kkt_solver!r}"
            )
        if self.kkt_factor_threads < 1:
            raise ValueError("kkt_factor_threads must be at least 1")
        if self.kkt_reg <= 0:
            raise ValueError("kkt_reg must be positive")
        if self.kkt_max_retries < 0:
            raise ValueError("kkt_max_retries must be non-negative")
        if self.kkt_refine_steps < 0:
            raise ValueError("kkt_refine_steps must be non-negative")
        if self.max_wall_seconds is not None and self.max_wall_seconds <= 0:
            raise ValueError("max_wall_seconds must be positive (or None)")
