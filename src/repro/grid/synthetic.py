"""Deterministic synthetic test-system generator.

The paper evaluates on the IEEE 30/57/118/300-bus MATPOWER cases.  The exact
impedance tables of the larger cases are not available in this offline
environment, so this module builds *synthetic but realistic* meshed systems
with the same bus / generator / branch counts (Table II) and with the
structural properties that drive the Smart-PGSim experiments:

* connected meshed topology (spanning backbone + chords),
* realistic per-unit impedances and a mix of lines and transformers,
* loads at roughly half of total generation capacity,
* diverse quadratic generation costs (so the OPF has a non-trivial dispatch),
* branch MVA ratings calibrated from a DC power flow of the nominal dispatch
  so a realistic subset of flow constraints is active but the nominal problem
  stays feasible under the ±10 % load sampling used for training data.

Generation is fully deterministic given the configuration seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.grid.components import Case
from repro.grid.io import case_from_matpower
from repro.grid.validation import validate_case
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class SyntheticGridConfig:
    """Configuration of the synthetic generator.

    Parameters mirror the quantities listed in Table II; everything else is a
    modelling knob with defaults chosen to keep the AC-OPF feasible over the
    ±10 % load-sampling range used by the data generator.
    """

    n_bus: int
    n_gen: int
    n_branch: int
    seed: int = 0
    name: Optional[str] = None
    base_mva: float = 100.0
    base_kv: float = 138.0
    #: Fraction of total generation capacity consumed by the nominal load.
    load_factor: float = 0.5
    #: Mean nominal active load per load bus, in MW.
    mean_load_mw: float = 12.0
    #: Fraction of buses that carry load.
    load_bus_fraction: float = 0.75
    #: Fraction of branches modelled as transformers (off-nominal tap).
    transformer_fraction: float = 0.1
    #: Multiplier applied to nominal DC branch flows to obtain MVA ratings.
    rating_margin: float = 1.9
    #: Minimum branch rating in MVA (avoids tiny ratings on lightly used lines).
    rating_floor_mva: float = 15.0
    vmax: float = 1.06
    vmin: float = 0.94

    def __post_init__(self) -> None:
        if self.n_bus < 3:
            raise ValueError("need at least 3 buses")
        if not 1 <= self.n_gen <= self.n_bus:
            raise ValueError("n_gen must be in [1, n_bus]")
        if self.n_branch < self.n_bus - 1:
            raise ValueError("n_branch must be at least n_bus - 1 for connectivity")
        if not 0 < self.load_factor < 1:
            raise ValueError("load_factor must be in (0, 1)")


def _build_topology(cfg: SyntheticGridConfig, rng: np.random.Generator) -> np.ndarray:
    """Return an (n_branch, 2) array of 0-based (from, to) bus indices.

    A spanning backbone guarantees connectivity; remaining branches are chords
    drawn preferentially between electrically "nearby" buses (small index
    distance) to mimic the locality of real transmission networks.
    """
    edges = []
    # Spanning backbone: bus i attaches to a random earlier bus within a window.
    for i in range(1, cfg.n_bus):
        lo = max(0, i - 6)
        j = int(rng.integers(lo, i))
        edges.append((j, i))
    # Chords.
    existing = set(map(tuple, edges))
    attempts = 0
    while len(edges) < cfg.n_branch and attempts < 50 * cfg.n_branch:
        attempts += 1
        a = int(rng.integers(0, cfg.n_bus))
        span = int(rng.integers(2, max(3, cfg.n_bus // 4)))
        b = min(cfg.n_bus - 1, a + span)
        if a == b:
            continue
        key = (min(a, b), max(a, b))
        if key in existing:
            continue
        existing.add(key)
        edges.append(key)
    # If the locality heuristic ran out of candidates, fall back to arbitrary pairs
    # (parallel circuits allowed, as in real systems).
    while len(edges) < cfg.n_branch:
        a, b = rng.integers(0, cfg.n_bus, size=2)
        if a != b:
            edges.append((int(min(a, b)), int(max(a, b))))
    return np.asarray(edges[: cfg.n_branch], dtype=int)


def generate_case(cfg: SyntheticGridConfig) -> Case:
    """Build a validated synthetic :class:`Case` from ``cfg``."""
    rng = ensure_rng(cfg.seed)
    name = cfg.name or f"synthetic{cfg.n_bus}"

    edges = _build_topology(cfg, rng)
    nl, nb, ng = cfg.n_branch, cfg.n_bus, cfg.n_gen

    # ------------------------------------------------------------- branches
    x = rng.uniform(0.03, 0.22, size=nl)
    r = x * rng.uniform(0.10, 0.35, size=nl)
    b = rng.uniform(0.0, 0.06, size=nl)
    ratio = np.zeros(nl)
    is_xfmr = rng.random(nl) < cfg.transformer_fraction
    ratio[is_xfmr] = rng.uniform(0.96, 1.04, size=int(is_xfmr.sum()))
    b[is_xfmr] = 0.0

    # ----------------------------------------------------------- generators
    # Generator buses: bus 0 is always the reference bus with a generator.
    gen_buses = np.concatenate(
        ([0], rng.choice(np.arange(1, nb), size=ng - 1, replace=False))
    )
    gen_buses = np.sort(gen_buses)

    # ---------------------------------------------------------------- loads
    n_load_buses = max(1, int(round(cfg.load_bus_fraction * nb)))
    load_buses = rng.choice(np.arange(nb), size=n_load_buses, replace=False)
    load_weights = rng.uniform(0.4, 1.6, size=n_load_buses)
    total_load = cfg.mean_load_mw * n_load_buses
    Pd = np.zeros(nb)
    Pd[load_buses] = total_load * load_weights / load_weights.sum()
    power_factor_tan = rng.uniform(0.25, 0.45, size=nb)
    Qd = Pd * power_factor_tan

    # Generator capacities: lognormal weights scaled to the target load factor.
    cap_weights = rng.lognormal(mean=0.0, sigma=0.45, size=ng)
    total_capacity = total_load / cfg.load_factor
    Pmax = total_capacity * cap_weights / cap_weights.sum()
    Pmax = np.maximum(Pmax, 1.2 * total_load / ng / 4)  # avoid degenerate tiny units
    Pmin = np.zeros(ng)
    Qmax = 0.6 * Pmax
    Qmin = -0.4 * Pmax

    # Nominal dispatch proportional to capacity (used only to calibrate ratings
    # and to seed the default operating point).
    Pg0 = Pmax * (total_load / Pmax.sum())

    # ------------------------------------------------------------ bus table
    bus_type = np.ones(nb, dtype=int)
    bus_type[gen_buses] = 2
    bus_type[0] = 3
    bus_rows = [
        [
            i + 1,
            int(bus_type[i]),
            float(Pd[i]),
            float(Qd[i]),
            0.0,
            0.0,
            1,
            1.0,
            0.0,
            cfg.base_kv,
            1,
            cfg.vmax,
            cfg.vmin,
        ]
        for i in range(nb)
    ]

    gen_rows = [
        [
            int(gen_buses[g]) + 1,
            float(Pg0[g]),
            0.0,
            float(Qmax[g]),
            float(Qmin[g]),
            1.0,
            cfg.base_mva,
            1,
            float(Pmax[g]),
            float(Pmin[g]),
        ]
        for g in range(ng)
    ]

    # Quadratic costs with diverse marginal prices so dispatch is non-trivial.
    c2 = rng.uniform(0.01, 0.12, size=ng)
    c1 = rng.uniform(8.0, 40.0, size=ng)
    gencost_rows = [[2, 0, 0, 3, float(c2[g]), float(c1[g]), 0.0] for g in range(ng)]

    branch_rows = [
        [
            int(edges[l, 0]) + 1,
            int(edges[l, 1]) + 1,
            float(r[l]),
            float(x[l]),
            float(b[l]),
            0.0,  # rating filled in after DC calibration
            0.0,
            0.0,
            float(ratio[l]),
            0.0,
            1,
            -360,
            360,
        ]
        for l in range(nl)
    ]

    case = case_from_matpower(
        name, cfg.base_mva, bus_rows, gen_rows, branch_rows, gencost_rows
    )

    # -------------------------------------------------- rating calibration
    # DC power flow of the nominal dispatch gives per-branch MW flows; ratings
    # are a margin above that so the nominal OPF is comfortably feasible while
    # heavier-than-nominal samples can activate a subset of the constraints.
    from repro.powerflow.dc import dc_power_flow

    Pg_bus = np.zeros(nb)
    np.add.at(Pg_bus, gen_buses, Pg0)
    flows = dc_power_flow(case, Pg_bus - Pd)
    rating = np.maximum(cfg.rating_margin * np.abs(flows), cfg.rating_floor_mva)
    case.branch.rate_a = rating

    validate_case(case)
    return case


# ---------------------------------------------------------------------------
# Table-II equivalents.  Counts follow the paper: (buses, generators, branches).
# ---------------------------------------------------------------------------
def case30s(seed: int = 30) -> Case:
    """Synthetic 30-bus system with Table II counts (30 buses, 6 gens, 41 branches)."""
    return generate_case(
        SyntheticGridConfig(n_bus=30, n_gen=6, n_branch=41, seed=seed, name="case30s")
    )


def case57s(seed: int = 57) -> Case:
    """Synthetic 57-bus system with Table II counts (57 buses, 7 gens, 80 branches)."""
    return generate_case(
        SyntheticGridConfig(n_bus=57, n_gen=7, n_branch=80, seed=seed, name="case57s")
    )


def case118s(seed: int = 118) -> Case:
    """Synthetic 118-bus system with Table II counts (118 buses, 54 gens, 185 branches)."""
    return generate_case(
        SyntheticGridConfig(
            n_bus=118, n_gen=54, n_branch=185, seed=seed, name="case118s"
        )
    )


def case300s(seed: int = 300) -> Case:
    """Synthetic 300-bus system with Table II counts (300 buses, 69 gens, 411 branches)."""
    return generate_case(
        SyntheticGridConfig(
            n_bus=300, n_gen=69, n_branch=411, seed=seed, name="case300s"
        )
    )


def scaled_family(base: SyntheticGridConfig, sizes: list[int]) -> list[Case]:
    """Generate a family of cases of increasing size sharing the base config.

    Useful for scalability studies beyond the five Table-II systems: branch and
    generator counts are scaled proportionally to the requested bus counts.
    """
    cases = []
    for n in sizes:
        scale = n / base.n_bus
        cfg = replace(
            base,
            n_bus=n,
            n_gen=max(1, int(round(base.n_gen * scale))),
            n_branch=max(n - 1, int(round(base.n_branch * scale))),
            name=f"{base.name or 'synthetic'}_{n}",
            seed=base.seed + n,
        )
        cases.append(generate_case(cfg))
    return cases
