"""Load-scenario sampling.

The paper samples every bus load uniformly at random within ``±t`` of its
nominal value (``t = 10 %``), consistent with prior AC-OPF learning work, and
feeds the sampled problems to the solver to build training data.  This module
implements that sampling plus a couple of structured variants used by the
examples (correlated system-wide scaling, per-area stress).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.grid.components import Case
from repro.utils.rng import RNGLike, ensure_rng


@dataclass(frozen=True)
class LoadSample:
    """One sampled load scenario (MW / MVAr per bus)."""

    Pd: np.ndarray
    Qd: np.ndarray
    scenario_id: int = 0

    def apply(self, case: Case) -> Case:
        """Return a copy of ``case`` with this scenario's loads installed."""
        return case.with_loads(self.Pd, self.Qd, name=f"{case.name}#s{self.scenario_id}")

    def feature_vector(self) -> np.ndarray:
        """Concatenated ``[Pd, Qd]`` vector — the MTL model input (Section VI-C)."""
        return np.concatenate([self.Pd, self.Qd])


def sample_loads(
    case: Case,
    n_samples: int,
    variation: float = 0.1,
    seed: RNGLike = None,
) -> List[LoadSample]:
    """Sample ``n_samples`` independent ±``variation`` uniform load scenarios.

    Each bus load is drawn uniformly from ``[(1 - t) * Pd_i, (1 + t) * Pd_i]``
    (and likewise for ``Qd``), matching the paper's load-sampling protocol.
    Buses with zero nominal load stay at zero.
    """
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    if variation < 0:
        raise ValueError("variation must be non-negative")
    rng = ensure_rng(seed)
    Pd0, Qd0 = case.bus.Pd, case.bus.Qd
    samples = []
    for i in range(n_samples):
        fp = rng.uniform(1.0 - variation, 1.0 + variation, size=case.n_bus)
        fq = rng.uniform(1.0 - variation, 1.0 + variation, size=case.n_bus)
        samples.append(LoadSample(Pd=Pd0 * fp, Qd=Qd0 * fq, scenario_id=i))
    return samples


def iter_load_samples(
    case: Case,
    n_samples: int,
    variation: float = 0.1,
    seed: RNGLike = None,
) -> Iterator[LoadSample]:
    """Generator version of :func:`sample_loads` (constant memory)."""
    rng = ensure_rng(seed)
    Pd0, Qd0 = case.bus.Pd, case.bus.Qd
    for i in range(n_samples):
        fp = rng.uniform(1.0 - variation, 1.0 + variation, size=case.n_bus)
        fq = rng.uniform(1.0 - variation, 1.0 + variation, size=case.n_bus)
        yield LoadSample(Pd=Pd0 * fp, Qd=Qd0 * fq, scenario_id=i)


def scaled_load(case: Case, factor: float, scenario_id: int = 0) -> LoadSample:
    """System-wide correlated scaling of all loads by ``factor``."""
    if factor < 0:
        raise ValueError("factor must be non-negative")
    return LoadSample(
        Pd=case.bus.Pd * factor, Qd=case.bus.Qd * factor, scenario_id=scenario_id
    )


def stressed_area_load(
    case: Case,
    area: int,
    factor: float,
    scenario_id: int = 0,
    background_factor: float = 1.0,
) -> LoadSample:
    """Scale loads inside one area by ``factor`` and the rest by ``background_factor``.

    Models a localised demand surge — a scenario class the SC-ACOPF discussion
    in Section VIII-E motivates.
    """
    mask = case.bus.area == area
    if not np.any(mask):
        raise ValueError(f"case has no buses in area {area}")
    fp = np.where(mask, factor, background_factor)
    return LoadSample(Pd=case.bus.Pd * fp, Qd=case.bus.Qd * fp, scenario_id=scenario_id)


def nominal_load(case: Case) -> LoadSample:
    """The unperturbed nominal scenario."""
    return LoadSample(Pd=case.bus.Pd.copy(), Qd=case.bus.Qd.copy(), scenario_id=-1)
