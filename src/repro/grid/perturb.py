"""Load-scenario sampling.

The paper samples every bus load uniformly at random within ``±t`` of its
nominal value (``t = 10 %``), consistent with prior AC-OPF learning work, and
feeds the sampled problems to the solver to build training data.  This module
implements that sampling plus the structured variants the scenario universe
needs: correlated system-wide scaling, per-area stress, spatially-correlated
stochastic streams (:class:`CorrelatedLoadSampler` — a diffusion kernel over
the network graph, Cholesky-factored) and time-coupled multi-period load
trajectories (:func:`sample_load_trajectory` — a daily profile with smooth
per-bus jitter, built so consecutive steps stay close enough for step-to-step
warm starting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.grid.components import Case
from repro.utils.rng import RNGLike, derive_seed, ensure_rng


@dataclass(frozen=True)
class LoadSample:
    """One sampled load scenario (MW / MVAr per bus)."""

    Pd: np.ndarray
    Qd: np.ndarray
    scenario_id: int = 0

    def apply(self, case: Case) -> Case:
        """Return a copy of ``case`` with this scenario's loads installed."""
        return case.with_loads(self.Pd, self.Qd, name=f"{case.name}#s{self.scenario_id}")

    def feature_vector(self) -> np.ndarray:
        """Concatenated ``[Pd, Qd]`` vector — the MTL model input (Section VI-C)."""
        return np.concatenate([self.Pd, self.Qd])


def sample_loads(
    case: Case,
    n_samples: int,
    variation: float = 0.1,
    seed: RNGLike = None,
) -> List[LoadSample]:
    """Sample ``n_samples`` independent ±``variation`` uniform load scenarios.

    Each bus load is drawn uniformly from ``[(1 - t) * Pd_i, (1 + t) * Pd_i]``
    (and likewise for ``Qd``), matching the paper's load-sampling protocol.
    Buses with zero nominal load stay at zero.
    """
    if n_samples < 0:
        raise ValueError("n_samples must be non-negative")
    if variation < 0:
        raise ValueError("variation must be non-negative")
    rng = ensure_rng(seed)
    Pd0, Qd0 = case.bus.Pd, case.bus.Qd
    samples = []
    for i in range(n_samples):
        fp = rng.uniform(1.0 - variation, 1.0 + variation, size=case.n_bus)
        fq = rng.uniform(1.0 - variation, 1.0 + variation, size=case.n_bus)
        samples.append(LoadSample(Pd=Pd0 * fp, Qd=Qd0 * fq, scenario_id=i))
    return samples


def iter_load_samples(
    case: Case,
    n_samples: int,
    variation: float = 0.1,
    seed: RNGLike = None,
) -> Iterator[LoadSample]:
    """Generator version of :func:`sample_loads` (constant memory)."""
    rng = ensure_rng(seed)
    Pd0, Qd0 = case.bus.Pd, case.bus.Qd
    for i in range(n_samples):
        fp = rng.uniform(1.0 - variation, 1.0 + variation, size=case.n_bus)
        fq = rng.uniform(1.0 - variation, 1.0 + variation, size=case.n_bus)
        yield LoadSample(Pd=Pd0 * fp, Qd=Qd0 * fq, scenario_id=i)


def scaled_load(case: Case, factor: float, scenario_id: int = 0) -> LoadSample:
    """System-wide correlated scaling of all loads by ``factor``."""
    if factor < 0:
        raise ValueError("factor must be non-negative")
    return LoadSample(
        Pd=case.bus.Pd * factor, Qd=case.bus.Qd * factor, scenario_id=scenario_id
    )


def stressed_area_load(
    case: Case,
    area: int,
    factor: float,
    scenario_id: int = 0,
    background_factor: float = 1.0,
) -> LoadSample:
    """Scale loads inside one area by ``factor`` and the rest by ``background_factor``.

    Models a localised demand surge — a scenario class the SC-ACOPF discussion
    in Section VIII-E motivates.
    """
    mask = case.bus.area == area
    if not np.any(mask):
        raise ValueError(f"case has no buses in area {area}")
    fp = np.where(mask, factor, background_factor)
    return LoadSample(Pd=case.bus.Pd * fp, Qd=case.bus.Qd * fp, scenario_id=scenario_id)


def nominal_load(case: Case) -> LoadSample:
    """The unperturbed nominal scenario."""
    return LoadSample(Pd=case.bus.Pd.copy(), Qd=case.bus.Qd.copy(), scenario_id=-1)


# ------------------------------------------------------- stochastic streams
class CorrelatedLoadSampler:
    """Spatially-correlated stochastic load sampling over the network graph.

    Independent per-bus draws ignore that demand moves together across a
    neighbourhood (weather, industry shifts).  This sampler draws load factors
    from a **diffusion kernel** on the case's live branch graph: with ``L``
    the graph Laplacian and eigendecomposition ``L = U Λ Uᵀ``, the kernel
    ``K = U exp(-β Λ) Uᵀ`` (diagonal-normalised, plus a small nugget) is
    positive semi-definite *by construction* — electrically close buses get
    strongly correlated factors, far ones nearly independent, and ``β``
    tunes the correlation length.  ``K``'s Cholesky factor turns i.i.d.
    normals into correlated fields; factors are bounded to ``1 ± variation``
    through ``tanh`` so a rare deep draw cannot push a load negative.

    Draws are **bit-reproducible per scenario**: scenario ``i`` uses its own
    generator derived from ``(seed, i)``, so a stream chopped into batches of
    any size yields identical samples (the property the streamed
    ``generate_dataset`` path relies on).
    """

    def __init__(
        self,
        case: Case,
        variation: float = 0.1,
        beta: float = 1.0,
        nugget: float = 1e-6,
    ):
        if variation < 0:
            raise ValueError("variation must be non-negative")
        if beta < 0:
            raise ValueError("beta must be non-negative")
        if nugget <= 0:
            raise ValueError("nugget must be positive")
        self.case = case
        self.variation = float(variation)
        self.beta = float(beta)

        f, t = case.branch_bus_indices()
        live = case.branch.status > 0
        n = case.n_bus
        adjacency = np.zeros((n, n))
        for a, b in zip(f[live], t[live]):
            if a != b:
                adjacency[a, b] = adjacency[b, a] = 1.0
        laplacian = np.diag(adjacency.sum(axis=1)) - adjacency
        eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
        kernel = (eigenvectors * np.exp(-self.beta * eigenvalues)) @ eigenvectors.T
        scale = np.sqrt(np.clip(np.diag(kernel), nugget, None))
        kernel = kernel / np.outer(scale, scale)
        self.kernel = kernel + nugget * np.eye(n)
        self._chol = np.linalg.cholesky(self.kernel)

    def _factors(self, rng: np.random.Generator) -> np.ndarray:
        """One bounded correlated factor field: ``1 + variation·tanh(C z)``."""
        return 1.0 + self.variation * np.tanh(self._chol @ rng.standard_normal(self.case.n_bus))

    def sample_one(self, scenario_id: int, seed: Optional[int] = None) -> LoadSample:
        """Draw scenario ``scenario_id`` of the stream seeded by ``seed``."""
        rng = ensure_rng(derive_seed(seed, scenario_id))
        fp, fq = self._factors(rng), self._factors(rng)
        return LoadSample(
            Pd=self.case.bus.Pd * fp, Qd=self.case.bus.Qd * fq, scenario_id=scenario_id
        )

    def sample(
        self, n_samples: int, seed: Optional[int] = None, start: int = 0
    ) -> List[LoadSample]:
        """Scenarios ``start .. start + n_samples`` of the stream."""
        if n_samples < 0:
            raise ValueError("n_samples must be non-negative")
        return [self.sample_one(start + i, seed=seed) for i in range(n_samples)]

    def stream(
        self, n_samples: int, batch: int, seed: Optional[int] = None
    ) -> Iterator[List[LoadSample]]:
        """Yield the stream in bounded batches (``≤ batch`` samples each).

        Because draws are keyed per scenario, the concatenation of any batch
        chopping equals :meth:`sample` of the whole stream bit for bit.
        """
        if batch < 1:
            raise ValueError("batch must be positive")
        for start in range(0, max(n_samples, 0), batch):
            yield self.sample(min(batch, n_samples - start), seed=seed, start=start)


# ----------------------------------------------------- multi-period trajectories
def sample_load_trajectory(
    case: Case,
    n_steps: int = 24,
    amplitude: float = 0.15,
    variation: float = 0.03,
    period: int = 24,
    seed: RNGLike = None,
) -> List[LoadSample]:
    """A time-coupled ``n_steps``-step load trajectory (one sample per step).

    Step ``t`` scales the nominal loads by a shared daily profile
    ``1 + amplitude · sin(2π t / period − π/2)`` (trough at ``t = 0``, peak at
    mid-period) times a smooth per-bus jitter: an AR(1) random walk
    (``ρ = 0.8``) squashed through ``tanh`` into ``1 ± variation``.  The
    result drifts — consecutive steps differ by a few percent, exactly the
    regime where chaining step ``t``'s solution as step ``t+1``'s warm start
    pays — rather than jumping independently like :func:`sample_loads`.
    ``scenario_id`` is the step index.
    """
    if n_steps < 0:
        raise ValueError("n_steps must be non-negative")
    if period < 1:
        raise ValueError("period must be positive")
    if amplitude < 0 or variation < 0:
        raise ValueError("amplitude and variation must be non-negative")
    rng = ensure_rng(seed)
    Pd0, Qd0 = case.bus.Pd, case.bus.Qd
    rho = 0.8
    noise_p = rng.standard_normal(case.n_bus)
    noise_q = rng.standard_normal(case.n_bus)
    steps = []
    for t in range(n_steps):
        profile = 1.0 + amplitude * np.sin(2.0 * np.pi * t / period - np.pi / 2.0)
        if t > 0:
            innovation = np.sqrt(1.0 - rho**2)
            noise_p = rho * noise_p + innovation * rng.standard_normal(case.n_bus)
            noise_q = rho * noise_q + innovation * rng.standard_normal(case.n_bus)
        fp = profile * (1.0 + variation * np.tanh(noise_p))
        fq = profile * (1.0 + variation * np.tanh(noise_q))
        steps.append(LoadSample(Pd=Pd0 * fp, Qd=Qd0 * fq, scenario_id=t))
    return steps
