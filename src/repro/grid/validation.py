"""Structural validation of :class:`~repro.grid.Case` objects.

The numerical kernels assume a well-formed case (connected network, a single
reference bus, consistent bounds).  :func:`validate_case` checks those
assumptions up front and raises :class:`CaseValidationError` with every
violation listed, which is far easier to debug than a singular KKT matrix
three layers down.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.grid.components import Case, POLYNOMIAL, REF


class CaseValidationError(ValueError):
    """Raised when a case fails structural validation.

    The ``problems`` attribute lists every individual violation.
    """

    def __init__(self, problems: List[str]):
        self.problems = list(problems)
        super().__init__("invalid case:\n  - " + "\n  - ".join(self.problems))


def _connected_components(n_bus: int, f: np.ndarray, t: np.ndarray) -> int:
    """Number of connected components of the (undirected) branch graph."""
    parent = np.arange(n_bus)

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for a, b in zip(f, t):
        ra, rb = find(int(a)), find(int(b))
        if ra != rb:
            parent[ra] = rb
    return len({find(i) for i in range(n_bus)})


def validate_case(case: Case, raise_on_error: bool = True) -> List[str]:
    """Check a case for structural problems.

    Returns the list of problems found (empty when valid).  When
    ``raise_on_error`` is true (the default) a non-empty list raises
    :class:`CaseValidationError` instead of being returned.
    """
    problems: List[str] = []

    if case.base_mva <= 0:
        problems.append(f"base_mva must be positive, got {case.base_mva}")

    # Unique bus numbers.
    if len(set(case.bus.bus_i.tolist())) != case.n_bus:
        problems.append("bus numbers are not unique")

    # Exactly one reference bus.
    n_ref = int(np.count_nonzero(case.bus.bus_type == REF))
    if n_ref != 1:
        problems.append(f"expected exactly one reference bus, found {n_ref}")

    # Voltage limits.
    if np.any(case.bus.Vmin <= 0):
        problems.append("Vmin must be strictly positive")
    if np.any(case.bus.Vmax < case.bus.Vmin):
        problems.append("Vmax < Vmin for at least one bus")

    # Generators reference existing buses.
    known = set(case.bus.bus_i.tolist())
    for g, b in enumerate(case.gen.bus):
        if int(b) not in known:
            problems.append(f"generator {g} references unknown bus {int(b)}")
    for l, (fb, tb) in enumerate(zip(case.branch.f_bus, case.branch.t_bus)):
        if int(fb) not in known or int(tb) not in known:
            problems.append(f"branch {l} references an unknown bus")
        if int(fb) == int(tb):
            problems.append(f"branch {l} is a self-loop at bus {int(fb)}")

    # Generator limits.
    if np.any(case.gen.Pmax < case.gen.Pmin):
        problems.append("Pmax < Pmin for at least one generator")
    if np.any(case.gen.Qmax < case.gen.Qmin):
        problems.append("Qmax < Qmin for at least one generator")

    # Reference bus must host an in-service generator (otherwise the slack
    # cannot balance the system).
    ref_buses = set(case.bus.bus_i[case.bus.bus_type == REF].tolist())
    gen_buses = set(case.gen.bus[case.gen.status > 0].tolist())
    if ref_buses and not ref_buses & gen_buses:
        problems.append("reference bus has no in-service generator")

    # Branch impedances: a branch with zero series impedance is singular.
    z_mag = np.hypot(case.branch.r, case.branch.x)
    if np.any((z_mag == 0) & (case.branch.status > 0)):
        problems.append("in-service branch with zero series impedance")

    # Cost model: only polynomial costs are supported by the OPF layer.
    if np.any(case.gencost.model != POLYNOMIAL):
        problems.append("only polynomial (model=2) generator costs are supported")
    if case.gencost.n != case.n_gen:
        problems.append("gencost must have exactly one row per generator")

    # Connectivity over in-service branches.
    on = case.branch.status > 0
    if case.n_bus > 1:
        f_int, t_int = case.branch_bus_indices()
        n_comp = _connected_components(case.n_bus, f_int[on], t_int[on])
        if n_comp != 1:
            problems.append(
                f"network is not connected ({n_comp} components over in-service branches)"
            )

    if problems and raise_on_error:
        raise CaseValidationError(problems)
    return problems
